package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// parallelReport is the schema of the -parallel JSON report
// (BENCH_engine.json): one row per worker count over the same query
// batch against the same tree.
type parallelReport struct {
	Date    string        `json:"date"`
	Dataset string        `json:"dataset"`
	N       int           `json:"n"`
	Dim     int           `json:"dim"`
	Queries int           `json:"queries"`
	K       int           `json:"k"`
	Rows    []parallelRow `json:"rows"`
}

// parallelRow is one point of the scaling curve. SimQPS divides the
// batch size by the simulated makespan (the busiest worker's summed
// simulated seconds — the model of one disk per worker); WallQPS is the
// host wall-clock throughput, which only scales with real cores.
type parallelRow struct {
	Workers     int     `json:"workers"`
	SimQPS      float64 `json:"sim_qps"`
	WallQPS     float64 `json:"wall_qps"`
	SimMakespan float64 `json:"sim_makespan_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	P50         float64 `json:"sim_latency_p50"`
	P95         float64 `json:"sim_latency_p95"`
	P99         float64 `json:"sim_latency_p99"`
}

// runParallel benchmarks the engine's scaling curve: it builds one
// IQ-tree on the simulated disk and pushes the same KNN batch through
// worker pools of each requested size.
func runParallel(spec string, scale float64, queries int, seed int64, out string, gate bool) error {
	var workerCounts []int
	for _, part := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w <= 0 {
			return fmt.Errorf("bad -parallel worker count %q", part)
		}
		workerCounts = append(workerCounts, w)
	}

	n := int(float64(100000) * scale)
	if n < 2000 {
		n = 2000
	}
	const dim, k = 16, 1
	pts, err := dataset.Generate(dataset.Uniform, seed, n+queries, dim)
	if err != nil {
		return err
	}
	db, qs := dataset.Split(pts, queries)
	sto := store.NewSim(store.DefaultConfig())
	tr, err := core.Build(sto, db, core.DefaultOptions())
	if err != nil {
		return err
	}
	batch := make([]engine.Query, len(qs))
	for i, q := range qs {
		batch[i] = engine.Query{Kind: engine.KNN, Point: q, K: k}
	}

	report := parallelReport{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Dataset: string(dataset.Uniform),
		N:       n,
		Dim:     dim,
		Queries: queries,
		K:       k,
	}
	fmt.Printf("engine scaling: %s n=%d dim=%d queries=%d k=%d\n", dataset.Uniform, n, dim, queries, k)
	for _, w := range workerCounts {
		reg := &obs.Registry{}
		e := engine.New(sto, tr, w, engine.WithRegistry(reg))
		start := time.Now()
		results := e.SubmitBatch(batch)
		wall := time.Since(start).Seconds()
		for _, res := range results {
			if res.Err != nil {
				e.Close()
				return fmt.Errorf("workers=%d: %w", w, res.Err)
			}
		}
		makespan := e.Makespan()
		e.Close()
		lat := reg.Histogram("engine.sim_latency_seconds").Snapshot()
		row := parallelRow{
			Workers:     w,
			SimQPS:      float64(len(batch)) / makespan,
			WallQPS:     float64(len(batch)) / wall,
			SimMakespan: makespan,
			WallSeconds: wall,
			P50:         lat.P50,
			P95:         lat.P95,
			P99:         lat.P99,
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("workers=%d  simQPS=%8.1f  wallQPS=%8.1f  sim p50/p95/p99 = %.4f/%.4f/%.4f s\n",
			w, row.SimQPS, row.WallQPS, row.P50, row.P95, row.P99)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	fmt.Printf("report written to %s\n", out)

	if speedup, ok := checkScaling(report); gate {
		if !ok {
			return fmt.Errorf("scaling gate FAILED: 4-worker simulated QPS is %.2fx the 1-worker rate, want >= 2x", speedup)
		}
		fmt.Printf("scaling gate OK: 4 workers deliver %.2fx the 1-worker simulated QPS\n", speedup)
	}
	return nil
}

// checkScaling reports the 4-vs-1-worker simulated speed-up (0 when the
// report lacks either row).
func checkScaling(r parallelReport) (float64, bool) {
	var one, four float64
	for _, row := range r.Rows {
		switch row.Workers {
		case 1:
			one = row.SimQPS
		case 4:
			four = row.SimQPS
		}
	}
	if one <= 0 || four <= 0 {
		return 0, false
	}
	return four / one, four >= 2*one
}
