package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/vec"
)

// shardReport is the schema of the -shards JSON report
// (BENCH_shard.json): a scatter-gather scaling sweep over shard counts
// plus a seeded chaos campaign that corrupts and kills replicas mid-run.
type shardReport struct {
	Date        string     `json:"date"`
	Dataset     string     `json:"dataset"`
	N           int        `json:"n"`
	Dim         int        `json:"dim"`
	Queries     int        `json:"queries"`
	K           int        `json:"k"`
	Workers     int        `json:"workers_per_replica"`
	Partitioner string     `json:"partitioner"`
	Rows        []shardRow `json:"rows"`
	Chaos       shardChaos `json:"chaos"`
}

// shardRow is one point of the scaling sweep (replicas=1: replicas add
// availability, not capacity). QPS divides the batch size by the
// fleet's simulated makespan — the busiest disk lane across every shard
// engine — so the number models N shards' disks running in parallel.
// Mismatched counts queries whose merged answer differed from the
// single-shard row (must be 0: sharding never changes an answer).
type shardRow struct {
	Shards     int     `json:"shards"`
	QPS        float64 `json:"sim_qps"`
	Speedup    float64 `json:"speedup_vs_1"`
	Fanout     int64   `json:"fanout"`
	Mismatched int     `json:"mismatched"`
}

// shardChaos summarizes the self-healing replica campaign: one
// replica's directory corrupted at rest (bit flips beneath the checksum
// sidecars) and another replica's engine killed mid-batch, on a
// Durable+SelfHeal fleet taking live writes throughout. Lost counts
// queries that returned an error; Mismatched counts answers that
// differed from an untouched twin fed the same writes. Both must be 0,
// the fleet must converge back to all-Serving (both failed replicas
// rebuilt from their siblings by WAL shipping), and MTTRSeconds — from
// injection to all-Serving under load — must stay within the gate's
// budget. That is the self-healing claim.
type shardChaos struct {
	Shards         int     `json:"shards"`
	Replicas       int     `json:"replicas"`
	Queries        int     `json:"queries"`
	Writes         int     `json:"writes"`
	Lost           int     `json:"lost"`
	Mismatched     int     `json:"mismatched"`
	Failovers      int64   `json:"failovers"`
	ReplicaRetries int64   `json:"replica_retries"`
	Drains         int64   `json:"drains"`
	Probes         int64   `json:"probes"`
	Readmissions   int64   `json:"readmissions"`
	Rebuilds       int64   `json:"rebuilds"`
	AllServing     bool    `json:"all_serving"`
	MTTRSeconds    float64 `json:"mttr_seconds"`
}

// shardBatch builds the sweep workload: a KNN/range/window mix. Range
// and window work partitions cleanly across shards; KNN pays a per-shard
// candidate-refinement overhead — the mix keeps the sweep honest about
// both.
func shardBatch(seed int64, queries, dim, k int) []engine.Query {
	r := rand.New(rand.NewSource(seed))
	batch := make([]engine.Query, 0, queries)
	for i := 0; i < queries; i++ {
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = r.Float32()
		}
		switch i % 3 {
		case 0:
			batch = append(batch, engine.Query{Kind: engine.KNN, Point: q, K: k})
		case 1:
			batch = append(batch, engine.Query{Kind: engine.Range, Point: q, Eps: 0.9 + r.Float64()*0.2})
		default:
			lo := make(vec.Point, dim)
			hi := make(vec.Point, dim)
			for j := range lo {
				a := r.Float32() * 0.5
				lo[j], hi[j] = a, a+0.35+r.Float32()*0.15
			}
			batch = append(batch, engine.Query{Kind: engine.Window, Window: vec.MBR{Lo: lo, Hi: hi}})
		}
	}
	return batch
}

// canonicalNbs sorts one answer into the coordinator's canonical order
// so answers can be compared across topologies.
func canonicalNbs(kind engine.Kind, nbs []vec.Neighbor) []vec.Neighbor {
	out := append([]vec.Neighbor(nil), nbs...)
	sort.Slice(out, func(i, j int) bool {
		if kind != engine.Window && out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func sameShardAnswer(a, b []vec.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// runShard benchmarks sharded scatter-gather serving: a scaling sweep
// over shard counts, then a chaos campaign on the largest topology with
// the requested replica count.
func runShard(spec string, replicas int, scale float64, queries int, seed int64, out string, gate bool) error {
	var shardCounts []int
	for _, part := range strings.Split(spec, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c <= 0 {
			return fmt.Errorf("bad -shards count %q", part)
		}
		shardCounts = append(shardCounts, c)
	}
	if replicas < 1 {
		return fmt.Errorf("bad -replicas %d", replicas)
	}

	// Sharding is a scale-out play: per-shard fixed costs (directory
	// seek, per-shard KNN refinement) amortize only over enough data,
	// so the sweep keeps a higher floor than the single-node benches.
	n := int(float64(200000) * scale)
	if n < 16000 {
		n = 16000
	}
	const dim, k, workers = 16, 4, 2
	db, err := dataset.Generate(dataset.Uniform, seed, n, dim)
	if err != nil {
		return err
	}
	batch := shardBatch(seed+1, queries, dim, k)

	report := shardReport{
		Date:        time.Now().UTC().Format(time.RFC3339),
		Dataset:     string(dataset.Uniform),
		N:           n,
		Dim:         dim,
		Queries:     queries,
		K:           k,
		Workers:     workers,
		Partitioner: shard.RoundRobin{}.Name(),
	}
	fmt.Printf("sharded scatter-gather: %s n=%d dim=%d queries=%d k=%d workers/replica=%d\n",
		dataset.Uniform, n, dim, queries, k, workers)

	var baseline [][]vec.Neighbor
	var baseQPS float64
	for _, sc := range shardCounts {
		reg := &obs.Registry{}
		c, err := shard.New(shard.Config{
			Shards:   sc,
			Replicas: 1,
			Workers:  workers,
			Registry: reg,
		}, db)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", sc, err)
		}
		results := c.SubmitBatch(batch)
		row := shardRow{Shards: sc, Fanout: reg.Counter("shard.fanout").Value()}
		answers := make([][]vec.Neighbor, len(results))
		for i, res := range results {
			if res.Err != nil {
				c.Close()
				return fmt.Errorf("shards=%d query %d: %w", sc, i, res.Err)
			}
			answers[i] = canonicalNbs(batch[i].Kind, res.Neighbors)
		}
		row.QPS = float64(len(batch)) / c.Makespan()
		c.Close()
		if baseline == nil {
			baseline = answers
			baseQPS = row.QPS
		} else {
			for i := range answers {
				if !sameShardAnswer(answers[i], baseline[i]) {
					row.Mismatched++
				}
			}
		}
		row.Speedup = row.QPS / baseQPS
		report.Rows = append(report.Rows, row)
		fmt.Printf("shards=%2d  sim_qps=%8.1f  speedup=%.2fx  fanout=%d  mismatched=%d\n",
			sc, row.QPS, row.Speedup, row.Fanout, row.Mismatched)
	}

	chaos, err := runShardChaos(db, batch, baseline, shardCounts[len(shardCounts)-1], replicas, workers, seed)
	if err != nil {
		return err
	}
	report.Chaos = *chaos
	fmt.Printf("chaos: shards=%d replicas=%d queries=%d writes=%d lost=%d mismatched=%d failovers=%d retries=%d\n",
		chaos.Shards, chaos.Replicas, chaos.Queries, chaos.Writes, chaos.Lost, chaos.Mismatched,
		chaos.Failovers, chaos.ReplicaRetries)
	fmt.Printf("heal:  drains=%d probes=%d readmissions=%d rebuilds=%d all_serving=%v mttr=%.2fs\n",
		chaos.Drains, chaos.Probes, chaos.Readmissions, chaos.Rebuilds, chaos.AllServing, chaos.MTTRSeconds)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	fmt.Printf("report written to %s\n", out)

	if gate {
		return checkShard(report)
	}
	return nil
}

// chaosConfig builds the self-healing fleet configuration: WAL-mode
// trees over checksummed stores, with the repairer tuned tight enough
// that MTTR is dominated by the rebuild itself, not the probe cadence.
func chaosConfig(shards, replicas, workers int, selfHeal bool, reg *obs.Registry,
	stores map[[2]int]*store.Store) shard.Config {
	return shard.Config{
		Shards:   shards,
		Replicas: replicas,
		Workers:  workers,
		Durable:  true,
		SelfHeal: selfHeal,
		Heal: shard.HealConfig{
			Interval:     5 * time.Millisecond,
			ProbeBackoff: 25 * time.Millisecond,
		},
		Registry: reg,
		NewStore: func(si, ri int) (*store.Store, error) {
			sto := store.NewSim(store.DefaultConfig())
			if err := sto.EnableChecksums(); err != nil {
				return nil, err
			}
			if stores != nil {
				stores[[2]int{si, ri}] = sto
			}
			return sto, nil
		},
	}
}

// runShardChaos runs the self-healing campaign: a Durable+SelfHeal
// topology serves the batch once healthy, then one replica's directory
// is corrupted at rest and another replica's engine is killed
// mid-batch. Live writes keep landing while the repairer drains,
// probes and rebuilds both victims from their siblings by WAL
// shipping; every query must still answer, every answer must match an
// untouched twin fed the same writes, and the fleet must converge back
// to all-Serving. MTTR is the wall-clock from injection to the first
// all-Serving observation under that load.
func runShardChaos(db []vec.Point, batch []engine.Query, baseline [][]vec.Neighbor,
	shards, replicas, workers int, seed int64) (*shardChaos, error) {
	if replicas < 2 {
		fmt.Println("chaos: skipped (needs -replicas >= 2)")
		return &shardChaos{Shards: shards, Replicas: replicas}, nil
	}
	reg := &obs.Registry{}
	stores := make(map[[2]int]*store.Store)
	c, err := shard.New(chaosConfig(shards, replicas, workers, true, reg, stores), db)
	if err != nil {
		return nil, fmt.Errorf("chaos build: %w", err)
	}
	defer c.Close()
	// The untouched twin is the truth for post-write rounds: same
	// builds, same writes, no faults, no healing.
	twin, err := shard.New(chaosConfig(shards, replicas, workers, false, &obs.Registry{}, nil), db)
	if err != nil {
		return nil, fmt.Errorf("chaos twin build: %w", err)
	}
	defer twin.Close()

	chaos := &shardChaos{Shards: shards, Replicas: replicas}
	verify := func(results []shard.Result, want [][]vec.Neighbor) {
		for i, res := range results {
			chaos.Queries++
			if res.Err != nil {
				chaos.Lost++
				continue
			}
			if !sameShardAnswer(canonicalNbs(batch[i].Kind, res.Neighbors), want[i]) {
				chaos.Mismatched++
			}
		}
	}
	// Round 1: healthy fleet, answers must match the sweep baseline.
	verify(c.SubmitBatch(batch), baseline)

	// Inject: corrupt replica 0 of shard 0 at rest (flip a bit in every
	// directory block straight on the backend, beneath the checksum
	// sidecars) and kill replica 1 of the last shard mid-batch.
	sto := stores[[2]int{0, 0}]
	bf := sto.Backend().Lookup(core.DirFileName)
	if bf == nil {
		return nil, fmt.Errorf("chaos: victim replica has no directory file")
	}
	for b := 0; b < bf.Blocks(); b++ {
		data, err := bf.ReadBlocks(b, 1)
		if err != nil {
			return nil, err
		}
		buf := append([]byte(nil), data...)
		buf[0] ^= 0x40
		if err := bf.WriteBlocks(b, buf); err != nil {
			return nil, err
		}
	}
	injected := time.Now()
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		c.Engine(shards-1, 1).Close()
	}()
	verify(c.SubmitBatch(batch), baseline)
	<-killed

	// Healing rounds: writes and queries keep flowing while both victims
	// rebuild. The repairer needs query traffic to notice the corrupt
	// replica (its engine is healthy; only real reads fail), so every
	// round serves the batch and compares against the twin.
	dim := len(db[0])
	r := rand.New(rand.NewSource(seed + 2))
	rebuildsC := reg.Counter("shard.heal.rebuilds")
	deadline := injected.Add(120 * time.Second)
	for {
		extra := make([]vec.Point, 64)
		for i := range extra {
			p := make(vec.Point, dim)
			for j := range p {
				p[j] = r.Float32()
			}
			extra[i] = p
		}
		if _, err := c.Insert(extra); err != nil {
			return nil, fmt.Errorf("chaos insert: %w", err)
		}
		if _, err := twin.Insert(extra); err != nil {
			return nil, fmt.Errorf("chaos twin insert: %w", err)
		}
		chaos.Writes += len(extra)

		tres := twin.SubmitBatch(batch)
		want := make([][]vec.Neighbor, len(tres))
		for i, res := range tres {
			if res.Err != nil {
				return nil, fmt.Errorf("chaos twin query %d: %w", i, res.Err)
			}
			want[i] = canonicalNbs(batch[i].Kind, res.Neighbors)
		}
		verify(c.SubmitBatch(batch), want)

		if c.Healthy() && rebuildsC.Value() >= 2 {
			chaos.MTTRSeconds = time.Since(injected).Seconds()
			break
		}
		if time.Now().After(deadline) {
			break
		}
	}
	chaos.AllServing = c.Healthy()

	chaos.Failovers = reg.Counter("shard.failovers").Value()
	chaos.ReplicaRetries = reg.Counter("shard.replica_retries").Value()
	chaos.Drains = reg.Counter("shard.heal.drains").Value()
	chaos.Probes = reg.Counter("shard.heal.probes").Value()
	chaos.Readmissions = reg.Counter("shard.heal.readmissions").Value()
	chaos.Rebuilds = rebuildsC.Value()
	return chaos, nil
}

// shardMTTRBudget is the self-healing gate's recovery budget: from
// injection (one replica corrupted, one killed) to all-Serving under
// live reads and writes.
const shardMTTRBudget = 30 * time.Second

// checkShard enforces the scale-out acceptance thresholds: >= 3x
// aggregate simulated QPS at 8 shards over 1 shard, no mismatched
// answers anywhere in the sweep, and a self-healing chaos campaign with
// zero lost and zero mismatched queries, both failed replicas rebuilt,
// the fleet back to all-Serving, and MTTR within budget.
func checkShard(r shardReport) error {
	var at1, at8 *shardRow
	for i := range r.Rows {
		switch r.Rows[i].Shards {
		case 1:
			at1 = &r.Rows[i]
		case 8:
			at8 = &r.Rows[i]
		}
		if r.Rows[i].Mismatched != 0 {
			return fmt.Errorf("shard gate FAILED: %d mismatched answers at %d shards",
				r.Rows[i].Mismatched, r.Rows[i].Shards)
		}
	}
	if at1 == nil || at8 == nil {
		return fmt.Errorf("shard gate needs rows for 1 and 8 shards")
	}
	if at8.Speedup < 3.0 {
		return fmt.Errorf("shard gate FAILED: %.2fx aggregate sim QPS at 8 shards, want >= 3x", at8.Speedup)
	}
	if r.Chaos.Replicas >= 2 {
		if r.Chaos.Lost != 0 || r.Chaos.Mismatched != 0 {
			return fmt.Errorf("shard gate FAILED: chaos lost %d / mismatched %d queries, want 0/0",
				r.Chaos.Lost, r.Chaos.Mismatched)
		}
		if r.Chaos.Failovers == 0 && r.Chaos.ReplicaRetries == 0 {
			return fmt.Errorf("shard gate FAILED: chaos campaign recorded no failovers — nothing was exercised")
		}
		if !r.Chaos.AllServing {
			return fmt.Errorf("shard gate FAILED: fleet never converged back to all-Serving")
		}
		if r.Chaos.Rebuilds < 2 {
			return fmt.Errorf("shard gate FAILED: %d rebuilds recorded, want >= 2 (one corrupt, one killed)",
				r.Chaos.Rebuilds)
		}
		if mttr := time.Duration(r.Chaos.MTTRSeconds * float64(time.Second)); mttr > shardMTTRBudget {
			return fmt.Errorf("shard gate FAILED: MTTR %.2fs over the %s budget",
				r.Chaos.MTTRSeconds, shardMTTRBudget)
		}
	}
	fmt.Printf("shard gate OK: %.2fx at 8 shards, chaos %d queries, %d lost, %d mismatched, %d failovers, %d rebuilds, MTTR %.2fs\n",
		at8.Speedup, r.Chaos.Queries, r.Chaos.Lost, r.Chaos.Mismatched, r.Chaos.Failovers,
		r.Chaos.Rebuilds, r.Chaos.MTTRSeconds)
	return nil
}
