// Command iqbench regenerates the paper's evaluation figures (Figures
// 7–12 of "Independent Quantization", ICDE 2000) on the simulated disk.
//
// Usage:
//
//	iqbench -fig all            # every figure at paper scale (slow)
//	iqbench -fig 8 -scale 0.05  # figure 8 at 5% of the paper's N
//	iqbench -fig 9 -csv out.csv # also dump CSV rows
//	iqbench -faults default -gate  # seeded fault-injection campaign
//
// -metrics <file.json> writes a machine-readable report after the run:
// every figure's series plus a snapshot of the process-wide metrics
// registry (query counts, seek/block totals, latency histograms with
// p50/p95/p99). -debug-addr <host:port> serves expvar and pprof while
// the benchmark runs, e.g. -debug-addr 127.0.0.1:6060 then visit
// /metrics, /debug/vars or /debug/pprof/.
//
// The reported numbers are average simulated seconds per nearest-neighbor
// query; shapes (who wins, crossover dimensions, speed-up factors) are the
// reproduction target, not the paper's absolute values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "iqbench: %v\n", err)
		os.Exit(1)
	}
}

// metricsReport is the schema of the -metrics JSON file.
type metricsReport struct {
	Date    string               `json:"date"`
	Scale   float64              `json:"scale"`
	Queries int                  `json:"queries"`
	Seed    int64                `json:"seed"`
	Figures []experiments.Figure `json:"figures"`
	Metrics obs.Snapshot         `json:"metrics"`
}

func run() error {
	var (
		figFlag   = flag.String("fig", "all", "figure to run: 7..12, an ablation (va-bits | cost-model | knn), or 'all'")
		scale     = flag.Float64("scale", 1.0, "fraction of the paper's database sizes")
		queries   = flag.Int("queries", 50, "query points per configuration")
		seed      = flag.Int64("seed", 42, "dataset seed")
		csvPath   = flag.String("csv", "", "also write CSV rows to this file")
		chart     = flag.Bool("chart", false, "also render ASCII charts")
		quickFlag = flag.Bool("quick", false, "shorthand for -scale 0.04 -queries 20")
		metrics   = flag.String("metrics", "", "write a machine-readable JSON report (figures + registry snapshot) to this file")
		debugAddr = flag.String("debug-addr", "", "serve expvar + pprof on this address while running (e.g. 127.0.0.1:6060)")
		parallel  = flag.String("parallel", "", "throughput mode instead of figures: comma-separated worker counts (e.g. 1,2,4,8)")
		benchOut  = flag.String("bench-out", "BENCH_engine.json", "where -parallel writes its JSON scaling report")
		gate      = flag.Bool("gate", false, "with -parallel or -faults: fail unless the mode's acceptance thresholds hold")
		faultsFlg = flag.String("faults", "", "chaos mode instead of figures: fault spec (e.g. seed=42,read=0.02) or 'default'")
		chaosOut  = flag.String("chaos-out", "BENCH_faulttol.json", "where -faults writes its JSON fault-tolerance report")
		share     = flag.String("share", "", "scan-sharing mode instead of figures: comma-separated client counts (e.g. 1,8,32,64)")
		shareOut  = flag.String("share-out", "BENCH_share.json", "where -share writes its JSON sharing report")
		shards    = flag.String("shards", "", "sharded serving mode instead of figures: comma-separated shard counts (e.g. 1,2,4,8)")
		replicas  = flag.Int("replicas", 2, "with -shards: replicas per shard for the chaos campaign")
		shardOut  = flag.String("shard-out", "BENCH_shard.json", "where -shards writes its JSON scatter-gather report")
		ingest    = flag.String("ingest", "", "durable ingest mode instead of figures: concurrent writer count (e.g. 8) or 'default'")
		ingestOut = flag.String("ingest-out", "BENCH_ingest.json", "where -ingest writes its JSON write-path report")
		approx    = flag.String("approx", "", "approximate-search mode instead of figures: comma-separated MinRecall sweep (e.g. 1,0.95,0.8) or 'default'")
		approxOut = flag.String("approx-out", "BENCH_approx.json", "where -approx writes its JSON Pareto report")
	)
	flag.Parse()
	if *quickFlag {
		*scale = 0.04
		*queries = 20
	}
	if *faultsFlg != "" {
		spec := *faultsFlg
		if spec == "default" {
			spec = ""
		}
		return runChaos(spec, *scale, *queries, *seed, *chaosOut, *gate)
	}
	if *parallel != "" {
		return runParallel(*parallel, *scale, *queries, *seed, *benchOut, *gate)
	}
	if *share != "" {
		return runShare(*share, *scale, *queries, *seed, *shareOut, *gate)
	}
	if *shards != "" {
		return runShard(*shards, *replicas, *scale, *queries, *seed, *shardOut, *gate)
	}
	if *ingest != "" {
		return runIngest(*ingest, *scale, *queries, *seed, *ingestOut, *gate)
	}
	if *approx != "" {
		return runApprox(*approx, *scale, *queries, *seed, *approxOut, *gate)
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		fmt.Printf("debug server on http://%s (/metrics, /debug/vars, /debug/pprof/)\n\n", addr)
	}
	opts := experiments.RunOpts{Scale: *scale, Queries: *queries, Seed: *seed}

	runners := map[string]func(experiments.RunOpts) (experiments.Figure, error){
		"7": experiments.Figure7, "8": experiments.Figure8, "9": experiments.Figure9,
		"10": experiments.Figure10, "11": experiments.Figure11, "12": experiments.Figure12,
		"va-bits": experiments.AblationVABits, "cost-model": experiments.AblationCostModel,
		"knn": experiments.AblationKNN, "model": experiments.ModelValidation,
		"fixed-bits": experiments.AblationFixedBits,
	}
	var order []string
	if *figFlag == "all" {
		order = []string{"7", "8", "9", "10", "11", "12"}
	} else {
		for _, f := range strings.Split(*figFlag, ",") {
			f = strings.TrimSpace(f)
			if _, ok := runners[f]; !ok {
				return fmt.Errorf("unknown figure %q (want 7..12 or all)", f)
			}
			order = append(order, f)
		}
	}

	var csv strings.Builder
	var figures []experiments.Figure
	for _, f := range order {
		start := time.Now()
		fig, err := runners[f](opts)
		if err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
		fmt.Println(fig.Format())
		if *chart {
			fmt.Println(fig.Chart(true))
		}
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
		csv.WriteString(fig.CSV())
		figures = append(figures, fig)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if *metrics != "" {
		report := metricsReport{
			Date:    time.Now().UTC().Format(time.RFC3339),
			Scale:   *scale,
			Queries: *queries,
			Seed:    *seed,
			Figures: figures,
			Metrics: obs.Default().Snapshot(),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("encode metrics: %w", err)
		}
		if err := os.WriteFile(*metrics, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
	return nil
}
