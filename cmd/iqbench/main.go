// Command iqbench regenerates the paper's evaluation figures (Figures
// 7–12 of "Independent Quantization", ICDE 2000) on the simulated disk.
//
// Usage:
//
//	iqbench -fig all            # every figure at paper scale (slow)
//	iqbench -fig 8 -scale 0.05  # figure 8 at 5% of the paper's N
//	iqbench -fig 9 -csv out.csv # also dump CSV rows
//
// The reported numbers are average simulated seconds per nearest-neighbor
// query; shapes (who wins, crossover dimensions, speed-up factors) are the
// reproduction target, not the paper's absolute values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "figure to run: 7..12, an ablation (va-bits | cost-model | knn), or 'all'")
		scale     = flag.Float64("scale", 1.0, "fraction of the paper's database sizes")
		queries   = flag.Int("queries", 50, "query points per configuration")
		seed      = flag.Int64("seed", 42, "dataset seed")
		csvPath   = flag.String("csv", "", "also write CSV rows to this file")
		chart     = flag.Bool("chart", false, "also render ASCII charts")
		quickFlag = flag.Bool("quick", false, "shorthand for -scale 0.04 -queries 20")
	)
	flag.Parse()
	if *quickFlag {
		*scale = 0.04
		*queries = 20
	}
	opts := experiments.RunOpts{Scale: *scale, Queries: *queries, Seed: *seed}

	runners := map[string]func(experiments.RunOpts) (experiments.Figure, error){
		"7": experiments.Figure7, "8": experiments.Figure8, "9": experiments.Figure9,
		"10": experiments.Figure10, "11": experiments.Figure11, "12": experiments.Figure12,
		"va-bits": experiments.AblationVABits, "cost-model": experiments.AblationCostModel,
		"knn": experiments.AblationKNN, "model": experiments.ModelValidation,
		"fixed-bits": experiments.AblationFixedBits,
	}
	var order []string
	if *figFlag == "all" {
		order = []string{"7", "8", "9", "10", "11", "12"}
	} else {
		for _, f := range strings.Split(*figFlag, ",") {
			f = strings.TrimSpace(f)
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "iqbench: unknown figure %q (want 7..12 or all)\n", f)
				os.Exit(2)
			}
			order = append(order, f)
		}
	}

	var csv strings.Builder
	for _, f := range order {
		start := time.Now()
		fig, err := runners[f](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: figure %s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Println(fig.Format())
		if *chart {
			fmt.Println(fig.Chart(true))
		}
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
		csv.WriteString(fig.CSV())
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: write csv: %v\n", err)
			os.Exit(1)
		}
	}
}
