package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// approxReport is the schema of the -approx JSON report
// (BENCH_approx.json): the measured recall-vs-latency Pareto frontier of
// the probability-bounded approximate search, one row per MinRecall
// setting, all against the same tree, query batch and exact ground
// truth.
type approxReport struct {
	Date    string      `json:"date"`
	Dataset string      `json:"dataset"`
	N       int         `json:"n"`
	Dim     int         `json:"dim"`
	Queries int         `json:"queries"`
	K       int         `json:"k"`
	ExactS  float64     `json:"exact_seconds"`
	Rows    []approxRow `json:"rows"`
}

// approxRow is one point of the ε sweep. Recall is measured against the
// exact ground truth (mean |approx ∩ exact| / k over the batch); SimQPS
// divides the batch size by the summed simulated seconds; Speedup is
// against the exact run of the same batch. Terminated counts queries
// whose stopping rule fired, SkippedPages the pages (quantized and
// exact) those terminations left unfetched.
type approxRow struct {
	MinRecall    float64 `json:"min_recall"`
	Epsilon      float64 `json:"epsilon"`
	Recall       float64 `json:"recall"`
	Seconds      float64 `json:"seconds"`
	SimQPS       float64 `json:"sim_qps"`
	Speedup      float64 `json:"speedup"`
	Terminated   int     `json:"terminated"`
	SkippedPages int     `json:"skipped_pages"`
}

// runApprox sweeps the MinRecall dial over a high-dimensional uniform
// workload — where the exact search degenerates toward a full scan and
// approximation has the most to skip — and measures the recall/latency
// Pareto against the exact ground truth.
func runApprox(spec string, scale float64, queries int, seed int64, out string, gate bool) error {
	var dials []float64
	if spec == "default" {
		dials = []float64{1.0, 0.95, 0.9, 0.8, 0.6, 0.4, 0.2}
	} else {
		for _, part := range strings.Split(spec, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || v <= 0 || v > 1 {
				return fmt.Errorf("bad -approx MinRecall %q (want values in (0, 1])", part)
			}
			dials = append(dials, v)
		}
	}

	n := int(float64(20000) * scale)
	if n < 4000 {
		n = 4000
	}
	const dim, k = 32, 10
	all, err := dataset.Generate(dataset.Uniform, seed, n+queries, dim)
	if err != nil {
		return err
	}
	db, qs := dataset.Split(all, queries)
	sto := store.NewSim(store.DefaultConfig())
	tr, err := core.Build(sto, db, core.DefaultOptions())
	if err != nil {
		return err
	}

	report := approxReport{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Dataset: string(dataset.Uniform),
		N:       n,
		Dim:     dim,
		Queries: len(qs),
		K:       k,
	}
	fmt.Printf("approximate search: %s n=%d dim=%d queries=%d k=%d\n",
		dataset.Uniform, n, dim, len(qs), k)

	exact := make([][]vec.Neighbor, len(qs))
	for i, q := range qs {
		s := sto.NewSession()
		res, err := tr.KNN(s, q, k)
		if err != nil {
			return fmt.Errorf("exact query %d: %w", i, err)
		}
		exact[i] = res
		report.ExactS += s.Time()
	}
	fmt.Printf("exact ground truth: %.3fs simulated (%.1f qps)\n",
		report.ExactS, float64(len(qs))/report.ExactS)

	for _, mr := range dials {
		row := approxRow{MinRecall: mr, Epsilon: 1 - mr}
		bitIdentical := true
		for i, q := range qs {
			trace := obs.NewQueryTrace("")
			s := sto.NewSession()
			s.SetObserver(trace)
			res, err := tr.KNNApprox(s, q, k, index.Approx{MinRecall: mr})
			if err != nil {
				return fmt.Errorf("MinRecall=%v query %d: %w", mr, i, err)
			}
			row.Seconds += s.Time()
			row.Recall += recallAgainst(exact[i], res)
			if trace.Terminated {
				row.Terminated++
			}
			row.SkippedPages += trace.SkippedPages
			if len(res) != len(exact[i]) {
				bitIdentical = false
			} else {
				for j := range res {
					if res[j].ID != exact[i][j].ID || res[j].Dist != exact[i][j].Dist {
						bitIdentical = false
						break
					}
				}
			}
		}
		row.Recall /= float64(len(qs))
		row.SimQPS = float64(len(qs)) / row.Seconds
		row.Speedup = report.ExactS / row.Seconds
		if mr == 1 && !bitIdentical {
			return fmt.Errorf("MinRecall=1 diverged from the exact answers — ε = 0 must be bit-identical")
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("min-recall=%.2f  recall=%.4f  %8.1f qps  speedup=%.2fx  terminated=%d/%d  skipped=%d pages\n",
			mr, row.Recall, row.SimQPS, row.Speedup, row.Terminated, len(qs), row.SkippedPages)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	fmt.Printf("report written to %s\n", out)

	if gate {
		return checkApprox(report)
	}
	return nil
}

// recallAgainst returns |approx ∩ exact| / |exact| by ID.
func recallAgainst(exact, approx []vec.Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	ids := make(map[uint32]bool, len(exact))
	for _, nb := range exact {
		ids[nb.ID] = true
	}
	hit := 0
	for _, nb := range approx {
		if ids[nb.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// checkApprox enforces the acceptance thresholds of the approximate
// search: the ε = 0 row exact (recall 1.0 — bit-identity was already
// asserted during the sweep), the sweep a monotone Pareto frontier
// (turning the dial down never costs recall-per-time), and a real win —
// some setting reaching >= 1.5x the exact simulated QPS while keeping
// measured recall >= 0.95.
func checkApprox(r approxReport) error {
	var atOne *approxRow
	for i := range r.Rows {
		if r.Rows[i].MinRecall == 1 {
			atOne = &r.Rows[i]
		}
	}
	if atOne == nil {
		return fmt.Errorf("approx gate needs a MinRecall=1 row")
	}
	if atOne.Recall != 1.0 {
		return fmt.Errorf("approx gate FAILED: recall %.4f at MinRecall=1, want exactly 1.0", atOne.Recall)
	}
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		if cur.MinRecall >= prev.MinRecall {
			return fmt.Errorf("approx gate FAILED: sweep not ordered by decreasing MinRecall")
		}
		if cur.Seconds > prev.Seconds*(1+1e-9) {
			return fmt.Errorf("approx gate FAILED: non-monotone latency — %.4fs at MinRecall=%.2f after %.4fs at %.2f",
				cur.Seconds, cur.MinRecall, prev.Seconds, prev.MinRecall)
		}
		if cur.Recall > prev.Recall+0.005 {
			return fmt.Errorf("approx gate FAILED: non-monotone recall — %.4f at MinRecall=%.2f after %.4f at %.2f",
				cur.Recall, cur.MinRecall, prev.Recall, prev.MinRecall)
		}
	}
	best := 0.0
	bestAt := 0.0
	for _, row := range r.Rows {
		if row.Recall >= 0.95 && row.Speedup > best {
			best, bestAt = row.Speedup, row.MinRecall
		}
	}
	if best < 1.5 {
		return fmt.Errorf("approx gate FAILED: best speedup at recall >= 0.95 is %.2fx, want >= 1.5x", best)
	}
	fmt.Printf("approx gate OK: recall 1.0 at ε=0, monotone Pareto, %.2fx at MinRecall=%.2f (recall >= 0.95)\n",
		best, bestAt)
	return nil
}
