package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// chaosReport is the schema of the -faults JSON report
// (BENCH_faulttol.json): clean-path overhead of checksums, then one
// section per fault-injection phase.
type chaosReport struct {
	Date    string         `json:"date"`
	N       int            `json:"n"`
	Dim     int            `json:"dim"`
	Queries int            `json:"queries"`
	Spec    string         `json:"spec"`
	Over    chaosOverhead  `json:"overhead"`
	Trans   chaosTransient `json:"transient"`
	Corrupt chaosCorrupt   `json:"corruption"`
	Serve   chaosServing   `json:"serving"`
	Metrics obs.Snapshot   `json:"metrics"`
}

// chaosOverhead compares the clean path with and without checksum
// verification: wall-clock microseconds per direct KNN query and
// engine throughput over the same batch. Ratios are checked/plain.
type chaosOverhead struct {
	PlainUsPerQuery   float64 `json:"plain_us_per_query"`
	CheckedUsPerQuery float64 `json:"checked_us_per_query"`
	QueryRatio        float64 `json:"query_ratio"`
	PlainQPS          float64 `json:"plain_qps"`
	CheckedQPS        float64 `json:"checked_qps"`
	QPSRatio          float64 `json:"qps_ratio"`
}

// chaosTransient: seeded transient read/write faults under the retry
// policy. Every query must return the clean answer.
type chaosTransient struct {
	Queries     int            `json:"queries"`
	Mismatches  int            `json:"mismatches"`
	ReadRetries int64          `json:"read_retries"`
	Injected    map[string]int `json:"injected"`
}

// chaosCorrupt: at-rest bit flips on live quantized pages. Every query
// must still return the clean answer via the quarantine fallback, and
// Repair must heal the tree.
type chaosCorrupt struct {
	PagesCorrupted   int   `json:"pages_corrupted"`
	Mismatches       int   `json:"mismatches"`
	ChecksumFailures int64 `json:"checksum_failures"`
	Quarantined      int   `json:"quarantined"`
	DegradedReads    int64 `json:"degraded_reads"`
	Repaired         int   `json:"repaired"`
	DegradedAfter    int64 `json:"degraded_reads_after_repair"`
}

// chaosServing: overload and cancellation behavior of the engine under
// injected latency.
type chaosServing struct {
	Burst         int   `json:"burst"`
	Sheds         int64 `json:"sheds"`
	Cancellations int64 `json:"cancellations"`
	Panics        int64 `json:"panics"`
}

type chaosAnswer struct {
	ids   []uint32
	dists []float64
}

// runChaos is iqbench's -faults mode: a deterministic fault-injection
// campaign over one tree, asserting that faults are retried, corruption
// is quarantined (results stay identical to the clean run), and the
// engine sheds/cancels instead of hanging — then reports the clean-path
// cost of the protection.
func runChaos(spec string, scale float64, queries int, seed int64, out string, gate bool) error {
	userCfg, err := store.ParseFaultSpec(spec)
	if err != nil {
		return err
	}
	n := int(30000 * scale)
	if n < 3000 {
		n = 3000
	}
	const dim, k = 8, 5
	if queries > n/10 {
		queries = n / 10
	}
	pts, err := dataset.Generate(dataset.Uniform, seed, n+queries, dim)
	if err != nil {
		return err
	}
	db, qs := dataset.Split(pts, queries)
	opt := core.DefaultOptions()
	opt.FixedBits = 8 // compressed pages + exact shadows: the fallback is reachable

	report := chaosReport{
		Date:    time.Now().UTC().Format(time.RFC3339),
		N:       n,
		Dim:     dim,
		Queries: queries,
		Spec:    spec,
	}

	// ---- Overhead: identical trees, with and without checksums. Both
	// get the shared buffer pool (the production configuration):
	// blocks verify once on pool ingest, hits are pre-verified.
	plainSto := store.NewSim(store.DefaultConfig())
	plainSto.SetCache(64 << 20)
	plainTree, err := core.Build(plainSto, db, opt)
	if err != nil {
		return err
	}
	checkedSto := store.NewSim(store.DefaultConfig())
	if err := checkedSto.EnableChecksums(); err != nil {
		return err
	}
	checkedSto.SetCache(64 << 20)
	checkedTree, err := core.Build(checkedSto, db, opt)
	if err != nil {
		return err
	}
	plainUs, checkedUs, plainQPS, checkedQPS, err := measureCleanPaths(
		plainSto, plainTree, checkedSto, checkedTree, qs, k)
	if err != nil {
		return err
	}
	report.Over = chaosOverhead{
		PlainUsPerQuery:   plainUs,
		CheckedUsPerQuery: checkedUs,
		QueryRatio:        checkedUs / plainUs,
		PlainQPS:          plainQPS,
		CheckedQPS:        checkedQPS,
		QPSRatio:          plainQPS / checkedQPS,
	}
	fmt.Printf("overhead: plain %.1f us/query, checked %.1f us/query (%.3fx); QPS %.0f vs %.0f (%.3fx)\n",
		plainUs, checkedUs, report.Over.QueryRatio, plainQPS, checkedQPS, report.Over.QPSRatio)

	// ---- Build the chaos tree: checksums above a fault injector. ----
	faults := store.NewFaultStore(store.NewSimStore(store.DefaultConfig()), store.FaultConfig{})
	sto := store.Wrap(faults)
	if err := sto.EnableChecksums(); err != nil {
		return err
	}
	tr, err := core.Build(sto, db, opt)
	if err != nil {
		return err
	}
	clean := make([]chaosAnswer, len(qs))
	for i, q := range qs {
		res, err := tr.KNN(sto.NewSession(), q, k)
		if err != nil {
			return fmt.Errorf("clean baseline query %d: %w", i, err)
		}
		for _, nb := range res {
			clean[i].ids = append(clean[i].ids, nb.ID)
			clean[i].dists = append(clean[i].dists, nb.Dist)
		}
	}

	// ---- Phase A: transient faults are retried away. ----
	trCfg := store.FaultConfig{Seed: userCfg.Seed, ReadErr: userCfg.ReadErr, WriteErr: userCfg.WriteErr}
	if trCfg.Seed == 0 {
		trCfg.Seed = seed
	}
	if trCfg.ReadErr == 0 {
		trCfg.ReadErr = 0.02
	}
	retriesBefore := obs.Default().Counter("store.read_retries").Value()
	faults.SetConfig(trCfg)
	mismatches := 0
	for i, q := range qs {
		res, err := tr.KNN(sto.NewSession(), q, k)
		if err != nil {
			return fmt.Errorf("transient phase query %d: %w", i, err)
		}
		if !sameAnswer(res, clean[i]) {
			mismatches++
		}
	}
	injected := map[string]int{}
	for kind, c := range faults.Injected() {
		injected[kind.String()] = c
	}
	faults.SetConfig(store.FaultConfig{})
	report.Trans = chaosTransient{
		Queries:     len(qs),
		Mismatches:  mismatches,
		ReadRetries: obs.Default().Counter("store.read_retries").Value() - retriesBefore,
		Injected:    injected,
	}
	fmt.Printf("transient: %d queries, %d mismatches, %d reads retried, injected %v\n",
		len(qs), mismatches, report.Trans.ReadRetries, injected)

	// ---- Phase B: at-rest corruption is quarantined, then repaired. ----
	failsBefore := obs.Default().Counter("store.checksum_failures").Value()
	degradedBefore := obs.Default().Counter("core.degraded_reads").Value()
	corrupted := 0
	bf := sto.Backend().Lookup(core.QFileName)
	for _, row := range tr.DescribePages() {
		if row.Bits == quantize.ExactBits || corrupted >= 3 {
			continue
		}
		pos := row.QPos * tr.Options().QPageBlocks
		data, err := bf.ReadBlocks(pos, 1)
		if err != nil {
			return err
		}
		mut := append([]byte(nil), data...)
		mut[len(mut)/3] ^= 0x40
		if err := bf.WriteBlocks(pos, mut); err != nil {
			return err
		}
		corrupted++
	}
	if corrupted == 0 {
		return fmt.Errorf("chaos: no compressed pages to corrupt")
	}
	mismatches = 0
	for i, q := range qs {
		res, err := tr.KNN(sto.NewSession(), q, k)
		if err != nil {
			return fmt.Errorf("corruption phase query %d: %w", i, err)
		}
		if !sameAnswer(res, clean[i]) {
			mismatches++
		}
	}
	quarantined := len(tr.QuarantinedPages())
	repaired, err := tr.Repair(sto.NewSession())
	if err != nil {
		return fmt.Errorf("repair: %w", err)
	}
	degradedMid := obs.Default().Counter("core.degraded_reads").Value()
	for i, q := range qs {
		res, err := tr.KNN(sto.NewSession(), q, k)
		if err != nil {
			return fmt.Errorf("post-repair query %d: %w", i, err)
		}
		if !sameAnswer(res, clean[i]) {
			mismatches++
		}
	}
	report.Corrupt = chaosCorrupt{
		PagesCorrupted:   corrupted,
		Mismatches:       mismatches,
		ChecksumFailures: obs.Default().Counter("store.checksum_failures").Value() - failsBefore,
		Quarantined:      quarantined,
		DegradedReads:    degradedMid - degradedBefore,
		Repaired:         repaired,
		DegradedAfter:    obs.Default().Counter("core.degraded_reads").Value() - degradedMid,
	}
	fmt.Printf("corruption: %d pages flipped, %d quarantined, %d degraded reads, %d repaired, %d mismatches\n",
		corrupted, quarantined, report.Corrupt.DegradedReads, repaired, mismatches)

	// ---- Phase C: overload sheds, cancellation is honored. ----
	latCfg := store.FaultConfig{Latency: 1, LatencyDur: 2 * time.Millisecond}
	if userCfg.Latency > 0 {
		latCfg.Latency, latCfg.LatencyDur = userCfg.Latency, userCfg.LatencyDur
	}
	faults.SetConfig(latCfg)
	reg := &obs.Registry{}
	e := engine.New(sto, tr, 1, engine.WithRegistry(reg), engine.WithQueueWait(time.Millisecond))
	const burst = 32
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(q vec.Point) {
			defer wg.Done()
			e.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k})
		}(qs[i%len(qs)])
	}
	wg.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := e.Submit(engine.Query{Kind: engine.KNN, Point: qs[0], K: k, Ctx: ctx}); !errors.Is(res.Err, engine.ErrCanceled) {
		e.Close()
		return fmt.Errorf("canceled query returned %v, want ErrCanceled", res.Err)
	}
	e.Close()
	faults.SetConfig(store.FaultConfig{})
	report.Serve = chaosServing{
		Burst:         burst,
		Sheds:         reg.Counter("engine.sheds").Value(),
		Cancellations: reg.Counter("engine.cancellations").Value(),
		Panics:        reg.Counter("engine.panics").Value(),
	}
	fmt.Printf("serving: burst %d -> %d shed, %d canceled, %d panics\n",
		burst, report.Serve.Sheds, report.Serve.Cancellations, report.Serve.Panics)

	report.Metrics = obs.Default().Snapshot()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	fmt.Printf("report written to %s\n", out)

	if gate {
		var fails []string
		if report.Trans.Mismatches != 0 {
			fails = append(fails, fmt.Sprintf("%d transient-phase mismatches", report.Trans.Mismatches))
		}
		if report.Trans.ReadRetries == 0 {
			fails = append(fails, "no reads were retried")
		}
		if report.Corrupt.Mismatches != 0 {
			fails = append(fails, fmt.Sprintf("%d corruption-phase mismatches", report.Corrupt.Mismatches))
		}
		if report.Corrupt.ChecksumFailures == 0 {
			fails = append(fails, "checksums caught nothing")
		}
		if report.Corrupt.Quarantined == 0 {
			fails = append(fails, "nothing quarantined")
		}
		if report.Corrupt.Repaired == 0 {
			fails = append(fails, "nothing repaired")
		}
		if report.Corrupt.DegradedAfter != 0 {
			fails = append(fails, "degraded reads after repair")
		}
		if report.Serve.Sheds == 0 {
			fails = append(fails, "overload shed nothing")
		}
		if report.Serve.Cancellations == 0 {
			fails = append(fails, "cancellation not counted")
		}
		const maxOverhead = 1.05
		if report.Over.QueryRatio > maxOverhead {
			fails = append(fails, fmt.Sprintf("checksum query overhead %.3fx > %.2fx", report.Over.QueryRatio, maxOverhead))
		}
		if report.Over.QPSRatio > maxOverhead {
			fails = append(fails, fmt.Sprintf("checksum QPS overhead %.3fx > %.2fx", report.Over.QPSRatio, maxOverhead))
		}
		if len(fails) > 0 {
			return fmt.Errorf("chaos gate FAILED: %v", fails)
		}
		fmt.Println("chaos gate OK: faults retried, corruption quarantined and repaired, overload shed, overhead within 5%")
	}
	return nil
}

// measureCleanPath times direct KNN queries and engine batch throughput
// on an undamaged tree. Three rounds each, best round kept: the fault
// gate should not fail on scheduler noise.
// measureCleanPaths times direct KNN queries and engine batch
// throughput on the plain and checksummed trees with the rounds
// interleaved, so clock drift, turbo states and GC land on both
// stores alike — the 5% gate must compare CRC cost, not machine noise.
// Best round is kept per store.
func measureCleanPaths(plainSto *store.Store, plainTree *core.Tree,
	checkedSto *store.Store, checkedTree *core.Tree,
	qs []vec.Point, k int) (plainUs, checkedUs, plainQPS, checkedQPS float64, err error) {

	// Repeat the query set until a round is long enough (~3000 queries)
	// that scheduler noise cannot swamp a 5% signal.
	reps := (3000 + len(qs) - 1) / len(qs)
	direct := func(sto *store.Store, tr *core.Tree) (time.Duration, error) {
		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, q := range qs {
				if _, err := tr.KNN(sto.NewSession(), q, k); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}
	bestPlain, bestChecked := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		dp, err := direct(plainSto, plainTree)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		dc, err := direct(checkedSto, checkedTree)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if dp < bestPlain {
			bestPlain = dp
		}
		if dc < bestChecked {
			bestChecked = dc
		}
	}
	nq := float64(reps * len(qs))
	plainUs = float64(bestPlain.Microseconds()) / nq
	checkedUs = float64(bestChecked.Microseconds()) / nq

	batch := make([]engine.Query, 0, reps*len(qs))
	for r := 0; r < reps; r++ {
		for _, q := range qs {
			batch = append(batch, engine.Query{Kind: engine.KNN, Point: q, K: k})
		}
	}
	throughput := func(sto *store.Store, tr *core.Tree) (float64, error) {
		e := engine.New(sto, tr, 4, engine.WithRegistry(&obs.Registry{}))
		start := time.Now()
		results := e.SubmitBatch(batch)
		wall := time.Since(start).Seconds()
		e.Close()
		for _, res := range results {
			if res.Err != nil {
				return 0, res.Err
			}
		}
		return wall, nil
	}
	// The engine path is noisier than direct queries (goroutine
	// scheduling); more rounds keep the best-of stable.
	bestPlainWall, bestCheckedWall := 1e18, 1e18
	for round := 0; round < 7; round++ {
		wp, err := throughput(plainSto, plainTree)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		wc, err := throughput(checkedSto, checkedTree)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if wp < bestPlainWall {
			bestPlainWall = wp
		}
		if wc < bestCheckedWall {
			bestCheckedWall = wc
		}
	}
	plainQPS = float64(len(batch)) / bestPlainWall
	checkedQPS = float64(len(batch)) / bestCheckedWall
	return plainUs, checkedUs, plainQPS, checkedQPS, nil
}

func sameAnswer(res []core.Neighbor, want chaosAnswer) bool {
	if len(res) != len(want.ids) {
		return false
	}
	for i, nb := range res {
		if nb.ID != want.ids[i] || nb.Dist != want.dists[i] {
			return false
		}
	}
	return true
}
