package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// shareReport is the schema of the -share JSON report (BENCH_share.json):
// one row per client count, each comparing the scan-sharing coordinator
// against the share-nothing worker pool on the same tree and the same
// query batch.
type shareReport struct {
	Date     string     `json:"date"`
	Dataset  string     `json:"dataset"`
	N        int        `json:"n"`
	Dim      int        `json:"dim"`
	Queries  int        `json:"queries"`
	K        int        `json:"k"`
	Clusters int        `json:"query_clusters"`
	Rows     []shareRow `json:"rows"`
}

// shareRow is one point of the concurrency sweep. Clients is both the
// worker count of the share-nothing pool and the multiplexing window of
// the sharing coordinator, so the two modes model the same number of
// concurrently executing queries. QPS figures divide the batch size by
// the simulated makespan; latencies come from the per-query simulated
// latency histogram. QueriesPerPage is page serves over page fetches —
// how many queries each fetched page fed on average (1.0 = no sharing).
type shareRow struct {
	Clients        int     `json:"clients"`
	SharedQPS      float64 `json:"shared_qps"`
	DirectQPS      float64 `json:"direct_qps"`
	Speedup        float64 `json:"speedup"`
	SharedP50      float64 `json:"shared_latency_p50"`
	SharedP99      float64 `json:"shared_latency_p99"`
	DirectP50      float64 `json:"direct_latency_p50"`
	DirectP99      float64 `json:"direct_latency_p99"`
	PagesFetched   int64   `json:"pages_fetched"`
	PageServes     int64   `json:"page_serves"`
	QueriesPerPage float64 `json:"queries_per_page"`
}

// runShare benchmarks cross-query scan sharing: a clustered query
// workload (concurrent clients hitting overlapping hot regions) is
// pushed through both execution modes at each client count.
func runShare(spec string, scale float64, queries int, seed int64, out string, gate bool) error {
	var clientCounts []int
	for _, part := range strings.Split(spec, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c <= 0 {
			return fmt.Errorf("bad -share client count %q", part)
		}
		clientCounts = append(clientCounts, c)
	}

	n := int(float64(100000) * scale)
	if n < 2000 {
		n = 2000
	}
	const dim, k, clusters = 16, 1, 4
	db, err := dataset.Generate(dataset.Uniform, seed, n, dim)
	if err != nil {
		return err
	}
	// Queries cluster around a few hot regions: that is the workload scan
	// sharing exists for — concurrent clients re-reading the same pages.
	qs := dataset.GenClustered(seed+1, queries, dim, clusters, 0.05)
	sto := store.NewSim(store.DefaultConfig())
	tr, err := core.Build(sto, db, core.DefaultOptions())
	if err != nil {
		return err
	}
	batch := make([]engine.Query, len(qs))
	for i, q := range qs {
		batch[i] = engine.Query{Kind: engine.KNN, Point: q, K: k}
	}

	report := shareReport{
		Date:     time.Now().UTC().Format(time.RFC3339),
		Dataset:  string(dataset.Uniform),
		N:        n,
		Dim:      dim,
		Queries:  queries,
		K:        k,
		Clusters: clusters,
	}
	fmt.Printf("scan sharing: %s n=%d dim=%d queries=%d k=%d query-clusters=%d\n",
		dataset.Uniform, n, dim, queries, k, clusters)
	for _, c := range clientCounts {
		sharedQPS, sharedLat, fetched, serves, err := runShareMode(sto, tr, batch, c, true)
		if err != nil {
			return fmt.Errorf("clients=%d shared: %w", c, err)
		}
		directQPS, directLat, _, _, err := runShareMode(sto, tr, batch, c, false)
		if err != nil {
			return fmt.Errorf("clients=%d direct: %w", c, err)
		}
		row := shareRow{
			Clients:      c,
			SharedQPS:    sharedQPS,
			DirectQPS:    directQPS,
			Speedup:      sharedQPS / directQPS,
			SharedP50:    sharedLat.P50,
			SharedP99:    sharedLat.P99,
			DirectP50:    directLat.P50,
			DirectP99:    directLat.P99,
			PagesFetched: fetched,
			PageServes:   serves,
		}
		if fetched > 0 {
			row.QueriesPerPage = float64(serves) / float64(fetched)
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("clients=%2d  shared=%8.1f qps  direct=%8.1f qps  speedup=%.2fx  q/page=%.2f  p99 %.4f vs %.4f s\n",
			c, row.SharedQPS, row.DirectQPS, row.Speedup, row.QueriesPerPage, row.SharedP99, row.DirectP99)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	fmt.Printf("report written to %s\n", out)

	if gate {
		return checkSharing(report)
	}
	return nil
}

// runShareMode pushes the batch through one engine configuration and
// returns the simulated aggregate QPS, the latency snapshot, and (in
// sharing mode) the fetch/serve counters.
func runShareMode(sto *store.Store, tr *core.Tree, batch []engine.Query, clients int, sharing bool) (
	float64, obs.HistogramSnapshot, int64, int64, error) {
	reg := &obs.Registry{}
	opts := []engine.Option{engine.WithRegistry(reg)}
	if sharing {
		opts = append(opts, engine.WithScanSharing(), engine.WithShareWindow(clients))
	}
	e := engine.New(sto, tr, clients, opts...)
	results := e.SubmitBatch(batch)
	for _, res := range results {
		if res.Err != nil {
			e.Close()
			return 0, obs.HistogramSnapshot{}, 0, 0, res.Err
		}
	}
	makespan := e.Makespan()
	e.Close()
	lat := reg.Histogram("engine.sim_latency_seconds").Snapshot()
	qps := float64(len(batch)) / makespan
	fetched := reg.Counter("engine.shared.pages_fetched").Value()
	serves := reg.Counter("engine.shared.page_serves").Value()
	return qps, lat, fetched, serves, nil
}

// checkSharing enforces the two acceptance thresholds of the sharing
// pipeline: a real aggregate win under contention, and no meaningful
// single-client latency cost for the restructuring.
func checkSharing(r shareReport) error {
	var at32, at1 *shareRow
	for i := range r.Rows {
		switch r.Rows[i].Clients {
		case 32:
			at32 = &r.Rows[i]
		case 1:
			at1 = &r.Rows[i]
		}
	}
	if at32 == nil || at1 == nil {
		return fmt.Errorf("sharing gate needs rows for 1 and 32 clients")
	}
	if at32.Speedup < 1.3 {
		return fmt.Errorf("sharing gate FAILED: %.2fx aggregate QPS at 32 clients, want >= 1.3x", at32.Speedup)
	}
	if at32.QueriesPerPage <= 1.0 {
		return fmt.Errorf("sharing gate FAILED: %.2f queries/page at 32 clients, want > 1.0", at32.QueriesPerPage)
	}
	if at1.SharedP99 > at1.DirectP99*1.10 {
		return fmt.Errorf("sharing gate FAILED: single-client p99 %.4fs vs %.4fs direct (> 10%% regression)",
			at1.SharedP99, at1.DirectP99)
	}
	fmt.Printf("sharing gate OK: %.2fx at 32 clients, %.2f queries/page, single-client p99 %.4fs vs %.4fs\n",
		at32.Speedup, at32.QueriesPerPage, at1.SharedP99, at1.DirectP99)
	return nil
}
