package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// ingestReport is the schema of the -ingest JSON report
// (BENCH_ingest.json): one durable-ingest burst through the engine's
// write lane on a WAL-mode tree, then read latency quiescent vs. while
// the incremental reoptimizer runs.
type ingestReport struct {
	Date    string `json:"date"`
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	Writers int    `json:"writers"`

	Inserts           int     `json:"inserts"`
	Deletes           int     `json:"deletes"`
	WallSeconds       float64 `json:"wall_seconds"`
	AckedWritesPerSec float64 `json:"acked_writes_per_sec"`

	WALAppends      int64   `json:"wal_appends"`
	WALFsyncs       int64   `json:"wal_fsyncs"`
	AppendsPerFsync float64 `json:"appends_per_fsync"`
	GroupBatchP50   float64 `json:"group_commit_batch_p50"`
	GroupBatchP99   float64 `json:"group_commit_batch_p99"`
	EngineBatches   int64   `json:"engine_write_batches"`

	ReoptSteps int64 `json:"reopt_steps"`

	Quiescent   ingestLatency `json:"quiescent"`
	DuringReopt ingestLatency `json:"during_reopt"`

	// SimP99Ratio is during-reopt simulated p99 over quiescent simulated
	// p99 — the bounded-interference number the gate checks. Simulated
	// latency is the repo's latency currency: it charges exactly the I/O
	// a query pays, so a reoptimizer that made readers fall off their
	// pinned snapshots (or degraded them onto exact-page fallbacks)
	// shows up here, deterministically. Wall latency is reported too but
	// not gated: on a small CI host it measures scheduler contention
	// with the CPU-bound re-quantization steps, not index interference.
	SimP99Ratio  float64 `json:"sim_p99_ratio"`
	WallP99Ratio float64 `json:"wall_p99_ratio"`
}

// ingestLatency is one read-latency measurement: simulated seconds (the
// disk model, deterministic) and host wall seconds (actual interference
// from the concurrent reoptimizer).
type ingestLatency struct {
	SimP50  float64 `json:"sim_p50"`
	SimP99  float64 `json:"sim_p99"`
	WallP50 float64 `json:"wall_p50"`
	WallP99 float64 `json:"wall_p99"`
}

// runIngest benchmarks the durable write path end to end: a burst of
// concurrent single-point writes through the engine's write lane (every
// acknowledgement means WAL-durable), then the same KNN batch measured
// quiescent and again while a background goroutine drives the
// incremental reoptimizer step by step. The gate fails when reads under
// reoptimization degrade past 2x the quiescent simulated p99.
func runIngest(spec string, scale float64, queries int, seed int64, out string, gate bool) error {
	writers := 8
	if spec != "" && spec != "default" {
		w, err := strconv.Atoi(spec)
		if err != nil || w <= 0 {
			return fmt.Errorf("bad -ingest writer count %q", spec)
		}
		writers = w
	}

	n := int(float64(50000) * scale)
	if n < 2000 {
		n = 2000
	}
	const dim, k = 16, 5
	extraN := n / 4 / writers * writers // evenly divisible insert burst
	pts, err := dataset.Generate(dataset.Uniform, seed, n+extraN+queries, dim)
	if err != nil {
		return err
	}
	db := pts[:n]
	extra := pts[n : n+extraN]
	qs := pts[n+extraN:]

	sto := store.NewSim(store.DefaultConfig())
	opt := core.DefaultOptions()
	opt.WAL = true
	tr, err := core.Build(sto, db, opt)
	if err != nil {
		return err
	}

	report := ingestReport{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Dataset: string(dataset.Uniform),
		N:       n,
		Dim:     dim,
		Writers: writers,
	}
	fmt.Printf("durable ingest: %s n=%d dim=%d writers=%d inserts=%d\n",
		dataset.Uniform, n, dim, writers, extraN)

	// Phase 1 — ingest burst. WAL counters live on the process registry;
	// deltas around the burst isolate this run's appends and fsyncs.
	reg := &obs.Registry{}
	we := engine.New(sto, tr, 4, engine.WithWrites(), engine.WithRegistry(reg))
	before := obs.Default().Snapshot().Counters
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)
	per := extraN / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				idx := w*per + i
				res := we.SubmitWrite(engine.Write{
					Kind:   engine.WriteInsert,
					Points: extra[idx : idx+1],
					IDs:    []uint32{uint32(1000000 + idx)},
				})
				if res.Err != nil {
					errc <- fmt.Errorf("insert %d: %w", idx, res.Err)
					return
				}
			}
		}(w)
	}
	deletes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 13 {
			res := we.SubmitWrite(engine.Write{
				Kind:   engine.WriteDelete,
				Points: db[i : i+1],
				IDs:    []uint32{uint32(i)},
			})
			if res.Err != nil {
				errc <- fmt.Errorf("delete %d: %w", i, res.Err)
				return
			}
			deletes++
		}
	}()
	wg.Wait()
	wall := time.Since(start).Seconds()
	we.Close()
	select {
	case err := <-errc:
		return err
	default:
	}
	after := obs.Default().Snapshot().Counters
	group := obs.Default().Histogram("wal.group_commit_batch").Snapshot()
	writes := extraN + deletes

	report.Inserts = extraN
	report.Deletes = deletes
	report.WallSeconds = wall
	report.AckedWritesPerSec = float64(writes) / wall
	report.WALAppends = after["wal.appends"] - before["wal.appends"]
	report.WALFsyncs = after["wal.fsyncs"] - before["wal.fsyncs"]
	if report.WALFsyncs > 0 {
		report.AppendsPerFsync = float64(report.WALAppends) / float64(report.WALFsyncs)
	}
	report.GroupBatchP50 = group.P50
	report.GroupBatchP99 = group.P99
	report.EngineBatches = reg.Snapshot().Counters["engine.write_batches"]
	fmt.Printf("burst: %d acked writes in %.3fs (%.0f writes/s), %d WAL appends over %d fsyncs (%.1f/fsync)\n",
		writes, wall, report.AckedWritesPerSec, report.WALAppends, report.WALFsyncs, report.AppendsPerFsync)

	// Phase 2 — quiescent read latency over the churned tree.
	batch := make([]engine.Query, len(qs))
	for i, q := range qs {
		batch[i] = engine.Query{Kind: engine.KNN, Point: q, K: k}
	}
	quiet, err := measureReads(sto, tr, batch)
	if err != nil {
		return fmt.Errorf("quiescent reads: %w", err)
	}
	report.Quiescent = quiet
	fmt.Printf("quiescent reads: sim p50/p99 = %.4f/%.4f s, wall p50/p99 = %.6f/%.6f s\n",
		quiet.SimP50, quiet.SimP99, quiet.WallP50, quiet.WallP99)

	// Phase 3 — same reads while a background goroutine steps the
	// incremental reoptimizer; when a run completes it begins another,
	// so the whole read window overlaps compaction. Steps are paced like
	// a real background daemon would be — a hot loop on a small host
	// would just benchmark CPU starvation.
	stop := make(chan struct{})
	stepDone := make(chan error, 1)
	var steps int64
	go func() {
		s := sto.NewSession()
		for {
			select {
			case <-stop:
				// Drive any in-flight run to its swap so the tree is
				// left clean (and the final WAL truncation happens).
				for tr.ReoptimizeRunning() {
					if _, err := tr.ReoptimizeStep(s); err != nil {
						stepDone <- err
						return
					}
				}
				stepDone <- nil
				return
			default:
			}
			if _, err := tr.ReoptimizeStep(s); err != nil {
				stepDone <- err
				return
			}
			steps++
			time.Sleep(time.Millisecond)
		}
	}()
	during, rerr := measureReads(sto, tr, batch)
	close(stop)
	if serr := <-stepDone; serr != nil {
		return fmt.Errorf("reoptimize step: %w", serr)
	}
	if rerr != nil {
		return fmt.Errorf("reads during reoptimize: %w", rerr)
	}
	report.DuringReopt = during
	report.ReoptSteps = steps
	if quiet.SimP99 > 0 {
		report.SimP99Ratio = during.SimP99 / quiet.SimP99
	}
	if quiet.WallP99 > 0 {
		report.WallP99Ratio = during.WallP99 / quiet.WallP99
	}
	fmt.Printf("reads during reoptimize (%d steps): sim p50/p99 = %.4f/%.4f s (%.2fx quiescent sim p99), wall p50/p99 = %.6f/%.6f s\n",
		steps, during.SimP50, during.SimP99, report.SimP99Ratio, during.WallP50, during.WallP99)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	fmt.Printf("report written to %s\n", out)

	if gate {
		if ratio, ok := checkIngest(report); !ok {
			return fmt.Errorf("ingest gate FAILED: simulated p99 during incremental reoptimize is %.2fx quiescent, want <= 2x", ratio)
		} else {
			fmt.Printf("ingest gate OK: simulated p99 during incremental reoptimize is %.2fx quiescent\n", ratio)
		}
	}
	return nil
}

// checkIngest evaluates the bounded-interference gate: read simulated
// p99 while the reoptimizer runs must stay within 2x the quiescent p99.
func checkIngest(r ingestReport) (float64, bool) {
	return r.SimP99Ratio, r.Quiescent.SimP99 > 0 && r.DuringReopt.SimP99 <= 2*r.Quiescent.SimP99
}

// measureReads pushes the query batch through a fresh 4-worker engine
// (its own registry, so phases do not share histogram windows) enough
// times to populate the latency histograms, and returns the snapshot.
func measureReads(sto *store.Store, tr *core.Tree, batch []engine.Query) (ingestLatency, error) {
	reg := &obs.Registry{}
	e := engine.New(sto, tr, 4, engine.WithRegistry(reg))
	defer e.Close()
	const passes = 4
	for p := 0; p < passes; p++ {
		for _, res := range e.SubmitBatch(batch) {
			if res.Err != nil {
				return ingestLatency{}, res.Err
			}
		}
	}
	sim := reg.Histogram("engine.sim_latency_seconds").Snapshot()
	wl := reg.Histogram("engine.wall_latency_seconds").Snapshot()
	return ingestLatency{SimP50: sim.P50, SimP99: sim.P99, WallP50: wl.P50, WallP99: wl.P99}, nil
}
