package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/vec"
)

// runShardStatus demonstrates the self-healing replica lifecycle on a
// small in-process fleet: it builds a Durable+SelfHeal coordinator over
// the generated dataset, applies a few write batches, kills one
// replica, and prints every per-replica state transition (with WAL
// position and lag) until the repairer has rebuilt the victim and the
// fleet is back to all-Serving.
func runShardStatus(name dataset.Name, seed int64, n, d int) error {
	pts, err := dataset.Generate(name, seed, n, d)
	if err != nil {
		return err
	}
	// A fixed small topology: the point is the lifecycle, not scale.
	const shards, replicas = 4, 2
	reg := &obs.Registry{}
	c, err := shard.New(shard.Config{
		Registry: reg,
		Shards:   shards,
		Replicas: replicas,
		Durable:  true,
		SelfHeal: true,
		Heal: shard.HealConfig{
			Interval:     5 * time.Millisecond,
			ProbeBackoff: 25 * time.Millisecond,
		},
	}, pts)
	if err != nil {
		return err
	}
	defer c.Close()

	printStatus := func(header string) {
		fmt.Printf("%s\n", header)
		fmt.Printf("  %-5s %-7s %-12s %-5s %8s %5s %5s\n",
			"shard", "replica", "state", "ready", "lsn", "lag", "fails")
		for _, row := range c.Status() {
			fmt.Printf("  %-5d %-7d %-12s %-5v %8d %5d %5d\n",
				row.Shard, row.Replica, row.State, row.Ready,
				row.AppliedLSN, row.Lag, row.Fails)
		}
	}

	// A few write batches so every replica carries a WAL position.
	r := rand.New(rand.NewSource(seed + 7))
	for round := 0; round < 3; round++ {
		extra := make([]vec.Point, 32)
		for i := range extra {
			p := make(vec.Point, d)
			for j := range p {
				p[j] = r.Float32()
			}
			extra[i] = p
		}
		if _, err := c.Insert(extra); err != nil {
			return fmt.Errorf("insert: %w", err)
		}
	}
	printStatus(fmt.Sprintf("healthy fleet: %d shards x %d replicas, %d points", shards, replicas, len(pts)))

	fmt.Printf("\nkilling shard %d replica 1...\n", shards-1)
	killed := time.Now()
	c.Engine(shards-1, 1).Close()

	// Follow the lifecycle: print every state transition until the
	// repairer converges the fleet back to all-Serving.
	last := make(map[[2]int]shard.ReplicaState)
	for _, row := range c.Status() {
		last[[2]int{row.Shard, row.Replica}] = row.State
	}
	deadline := killed.Add(60 * time.Second)
	for {
		for _, row := range c.Status() {
			key := [2]int{row.Shard, row.Replica}
			if row.State != last[key] {
				fmt.Printf("  %7.3fs  shard %d replica %d: %s -> %s\n",
					time.Since(killed).Seconds(), row.Shard, row.Replica, last[key], row.State)
				last[key] = row.State
			}
		}
		if c.Healthy() {
			break
		}
		if time.Now().After(deadline) {
			printStatus("TIMED OUT waiting for all-Serving:")
			return fmt.Errorf("fleet did not converge within %s", time.Since(killed).Round(time.Millisecond))
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println()
	printStatus(fmt.Sprintf("healed fleet (MTTR %s):", time.Since(killed).Round(time.Millisecond)))
	fmt.Printf("repairer: drains=%d probes=%d readmissions=%d rebuilds=%d\n",
		reg.Counter("shard.heal.drains").Value(),
		reg.Counter("shard.heal.probes").Value(),
		reg.Counter("shard.heal.readmissions").Value(),
		reg.Counter("shard.heal.rebuilds").Value())
	return nil
}
