package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/store"
)

// runWAL implements -wal: inspect every write-ahead and checkpoint log
// in the store (record count, LSN range, block extent, torn tail), and
// with -wal-replay force a full recovery — replay the log into the
// checkpointed state, truncate any torn tail, and checkpoint, which
// compacts the WAL back to empty.
func runWAL(sto *store.Store, replay bool) error {
	if n := printWALLogs(sto); n == 0 {
		fmt.Println("no write-ahead or checkpoint logs in this store")
		return nil
	}
	if !replay {
		return nil
	}

	tr, err := core.Open(sto)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if err := tr.CheckInvariants(); err != nil {
		return fmt.Errorf("invariants after replay: %w", err)
	}
	st := tr.Stats()
	fmt.Printf("\nreplayed and checkpointed: %d points, %d pages, invariants OK\n",
		st.Points, st.Pages)
	fmt.Println("logs after compaction:")
	printWALLogs(sto)
	return nil
}

// printWALLogs prints one line per log file in the store and returns
// how many it found.
func printWALLogs(sto *store.Store) int {
	backend := sto.Backend()
	names := backend.Names()
	sort.Strings(names)
	found := 0
	for _, name := range names {
		if !store.IsWALFile(name) {
			continue
		}
		found++
		info, _, err := store.InspectWAL(backend, name)
		if err != nil {
			fmt.Printf("%s: unreadable: %v\n", name, err)
			continue
		}
		fmt.Printf("%s: %d records", name, info.Records)
		if info.Records > 0 {
			fmt.Printf(", LSN %d..%d", info.FirstLSN, info.LastLSN)
		}
		fmt.Printf(", %d blocks", info.Blocks)
		if info.Torn {
			fmt.Printf(", TORN TAIL: %d trailing blocks will be discarded on recovery", info.TornBlocks)
		}
		fmt.Println()
	}
	return found
}
