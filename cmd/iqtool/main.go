// Command iqtool builds an IQ-tree over a generated (or binary) data set,
// prints its physical structure, and runs queries against it, reporting
// the simulated cost of each.
//
// Usage:
//
//	iqtool -dataset color -n 50000 -stats
//	iqtool -dataset uniform -d 16 -n 100000 -knn 10 -queries 5
//	iqtool -in points.bin -range 0.2 -queries 3
//	iqtool -dataset weather -n 50000 -compare   # vs X-tree/VA-file/scan
//
// With -store file the index lives in real files under -dir, so a tree
// built in one process can be reopened and queried in another:
//
//	iqtool -store file -dir /tmp/iq -dataset color -n 50000 -stats
//	iqtool -store file -dir /tmp/iq -open -queries 5 -knn 3
//
// -checksum guards every block with a CRC32C sidecar, verified on every
// uncached read; with -verify it also scrubs the whole store and fails
// on any corrupt block:
//
//	iqtool -store file -dir /tmp/iq -checksum -dataset color -n 50000 -stats
//	iqtool -store file -dir /tmp/iq -open -checksum -verify -stats
//
// A tree built with -durable keeps a write-ahead log: every update is
// logged and group-committed before it is acknowledged, and a crashed
// process recovers by replay on the next open. -wal inspects the log
// (record count, LSN range, torn tail); -wal-replay forces recovery and
// compaction:
//
//	iqtool -store file -dir /tmp/iq -durable -dataset color -n 50000 -stats
//	iqtool -dir /tmp/iq -wal
//	iqtool -dir /tmp/iq -wal -wal-replay
//
// -shard-status demos the self-healing shard layer in-process: a small
// replicated fleet takes writes, one replica is killed, and the tool
// prints every replica lifecycle transition (state, WAL position, LSN
// lag) until the repairer has rebuilt it from a sibling:
//
//	iqtool -shard-status -n 8000
//
// -cache attaches a shared LRU buffer pool (in bytes); cached blocks
// cost no simulated I/O, and -explain reports the pool's hit rate.
// -trace prints the full per-query plan: a per-level cost table
// (directory/quantized/exact seeks, transfers and CPU), the page
// scheduler's batch decisions, and the candidate/refinement funnel.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/scan"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "iqtool: %v\n", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		name     = flag.String("dataset", "uniform", "uniform | cad | color | weather")
		in       = flag.String("in", "", "binary input file from datagen (overrides -dataset)")
		n        = flag.Int("n", 50000, "number of points")
		d        = flag.Int("d", 16, "dimensionality (uniform only)")
		seed     = flag.Int64("seed", 42, "generator seed")
		queries  = flag.Int("queries", 5, "number of held-out query points")
		knn      = flag.Int("knn", 1, "k for k-nearest-neighbor queries")
		rng      = flag.Float64("range", 0, "if > 0, run range queries with this radius instead of k-NN")
		minRec   = flag.Float64("min-recall", 0, "approximate k-NN: target expected recall in (0,1]; 0 or 1 = exact")
		statsFlg = flag.Bool("stats", false, "print tree structure statistics only")
		pagesFlg = flag.Bool("pages", false, "with -stats: also dump one line per quantized page")
		verify   = flag.Bool("verify", false, "run the full structural invariant check after building")
		explain  = flag.Bool("explain", false, "per query: print the T1st/T2nd/T3rd cost decomposition and physical work")
		traceFlg = flag.Bool("trace", false, "per query: print the full trace (per-level cost table, batches, funnel)")
		compare  = flag.Bool("compare", false, "also run X-tree, VA-file and scan on the same queries")
		maxMet   = flag.Bool("lmax", false, "use the maximum metric instead of Euclidean")
		backend  = flag.String("store", "sim", "block store backend: sim | file")
		dir      = flag.String("dir", "", "directory for -store file")
		open     = flag.Bool("open", false, "open the existing tree in -dir instead of building (implies -store file)")
		cache    = flag.Int64("cache", 0, "buffer-pool cache budget in bytes (0 = no cache)")
		checksum = flag.Bool("checksum", false, "guard every block with a CRC32C checksum (with -verify: also scrub)")
		durable  = flag.Bool("durable", false, "build in WAL mode: updates are logged and group-committed before acknowledgement")
		walFlg   = flag.Bool("wal", false, "inspect the write-ahead and checkpoint logs in -dir (implies -store file)")
		walRepl  = flag.Bool("wal-replay", false, "with -wal: force recovery — replay the log, truncate torn tails, checkpoint and compact")
		shardSt  = flag.Bool("shard-status", false, "demo the self-healing replica lifecycle: build a small fleet, kill a replica, print per-replica state and WAL lag until it heals")
	)
	flag.Parse()

	if *shardSt {
		return runShardStatus(dataset.Name(*name), *seed, *n, *d)
	}

	if *walFlg {
		*backend = "file"
	}
	if *open {
		*backend = "file"
		if *compare {
			return fmt.Errorf("-compare requires building (omit -open)")
		}
	}
	var sto *store.Store
	switch *backend {
	case "sim":
		sto = store.NewSim(store.DefaultConfig())
	case "file":
		if *dir == "" {
			return fmt.Errorf("-store file requires -dir")
		}
		if sto, err = store.OpenFileStore(*dir, store.DefaultConfig()); err != nil {
			return err
		}
		// A failed close/sync means the on-disk index may be stale;
		// surface it instead of silently exiting 0.
		defer func() {
			if cerr := sto.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close store: %w", cerr)
			}
		}()
	default:
		return fmt.Errorf("unknown -store %q (want sim or file)", *backend)
	}
	if *checksum {
		if err := sto.EnableChecksums(); err != nil {
			return fmt.Errorf("enable checksums: %w", err)
		}
	}
	if *cache > 0 {
		sto.SetCache(*cache)
	}
	if *walFlg {
		return runWAL(sto, *walRepl)
	}

	opt := core.DefaultOptions()
	opt.WAL = *durable
	if *maxMet {
		opt.Metric = vec.Maximum
	}

	var tree *core.Tree
	var db, qs []vec.Point
	if *open {
		if tree, err = core.Open(sto); err != nil {
			return fmt.Errorf("open tree in %s: %w", *dir, err)
		}
		// The database stays on disk; regenerate the same held-out query
		// workload the build run used (same -dataset/-n/-seed/-queries).
		qpts, err := dataset.Generate(dataset.Name(*name), *seed, *n+*queries, *d)
		if err != nil {
			return err
		}
		_, qs = dataset.Split(qpts, *queries)
	} else {
		var pts []vec.Point
		if *in != "" {
			pts, err = readBin(*in)
		} else {
			pts, err = dataset.Generate(dataset.Name(*name), *seed, *n+*queries, *d)
		}
		if err != nil {
			return err
		}
		db, qs = dataset.Split(pts, *queries)
		if tree, err = core.Build(sto, db, opt); err != nil {
			return err
		}
		if err := sto.Sync(); err != nil {
			return err
		}
	}

	st := tree.Stats()
	fmt.Printf("IQ-tree: %d points, %d pages, D_F=%.2f\n", st.Points, st.Pages, st.FractalDim)
	fmt.Printf("  bits histogram: %v\n", sortedHistogram(st.BitsHistogram))
	fmt.Printf("  directory %s, quantized %s, exact %s\n",
		size(st.DirectoryBytes), size(st.QuantizedBytes), size(st.ExactBytes))
	fmt.Printf("  model-predicted NN query cost: %.4fs\n", st.PredictedCost)
	if *verify {
		if err := tree.CheckInvariants(); err != nil {
			return fmt.Errorf("invariant check FAILED: %w", err)
		}
		fmt.Println("  structural invariants: OK")
		if *checksum {
			rep, err := sto.Scrub()
			if err != nil {
				return fmt.Errorf("checksum scrub: %w", err)
			}
			if len(rep.Corrupt) > 0 {
				for _, c := range rep.Corrupt {
					fmt.Printf("  CORRUPT: %s block %d\n", c.File, c.Block)
				}
				return fmt.Errorf("checksum scrub FAILED: %d of %d blocks corrupt", len(rep.Corrupt), rep.BlocksChecked)
			}
			fmt.Printf("  checksum scrub: OK (%d blocks verified)\n", rep.BlocksChecked)
		}
	}
	if *statsFlg {
		if *pagesFlg {
			fmt.Println("  pages (pos count bits volume):")
			for _, row := range tree.DescribePages() {
				fmt.Printf("    %6d %6d %3d %.3e\n", row.QPos, row.Count, row.Bits, row.Volume)
			}
		}
		return nil
	}

	var others []competitor
	if *compare {
		xd := store.NewSim(store.DefaultConfig())
		vd := store.NewSim(store.DefaultConfig())
		sd := store.NewSim(store.DefaultConfig())
		xt, err := xtree.Build(xd, db, xtree.DefaultOptions())
		if err != nil {
			return err
		}
		va, err := vafile.Build(vd, db, vafile.DefaultOptions())
		if err != nil {
			return err
		}
		sc, err := scan.Build(sd, db, opt.Metric)
		if err != nil {
			return err
		}
		others = []competitor{
			{"X-tree", xd, xt},
			{"VA-file", vd, va},
			{"Scan", sd, sc},
		}
	}

	var iqTotal float64
	totals := make([]float64, len(others))
	for qi, q := range qs {
		s := sto.NewSession()
		var trace core.Trace
		if *rng > 0 {
			res, err := tree.RangeSearchTrace(s, q, *rng, &trace)
			if err != nil {
				return err
			}
			fmt.Printf("query %d: %d results in range %.3f  (%.4fs simulated, %v)\n",
				qi, len(res), *rng, s.Time(), s.Stats)
		} else {
			var res []core.Neighbor
			var err error
			if *minRec > 0 {
				s.SetObserver(&trace)
				res, err = tree.KNNApprox(s, q, *knn, index.Approx{MinRecall: *minRec})
			} else {
				res, err = tree.KNNTrace(s, q, *knn, &trace)
			}
			if err != nil {
				return err
			}
			fmt.Printf("query %d (%.4fs simulated, %v):\n", qi, s.Time(), s.Stats)
			for i, nb := range res {
				fmt.Printf("   %2d. id=%-8d dist=%.5f\n", i+1, nb.ID, nb.Dist)
			}
			if *explain {
				cfg := sto.Config()
				t1 := s.FileStats(core.DirFileName)
				t2 := s.FileStats(core.QFileName)
				t3 := s.FileStats(core.EFileName)
				fmt.Printf("   T1st directory: %.4fs (%v)\n", t1.Time(cfg), t1)
				fmt.Printf("   T2nd quantized: %.4fs (%v); %d pages in %d batches\n",
					t2.Time(cfg), t2, trace.PagesRead, len(trace.Batches))
				fmt.Printf("   T3rd exact:     %.4fs (%v); %d exact-page refinements\n",
					t3.Time(cfg), t3, trace.Refinements)
				fmt.Printf("   CPU:            %.4fs\n", s.Stats.CPUSeconds)
				if p := sto.Pool(); p != nil {
					fmt.Printf("   buffer pool:    %v\n", p.Stats())
				}
			}
		}
		if *traceFlg {
			fmt.Print(trace.Format())
		}
		if err := s.Err(); err != nil {
			return fmt.Errorf("query %d left a poisoned session: %w", qi, err)
		}
		iqTotal += s.Time()
		for ci, c := range others {
			cs := c.sto.NewSession()
			var err error
			if *rng > 0 {
				_, err = c.idx.(interface {
					RangeSearch(*store.Session, vec.Point, float64) ([]vec.Neighbor, error)
				}).RangeSearch(cs, q, *rng)
			} else {
				_, err = c.idx.KNN(cs, q, *knn)
			}
			if err != nil {
				return err
			}
			if err := cs.Err(); err != nil {
				return fmt.Errorf("%s query %d left a poisoned session: %w", c.name, qi, err)
			}
			totals[ci] += cs.Time()
		}
	}
	nq := float64(len(qs))
	fmt.Printf("\naverage simulated seconds/query: IQ-tree %.4f\n", iqTotal/nq)
	for ci, c := range others {
		fmt.Printf("%33s %.4f  (%.1fx)\n", c.name, totals[ci]/nq, totals[ci]/math.Max(iqTotal, 1e-12))
	}
	return nil
}

type searcher interface {
	KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error)
}

type competitor struct {
	name string
	sto  *store.Store
	idx  searcher
}

func sortedHistogram(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d-bit: %d pages", k, h[k])
	}
	return out
}

func size(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func readBin(path string) ([]vec.Point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("truncated header")
	}
	le := binary.LittleEndian
	n := int(le.Uint32(data[0:]))
	d := int(le.Uint32(data[4:]))
	if len(data) < 8+4*n*d {
		return nil, fmt.Errorf("truncated payload: want %d points x %d dims", n, d)
	}
	pts := make([]vec.Point, n)
	off := 8
	for i := range pts {
		p := make(vec.Point, d)
		for j := 0; j < d; j++ {
			p[j] = math.Float32frombits(le.Uint32(data[off:]))
			off += 4
		}
		pts[i] = p
	}
	return pts, nil
}
