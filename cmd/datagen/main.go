// Command datagen emits the paper's evaluation workloads (UNIFORM plus
// the synthetic CAD/COLOR/WEATHER stand-ins) as CSV or a compact binary
// format, and reports their fractal dimensions.
//
// Usage:
//
//	datagen -dataset weather -n 10000 -out weather.csv
//	datagen -dataset uniform -d 16 -n 100000 -format bin -out u16.bin
//	datagen -dataset cad -n 20000 -stats
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/dataset"
	"repro/internal/fractal"
	"repro/internal/vec"
)

func main() {
	var (
		name   = flag.String("dataset", "uniform", "uniform | cad | color | weather")
		n      = flag.Int("n", 10000, "number of points")
		d      = flag.Int("d", 16, "dimensionality (uniform only)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", "", "output file ('' = stdout, CSV only)")
		format = flag.String("format", "csv", "csv | bin (bin: u32 n, u32 d, then n·d f32 LE)")
		stats  = flag.Bool("stats", false, "print fractal-dimension statistics instead of data")
	)
	flag.Parse()

	pts, err := dataset.Generate(dataset.Name(*name), *seed, *n, *d)
	if err != nil {
		fatal(err)
	}

	if *stats {
		fmt.Printf("dataset=%s n=%d d=%d\n", *name, len(pts), len(pts[0]))
		fmt.Printf("correlation dimension D2 = %.2f\n", fractal.CorrelationDimension(pts, vec.Euclidean))
		fmt.Printf("box-counting dimension D0 = %.2f\n", fractal.BoxCountingDimension(pts))
		mbr := vec.MBROf(pts)
		fmt.Printf("data space volume = %.4g\n", mbr.Volume())
		return
	}

	var w *bufio.Writer
	if *out == "" {
		if *format != "csv" {
			fatal(fmt.Errorf("binary output requires -out"))
		}
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch *format {
	case "csv":
		for _, p := range pts {
			for j, v := range p {
				if j > 0 {
					w.WriteByte(',')
				}
				fmt.Fprintf(w, "%g", v)
			}
			w.WriteByte('\n')
		}
	case "bin":
		hdr := make([]byte, 8)
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(pts)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(pts[0])))
		w.Write(hdr)
		buf := make([]byte, 4)
		for _, p := range pts {
			for _, v := range p {
				binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
				w.Write(buf)
			}
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
