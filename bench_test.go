// Benchmarks regenerating the paper's evaluation figures, one benchmark
// per figure (paper Figs. 7–12), plus ablation benches for the design
// choices called out in DESIGN.md.
//
// Each sub-benchmark builds the access method once (cached across
// iterations), runs nearest-neighbor queries from a held-out workload,
// and reports the paper's metric — average *simulated* seconds per query —
// as the custom metric "sim-sec/query" next to Go's wall-clock ns/op.
// Benchmark scale is reduced from the paper's 500k points so the full
// suite completes quickly; cmd/iqbench runs the full-scale sweeps.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/scan"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

const (
	benchN       = 20000
	benchQueries = 32
)

type benchIndex struct {
	sto *store.Store
	idx interface {
		KNN(*store.Session, vec.Point, int) ([]vec.Neighbor, error)
	}
	queries []vec.Point
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchIndex{}
)

// getIndex builds (once) the given method over the given workload.
func getIndex(b *testing.B, ds dataset.Name, n, dim int, method experiments.Method) *benchIndex {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d/%s", ds, n, dim, method)
	benchMu.Lock()
	defer benchMu.Unlock()
	if bi, ok := benchCache[key]; ok {
		return bi
	}
	pts, err := dataset.Generate(ds, 42, n+benchQueries, dim)
	if err != nil {
		b.Fatal(err)
	}
	db, queries := dataset.Split(pts, benchQueries)
	sto := store.NewSim(store.DefaultConfig())
	bi := &benchIndex{sto: sto, queries: queries}
	switch method {
	case experiments.IQTree, experiments.IQNoQuant, experiments.IQNoOptIO, experiments.IQPlain:
		opt := core.DefaultOptions()
		if method == experiments.IQNoQuant || method == experiments.IQPlain {
			opt.Quantize = false
		}
		if method == experiments.IQNoOptIO || method == experiments.IQPlain {
			opt.OptimizedIO = false
		}
		tr, err := core.Build(sto, db, opt)
		if err != nil {
			b.Fatal(err)
		}
		bi.idx = tr
	case experiments.XTree:
		tr, err := xtree.Build(sto, db, xtree.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		bi.idx = tr
	case experiments.VAFile:
		cfg := experiments.Config{Dataset: ds, N: n, Dim: dim, Queries: benchQueries}
		opt := vafile.DefaultOptions()
		bits, err := experiments.TuneVAFile(cfg, db, queries, false)
		if err != nil {
			b.Fatal(err)
		}
		opt.Bits = bits
		v, err := vafile.Build(sto, db, opt)
		if err != nil {
			b.Fatal(err)
		}
		bi.idx = v
	case experiments.Scan:
		sc, err := scan.Build(sto, db, vec.Euclidean)
		if err != nil {
			b.Fatal(err)
		}
		bi.idx = sc
	default:
		b.Fatalf("unknown method %s", method)
	}
	benchCache[key] = bi
	return bi
}

// runQueries benchmarks k-NN queries and reports simulated seconds/query.
func runQueries(b *testing.B, bi *benchIndex, k int) {
	b.Helper()
	var sim store.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := bi.sto.NewSession()
		if _, err := bi.idx.KNN(s, bi.queries[i%len(bi.queries)], k); err != nil {
			b.Fatal(err)
		}
		sim.Add(s.Stats)
	}
	b.ReportMetric(sim.Time(bi.sto.Config())/float64(b.N), "sim-sec/query")
}

// BenchmarkFig7 regenerates paper Fig. 7: the concept ablation (±
// quantization × ± optimized page access) on UNIFORM data.
func BenchmarkFig7(b *testing.B) {
	for _, dim := range []int{8, 16} {
		for _, m := range []experiments.Method{
			experiments.IQTree, experiments.IQNoQuant, experiments.IQNoOptIO, experiments.IQPlain,
		} {
			b.Run(fmt.Sprintf("d=%d/%s", dim, short(m)), func(b *testing.B) {
				runQueries(b, getIndex(b, dataset.Uniform, benchN, dim, m), 1)
			})
		}
	}
}

// BenchmarkFig8 regenerates paper Fig. 8: IQ-tree vs X-tree, VA-file and
// scan on UNIFORM data of varying dimensionality.
func BenchmarkFig8(b *testing.B) {
	for _, dim := range []int{4, 8, 16} {
		for _, m := range []experiments.Method{
			experiments.IQTree, experiments.XTree, experiments.VAFile, experiments.Scan,
		} {
			b.Run(fmt.Sprintf("d=%d/%s", dim, short(m)), func(b *testing.B) {
				runQueries(b, getIndex(b, dataset.Uniform, benchN, dim, m), 1)
			})
		}
	}
}

// BenchmarkFig9 regenerates paper Fig. 9: UNIFORM d=16, varying N.
func BenchmarkFig9(b *testing.B) {
	for _, n := range []int{10000, 20000, 40000} {
		for _, m := range []experiments.Method{
			experiments.IQTree, experiments.XTree, experiments.VAFile, experiments.Scan,
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, short(m)), func(b *testing.B) {
				runQueries(b, getIndex(b, dataset.Uniform, n, 16, m), 1)
			})
		}
	}
}

// BenchmarkFig10 regenerates paper Fig. 10: the CAD workload, varying N.
func BenchmarkFig10(b *testing.B) {
	benchSizeFigure(b, dataset.CAD, []experiments.Method{
		experiments.IQTree, experiments.XTree, experiments.VAFile,
	})
}

// BenchmarkFig11 regenerates paper Fig. 11: the COLOR workload, varying N.
func BenchmarkFig11(b *testing.B) {
	benchSizeFigure(b, dataset.Color, []experiments.Method{
		experiments.IQTree, experiments.XTree, experiments.VAFile,
	})
}

// BenchmarkFig12 regenerates paper Fig. 12: the WEATHER workload, varying
// N (all four methods, like the paper).
func BenchmarkFig12(b *testing.B) {
	benchSizeFigure(b, dataset.Weather, []experiments.Method{
		experiments.IQTree, experiments.XTree, experiments.VAFile, experiments.Scan,
	})
}

func benchSizeFigure(b *testing.B, ds dataset.Name, methods []experiments.Method) {
	for _, n := range []int{10000, 20000} {
		for _, m := range methods {
			b.Run(fmt.Sprintf("n=%d/%s", n, short(m)), func(b *testing.B) {
				runQueries(b, getIndex(b, ds, n, 0, m), 1)
			})
		}
	}
}

// BenchmarkAblationVABits regenerates the paper's manual VA-file tuning
// (Section 4.2 tries 2..8 bits per dimension and keeps the best).
func BenchmarkAblationVABits(b *testing.B) {
	pts, _ := dataset.Generate(dataset.Uniform, 42, benchN+benchQueries, 16)
	db, queries := dataset.Split(pts, benchQueries)
	for _, bits := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			sto := store.NewSim(store.DefaultConfig())
			opt := vafile.DefaultOptions()
			opt.Bits = bits
			v, err := vafile.Build(sto, db, opt)
			if err != nil {
				b.Fatal(err)
			}
			var sim store.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := sto.NewSession()
				if _, err := v.KNN(s, queries[i%len(queries)], 1); err != nil {
					b.Fatal(err)
				}
				sim.Add(s.Stats)
			}
			b.ReportMetric(sim.Time(sto.Config())/float64(b.N), "sim-sec/query")
		})
	}
}

// BenchmarkAblationCostModel contrasts the fractal cost model against the
// uniformity assumption on clustered data (DESIGN.md ablation).
func BenchmarkAblationCostModel(b *testing.B) {
	pts, _ := dataset.Generate(dataset.Weather, 42, benchN+benchQueries, 0)
	db, queries := dataset.Split(pts, benchQueries)
	for _, uniform := range []bool{false, true} {
		name := "fractal"
		if uniform {
			name = "uniform-assumption"
		}
		b.Run(name, func(b *testing.B) {
			sto := store.NewSim(store.DefaultConfig())
			opt := core.DefaultOptions()
			opt.UniformModel = uniform
			tr, err := core.Build(sto, db, opt)
			if err != nil {
				b.Fatal(err)
			}
			var sim store.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := sto.NewSession()
				if _, err := tr.KNN(s, queries[i%len(queries)], 1); err != nil {
					b.Fatal(err)
				}
				sim.Add(s.Stats)
			}
			b.ReportMetric(sim.Time(sto.Config())/float64(b.N), "sim-sec/query")
		})
	}
}

// BenchmarkBuild measures construction cost (real time) of each method.
func BenchmarkBuild(b *testing.B) {
	pts, _ := dataset.Generate(dataset.Uniform, 42, benchN, 16)
	b.Run("iqtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sto := repro.NewStore(repro.DefaultStoreConfig())
			if _, err := repro.BuildIQTree(sto, pts, repro.DefaultIQTreeOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sto := repro.NewStore(repro.DefaultStoreConfig())
			if _, err := repro.BuildXTree(sto, pts, repro.DefaultXTreeOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vafile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sto := repro.NewStore(repro.DefaultStoreConfig())
			if _, err := repro.BuildVAFile(sto, pts, repro.DefaultVAFileOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func short(m experiments.Method) string {
	switch m {
	case experiments.IQTree:
		return "iqtree"
	case experiments.IQNoQuant:
		return "iq-noquant"
	case experiments.IQNoOptIO:
		return "iq-stdnn"
	case experiments.IQPlain:
		return "iq-plain"
	case experiments.XTree:
		return "xtree"
	case experiments.VAFile:
		return "vafile"
	case experiments.Scan:
		return "scan"
	default:
		return string(m)
	}
}

// BenchmarkAblationFixedBits compares forcing one quantization level into
// the tree against the optimized per-page choice (DESIGN.md ablation).
func BenchmarkAblationFixedBits(b *testing.B) {
	pts, _ := dataset.Generate(dataset.Uniform, 42, benchN+benchQueries, 16)
	db, queries := dataset.Split(pts, benchQueries)
	run := func(b *testing.B, opt core.Options) {
		sto := store.NewSim(store.DefaultConfig())
		tr, err := core.Build(sto, db, opt)
		if err != nil {
			b.Fatal(err)
		}
		var sim store.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := sto.NewSession()
			if _, err := tr.KNN(s, queries[i%len(queries)], 1); err != nil {
				b.Fatal(err)
			}
			sim.Add(s.Stats)
		}
		b.ReportMetric(sim.Time(sto.Config())/float64(b.N), "sim-sec/query")
	}
	for _, bits := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("fixed-%dbit", bits), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.FixedBits = bits
			run(b, opt)
		})
	}
	b.Run("optimized", func(b *testing.B) {
		run(b, core.DefaultOptions())
	})
}

// BenchmarkObserverOverhead gates the observability layer on the
// Fig. 8 d=16 IQ-tree query path: "off" runs with no observer attached
// (the production default, where every hook is a nil check), "on"
// records a full per-query trace. ci.sh asserts "on" stays within 2% of
// "off"; since the disabled path does strictly less work than the
// enabled one, that bounds the hooks' cost on the default path too.
func BenchmarkObserverOverhead(b *testing.B) {
	bi := getIndex(b, dataset.Uniform, benchN, 16, experiments.IQTree)
	tr := bi.idx.(*core.Tree)
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := bi.sto.NewSession()
			if _, err := tr.KNN(s, bi.queries[i%len(bi.queries)], 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := bi.sto.NewSession()
			var qt core.Trace
			if _, err := tr.KNNTrace(s, bi.queries[i%len(bi.queries)], 1, &qt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIterator measures the incremental ranking iterator: cost of
// the first pull and of a deep 100-neighbor pull.
func BenchmarkIterator(b *testing.B) {
	bi := getIndex(b, dataset.Uniform, benchN, 16, experiments.IQTree)
	tr := bi.idx.(*core.Tree)
	for _, pulls := range []int{1, 100} {
		b.Run(fmt.Sprintf("pulls=%d", pulls), func(b *testing.B) {
			var sim store.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := bi.sto.NewSession()
				it := tr.NewNNIterator(s, bi.queries[i%len(bi.queries)])
				for p := 0; p < pulls; p++ {
					if _, ok := it.Next(); !ok {
						break
					}
				}
				if err := it.Err(); err != nil {
					b.Fatal(err)
				}
				sim.Add(s.Stats)
			}
			b.ReportMetric(sim.Time(bi.sto.Config())/float64(b.N), "sim-sec/query")
		})
	}
}
