#!/bin/sh
# ci.sh — the checks every change must pass, in the order they fail fastest.
# Run from the repository root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== engine scaling gate =="
go run ./cmd/iqbench -parallel 1,4 -scale 0.05 -queries 40 \
	-bench-out /tmp/iqbench_scaling_gate.json -gate

echo "== observer overhead gate =="
go test -run '^$' -bench 'BenchmarkObserverOverhead' -benchtime 300x -count 3 . |
	awk '
		/BenchmarkObserverOverhead\/off/ { if (!moff || $3 < moff) moff = $3 }
		/BenchmarkObserverOverhead\/on/  { if (!mon  || $3 < mon)  mon  = $3 }
		END {
			if (!moff || !mon) { print "gate: missing benchmark output" > "/dev/stderr"; exit 1 }
			ratio = mon / moff
			printf "observer on/off ns per op ratio: %.4f\n", ratio
			if (ratio > 1.02) {
				printf "observer overhead gate FAILED: %.1f%% > 2%%\n", (ratio - 1) * 100 > "/dev/stderr"
				exit 1
			}
		}'

echo "CI OK"
