#!/bin/sh
# ci.sh — the checks every change must pass, in the order they fail fastest.
# Run from the repository root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
# internal/core alone needs ~10 min under race on a single-core host,
# right at the default 10m per-binary timeout; give it headroom.
go test -race -timeout 1800s ./...

echo "== fuzz seed corpus =="
# The bit-flip corpus must keep passing in normal runs: a single flipped
# bit anywhere on disk may change a KNN answer only into a typed error.
go test -run 'FuzzBitFlipKNN' ./internal/core/

echo "== engine scaling gate =="
go run ./cmd/iqbench -parallel 1,4 -scale 0.05 -queries 40 \
	-bench-out /tmp/iqbench_scaling_gate.json -gate

echo "== scan sharing gate =="
# Cross-query scan sharing must earn its keep on the hot workload:
# >= 1.3x aggregate simulated QPS at 32 concurrent clients, each fetched
# page feeding > 1 query on average, and no single-client p99 regression
# beyond 10% (with one query in flight the shared plan degenerates to
# the share-nothing batch schedule exactly).
go run ./cmd/iqbench -share 1,32 -scale 0.2 -queries 128 \
	-share-out /tmp/iqbench_share_gate.json -gate

echo "== shard scale-out + self-healing gate =="
# Sharded scatter-gather must scale out, stay exact, and heal itself:
# >= 3x aggregate simulated QPS at 8 shards over 1, every merged answer
# bit-identical to the single-shard answer, and the seeded chaos
# campaign (one replica's directory corrupted at rest, another replica
# killed mid-batch, live writes throughout) losing zero queries,
# changing zero answers vs an untouched twin, rebuilding both victims
# from their siblings by WAL shipping, converging back to all-Serving,
# and doing so within the 30s MTTR budget.
go run ./cmd/iqbench -shards 1,8 -replicas 2 -scale 0.05 -queries 42 \
	-shard-out /tmp/iqbench_shard_gate.json -gate

echo "== kill-and-recover gate =="
# No acknowledged write may be lost: the recovery suite crash-reopens
# WAL-mode trees (insert-heavy, delete-heavy, torn tail, across
# checkpoints, mid- and post-incremental-reoptimize) and requires the
# recovered tree byte-identical to a never-crashed twin.
go test -run 'KillAndRecover' -count=1 ./internal/core/

echo "== durable ingest gate =="
# The write path must not starve reads: after a concurrent acked-write
# burst, simulated p99 of KNN reads while the incremental reoptimizer
# steps must stay within 2x the quiescent simulated p99 (readers keep
# their pinned snapshots, so compaction must not show up in their I/O).
go run ./cmd/iqbench -ingest default -scale 0.1 -queries 60 \
	-ingest-out /tmp/iqbench_ingest_gate.json -gate

echo "== approximate search gate =="
# The probability-bounded recall/latency dial must earn its keep on the
# high-dimensional workload: the MinRecall sweep a monotone Pareto
# frontier, recall exactly 1.0 at the exact-degenerate setting (ε = 0),
# and some setting reaching >= 1.5x the exact simulated QPS while
# keeping measured recall >= 0.95.
go run ./cmd/iqbench -approx default -queries 30 \
	-approx-out /tmp/iqbench_approx_gate.json -gate

echo "== chaos gate =="
# Seeded fault-injection campaign: transient faults fully retried,
# corruption fully quarantined and repaired (results identical to the
# clean run), overload shed, and checksum overhead within 5% of the
# plain clean path.
go run ./cmd/iqbench -faults default -scale 0.1 -queries 40 \
	-chaos-out /tmp/iqbench_chaos_gate.json -gate

echo "== observer overhead gate =="
# The bound is 5% of one query. The filter kernels made the untraced
# query ~10x faster, so this is a tighter absolute budget (~55us) than
# the original 2%-of-11.6ms gate; 2% of the current ~1.1ms op is below
# single-core host noise, hence the relative bound moved.
go test -run '^$' -bench 'BenchmarkObserverOverhead' -benchtime 1000x -count 5 . |
	awk '
		/BenchmarkObserverOverhead\/off/ { if (!moff || $3 < moff) moff = $3 }
		/BenchmarkObserverOverhead\/on/  { if (!mon  || $3 < mon)  mon  = $3 }
		END {
			if (!moff || !mon) { print "gate: missing benchmark output" > "/dev/stderr"; exit 1 }
			ratio = mon / moff
			printf "observer on/off ns per op ratio: %.4f\n", ratio
			if (ratio > 1.05) {
				printf "observer overhead gate FAILED: %.1f%% > 5%%\n", (ratio - 1) * 100 > "/dev/stderr"
				exit 1
			}
		}'

echo "== kernel filter gate =="
go test -run '^$' -bench 'BenchmarkQuantizedFilter' -benchtime 200x -count 3 ./internal/kernel |
	awk '
		/BenchmarkQuantizedFilter\/naive/  { if (!mn || $3 < mn) mn = $3 }
		/BenchmarkQuantizedFilter\/kernel/ { if (!mk || $3 < mk) mk = $3 }
		END {
			if (!mn || !mk) { print "gate: missing benchmark output" > "/dev/stderr"; exit 1 }
			ratio = mn / mk
			printf "kernel vs naive filter speedup: %.2fx\n", ratio
			if (ratio < 2) {
				printf "kernel filter gate FAILED: %.2fx < 2x\n", ratio > "/dev/stderr"
				exit 1
			}
		}'

echo "== KNN steady-state alloc gate =="
go test -run '^$' -bench 'BenchmarkKNNHotPath/KNNInto' -benchtime 50x ./internal/core |
	awk '
		/BenchmarkKNNHotPath\/KNNInto/ {
			found = 1
			for (i = 1; i <= NF; i++) if ($i == "allocs/op") allocs = $(i - 1)
		}
		END {
			if (!found) { print "gate: missing benchmark output" > "/dev/stderr"; exit 1 }
			printf "steady-state KNNInto allocs/op: %s\n", allocs
			if (allocs + 0 != 0) {
				print "alloc gate FAILED: want 0 allocs/op" > "/dev/stderr"
				exit 1
			}
		}'

echo "CI OK"
