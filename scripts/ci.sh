#!/bin/sh
# ci.sh — the checks every change must pass, in the order they fail fastest.
# Run from the repository root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (short set) =="
go test -race -short -run 'Concurrent|Session|Pool|Cache|Facade' \
	. ./internal/store/ ./internal/core/

echo "CI OK"
