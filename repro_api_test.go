// Integration tests for the public facade: everything a downstream user
// touches goes through the root package.
package repro_test

import (
	"math"
	"sort"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	all := repro.GenUniform(1, 5010, 8)
	db, queries := repro.SplitDataset(all, 10)

	dsk := repro.NewDisk(repro.DefaultDiskConfig())
	tree, err := repro.BuildIQTree(dsk, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}

	scanDisk := repro.NewDisk(repro.DefaultDiskConfig())
	flat := repro.BuildScan(scanDisk, db, repro.Euclidean)

	xDisk := repro.NewDisk(repro.DefaultDiskConfig())
	xt := repro.BuildXTree(xDisk, db, repro.DefaultXTreeOptions())

	vDisk := repro.NewDisk(repro.DefaultDiskConfig())
	va := repro.BuildVAFile(vDisk, db, repro.DefaultVAFileOptions())

	for qi, q := range queries {
		ref := flat.KNN(scanDisk.NewSession(), q, 4)
		for name, got := range map[string][]repro.Neighbor{
			"iqtree": tree.KNN(dsk.NewSession(), q, 4),
			"xtree":  xt.KNN(xDisk.NewSession(), q, 4),
			"vafile": va.KNN(vDisk.NewSession(), q, 4),
		} {
			if len(got) != len(ref) {
				t.Fatalf("%s query %d: %d results", name, qi, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-ref[i].Dist) > 1e-5 {
					t.Fatalf("%s query %d: dist %f, want %f", name, qi, got[i].Dist, ref[i].Dist)
				}
			}
		}
	}
}

func TestFacadeSessionAccounting(t *testing.T) {
	all := repro.GenWeather(2, 3005)
	db, queries := repro.SplitDataset(all, 5)
	dsk := repro.NewDisk(repro.DefaultDiskConfig())
	tree, err := repro.BuildIQTree(dsk, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := dsk.NewSession()
	if _, ok := tree.NearestNeighbor(s, queries[0]); !ok {
		t.Fatal("no result")
	}
	if s.Time() <= 0 || s.Stats.Seeks == 0 || s.Stats.BlocksRead == 0 {
		t.Fatalf("session accounting empty: %v", s.Stats)
	}
}

func TestFacadePersistence(t *testing.T) {
	all := repro.GenCAD(3, 2005)
	db, queries := repro.SplitDataset(all, 5)
	dsk := repro.NewDisk(repro.DefaultDiskConfig())
	orig, err := repro.BuildIQTree(dsk, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := repro.OpenIQTree(dsk)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		a, _ := orig.NearestNeighbor(dsk.NewSession(), q)
		b, _ := reopened.NearestNeighbor(dsk.NewSession(), q)
		if a.ID != b.ID || a.Dist != b.Dist {
			t.Fatalf("reopened tree disagrees: %+v vs %+v", a, b)
		}
	}
}

func TestFacadeDatasets(t *testing.T) {
	for _, c := range []struct {
		name repro.DatasetName
		d    int
	}{
		{repro.DatasetUniform, 12},
		{repro.DatasetCAD, 16},
		{repro.DatasetColor, 16},
		{repro.DatasetWeather, 9},
	} {
		pts, err := repro.GenerateDataset(c.name, 1, 100, 12)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 100 || len(pts[0]) != c.d {
			t.Fatalf("%s: %d x %d", c.name, len(pts), len(pts[0]))
		}
	}
	if d := repro.FractalDimension(repro.GenWeather(1, 3000), repro.Euclidean); d > 6 {
		t.Fatalf("weather fractal dimension %f implausibly high", d)
	}
}

func TestFacadeRangeAndStats(t *testing.T) {
	all := repro.GenColor(5, 4003)
	db, queries := repro.SplitDataset(all, 3)
	dsk := repro.NewDisk(repro.DefaultDiskConfig())
	tree, err := repro.BuildIQTree(dsk, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.Points != len(db) || st.Pages == 0 {
		t.Fatalf("stats: %+v", st)
	}
	res := tree.RangeSearch(dsk.NewSession(), queries[0], 0.2)
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Dist < res[j].Dist }) {
		t.Fatal("range results not sorted")
	}
	for _, nb := range res {
		if nb.Dist > 0.2 {
			t.Fatalf("range result outside eps: %f", nb.Dist)
		}
	}
	mbr := repro.MBROf(db)
	if mbr.Dim() != 16 {
		t.Fatal("facade MBROf wrong")
	}
}
