// Integration tests for the public facade: everything a downstream user
// touches goes through the root package.
package repro_test

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	all := repro.GenUniform(1, 5010, 8)
	db, queries := repro.SplitDataset(all, 10)

	sto := repro.NewStore(repro.DefaultStoreConfig())
	tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}

	scanStore := repro.NewStore(repro.DefaultStoreConfig())
	flat, err := repro.BuildScan(scanStore, db, repro.Euclidean)
	if err != nil {
		t.Fatal(err)
	}

	xStore := repro.NewStore(repro.DefaultStoreConfig())
	xt, err := repro.BuildXTree(xStore, db, repro.DefaultXTreeOptions())
	if err != nil {
		t.Fatal(err)
	}

	vStore := repro.NewStore(repro.DefaultStoreConfig())
	va, err := repro.BuildVAFile(vStore, db, repro.DefaultVAFileOptions())
	if err != nil {
		t.Fatal(err)
	}

	must := func(res []repro.Neighbor, err error) []repro.Neighbor {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for qi, q := range queries {
		ref := must(flat.KNN(scanStore.NewSession(), q, 4))
		for name, got := range map[string][]repro.Neighbor{
			"iqtree": must(tree.KNN(sto.NewSession(), q, 4)),
			"xtree":  must(xt.KNN(xStore.NewSession(), q, 4)),
			"vafile": must(va.KNN(vStore.NewSession(), q, 4)),
		} {
			if len(got) != len(ref) {
				t.Fatalf("%s query %d: %d results", name, qi, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-ref[i].Dist) > 1e-5 {
					t.Fatalf("%s query %d: dist %f, want %f", name, qi, got[i].Dist, ref[i].Dist)
				}
			}
		}
	}
}

func TestFacadeSessionAccounting(t *testing.T) {
	all := repro.GenWeather(2, 3005)
	db, queries := repro.SplitDataset(all, 5)
	sto := repro.NewStore(repro.DefaultStoreConfig())
	tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := sto.NewSession()
	if _, ok, err := tree.NearestNeighbor(s, queries[0]); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("no result")
	}
	if s.Time() <= 0 || s.Stats.Seeks == 0 || s.Stats.BlocksRead == 0 {
		t.Fatalf("session accounting empty: %v", s.Stats)
	}
}

func TestFacadePersistence(t *testing.T) {
	all := repro.GenCAD(3, 2005)
	db, queries := repro.SplitDataset(all, 5)
	sto := repro.NewStore(repro.DefaultStoreConfig())
	orig, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := repro.OpenIQTree(sto)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		a, _, err := orig.NearestNeighbor(sto.NewSession(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := reopened.NearestNeighbor(sto.NewSession(), q)
		if err != nil {
			t.Fatal(err)
		}
		if a.ID != b.ID || a.Dist != b.Dist {
			t.Fatalf("reopened tree disagrees: %+v vs %+v", a, b)
		}
	}
}

// TestFacadeFilePersistenceRoundTrip builds an IQ-tree on a file-backed
// store, closes it, reopens the directory in a fresh store, and checks
// that the reopened tree returns identical KNN results.
func TestFacadeFilePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	all := repro.GenColor(11, 3008)
	db, queries := repro.SplitDataset(all, 8)

	sto, err := repro.OpenFileStore(dir, repro.DefaultStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]repro.Neighbor, len(queries))
	for i, q := range queries {
		if want[i], err = tree.KNN(sto.NewSession(), q, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := sto.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sto.Close(); err != nil {
		t.Fatal(err)
	}

	// A different process would do exactly this: open the directory and
	// reconstruct the tree from the persisted pages.
	sto2, err := repro.OpenFileStore(dir, repro.DefaultStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sto2.Close()
	reopened, err := repro.OpenIQTree(sto2)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		got, err := reopened.KNN(sto2.NewSession(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want[qi]))
		}
		for i := range got {
			if got[i].ID != want[qi][i].ID || got[i].Dist != want[qi][i].Dist {
				t.Fatalf("query %d result %d: %+v, want %+v", qi, i, got[i], want[qi][i])
			}
		}
	}
}

// TestFacadeConcurrentQueriesSharedPool is the concurrency smoke test:
// many goroutines run KNN and range queries against one tree through a
// shared buffer pool. Run under -race this exercises the pool's locking.
func TestFacadeConcurrentQueriesSharedPool(t *testing.T) {
	all := repro.GenUniform(13, 4016, 8)
	db, queries := repro.SplitDataset(all, 16)

	sto := repro.NewStore(repro.DefaultStoreConfig())
	sto.SetCache(1 << 20)
	tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Reference answers, computed single-threaded.
	wantKNN := make([][]repro.Neighbor, len(queries))
	wantRange := make([]int, len(queries))
	for i, q := range queries {
		if wantKNN[i], err = tree.KNN(sto.NewSession(), q, 5); err != nil {
			t.Fatal(err)
		}
		res, err := tree.RangeSearch(sto.NewSession(), q, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		wantRange[i] = len(res)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for qi, q := range queries {
					got, err := tree.KNN(sto.NewSession(), q, 5)
					if err != nil {
						t.Errorf("worker %d query %d: %v", w, qi, err)
						return
					}
					for i := range got {
						if got[i].ID != wantKNN[qi][i].ID {
							t.Errorf("worker %d query %d: id %d, want %d",
								w, qi, got[i].ID, wantKNN[qi][i].ID)
							return
						}
					}
					res, err := tree.RangeSearch(sto.NewSession(), q, 0.6)
					if err != nil {
						t.Errorf("worker %d range %d: %v", w, qi, err)
						return
					}
					if len(res) != wantRange[qi] {
						t.Errorf("worker %d range %d: %d results, want %d",
							w, qi, len(res), wantRange[qi])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if ps := sto.Pool().Stats(); ps.Hits == 0 {
		t.Fatalf("shared pool saw no hits: %+v", ps)
	}
}

func TestFacadeDatasets(t *testing.T) {
	for _, c := range []struct {
		name repro.DatasetName
		d    int
	}{
		{repro.DatasetUniform, 12},
		{repro.DatasetCAD, 16},
		{repro.DatasetColor, 16},
		{repro.DatasetWeather, 9},
	} {
		pts, err := repro.GenerateDataset(c.name, 1, 100, 12)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 100 || len(pts[0]) != c.d {
			t.Fatalf("%s: %d x %d", c.name, len(pts), len(pts[0]))
		}
	}
	if d := repro.FractalDimension(repro.GenWeather(1, 3000), repro.Euclidean); d > 6 {
		t.Fatalf("weather fractal dimension %f implausibly high", d)
	}
}

func TestFacadeRangeAndStats(t *testing.T) {
	all := repro.GenColor(5, 4003)
	db, queries := repro.SplitDataset(all, 3)
	sto := repro.NewStore(repro.DefaultStoreConfig())
	tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.Points != len(db) || st.Pages == 0 {
		t.Fatalf("stats: %+v", st)
	}
	res, err := tree.RangeSearch(sto.NewSession(), queries[0], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Dist < res[j].Dist }) {
		t.Fatal("range results not sorted")
	}
	for _, nb := range res {
		if nb.Dist > 0.2 {
			t.Fatalf("range result outside eps: %f", nb.Dist)
		}
	}
	mbr := repro.MBROf(db)
	if mbr.Dim() != 16 {
		t.Fatal("facade MBROf wrong")
	}
}
