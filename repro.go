// Package repro is the public facade of this reproduction of
// "Independent Quantization: An Index Compression Technique for
// High-Dimensional Data Spaces" (Berchtold, Böhm, Jagadish, Kriegel,
// Sander; ICDE 2000).
//
// It re-exports the stable surface of the internal packages:
//
//   - the IQ-tree itself (BuildIQTree), the paper's contribution: a
//     three-level compressed index with per-page optimal quantization and
//     a time-optimized nearest-neighbor page access strategy;
//   - the comparators of the paper's evaluation: X-tree (BuildXTree),
//     VA-file (BuildVAFile) and sequential scan (BuildScan);
//   - the block store all of them run on: either the simulated backend
//     (NewStore) that turns page accesses into the paper's metric —
//     elapsed seconds — or a real file-backed store (OpenFileStore) that
//     persists the index across processes. Both share an optional
//     buffer-pool cache (Store.SetCache);
//   - the workload generators of the evaluation (GenUniform, GenCAD,
//     GenColor, GenWeather).
//
// Quickstart:
//
//	sto := repro.NewStore(repro.DefaultStoreConfig())
//	tree, err := repro.BuildIQTree(sto, points, repro.DefaultIQTreeOptions())
//	...
//	s := sto.NewSession()
//	nn, ok, err := tree.NearestNeighbor(s, query)
//	fmt.Println(nn.ID, nn.Dist, s.Time()) // result + simulated seconds
//
// To persist the tree on real files and reopen it in another process:
//
//	sto, err := repro.OpenFileStore("/tmp/iq", repro.DefaultStoreConfig())
//	tree, err := repro.BuildIQTree(sto, points, repro.DefaultIQTreeOptions())
//	err = sto.Close()
//	// later, possibly elsewhere:
//	sto, err = repro.OpenFileStore("/tmp/iq", repro.DefaultStoreConfig())
//	tree, err = repro.OpenIQTree(sto)
package repro

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/fractal"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/scan"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

// Point is a d-dimensional float32 point.
type Point = vec.Point

// MBR is a minimum bounding rectangle.
type MBR = vec.MBR

// Neighbor is one similarity-search result.
type Neighbor = vec.Neighbor

// Metric selects the distance metric.
type Metric = vec.Metric

// Supported metrics.
const (
	Euclidean = vec.Euclidean
	Maximum   = vec.Maximum
	Manhattan = vec.Manhattan
)

// MBROf computes the minimum bounding rectangle of a point set.
func MBROf(pts []Point) MBR { return vec.MBROf(pts) }

// Store is the block store all access methods run on. It wraps a
// backend (simulated or file-backed) with cost accounting and an
// optional buffer-pool cache.
type Store = store.Store

// StoreConfig holds the block size and the simulated hardware parameters
// used for cost accounting.
type StoreConfig = store.Config

// Session tracks one query's simulated I/O and CPU cost.
type Session = store.Session

// StoreStats accumulates simulated cost counters.
type StoreStats = store.Stats

// BufferPool is the shared LRU page cache (see Store.SetCache).
type BufferPool = store.BufferPool

// PoolStats reports buffer-pool hit/miss/eviction counters.
type PoolStats = store.PoolStats

// NewStore creates a store over the simulated in-memory backend — the
// paper's evaluation environment.
func NewStore(cfg StoreConfig) *Store { return store.NewSim(cfg) }

// OpenFileStore creates (or reopens) a store whose blocks live in real
// files under dir, one file per index component.
func OpenFileStore(dir string, cfg StoreConfig) (*Store, error) {
	return store.OpenFileStore(dir, cfg)
}

// DefaultStoreConfig returns parameters calibrated to the paper's testbed.
func DefaultStoreConfig() StoreConfig { return store.DefaultConfig() }

// IQTree is the paper's three-level compressed index.
type IQTree = core.Tree

// IQTreeOptions configures IQ-tree construction.
type IQTreeOptions = core.Options

// IQTreeStats summarizes an IQ-tree's physical structure.
type IQTreeStats = core.Stats

// QueryTrace records the physical work of one IQ-tree query.
type QueryTrace = core.Trace

// Observer receives per-event cost notifications from a Session
// (Session.SetObserver); *QueryTrace implements it. A nil Observer is
// valid and costs nothing.
type Observer = obs.Observer

// MetricsRegistry is a named set of counters, gauges and latency
// histograms; see Metrics for the process-wide instance.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time, JSON-serializable copy of a
// registry's metrics.
type MetricsSnapshot = obs.Snapshot

// Metrics returns the process-wide default metrics registry that the
// experiment harness records into.
func Metrics() *MetricsRegistry { return obs.Default() }

// StartDebugServer serves expvar, pprof and a /metrics snapshot on addr
// in the background, returning the bound address.
func StartDebugServer(addr string) (string, error) { return obs.StartDebugServer(addr) }

// DefaultIQTreeOptions returns the paper's full IQ-tree configuration.
func DefaultIQTreeOptions() IQTreeOptions { return core.DefaultOptions() }

// BuildIQTree bulk-loads an IQ-tree over pts (point i gets id i) with
// optimal per-page quantization.
func BuildIQTree(sto *Store, pts []Point, opt IQTreeOptions) (*IQTree, error) {
	return core.Build(sto, pts, opt)
}

// OpenIQTree reopens the IQ-tree that a previous BuildIQTree (plus any
// later maintenance) left on the store.
func OpenIQTree(sto *Store) (*IQTree, error) {
	return core.Open(sto)
}

// XTree is the hierarchical-index comparator.
type XTree = xtree.Tree

// XTreeOptions configures an X-tree.
type XTreeOptions = xtree.Options

// DefaultXTreeOptions returns the X-tree paper's parameters.
func DefaultXTreeOptions() XTreeOptions { return xtree.DefaultOptions() }

// BuildXTree constructs an X-tree over pts by dynamic insertion.
func BuildXTree(sto *Store, pts []Point, opt XTreeOptions) (*XTree, error) {
	return xtree.Build(sto, pts, opt)
}

// VAFile is the compression-based comparator.
type VAFile = vafile.VAFile

// VAFileOptions configures a VA-file.
type VAFileOptions = vafile.Options

// DefaultVAFileOptions returns the classic VA-file configuration.
func DefaultVAFileOptions() VAFileOptions { return vafile.DefaultOptions() }

// BuildVAFile constructs a VA-file over pts.
func BuildVAFile(sto *Store, pts []Point, opt VAFileOptions) (*VAFile, error) {
	return vafile.Build(sto, pts, opt)
}

// Scan is the sequential-scan reference method.
type Scan = scan.Scan

// BuildScan stores pts in a flat file for sequential scanning.
func BuildScan(sto *Store, pts []Point, met Metric) (*Scan, error) {
	return scan.Build(sto, pts, met)
}

// DatasetName identifies one of the evaluation workloads.
type DatasetName = dataset.Name

// The paper's evaluation workloads (CAD/COLOR/WEATHER are synthetic
// stand-ins for the unavailable originals; see DESIGN.md).
const (
	DatasetUniform = dataset.Uniform
	DatasetCAD     = dataset.CAD
	DatasetColor   = dataset.Color
	DatasetWeather = dataset.Weather
)

// GenerateDataset produces n points of the named workload.
func GenerateDataset(name DatasetName, seed int64, n, d int) ([]Point, error) {
	return dataset.Generate(name, seed, n, d)
}

// GenUniform returns n points uniform in [0,1]^d.
func GenUniform(seed int64, n, d int) []Point { return dataset.GenUniform(seed, n, d) }

// GenCAD returns n 16-d CAD-like points (moderately clustered).
func GenCAD(seed int64, n int) []Point { return dataset.GenCAD(seed, n) }

// GenColor returns n 16-d color-histogram-like points (slightly clustered).
func GenColor(seed int64, n int) []Point { return dataset.GenColor(seed, n) }

// GenWeather returns n 9-d weather-like points (highly clustered, low
// fractal dimension).
func GenWeather(seed int64, n int) []Point { return dataset.GenWeather(seed, n) }

// SplitDataset separates a generated set into a database and a held-out,
// identically distributed query workload.
func SplitDataset(pts []Point, queries int) (db, qs []Point) {
	return dataset.Split(pts, queries)
}

// FractalDimension estimates the correlation fractal dimension D_F used
// by the IQ-tree cost model.
func FractalDimension(pts []Point, met Metric) float64 {
	return fractal.Estimate(pts, met)
}

// NNIterator enumerates neighbors in increasing distance order on demand
// (incremental ranking, Hjaltason & Samet — the paper's reference [13]).
type NNIterator = core.NNIterator

// Index is the common query contract of all four access methods: the
// IQ-tree, X-tree, VA-file and Scan all implement it, so serving code
// can be written once against the interface.
type Index = index.Index

// IndexStats is the cross-method physical summary every Index reports.
type IndexStats = index.Stats

// Approx is the approximate-KNN execution knob: MinRecall ∈ (0,1] sets a
// target expected recall (the search stops once the modeled probability
// that any unfetched page still improves the top-k drops below
// ε = 1 − MinRecall), MaxCost > 0 sets a hard page-fetch budget. The
// zero value (and MinRecall = 1) executes exactly. Set the same fields
// on EngineQuery to run approximate queries through an Engine or a
// shard coordinator.
type Approx = index.Approx

// ApproxSearcher is implemented by indexes supporting approximate KNN
// (the IQ-tree). Indexes without it serve approximate queries exactly.
type ApproxSearcher = index.ApproxSearcher

// Engine is the parallel serving layer: a worker pool draining a query
// queue against one Index, one pooled session per worker. Queries
// observe consistent copy-on-write snapshots and never block updates.
type Engine = engine.Engine

// EngineQuery is one unit of work for an Engine (KNN, range or window).
type EngineQuery = engine.Query

// EngineResult is the outcome of one EngineQuery: neighbors, the query's
// simulated cost, wall time, and an optional plan trace.
type EngineResult = engine.Result

// Engine query kinds.
const (
	QueryKNN    = engine.KNN
	QueryRange  = engine.Range
	QueryWindow = engine.Window
)

// NewEngine starts a query engine with the given worker count over idx.
// Close it to drain and stop the workers.
func NewEngine(sto *Store, idx Index, workers int) *Engine {
	return engine.New(sto, idx, workers)
}

// NewEngineWithMetrics is NewEngine with the engine's queue/latency
// metrics registered in reg instead of a private registry.
func NewEngineWithMetrics(sto *Store, idx Index, workers int, reg *MetricsRegistry) *Engine {
	return engine.New(sto, idx, workers, engine.WithRegistry(reg))
}
