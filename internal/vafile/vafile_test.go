package vafile

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

func skewedPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			v := r.Float64()
			p[j] = float32(v * v * v) // mass concentrated near 0
		}
		pts[i] = p
	}
	return pts
}

// mustBuild builds a VA-file or fails the test.
func mustBuild(t *testing.T, sto *store.Store, pts []vec.Point, opt Options) *VAFile {
	t.Helper()
	v, err := Build(sto, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// mustKNN runs a KNN query on a fresh session or fails the test.
func mustKNN(t *testing.T, sto *store.Store, v *VAFile, q vec.Point, k int) []vec.Neighbor {
	t.Helper()
	res, err := v.KNN(sto.NewSession(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func bruteKNN(pts []vec.Point, q vec.Point, k int, met vec.Metric) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = met.Dist(q, p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum} {
		for _, uniform := range []bool{false, true} {
			for _, bits := range []int{2, 4, 8} {
				pts := randPoints(r, 2000, 8)
				sto := store.NewSim(store.DefaultConfig())
				v := mustBuild(t, sto, pts, Options{Metric: met, Bits: bits, Uniform: uniform})
				for _, q := range randPoints(r, 8, 8) {
					got := mustKNN(t, sto, v, q, 5)
					want := bruteKNN(pts, q, 5, met)
					for i := range want {
						if math.Abs(got[i].Dist-want[i]) > 1e-5 {
							t.Fatalf("met=%v bits=%d uniform=%v: dist %.7f want %.7f",
								met, bits, uniform, got[i].Dist, want[i])
						}
					}
				}
			}
		}
	}
}

func TestKNNOnSkewedData(t *testing.T) {
	// Quantile boundaries must stay correct when data is heavily skewed.
	r := rand.New(rand.NewSource(2))
	pts := skewedPoints(r, 3000, 6)
	sto := store.NewSim(store.DefaultConfig())
	v := mustBuild(t, sto, pts, Options{Metric: vec.Euclidean, Bits: 5})
	for _, q := range skewedPoints(r, 10, 6) {
		got := mustKNN(t, sto, v, q, 3)
		want := bruteKNN(pts, q, 3, vec.Euclidean)
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-5 {
				t.Fatalf("dist %.7f want %.7f", got[i].Dist, want[i])
			}
		}
	}
}

func TestDuplicateValuesAndDegenerateDims(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 500, 3)
	for i := range pts {
		pts[i][1] = 0.5                 // a constant dimension
		pts[i][2] = float32(i%4) * 0.25 // few distinct values
	}
	sto := store.NewSim(store.DefaultConfig())
	v := mustBuild(t, sto, pts, DefaultOptions())
	for _, q := range randPoints(r, 5, 3) {
		got := mustKNN(t, sto, v, q, 4)
		want := bruteKNN(pts, q, 4, vec.Euclidean)
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-5 {
				t.Fatalf("dist %.7f want %.7f", got[i].Dist, want[i])
			}
		}
	}
}

func TestRangeSearch(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 1500, 5)
	sto := store.NewSim(store.DefaultConfig())
	v := mustBuild(t, sto, pts, DefaultOptions())
	q := randPoints(r, 1, 5)[0]
	eps := 0.35
	got, err := v.RangeSearch(sto.NewSession(), q, eps)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, p := range pts {
		if vec.Euclidean.Dist(q, p) <= eps {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("got %d results, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestPhase1ScansWholeApproxFileOnce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 4000, 10)
	sto := store.NewSim(store.DefaultConfig())
	v := mustBuild(t, sto, pts, DefaultOptions())
	s := sto.NewSession()
	if _, err := v.KNN(s, randPoints(r, 1, 10)[0], 1); err != nil {
		t.Fatal(err)
	}
	approxBlocks := v.aFile.Blocks()
	if s.Stats.BlocksRead < approxBlocks {
		t.Fatalf("read %d blocks, approximation file has %d", s.Stats.BlocksRead, approxBlocks)
	}
	// Phase 2 should visit only a small candidate fraction.
	if extra := s.Stats.BlocksRead - approxBlocks; extra > 100 {
		t.Fatalf("phase 2 read %d extra blocks — filtering broken", extra)
	}
}

func TestMoreBitsShrinkCandidateSet(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 4000, 12)
	q := randPoints(r, 1, 12)[0]
	refines := func(bits int) int {
		sto := store.NewSim(store.DefaultConfig())
		v := mustBuild(t, sto, pts, Options{Metric: vec.Euclidean, Bits: bits})
		s := sto.NewSession()
		if _, err := v.KNN(s, q, 1); err != nil {
			t.Fatal(err)
		}
		return s.Stats.Seeks // 1 (scan) + #exact look-ups
	}
	if r2, r8 := refines(2), refines(8); r8 > r2 {
		t.Fatalf("8-bit refinements %d exceed 2-bit %d", r8, r2)
	}
}

func TestLowerUpperAgreesWithTables(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 500, 7)
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum, vec.Manhattan} {
		sto := store.NewSim(store.DefaultConfig())
		v := mustBuild(t, sto, pts, Options{Metric: met, Bits: 4})
		q := randPoints(r, 1, 7)[0]
		dt := v.buildTables(q)
		cells := make([]uint32, v.dim)
		for _, p := range pts[:50] {
			for j := 0; j < v.dim; j++ {
				cells[j] = v.cellOf(j, p[j])
			}
			lb1, ub1 := v.lowerUpper(q, cells)
			lb2, ub2 := dt.bounds(cells)
			if math.Abs(lb1-lb2) > 1e-9 || math.Abs(ub1-ub2) > 1e-9 {
				t.Fatalf("%v: direct (%f,%f) vs tables (%f,%f)", met, lb1, ub1, lb2, ub2)
			}
		}
	}
}

// Property: every point lies inside its assigned cell, so lb ≤ dist ≤ ub.
func TestBoundsBracketTrueDistances(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := skewedPoints(r, 1000, 5)
	sto := store.NewSim(store.DefaultConfig())
	v := mustBuild(t, sto, pts, Options{Metric: vec.Euclidean, Bits: 3})
	q := randPoints(r, 1, 5)[0]
	dt := v.buildTables(q)
	cells := make([]uint32, v.dim)
	for _, p := range pts {
		for j := 0; j < v.dim; j++ {
			cells[j] = v.cellOf(j, p[j])
		}
		lb, ub := dt.bounds(cells)
		truth := vec.Euclidean.Dist(q, p)
		if truth < lb-1e-5 || truth > ub+1e-5 {
			t.Fatalf("dist %f outside [%f, %f]", truth, lb, ub)
		}
	}
}

func TestBitsClampingAndAccessors(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 100, 4)
	sto := store.NewSim(store.DefaultConfig())
	v := mustBuild(t, sto, pts, Options{Metric: vec.Euclidean, Bits: 99})
	if v.Bits() != 16 {
		t.Fatalf("bits clamped to %d, want 16", v.Bits())
	}
	v2 := mustBuild(t, store.NewSim(store.DefaultConfig()), pts, Options{Metric: vec.Euclidean})
	if v2.Bits() != 4 {
		t.Fatalf("default bits %d, want 4", v2.Bits())
	}
	if v2.Len() != 100 || v2.Dim() != 4 || v2.ApproxBytes() == 0 {
		t.Fatal("accessors wrong")
	}
	// Approximation file is the expected compressed size.
	wantBits := 100 * 4 * 4
	if got := quantize.PackedSize(100, 4, 4); got != (wantBits+7)/8 {
		t.Fatalf("packed size %d", got)
	}
}
