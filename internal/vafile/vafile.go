// Package vafile implements the VA-file of Weber, Schek and Blott (VLDB
// 1998), the compression-based comparator of the paper's evaluation: a
// flat signature file holding a b-bits-per-dimension approximation of
// every point, scanned sequentially, plus an exact file consulted for the
// candidates that survive the approximation-based filtering.
//
// Unlike the IQ-tree, the VA-file uses one global grid and one fixed
// number of bits per dimension for the whole database; the paper tunes
// that number by hand per data set (2–8 bits). Both the original
// equi-populated (quantile) cell boundaries and plain uniform boundaries
// are supported.
package vafile

import (
	"errors"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// scanChunk is the number of points bulk-decoded per kernel.UnpackOff
// call during sequential scans. Any multiple of 8 keeps every chunk
// start byte-aligned for every bit width; 256 points keeps the decoded
// codes comfortably inside the L1/L2 caches.
const scanChunk = 256

// chunks iterates the approximation stream in scanChunk-point chunks,
// bulk-decoding each into codes and invoking fn(i, cells) per point.
func (v *VAFile) chunks(buf []byte, fn func(i int, cells []uint32)) {
	codes := make([]uint32, 0, scanChunk*v.dim)
	for base := 0; base < v.n; base += scanChunk {
		cnt := v.n - base
		if cnt > scanChunk {
			cnt = scanChunk
		}
		codes = kernel.UnpackOff(codes, buf, base*v.dim, cnt*v.dim, v.opt.Bits)
		for ii := 0; ii < cnt; ii++ {
			fn(base+ii, codes[ii*v.dim:(ii+1)*v.dim])
		}
	}
}

// Options configures VA-file construction.
type Options struct {
	// Metric is the query metric. Default Euclidean.
	Metric vec.Metric
	// Bits is the number of bits per dimension (1..16). Default 4.
	Bits int
	// Uniform selects uniform cell boundaries instead of the original
	// equi-populated (quantile) boundaries.
	Uniform bool
}

// DefaultOptions returns the classic VA-file configuration.
func DefaultOptions() Options {
	return Options{Metric: vec.Euclidean, Bits: 4}
}

// VAFile is the two-file structure: approximations plus exact data.
type VAFile struct {
	sto    *store.Store
	aFile  *store.File // bit-packed approximations, point order
	eFile  *store.File // exact entries, same order
	dim    int
	n      int
	opt    Options
	bounds [][]float64 // per dimension: 2^bits+1 cell boundaries
}

// Build constructs a VA-file over pts (ids are point indices).
func Build(sto *store.Store, pts []vec.Point, opt Options) (*VAFile, error) {
	if len(pts) == 0 {
		return nil, errors.New("vafile: empty point set")
	}
	if opt.Bits <= 0 {
		opt.Bits = 4
	}
	if opt.Bits > 16 {
		opt.Bits = 16
	}
	v := &VAFile{
		sto: sto,
		dim: len(pts[0]),
		n:   len(pts),
		opt: opt,
	}
	var err error
	if v.aFile, err = sto.NewFile("va.approx"); err != nil {
		return nil, err
	}
	if v.eFile, err = sto.NewFile("va.exact"); err != nil {
		return nil, err
	}
	v.computeBounds(pts)

	w := quantize.NewBitWriter(v.n * v.dim * opt.Bits)
	for _, p := range pts {
		for j := 0; j < v.dim; j++ {
			w.Write(v.cellOf(j, p[j]), opt.Bits)
		}
	}
	if _, _, err := v.aFile.Append(w.Bytes()); err != nil {
		return nil, err
	}

	ids := make([]uint32, len(pts))
	for i := range ids {
		ids[i] = uint32(i)
	}
	if _, _, err := v.eFile.Append(page.MarshalExact(pts, ids)); err != nil {
		return nil, err
	}
	return v, nil
}

// Len returns the number of stored points.
func (v *VAFile) Len() int { return v.n }

// Dim returns the dimensionality.
func (v *VAFile) Dim() int { return v.dim }

// Bits returns the bits per dimension.
func (v *VAFile) Bits() int { return v.opt.Bits }

// ApproxBytes returns the size of the approximation file.
func (v *VAFile) ApproxBytes() int { return v.aFile.Bytes() }

// IndexStats implements index.Index with the common cross-method shape
// summary.
func (v *VAFile) IndexStats() index.Stats {
	return index.Stats{
		Method: "VA-file",
		Points: v.n,
		Dim:    v.dim,
		Pages:  v.aFile.Blocks(),
		Bytes:  v.aFile.Bytes() + v.eFile.Bytes(),
	}
}

// computeBounds derives the per-dimension cell boundaries.
func (v *VAFile) computeBounds(pts []vec.Point) {
	cells := 1 << uint(v.opt.Bits)
	v.bounds = make([][]float64, v.dim)
	if v.opt.Uniform {
		mbr := vec.MBROf(pts)
		for j := 0; j < v.dim; j++ {
			b := make([]float64, cells+1)
			lo, hi := float64(mbr.Lo[j]), float64(mbr.Hi[j])
			if hi <= lo {
				hi = lo + 1e-9
			}
			for c := 0; c <= cells; c++ {
				b[c] = lo + (hi-lo)*float64(c)/float64(cells)
			}
			v.bounds[j] = b
		}
		return
	}
	// Equi-populated boundaries from a deterministic sample per dimension.
	// The outermost boundaries are the exact global minima/maxima so that
	// every point provably lies inside its assigned cell (the distance
	// bounds depend on that invariant).
	mbr := vec.MBROf(pts)
	stride := 1
	if len(pts) > 8192 {
		stride = len(pts) / 8192
	}
	for j := 0; j < v.dim; j++ {
		var vals []float64
		for i := 0; i < len(pts); i += stride {
			vals = append(vals, float64(pts[i][j]))
		}
		sort.Float64s(vals)
		b := make([]float64, cells+1)
		for c := 0; c <= cells; c++ {
			idx := c * (len(vals) - 1) / cells
			b[c] = vals[idx]
		}
		b[0] = float64(mbr.Lo[j])
		b[cells] = float64(mbr.Hi[j]) + 1e-9
		v.bounds[j] = b
	}
}

// cellOf returns the cell index of value x along dimension j.
func (v *VAFile) cellOf(j int, x float32) uint32 {
	b := v.bounds[j]
	cells := len(b) - 1
	// Find the first boundary greater than x; the cell is the previous one.
	idx := sort.SearchFloat64s(b[1:], float64(x))
	// b[idx] ≤ x < b[idx+1] (approximately); clamp.
	if idx >= cells {
		idx = cells - 1
	}
	return uint32(idx)
}

// cellBounds returns the coordinate range of cell c along dimension j.
func (v *VAFile) cellBounds(j int, c uint32) (lo, hi float64) {
	b := v.bounds[j]
	return b[c], b[c+1]
}

// lowerUpper returns the lower and upper bound of the distance between q
// and the point approximated by the cells starting at cell index base in
// the flat cells array.
func (v *VAFile) lowerUpper(q vec.Point, cells []uint32) (lb, ub float64) {
	met := v.opt.Metric
	switch met {
	case vec.Euclidean:
		var l, u float64
		for j := 0; j < v.dim; j++ {
			clo, chi := v.cellBounds(j, cells[j])
			dl := axisDist(float64(q[j]), clo, chi)
			du := axisFar(float64(q[j]), clo, chi)
			l += dl * dl
			u += du * du
		}
		return math.Sqrt(l), math.Sqrt(u)
	case vec.Maximum:
		var l, u float64
		for j := 0; j < v.dim; j++ {
			clo, chi := v.cellBounds(j, cells[j])
			if dl := axisDist(float64(q[j]), clo, chi); dl > l {
				l = dl
			}
			if du := axisFar(float64(q[j]), clo, chi); du > u {
				u = du
			}
		}
		return l, u
	default:
		var l, u float64
		for j := 0; j < v.dim; j++ {
			clo, chi := v.cellBounds(j, cells[j])
			l += axisDist(float64(q[j]), clo, chi)
			u += axisFar(float64(q[j]), clo, chi)
		}
		return l, u
	}
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

func axisFar(v, lo, hi float64) float64 {
	return math.Max(math.Abs(v-lo), math.Abs(v-hi))
}

// distTables holds, per dimension and cell, the squared (Euclidean) or raw
// (other metrics) lower/upper distance contribution of that cell for a
// fixed query point — the classic VA-file trick that turns the per-point
// bound computation into d table look-ups.
type distTables struct {
	met vec.Metric
	dl  [][]float64
	du  [][]float64
}

func (v *VAFile) buildTables(q vec.Point) *distTables {
	dt := &distTables{met: v.opt.Metric, dl: make([][]float64, v.dim), du: make([][]float64, v.dim)}
	for j := 0; j < v.dim; j++ {
		cells := len(v.bounds[j]) - 1
		dl := make([]float64, cells)
		du := make([]float64, cells)
		for c := 0; c < cells; c++ {
			clo, chi := v.cellBounds(j, uint32(c))
			l := axisDist(float64(q[j]), clo, chi)
			u := axisFar(float64(q[j]), clo, chi)
			if dt.met == vec.Euclidean {
				l, u = l*l, u*u
			}
			dl[c] = l
			du[c] = u
		}
		dt.dl[j] = dl
		dt.du[j] = du
	}
	return dt
}

// bounds combines the per-dimension table entries into the lower and upper
// distance bound of one approximation.
func (dt *distTables) bounds(cells []uint32) (lb, ub float64) {
	switch dt.met {
	case vec.Maximum:
		for j, c := range cells {
			if v := dt.dl[j][c]; v > lb {
				lb = v
			}
			if v := dt.du[j][c]; v > ub {
				ub = v
			}
		}
		return lb, ub
	case vec.Euclidean:
		for j, c := range cells {
			lb += dt.dl[j][c]
			ub += dt.du[j][c]
		}
		return math.Sqrt(lb), math.Sqrt(ub)
	default:
		for j, c := range cells {
			lb += dt.dl[j][c]
			ub += dt.du[j][c]
		}
		return lb, ub
	}
}

// candidate is a phase-1 survivor.
type candidate struct {
	idx int
	lb  float64
}

// KNN runs the two-phase VA-file nearest-neighbor search: phase 1 scans
// the approximation file, pruning with the kth-smallest upper bound;
// phase 2 visits the surviving candidates in lower-bound order, fetching
// exact points until the lower bound exceeds the kth exact distance.
func (v *VAFile) KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	if k > v.n {
		k = v.n
	}
	// Phase 1: sequential scan of the approximations.
	buf, err := s.Read(v.aFile, 0, v.aFile.Blocks())
	if err != nil {
		return nil, err
	}
	s.ChargeApproxCPU(v.aFile, v.dim, v.n)
	dt := v.buildTables(q)

	ubHeap := make([]float64, 0, k) // max-heap of k smallest upper bounds
	var cands []candidate
	v.chunks(buf, func(i int, cells []uint32) {
		lb, ub := dt.bounds(cells)
		bound := math.Inf(1)
		if len(ubHeap) == k {
			bound = ubHeap[0]
		}
		if lb <= bound {
			cands = append(cands, candidate{idx: i, lb: lb})
		}
		if len(ubHeap) < k {
			ubHeap = append(ubHeap, ub)
			siftUpF(ubHeap, len(ubHeap)-1)
		} else if ub < ubHeap[0] {
			ubHeap[0] = ub
			siftDownF(ubHeap, 0)
		}
	})
	bound := math.Inf(1)
	if len(ubHeap) == k {
		bound = ubHeap[0]
	}
	// Drop candidates admitted before the bound tightened.
	kept := cands[:0]
	for _, c := range cands {
		if c.lb <= bound {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(a, b int) bool { return kept[a].lb < kept[b].lb })
	tr := obs.TraceFrom(s.Observer())
	tr.AddCandidates(len(kept))

	// Phase 2: visit candidates in lower-bound order.
	var res resHeap
	entrySize := page.ExactEntrySize(v.dim)
	for _, c := range kept {
		if len(res) == k && c.lb >= res[0].Dist {
			break
		}
		raw, rel, err := s.ReadRange(v.eFile, c.idx*entrySize, entrySize)
		if err != nil {
			return nil, err
		}
		p, id := page.UnmarshalExactEntry(raw[rel:], v.dim)
		tr.AddRefinement(1)
		s.ChargeDistCPU(v.eFile, v.dim, 1)
		d := v.opt.Metric.Dist(q, p)
		if len(res) < k {
			res.push(vec.Neighbor{ID: id, Dist: d, Point: p})
		} else if d < res[0].Dist {
			res[0] = vec.Neighbor{ID: id, Dist: d, Point: p}
			res.fix()
		}
	}
	out := make([]vec.Neighbor, len(res))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = res.pop()
	}
	return out, nil
}

// NearestNeighbor returns the single nearest neighbor of q.
func (v *VAFile) NearestNeighbor(s *store.Session, q vec.Point) (vec.Neighbor, bool, error) {
	r, err := v.KNN(s, q, 1)
	if err != nil || len(r) == 0 {
		return vec.Neighbor{}, false, err
	}
	return r[0], true, nil
}

// RangeSearch returns all points within eps of q.
func (v *VAFile) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error) {
	buf, err := s.Read(v.aFile, 0, v.aFile.Blocks())
	if err != nil {
		return nil, err
	}
	s.ChargeApproxCPU(v.aFile, v.dim, v.n)
	tr := obs.TraceFrom(s.Observer())
	dt := v.buildTables(q)
	var out []vec.Neighbor
	var scanErr error
	entrySize := page.ExactEntrySize(v.dim)
	v.chunks(buf, func(i int, cells []uint32) {
		if scanErr != nil {
			return
		}
		lb, _ := dt.bounds(cells)
		if lb > eps {
			return
		}
		tr.AddCandidates(1)
		raw, rel, err := s.ReadRange(v.eFile, i*entrySize, entrySize)
		if err != nil {
			scanErr = err
			return
		}
		p, id := page.UnmarshalExactEntry(raw[rel:], v.dim)
		tr.AddRefinement(1)
		s.ChargeDistCPU(v.eFile, v.dim, 1)
		if d := v.opt.Metric.Dist(q, p); d <= eps {
			out = append(out, vec.Neighbor{ID: id, Dist: d, Point: p})
		}
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out, nil
}

// --- heaps (shared shape with the other access methods) ---

type resHeap []vec.Neighbor

func (h *resHeap) push(nb vec.Neighbor) {
	*h = append(*h, nb)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist >= a[i].Dist {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *resHeap) fix() {
	a := *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].Dist > a[m].Dist {
			m = l
		}
		if r < len(a) && a[r].Dist > a[m].Dist {
			m = r
		}
		if m == i {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

func (h *resHeap) pop() vec.Neighbor {
	a := *h
	top := a[0]
	a[0] = a[len(a)-1]
	*h = a[:len(a)-1]
	h.fix()
	return top
}

func siftUpF(a []float64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if a[p] >= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func siftDownF(a []float64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l] > a[m] {
			m = l
		}
		if r < len(a) && a[r] > a[m] {
			m = r
		}
		if m == i {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

// WindowQuery returns all points inside the query window w. The
// approximation file filters cells disjoint from the window; only
// candidate cells touch the exact file.
func (v *VAFile) WindowQuery(s *store.Session, w vec.MBR) ([]vec.Neighbor, error) {
	buf, err := s.Read(v.aFile, 0, v.aFile.Blocks())
	if err != nil {
		return nil, err
	}
	s.ChargeApproxCPU(v.aFile, v.dim, v.n)
	tr := obs.TraceFrom(s.Observer())
	var out []vec.Neighbor
	var scanErr error
	entrySize := page.ExactEntrySize(v.dim)
	v.chunks(buf, func(i int, cells []uint32) {
		if scanErr != nil {
			return
		}
		for j := 0; j < v.dim; j++ {
			clo, chi := v.cellBounds(j, cells[j])
			if chi < float64(w.Lo[j]) || clo > float64(w.Hi[j]) {
				return
			}
		}
		tr.AddCandidates(1)
		raw, rel, err := s.ReadRange(v.eFile, i*entrySize, entrySize)
		if err != nil {
			scanErr = err
			return
		}
		p, id := page.UnmarshalExactEntry(raw[rel:], v.dim)
		tr.AddRefinement(1)
		s.ChargeDistCPU(v.eFile, v.dim, 1)
		if w.Contains(p) {
			out = append(out, vec.Neighbor{ID: id, Point: p})
		}
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}
