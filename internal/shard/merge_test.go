package shard

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/vec"
)

// TestMergeKNNBoundaryTies pins the k-boundary cut with duplicate
// distances across shards: candidates tied at the boundary distance are
// admitted in ascending global ID order, so the merge is deterministic
// no matter how the tied candidates are spread over shards.
func TestMergeKNNBoundaryTies(t *testing.T) {
	nb := func(id uint32, d float64) vec.Neighbor { return vec.Neighbor{ID: id, Dist: d} }
	lists := [][]vec.Neighbor{
		{nb(10, 0.1), nb(40, 0.5), nb(12, 0.5)}, // shard list with unsorted ties
		{nb(7, 0.5), nb(30, 0.5)},
		{nb(2, 0.3), nb(99, 0.5)},
	}
	got := mergeKNN(lists, 4)
	want := []vec.Neighbor{nb(10, 0.1), nb(2, 0.3), nb(7, 0.5), nb(12, 0.5)}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: got (%d,%v), want (%d,%v)", i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// TestMergeKNNShortLists covers k exceeding the candidate supply: empty
// shard lists contribute nothing, and k larger than the union returns
// every candidate in canonical order.
func TestMergeKNNShortLists(t *testing.T) {
	nb := func(id uint32, d float64) vec.Neighbor { return vec.Neighbor{ID: id, Dist: d} }
	lists := [][]vec.Neighbor{
		{nb(5, 0.2)},
		nil,
		{},
		{nb(1, 0.9), nb(3, 0.4)},
	}
	got := mergeKNN(lists, 10)
	want := []vec.Neighbor{nb(5, 0.2), nb(3, 0.4), nb(1, 0.9)}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := mergeKNN(nil, 3); len(got) != 0 {
		t.Fatalf("merge of no lists returned %d results", len(got))
	}
}

// skewed assigns every point to shard 0 except one middle point on
// shard 1, leaving shard 2 permanently empty.
type skewed struct{}

func (skewed) Name() string { return "skewed" }
func (skewed) Assign(pts []vec.Point, shards int) []int {
	out := make([]int, len(pts))
	if shards > 1 && len(pts) > 2 {
		out[len(pts)/2] = 1
	}
	return out
}

// TestShardEmptyShard runs a topology with a permanently empty shard:
// queries must answer exactly (the empty shard contributes an empty
// set), and the empty shard must hold no engines.
func TestShardEmptyShard(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	pts := randPoints(r, 900, 5)
	batch := mixedQueries(r, 15, 5)
	want := unshardedBaseline(t, pts, batch)

	c, err := New(Config{Shards: 3, Replicas: 2, Partitioner: skewed{}}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sizes := c.ShardSizes()
	if sizes[2] != 0 {
		t.Fatalf("shard sizes %v, want an empty shard 2", sizes)
	}
	if c.Engine(2, 0) != nil {
		t.Fatal("empty shard built an engine")
	}
	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		assertSameResults(t, "empty-shard", i, batch[i].Kind, res.Neighbors, want[i])
	}
}

// TestShardKExceedsShardSize covers k far beyond every shard's point
// count (and beyond the whole dataset): per-shard lists are capped at
// the shard size, and the merge still returns the exact global answer.
func TestShardKExceedsShardSize(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	pts := randPoints(r, 40, 4)
	c, err := New(Config{Shards: 8, Replicas: 1}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, n := range c.ShardSizes() {
		if n != 5 {
			t.Fatalf("shard sizes %v, want 5 points each", c.ShardSizes())
		}
	}

	q := pts[3]
	for _, k := range []int{7, 25, 40, 100} {
		res := c.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k})
		if res.Err != nil {
			t.Fatalf("k=%d: %v", k, res.Err)
		}
		// Brute-force canonical ground truth over the whole dataset.
		want := make([]vec.Neighbor, len(pts))
		for i, p := range pts {
			want[i] = vec.Neighbor{ID: uint32(i), Dist: vec.Euclidean.Dist(q, p), Point: p}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].ID < want[j].ID
		})
		if k < len(want) {
			want = want[:k]
		}
		if len(res.Neighbors) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(res.Neighbors), len(want))
		}
		for j := range want {
			if res.Neighbors[j].ID != want[j].ID || res.Neighbors[j].Dist != want[j].Dist {
				t.Fatalf("k=%d result %d: got (%d,%v), want (%d,%v)",
					k, j, res.Neighbors[j].ID, res.Neighbors[j].Dist, want[j].ID, want[j].Dist)
			}
		}
	}
}

// TestShardDuplicateDistancesAtBoundary runs the end-to-end tie case:
// duplicated points spread across shards produce equal distances
// straddling the global k boundary. Exact KNN semantics require the
// distance sequence to match brute force exactly and every returned ID
// to carry its claimed distance; the canonical merge additionally keeps
// the output ordered (Dist, ID).
func TestShardDuplicateDistancesAtBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	base := randPoints(r, 300, 4)
	// Duplicate a handful of points several times; round-robin spreads
	// the copies across shards, so ties meet only at the merge.
	pts := append([]vec.Point(nil), base...)
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 12; i++ {
			pts = append(pts, base[i].Clone())
		}
	}
	c, err := New(Config{Shards: 4, Replicas: 1}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for qi := 0; qi < 8; qi++ {
		q := base[qi] // query at a duplicated point: distance-0 ties
		for _, k := range []int{2, 3, 4, 5} {
			res := c.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k})
			if res.Err != nil {
				t.Fatalf("q%d k=%d: %v", qi, k, res.Err)
			}
			dists := make([]float64, len(pts))
			for i, p := range pts {
				dists[i] = vec.Euclidean.Dist(q, p)
			}
			wantDists := append([]float64(nil), dists...)
			sort.Float64s(wantDists)
			if len(res.Neighbors) != k {
				t.Fatalf("q%d k=%d: %d results", qi, k, len(res.Neighbors))
			}
			for j, nb := range res.Neighbors {
				if nb.Dist != wantDists[j] {
					t.Fatalf("q%d k=%d result %d: dist %v, want %v", qi, k, j, nb.Dist, wantDists[j])
				}
				if nb.Dist != dists[nb.ID] {
					t.Fatalf("q%d k=%d result %d: ID %d does not carry its claimed distance", qi, k, j, nb.ID)
				}
				if j > 0 {
					prev := res.Neighbors[j-1]
					if prev.Dist > nb.Dist || (prev.Dist == nb.Dist && prev.ID >= nb.ID) {
						t.Fatalf("q%d k=%d: results not in canonical (Dist, ID) order at %d", qi, k, j)
					}
				}
			}
		}
	}
}

// TestShardSingleShardBitIdentical pins the degenerate topology: one
// shard, one replica must behave exactly like the unsharded engine —
// same results and the same simulated charges (the coordinator adds
// routing, not I/O).
func TestShardSingleShardBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	pts := randPoints(r, 1500, 6)
	batch := mixedQueries(r, 18, 6)
	want := unshardedBaseline(t, pts, batch)

	c, err := New(Config{Shards: 1, Replicas: 1}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results := c.SubmitBatch(batch)

	// Rebuild the identical unsharded engine to compare simulated charges
	// query by query (unshardedBaseline keeps its stats private).
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		assertSameResults(t, "single-shard", i, batch[i].Kind, res.Neighbors, want[i])
		if res.Shards[0].Stats != res.Stats {
			t.Fatalf("query %d: coordinator stats %+v != the only shard's %+v", i, res.Stats, res.Shards[0].Stats)
		}
		if res.SimTime != res.Shards[0].SimTime {
			t.Fatalf("query %d: SimTime %g != the only shard's %g", i, res.SimTime, res.Shards[0].SimTime)
		}
	}
}
