package shard

import (
	"container/heap"
	"sort"

	"repro/internal/vec"
)

// Global merge. Every shard answers its sub-query exactly over its own
// points, so the union of per-shard results contains the exact global
// answer: for KNN, any global top-k member is by definition within its
// own shard's top-k (its distance beats the shard's k-th best), so
// taking the k smallest of the union is exact; range and window results
// partition cleanly and concatenate. The coordinator pins a canonical
// result order — (Dist, ID) for KNN and range, ID for window — so the
// merged answer is a deterministic function of the query and the data,
// independent of shard count, replica choice, or failover history.

// canonicalize sorts one shard's mapped result list into the canonical
// (Dist, ID) order. Engines return KNN/range results ordered by
// distance with unspecified tie order; pinning ties to ascending global
// ID makes the k-way merge (and with it the k-boundary cut) exact and
// reproducible.
func canonicalize(nbs []vec.Neighbor) {
	sort.Slice(nbs, func(i, j int) bool {
		if nbs[i].Dist != nbs[j].Dist {
			return nbs[i].Dist < nbs[j].Dist
		}
		return nbs[i].ID < nbs[j].ID
	})
}

// knnHeap is a min-heap over the heads of per-shard candidate lists,
// ordered canonically.
type knnHeap [][]vec.Neighbor

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(i, j int) bool {
	a, b := h[i][0], h[j][0]
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}
func (h knnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)        { *h = append(*h, x.([]vec.Neighbor)) }
func (h *knnHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (h knnHeap) head() vec.Neighbor { return h[0][0] }

// mergeKNN merges per-shard top-k candidate lists into the global
// top-k by exact distance: each list is canonicalized, then a k-way
// heap merge pops the globally smallest head until k results are out or
// every candidate is consumed (k larger than the dataset).
func mergeKNN(lists [][]vec.Neighbor, k int) []vec.Neighbor {
	h := make(knnHeap, 0, len(lists))
	total := 0
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		canonicalize(l)
		h = append(h, l)
		total += len(l)
	}
	if total > k {
		total = k
	}
	heap.Init(&h)
	out := make([]vec.Neighbor, 0, total)
	for len(out) < k && h.Len() > 0 {
		out = append(out, h.head())
		if rest := h[0][1:]; len(rest) > 0 {
			h[0] = rest
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// mergeRange concatenates per-shard range results (the shards partition
// the points, so the union is exact and duplicate-free) in canonical
// (Dist, ID) order.
func mergeRange(lists [][]vec.Neighbor) []vec.Neighbor {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]vec.Neighbor, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	canonicalize(out)
	return out
}

// mergeWindow concatenates per-shard window results in ascending global
// ID order (window results carry no distances).
func mergeWindow(lists [][]vec.Neighbor) []vec.Neighbor {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]vec.Neighbor, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
