package shard

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// fastHeal is the test repairer tuning: tight enough that a full
// kill→rebuild→readmit cycle fits in a few hundred milliseconds.
func fastHeal() HealConfig {
	return HealConfig{
		Interval:     2 * time.Millisecond,
		ProbeTimeout: 250 * time.Millisecond,
		ProbeBackoff: 5 * time.Millisecond,
		ProbeCap:     100 * time.Millisecond,
		MaxLag:       8,
	}
}

// healCoordinator builds a Durable+SelfHeal fleet over checksummed
// stores — the configuration the self-healing contract is stated for.
func healCoordinator(t *testing.T, pts []vec.Point, selfHeal bool, reg *obs.Registry) *Coordinator {
	t.Helper()
	c, err := New(Config{
		Shards:   2,
		Replicas: 2,
		Durable:  true,
		SelfHeal: selfHeal,
		Heal:     fastHeal(),
		Registry: reg,
		NewStore: func(_, _ int) (*store.Store, error) {
			sto := store.NewSim(store.DefaultConfig())
			if err := sto.EnableChecksums(); err != nil {
				return nil, err
			}
			return sto, nil
		},
	}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitHealthy polls until every replica is Serving and ready.
func waitHealthy(t *testing.T, c *Coordinator, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !c.Healthy() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: fleet never converged to all-Serving: %+v", what, c.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealKillRebuild: killing a replica's engine mid-flight drains it,
// the repairer rebuilds it from its sibling by WAL shipping, and the
// fleet converges back to all-Serving with unchanged answers.
func TestHealKillRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	pts := randPoints(r, 1600, 6)
	batch := mixedQueries(r, 24, 6)
	want := unshardedBaseline(t, pts, batch)

	reg := &obs.Registry{}
	c := healCoordinator(t, pts, true, reg)
	defer c.Close()

	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("healthy query %d: %v", i, res.Err)
		}
		assertSameResults(t, "healthy", i, batch[i].Kind, res.Neighbors, want[i])
	}

	// Kill one replica while the batch runs, then let the fleet heal.
	killed := c.Engine(1, 1)
	go killed.Close()
	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("chaos query %d lost: %v", i, res.Err)
		}
		assertSameResults(t, "chaos", i, batch[i].Kind, res.Neighbors, want[i])
	}
	waitHealthy(t, c, "after kill")

	if got := reg.Counter("shard.heal.rebuilds").Value(); got < 1 {
		t.Fatalf("fleet healthy with %d rebuilds; the killed replica cannot have recovered without one", got)
	}
	// The rebuilt replica is a new stack: the killed engine is gone from
	// the rotation and the replacement answers directly.
	if c.Engine(1, 1) == killed {
		t.Fatal("replica 1/1 still routes to the killed engine")
	}
	direct := c.Engine(1, 1).Submit(engine.Query{Kind: engine.KNN, Point: pts[0], K: 3})
	if direct.Err != nil {
		t.Fatalf("rebuilt replica: %v", direct.Err)
	}
	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("post-heal query %d: %v", i, res.Err)
		}
		assertSameResults(t, "post-heal", i, batch[i].Kind, res.Neighbors, want[i])
	}
	for _, row := range c.Status() {
		if row.State != Serving || !row.Ready || row.Lag != 0 {
			t.Fatalf("post-heal status %+v", row)
		}
	}
}

// TestHealCorruptAtRestRebuild: at-rest corruption of a replica's
// directory file makes its queries fail typed; the failures drain it,
// canary probes keep failing against the broken stack, and the rebuild
// replaces it with a verified copy of its sibling.
func TestHealCorruptAtRestRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	pts := randPoints(r, 1600, 6)
	batch := mixedQueries(r, 24, 6)
	want := unshardedBaseline(t, pts, batch)

	reg := &obs.Registry{}
	c := healCoordinator(t, pts, true, reg)
	defer c.Close()

	corruptDir(t, victimStore(t, c, 0, 0))
	// Traffic drives the drain: every attempt on the corrupt replica
	// fails, fails accumulates past DrainAfter, the repairer takes over.
	deadline := time.Now().Add(30 * time.Second)
	for !c.Healthy() || reg.Counter("shard.heal.rebuilds").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("corrupt replica never rebuilt: %+v", c.Status())
		}
		for i, res := range c.SubmitBatch(batch) {
			if res.Err != nil {
				t.Fatalf("query %d lost during heal: %v", i, res.Err)
			}
			assertSameResults(t, "during-heal", i, batch[i].Kind, res.Neighbors, want[i])
		}
	}

	if got := reg.Counter("shard.heal.probe_failures").Value(); got == 0 {
		t.Fatal("no failed probes recorded; the corrupt replica was readmitted without proof")
	}
	// The rebuilt replica must answer directly — the corruption is gone,
	// not routed around.
	direct := c.Engine(0, 0).Submit(engine.Query{Kind: engine.KNN, Point: pts[0], K: 3})
	if direct.Err != nil {
		t.Fatalf("rebuilt replica still failing: %v", direct.Err)
	}
}

// corruptDir flips a bit in every directory block beneath the checksum
// layer (same idiom as the chaos tests).
func corruptDir(t *testing.T, sto *store.Store) {
	t.Helper()
	bf := sto.Backend().Lookup(core.DirFileName)
	if bf == nil {
		t.Fatal("corrupt target has no directory file")
	}
	for b := 0; b < bf.Blocks(); b++ {
		data, err := bf.ReadBlocks(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		buf := append([]byte(nil), data...)
		buf[0] ^= 0x40
		if err := bf.WriteBlocks(b, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHealWritesDuringRebuild: inserts keep landing while a replica
// rebuilds; the rebuilt replica catches up through the shipped WAL tail
// and the healed fleet answers exactly like an untouched twin fed the
// same writes.
func TestHealWritesDuringRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	pts := randPoints(r, 1600, 6)

	c := healCoordinator(t, pts, true, &obs.Registry{})
	defer c.Close()
	twin := healCoordinator(t, pts, false, &obs.Registry{})
	defer twin.Close()

	kill := c.Engine(0, 1)
	go kill.Close()
	// Writes race the drain and the rebuild: some land while the victim
	// is Serving, some while it is Draining/Rebuilding/CatchingUp.
	for round := 0; round < 8; round++ {
		extra := randPoints(r, 40, 6)
		gids, err := c.Insert(extra)
		if err != nil {
			t.Fatalf("round %d: insert: %v", round, err)
		}
		tg, err := twin.Insert(extra)
		if err != nil {
			t.Fatalf("round %d: twin insert: %v", round, err)
		}
		for i := range gids {
			if gids[i] != tg[i] {
				t.Fatalf("round %d: global ID %d, twin %d", round, gids[i], tg[i])
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitHealthy(t, c, "writes during rebuild")

	batch := mixedQueries(r, 24, 6)
	wres := twin.SubmitBatch(batch)
	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("post-heal query %d: %v", i, res.Err)
		}
		if wres[i].Err != nil {
			t.Fatalf("twin query %d: %v", i, wres[i].Err)
		}
		assertSameResults(t, "vs-twin", i, batch[i].Kind, res.Neighbors, canonical(batch[i].Kind, wres[i].Neighbors))
	}
	// Zero lag everywhere: the rebuilt replica holds every write.
	for _, row := range c.Status() {
		if row.Lag != 0 {
			t.Fatalf("replica %d/%d still lags by %d LSNs: %+v", row.Shard, row.Replica, row.Lag, row)
		}
	}
}

// TestHealProbeReadmission: a replica drained without missing any write
// comes back through canary probes alone — no rebuild.
func TestHealProbeReadmission(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	pts := randPoints(r, 1200, 6)

	reg := &obs.Registry{}
	c := healCoordinator(t, pts, true, reg)
	defer c.Close()

	// Simulate a transient fault: enough consecutive failures to drain,
	// but a perfectly healthy stack underneath.
	rep := c.shards[0].reps[0]
	rep.fails.Store(int32(c.cfg.Heal.DrainAfter))

	deadline := time.Now().Add(30 * time.Second)
	for reg.Counter("shard.heal.readmissions").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drained replica never readmitted: %+v", c.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitHealthy(t, c, "probe readmission")
	if got := reg.Counter("shard.heal.drains").Value(); got < 1 {
		t.Fatal("no drain recorded")
	}
	if got := reg.Counter("shard.heal.rebuilds").Value(); got != 0 {
		t.Fatalf("probe readmission path ran %d rebuilds", got)
	}
	if got := reg.Counter("shard.heal.probes").Value(); got < 1 {
		t.Fatal("no probes recorded")
	}
}
