package shard

import (
	"math/rand"

	"repro/internal/vec"
)

// Partitioner assigns every point of a build set to one of n shards.
// The assignment is a build-time decision: queries always fan out to
// every shard (the global answer may live anywhere), so the partitioner
// only shapes balance and locality, never correctness.
type Partitioner interface {
	// Name identifies the strategy in benchmarks and stats.
	Name() string
	// Assign returns one shard id in [0, shards) per point. Shards may
	// end up empty; the coordinator serves them as empty result sets.
	Assign(pts []vec.Point, shards int) []int
}

// RoundRobin deals points out cyclically — the balance-first strategy:
// shard sizes differ by at most one point, with no locality.
type RoundRobin struct{}

// Name identifies the strategy.
func (RoundRobin) Name() string { return "round-robin" }

// Assign maps point i to shard i % shards.
func (RoundRobin) Assign(pts []vec.Point, shards int) []int {
	out := make([]int, len(pts))
	for i := range pts {
		out[i] = i % shards
	}
	return out
}

// Centroid is a coarse k-means router: a few seeded Lloyd iterations
// over the build set place one centroid per shard, and each point joins
// its nearest centroid (ties to the lowest shard id). Clustered data
// then lands cluster-coherent shards, which tightens per-shard MBRs and
// lets the quantized filter prune harder — the same coarse-quantizer
// shape as an IVF index, applied at process scale.
type Centroid struct {
	// Seed makes the routing deterministic; the same seed and point set
	// always produce the same assignment.
	Seed int64
	// Iters is the number of Lloyd iterations (default 8).
	Iters int
}

// Name identifies the strategy.
func (Centroid) Name() string { return "centroid" }

// Assign clusters pts around shards seeded centroids and returns each
// point's cluster.
func (c Centroid) Assign(pts []vec.Point, shards int) []int {
	out := make([]int, len(pts))
	if shards <= 1 || len(pts) == 0 {
		return out
	}
	iters := c.Iters
	if iters <= 0 {
		iters = 8
	}
	dim := len(pts[0])
	r := rand.New(rand.NewSource(c.Seed))

	// Seed centroids from a random sample of distinct points.
	cents := make([][]float64, shards)
	perm := r.Perm(len(pts))
	for i := range cents {
		cents[i] = make([]float64, dim)
		src := pts[perm[i%len(perm)]]
		for d := 0; d < dim; d++ {
			cents[i][d] = float64(src[d])
		}
	}

	nearest := func(p vec.Point) int {
		best, bestD := 0, -1.0
		for ci, cent := range cents {
			var d float64
			for j := 0; j < dim; j++ {
				diff := float64(p[j]) - cent[j]
				d += diff * diff
			}
			if bestD < 0 || d < bestD {
				best, bestD = ci, d
			}
		}
		return best
	}

	sum := make([][]float64, shards)
	cnt := make([]int, shards)
	for i := range sum {
		sum[i] = make([]float64, dim)
	}
	for it := 0; it < iters; it++ {
		for i := range sum {
			for d := range sum[i] {
				sum[i][d] = 0
			}
			cnt[i] = 0
		}
		for i, p := range pts {
			ci := nearest(p)
			out[i] = ci
			for d := 0; d < dim; d++ {
				sum[ci][d] += float64(p[d])
			}
			cnt[ci]++
		}
		for ci := range cents {
			if cnt[ci] == 0 {
				// Re-seed a starved centroid on a random point so a bad
				// draw cannot permanently empty a shard.
				src := pts[r.Intn(len(pts))]
				for d := 0; d < dim; d++ {
					cents[ci][d] = float64(src[d])
				}
				continue
			}
			for d := 0; d < dim; d++ {
				cents[ci][d] = sum[ci][d] / float64(cnt[ci])
			}
		}
	}
	for i, p := range pts {
		out[i] = nearest(p)
	}
	return out
}
