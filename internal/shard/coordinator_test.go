package shard

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

func randPoints(r *rand.Rand, n, dim int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

// mixedQueries builds a deterministic KNN/range/window workload.
func mixedQueries(r *rand.Rand, n, dim int) []engine.Query {
	batch := make([]engine.Query, 0, n)
	for i := 0; i < n; i++ {
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = r.Float32()
		}
		switch i % 3 {
		case 0:
			batch = append(batch, engine.Query{Kind: engine.KNN, Point: q, K: 1 + r.Intn(8)})
		case 1:
			batch = append(batch, engine.Query{Kind: engine.Range, Point: q, Eps: 0.2 + r.Float64()*0.3})
		default:
			lo := make(vec.Point, dim)
			hi := make(vec.Point, dim)
			for j := range lo {
				a := r.Float32() * 0.6
				lo[j], hi[j] = a, a+0.3+r.Float32()*0.3
			}
			batch = append(batch, engine.Query{Kind: engine.Window, Window: vec.MBR{Lo: lo, Hi: hi}})
		}
	}
	return batch
}

// canonical sorts a copy of nbs into the coordinator's canonical order.
func canonical(kind engine.Kind, nbs []vec.Neighbor) []vec.Neighbor {
	out := append([]vec.Neighbor(nil), nbs...)
	if kind == engine.Window {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// unshardedBaseline answers the batch on a single engine over the whole
// dataset, canonicalized for comparison.
func unshardedBaseline(t *testing.T, pts []vec.Point, batch []engine.Query) [][]vec.Neighbor {
	t.Helper()
	sto := store.NewSim(store.DefaultConfig())
	tr, err := core.Build(sto, pts, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(sto, tr, 2)
	defer e.Close()
	want := make([][]vec.Neighbor, len(batch))
	for i, res := range e.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("baseline query %d: %v", i, res.Err)
		}
		want[i] = canonical(batch[i].Kind, res.Neighbors)
	}
	return want
}

func assertSameResults(t *testing.T, label string, i int, kind engine.Kind, got, want []vec.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s query %d (%v): %d results, want %d", label, i, kind, len(got), len(want))
	}
	for j := range want {
		if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
			t.Fatalf("%s query %d (%v) result %d: got (%d,%v), want (%d,%v)",
				label, i, kind, j, got[j].ID, got[j].Dist, want[j].ID, want[j].Dist)
		}
	}
}

// TestShardedMatchesUnsharded is the tentpole equivalence contract:
// scatter-gather over any shard count and either partitioner returns
// exactly the unsharded engine's answers (canonical order) for all
// three query kinds.
func TestShardedMatchesUnsharded(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	pts := randPoints(r, 3000, 6)
	batch := mixedQueries(r, 36, 6)
	want := unshardedBaseline(t, pts, batch)

	parts := []Partitioner{RoundRobin{}, Centroid{Seed: 72}}
	for _, part := range parts {
		for _, shards := range []int{1, 2, 4, 8} {
			reg := &obs.Registry{}
			c, err := New(Config{
				Shards:      shards,
				Replicas:    1,
				Partitioner: part,
				Registry:    reg,
			}, pts)
			if err != nil {
				t.Fatalf("%s/%d shards: %v", part.Name(), shards, err)
			}
			total := 0
			for _, n := range c.ShardSizes() {
				total += n
			}
			if total != len(pts) {
				t.Fatalf("%s/%d shards: %d points across shards, want %d", part.Name(), shards, total, len(pts))
			}
			for i, res := range c.SubmitBatch(batch) {
				if res.Err != nil {
					t.Fatalf("%s/%d shards query %d: %v", part.Name(), shards, i, res.Err)
				}
				assertSameResults(t, part.Name(), i, batch[i].Kind, res.Neighbors, want[i])
			}
			if got := reg.Counter("shard.merged").Value(); got != int64(len(batch)) {
				t.Fatalf("%s/%d shards: shard.merged = %d, want %d", part.Name(), shards, got, len(batch))
			}
			if got := reg.Counter("shard.failovers").Value(); got != 0 {
				t.Fatalf("%s/%d shards: %d failovers on a healthy fleet", part.Name(), shards, got)
			}
			c.Close()
		}
	}
}

// TestShardStatsAttribution pins the coordinator's accounting: with a
// healthy fleet (no failovers) the coordinator's Stats are exactly the
// sum of the per-shard final results, SimTime is exactly the slowest
// shard's, fanout counts one sub-query per non-empty shard, and every
// per-shard trace still sums to its own session stats.
func TestShardStatsAttribution(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	pts := randPoints(r, 2000, 6)
	reg := &obs.Registry{}
	c, err := New(Config{Shards: 4, Replicas: 2, Registry: reg}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := mixedQueries(r, 18, 6)
	for i := range batch {
		batch[i].Trace = true
	}
	results := c.SubmitBatch(batch)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		if res.Failovers != 0 {
			t.Fatalf("query %d: %d failovers on a healthy fleet", i, res.Failovers)
		}
		var sum store.Stats
		var slowest float64
		for si, sres := range res.Shards {
			sum.Add(sres.Stats)
			if sres.SimTime > slowest {
				slowest = sres.SimTime
			}
			if len(c.ShardSizes()) > si && c.ShardSizes()[si] > 0 {
				if sres.Trace == nil {
					t.Fatalf("query %d shard %d: no trace", i, si)
				}
				seeks, blocks, reads, cpu := sres.Trace.Totals()
				if seeks != sres.Stats.Seeks || blocks != sres.Stats.BlocksRead || reads != sres.Stats.Reads {
					t.Fatalf("query %d shard %d: trace totals (%d,%d,%d) != stats %+v",
						i, si, seeks, blocks, reads, sres.Stats)
				}
				if math.Abs(cpu-sres.Stats.CPUSeconds) > 1e-9 {
					t.Fatalf("query %d shard %d: trace cpu %g != stats cpu %g", i, si, cpu, sres.Stats.CPUSeconds)
				}
			}
		}
		if sum != res.Stats {
			t.Fatalf("query %d: coordinator stats %+v != per-shard sum %+v", i, res.Stats, sum)
		}
		if math.Abs(slowest-res.SimTime) > 1e-12 {
			t.Fatalf("query %d: SimTime %g != slowest shard %g", i, res.SimTime, slowest)
		}
	}
	if got, want := reg.Counter("shard.fanout").Value(), int64(4*len(batch)); got != want {
		t.Fatalf("shard.fanout = %d, want %d", got, want)
	}
}

// TestShardClosedReplicaRouting checks health-aware routing: with one
// replica of every shard closed, queries route to the healthy sibling
// without failing; with every replica of a shard closed, queries fail
// typed with engine.ErrClosed instead of hanging.
func TestShardClosedReplicaRouting(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	pts := randPoints(r, 1200, 5)
	batch := mixedQueries(r, 12, 5)
	want := unshardedBaseline(t, pts, batch)

	c, err := New(Config{Shards: 2, Replicas: 2}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for si := 0; si < c.Shards(); si++ {
		c.Engine(si, 0).Close()
		if h := c.Engine(si, 0).Health(); !h.Closed || h.Ready() {
			t.Fatalf("shard %d replica 0: health %+v after Close", si, h)
		}
	}
	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("query %d with one closed replica per shard: %v", i, res.Err)
		}
		assertSameResults(t, "degraded", i, batch[i].Kind, res.Neighbors, want[i])
	}

	// Kill the survivors of shard 0: the whole shard is now down, and a
	// partial scatter-gather must surface as a typed error, never as a
	// silently incomplete answer.
	c.Engine(0, 1).Close()
	res := c.Submit(engine.Query{Kind: engine.KNN, Point: pts[0], K: 3})
	if !errors.Is(res.Err, engine.ErrClosed) {
		t.Fatalf("query against a fully closed shard: err %v, want ErrClosed", res.Err)
	}
	if res.Neighbors != nil {
		t.Fatal("partial scatter-gather returned neighbors alongside the error")
	}
}

// TestShardQueryLocalErrorsSkipFailover checks that failover never
// retries query-local failures: an invalid query fails typed with zero
// replica retries consumed.
func TestShardQueryLocalErrorsSkipFailover(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	pts := randPoints(r, 600, 4)
	reg := &obs.Registry{}
	c, err := New(Config{Shards: 2, Replicas: 2, Registry: reg}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res := c.Submit(engine.Query{Kind: engine.KNN, Point: pts[0], K: 0})
	if !errors.Is(res.Err, engine.ErrInvalidQuery) {
		t.Fatalf("invalid query: err %v, want ErrInvalidQuery", res.Err)
	}
	if got := reg.Counter("shard.replica_retries").Value(); got != 0 {
		t.Fatalf("invalid query consumed %d replica retries, want 0", got)
	}
}
