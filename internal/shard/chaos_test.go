package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestShardChaosReplicaFailover is the tentpole chaos proof: with two
// replicas per shard, corrupting one replica's directory at rest (bit
// flips beneath the checksum layer) and killing another replica's
// engine loses zero queries and never changes an answer — the
// coordinator fails over to the healthy sibling on the typed
// *store.CorruptBlockError / engine.ErrClosed and the merged results
// stay exactly the unsharded baseline.
func TestShardChaosReplicaFailover(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	pts := randPoints(r, 2400, 6)
	batch := mixedQueries(r, 30, 6)
	want := unshardedBaseline(t, pts, batch)

	reg := &obs.Registry{}
	c, err := New(Config{
		Shards:   4,
		Replicas: 2,
		Registry: reg,
		NewStore: func(_, _ int) (*store.Store, error) {
			sto := store.NewSim(store.DefaultConfig())
			if err := sto.EnableChecksums(); err != nil {
				return nil, err
			}
			return sto, nil
		},
	}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: healthy fleet answers exactly with zero failovers.
	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("healthy query %d: %v", i, res.Err)
		}
		assertSameResults(t, "healthy", i, batch[i].Kind, res.Neighbors, want[i])
	}
	if got := reg.Counter("shard.failovers").Value(); got != 0 {
		t.Fatalf("healthy fleet recorded %d failovers", got)
	}

	// Phase 2: corrupt replica 0 of shard 0 at rest — flip one bit in
	// every directory block straight on the backend, beneath the
	// checksum sidecar maintenance, so every level-1 read of that
	// replica fails with the typed *store.CorruptBlockError.
	corrupt := func(sto *store.Store) {
		bf := sto.Backend().Lookup(core.DirFileName)
		if bf == nil {
			t.Fatal("corrupt target has no directory file")
		}
		for b := 0; b < bf.Blocks(); b++ {
			data, err := bf.ReadBlocks(b, 1)
			if err != nil {
				t.Fatal(err)
			}
			buf := append([]byte(nil), data...)
			buf[0] ^= 0x40
			if err := bf.WriteBlocks(b, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	victim := c.Engine(0, 0)
	corrupt(victimStore(t, c, 0, 0))
	// The corrupt replica must fail typed when asked directly.
	direct := victim.Submit(engine.Query{Kind: engine.KNN, Point: pts[0], K: 3})
	var cbe *store.CorruptBlockError
	if !errors.As(direct.Err, &cbe) {
		t.Fatalf("corrupt replica answered %v, want *store.CorruptBlockError", direct.Err)
	}

	// Phase 3: kill replica 1 of shard 1 mid-run — queries racing the
	// kill must either route around it or fail over, never fail out.
	var kill sync.WaitGroup
	kill.Add(1)
	go func() {
		defer kill.Done()
		c.Engine(1, 1).Close()
	}()
	results := c.SubmitBatch(batch)
	kill.Wait()
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("chaos query %d lost: %v", i, res.Err)
		}
		assertSameResults(t, "chaos", i, batch[i].Kind, res.Neighbors, want[i])
	}

	// Every query that touched the corrupt replica failed over; traffic
	// then drained to the sibling. At least the first probe must have
	// been retried.
	if got := reg.Counter("shard.replica_retries").Value(); got == 0 {
		t.Fatal("no replica retries recorded; the corrupt replica was never probed")
	}
	if got := reg.Counter("shard.failovers").Value(); got == 0 {
		t.Fatal("no failovers recorded under chaos")
	}

	// Phase 4: the fleet keeps serving exactly after the chaos — the
	// corrupt and killed replicas stay out of rotation.
	for i, res := range c.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatalf("post-chaos query %d: %v", i, res.Err)
		}
		assertSameResults(t, "post-chaos", i, batch[i].Kind, res.Neighbors, want[i])
	}
}

// victimStore digs out one replica's store for at-rest corruption.
func victimStore(t *testing.T, c *Coordinator, shard, rep int) *store.Store {
	t.Helper()
	if shard >= len(c.shards) || rep >= len(c.shards[shard].reps) {
		t.Fatalf("no replica %d/%d", shard, rep)
	}
	return c.shards[shard].reps[rep].stack().sto
}

// TestShardChaosFaultStoreTransients slots a seeded FaultStore under
// one replica of every shard (transient read errors with retries
// disabled, so every injected fault becomes a hard replica-local
// failure) and proves the fleet answers every query exactly anyway.
func TestShardChaosFaultStoreTransients(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	pts := randPoints(r, 1800, 6)
	batch := mixedQueries(r, 24, 6)
	want := unshardedBaseline(t, pts, batch)

	reg := &obs.Registry{}
	var faulty []*store.FaultStore
	c, err := New(Config{
		Shards:   2,
		Replicas: 2,
		Registry: reg,
		NewStore: func(shard, rep int) (*store.Store, error) {
			if rep != 0 {
				return store.NewSim(store.DefaultConfig()), nil
			}
			fs := store.NewFaultStore(store.NewSimStore(store.DefaultConfig()), store.FaultConfig{
				Seed:    int64(93 + shard),
				ReadErr: 0.05,
			})
			fs.SetEnabled(false) // build cleanly
			faulty = append(faulty, fs)
			sto := store.Wrap(fs)
			sto.SetRetryPolicy(store.RetryPolicy{}) // no retries: faults hit failover
			return sto, nil
		},
	}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, fs := range faulty {
		fs.SetEnabled(true)
	}

	lost, failedOver := 0, 0
	for round := 0; round < 4; round++ {
		for i, res := range c.SubmitBatch(batch) {
			if res.Err != nil {
				lost++
				t.Errorf("round %d query %d lost: %v", round, i, res.Err)
				continue
			}
			failedOver += res.Failovers
			assertSameResults(t, "transients", i, batch[i].Kind, res.Neighbors, want[i])
		}
	}
	if lost > 0 {
		t.Fatalf("%d queries lost under transient injection", lost)
	}
	injected := 0
	for _, fs := range faulty {
		injected += fs.InjectedTotal()
	}
	if injected > 0 && failedOver == 0 && reg.Counter("shard.replica_retries").Value() == 0 {
		t.Fatalf("%d faults injected but no failover recorded", injected)
	}
}
