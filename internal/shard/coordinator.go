// Package shard is the scale-out serving layer: a coordinator
// partitions one dataset across N independent shards — each its own
// store.Store, index.Index and internal/engine engine — scatter-gathers
// every query across all shards, and merges the per-shard answers into
// a globally exact result (see merge.go for the exactness argument).
//
// Each shard runs R replicas built independently from the same points:
// deterministic builds make every replica answer identically, so the
// coordinator may serve any query from any replica. Replica-local
// failures — corrupt blocks, overload shedding, contained panics, hard
// read errors, a closed engine — fail over to a sibling replica with
// bounded backoff; only query-local failures (cancellation, invalid
// shape) follow the query. PR 5's fault layer thus becomes
// availability: losing one replica loses zero queries and never changes
// an answer.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// Config parameterizes a Coordinator. The zero value of every optional
// field selects a sensible default (see New).
type Config struct {
	// Shards is the number of partitions (>= 1).
	Shards int
	// Replicas is the number of independently built copies per shard
	// (>= 1). One replica means failover has nowhere to go: replica-local
	// failures then surface to the caller.
	Replicas int
	// Workers is the worker-pool size of every replica engine (default 2).
	Workers int
	// Partitioner assigns build points to shards (default RoundRobin).
	Partitioner Partitioner
	// StoreConfig parameterizes each replica's own simulated store
	// (default store.DefaultConfig). Every replica gets an independent
	// store — one disk per replica, which is what makes shards scale.
	StoreConfig store.Config
	// NewStore, when non-nil, supplies the store for one replica —
	// the hook chaos tests use to slot a FaultStore under a chosen
	// replica. Default: store.NewSim(StoreConfig).
	NewStore func(shard, replica int) (*store.Store, error)
	// Build, when non-nil, builds one replica's index over its local
	// points. Default: core.Build with core.DefaultOptions.
	Build func(sto *store.Store, pts []vec.Point) (index.Index, error)
	// EngineOpts is appended to every replica engine's options.
	EngineOpts []engine.Option
	// Registry receives the coordinator's shard.* metrics (default: a
	// private registry).
	Registry *obs.Registry
	// MaxAttempts bounds how many replica attempts one shard sub-query
	// makes before its last error surfaces (default 2*Replicas).
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling per attempt
	// and capped at 100x (default 100us). It spaces retries of an
	// overloaded replica without stalling corrupt-replica failover.
	Backoff time.Duration
	// Durable makes the default Build construct WAL-mode trees — the
	// precondition for WAL-shipping replica rebuild and for Insert being
	// acknowledged durably. A custom Build decides for itself.
	Durable bool
	// SelfHeal starts the repairer: failed replicas are drained, probed,
	// rebuilt from a healthy peer and readmitted instead of PR 7's
	// permanent drain. See heal.go and DESIGN.md §15.
	SelfHeal bool
	// Heal tunes the repairer (zero fields take defaults, see HealConfig).
	Heal HealConfig
}

// Result is the outcome of one coordinated query.
type Result struct {
	// Neighbors is the globally exact merged answer in canonical order:
	// (Dist, ID) for KNN and range, ascending ID for window.
	Neighbors []vec.Neighbor
	// Err aggregates the shard sub-queries that exhausted failover (nil
	// when every shard answered). A non-nil Err means Neighbors is nil:
	// a partial scatter-gather must not be trusted.
	Err error
	// Stats sums the simulated charges of every attempt on every shard,
	// failed attempts included — the true work the query cost the fleet.
	Stats store.Stats
	// SimTime is the simulated latency of the scatter-gather: the
	// slowest shard's summed attempt time (shards run in parallel,
	// failover attempts within a shard run sequentially).
	SimTime float64
	// Wall is the wall-clock time of the whole scatter-gather.
	Wall time.Duration
	// Failovers counts failed replica attempts that were retried on a
	// sibling during this query.
	Failovers int
	// Shards holds each shard's final attempt (zero-valued for empty
	// shards), indexed by shard id — per-shard traces and stats for
	// attribution.
	Shards []engine.Result
}

// stack is one replica's serving machinery. Rebuild replaces the whole
// stack atomically: queries racing the swap land on either the old or
// the new one whole, never a mix, and the old engine drains its
// in-flight queries before it is closed.
type stack struct {
	sto *store.Store
	idx index.Index
	eng *engine.Engine
}

// replica is one independently built copy of a shard.
type replica struct {
	shard, id int
	st        atomic.Pointer[stack]
	// state is the replica lifecycle (ReplicaState, see heal.go):
	// Serving → Draining → Rebuilding → CatchingUp → Serving. Without
	// SelfHeal a replica stays Serving forever and only engine health
	// gates routing, preserving PR 7 behavior.
	state atomic.Int32
	// fails counts consecutive failed attempts; any success resets it.
	// Replicas with strictly more consecutive failures than a sibling
	// are deprioritized, so traffic drains away from a broken replica
	// after its first failure instead of re-probing it every query.
	fails atomic.Int32

	// Repairer bookkeeping (heal.go). drainedSeq snapshots the shard's
	// writeSeq at drain time: probe readmission is only legal when no
	// write has landed since (the drained replica skipped them).
	drainedSeq atomic.Uint64
	drainedAt  atomic.Int64 // unix nanos of the drain, for MTTR
	probeFails int          // owned by the repairer goroutine
	nextProbe  time.Time    // owned by the repairer goroutine
}

// stack returns the replica's current serving stack.
func (r *replica) stack() *stack { return r.st.Load() }

// shardState is one partition: its global ID mapping and its replicas.
type shardState struct {
	// gids maps local ID (position in the build slice, extended by
	// Insert) to global ID. Behind an atomic pointer so the merge path
	// reads it lock-free while Insert grows it copy-on-write.
	gids atomic.Pointer[[]uint32]
	reps []*replica
	rr   atomic.Uint32 // rotates the preferred replica for load spread

	// writeMu serializes the shard's writes and the rebuild critical
	// sections (full copy, final tail, stack swap): holding it makes
	// every replica's files quiescent, which is what lets ShipAll copy a
	// live peer consistently. writeSeq counts applied write batches —
	// the staleness witness for probe readmission.
	writeMu  sync.Mutex
	writeSeq atomic.Uint64
}

// ids returns the shard's current local→global ID mapping.
func (sh *shardState) ids() []uint32 { return *sh.gids.Load() }

// Coordinator scatter-gathers queries across shards with per-shard
// replica failover. Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	shards []*shardState

	// nextGID hands out global IDs for Insert (starts past the build
	// points).
	nextGID atomic.Uint64

	// Repairer lifecycle (heal.go): stopCh ends the loop, healWG tracks
	// it plus every in-flight rebuild goroutine.
	stopCh   chan struct{}
	stopOnce sync.Once
	healWG   sync.WaitGroup

	reg       *obs.Registry
	fanout    *obs.Counter // sub-queries dispatched to shards
	merged    *obs.Counter // queries successfully merged
	failovers *obs.Counter // queries that needed at least one failover
	retries   *obs.Counter // failed replica attempts retried on a sibling
	writes    *obs.Counter // write batches applied

	drains       *obs.Counter // replicas drained by the repairer
	probes       *obs.Counter // canary probes sent
	probeFails   *obs.Counter // canary probes failed
	readmits     *obs.Counter // probe-driven readmissions (no rebuild)
	rebuilds     *obs.Counter // completed replica rebuilds
	rebuildFails *obs.Counter // rebuild attempts that gave up
	shipRestarts *obs.Counter // catch-up restarts from a fresh full copy
	mttr         *obs.Histogram
}

// New partitions pts across cfg.Shards shards and builds cfg.Replicas
// independent store+index+engine replicas per non-empty shard.
func New(cfg Config, pts []vec.Point) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("shard: need at least 1 replica, got %d", cfg.Replicas)
	}
	if len(pts) == 0 {
		return nil, errors.New("shard: cannot partition an empty point set")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = RoundRobin{}
	}
	if cfg.StoreConfig.BlockSize == 0 {
		cfg.StoreConfig = store.DefaultConfig()
	}
	if cfg.NewStore == nil {
		sc := cfg.StoreConfig
		cfg.NewStore = func(_, _ int) (*store.Store, error) { return store.NewSim(sc), nil }
	}
	if cfg.Build == nil {
		durable := cfg.Durable
		cfg.Build = func(sto *store.Store, pts []vec.Point) (index.Index, error) {
			opt := core.DefaultOptions()
			if durable {
				opt.WAL = true
				opt.WALCheckpointBlocks = 256
			}
			return core.Build(sto, pts, opt)
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = &obs.Registry{}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2 * cfg.Replicas
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Microsecond
	}
	cfg.Heal = cfg.Heal.withDefaults()

	assign := cfg.Partitioner.Assign(pts, cfg.Shards)
	if len(assign) != len(pts) {
		return nil, fmt.Errorf("shard: partitioner %s assigned %d of %d points", cfg.Partitioner.Name(), len(assign), len(pts))
	}
	local := make([][]vec.Point, cfg.Shards)
	gids := make([][]uint32, cfg.Shards)
	for i, si := range assign {
		if si < 0 || si >= cfg.Shards {
			return nil, fmt.Errorf("shard: partitioner %s assigned point %d to shard %d of %d", cfg.Partitioner.Name(), i, si, cfg.Shards)
		}
		local[si] = append(local[si], pts[i])
		gids[si] = append(gids[si], uint32(i))
	}

	c := &Coordinator{
		cfg:          cfg,
		stopCh:       make(chan struct{}),
		reg:          cfg.Registry,
		fanout:       cfg.Registry.Counter("shard.fanout"),
		merged:       cfg.Registry.Counter("shard.merged"),
		failovers:    cfg.Registry.Counter("shard.failovers"),
		retries:      cfg.Registry.Counter("shard.replica_retries"),
		writes:       cfg.Registry.Counter("shard.writes"),
		drains:       cfg.Registry.Counter("shard.heal.drains"),
		probes:       cfg.Registry.Counter("shard.heal.probes"),
		probeFails:   cfg.Registry.Counter("shard.heal.probe_failures"),
		readmits:     cfg.Registry.Counter("shard.heal.readmissions"),
		rebuilds:     cfg.Registry.Counter("shard.heal.rebuilds"),
		rebuildFails: cfg.Registry.Counter("shard.heal.rebuild_failures"),
		shipRestarts: cfg.Registry.Counter("shard.heal.ship_restarts"),
		mttr:         cfg.Registry.Histogram("shard.mttr_seconds"),
	}
	c.nextGID.Store(uint64(len(pts)))
	for si := 0; si < cfg.Shards; si++ {
		sh := &shardState{}
		g := gids[si]
		sh.gids.Store(&g)
		if len(local[si]) > 0 {
			for ri := 0; ri < cfg.Replicas; ri++ {
				sto, err := cfg.NewStore(si, ri)
				if err != nil {
					c.Close()
					return nil, fmt.Errorf("shard %d replica %d: store: %w", si, ri, err)
				}
				idx, err := cfg.Build(sto, local[si])
				if err != nil {
					c.Close()
					return nil, fmt.Errorf("shard %d replica %d: build: %w", si, ri, err)
				}
				eng := engine.New(sto, idx, cfg.Workers, cfg.EngineOpts...)
				rep := &replica{shard: si, id: ri}
				rep.st.Store(&stack{sto: sto, idx: idx, eng: eng})
				rep.state.Store(int32(Serving))
				sh.reps = append(sh.reps, rep)
			}
		}
		c.shards = append(c.shards, sh)
	}
	if cfg.SelfHeal {
		c.healWG.Add(1)
		go c.repairer()
	}
	return c, nil
}

// Close stops the repairer, waits out in-flight rebuilds, then shuts
// down every replica engine (idempotent).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.healWG.Wait()
	for _, sh := range c.shards {
		for _, rep := range sh.reps {
			rep.stack().eng.Close()
		}
	}
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Replicas returns the replica count per non-empty shard.
func (c *Coordinator) Replicas() int { return c.cfg.Replicas }

// Registry returns the registry carrying the coordinator's metrics.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// ShardSizes returns the number of points on each shard.
func (c *Coordinator) ShardSizes() []int {
	out := make([]int, len(c.shards))
	for i, sh := range c.shards {
		out[i] = len(sh.ids())
	}
	return out
}

// Engine returns one replica's engine (for health inspection and chaos
// tests), or nil when the shard is empty or out of range.
func (c *Coordinator) Engine(shard, replica int) *engine.Engine {
	if shard < 0 || shard >= len(c.shards) {
		return nil
	}
	sh := c.shards[shard]
	if replica < 0 || replica >= len(sh.reps) {
		return nil
	}
	return sh.reps[replica].stack().eng
}

// Makespan returns the aggregate simulated wall-clock of the fleet so
// far: the busiest lane across every replica engine. Shards (and the
// lanes within each engine) model independent disks running in
// parallel, so the slowest one bounds the fleet's simulated finish time.
func (c *Coordinator) Makespan() float64 {
	var m float64
	for _, sh := range c.shards {
		for _, rep := range sh.reps {
			if b := rep.stack().eng.Makespan(); b > m {
				m = b
			}
		}
	}
	return m
}

// retryable classifies a failed attempt: replica-local failures (the
// sibling replica holds the same data on different hardware) are worth
// a failover; query-local failures follow the query to any replica and
// fail immediately.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, engine.ErrCanceled) || errors.Is(err, engine.ErrInvalidQuery) {
		return false
	}
	// *store.CorruptBlockError, engine.ErrOverloaded, engine.ErrPanicked,
	// engine.ErrClosed, engine.ErrTooManyRestarts and hard read errors
	// are all replica-local.
	return true
}

// shardAnswer is one shard's contribution to a query.
type shardAnswer struct {
	res       engine.Result // final attempt
	stats     store.Stats   // summed charges across every attempt
	simTime   float64       // summed simulated time across every attempt
	failovers int
}

// askShard serves one sub-query on one shard, failing over across
// replicas on retryable errors with bounded exponential backoff.
// Replica choice rotates for load spread, prefers healthy replicas
// (ready and with the fewest consecutive failures), and sticks to the
// query's context semantics: cancellation is never retried.
func (c *Coordinator) askShard(sh *shardState, q engine.Query) shardAnswer {
	var ans shardAnswer
	start := int(sh.rr.Add(1)-1) % len(sh.reps)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		rep := sh.pick(start + attempt)
		if rep == nil {
			// Every replica is closed; report it as the typed error.
			ans.res = engine.Result{Err: engine.ErrClosed}
			return ans
		}
		if attempt > 0 {
			d := c.cfg.Backoff << uint(attempt-1)
			if max := 100 * c.cfg.Backoff; d > max {
				d = max
			}
			time.Sleep(d)
		}
		res := rep.stack().eng.Submit(q)
		ans.res = res
		ans.stats.Add(res.Stats)
		ans.simTime += res.SimTime
		if res.Err == nil {
			rep.fails.Store(0)
			return ans
		}
		if !retryable(res.Err) {
			return ans
		}
		rep.fails.Add(1)
		if attempt+1 < c.cfg.MaxAttempts {
			ans.failovers++
			c.retries.Inc()
		}
	}
	return ans
}

// pick returns the replica to try for attempt number n (already offset
// by the query's rotation), preferring ready replicas with the fewest
// consecutive failures so traffic drains away from a broken replica.
// Replicas not in state Serving never serve: a drained replica has
// skipped writes, so answering from it could return stale results even
// when its engine looks healthy. Returns nil only when every replica is
// closed or drained.
func (sh *shardState) pick(n int) *replica {
	r := len(sh.reps)
	var best *replica
	var bestFails int32
	for off := 0; off < r; off++ {
		rep := sh.reps[(n+off)%r]
		if ReplicaState(rep.state.Load()) != Serving {
			continue
		}
		if !rep.stack().eng.Health().Ready() {
			continue
		}
		f := rep.fails.Load()
		if best == nil || f < bestFails {
			best, bestFails = rep, f
		}
		if f == 0 {
			break // first ready clean replica in rotation order wins
		}
	}
	return best
}

// Submit scatter-gathers one query across every non-empty shard and
// merges the per-shard answers into the globally exact result.
func (c *Coordinator) Submit(q engine.Query) Result {
	start := time.Now()
	// Approximate-mode knobs scatter with the query: a global page budget
	// splits evenly across the non-empty shards (ceil, so the per-shard
	// budgets sum to at least the global one), while MinRecall passes
	// through unchanged — each shard stops at ε locally, so the merged
	// miss probability compounds at worst by a union bound over shards
	// (see DESIGN.md §14). The merge itself is unchanged: per-shard
	// answers stay subset-with-substitutions, so the merged list is too.
	if q.MaxCost > 0 {
		nonEmpty := 0
		for _, sh := range c.shards {
			if len(sh.reps) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty > 0 {
			q.MaxCost = (q.MaxCost + nonEmpty - 1) / nonEmpty
		}
	}
	res := Result{Shards: make([]engine.Result, len(c.shards))}
	answers := make([]shardAnswer, len(c.shards))
	var wg sync.WaitGroup
	for si, sh := range c.shards {
		if len(sh.reps) == 0 {
			continue // empty shard: empty contribution
		}
		c.fanout.Inc()
		wg.Add(1)
		go func(si int, sh *shardState) {
			defer wg.Done()
			answers[si] = c.askShard(sh, q)
		}(si, sh)
	}
	wg.Wait()

	var errs []error
	lists := make([][]vec.Neighbor, 0, len(c.shards))
	for si := range c.shards {
		ans := &answers[si]
		res.Shards[si] = ans.res
		res.Stats.Add(ans.stats)
		if ans.simTime > res.SimTime {
			res.SimTime = ans.simTime
		}
		res.Failovers += ans.failovers
		if len(c.shards[si].reps) == 0 {
			continue
		}
		if ans.res.Err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", si, ans.res.Err))
			continue
		}
		// Map local IDs (positions in the shard's build slice) back to
		// global IDs; merge then works purely in the global space.
		nbs := ans.res.Neighbors
		gids := c.shards[si].ids()
		for i := range nbs {
			nbs[i].ID = gids[nbs[i].ID]
		}
		lists = append(lists, nbs)
	}
	res.Wall = time.Since(start)
	if len(errs) > 0 {
		res.Err = errors.Join(errs...)
		return res
	}
	switch q.Kind {
	case engine.KNN:
		res.Neighbors = mergeKNN(lists, q.K)
	case engine.Range:
		res.Neighbors = mergeRange(lists)
	default:
		res.Neighbors = mergeWindow(lists)
	}
	c.merged.Inc()
	if res.Failovers > 0 {
		c.failovers.Inc()
	}
	return res
}

// SubmitBatch runs all queries through the coordinator with bounded
// concurrency (one scatter-gather per engine worker in flight, so no
// replica's queue is ever overrun by the batch itself) and returns
// results in query order.
func (c *Coordinator) SubmitBatch(qs []engine.Query) []Result {
	results := make([]Result, len(qs))
	inflight := c.cfg.Workers
	if inflight < 1 {
		inflight = 1
	}
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	for i := range qs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Submit(qs[i])
			<-sem
		}(i)
	}
	wg.Wait()
	return results
}
