// Self-healing replicas: the repairer goroutine watches every replica,
// drains the ones that stop answering, probes them with canary queries,
// and either readmits them (transient faults, no missed writes) or
// rebuilds them from a healthy peer by WAL shipping (see store/ship.go
// and DESIGN.md §15). The lifecycle is
//
//	Serving → Draining → Rebuilding → CatchingUp → Serving
//	            └──────────── probe readmission ────┘
//
// with the probe shortcut legal only when no write landed since the
// drain — a drained replica skipped every write applied in the
// meantime, so readmitting it after a write would serve stale answers.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// ReplicaState is one replica's position in the self-healing lifecycle.
type ReplicaState int32

const (
	// Serving: in the query rotation and receiving writes.
	Serving ReplicaState = iota
	// Draining: out of rotation, skipping writes, under canary probes.
	Draining
	// Rebuilding: a rebuild goroutine is copying a peer's checkpoint.
	Rebuilding
	// CatchingUp: full copy done, tailing the peer's WAL down to MaxLag.
	CatchingUp
)

func (s ReplicaState) String() string {
	switch s {
	case Serving:
		return "serving"
	case Draining:
		return "draining"
	case Rebuilding:
		return "rebuilding"
	case CatchingUp:
		return "catching-up"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// HealConfig tunes the repairer. Zero fields take the listed defaults.
type HealConfig struct {
	// Interval is the repairer's tick (default 10ms).
	Interval time.Duration
	// ProbeTimeout bounds each canary query (default 250ms): a replica
	// that cannot answer a trivial KNN inside it is not fit to serve.
	ProbeTimeout time.Duration
	// ProbeBackoff is the wait after the first failed probe, doubling
	// per failure (default 50ms) and capped at ProbeCap (default 2s) —
	// a circuit breaker that goes half-open on each expiry.
	ProbeBackoff time.Duration
	ProbeCap     time.Duration
	// RebuildAfterProbes is how many consecutive probe failures trigger
	// a rebuild instead of further probing (default 2).
	RebuildAfterProbes int
	// DrainAfter drains a Serving replica after this many consecutive
	// failed query attempts (default 1 — routing already prefers clean
	// siblings after one failure, so a broken replica's counter never
	// climbs past one; the canary probe is what separates a transient
	// fault from a broken replica, cheaply). Engine un-readiness
	// (closed) drains immediately regardless.
	DrainAfter int
	// MaxLag is the WAL catch-up convergence bound in LSNs: once the
	// rebuilt replica is within MaxLag of its peer, the final hand-over
	// (under the shard write lock) closes the rest (default 64).
	MaxLag uint64
	// ShipRestarts bounds how many times one rebuild may restart from a
	// fresh full copy after losing the WAL race to a peer checkpoint
	// (default 3).
	ShipRestarts int
}

func (h HealConfig) withDefaults() HealConfig {
	if h.Interval <= 0 {
		h.Interval = 10 * time.Millisecond
	}
	if h.ProbeTimeout <= 0 {
		h.ProbeTimeout = 250 * time.Millisecond
	}
	if h.ProbeBackoff <= 0 {
		h.ProbeBackoff = 50 * time.Millisecond
	}
	if h.ProbeCap <= 0 {
		h.ProbeCap = 2 * time.Second
	}
	if h.RebuildAfterProbes <= 0 {
		h.RebuildAfterProbes = 2
	}
	if h.DrainAfter <= 0 {
		h.DrainAfter = 1
	}
	if h.MaxLag <= 0 {
		h.MaxLag = 64
	}
	if h.ShipRestarts <= 0 {
		h.ShipRestarts = 3
	}
	return h
}

// repairer is the healing loop: one goroutine per coordinator, started
// by New when SelfHeal is set, stopped by Close.
func (c *Coordinator) repairer() {
	defer c.healWG.Done()
	tick := time.NewTicker(c.cfg.Heal.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-tick.C:
		}
		for _, sh := range c.shards {
			for _, rep := range sh.reps {
				c.tend(sh, rep)
			}
		}
	}
}

// tend advances one replica's lifecycle by at most one step.
func (c *Coordinator) tend(sh *shardState, rep *replica) {
	switch ReplicaState(rep.state.Load()) {
	case Serving:
		ready := rep.stack().eng.Health().Ready()
		failing := rep.fails.Load() >= int32(c.cfg.Heal.DrainAfter)
		if ready && !failing {
			return
		}
		// A flaky-but-alive replica only drains when a sibling can carry
		// the shard; a dead engine cannot serve anyway, so it always
		// drains.
		if ready && failing && !sh.hasOtherServing(rep) {
			return
		}
		c.drain(sh, rep)
	case Draining:
		if time.Now().Before(rep.nextProbe) {
			return // breaker open (probe backoff or failed-rebuild pacing)
		}
		if sh.writeSeq.Load() != rep.drainedSeq.Load() {
			// The shard took writes this replica skipped: probing cannot
			// prove it current, only a rebuild can.
			c.startRebuild(sh, rep)
			return
		}
		if c.probe(rep) {
			c.readmit(rep, c.readmits)
			return
		}
		rep.probeFails++
		if rep.probeFails >= c.cfg.Heal.RebuildAfterProbes {
			c.startRebuild(sh, rep)
			return
		}
		back := c.cfg.Heal.ProbeBackoff << uint(rep.probeFails-1)
		if back > c.cfg.Heal.ProbeCap {
			back = c.cfg.Heal.ProbeCap
		}
		rep.nextProbe = time.Now().Add(back)
	case Rebuilding, CatchingUp:
		// Owned by the rebuild goroutine.
	}
}

// drain takes a Serving replica out of rotation and arms the probe
// cycle. Called from the repairer and from the write path (a replica
// that failed a write has diverged and must stop serving immediately).
func (c *Coordinator) drain(sh *shardState, rep *replica) {
	if !rep.state.CompareAndSwap(int32(Serving), int32(Draining)) {
		return
	}
	rep.drainedSeq.Store(sh.writeSeq.Load())
	rep.drainedAt.Store(time.Now().UnixNano())
	c.drains.Inc()
}

// hasOtherServing reports whether any sibling of rep is Serving and
// ready.
func (sh *shardState) hasOtherServing(rep *replica) bool {
	for _, sib := range sh.reps {
		if sib == rep {
			continue
		}
		if ReplicaState(sib.state.Load()) == Serving && sib.stack().eng.Health().Ready() {
			return true
		}
	}
	return false
}

// probe sends one canary KNN with a tight deadline at the drained
// replica's own engine. Success means the whole stack — queue, worker,
// index, store — answered end to end.
func (c *Coordinator) probe(rep *replica) bool {
	st := rep.stack()
	if !st.eng.Health().Ready() {
		return false
	}
	c.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Heal.ProbeTimeout)
	defer cancel()
	res := st.eng.Submit(engine.Query{
		Kind:  engine.KNN,
		Point: make(vec.Point, st.idx.Dim()),
		K:     1,
		Ctx:   ctx,
	})
	if res.Err != nil {
		c.probeFails.Inc()
		return false
	}
	return true
}

// readmit returns a replica to Serving and records its MTTR.
func (c *Coordinator) readmit(rep *replica, how *obs.Counter) {
	rep.fails.Store(0)
	rep.probeFails = 0
	rep.nextProbe = time.Time{}
	rep.state.Store(int32(Serving))
	how.Inc()
	if at := rep.drainedAt.Load(); at > 0 {
		c.mttr.Observe(time.Since(time.Unix(0, at)).Seconds())
	}
}

// startRebuild transitions Draining → Rebuilding and spawns the rebuild
// goroutine. probeFails resets so a failed rebuild falls back to a full
// probe cycle (with backoff) before the next attempt — the pacing that
// keeps an unrecoverable shard from rebuilding in a hot loop.
func (c *Coordinator) startRebuild(sh *shardState, rep *replica) {
	if !rep.state.CompareAndSwap(int32(Draining), int32(Rebuilding)) {
		return
	}
	rep.probeFails = 0
	rep.nextProbe = time.Time{}
	c.healWG.Add(1)
	go c.rebuild(sh, rep)
}

// rebuild replaces a replica's whole stack from a healthy peer:
//
//  1. Full copy (ShipAll) of the peer's directory under the shard write
//     lock — the write path is the only thing that mutates a replica's
//     files, so holding the lock makes the source quiescent.
//  2. Catch-up (CatchingUp): repeatedly ship the peer's WAL tail
//     without the lock until the lag is within MaxLag. A peer
//     checkpoint can consume un-shipped records (ErrShipGap, or an
//     empty tail with positive lag); that restarts from a fresh full
//     copy, bounded by ShipRestarts.
//  3. Hand-over: under the write lock, ship the final tail (the source
//     LSN is now frozen), scrub, recover via core.Open, swap the stack
//     and return to Serving. The old engine is closed after the swap so
//     its in-flight queries drain on the old stack.
//
// Peers without WAL get the logical fallback: re-build from AllPoints
// under the write lock (exact same local IDs, since the coordinator
// only appends).
func (c *Coordinator) rebuild(sh *shardState, rep *replica) {
	defer c.healWG.Done()
	err := c.rebuildOnce(sh, rep)
	if err == nil {
		return
	}
	c.rebuildFails.Inc()
	// Back to Draining, paced: tend honors nextProbe before anything
	// else, so an unrecoverable replica (say, no serving peer) retries
	// on a timer instead of a hot loop. The writes before the state
	// store are visible to the repairer through the state load.
	rep.probeFails = 0
	rep.nextProbe = time.Now().Add(2 * c.cfg.Heal.ProbeBackoff)
	rep.state.Store(int32(Draining))
}

// errNoPeer means no Serving sibling could seed a rebuild.
var errNoPeer = errors.New("shard: no serving peer to rebuild from")

// servingPeer returns a Serving, ready sibling of rep.
func (sh *shardState) servingPeer(rep *replica) *replica {
	for _, sib := range sh.reps {
		if sib == rep {
			continue
		}
		if ReplicaState(sib.state.Load()) == Serving && sib.stack().eng.Health().Ready() {
			return sib
		}
	}
	return nil
}

func (c *Coordinator) rebuildOnce(sh *shardState, rep *replica) error {
	select {
	case <-c.stopCh:
		return errors.New("shard: coordinator closing")
	default:
	}
	peer := sh.servingPeer(rep)
	if peer == nil {
		return errNoPeer
	}
	pst := peer.stack()
	tree, ok := pst.idx.(*core.Tree)
	if !ok {
		return fmt.Errorf("shard %d replica %d: peer index %T cannot seed a rebuild", rep.shard, rep.id, pst.idx)
	}
	if !tree.WALEnabled() {
		return c.rebuildLogical(sh, rep, peer)
	}

	for restart := 0; restart < c.cfg.Heal.ShipRestarts; restart++ {
		if restart > 0 {
			c.shipRestarts.Inc()
		}
		ok, err := c.shipRebuild(sh, rep, peer)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// Lost the WAL race to a peer checkpoint: full copy again.
	}
	return fmt.Errorf("shard %d replica %d: catch-up lost the WAL race %d times", rep.shard, rep.id, c.cfg.Heal.ShipRestarts)
}

// shipRebuild runs one full-copy + catch-up + hand-over attempt.
// Returns (false, nil) when a peer checkpoint consumed un-shipped WAL
// records and the attempt must restart from a fresh full copy.
func (c *Coordinator) shipRebuild(sh *shardState, rep *replica, peer *replica) (bool, error) {
	pst := peer.stack()
	tree := pst.idx.(*core.Tree)
	newSto, err := c.cfg.NewStore(rep.shard, rep.id)
	if err != nil {
		return false, fmt.Errorf("shard %d replica %d: rebuild store: %w", rep.shard, rep.id, err)
	}
	shipper := &store.Shipper{Src: pst.sto.Backend(), Dst: newSto.Backend(), TailWAL: core.WALFileName}

	// Full copy under the write lock: source quiescent, data and .crc
	// sidecars consistent.
	sh.writeMu.Lock()
	_, err = shipper.ShipAll()
	sh.writeMu.Unlock()
	if err != nil {
		return false, fmt.Errorf("shard %d replica %d: full copy: %w", rep.shard, rep.id, err)
	}

	// The store wrapper indexes files lazily per name; wrap the shipped
	// backend fresh so the copied files are visible.
	sto := store.Wrap(newSto.Backend())
	if pst.sto.Checked() {
		if err := sto.EnableChecksums(); err != nil {
			return false, fmt.Errorf("shard %d replica %d: checksums: %w", rep.shard, rep.id, err)
		}
	}
	lsn, err := core.RecoveredLSN(sto)
	if err != nil {
		return false, fmt.Errorf("shard %d replica %d: shipped watermark: %w", rep.shard, rep.id, err)
	}

	// Catch up outside the lock so live writes keep flowing.
	rep.state.Store(int32(CatchingUp))
	for {
		select {
		case <-c.stopCh:
			return false, errors.New("shard: coordinator closing")
		default:
		}
		target := tree.AppliedLSN()
		if target <= lsn || target-lsn <= c.cfg.Heal.MaxLag {
			break
		}
		srep, err := shipper.ShipTail(core.WALFileName, lsn)
		if errors.Is(err, store.ErrShipGap) {
			return false, nil // checkpoint consumed the tail; restart
		}
		if err != nil {
			return false, fmt.Errorf("shard %d replica %d: catch-up: %w", rep.shard, rep.id, err)
		}
		if srep.Records == 0 {
			// No gap but nothing to ship while still behind: the peer
			// checkpointed everything past lsn. Restart.
			return false, nil
		}
		lsn = srep.LastLSN
	}

	// Verify the shipped bytes before trusting them with traffic.
	if sto.Checked() {
		if _, err := sto.Scrub(); err != nil {
			return false, fmt.Errorf("shard %d replica %d: scrub: %w", rep.shard, rep.id, err)
		}
	}

	// Hand-over: writes blocked, the peer LSN is frozen; the final tail
	// closes the lag exactly.
	sh.writeMu.Lock()
	defer sh.writeMu.Unlock()
	if target := tree.AppliedLSN(); target > lsn {
		srep, err := shipper.ShipTail(core.WALFileName, lsn)
		if errors.Is(err, store.ErrShipGap) {
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("shard %d replica %d: final tail: %w", rep.shard, rep.id, err)
		}
		if srep.LastLSN < target {
			return false, nil // tail incomplete: checkpoint race; restart
		}
	}
	newTree, err := core.Open(sto)
	if err != nil {
		return false, fmt.Errorf("shard %d replica %d: recover: %w", rep.shard, rep.id, err)
	}
	eng := engine.New(sto, newTree, c.cfg.Workers, c.cfg.EngineOpts...)
	old := rep.st.Swap(&stack{sto: sto, idx: newTree, eng: eng})
	c.readmit(rep, c.rebuilds)
	c.closeAsync(old.eng) // drains in-flight probes on the old stack
	return true, nil
}

// rebuildLogical re-builds a non-WAL replica from the peer's live
// points. The whole rebuild holds the write lock: without a WAL there
// is no tail to catch up on, the copy must be atomic with respect to
// writes. Local IDs survive because the coordinator only appends —
// AllPoints returns exactly the IDs 0..n-1.
func (c *Coordinator) rebuildLogical(sh *shardState, rep *replica, peer *replica) error {
	sh.writeMu.Lock()
	defer sh.writeMu.Unlock()
	pst := peer.stack()
	tree := pst.idx.(*core.Tree)
	pts, ids, err := tree.AllPoints()
	if err != nil {
		return fmt.Errorf("shard %d replica %d: peer points: %w", rep.shard, rep.id, err)
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ids[order[a]] < ids[order[b]] })
	sorted := make([]vec.Point, len(pts))
	for i, j := range order {
		if ids[j] != uint32(i) {
			return fmt.Errorf("shard %d replica %d: peer IDs not dense (want %d, got %d)", rep.shard, rep.id, i, ids[j])
		}
		sorted[i] = pts[j]
	}
	newSto, err := c.cfg.NewStore(rep.shard, rep.id)
	if err != nil {
		return fmt.Errorf("shard %d replica %d: rebuild store: %w", rep.shard, rep.id, err)
	}
	idx, err := c.cfg.Build(newSto, sorted)
	if err != nil {
		return fmt.Errorf("shard %d replica %d: rebuild: %w", rep.shard, rep.id, err)
	}
	eng := engine.New(newSto, idx, c.cfg.Workers, c.cfg.EngineOpts...)
	old := rep.st.Swap(&stack{sto: newSto, idx: idx, eng: eng})
	c.readmit(rep, c.rebuilds)
	c.closeAsync(old.eng)
	return nil
}

// closeAsync closes a replaced engine off the rebuild path (Close
// drains in-flight queries, which must not block the hand-over) but
// still tracked by healWG so Coordinator.Close waits it out.
func (c *Coordinator) closeAsync(eng *engine.Engine) {
	c.healWG.Add(1)
	go func() {
		defer c.healWG.Done()
		eng.Close()
	}()
}

// ReplicaStatus is one replica's row in Status.
type ReplicaStatus struct {
	Shard, Replica int
	State          ReplicaState
	Ready          bool
	AppliedLSN     uint64 // 0 on non-WAL indexes
	Lag            uint64 // behind the most advanced sibling
	Fails          int32  // consecutive failed query attempts
	Queries        int64
	Failures       int64
}

// Status snapshots every replica's lifecycle state, readiness and WAL
// position — the view iqtool -shard-status prints and the chaos
// harness polls for all-Serving convergence.
func (c *Coordinator) Status() []ReplicaStatus {
	var out []ReplicaStatus
	for si, sh := range c.shards {
		base := len(out)
		var maxLSN uint64
		for ri, rep := range sh.reps {
			st := rep.stack()
			h := st.eng.Health()
			row := ReplicaStatus{
				Shard:    si,
				Replica:  ri,
				State:    ReplicaState(rep.state.Load()),
				Ready:    h.Ready(),
				Fails:    rep.fails.Load(),
				Queries:  h.Queries,
				Failures: h.Failures,
			}
			if tree, ok := st.idx.(*core.Tree); ok && tree.WALEnabled() {
				row.AppliedLSN = tree.AppliedLSN()
			}
			if row.AppliedLSN > maxLSN {
				maxLSN = row.AppliedLSN
			}
			out = append(out, row)
		}
		for i := base; i < len(out); i++ {
			out[i].Lag = maxLSN - out[i].AppliedLSN
		}
	}
	return out
}

// Healthy reports whether every replica is Serving and ready — the
// chaos harness's convergence predicate.
func (c *Coordinator) Healthy() bool {
	for _, sh := range c.shards {
		for _, rep := range sh.reps {
			if ReplicaState(rep.state.Load()) != Serving || !rep.stack().eng.Health().Ready() {
				return false
			}
		}
	}
	return true
}
