// Coordinator writes: Insert appends a batch of points to the fleet.
// Points partition across shards with the coordinator's Partitioner;
// each shard applies its slice to every Serving replica under the
// shard's write lock, in the same order on every replica — which is
// what keeps deterministic replicas answering identically after any
// number of writes. A replica that fails a write has diverged and is
// drained on the spot; with SelfHeal it comes back through a rebuild.
package shard

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/vec"
)

// ErrNoReplicas means a shard had no Serving replica to apply a write.
var ErrNoReplicas = errors.New("shard: no serving replica accepted the write")

// Insert appends pts to the fleet and returns their global IDs (one per
// point, in input order). An ID is durable as soon as Insert returns
// when the replicas log (Config.Durable). A non-nil error means at
// least one shard could not apply its slice on any Serving replica —
// those points are not in the fleet; slices that did apply are.
func (c *Coordinator) Insert(pts []vec.Point) ([]uint32, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	for i, p := range pts {
		if len(p) == 0 {
			return nil, fmt.Errorf("shard: empty point at %d", i)
		}
	}
	assign := c.cfg.Partitioner.Assign(pts, len(c.shards))
	if len(assign) != len(pts) {
		return nil, fmt.Errorf("shard: partitioner %s assigned %d of %d points", c.cfg.Partitioner.Name(), len(assign), len(pts))
	}
	base := c.nextGID.Add(uint64(len(pts))) - uint64(len(pts))
	gids := make([]uint32, len(pts))
	for i := range gids {
		gids[i] = uint32(base + uint64(i))
	}

	perShard := make([][]vec.Point, len(c.shards))
	perGIDs := make([][]uint32, len(c.shards))
	for i, si := range assign {
		if si < 0 || si >= len(c.shards) {
			return nil, fmt.Errorf("shard: partitioner %s assigned point %d to shard %d of %d", c.cfg.Partitioner.Name(), i, si, len(c.shards))
		}
		// Shards built empty have no replicas; their points roll over to
		// the next non-empty shard (the global ID is what callers see,
		// the shard is an implementation detail).
		for len(c.shards[si].reps) == 0 {
			si = (si + 1) % len(c.shards)
		}
		perShard[si] = append(perShard[si], pts[i])
		perGIDs[si] = append(perGIDs[si], gids[i])
	}

	var errs []error
	for si, sh := range c.shards {
		if len(perShard[si]) == 0 {
			continue
		}
		if err := c.insertShard(sh, perShard[si], perGIDs[si]); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", si, err))
		}
	}
	if len(errs) > 0 {
		return gids, errors.Join(errs...)
	}
	return gids, nil
}

// insertShard applies one shard's slice to every Serving replica.
func (c *Coordinator) insertShard(sh *shardState, pts []vec.Point, gids []uint32) error {
	sh.writeMu.Lock()
	defer sh.writeMu.Unlock()

	// Grow the local→global mapping copy-on-write BEFORE applying: any
	// query that sees the new points on a replica then finds their
	// global IDs already published (the replica's internal lock ordering
	// gives the happens-before edge).
	old := sh.ids()
	grown := make([]uint32, len(old), len(old)+len(gids))
	copy(grown, old)
	grown = append(grown, gids...)
	sh.gids.Store(&grown)
	locals := make([]uint32, len(pts))
	for i := range locals {
		locals[i] = uint32(len(old) + i)
	}

	applied := 0
	var errs []error
	for _, rep := range sh.reps {
		if ReplicaState(rep.state.Load()) != Serving {
			continue // drained replicas resync via rebuild, not via writes
		}
		st := rep.stack()
		mut, ok := st.idx.(engine.Mutator)
		if !ok {
			errs = append(errs, fmt.Errorf("replica %d: index %T: %w", rep.id, st.idx, engine.ErrNoWrites))
			continue
		}
		if err := mut.InsertBatch(st.sto.NewSession(), pts, locals); err != nil {
			// This replica missed a write every sibling took: it is stale
			// from this moment and must stop serving. drain records the
			// pre-increment writeSeq, so probe readmission is impossible
			// and only a rebuild brings it back.
			c.drain(sh, rep)
			errs = append(errs, fmt.Errorf("replica %d: %w", rep.id, err))
			continue
		}
		applied++
	}
	sh.writeSeq.Add(1)
	c.writes.Inc()
	if applied == 0 {
		errs = append(errs, ErrNoReplicas)
		return errors.Join(errs...)
	}
	// Partial application is not an Insert failure: the write is durable
	// on the replicas that took it, and the failed ones are drained.
	return nil
}
