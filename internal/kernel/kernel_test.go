package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quantize"
	"repro/internal/vec"
)

var metrics = []vec.Metric{vec.Euclidean, vec.Maximum, vec.Manhattan}

// randGrid builds a random grid over dim dimensions; roughly one in
// three grids gets at least one degenerate (zero-extent) dimension.
func randGrid(rng *rand.Rand, dim, bits int) quantize.Grid {
	lo := make(vec.Point, dim)
	hi := make(vec.Point, dim)
	for i := 0; i < dim; i++ {
		a := rng.Float32()*20 - 10
		b := a + rng.Float32()*5
		if rng.Intn(6) == 0 {
			b = a // degenerate dimension
		}
		lo[i], hi[i] = a, b
	}
	return quantize.NewGrid(vec.MBR{Lo: lo, Hi: hi}, bits)
}

func randPointIn(rng *rand.Rand, m vec.MBR) vec.Point {
	p := make(vec.Point, m.Dim())
	for i := range p {
		// Mostly inside the MBR, sometimes outside (Encode clamps).
		p[i] = m.Lo[i] + float32(m.Side(i))*(rng.Float32()*1.2-0.1)
	}
	return p
}

// checkEquivalence asserts that the kernel bounds for one (grid, query,
// point) triple are bit-identical to the naive Grid math, for all
// metrics and both early-abandon outcomes.
func checkEquivalence(t *testing.T, rng *rand.Rand, g quantize.Grid, count int) {
	t.Helper()
	dim := g.Dim()
	q := randPointIn(rng, g.MBR)
	p := randPointIn(rng, g.MBR)
	cells := g.Encode(p, nil)
	var a Arena
	for _, met := range metrics {
		wantLB := g.MinDist(q, cells, met)
		wantUB := g.MaxDist(q, cells, met)
		tb := a.Tables(g, q, met, count)
		if got := tb.MinDist(cells); got != wantLB {
			t.Fatalf("MinDist mismatch (bits=%d dim=%d met=%v useTab=%v): got %v want %v",
				g.Bits, dim, met, tb.useTab, got, wantLB)
		}
		if got := tb.MaxDist(cells); got != wantUB {
			t.Fatalf("MaxDist mismatch (bits=%d dim=%d met=%v useTab=%v): got %v want %v",
				g.Bits, dim, met, tb.useTab, got, wantUB)
		}
		lb, ub := tb.Bounds(cells)
		if lb != wantLB || ub != wantUB {
			t.Fatalf("Bounds mismatch (bits=%d met=%v): got (%v,%v) want (%v,%v)",
				g.Bits, met, lb, ub, wantLB, wantUB)
		}

		// Early-abandon must either report exact values or prove that
		// both bounds clear their thresholds.
		prune := wantLB * (0.5 + rng.Float64())
		ubCap := wantUB * (0.5 + rng.Float64())
		lb2, ub2, pruned := tb.BoundsPruned(cells, SqThreshold(met, prune), SqThreshold(met, ubCap))
		if pruned {
			if wantLB < prune || wantUB < ubCap {
				t.Fatalf("BoundsPruned wrongly pruned (bits=%d met=%v): lb %v < %v or ub %v < %v",
					g.Bits, met, wantLB, prune, wantUB, ubCap)
			}
		} else if lb2 != wantLB || ub2 != wantUB {
			t.Fatalf("BoundsPruned inexact (bits=%d met=%v): got (%v,%v) want (%v,%v)",
				g.Bits, met, lb2, ub2, wantLB, wantUB)
		}
		lb3, pruned3 := tb.MinDistPruned(cells, SqThreshold(met, prune))
		if pruned3 {
			if wantLB < prune {
				t.Fatalf("MinDistPruned wrongly pruned (met=%v): %v < %v", met, wantLB, prune)
			}
		} else if lb3 != wantLB {
			t.Fatalf("MinDistPruned inexact (met=%v): got %v want %v", met, lb3, wantLB)
		}
	}

	// Window table vs the naive CellBox intersection.
	w := vec.MBR{Lo: randPointIn(rng, g.MBR), Hi: randPointIn(rng, g.MBR)}
	for i := 0; i < dim; i++ {
		if w.Lo[i] > w.Hi[i] {
			w.Lo[i], w.Hi[i] = w.Hi[i], w.Lo[i]
		}
	}
	wt := a.Window(g, w, count)
	want := w.Intersects(g.CellBox(cells))
	if got := wt.Hits(cells); got != want {
		t.Fatalf("Window mismatch (bits=%d dim=%d useTab=%v): got %v want %v",
			g.Bits, dim, wt.useTab, got, want)
	}
}

// TestTablesMatchGrid sweeps every bit width, both kernel paths (tables
// and precomputed edges), all metrics, and degenerate MBR dimensions,
// asserting exact float64 equality with Grid.MinDist/MaxDist.
func TestTablesMatchGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range quantize.Levels {
		for _, count := range []int{-1, 0} { // -1 forces tables (g ≤ 8), 0 the edge path where the cutoff allows
			for iter := 0; iter < 200; iter++ {
				dim := 1 + rng.Intn(24)
				checkEquivalence(t, rng, randGrid(rng, dim, bits), count)
			}
		}
	}
}

// TestTablesDegenerateGrid pins the all-degenerate corner: every
// dimension zero-extent, query on and off the point.
func TestTablesDegenerateGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		dim := 1 + rng.Intn(8)
		lo := make(vec.Point, dim)
		for i := range lo {
			lo[i] = rng.Float32()
		}
		m := vec.MBR{Lo: lo, Hi: lo.Clone()}
		for _, bits := range quantize.Levels {
			checkEquivalence(t, rng, quantize.NewGrid(m, bits), -1)
		}
	}
}

// FuzzTablesEquivalence drives the same equivalence property from fuzzed
// inputs: any (seed, bits index, dim) combination must keep the kernel
// bit-identical to the naive Grid math.
func FuzzTablesEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4))
	f.Add(int64(7), uint8(3), uint8(16))
	f.Add(int64(42), uint8(5), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, bitsIdx, dim uint8) {
		rng := rand.New(rand.NewSource(seed))
		bits := quantize.Levels[int(bitsIdx)%len(quantize.Levels)]
		d := 1 + int(dim)%32
		count := -1
		if seed%2 == 0 {
			count = 0
		}
		checkEquivalence(t, rng, randGrid(rng, d, bits), count)
	})
}

func TestSqThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 10000; iter++ {
		thresh := rng.Float64() * math.Pow(10, float64(rng.Intn(12)-6))
		T := SqThreshold(vec.Euclidean, thresh)
		if math.Sqrt(T) < thresh {
			t.Fatalf("SqThreshold(%v) = %v: sqrt %v < thresh", thresh, T, math.Sqrt(T))
		}
		// One ulp below T must not satisfy an acc >= T test; no exactness
		// requirement there (the implication is one-directional).
	}
	if !math.IsInf(SqThreshold(vec.Euclidean, math.Inf(1)), 1) {
		t.Fatal("SqThreshold(+Inf) must stay +Inf")
	}
	if got := SqThreshold(vec.Manhattan, 3.5); got != 3.5 {
		t.Fatalf("non-Euclidean threshold must pass through, got %v", got)
	}
}
