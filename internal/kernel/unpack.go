package kernel

import "encoding/binary"

// Unpack decodes n codes of the given bit width from the LSB-first bit
// stream src (the quantize.BitWriter format) into dst, growing dst if
// needed, and returns the filled prefix. It produces exactly the codes
// quantize.BitReader would read, but decodes whole pages at once with
// width-specialized unrolled loops instead of one bit-field at a time.
func Unpack(dst []uint32, src []byte, n, bits int) []uint32 {
	return UnpackOff(dst, src, 0, n, bits)
}

// UnpackOff decodes n codes starting at code index start of the stream.
// The specialized fast paths require the start bit offset (start·bits)
// to be byte-aligned — any start that is a multiple of 8 codes is
// aligned for every width — otherwise the word-wise generic decoder
// handles the stream at full correctness.
func UnpackOff(dst []uint32, src []byte, start, n, bits int) []uint32 {
	if cap(dst) < n {
		dst = make([]uint32, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	off := start * bits
	if off&7 != 0 {
		unpackGeneric(dst, src, start, n, bits)
		return dst
	}
	b := src[off>>3:]
	switch bits {
	case 1:
		unpack1(dst, b, n)
	case 2:
		unpack2(dst, b, n)
	case 4:
		unpack4(dst, b, n)
	case 8:
		for i := 0; i < n; i++ {
			dst[i] = uint32(b[i])
		}
	case 16:
		for i := 0; i < n; i++ {
			dst[i] = uint32(b[2*i]) | uint32(b[2*i+1])<<8
		}
	case 32:
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
	default:
		unpackGeneric(dst, src, start, n, bits)
	}
	return dst
}

func unpack1(dst []uint32, b []byte, n int) {
	i := 0
	for ; i+8 <= n; i += 8 {
		v := b[i>>3]
		dst[i+0] = uint32(v) & 1
		dst[i+1] = uint32(v>>1) & 1
		dst[i+2] = uint32(v>>2) & 1
		dst[i+3] = uint32(v>>3) & 1
		dst[i+4] = uint32(v>>4) & 1
		dst[i+5] = uint32(v>>5) & 1
		dst[i+6] = uint32(v>>6) & 1
		dst[i+7] = uint32(v >> 7)
	}
	for ; i < n; i++ {
		dst[i] = uint32(b[i>>3]>>(uint(i)&7)) & 1
	}
}

func unpack2(dst []uint32, b []byte, n int) {
	i := 0
	for ; i+4 <= n; i += 4 {
		v := b[i>>2]
		dst[i+0] = uint32(v) & 3
		dst[i+1] = uint32(v>>2) & 3
		dst[i+2] = uint32(v>>4) & 3
		dst[i+3] = uint32(v >> 6)
	}
	for ; i < n; i++ {
		dst[i] = uint32(b[i>>2]>>(2*(uint(i)&3))) & 3
	}
}

func unpack4(dst []uint32, b []byte, n int) {
	i := 0
	for ; i+2 <= n; i += 2 {
		v := b[i>>1]
		dst[i+0] = uint32(v) & 15
		dst[i+1] = uint32(v >> 4)
	}
	if i < n {
		dst[i] = uint32(b[i>>1]) & 15
	}
}

// unpackGeneric decodes codes of any width ≤ 32 at any bit offset by
// loading a 64-bit little-endian window per code (width + intra-byte
// shift ≤ 39 < 64 always fits). Near the end of the stream the window is
// assembled from the remaining bytes.
func unpackGeneric(dst []uint32, src []byte, start, n, bits int) {
	mask := uint32(1)<<uint(bits) - 1 // bits = 32 wraps to all-ones
	bitPos := start * bits
	for i := 0; i < n; i++ {
		byteIdx := bitPos >> 3
		shift := uint(bitPos & 7)
		var w uint64
		if byteIdx+8 <= len(src) {
			w = binary.LittleEndian.Uint64(src[byteIdx:])
		} else {
			for j := 0; j < 8 && byteIdx+j < len(src); j++ {
				w |= uint64(src[byteIdx+j]) << uint(8*j)
			}
		}
		dst[i] = uint32(w>>shift) & mask
		bitPos += bits
	}
}
