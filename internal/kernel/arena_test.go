package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/vec"
)

func randPts(rng *rand.Rand, n, dim int) ([]vec.Point, []uint32) {
	pts := make([]vec.Point, n)
	ids := make([]uint32, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = rng.Float32()*10 - 5
		}
		pts[i] = p
		ids[i] = rng.Uint32()
	}
	return pts, ids
}

// TestDecodeExactMatchesUnmarshal checks the arena decoder against
// page.UnmarshalExactEntry on the level-3 exact-entry layout.
func TestDecodeExactMatchesUnmarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a PointArena
	for _, dim := range []int{1, 3, 16} {
		pts, ids := randPts(rng, 37, dim)
		raw := page.MarshalExact(pts, ids)
		a.Reset()
		gotPts, gotIDs := a.DecodeExact(raw, len(pts), dim)
		es := page.ExactEntrySize(dim)
		for i := range pts {
			wantP, wantID := page.UnmarshalExactEntry(raw[i*es:], dim)
			if !gotPts[i].Equal(wantP) || gotIDs[i] != wantID {
				t.Fatalf("dim=%d entry %d: got (%v,%d) want (%v,%d)", dim, i, gotPts[i], gotIDs[i], wantP, wantID)
			}
		}
	}
}

// TestDecodeQPageMatchesExactPoints checks the arena decoder against
// page.QPage.ExactPoints on 32-bit (exact) quantized pages.
func TestDecodeQPageMatchesExactPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var a PointArena
	for _, dim := range []int{2, 8} {
		pts, ids := randPts(rng, 41, dim)
		g := quantize.NewGrid(vec.MBROf(pts), quantize.ExactBits)
		buf := page.MarshalQPage(g, pts, ids, 1<<14)
		qp := page.UnmarshalQPage(buf)
		wantPts, wantIDs := qp.ExactPoints(dim)
		a.Reset()
		gotPts, gotIDs := a.DecodeQPage(qp.Payload, int(qp.Count), dim)
		if len(gotPts) != len(wantPts) {
			t.Fatalf("dim=%d: count %d want %d", dim, len(gotPts), len(wantPts))
		}
		for i := range wantPts {
			if !gotPts[i].Equal(wantPts[i]) || gotIDs[i] != wantIDs[i] {
				t.Fatalf("dim=%d entry %d: got (%v,%d) want (%v,%d)", dim, i, gotPts[i], gotIDs[i], wantPts[i], wantIDs[i])
			}
		}
	}
}

// TestPointArenaStableAcrossGrowth checks that growing the arena never
// rewrites previously returned regions within one query.
func TestPointArenaStableAcrossGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a PointArena
	dim := 4
	pts, ids := randPts(rng, 8, dim)
	raw := page.MarshalExact(pts, ids)
	first, firstIDs := a.DecodeExact(raw, len(pts), dim)
	snapshot := make([]vec.Point, len(first))
	for i, p := range first {
		snapshot[i] = p.Clone()
	}
	for k := 0; k < 6; k++ { // force several growth doublings
		more, _ := randPts(rng, 64, dim)
		moreIDs := make([]uint32, len(more))
		a.DecodeExact(page.MarshalExact(more, moreIDs), len(more), dim)
	}
	for i := range first {
		if !first[i].Equal(snapshot[i]) || firstIDs[i] != ids[i] {
			t.Fatalf("entry %d rewritten after growth", i)
		}
	}
}
