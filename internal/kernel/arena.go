package kernel

import (
	"encoding/binary"
	"math"

	"repro/internal/quantize"
	"repro/internal/vec"
)

// Arena owns the reusable scratch of one query path: the bulk-decoded
// code buffer plus the distance and window tables. An Arena is not safe
// for concurrent use; sessions own one each (see core's query scratch).
// All buffers grow to the high-water mark and are reused, so a warmed
// arena allocates nothing.
type Arena struct {
	codes  []uint32
	tables Tables
	window WindowTable
}

// Unpack bulk-decodes n codes of the given width from src into the
// arena's code buffer and returns it. The buffer is valid until the next
// Unpack call on this arena.
func (a *Arena) Unpack(src []byte, n, bits int) []uint32 {
	a.codes = Unpack(a.codes, src, n, bits)
	return a.codes
}

// Tables builds (reusing the arena's buffers) the distance tables for
// query q over grid g; count is the expected number of points to bound.
// The returned tables are valid until the next Tables call.
func (a *Arena) Tables(g quantize.Grid, q vec.Point, met vec.Metric, count int) *Tables {
	a.tables.build(g, q, met, count)
	return &a.tables
}

// Window builds (reusing the arena's buffers) the window-intersection
// table for window win over grid g. Valid until the next Window call.
func (a *Arena) Window(g quantize.Grid, win vec.MBR, count int) *WindowTable {
	a.window.build(g, win, count)
	return &a.window
}

// PointArena is a grow-only arena for decoded exact points: coordinates
// live in one flat float32 backing array, point headers and ids in two
// parallel slices. Reset recycles the memory for the next query; slices
// handed out earlier stay readable (growth never rewrites published
// regions) but alias recycled memory after Reset, so results that
// outlive the query must be copied out.
type PointArena struct {
	flat []float32
	pts  []vec.Point
	ids  []uint32
}

// Reset recycles the arena for a new query.
func (a *PointArena) Reset() {
	a.flat = a.flat[:0]
	a.pts = a.pts[:0]
	a.ids = a.ids[:0]
}

// alloc reserves room for count points of dimensionality dim plus their
// ids and returns the fresh (zeroed region) slices.
func (a *PointArena) alloc(count, dim int) (flat []float32, pts []vec.Point, ids []uint32) {
	a.flat = growTail(a.flat, count*dim)
	a.pts = growTailPts(a.pts, count)
	a.ids = growTailIDs(a.ids, count)
	return a.flat[len(a.flat)-count*dim:], a.pts[len(a.pts)-count:], a.ids[len(a.ids)-count:]
}

// DecodeExact decodes count third-level exact entries (d float32 coords
// followed by a uint32 id, per entry — the page.UnmarshalExactEntry
// layout) into the arena and returns the point and id slices.
func (a *PointArena) DecodeExact(raw []byte, count, dim int) ([]vec.Point, []uint32) {
	flat, pts, ids := a.alloc(count, dim)
	le := binary.LittleEndian
	off := 0
	for i := 0; i < count; i++ {
		p := flat[i*dim : (i+1)*dim : (i+1)*dim]
		for j := 0; j < dim; j++ {
			p[j] = math.Float32frombits(le.Uint32(raw[off:]))
			off += 4
		}
		pts[i] = p
		ids[i] = le.Uint32(raw[off:])
		off += 4
	}
	return pts, ids
}

// DecodeQPage decodes the payload of a 32-bit quantized page (count·d
// float32 coords, then count uint32 ids — the page.QPage exact layout)
// into the arena and returns the point and id slices.
func (a *PointArena) DecodeQPage(payload []byte, count, dim int) ([]vec.Point, []uint32) {
	flat, pts, ids := a.alloc(count, dim)
	le := binary.LittleEndian
	off := 0
	for i := 0; i < count; i++ {
		p := flat[i*dim : (i+1)*dim : (i+1)*dim]
		for j := 0; j < dim; j++ {
			p[j] = math.Float32frombits(le.Uint32(payload[off:]))
			off += 4
		}
		pts[i] = p
	}
	for i := 0; i < count; i++ {
		ids[i] = le.Uint32(payload[off:])
		off += 4
	}
	return pts, ids
}

// growTail extends s by n elements, reusing capacity when possible; the
// old backing array is left intact (earlier aliases stay readable).
func growTail(s []float32, n int) []float32 {
	need := len(s) + n
	if cap(s) >= need {
		return s[:need]
	}
	ns := make([]float32, need, 2*need)
	copy(ns, s)
	return ns
}

func growTailPts(s []vec.Point, n int) []vec.Point {
	need := len(s) + n
	if cap(s) >= need {
		return s[:need]
	}
	ns := make([]vec.Point, need, 2*need)
	copy(ns, s)
	return ns
}

func growTailIDs(s []uint32, n int) []uint32 {
	need := len(s) + n
	if cap(s) >= need {
		return s[:need]
	}
	ns := make([]uint32, need, 2*need)
	copy(ns, s)
	return ns
}
