// Package kernel provides the pure-Go compute kernels of the quantized
// filter step: per-query distance lookup tables, word-wise bulk code
// unpackers, and reusable scratch arenas.
//
// The IQ-tree's filter spends almost all of its CPU computing the
// MINDIST/MAXDIST of grid-cell approximations (Grid.MinDist/MaxDist
// re-derive cell bounds with two divisions per dimension per point) and
// unpacking codes one bit-field at a time through quantize.BitReader.
// This package replaces both with the asymmetric-distance-computation
// trick of the composite-quantization literature: for a fixed query and
// page grid, the axis contribution of every one of the 2^g cells along
// every dimension is precomputed once, reducing the per-point bound
// computation to 2·d table lookups and adds, with an exact early-abandon
// against the current prune radius.
//
// Everything here is bit-identical to the naive quantize.Grid math: the
// tables store exactly the float64 values Grid.CellBounds +
// axisDist/axisFar would produce, and the accumulation runs in the same
// dimension order, so every distance bound — and therefore every query
// result and every simulated cost figure — is unchanged. Levels g ≤ 8
// (≤ 256 cells per dimension) get tables; g ∈ {16, 32} fall back to a
// precomputed-edge path that hoists the per-dimension division out of
// the point loop (see DESIGN.md §9 for the break-even analysis).
package kernel

import (
	"math"

	"repro/internal/quantize"
	"repro/internal/vec"
)

// TableMaxBits is the largest quantization level that gets per-cell
// lookup tables; wider codes use the precomputed-edge path (a 2^16-cell
// table would cost far more to build than any page saves).
const TableMaxBits = 8

// tableMinPoints is the page population below which building a
// cells-entry table costs more than the per-point savings recoup.
// Building one table entry costs about as much as bounding one
// point-dimension the edge way, so the table pays off once the page
// holds a reasonable fraction of 2^g points; sparsely filled pages keep
// the edge path (both paths are exact, so this is purely a cost knob).
func tableMinPoints(cells int) int { return cells / 4 }

// Tables holds the per-query, per-grid distance kernel state: either the
// cell lookup tables (g ≤ 8) or the precomputed grid edges (g ∈ {16,32}
// and sparsely populated small-g pages).
type Tables struct {
	met    vec.Metric
	dim    int
	bits   int
	exact  bool // g = 32: codes are raw float32 bit patterns
	useTab bool

	// Table path: tab[(i<<bits|c)*2] is the minimum and
	// tab[(i<<bits|c)*2+1] the maximum axis contribution of cell c along
	// dimension i — squared for the Euclidean metric, raw otherwise —
	// exactly as Grid.MinDist/MaxDist would accumulate them.
	tab []float64

	// Edge path: per-dimension grid origin and cell width (w = 0 for a
	// degenerate dimension, reproducing CellBounds' side ≤ 0 branch),
	// plus the query coordinates widened to float64 once.
	lo, w, q []float64
}

// Metric returns the metric the tables were built for.
func (t *Tables) Metric() vec.Metric { return t.met }

// build populates t for query q over grid g. count is the number of
// points the caller will bound with these tables (a cost hint for the
// table-vs-edge decision; pass a negative count to force tables whenever
// the level allows them). Buffers are reused across builds.
func (t *Tables) build(g quantize.Grid, q vec.Point, met vec.Metric, count int) {
	d := g.Dim()
	t.met, t.dim, t.bits = met, d, g.Bits
	t.exact = g.Exact()
	t.useTab = false
	if !t.exact && g.Bits <= TableMaxBits {
		cells := 1 << uint(g.Bits)
		if count < 0 || count >= tableMinPoints(cells) {
			t.buildTab(g, q, met, cells)
			return
		}
	}
	t.buildEdges(g, q)
}

// buildTab fills the per-cell contribution tables. The cell-bound
// arithmetic replicates Grid.CellBounds exactly, with the division
// hoisted out of the cell loop.
func (t *Tables) buildTab(g quantize.Grid, q vec.Point, met vec.Metric, cells int) {
	t.useTab = true
	d := t.dim
	need := d * cells * 2
	if cap(t.tab) < need {
		t.tab = make([]float64, need)
	}
	t.tab = t.tab[:need]
	cellsF := float64(int64(1) << uint(g.Bits))
	eucl := met == vec.Euclidean
	for i := 0; i < d; i++ {
		qi := float64(q[i])
		l := float64(g.MBR.Lo[i])
		side := float64(g.MBR.Hi[i]) - l
		w := 0.0
		if side > 0 {
			w = side / cellsF
		}
		row := t.tab[i*cells*2 : (i+1)*cells*2]
		for c := 0; c < cells; c++ {
			lo := l + float64(c)*w
			hi := lo + w
			dl := axisDist(qi, lo, hi)
			du := axisFar(qi, lo, hi)
			if eucl {
				dl, du = dl*dl, du*du
			}
			row[2*c] = dl
			row[2*c+1] = du
		}
	}
}

// buildEdges precomputes the per-dimension grid origin and cell width so
// the per-point bound needs no division.
func (t *Tables) buildEdges(g quantize.Grid, q vec.Point) {
	d := t.dim
	t.lo = growF64(t.lo, d)
	t.w = growF64(t.w, d)
	t.q = growF64(t.q, d)
	for i := 0; i < d; i++ {
		t.q[i] = float64(q[i])
	}
	if t.exact {
		return
	}
	cellsF := float64(int64(1) << uint(g.Bits))
	for i := 0; i < d; i++ {
		l := float64(g.MBR.Lo[i])
		side := float64(g.MBR.Hi[i]) - l
		t.lo[i] = l
		if side > 0 {
			t.w[i] = side / cellsF
		} else {
			t.w[i] = 0
		}
	}
}

// cellSpan returns the coordinate range of cell c along dimension i on
// the edge path, replicating Grid.CellBounds bit for bit.
func (t *Tables) cellSpan(i int, c uint32) (lo, hi float64) {
	if t.exact {
		v := float64(math.Float32frombits(c))
		return v, v
	}
	lo = t.lo[i] + float64(c)*t.w[i]
	hi = lo + t.w[i]
	return lo, hi
}

// MinDist returns the minimum distance from the query to the box
// approximation with the given cell codes — the same float64
// Grid.MinDist would return.
func (t *Tables) MinDist(codes []uint32) float64 {
	lb, _ := t.accum(codes, false)
	return t.finalize(lb)
}

// MaxDist returns the maximum distance from the query to the box
// approximation — the same float64 Grid.MaxDist would return.
func (t *Tables) MaxDist(codes []uint32) float64 {
	_, ub := t.accum(codes, true)
	return t.finalize(ub)
}

// Bounds returns both distance bounds in one pass over the codes.
func (t *Tables) Bounds(codes []uint32) (lb, ub float64) {
	sl, su := t.accumBoth(codes, math.Inf(1), math.Inf(1))
	return t.finalize(sl), t.finalize(su)
}

// BoundsPruned computes both bounds with exact early-abandon: lbT and
// ubT are accumulator-domain thresholds (see SqThreshold). When pruned
// is true, the final lower bound is guaranteed ≥ the distance lbT was
// derived from AND the final upper bound ≥ the one ubT was derived
// from, so the caller may skip the point entirely; lb/ub are then
// meaningless. When pruned is false, lb and ub are the exact bounds.
func (t *Tables) BoundsPruned(codes []uint32, lbT, ubT float64) (lb, ub float64, pruned bool) {
	sl, su := t.accumBoth(codes, lbT, ubT)
	if sl >= lbT && su >= ubT {
		return 0, 0, true
	}
	return t.finalize(sl), t.finalize(su), false
}

// MinDistPruned computes the lower bound with exact early-abandon
// against the accumulator-domain threshold lbT: pruned means the final
// lower bound is certainly ≥ the distance lbT was derived from.
func (t *Tables) MinDistPruned(codes []uint32, lbT float64) (lb float64, pruned bool) {
	var sl float64
	switch {
	case t.useTab:
		tab, bits := t.tab, uint(t.bits)
		if t.met == vec.Maximum {
			for i, c := range codes {
				if v := tab[(i<<bits|int(c))*2]; v > sl {
					sl = v
				}
				if sl >= lbT {
					return 0, true
				}
			}
		} else {
			for i, c := range codes {
				sl += tab[(i<<bits|int(c))*2]
				if sl >= lbT {
					return 0, true
				}
			}
		}
	case t.met == vec.Maximum:
		for i, c := range codes {
			lo, hi := t.cellSpan(i, c)
			if v := axisDist(t.q[i], lo, hi); v > sl {
				sl = v
			}
			if sl >= lbT {
				return 0, true
			}
		}
	case t.met == vec.Euclidean:
		for i, c := range codes {
			lo, hi := t.cellSpan(i, c)
			v := axisDist(t.q[i], lo, hi)
			sl += v * v
			if sl >= lbT {
				return 0, true
			}
		}
	default:
		for i, c := range codes {
			lo, hi := t.cellSpan(i, c)
			sl += axisDist(t.q[i], lo, hi)
			if sl >= lbT {
				return 0, true
			}
		}
	}
	return t.finalize(sl), false
}

// accum walks the codes accumulating one side (upper when up is true).
func (t *Tables) accum(codes []uint32, up bool) (sl, su float64) {
	off := 0
	if up {
		off = 1
	}
	var s float64
	if t.useTab {
		tab, bits := t.tab, uint(t.bits)
		if t.met == vec.Maximum {
			for i, c := range codes {
				if v := tab[(i<<bits|int(c))*2+off]; v > s {
					s = v
				}
			}
		} else {
			for i, c := range codes {
				s += tab[(i<<bits|int(c))*2+off]
			}
		}
	} else {
		eucl := t.met == vec.Euclidean
		for i, c := range codes {
			lo, hi := t.cellSpan(i, c)
			var v float64
			if up {
				v = axisFar(t.q[i], lo, hi)
			} else {
				v = axisDist(t.q[i], lo, hi)
			}
			if eucl {
				v = v * v
			}
			if t.met == vec.Maximum {
				if v > s {
					s = v
				}
			} else {
				s += v
			}
		}
	}
	if up {
		return 0, s
	}
	return s, 0
}

// accumBoth walks the codes once accumulating both sides, abandoning as
// soon as both partial accumulators have crossed their thresholds (the
// accumulators are monotone in the dimension index, so the final values
// would cross them too).
func (t *Tables) accumBoth(codes []uint32, lbT, ubT float64) (sl, su float64) {
	if t.useTab {
		tab, bits := t.tab, uint(t.bits)
		if t.met == vec.Maximum {
			for i, c := range codes {
				j := (i<<bits | int(c)) * 2
				if v := tab[j]; v > sl {
					sl = v
				}
				if v := tab[j+1]; v > su {
					su = v
				}
				if sl >= lbT && su >= ubT {
					return sl, su
				}
			}
		} else {
			for i, c := range codes {
				j := (i<<bits | int(c)) * 2
				sl += tab[j]
				su += tab[j+1]
				if sl >= lbT && su >= ubT {
					return sl, su
				}
			}
		}
		return sl, su
	}
	eucl := t.met == vec.Euclidean
	maxm := t.met == vec.Maximum
	for i, c := range codes {
		lo, hi := t.cellSpan(i, c)
		dl := axisDist(t.q[i], lo, hi)
		du := axisFar(t.q[i], lo, hi)
		if eucl {
			dl, du = dl*dl, du*du
		}
		if maxm {
			if dl > sl {
				sl = dl
			}
			if du > su {
				su = du
			}
		} else {
			sl += dl
			su += du
		}
		if sl >= lbT && su >= ubT {
			return sl, su
		}
	}
	return sl, su
}

// finalize maps an accumulator value to the metric's distance domain.
func (t *Tables) finalize(s float64) float64 {
	if t.met == vec.Euclidean {
		return math.Sqrt(s)
	}
	return s
}

// SqThreshold converts a distance threshold into the kernel's
// accumulator domain: the returned T guarantees that any accumulator
// value acc ≥ T finalizes to a distance ≥ thresh (for the Euclidean
// metric the accumulator is the squared sum, and T is nudged up until
// the correctly rounded sqrt of T clears thresh, so the implication is
// exact in float64). Abandon decisions made against T are therefore
// identical to decisions made against the fully finalized distance.
func SqThreshold(met vec.Metric, thresh float64) float64 {
	if met != vec.Euclidean {
		return thresh
	}
	if math.IsInf(thresh, 1) {
		return thresh
	}
	s := thresh * thresh
	for !math.IsInf(s, 1) && math.Sqrt(s) < thresh {
		s = math.Nextafter(s, math.Inf(1))
	}
	return s
}

// WindowTable is the window-query analogue of Tables: per dimension and
// cell, whether the cell's coordinate range intersects the query window
// — exactly the per-dimension test vec.MBR.Intersects applies to
// Grid.CellBox output (the cross-dimension AND is metric-free).
type WindowTable struct {
	dim    int
	bits   int
	exact  bool
	useTab bool
	ok     []bool // dim << bits entries
	lo, w  []float64
	wlo    []float32
	whi    []float32
}

// build populates wt for window win over grid g; count is the same cost
// hint Tables.build takes.
func (wt *WindowTable) build(g quantize.Grid, win vec.MBR, count int) {
	d := g.Dim()
	wt.dim, wt.bits = d, g.Bits
	wt.exact = g.Exact()
	wt.useTab = false
	wt.wlo = growF32(wt.wlo, d)
	wt.whi = growF32(wt.whi, d)
	for i := 0; i < d; i++ {
		wt.wlo[i], wt.whi[i] = win.Lo[i], win.Hi[i]
	}
	if !wt.exact && g.Bits <= TableMaxBits {
		cells := 1 << uint(g.Bits)
		if count < 0 || count >= tableMinPoints(cells) {
			wt.buildTab(g, win, cells)
			return
		}
	}
	wt.buildEdges(g)
}

func (wt *WindowTable) buildTab(g quantize.Grid, win vec.MBR, cells int) {
	wt.useTab = true
	d := wt.dim
	need := d * cells
	if cap(wt.ok) < need {
		wt.ok = make([]bool, need)
	}
	wt.ok = wt.ok[:need]
	cellsF := float64(int64(1) << uint(g.Bits))
	for i := 0; i < d; i++ {
		l := float64(g.MBR.Lo[i])
		side := float64(g.MBR.Hi[i]) - l
		w := 0.0
		if side > 0 {
			w = side / cellsF
		}
		row := wt.ok[i*cells : (i+1)*cells]
		for c := 0; c < cells; c++ {
			lo := l + float64(c)*w
			hi := lo + w
			// The naive path casts CellBox corners to float32 before
			// comparing; replicate that exactly.
			row[c] = !(wt.whi[i] < float32(lo) || float32(hi) < wt.wlo[i])
		}
	}
}

func (wt *WindowTable) buildEdges(g quantize.Grid) {
	d := wt.dim
	wt.lo = growF64(wt.lo, d)
	wt.w = growF64(wt.w, d)
	if wt.exact {
		return
	}
	cellsF := float64(int64(1) << uint(g.Bits))
	for i := 0; i < d; i++ {
		l := float64(g.MBR.Lo[i])
		side := float64(g.MBR.Hi[i]) - l
		wt.lo[i] = l
		if side > 0 {
			wt.w[i] = side / cellsF
		} else {
			wt.w[i] = 0
		}
	}
}

// Hits reports whether the cell box of codes intersects the window —
// identical to win.Intersects(g.CellBox(codes)).
func (wt *WindowTable) Hits(codes []uint32) bool {
	if wt.useTab {
		ok, bits := wt.ok, uint(wt.bits)
		for i, c := range codes {
			if !ok[i<<bits|int(c)] {
				return false
			}
		}
		return true
	}
	for i, c := range codes {
		var lo, hi float64
		if wt.exact {
			v := float64(math.Float32frombits(c))
			lo, hi = v, v
		} else {
			lo = wt.lo[i] + float64(c)*wt.w[i]
			hi = lo + wt.w[i]
		}
		if wt.whi[i] < float32(lo) || float32(hi) < wt.wlo[i] {
			return false
		}
	}
	return true
}

// axisDist is the one-dimensional distance from v to [lo, hi] (0 inside)
// — identical to the quantize package's helper.
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// axisFar is the one-dimensional farthest distance from v to [lo, hi] —
// identical to the quantize package's helper.
func axisFar(v, lo, hi float64) float64 {
	return math.Max(math.Abs(v-lo), math.Abs(v-hi))
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growF32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}
