package kernel

// Multi-query page filtering: under scan sharing one fetched page is
// decoded once and then filtered for every attached query while its
// codes are hot in cache. The batch entry points below run a whole
// page's worth of per-point decisions in one call per (page, query)
// pair, against thresholds captured when the page scan starts.
//
// Decision equivalence: the thresholds a caller passes here are the ones
// in force at page start — at most looser than the live thresholds the
// scalar loop would refresh mid-page. BoundsPruned's contract makes that
// safe and exact: a point pruned against a looser threshold is pruned
// against any tighter one, and a point the scalar loop would have pruned
// but the batch computes exactly yields provable no-ops downstream
// (its lower bound still fails the live candidate test and its upper
// bound cannot move a full k-bound heap). TestBoundsBatchMatchesScalar
// pins the resulting state equivalence.

// PageBounds holds the per-point output of one batch filter call over a
// page: for point i, Pruned[i] means both bounds provably cleared their
// thresholds (Lb[i]/Ub[i] are then meaningless); otherwise Lb[i] and
// Ub[i] are the exact distance bounds. Buffers are reused across calls
// at high-water capacity.
type PageBounds struct {
	Lb, Ub []float64
	Pruned []bool
}

func (pb *PageBounds) grow(n int) {
	if cap(pb.Lb) < n {
		pb.Lb = make([]float64, n)
		pb.Ub = make([]float64, n)
		pb.Pruned = make([]bool, n)
	}
	pb.Lb = pb.Lb[:n]
	pb.Ub = pb.Ub[:n]
	pb.Pruned = pb.Pruned[:n]
}

// BoundsBatch runs BoundsPruned over all count points of a page's
// bulk-decoded codes (dim codes per point) against fixed accumulator-
// domain thresholds, filling pb. Every per-point decision is identical
// to calling BoundsPruned with the same thresholds.
func (t *Tables) BoundsBatch(codes []uint32, dim, count int, lbT, ubT float64, pb *PageBounds) {
	pb.grow(count)
	for i := 0; i < count; i++ {
		lb, ub, pruned := t.BoundsPruned(codes[i*dim:(i+1)*dim], lbT, ubT)
		pb.Pruned[i] = pruned
		pb.Lb[i], pb.Ub[i] = lb, ub
	}
}

// MinDistBatch runs MinDistPruned over all count points against the
// fixed threshold lbT, filling pb.Lb and pb.Pruned (pb.Ub is zeroed for
// the pruned entries' slots and otherwise untouched semantics-wise).
func (t *Tables) MinDistBatch(codes []uint32, dim, count int, lbT float64, pb *PageBounds) {
	pb.grow(count)
	for i := 0; i < count; i++ {
		lb, pruned := t.MinDistPruned(codes[i*dim:(i+1)*dim], lbT)
		pb.Pruned[i] = pruned
		pb.Lb[i] = lb
	}
}

// HitsBatch evaluates the window predicate for all count points, filling
// and returning hits (reused when capacity allows). hits[i] matches
// Hits on point i's codes exactly.
func (wt *WindowTable) HitsBatch(codes []uint32, dim, count int, hits []bool) []bool {
	if cap(hits) < count {
		hits = make([]bool, count)
	}
	hits = hits[:count]
	for i := 0; i < count; i++ {
		hits[i] = wt.Hits(codes[i*dim : (i+1)*dim])
	}
	return hits
}
