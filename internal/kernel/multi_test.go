package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// TestBoundsBatchMatchesScalar pins the batch entry points to the scalar
// ones bit for bit: for every point of a synthetic page, BoundsBatch,
// MinDistBatch and HitsBatch must reproduce exactly what per-point
// BoundsPruned, MinDistPruned and Hits return with the same thresholds.
func TestBoundsBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, bits := range []int{1, 2, 4, 8, 16} {
		for _, dim := range []int{2, 5, 16} {
			for _, met := range metrics {
				g := randGrid(rng, dim, bits)
				count := 1 + rng.Intn(64)
				codes := make([]uint32, count*dim)
				for i := 0; i < count; i++ {
					g.Encode(randPointIn(rng, g.MBR), codes[i*dim:i*dim])
				}
				q := randPointIn(rng, g.MBR)

				var a Arena
				tb := a.Tables(g, q, met, count)
				// Thresholds around the typical bound magnitudes so all
				// three outcomes (pruned, candidate, in-between) occur.
				ref := g.MBR.MinDist(q, met) + float64(g.MBR.Side(0))
				lbT := SqThreshold(met, ref*(0.2+rng.Float64()))
				ubT := SqThreshold(met, ref*(0.2+rng.Float64()))

				var pb PageBounds
				tb.BoundsBatch(codes, dim, count, lbT, ubT, &pb)
				for i := 0; i < count; i++ {
					cs := codes[i*dim : (i+1)*dim]
					lb, ub, pruned := tb.BoundsPruned(cs, lbT, ubT)
					if pb.Pruned[i] != pruned {
						t.Fatalf("bits=%d dim=%d met=%v point %d: batch pruned=%v scalar=%v",
							bits, dim, met, i, pb.Pruned[i], pruned)
					}
					if !pruned && (pb.Lb[i] != lb || pb.Ub[i] != ub) {
						t.Fatalf("bits=%d dim=%d met=%v point %d: batch (%v,%v) scalar (%v,%v)",
							bits, dim, met, i, pb.Lb[i], pb.Ub[i], lb, ub)
					}
				}

				var pm PageBounds
				tb.MinDistBatch(codes, dim, count, lbT, &pm)
				for i := 0; i < count; i++ {
					lb, pruned := tb.MinDistPruned(codes[i*dim:(i+1)*dim], lbT)
					if pm.Pruned[i] != pruned || (!pruned && pm.Lb[i] != lb) {
						t.Fatalf("bits=%d dim=%d met=%v point %d: MinDistBatch (%v,%v) scalar (%v,%v)",
							bits, dim, met, i, pm.Lb[i], pm.Pruned[i], lb, pruned)
					}
				}

				w := vec.MBR{Lo: randPointIn(rng, g.MBR), Hi: randPointIn(rng, g.MBR)}
				for d := 0; d < dim; d++ {
					if w.Lo[d] > w.Hi[d] {
						w.Lo[d], w.Hi[d] = w.Hi[d], w.Lo[d]
					}
				}
				wt := a.Window(g, w, count)
				hits := wt.HitsBatch(codes, dim, count, nil)
				for i := 0; i < count; i++ {
					if want := wt.Hits(codes[i*dim : (i+1)*dim]); hits[i] != want {
						t.Fatalf("bits=%d dim=%d point %d: HitsBatch %v, Hits %v", bits, dim, i, hits[i], want)
					}
				}
			}
		}
	}
}

// TestPageBoundsReuse checks the high-water buffer reuse: shrinking and
// growing the page size between calls never leaks stale results.
func TestPageBoundsReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randGrid(rng, 4, 8)
	var a Arena
	q := randPointIn(rng, g.MBR)
	tb := a.Tables(g, q, vec.Euclidean, 32)
	var pb PageBounds
	for _, count := range []int{32, 5, 17, 1, 32} {
		codes := make([]uint32, count*4)
		for i := 0; i < count; i++ {
			g.Encode(randPointIn(rng, g.MBR), codes[i*4:i*4])
		}
		tb.BoundsBatch(codes, 4, count, SqThreshold(vec.Euclidean, 1), SqThreshold(vec.Euclidean, 1), &pb)
		if len(pb.Lb) != count || len(pb.Ub) != count || len(pb.Pruned) != count {
			t.Fatalf("count=%d: lengths %d/%d/%d", count, len(pb.Lb), len(pb.Ub), len(pb.Pruned))
		}
		for i := 0; i < count; i++ {
			lb, ub, pruned := tb.BoundsPruned(codes[i*4:(i+1)*4], SqThreshold(vec.Euclidean, 1), SqThreshold(vec.Euclidean, 1))
			if pb.Pruned[i] != pruned || (!pruned && (pb.Lb[i] != lb || pb.Ub[i] != ub)) {
				t.Fatalf("count=%d point %d: stale buffer contents", count, i)
			}
		}
	}
}
