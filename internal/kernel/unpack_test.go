package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/quantize"
)

// TestUnpackMatchesBitReader checks every width 1..32 against the
// generic quantize.BitReader, including offset decodes at byte-aligned
// (multiple-of-8 codes) and arbitrary starts.
func TestUnpackMatchesBitReader(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for bits := 1; bits <= 32; bits++ {
		for _, n := range []int{0, 1, 7, 8, 63, 64, 300} {
			mask := uint32(1)<<uint(bits) - 1 // bits=32 wraps to all-ones
			codes := make([]uint32, n)
			bw := quantize.NewBitWriter(n * bits)
			for i := range codes {
				codes[i] = rng.Uint32() & mask
				bw.Write(codes[i], bits)
			}
			src := bw.Bytes()

			got := Unpack(nil, src, n, bits)
			for i, c := range codes {
				if got[i] != c {
					t.Fatalf("Unpack bits=%d n=%d: code %d = %#x, want %#x", bits, n, i, got[i], c)
				}
			}

			// Offset decodes: a multiple-of-8 start (byte-aligned for any
			// width) and an arbitrary start exercising the generic path.
			for _, start := range []int{8, 3} {
				if start >= n {
					continue
				}
				got := UnpackOff(nil, src, start, n-start, bits)
				for i, c := range codes[start:] {
					if got[i] != c {
						t.Fatalf("UnpackOff bits=%d start=%d: code %d = %#x, want %#x", bits, start, i, got[i], c)
					}
				}
			}
		}
	}
}

// TestUnpackReuse checks that an oversized destination buffer is reused
// without reallocating.
func TestUnpackReuse(t *testing.T) {
	bw := quantize.NewBitWriter(16 * 8)
	for i := 0; i < 16; i++ {
		bw.Write(uint32(i), 8)
	}
	buf := make([]uint32, 0, 64)
	out := Unpack(buf, bw.Bytes(), 16, 8)
	if &out[0] != &buf[:1][0] {
		t.Fatal("Unpack reallocated despite sufficient capacity")
	}
	if len(out) != 16 || out[5] != 5 {
		t.Fatalf("bad decode: len=%d out[5]=%d", len(out), out[5])
	}
}
