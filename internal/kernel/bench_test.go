package kernel

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/quantize"
	"repro/internal/vec"
)

// benchPage builds one synthetic quantized page: a grid, its packed
// payload, and the query, mirroring a level-2 IQ-tree page.
func benchPage(bits, n, dim int) (quantize.Grid, []byte, vec.Point, [][]uint32) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := randPts(rng, n, dim)
	g := quantize.NewGrid(vec.MBROf(pts), bits)
	payload := quantize.Pack(g, pts)
	q := pts[0].Clone()
	cells := make([][]uint32, n)
	for i, p := range pts {
		cells[i] = g.Encode(p, nil)
	}
	return g, payload, q, cells
}

// BenchmarkQuantizedFilter compares the naive filter inner loop
// (BitReader decode + Grid.MinDist/MaxDist per point — the pre-kernel
// code path, kept here as the reference for the ci.sh speedup gate)
// against the kernel path (bulk unpack + table lookups).
func BenchmarkQuantizedFilter(b *testing.B) {
	const n, dim, bits = 256, 16, 8
	g, payload, q, _ := benchPage(bits, n, dim)
	met := vec.Euclidean

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		cells := make([]uint32, dim)
		var sink float64
		for i := 0; i < b.N; i++ {
			r := quantize.NewBitReader(payload)
			for p := 0; p < n; p++ {
				for j := 0; j < dim; j++ {
					cells[j] = r.Read(bits)
				}
				sink += g.MinDist(q, cells, met)
				sink += g.MaxDist(q, cells, met)
			}
		}
		_ = sink
	})

	b.Run("kernel", func(b *testing.B) {
		b.ReportAllocs()
		var a Arena
		var sink float64
		for i := 0; i < b.N; i++ {
			codes := a.Unpack(payload, n*dim, bits)
			tb := a.Tables(g, q, met, n)
			for p := 0; p < n; p++ {
				lb, ub := tb.Bounds(codes[p*dim : (p+1)*dim])
				sink += lb + ub
			}
		}
		_ = sink
	})
}

// BenchmarkKernelMinDist measures the per-point lower-bound cost alone,
// naive vs table lookup.
func BenchmarkKernelMinDist(b *testing.B) {
	const n, dim, bits = 256, 16, 8
	g, _, q, cells := benchPage(bits, n, dim)
	met := vec.Euclidean

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += g.MinDist(q, cells[i%n], met)
		}
		_ = sink
	})

	b.Run("kernel", func(b *testing.B) {
		b.ReportAllocs()
		var a Arena
		tb := a.Tables(g, q, met, n)
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += tb.MinDist(cells[i%n])
		}
		_ = sink
	})
}

// BenchmarkBulkUnpack measures code decoding, BitReader vs the bulk
// unpackers, across the page bit widths.
func BenchmarkBulkUnpack(b *testing.B) {
	const n, dim = 256, 16
	for _, bits := range []int{1, 2, 4, 8} {
		g, payload, _, _ := benchPage(bits, n, dim)
		_ = g
		b.Run("naive/g="+strconv.Itoa(bits), func(b *testing.B) {
			b.ReportAllocs()
			dst := make([]uint32, n*dim)
			for i := 0; i < b.N; i++ {
				r := quantize.NewBitReader(payload)
				for j := range dst {
					dst[j] = r.Read(bits)
				}
			}
		})
		b.Run("kernel/g="+strconv.Itoa(bits), func(b *testing.B) {
			b.ReportAllocs()
			dst := make([]uint32, n*dim)
			for i := 0; i < b.N; i++ {
				Unpack(dst, payload, n*dim, bits)
			}
		})
	}
}
