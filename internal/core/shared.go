package core

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// This file adapts the tree's query state machines to the scan-sharing
// protocol of internal/index: each query suspends at its quantized-page
// fetch boundary, the engine's coordinator merges the wanted pages of
// every in-flight query into one deduplicated read plan per round, and
// each fetched page is decoded once and offered to all attached cursors.
//
// Safety rests on two properties of the tree's concurrency model:
//
//   - Page positions are written out of place: within one reorganization
//     generation the bytes at a quantized-page position never change, so
//     a page fetched for one query's epoch is byte-identical for every
//     other pinned epoch that still owns the position (cursors map
//     positions through their own snapshot and decline stale ones).
//   - Reorganization excludes readers via the world lock and bumps the
//     generation. Cursors and FetchRun take the read lock per call and
//     re-validate the generation, so no cursor holds the lock across a
//     coordinator round (a held read lock would deadlock against a
//     writer once the lock queue forces new readers to wait). A failed
//     validation surfaces index.ErrStaleScan and the coordinator
//     restarts the query on a fresh cursor.
//
// Result equivalence with the share-nothing paths is argued per cursor
// below and pinned by the shared_test.go equivalence suite.

var _ index.SharedScanner = (*Tree)(nil)
var _ index.ApproxSharedScan = (*sharedScan)(nil)

// NewSharedScan returns a scan-sharing handle over the tree. The handle
// owns the round-scoped decode scratch for shared pages, so it must be
// confined to one coordinator goroutine.
func (t *Tree) NewSharedScan() index.SharedScan {
	return &sharedScan{t: t}
}

type sharedScan struct {
	t     *Tree
	arena kernel.Arena // decode-once buffer for the current shared page
}

func (ss *sharedScan) Layout() index.SharedLayout {
	sn := ss.t.load()
	return index.SharedLayout{
		PageBlocks: ss.t.opt.QPageBlocks,
		NumPages:   len(sn.entryAt),
	}
}

func (ss *sharedScan) Gen() uint64 { return ss.t.reoptGen.Load() }

// KNN begins one resumable k-NN query charged to s.
func (ss *sharedScan) KNN(s *store.Session, q vec.Point, k int) index.Cursor {
	return ss.KNNApprox(s, q, k, index.Approx{})
}

// KNNApprox begins one resumable k-NN query under the given
// approximation knob: the cursor drives the same probability-bounded
// state machine as Tree.KNNApprox, so once the knob's stopping rule
// fires it drains its candidate refinements and stops wanting pages. A
// zero (or MinRecall = 1) knob is bit-identical to KNN.
func (ss *sharedScan) KNNApprox(s *store.Session, q vec.Point, k int, ap index.Approx) index.Cursor {
	t := ss.t
	c := &knnCursor{t: t, s: s, pending: -1}
	t.world.RLock()
	c.gen = t.reoptGen.Load()
	sn := t.load()
	t.world.RUnlock()
	if tr := obs.TraceFrom(s.Observer()); tr != nil {
		tr.SetLabel(fmt.Sprintf("knn k=%d", k))
	}
	if k <= 0 || sn.n == 0 {
		c.done = true
		return c
	}
	c.st = scratchFor(s).beginSearch(t, sn, s, q, k, obs.TraceFrom(s.Observer()), ap)
	return c
}

// Range begins one resumable range query charged to s.
func (ss *sharedScan) Range(s *store.Session, q vec.Point, eps float64) index.Cursor {
	t := ss.t
	sc := scratchFor(s)
	sc.eps = epsFilter{q: q, eps: eps, met: t.opt.Metric}
	if tr := obs.TraceFrom(s.Observer()); tr != nil {
		tr.SetLabel(fmt.Sprintf("range eps=%g", eps))
	}
	return newScanCursor(t, s, sc, &sc.eps, true)
}

// Window begins one resumable window query charged to s.
func (ss *sharedScan) Window(s *store.Session, w vec.MBR) index.Cursor {
	t := ss.t
	sc := scratchFor(s)
	sc.win = windowFilter{w: w}
	if tr := obs.TraceFrom(s.Observer()); tr != nil {
		tr.SetLabel("window")
	}
	return newScanCursor(t, s, sc, &sc.win, false)
}

// FetchRun reads quantized pages [first, last] through the leader's
// session, delivering each verified page (decoded at most once) and
// reporting quarantined or corrupt positions. Damage downgrades the run
// to wanted-only page-granular reads, mirroring the share-nothing
// degraded paths.
func (ss *sharedScan) FetchRun(s *store.Session, gen uint64, first, last int, wanted func(pos int) bool,
	deliver func(pg *index.SharedPage), degraded func(pos int)) error {
	t := ss.t
	t.world.RLock()
	defer t.world.RUnlock()
	if t.reoptGen.Load() != gen {
		return index.ErrStaleScan
	}
	if t.anyQuarantinedIn(first, last) {
		return ss.fetchPagewise(s, first, last, wanted, deliver, degraded)
	}
	buf, err := s.Read(t.qFile, first*t.opt.QPageBlocks, (last-first+1)*t.opt.QPageBlocks)
	if err != nil {
		if !t.corruptQPage(err) {
			return err
		}
		// Fresh corruption somewhere in the run: localize it by retrying
		// each wanted page individually.
		s.Recover()
		return ss.fetchPagewise(s, first, last, wanted, deliver, degraded)
	}
	pageBytes := t.qPageBytes()
	for pos := first; pos <= last; pos++ {
		ss.deliverPage(pos, buf[(pos-first)*pageBytes:(pos-first+1)*pageBytes], deliver)
	}
	return nil
}

// fetchPagewise is the degraded fetch: only wanted positions are read,
// one random access each, so no query pays for pages nobody needs.
func (ss *sharedScan) fetchPagewise(s *store.Session, first, last int, wanted func(pos int) bool,
	deliver func(pg *index.SharedPage), degraded func(pos int)) error {
	t := ss.t
	for pos := first; pos <= last; pos++ {
		if !wanted(pos) {
			continue
		}
		if t.isQuarantined(pos) {
			degraded(pos)
			continue
		}
		buf, err := s.Read(t.qFile, pos*t.opt.QPageBlocks, t.opt.QPageBlocks)
		if err != nil {
			if !t.corruptQPage(err) {
				return err
			}
			s.Recover()
			sn := t.load()
			if e := sn.entryIndex(pos); e >= 0 && int(sn.entries[e].Bits) != quantize.ExactBits {
				t.quarantinePage(pos)
			}
			degraded(pos)
			continue
		}
		ss.deliverPage(pos, buf[:t.qPageBytes()], deliver)
	}
	return nil
}

// deliverPage wraps one page's raw bytes as a SharedPage whose Codes
// closure bulk-decodes into the scan-owned buffer on first use.
func (ss *sharedScan) deliverPage(pos int, buf []byte, deliver func(pg *index.SharedPage)) {
	qp := page.UnmarshalQPage(buf)
	sp := index.SharedPage{Pos: pos, Count: qp.Count, Bits: qp.Bits, Payload: qp.Payload}
	if qp.Bits != quantize.ExactBits {
		var codes []uint32
		sp.Codes = func() []uint32 {
			if codes == nil {
				codes = ss.arena.Unpack(qp.Payload, qp.Count*ss.t.dim, qp.Bits)
			}
			return codes
		}
	}
	deliver(&sp)
}

// knnCursor drives the nnSearch state machine one page fetch at a time.
//
// Equivalence with the share-nothing search: the cursor makes the same
// page decisions as run() — start, then repeatedly advance to the next
// unpruned pending page — but instead of fetching a batch itself it
// reports the page as its want and suspends. Pages delivered early
// (fetched for another query) only tighten the search's bounds sooner;
// since processing a page is order-independent for the final result set
// (candidates enter the same priority list, prune radii only shrink),
// the returned neighbors are identical to the share-nothing run.
type knnCursor struct {
	t       *Tree
	s       *store.Session
	st      *nnSearch
	gen     uint64
	pending int32 // entry awaiting its page; -1 = none
	started bool
	done    bool
	res     []Neighbor
}

func (c *knnCursor) Step() (bool, error) {
	if c.done {
		return true, nil
	}
	st := c.st
	if st.err != nil {
		c.done = true
		return true, st.err
	}
	t := c.t
	t.world.RLock()
	defer t.world.RUnlock()
	if t.reoptGen.Load() != c.gen {
		return false, index.ErrStaleScan
	}
	if !c.started {
		c.started = true
		if !st.start() {
			c.done = true
			return true, st.err
		}
	}
	if c.pending >= 0 && !st.processed[c.pending] {
		// Last round's fetch did not reach this page (its leader failed);
		// keep wanting it.
		return false, nil
	}
	entry, ok := st.advance()
	if !ok {
		c.done = true
		if st.err != nil {
			return true, st.err
		}
		c.res = st.results()
		return true, nil
	}
	c.pending = int32(entry)
	return false, nil
}

func (c *knnCursor) Wants(buf []int) []int {
	if c.done || !c.started || c.pending < 0 || c.st.processed[c.pending] {
		return buf
	}
	return append(buf, int(c.st.sn.entries[c.pending].QPos))
}

func (c *knnCursor) AccessProb(pos int) float64 {
	if c.done || !c.started || c.st.err != nil {
		return 0
	}
	return c.st.accessProb(pos)
}

func (c *knnCursor) Deliver(pg *index.SharedPage, shared bool) bool {
	st := c.st
	if c.done || !c.started || st.err != nil {
		return false
	}
	e := st.sn.entryIndex(pg.Pos)
	relevant := e >= 0 && !st.sn.free[e] && !st.processed[e]
	if !shared {
		// Leader accounting matches the share-nothing batch loop: every
		// transferred page is counted, irrelevant ones as pruned — and
		// every transferred page consumes the approximate-mode fetch
		// budget, exactly like the batch loop's over-reads.
		st.fetched++
		st.tr.AddPages(1)
	}
	if !relevant {
		if !shared {
			st.tr.AddPruned(1)
		}
		return false
	}
	st.processed[e] = true
	if st.minD[e] >= st.prune() {
		if !shared {
			st.tr.AddPruned(1)
		}
		return false
	}
	if shared {
		// Another query's session paid the transfer; record a zero-cost
		// shared read so trace totals still reconcile with session stats.
		st.s.NoteShared(st.t.qFile, st.t.opt.QPageBlocks)
		st.tr.AddShared(1)
	}
	if pg.Bits == quantize.ExactBits {
		st.processExact(pg.Payload, pg.Count)
		return true
	}
	st.processCodesBatch(e, pg.Count, pg.Codes())
	return true
}

func (c *knnCursor) DeliverDegraded(pos int) bool {
	st := c.st
	if c.done || !c.started || st.err != nil || c.pending < 0 {
		return false
	}
	// Only the actively wanted page may go degraded here: share-nothing
	// search never touches the exact shadow of pages it still might
	// prune, and an exact-mode page it would never fetch must not fail
	// the query.
	e := st.sn.entryIndex(pos)
	if e < 0 || int32(e) != c.pending || st.processed[e] {
		return false
	}
	st.degradedExact(e, nil)
	return true
}

func (c *knnCursor) Results() ([]vec.Neighbor, error) {
	if c.st != nil && c.st.err != nil {
		return nil, c.st.err
	}
	return c.res, nil
}

func (c *knnCursor) Close() {}

// scanCursor drives range and window queries: one directory scan selects
// every candidate page up front (beginScan, identical to the
// share-nothing path), all of them are wanted at once, and each
// delivered page appends its qualifying points. Deliveries arrive in
// ascending position order within a round — the plan's spans are
// disjoint and ascending — so a clean scan produces results in the same
// order as the share-nothing known-set schedule; degraded entries are
// served from their exact shadow at the end, and range results are
// sorted by distance on completion either way.
type scanCursor struct {
	t          *Tree
	s          *store.Session
	sn         *snapshot
	tr         *Trace
	sc         *queryScratch
	f          scanFilter
	gen        uint64
	sortByDist bool

	started   bool
	done      bool
	err       error
	pending   []int // candidate positions, ascending (aliases sc.positions)
	delivered map[int]struct{}
	degraded  []int // entries to serve from the exact shadow on finish
	out       []Neighbor
}

func newScanCursor(t *Tree, s *store.Session, sc *queryScratch, f scanFilter, sortByDist bool) *scanCursor {
	c := &scanCursor{t: t, s: s, sc: sc, f: f, sortByDist: sortByDist}
	t.world.RLock()
	c.gen = t.reoptGen.Load()
	c.sn = t.load()
	c.tr = obs.TraceFrom(s.Observer())
	t.world.RUnlock()
	return c
}

func (c *scanCursor) Step() (bool, error) {
	if c.done || c.err != nil {
		return true, c.err
	}
	t := c.t
	t.world.RLock()
	defer t.world.RUnlock()
	if t.reoptGen.Load() != c.gen {
		return false, index.ErrStaleScan
	}
	if !c.started {
		c.started = true
		positions, degraded, err := t.beginScan(c.s, c.sn, c.sc, c.f)
		if err != nil {
			return c.finish(err)
		}
		c.pending = positions
		c.degraded = degraded
		c.delivered = make(map[int]struct{}, len(positions))
	}
	if len(c.delivered) < len(c.pending) {
		return false, nil
	}
	// All candidate pages are in; serve the degraded entries from the
	// exact level and finalize.
	for _, entry := range c.degraded {
		out, err := t.rangeDegraded(c.s, c.sn, c.tr, c.sc, c.f, entry, c.out)
		if err != nil {
			return c.finish(err)
		}
		c.out = out
	}
	if c.sortByDist {
		out := c.out
		sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	}
	return c.finish(nil)
}

func (c *scanCursor) finish(err error) (bool, error) {
	c.done = true
	c.err = err
	return true, err
}

func (c *scanCursor) Wants(buf []int) []int {
	if c.done || !c.started {
		return buf
	}
	for _, pos := range c.pending {
		if _, ok := c.delivered[pos]; !ok {
			buf = append(buf, pos)
		}
	}
	return buf
}

func (c *scanCursor) AccessProb(pos int) float64 {
	if c.done || !c.started {
		return 0
	}
	if _, ok := c.sc.posEntry[pos]; !ok {
		return 0
	}
	if _, ok := c.delivered[pos]; ok {
		return 0
	}
	return 1 // known-set scan: every undelivered candidate page is certain
}

func (c *scanCursor) Deliver(pg *index.SharedPage, shared bool) bool {
	if c.done || c.err != nil || !c.started {
		return false
	}
	entry, wanted := c.sc.posEntry[pg.Pos]
	if _, dup := c.delivered[pg.Pos]; dup {
		wanted = false
	}
	if !shared {
		c.tr.AddPages(1)
		if !wanted {
			c.tr.AddPruned(1) // over-read gap page (cheaper than a seek)
			return false
		}
	} else if !wanted {
		return false
	}
	c.delivered[pg.Pos] = struct{}{}
	if shared {
		c.s.NoteShared(c.t.qFile, c.t.opt.QPageBlocks)
		c.tr.AddShared(1)
	}
	var out []Neighbor
	var err error
	if pg.Bits == quantize.ExactBits {
		out, err = c.t.rangeExactQPage(c.s, c.sc, c.f, pg.Payload, pg.Count, c.out)
	} else {
		out, err = c.t.rangePageCodes(c.s, c.sn, c.tr, c.sc, c.f, entry, pg.Count, pg.Codes(), c.out)
	}
	if err != nil {
		c.err = err
		return true
	}
	c.out = out
	return true
}

func (c *scanCursor) DeliverDegraded(pos int) bool {
	if c.done || c.err != nil || !c.started {
		return false
	}
	entry, wanted := c.sc.posEntry[pos]
	if !wanted {
		return false
	}
	if _, dup := c.delivered[pos]; dup {
		return false
	}
	c.delivered[pos] = struct{}{}
	c.degraded = append(c.degraded, entry)
	return true
}

func (c *scanCursor) Results() ([]vec.Neighbor, error) {
	if c.err != nil {
		return nil, c.err
	}
	return c.out, nil
}

func (c *scanCursor) Close() {}
