package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/scan"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

// edgeSearcher is the query surface shared by the IQ-tree and both
// baselines, so one table exercises all of them.
type edgeSearcher interface {
	KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error)
	NearestNeighbor(s *store.Session, q vec.Point) (vec.Neighbor, bool, error)
	RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error)
}

// edgeMethods builds every access method over the same database, each on
// its own simulated store.
func edgeMethods(t *testing.T, db []vec.Point) map[string]edgeSearcher {
	t.Helper()
	out := make(map[string]edgeSearcher)

	iq, err := Build(store.NewSim(store.DefaultConfig()), db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out["iqtree"] = treeSearcher{iq}

	xt, err := xtree.Build(store.NewSim(store.DefaultConfig()), db, xtree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out["xtree"] = xt

	va, err := vafile.Build(store.NewSim(store.DefaultConfig()), db, vafile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out["vafile"] = va
	return out
}

// treeSearcher adapts *Tree (whose store is embedded) to edgeSearcher
// with sessions supplied by the caller.
type treeSearcher struct{ t *Tree }

func (w treeSearcher) KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error) {
	return w.t.KNN(s, q, k)
}
func (w treeSearcher) NearestNeighbor(s *store.Session, q vec.Point) (vec.Neighbor, bool, error) {
	return w.t.NearestNeighbor(s, q)
}
func (w treeSearcher) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error) {
	return w.t.RangeSearch(s, q, eps)
}

func sortedDists(nbs []vec.Neighbor) []float64 {
	ds := make([]float64, len(nbs))
	for i, nb := range nbs {
		ds[i] = nb.Dist
	}
	sort.Float64s(ds)
	return ds
}

// TestQueryEdgeCases is the edge-case table of the bugfix sweep: the
// degenerate inputs that historically panic or silently disagree across
// access methods, checked for the IQ-tree and both baselines against the
// sequential-scan ground truth.
func TestQueryEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	normal := randPoints(r, 300, 4)
	dup := make([]vec.Point, 200)
	for i := range dup {
		dup[i] = vec.Point{0.5, 0.25, 0.75, 0.5}
	}
	q := vec.Point{0.4, 0.4, 0.4, 0.4}

	for _, db := range []struct {
		name string
		pts  []vec.Point
	}{
		{"normal", normal},
		{"all-duplicates", dup},
	} {
		t.Run(db.name, func(t *testing.T) {
			truthSto := store.NewSim(store.DefaultConfig())
			truth, err := scan.Build(truthSto, db.pts, vec.Euclidean)
			if err != nil {
				t.Fatal(err)
			}
			for name, m := range edgeMethods(t, db.pts) {
				t.Run(name, func(t *testing.T) {
					// k <= 0: empty result, no error, no panic.
					for _, k := range []int{0, -3} {
						s := truthSto.NewSession()
						res, err := m.KNN(s, q, k)
						if err != nil || len(res) != 0 {
							t.Fatalf("k=%d: %d results, err %v", k, len(res), err)
						}
					}

					// k > N: exactly N results, matching the scan's distances.
					s := truthSto.NewSession()
					res, err := m.KNN(s, q, len(db.pts)+10)
					if err != nil {
						t.Fatal(err)
					}
					want, err := truth.KNN(truthSto.NewSession(), q, len(db.pts))
					if err != nil {
						t.Fatal(err)
					}
					if len(res) != len(db.pts) {
						t.Fatalf("k>N returned %d of %d points", len(res), len(db.pts))
					}
					got, exp := sortedDists(res), sortedDists(want)
					for i := range got {
						if d := got[i] - exp[i]; d > 1e-5 || d < -1e-5 {
							t.Fatalf("k>N rank %d: dist %g vs scan %g", i, got[i], exp[i])
						}
					}

					// Zero-radius range: only exact matches of the query point.
					onPoint := db.pts[0]
					res, err = m.RangeSearch(truthSto.NewSession(), onPoint, 0)
					if err != nil {
						t.Fatal(err)
					}
					want, err = truth.RangeSearch(truthSto.NewSession(), onPoint, 0)
					if err != nil {
						t.Fatal(err)
					}
					if len(res) != len(want) {
						t.Fatalf("zero-radius on a stored point: %d results, scan found %d",
							len(res), len(want))
					}
					res, err = m.RangeSearch(truthSto.NewSession(), q, 0)
					if err != nil {
						t.Fatal(err)
					}
					want, err = truth.RangeSearch(truthSto.NewSession(), q, 0)
					if err != nil {
						t.Fatal(err)
					}
					if len(res) != len(want) {
						t.Fatalf("zero-radius off-point: %d results, scan found %d",
							len(res), len(want))
					}

					// NearestNeighbor on a populated index always reports ok.
					if _, ok, err := m.NearestNeighbor(truthSto.NewSession(), q); err != nil || !ok {
						t.Fatalf("NN: ok=%v err=%v", ok, err)
					}
				})
			}
		})
	}
}

// TestEmptyTreeQueries covers the empty-index edge: the IQ-tree can
// become empty through deletion and must answer every query shape
// gracefully; the baselines refuse to build over nothing (an error, not
// a panic).
func TestEmptyTreeQueries(t *testing.T) {
	pts := []vec.Point{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()
	for i, p := range pts {
		if ok, err := tr.Delete(s, p, uint32(i)); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len %d after deleting everything", tr.Len())
	}

	q := vec.Point{0.2, 0.2}
	s = tr.sto.NewSession()
	if res, err := tr.KNN(s, q, 5); err != nil || len(res) != 0 {
		t.Fatalf("empty KNN: %d results, err %v", len(res), err)
	}
	if _, ok, err := tr.NearestNeighbor(s, q); err != nil || ok {
		t.Fatalf("empty NN: ok=%v err=%v", ok, err)
	}
	if res, err := tr.RangeSearch(s, q, 0.5); err != nil || len(res) != 0 {
		t.Fatalf("empty range: %d results, err %v", len(res), err)
	}
	w := vec.MBR{Lo: vec.Point{0, 0}, Hi: vec.Point{1, 1}}
	if res, err := tr.WindowQuery(s, w); err != nil || len(res) != 0 {
		t.Fatalf("empty window: %d results, err %v", len(res), err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("queries on the empty tree poisoned the session: %v", err)
	}

	// The tree must also come back: inserting into the emptied tree
	// revives a freed page rather than failing.
	if err := tr.Insert(s, vec.Point{0.9, 0.9}, 42); err != nil {
		t.Fatalf("insert into emptied tree: %v", err)
	}
	res, err := tr.KNN(s, q, 1)
	if err != nil || len(res) != 1 || res[0].ID != 42 {
		t.Fatalf("KNN after revival: %+v err %v", res, err)
	}

	// Builders reject an empty point set with an error, never a panic.
	for name, build := range map[string]func() error{
		"iqtree": func() error {
			_, err := Build(store.NewSim(store.DefaultConfig()), nil, DefaultOptions())
			return err
		},
		"xtree": func() error {
			_, err := xtree.Build(store.NewSim(store.DefaultConfig()), nil, xtree.DefaultOptions())
			return err
		},
		"vafile": func() error {
			_, err := vafile.Build(store.NewSim(store.DefaultConfig()), nil, vafile.DefaultOptions())
			return err
		},
		"scan": func() error {
			_, err := scan.Build(store.NewSim(store.DefaultConfig()), nil, vec.Euclidean)
			return err
		},
	} {
		if err := build(); err == nil {
			t.Fatalf("%s: empty build succeeded, want error", name)
		}
	}
}
