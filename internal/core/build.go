package core

import (
	"container/heap"

	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// builder performs the bulk construction of Section 3.3: top-down
// partitioning along the dimension of largest MBR extension (the
// bulk-load strategy of [4]) followed by the optimal-quantization
// refinement of Section 3.5. It fills the snapshot sn, which the caller
// publishes once the build succeeded.
type builder struct {
	t    *Tree
	sn   *snapshot
	pts  []vec.Point
	ids  []uint32 // ids[i] is the id of pts[i]; nil means identity
	perm []int32  // permutation of point indices; nodes own ranges of it
}

// bnode is a node of the split tree (paper Fig. 5). Leaves of the final
// frontier become quantized data pages.
type bnode struct {
	lo, hi      int // perm range [lo, hi)
	mbr         vec.MBR
	bits        int     // maximal quantization level fitting the page
	varCost     float64 // refinement cost at `bits` (the variable cost)
	left, right *bnode
	benefit     float64 // varCost − left.varCost − right.varCost
	splitStep   int     // step at which the greedy split this node; -1 = never
	hidx        int     // index in the benefit heap
}

func (n *bnode) count() int { return n.hi - n.lo }

func newBuilder(t *Tree, sn *snapshot, pts []vec.Point) *builder {
	perm := make([]int32, len(pts))
	for i := range perm {
		perm[i] = int32(i)
	}
	return &builder{t: t, sn: sn, pts: pts, perm: perm}
}

func (b *builder) run() {
	b.write(b.frontier())
}

// frontier computes the final page layout (partitioning + optimal
// quantization) without touching the store: the planning half of the
// build, shared with the incremental reoptimizer, which wants the plan
// up front and the page writes spread over many steps.
func (b *builder) frontier() []*bnode {
	ranges := b.initialRanges()
	if b.t.opt.Quantize && b.t.opt.FixedBits == 0 && b.t.opt.RefineCostFactor == 0 {
		b.sn.model.RefineFactor = b.calibrateRefinement(ranges)
	}
	roots := make([]*bnode, len(ranges))
	for i, r := range ranges {
		roots[i] = b.newNode(r.lo, r.hi, r.mbr)
	}
	var frontier []*bnode
	switch {
	case b.t.opt.FixedBits > 0:
		// Fixed-level ablation: split until every page fits the fixed
		// level, then store all pages at it.
		for _, r := range roots {
			frontier = append(frontier, b.splitToFixed(r, b.t.opt.FixedBits)...)
		}
	case b.t.opt.Quantize:
		frontier = b.optimize(roots)
	default:
		// "No quantization" ablation: split all the way to exact pages.
		for _, r := range roots {
			frontier = append(frontier, b.splitToExact(r)...)
		}
	}
	return frontier
}

// plan materializes the frontier as self-contained page plans, in disk
// layout order. The returned pages alias b.pts' points but own their
// id slices.
func (b *builder) plan(frontier []*bnode) []planPage {
	out := make([]planPage, len(frontier))
	for i, n := range frontier {
		pts := make([]vec.Point, n.count())
		ids := make([]uint32, n.count())
		for j := 0; j < n.count(); j++ {
			idx := b.perm[n.lo+j]
			pts[j] = b.pts[idx]
			if b.ids != nil {
				ids[j] = b.ids[idx]
			} else {
				ids[j] = uint32(idx)
			}
		}
		out[i] = planPage{pts: pts, ids: ids, bits: n.bits, mbr: n.mbr, base: uint32(n.lo)}
	}
	return out
}

// partRange is an initial partition before split-tree nodes exist.
type partRange struct {
	lo, hi int
	mbr    vec.MBR
}

// mbrOf computes the MBR of the perm range [lo, hi).
func (b *builder) mbrOf(lo, hi int) vec.MBR {
	m := vec.NewMBR(b.t.dim)
	for _, idx := range b.perm[lo:hi] {
		m.Extend(b.pts[idx])
	}
	return m
}

// initialPartitions splits the data space top-down until every partition
// fits a quantized page at the 1-bit level (Section 3.3), returning the
// partitions in left-to-right (disk layout) order. Following the
// bulk-load strategy of [4], the split position is aligned to a multiple
// of the page capacity so that pages come out (nearly) full — a packed
// layout, not a 50% median split.
func (b *builder) initialRanges() []partRange {
	cap1 := b.t.pageCapacity(1)
	var out []partRange
	var rec func(lo, hi int, mbr vec.MBR)
	rec = func(lo, hi int, mbr vec.MBR) {
		if hi-lo <= cap1 {
			out = append(out, partRange{lo: lo, hi: hi, mbr: mbr})
			return
		}
		mid := b.packedSplit(lo, hi, mbr, cap1)
		rec(lo, mid, b.mbrOf(lo, mid))
		rec(mid, hi, b.mbrOf(mid, hi))
	}
	rec(0, len(b.perm), b.mbrOf(0, len(b.perm)))
	return out
}

// packedSplit reorders perm[lo:hi] along the MBR's longest dimension and
// returns a split index aligned to the page capacity: the left side gets
// ⌊pages/2⌋ full pages, so leaves end up packed.
func (b *builder) packedSplit(lo, hi int, mbr vec.MBR, capacity int) int {
	count := hi - lo
	pages := (count + capacity - 1) / capacity
	mid := lo + capacity*(pages/2)
	if mid <= lo || mid >= hi {
		mid = lo + count/2
	}
	dim, _ := mbr.MaxSide()
	b.selectNth(lo, hi, mid, dim)
	return mid
}

// newNode creates a split-tree node, computing its affordable quantization
// level and variable (refinement) cost, and eagerly preparing its trial
// split (the optimizer's determine_benefits step).
func (b *builder) newNode(lo, hi int, mbr vec.MBR) *bnode {
	n := &bnode{lo: lo, hi: hi, mbr: mbr, splitStep: -1, hidx: -1}
	n.bits = b.t.fitBits(n.count())
	if n.bits == 0 {
		panic("core: partition does not fit at 1 bit") // initial split guarantees it does
	}
	if !b.t.opt.Quantize {
		return n
	}
	n.varCost = b.sn.model.RefinementCost(n.mbr, n.count(), n.bits)
	if n.bits < quantize.ExactBits && n.count() >= 2 {
		mid := b.medianSplit(lo, hi, mbr)
		n.left = b.newNode(lo, mid, b.mbrOf(lo, mid))
		n.right = b.newNode(mid, hi, b.mbrOf(mid, hi))
		n.benefit = n.varCost - n.left.varCost - n.right.varCost
	}
	return n
}

// splitToExact recursively splits a node until every leaf fits at the
// 32-bit exact level (used by the no-quantization ablation), packing
// pages like the initial partitioning does.
func (b *builder) splitToExact(n *bnode) []*bnode {
	return b.splitToFixed(n, quantize.ExactBits)
}

// splitToFixed recursively splits a node until every leaf fits at the
// given quantization level, which every leaf is then stored at.
func (b *builder) splitToFixed(n *bnode, bits int) []*bnode {
	if b.t.pageCapacity(bits) >= n.count() {
		n.bits = bits
		return []*bnode{n}
	}
	mid := b.packedSplit(n.lo, n.hi, n.mbr, b.t.pageCapacity(bits))
	l := &bnode{lo: n.lo, hi: mid, mbr: b.mbrOf(n.lo, mid), splitStep: -1}
	r := &bnode{lo: mid, hi: n.hi, mbr: b.mbrOf(mid, n.hi), splitStep: -1}
	return append(b.splitToFixed(l, bits), b.splitToFixed(r, bits)...)
}

// medianSplit reorders perm[lo:hi] so that the lower half along the MBR's
// longest dimension precedes the upper half, and returns the split index.
func (b *builder) medianSplit(lo, hi int, mbr vec.MBR) int {
	dim, _ := mbr.MaxSide()
	mid := lo + (hi-lo)/2
	b.selectNth(lo, hi, mid, dim)
	return mid
}

// selectNth partially sorts perm[lo:hi] by coordinate `dim` such that the
// element at position nth is in its sorted place and everything before it
// compares ≤ (quickselect with median-of-three pivoting; deterministic).
func (b *builder) selectNth(lo, hi, nth, dim int) {
	coord := func(i int) float32 { return b.pts[b.perm[i]][dim] }
	for hi-lo > 1 {
		// Median-of-three pivot.
		mid := lo + (hi-lo)/2
		a, c, e := coord(lo), coord(mid), coord(hi-1)
		pivot := a
		if (c >= a && c <= e) || (c <= a && c >= e) {
			pivot = c
		} else if (e >= a && e <= c) || (e <= a && e >= c) {
			pivot = e
		}
		// Three-way partition (Dutch national flag) to cope with heavy
		// duplicate coordinates.
		lt, i, gt := lo, lo, hi
		for i < gt {
			v := coord(i)
			switch {
			case v < pivot:
				b.perm[lt], b.perm[i] = b.perm[i], b.perm[lt]
				lt++
				i++
			case v > pivot:
				gt--
				b.perm[gt], b.perm[i] = b.perm[i], b.perm[gt]
			default:
				i++
			}
		}
		switch {
		case nth < lt:
			hi = lt
		case nth >= gt:
			lo = gt
		default:
			return // nth lands in the pivot run
		}
	}
}

// benefitHeap is a max-heap of splittable nodes ordered by split benefit.
type benefitHeap []*bnode

func (h benefitHeap) Len() int            { return len(h) }
func (h benefitHeap) Less(i, j int) bool  { return h[i].benefit > h[j].benefit }
func (h benefitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].hidx = i; h[j].hidx = j }
func (h *benefitHeap) Push(x interface{}) { n := x.(*bnode); n.hidx = len(*h); *h = append(*h, n) }
func (h *benefitHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	n.hidx = -1
	*h = old[:len(old)-1]
	return n
}

// optimize runs the optimal-quantization algorithm of Section 3.5: starting
// from the initial partitions, greedily split the partition with the
// largest variable-cost benefit, record the full-model cost after every
// step, and return the frontier of the cheapest recorded step.
func (b *builder) optimize(roots []*bnode) []*bnode {
	var h benefitHeap
	totalVar := 0.0
	nPages := len(roots)
	for _, r := range roots {
		totalVar += r.varCost
		if r.left != nil {
			heap.Push(&h, r)
		}
	}
	constCost := func(n int) float64 {
		return b.sn.model.DirectoryCost(n) + b.sn.model.SecondLevelCost(n)
	}
	bestCost := constCost(nPages) + totalVar
	bestStep := 0
	step := 0
	for h.Len() > 0 {
		n := heap.Pop(&h).(*bnode)
		n.splitStep = step
		step++
		totalVar += n.left.varCost + n.right.varCost - n.varCost
		nPages++
		if n.left.left != nil {
			heap.Push(&h, n.left)
		}
		if n.right.left != nil {
			heap.Push(&h, n.right)
		}
		if c := constCost(nPages) + totalVar; c < bestCost {
			bestCost = c
			bestStep = step
		}
	}
	// Undo all splits past the best step: the frontier consists of the
	// shallowest nodes not split before bestStep.
	var frontier []*bnode
	var collect func(n *bnode)
	collect = func(n *bnode) {
		if n.splitStep >= 0 && n.splitStep < bestStep {
			collect(n.left)
			collect(n.right)
			return
		}
		frontier = append(frontier, n)
	}
	for _, r := range roots {
		collect(r)
	}
	return frontier
}

// planPage is one page of a computed layout, ready to be written by
// writePlanPage — the unit of work of the incremental reoptimizer.
type planPage struct {
	pts  []vec.Point
	ids  []uint32
	bits int
	mbr  vec.MBR
	base uint32
}

// writePlanPage appends one planned page to the given quantized/exact
// files and returns its directory entry and grid. Write failures are
// recorded as the store's sticky error, which the caller checks before
// publishing anything that references the page.
func (t *Tree) writePlanPage(qf, ef *store.File, pp planPage) (page.DirEntry, quantize.Grid) {
	grid := quantize.NewGrid(pp.mbr, pp.bits)
	e := page.DirEntry{
		Count: uint32(len(pp.pts)),
		Bits:  uint8(pp.bits),
		Base:  pp.base,
		MBR:   pp.mbr,
	}
	var bpos int
	if pp.bits < quantize.ExactBits {
		epos, eblocks, err := ef.Append(page.MarshalExact(pp.pts, pp.ids))
		if err == nil {
			e.EPos = uint32(epos)
			e.EBlocks = uint32(eblocks)
		}
		bpos, _, _ = qf.Append(page.MarshalQPage(grid, pp.pts, nil, t.qPageBytes()))
	} else {
		bpos, _, _ = qf.Append(page.MarshalQPage(grid, pp.pts, pp.ids, t.qPageBytes()))
	}
	e.QPos = uint32(bpos / t.opt.QPageBlocks)
	return e, grid
}

// write lays the frontier out on disk in partition order: quantized pages
// back to back in the second-level file (so spatially adjacent partitions
// are adjacent on disk), exact pages in the same order in the third-level
// file, and one directory entry each.
func (b *builder) write(frontier []*bnode) {
	t := b.t
	sn := b.sn
	dirBuf := make([]byte, 0, len(frontier)*page.DirEntrySize(t.dim))
	entryBuf := make([]byte, page.DirEntrySize(t.dim))
	for _, pp := range b.plan(frontier) {
		e, grid := t.writePlanPage(t.qFile, t.eFile, pp)
		e.Marshal(entryBuf, t.dim)
		dirBuf = append(dirBuf, entryBuf...)
		entryIdx := sn.appendEntry()
		sn.entries[entryIdx] = e
		sn.grids[entryIdx] = grid
		sn.setOwner(int(e.QPos), entryIdx)
	}
	t.dirFile.SetContents(dirBuf)
	sn.dirBlocks = t.dirFile.Blocks()
}
