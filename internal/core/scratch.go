package core

import (
	"repro/internal/index"
	"repro/internal/kernel"
	"repro/internal/pagesched"
	"repro/internal/store"
	"repro/internal/vec"
)

// queryScratch is the per-session reusable state of the query paths:
// kernel arenas, the k-NN search state, the range/window scan buffers,
// and the access-probability scratch. It rides on the session's scratch
// slot (surviving Session.Reset), so pooled sessions — the engine's
// workers — reach a zero-allocation steady state on the KNN hot path.
// Like the session itself, it is single-goroutine state.
type queryScratch struct {
	arena kernel.Arena      // codes + distance/window tables
	pts   kernel.PointArena // decoded exact points (KNN refinement)
	prob  pagesched.ProbScratch

	search nnSearch
	sorter entrySorter
	probFn func(int) float64 // st.accessProb, bound once
	sched  pagesched.Scheduler

	// Range/window scan state.
	positions []int
	posEntry  map[int]int
	need      []int
	eps       epsFilter
	win       windowFilter

	// Batch-kernel buffers (scan-sharing page filters and the batch
	// range/window classifiers).
	bounds kernel.PageBounds
	hits   []bool
}

// scratchFor returns the session's query scratch, creating and attaching
// it on first use.
func scratchFor(s *store.Session) *queryScratch {
	if sc, ok := s.Scratch().(*queryScratch); ok {
		return sc
	}
	sc := &queryScratch{
		posEntry: make(map[int]int),
	}
	sc.search.sc = sc
	sc.search.exactCache = make(map[int32]exactPage)
	sc.search.exactSkip = make(map[int32]bool)
	sc.probFn = sc.search.accessProb
	s.SetScratch(sc)
	return sc
}

// beginSearch re-initializes the scratch's k-NN state for one query,
// reusing every buffer at its high-water capacity.
func (sc *queryScratch) beginSearch(t *Tree, sn *snapshot, s *store.Session, q vec.Point, k int, tr *Trace, ap index.Approx) *nnSearch {
	st := &sc.search
	st.t, st.sn, st.s, st.q, st.k, st.tr = t, sn, s, q, k, tr
	st.err = nil
	st.ap = ap
	st.fetched, st.apStopped, st.apStopRefine, st.apSkipped, st.apProb = 0, false, false, 0, 0
	n := len(sn.entries)
	st.minD = growF64(st.minD, n)
	st.processed = growBool(st.processed, n)
	clear(st.processed)
	st.sorted = st.sorted[:0]
	st.heap = st.heap[:0]
	st.res = st.res[:0]
	st.ub = st.ub[:0]
	st.wSum = growF64(st.wSum, n)
	clear(st.wSum)
	st.wCnt = growI32(st.wCnt, n)
	clear(st.wCnt)
	st.regionBuf = st.regionBuf[:0]
	clear(st.exactCache)
	clear(st.exactSkip)
	sc.pts.Reset()
	return st
}

// entrySorter orders directory entry indexes by MINDIST. It is a
// pre-boxed sort.Interface so the hot path can use sort.Sort without the
// closure allocation of sort.Slice; both run the same pdqsort, so the
// resulting permutation (ties included) is identical.
type entrySorter struct {
	minD []float64
	idx  []int32
}

func (s *entrySorter) Len() int           { return len(s.idx) }
func (s *entrySorter) Less(a, b int) bool { return s.minD[s.idx[a]] < s.minD[s.idx[b]] }
func (s *entrySorter) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
