package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/pagesched"
	"repro/internal/store"
	"repro/internal/vec"
)

// driveShared is a minimal scan-sharing coordinator for tests: it steps
// every cursor to its fetch boundary, merges the wanted pages with
// pagesched.BatchAll under the combined access probability, fetches each
// span once through the first wanting query's session, and fans the
// pages out to all cursors — the same round protocol the engine
// coordinator runs. Returns per-query results and errors.
func driveShared(t *testing.T, tr *Tree, sessions []*store.Session,
	mk func(scan index.SharedScan, i int, s *store.Session) index.Cursor) ([][]Neighbor, []error) {
	t.Helper()
	scan := tr.NewSharedScan()
	n := len(sessions)
	cursors := make([]index.Cursor, n)
	for i := range cursors {
		cursors[i] = mk(scan, i, sessions[i])
	}
	results := make([][]Neighbor, n)
	errs := make([]error, n)
	done := make([]bool, n)
	restarts := 0

	for rounds := 0; ; rounds++ {
		if rounds > 100000 {
			t.Fatal("driveShared: no progress")
		}
		live := 0
		owner := map[int]int{}
		var wants []int
		for i, c := range cursors {
			if done[i] {
				continue
			}
			d, err := c.Step()
			if errors.Is(err, index.ErrStaleScan) {
				restarts++
				if restarts > 100 {
					t.Fatal("driveShared: restart loop")
				}
				c.Close()
				cursors[i] = mk(scan, i, sessions[i])
				d, err = cursors[i].Step()
				c = cursors[i]
			}
			if d {
				done[i] = true
				results[i], errs[i] = c.Results()
				if err != nil {
					errs[i] = err
				}
				c.Close()
				continue
			}
			if err != nil {
				done[i] = true
				errs[i] = err
				c.Close()
				continue
			}
			live++
			for _, p := range c.Wants(nil) {
				if _, ok := owner[p]; !ok {
					owner[p] = i
					wants = append(wants, p)
				}
			}
		}
		if live == 0 {
			return results, errs
		}
		if len(wants) == 0 {
			continue
		}
		sort.Ints(wants)
		layout := scan.Layout()
		gen := scan.Gen()
		sched := &pagesched.Scheduler{
			Cfg:        tr.sto.Config(),
			PageBlocks: layout.PageBlocks,
			NumPages:   layout.NumPages,
			Prob: func(pos int) float64 {
				if _, ok := owner[pos]; ok {
					return 1
				}
				miss := 1.0
				for i, c := range cursors {
					if done[i] {
						continue
					}
					miss *= 1 - c.AccessProb(pos)
				}
				return 1 - miss
			},
		}
		for _, span := range sched.BatchAll(wants) {
			var leader int = -1
			for i := sort.SearchInts(wants, span.First); i < len(wants) && wants[i] <= span.Last; i++ {
				if o := owner[wants[i]]; !done[o] {
					leader = o
					break
				}
			}
			if leader < 0 {
				continue
			}
			err := scan.FetchRun(sessions[leader], gen, span.First, span.Last,
				func(pos int) bool { _, ok := owner[pos]; return ok },
				func(pg *index.SharedPage) {
					if !done[leader] {
						cursors[leader].Deliver(pg, false)
					}
					for i, c := range cursors {
						if i == leader || done[i] {
							continue
						}
						c.Deliver(pg, true)
					}
				},
				func(pos int) {
					for i, c := range cursors {
						if !done[i] {
							c.DeliverDegraded(pos)
						}
					}
				},
			)
			if err != nil && !errors.Is(err, index.ErrStaleScan) {
				done[leader] = true
				errs[leader] = err
				cursors[leader].Close()
			}
		}
	}
}

type sharedCase struct {
	kind string
	q    vec.Point
	k    int
	eps  float64
	w    vec.MBR
}

func mixedCases(r *rand.Rand, n, dim int) []sharedCase {
	cases := make([]sharedCase, 0, n)
	for i := 0; i < n; i++ {
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = r.Float32()
		}
		switch i % 3 {
		case 0:
			cases = append(cases, sharedCase{kind: "knn", q: q, k: 1 + r.Intn(8)})
		case 1:
			cases = append(cases, sharedCase{kind: "range", q: q, eps: 0.2 + r.Float64()*0.3})
		default:
			lo := make(vec.Point, dim)
			hi := make(vec.Point, dim)
			for j := range lo {
				a := r.Float32() * 0.6
				lo[j], hi[j] = a, a+0.3+r.Float32()*0.3
			}
			cases = append(cases, sharedCase{kind: "window", w: vec.MBR{Lo: lo, Hi: hi}})
		}
	}
	return cases
}

func newSharedCursor(scan index.SharedScan, c sharedCase, s *store.Session) index.Cursor {
	switch c.kind {
	case "knn":
		return scan.KNN(s, c.q, c.k)
	case "range":
		return scan.Range(s, c.q, c.eps)
	default:
		return scan.Window(s, c.w)
	}
}

func directCase(t *testing.T, tr *Tree, c sharedCase, s *store.Session) []Neighbor {
	t.Helper()
	var res []Neighbor
	var err error
	switch c.kind {
	case "knn":
		res, err = tr.KNN(s, c.q, c.k)
	case "range":
		res, err = tr.RangeSearch(s, c.q, c.eps)
	default:
		res, err = tr.WindowQuery(s, c.w)
	}
	if err != nil {
		t.Fatalf("direct %s: %v", c.kind, err)
	}
	return res
}

// TestSharedCursorsMatchShareNothing is the core equivalence contract:
// a mixed batch of KNN, range and window queries executed concurrently
// through the scan-sharing round protocol returns bit-identical results
// to share-nothing single-session execution.
func TestSharedCursorsMatchShareNothing(t *testing.T) {
	for _, cfg := range []struct {
		name string
		mut  func(*Options)
	}{
		{"optimized", func(o *Options) {}},
		{"single-page-io", func(o *Options) { o.OptimizedIO = false }},
		{"fixed8", func(o *Options) { o.FixedBits = 8 }},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(31))
			pts := randPoints(r, 2500, 6)
			sto := store.NewSim(store.DefaultConfig())
			opt := DefaultOptions()
			opt.FractalDim = 4
			cfg.mut(&opt)
			tr, err := Build(sto, pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			cases := mixedCases(r, 24, 6)
			sessions := make([]*store.Session, len(cases))
			for i := range sessions {
				sessions[i] = sto.NewSession()
			}
			results, errs := driveShared(t, tr, sessions,
				func(scan index.SharedScan, i int, s *store.Session) index.Cursor {
					return newSharedCursor(scan, cases[i], s)
				})
			for i, c := range cases {
				if errs[i] != nil {
					t.Fatalf("shared %s %d: %v", c.kind, i, errs[i])
				}
				want := directCase(t, tr, c, sto.NewSession())
				got := results[i]
				if len(got) != len(want) {
					t.Fatalf("%s %d: shared %d results, direct %d", c.kind, i, len(got), len(want))
				}
				for j := range want {
					if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
						t.Fatalf("%s %d result %d: shared (%d,%v), direct (%d,%v)",
							c.kind, i, j, got[j].ID, got[j].Dist, want[j].ID, want[j].Dist)
					}
				}
			}
		})
	}
}

// TestSharedSingleQueryDegeneratesToShareNothing pins the degeneracy
// property end to end at the cost level: with exactly one query in
// flight, the shared pipeline issues the same simulated reads as the
// share-nothing path — same blocks, same seeks, same simulated time.
func TestSharedSingleQueryDegeneratesToShareNothing(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	pts := randPoints(r, 3000, 8)
	sto := store.NewSim(store.DefaultConfig())
	opt := DefaultOptions()
	opt.FractalDim = 4
	tr, err := Build(sto, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range mixedCases(r, 9, 8) {
		shared := sto.NewSession()
		_, errs := driveShared(t, tr, []*store.Session{shared},
			func(scan index.SharedScan, _ int, s *store.Session) index.Cursor {
				return newSharedCursor(scan, c, s)
			})
		if errs[0] != nil {
			t.Fatalf("case %d: %v", i, errs[0])
		}
		direct := sto.NewSession()
		directCase(t, tr, c, direct)
		if shared.Stats != direct.Stats {
			t.Fatalf("case %d (%s): shared stats %+v, direct %+v", i, c.kind, shared.Stats, direct.Stats)
		}
	}
}

// TestSharedCursorStaleAfterReoptimize checks the generation guard: a
// cursor created before Reoptimize reports ErrStaleScan instead of
// reading rewritten file regions, and a fresh cursor succeeds.
func TestSharedCursorStaleAfterReoptimize(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	pts := randPoints(r, 1200, 4)
	sto := store.NewSim(store.DefaultConfig())
	opt := DefaultOptions()
	opt.FractalDim = 4
	tr, err := Build(sto, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	scan := tr.NewSharedScan()
	s := sto.NewSession()
	cur := scan.KNN(s, pts[0], 3)
	if done, err := cur.Step(); done || err != nil {
		t.Fatalf("first step: done=%v err=%v", done, err)
	}
	if err := tr.Reoptimize(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Step(); !errors.Is(err, index.ErrStaleScan) {
		t.Fatalf("step after reoptimize: %v, want ErrStaleScan", err)
	}
	if err := scan.FetchRun(s, scan.Gen()+1, 0, 0, func(int) bool { return true },
		func(*index.SharedPage) {}, func(int) {}); !errors.Is(err, index.ErrStaleScan) {
		t.Fatalf("FetchRun with stale gen: %v, want ErrStaleScan", err)
	}
	cur.Close()
	sessions := []*store.Session{sto.NewSession()}
	results, errs := driveShared(t, tr, sessions,
		func(scan index.SharedScan, _ int, s *store.Session) index.Cursor {
			return scan.KNN(s, pts[0], 3)
		})
	if errs[0] != nil || len(results[0]) != 3 {
		t.Fatalf("fresh cursor after reoptimize: %d results, err %v", len(results[0]), errs[0])
	}
}
