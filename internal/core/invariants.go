package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/page"
	"repro/internal/quantize"
)

// CheckInvariants validates the full physical structure of the tree
// against its current snapshot. It is used by tests and by cautious
// maintenance code after batches of updates. The checks are:
//
//  1. live page counts sum to Len();
//  2. every page's count fits its quantization level's capacity;
//  3. the serialized directory matches the in-memory entries;
//  4. every quantized page header matches its directory entry;
//  5. every point's exact coordinates lie inside the page MBR, and its
//     quantized cells match re-encoding the exact point;
//  6. compressed pages have a consistent third-level region; exact
//     (32-bit) pages have none;
//  7. no point id appears twice;
//  8. the position index maps every live entry's page position back to
//     that entry (page versions are owned by at most one entry).
//
// It returns the first violation found, or nil.
func (t *Tree) CheckInvariants() error {
	t.world.RLock()
	defer t.world.RUnlock()
	sn := t.load()

	// (3) directory bytes round-trip.
	entrySize := page.DirEntrySize(t.dim)
	if t.dirFile.Bytes() < len(sn.entries)*entrySize {
		return fmt.Errorf("directory file holds %d bytes, need %d", t.dirFile.Bytes(), len(sn.entries)*entrySize)
	}
	var raw []byte
	if t.dirFile.Blocks() > 0 {
		var err error
		if raw, err = t.dirFile.ReadRaw(0, t.dirFile.Blocks()); err != nil {
			return err
		}
	}

	seen := make(map[uint32]bool, sn.n)
	total := 0
	free := t.sto.NewSession()
	for i, e := range sn.entries {
		got := page.UnmarshalDirEntry(raw[i*entrySize:], t.dim)
		if got.Count != e.Count || got.Bits != e.Bits || got.QPos != e.QPos ||
			got.EPos != e.EPos || got.EBlocks != e.EBlocks {
			return fmt.Errorf("entry %d: serialized directory diverges (%+v vs %+v)", i, got, e)
		}
		if sn.free[i] {
			if e.Count != 0 {
				return fmt.Errorf("entry %d: free but count %d", i, e.Count)
			}
			continue
		}
		// (8) position-index consistency: the entry's page version exists
		// and is owned by exactly this entry.
		if int(e.QPos)*t.opt.QPageBlocks >= t.qFile.Blocks() {
			return fmt.Errorf("entry %d: QPos %d past the quantized file", i, e.QPos)
		}
		if owner := sn.entryIndex(int(e.QPos)); owner != i {
			return fmt.Errorf("entry %d: position index maps QPos %d to entry %d", i, e.QPos, owner)
		}
		bits := int(e.Bits)
		if bits < 1 || bits > quantize.ExactBits {
			return fmt.Errorf("entry %d: invalid level %d", i, bits)
		}
		// (2) capacity.
		if int(e.Count) > t.pageCapacity(bits) {
			return fmt.Errorf("entry %d: %d points exceed capacity %d at %d bits", i, e.Count, t.pageCapacity(bits), bits)
		}
		total += int(e.Count)

		// (4) page header.
		full, err := t.qFile.ReadRaw(int(e.QPos)*t.opt.QPageBlocks, t.opt.QPageBlocks)
		if err != nil {
			return err
		}
		qp := page.UnmarshalQPage(full)
		if qp.Count != int(e.Count) || qp.Bits != bits {
			return fmt.Errorf("entry %d: page header (%d, %d) vs directory (%d, %d)", i, qp.Count, qp.Bits, e.Count, e.Bits)
		}

		// (6) third level wiring.
		if bits == quantize.ExactBits {
			if e.EBlocks != 0 {
				return fmt.Errorf("entry %d: exact page should have no third level", i)
			}
		} else if e.EBlocks == 0 {
			return fmt.Errorf("entry %d: compressed page lacks a third level", i)
		}

		// (5) + (7) per-point checks via the exact geometry.
		pts, ids, err := t.readPagePoints(free, sn, i)
		if err != nil {
			return err
		}
		if len(pts) != int(e.Count) {
			return fmt.Errorf("entry %d: read %d exact points, want %d", i, len(pts), e.Count)
		}
		grid := sn.grids[i]
		var cells []uint32
		var stored []uint32
		if bits < quantize.ExactBits {
			stored = kernel.Unpack(nil, qp.Payload, qp.Count*t.dim, qp.Bits)
		}
		for j, p := range pts {
			if seen[ids[j]] {
				return fmt.Errorf("duplicate id %d", ids[j])
			}
			seen[ids[j]] = true
			if !e.MBR.Contains(p) {
				return fmt.Errorf("entry %d point %d: outside page MBR", i, j)
			}
			if bits < quantize.ExactBits {
				cells = grid.Encode(p, cells)
				for dd := 0; dd < t.dim; dd++ {
					if stored[j*t.dim+dd] != cells[dd] {
						return fmt.Errorf("entry %d point %d dim %d: stored cell %d, re-encoded %d",
							i, j, dd, stored[j*t.dim+dd], cells[dd])
					}
				}
			}
		}
	}
	// (1) totals.
	if total != sn.n {
		return fmt.Errorf("live page counts sum to %d, Len is %d", total, sn.n)
	}
	// (8b) no stale position claims a live entry.
	for pos, owner := range sn.entryAt {
		if owner < 0 {
			continue
		}
		if int(owner) >= len(sn.entries) {
			return fmt.Errorf("position %d: owner %d out of range", pos, owner)
		}
		if !sn.free[owner] && int(sn.entries[owner].QPos) != pos {
			return fmt.Errorf("position %d: claims live entry %d whose QPos is %d", pos, owner, sn.entries[owner].QPos)
		}
	}
	return nil
}
