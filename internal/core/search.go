package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/pagesched"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

var _ index.ApproxSearcher = (*Tree)(nil)

var (
	metricApproxStops   = obs.Default().Counter("core.approx.terminations")
	metricApproxSkipped = obs.Default().Counter("core.approx.skipped_pages")
)

// Neighbor is one search result.
type Neighbor = vec.Neighbor

// Trace records the physical work of one query: per-level simulated
// cost, the scheduler's batch decisions, and the candidate/refinement
// funnel. It is the obs.QueryTrace of the observability layer; the
// traced query entry points attach it to the session for the duration of
// the query, so it also captures per-level seek/transfer/CPU charges.
// All methods are nil-safe — a nil *Trace records nothing.
type Trace = obs.QueryTrace

// NearestNeighbor returns the nearest neighbor of q, charging all
// simulated I/O and CPU to session s. ok is false when the tree is
// empty or the search failed.
func (t *Tree) NearestNeighbor(s *store.Session, q vec.Point) (nb Neighbor, ok bool, err error) {
	res, err := t.KNN(s, q, 1)
	if err != nil || len(res) == 0 {
		return Neighbor{}, false, err
	}
	return res[0], true, nil
}

// KNN returns the k nearest neighbors of q ordered by increasing
// distance. On a read failure it returns the session's (sticky) error;
// the partial result must not be trusted. When the session's observer is
// a *Trace, the query records its plan events into it (so a serving
// layer attaching traces per query needs no method-specific entry point).
func (t *Tree) KNN(s *store.Session, q vec.Point, k int) ([]Neighbor, error) {
	return t.KNNTrace(s, q, k, obs.TraceFrom(s.Observer()))
}

// KNNTrace is KNN with an optional physical-work trace: a non-nil tr is
// attached to the session as its observer for the duration of the query
// (displacing, then restoring, any previously attached observer), so it
// records the per-level cost decomposition alongside the plan events.
func (t *Tree) KNNTrace(s *store.Session, q vec.Point, k int, tr *Trace) ([]Neighbor, error) {
	st, err := t.knn(s, q, k, tr, index.Approx{})
	if st == nil || err != nil {
		return nil, err
	}
	return st.results(), nil
}

// KNNApprox is KNN under a probability-bounded approximation knob
// (paper Sec. 2.2 turned into a stopping rule; see index.Approx): the
// best-first search stops fetching quantized pages once the estimated
// probability that any still-unfetched page improves the current top-k
// drops below ε = 1 − MinRecall, or once MaxCost pages were fetched.
// Candidates already admitted from fetched pages are still refined
// against exact geometry, so every returned neighbor is a genuine
// indexed point at its exact distance — an approximate answer can
// substitute farther neighbors for missed ones, never fabricate them.
// A zero (or MinRecall = 1) knob is bit-identical to KNN.
func (t *Tree) KNNApprox(s *store.Session, q vec.Point, k int, ap index.Approx) ([]Neighbor, error) {
	st, err := t.knn(s, q, k, obs.TraceFrom(s.Observer()), ap)
	if st == nil || err != nil {
		return nil, err
	}
	return st.results(), nil
}

// KNNInto is KNN reusing the caller's result buffer: dst (grown as
// needed) receives the neighbors and is returned; the per-neighbor Point
// backing arrays of dst are reused when large enough. A warmed
// (dst, session) pair makes repeated queries allocation-free. The
// returned slice and its points are owned by the caller until the next
// KNNInto with the same dst.
func (t *Tree) KNNInto(s *store.Session, q vec.Point, k int, dst []Neighbor) ([]Neighbor, error) {
	st, err := t.knn(s, q, k, obs.TraceFrom(s.Observer()), index.Approx{})
	if st == nil || err != nil {
		return nil, err
	}
	return st.resultsInto(dst), nil
}

// knn runs the shared search; a nil state (with nil error) means the
// empty-query case.
func (t *Tree) knn(s *store.Session, q vec.Point, k int, tr *Trace, ap index.Approx) (*nnSearch, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	sn := t.load()
	label := ""
	if tr != nil {
		label = fmt.Sprintf("knn k=%d", k)
	}
	detach := attachTrace(s, tr, t.sto.Config(), label)
	defer detach()
	if k <= 0 || sn.n == 0 {
		return nil, s.Err()
	}
	st := scratchFor(s).beginSearch(t, sn, s, q, k, tr, ap)
	st.run()
	if st.err != nil {
		return nil, st.err
	}
	return st, nil
}

// attachTrace installs tr as the session's observer and returns the
// function undoing it. With a nil tr it is a no-op (the session keeps
// whatever observer it already has).
func attachTrace(s *store.Session, tr *Trace, cfg store.Config, label string) func() {
	if tr == nil {
		return func() {}
	}
	tr.SetCosts(cfg.Seek, cfg.Xfer)
	tr.SetLabel(label)
	prev := s.Observer()
	s.SetObserver(tr)
	return func() { s.SetObserver(prev) }
}

// pqItem is an entry of the search priority list (paper Sec. 3.2): either
// a whole quantized page or the box approximation of a single point.
type pqItem struct {
	dist  float64
	entry int32 // directory entry index
	pt    int32 // point index within the page; -1 for a page item
}

type nnSearch struct {
	t   *Tree
	sn  *snapshot // pinned directory epoch; all state below indexes it
	s   *store.Session
	q   vec.Point
	k   int
	tr  *Trace
	sc  *queryScratch // owning scratch (arenas, sorter, prob buffers)
	err error         // first read failure; aborts the search

	minD      []float64 // MINDIST per directory entry
	processed []bool
	sorted    []int32 // live entries ordered by MINDIST (for probabilities)

	heap []pqItem // min-heap on dist

	// Approximate execution state (zero for exact queries): the knob, the
	// quantized pages fetched so far (mirrors the trace's PagesRead; kept
	// here because tracing is optional), and — once the knob's stopping
	// rule fired — the skipped-page count and the remaining-improvement
	// probability recorded at termination.
	ap           index.Approx
	fetched      int
	apStopped    bool // ε or budget rule fired: no more quantized page fetches
	apStopRefine bool // ε rule fired: no more fresh exact-page (level-3) loads either
	apSkipped    int
	apProb       float64
	wSum         []float64      // per entry: Σ (ub − lb) over admitted candidates
	wCnt         []int32        // per entry: admitted candidate count
	exactSkip    map[int32]bool // exact pages the ε stop left unloaded

	res resHeap   // k best refined neighbors (max-heap on dist)
	ub  []float64 // max-heap of the k smallest upper bounds seen

	regionBuf []pagesched.Region

	// exactCache holds decoded third-level pages, keyed by entry index.
	// The third level is organized in variable-size pages, one per
	// partition (paper Fig. 3): the first refinement from a partition
	// loads its whole exact page, later refinements are free.
	exactCache map[int32]exactPage
}

type exactPage struct {
	pts []vec.Point
	ids []uint32
}

// nnDist is the exact kth-best distance found so far.
func (st *nnSearch) nnDist() float64 {
	if len(st.res) < st.k {
		return math.Inf(1)
	}
	return st.res[0].Dist
}

// bound is the kth-smallest upper bound seen so far: at least k points lie
// within it, so anything farther can be discarded (VA-file style pruning,
// implied by the paper's b-sphere argument).
func (st *nnSearch) bound() float64 {
	if len(st.ub) < st.k {
		return math.Inf(1)
	}
	return st.ub[0]
}

func (st *nnSearch) prune() float64 { return math.Min(st.nnDist(), st.bound()) }

// run drives the share-nothing search to completion: seed the priority
// list, then alternately pick the next pending page and fetch it (with
// the batched or single-page strategy). The scan-sharing cursor drives
// the same start/advance state machine but suspends at the fetch
// boundary instead, so both paths make identical page decisions.
func (st *nnSearch) run() {
	if !st.start() {
		return
	}
	for st.err == nil {
		entry, ok := st.advance()
		if !ok {
			break
		}
		if st.t.opt.OptimizedIO {
			st.processBatch(entry)
		} else {
			st.processSingle(entry)
		}
	}
}

// start runs the level-1 directory scan and seeds the priority list
// (paper Sec. 3.2). It reports whether the search can proceed; on false,
// st.err holds the reason (or the search is trivially complete).
func (st *nnSearch) start() bool {
	t := st.t
	sn := st.sn
	met := t.opt.Metric

	// Level 1: sequential scan of the flat directory (the extent the
	// pinned epoch was published with — the file may have grown since).
	if sn.dirBlocks > 0 {
		if _, err := st.s.Read(t.dirFile, 0, sn.dirBlocks); err != nil {
			st.err = err
			return false
		}
	}
	st.s.ChargeApproxCPU(t.dirFile, t.dim, len(sn.entries))

	for i, e := range sn.entries {
		if sn.free[i] {
			st.processed[i] = true
			continue
		}
		st.minD[i] = e.MBR.MinDist(st.q, met)
		st.pushItem(pqItem{dist: st.minD[i], entry: int32(i), pt: -1})
		st.sorted = append(st.sorted, int32(i))
	}
	st.sc.sorter = entrySorter{minD: st.minD, idx: st.sorted}
	sort.Sort(&st.sc.sorter)
	return true
}

// advance pops the priority list to the next unprocessed page entry,
// refining point items inline on the way. ok=false means the search is
// complete: either the list ran dry, nothing left can improve the
// result, or a refinement failed (st.err).
func (st *nnSearch) advance() (entry int, ok bool) {
	for len(st.heap) > 0 && st.err == nil {
		it := st.popItem()
		if it.dist >= st.nnDist() {
			break // nothing left can improve the result set
		}
		if it.dist > st.bound() {
			continue // k closer points certainly exist
		}
		if it.pt >= 0 {
			if st.approxSkipRefine(it) {
				continue // would load a fresh exact page; result is good enough
			}
			st.refine(it)
			continue
		}
		if st.processed[it.entry] {
			continue
		}
		if st.approxStop(int(it.entry)) {
			continue // page skipped; keep draining candidate refinements
		}
		return int(it.entry), true
	}
	return 0, false
}

// approxSkipRefine decides, immediately before a popped candidate would
// be refined, whether the ε rule terminates fresh exact-page loads: the
// check runs only at level-3 fetch boundaries (candidates whose
// partition is already cached refine for free, stopped or not), mirrors
// the page-fetch stopping rule — the remaining-improvement estimate
// counts unfetched pages and pending candidates alike — and never fires
// before k refined results exist, so an approximate answer always holds
// k genuine neighbors. A budget (MaxCost) stop does not gate
// refinements: the budget bounds quantized page transfers only.
func (st *nnSearch) approxSkipRefine(it pqItem) bool {
	if !st.ap.Enabled() || len(st.res) < st.k {
		return false
	}
	if _, cached := st.exactCache[it.entry]; cached {
		return false
	}
	if !st.apStopRefine {
		eps := st.ap.Epsilon()
		if eps <= 0 {
			return false
		}
		p := st.remainingImprove(eps, &it)
		if p >= eps {
			return false
		}
		st.terminateApprox(p)
		st.apStopRefine = true
	}
	st.skipExact(it.entry)
	return true
}

// skipExact charges one skipped page the first time a fresh exact page
// is left unloaded by the ε termination (later candidates from the same
// partition are part of the same skipped page).
func (st *nnSearch) skipExact(entry int32) {
	if st.exactSkip[entry] {
		return
	}
	if st.exactSkip == nil {
		st.exactSkip = make(map[int32]bool)
	}
	st.exactSkip[entry] = true
	st.apSkipped++
	st.tr.AddSkipped(1)
	metricApproxSkipped.Inc()
}

// approxStop decides, immediately before the popped page entry would be
// fetched, whether the approximate knob terminates page fetching: either
// the page-fetch budget is spent, or the cumulative probability that any
// still-unfetched page improves the current top-k — 1 − Π(1 − p_i) over
// the remaining unprocessed, unpruned pages, p_i from the paper's
// uniformity-within-MBR model — dropped below ε = 1 − MinRecall. Once
// stopped, every later-popped page is skipped the same way while point
// candidates from already-fetched pages keep refining, so the answer
// stays exact for everything the filter level actually saw. Exact
// queries (zero knob) return false without touching any state.
func (st *nnSearch) approxStop(entry int) bool {
	if !st.ap.Enabled() {
		return false
	}
	if st.apStopped {
		st.skipPage(entry)
		return true
	}
	if st.ap.MaxCost > 0 && st.fetched >= st.ap.MaxCost {
		// Budget stop: record the (un-cut) remaining-improvement estimate
		// so the trace reports how much the budget may have cost. The
		// budget bounds page transfers only; refinements keep running.
		st.terminateApprox(st.remainingImprove(1, nil))
		st.skipPage(entry)
		return true
	}
	if eps := st.ap.Epsilon(); eps > 0 {
		if p := st.remainingImprove(eps, nil); p < eps {
			st.terminateApprox(p)
			st.apStopRefine = true
			st.skipPage(entry)
			return true
		}
	}
	return false
}

// remainingImprove estimates the per-slot probability that any
// still-unfetched page improves the current top-k: the
// popped-but-unprocessed entry and every other unprocessed entry with
// MINDIST below the prune radius compete as regions of the cost model's
// improvement estimator, normalized over the k result slots (see
// pagesched.ImproveProbability — terminating below ε then bounds the
// expected fraction of changed slots, hence 1 − expected recall, by ε).
// cut is the caller's decision threshold — the scan aborts early once
// the probability provably reaches it. With fewer than k results the
// radius is unbounded and the estimate saturates at 1 (never terminate
// early).
func (st *nnSearch) remainingImprove(cut float64, extra *pqItem) float64 {
	r := st.prune()
	if math.IsInf(r, 1) {
		return 1
	}
	// Unfetched pages compete as uniform regions of the cost model.
	st.regionBuf = st.regionBuf[:0]
	for _, e := range st.sorted {
		if st.minD[e] >= r {
			break
		}
		if st.processed[e] {
			continue
		}
		st.regionBuf = append(st.regionBuf, pagesched.Region{
			MBR:     st.sn.entries[e].MBR,
			Count:   int(st.sn.entries[e].Count),
			MinDist: st.minD[e],
		})
	}
	k := float64(st.k)
	pPages := st.sc.prob.ImproveProbability(st.q, st.t.opt.Metric, r, st.regionBuf, k, cut)
	if pPages >= cut {
		return pPages // pages alone forbid termination; skip the heap scan
	}
	// Pending candidates — filter-admitted points waiting, unrefined, in
	// the priority list — are not uniform MBR mass: the filter step already
	// located them near the query. Each competes through its own lower
	// bound instead: its true distance is modeled uniform on [lb, lb + w̄],
	// w̄ the source entry's mean admitted bound width, so
	// P(improve) = clamp((r − lb)/w̄). Folding their misses into the page
	// product keeps the per-slot calibration of ImproveProbability.
	miss := math.Pow(1-pPages, k)
	missCut := 0.0
	if cut < 1 {
		missCut = math.Pow(1-cut, k)
	}
	for i := range st.heap {
		miss *= 1 - st.candImprove(&st.heap[i], r)
		if miss <= missCut || miss < pagesched.ProbFloor {
			break
		}
	}
	if extra != nil {
		miss *= 1 - st.candImprove(extra, r)
	}
	if miss < pagesched.ProbFloor {
		miss = pagesched.ProbFloor
	}
	return 1 - math.Pow(miss, 1/k)
}

// candImprove is the pending-candidate improvement probability of one
// priority-list point item (0 for page items).
func (st *nnSearch) candImprove(it *pqItem, r float64) float64 {
	if it.pt < 0 || it.dist >= r {
		return 0
	}
	if st.wCnt[it.entry] == 0 {
		return 1 // no width statistic; assume the worst
	}
	w := st.wSum[it.entry] / float64(st.wCnt[it.entry])
	if w <= 0 {
		return 1 // exact bounds: lb < r is a certain improvement
	}
	return math.Min((r-it.dist)/w, 1)
}

// terminateApprox records the stopping decision; callers separately skip
// whatever page or refinement triggered it.
func (st *nnSearch) terminateApprox(p float64) {
	st.apStopped = true
	st.apProb = p
	metricApproxStops.Inc()
	st.tr.NoteTermination(p)
}

// skipPage marks one pending page as left unfetched by the approximate
// termination.
func (st *nnSearch) skipPage(entry int) {
	st.processed[entry] = true
	st.apSkipped++
	st.tr.AddSkipped(1)
	metricApproxSkipped.Inc()
}

// processSingle loads exactly one quantized page with a random access
// (the "standard NN-search" of Fig. 7). A quarantined or
// corrupt-on-read page is answered from its exact shadow instead.
func (st *nnSearch) processSingle(entry int) {
	t := st.t
	pos := int(st.sn.entries[entry].QPos)
	if t.isQuarantined(pos) {
		st.degradedExact(entry, nil)
		return
	}
	buf, err := st.s.Read(t.qFile, pos*t.opt.QPageBlocks, t.opt.QPageBlocks)
	if err != nil {
		if !t.corruptQPage(err) {
			st.err = err
			return
		}
		st.s.Recover()
		if int(st.sn.entries[entry].Bits) != quantize.ExactBits {
			t.quarantinePage(pos)
		}
		st.degradedExact(entry, err)
		return
	}
	st.fetched++
	st.tr.AddPages(1)
	st.tr.AddBatch(obs.BatchDecision{Pivot: pos, First: pos, Last: pos, Pending: 1})
	st.processPage(entry, buf)
}

// processBatch runs the time-optimized strategy of Sec. 2.1: around the
// pivot page it loads the contiguous page sequence whose cumulated cost
// balance is favorable, then processes every still-pending page in it.
func (st *nnSearch) processBatch(entry int) {
	t := st.t
	sn := st.sn
	pivot := int(sn.entries[entry].QPos)
	sched := &st.sc.sched
	*sched = pagesched.Scheduler{
		Cfg:        t.sto.Config(),
		PageBlocks: t.opt.QPageBlocks,
		NumPages:   len(sn.entryAt),
		Prob:       st.sc.probFn,
		Trace:      st.tr,
	}
	first, last := sched.Batch(pivot)
	if t.anyQuarantinedIn(first, last) {
		// Known damage inside the batch extent: a contiguous read would
		// fail verification wholesale. Fetch the pending pages one by one
		// instead; processSingle routes damaged ones to the exact level.
		st.processRunDegraded(first, last)
		return
	}
	buf, err := st.s.Read(t.qFile, first*t.opt.QPageBlocks, (last-first+1)*t.opt.QPageBlocks)
	if err != nil {
		if !t.corruptQPage(err) {
			st.err = err
			return
		}
		// Fresh corruption somewhere in the run: localize it by retrying
		// each pending page individually.
		st.s.Recover()
		st.processRunDegraded(first, last)
		return
	}
	st.fetched += last - first + 1
	st.tr.AddPages(last - first + 1)
	pageBytes := t.qPageBytes()
	pending := 0
	for pos := first; pos <= last; pos++ {
		e := sn.entryIndex(pos)
		if e < 0 || st.processed[e] || sn.free[e] {
			st.tr.AddPruned(1)
			continue
		}
		pending++
		st.processPage(e, buf[(pos-first)*pageBytes:(pos-first+1)*pageBytes])
	}
	st.tr.NotePending(pending)
}

// processRunDegraded replaces one corrupt (or damage-spanning) batch
// read with per-page random accesses — honest degraded cost — letting
// processSingle quarantine the damaged pages and serve them exactly
// from the third level.
func (st *nnSearch) processRunDegraded(first, last int) {
	sn := st.sn
	for pos := first; pos <= last && st.err == nil; pos++ {
		e := sn.entryIndex(pos)
		if e < 0 || st.processed[e] || sn.free[e] {
			continue
		}
		st.processSingle(e)
	}
}

// degradedExact answers one page whose quantized representation is
// unreadable from its exact (level-3) page: every point of the page is
// resolved with an exact distance, which is strictly more information
// than the filter step would have produced, so the k-NN result stays
// bit-identical to a clean run — only the cost degrades. Exact-mode
// (32-bit) pages have no level-3 shadow; their corruption is a typed,
// unrecoverable error.
func (st *nnSearch) degradedExact(entry int, cause error) {
	t := st.t
	e := st.sn.entries[entry]
	st.processed[entry] = true
	if int(e.Bits) == quantize.ExactBits {
		st.err = unrecoverablePage(int(e.QPos), entry, cause)
		return
	}
	if st.minD[entry] >= st.prune() {
		st.tr.AddPruned(1)
		return // the page cannot contribute; no need to touch level 3
	}
	ep, err := st.loadExact(int32(entry))
	if err != nil {
		st.err = err
		return
	}
	metricDegradedReads.Inc()
	st.tr.AddDegraded(1)
	st.s.ChargeDistCPU(t.eFile, t.dim, len(ep.pts))
	met := t.opt.Metric
	for i, p := range ep.pts {
		d := met.Dist(st.q, p)
		st.pushUB(d)
		st.addResult(Neighbor{ID: ep.ids[i], Dist: d, Point: p})
	}
}

// accessProb estimates the probability that the pending page at file
// position pos must be loaded (Sec. 2.2): the probability that no
// higher-priority page contains a point inside the page's b-sphere.
func (st *nnSearch) accessProb(pos int) float64 {
	sn := st.sn
	entry := sn.entryIndex(pos)
	if entry < 0 || st.processed[entry] || sn.free[entry] {
		return 0
	}
	r := st.minD[entry]
	if r >= st.prune() {
		return 0 // page is already pruned
	}
	st.regionBuf = st.regionBuf[:0]
	for _, e := range st.sorted {
		if st.minD[e] >= r {
			break
		}
		if st.processed[e] || int(e) == entry {
			continue
		}
		st.regionBuf = append(st.regionBuf, pagesched.Region{
			MBR:     sn.entries[e].MBR,
			Count:   int(sn.entries[e].Count),
			MinDist: st.minD[e],
		})
	}
	return st.sc.prob.AccessProbability(st.q, st.t.opt.Metric, r, st.regionBuf)
}

// processPage decodes one quantized page: exact (32-bit) pages yield final
// distances directly; compressed pages yield per-point box approximations
// that enter the priority list.
//
// This is the CPU hot loop of the filter step. The page's codes are
// bulk-unpacked once, per-point bounds come from the kernel's per-query
// lookup tables, and points whose bounds provably clear both the prune
// radius and the current kth upper bound are abandoned mid-accumulation
// (every decision is bit-identical to the naive Grid math; see
// internal/kernel).
func (st *nnSearch) processPage(entry int, buf []byte) {
	t := st.t
	st.processed[entry] = true
	if st.minD[entry] >= st.prune() {
		st.tr.AddPruned(1)
		return // transferred as part of a batch but certainly irrelevant
	}
	qp := page.UnmarshalQPage(buf)
	if qp.Bits == quantize.ExactBits {
		st.processExact(qp.Payload, qp.Count)
		return
	}
	codes := st.sc.arena.Unpack(qp.Payload, qp.Count*t.dim, qp.Bits)
	st.processCodes(entry, qp.Count, codes)
}

// processExact consumes one exact-mode (32-bit) page: final distances,
// no refinement needed.
func (st *nnSearch) processExact(payload []byte, count int) {
	t := st.t
	met := t.opt.Metric
	pts, ids := st.sc.pts.DecodeQPage(payload, count, t.dim)
	st.s.ChargeDistCPU(t.qFile, t.dim, len(pts))
	for i, p := range pts {
		d := met.Dist(st.q, p)
		st.pushUB(d)
		st.addResult(Neighbor{ID: ids[i], Dist: d, Point: p})
	}
}

// processCodes filters one compressed page's bulk-unpacked codes with
// the scalar per-point loop, pushing candidate approximations onto the
// priority list.
func (st *nnSearch) processCodes(entry, count int, codes []uint32) {
	t := st.t
	met := t.opt.Metric
	tb := st.sc.arena.Tables(st.sn.grids[entry], st.q, met, count)
	st.s.ChargeApproxCPU(t.qFile, t.dim, count)
	cand := 0
	// prune/bound only shrink while scanning the page, so thresholds
	// cached here stay safe: a point abandoned against a stale (larger)
	// threshold would be abandoned against the current one too. They are
	// refreshed whenever pushUB actually changes the upper-bound heap.
	prune := st.prune()
	bound := st.bound()
	lbT := kernel.SqThreshold(met, prune)
	ubT := kernel.SqThreshold(met, bound)
	for i := 0; i < count; i++ {
		cs := codes[i*t.dim : (i+1)*t.dim]
		lb, ubD, pruned := tb.BoundsPruned(cs, lbT, ubT)
		if pruned {
			// lb ≥ prune (no candidate) and ubD ≥ bound (pushUB no-op).
			continue
		}
		if st.pushUB(ubD) {
			prune = st.prune()
			bound = st.bound()
			lbT = kernel.SqThreshold(met, prune)
			ubT = kernel.SqThreshold(met, bound)
		}
		if lb < prune {
			cand++
			st.wSum[entry] += ubD - lb
			st.wCnt[entry]++
			st.pushItem(pqItem{dist: lb, entry: int32(entry), pt: int32(i)})
		}
	}
	st.tr.AddCandidates(cand)
}

// processCodesBatch is processCodes over the kernel's batch entry point:
// all bounds are computed against the page-start thresholds in one call
// (so a shared page decoded once serves many queries with cache-hot
// codes), then admitted through the same live-threshold tests as the
// scalar loop. Final search state is identical to processCodes — a
// batch-computed point the scalar loop would have pruned fails the same
// live candidate test and cannot move a full upper-bound heap (see
// internal/kernel/multi.go).
func (st *nnSearch) processCodesBatch(entry, count int, codes []uint32) {
	t := st.t
	met := t.opt.Metric
	tb := st.sc.arena.Tables(st.sn.grids[entry], st.q, met, count)
	st.s.ChargeApproxCPU(t.qFile, t.dim, count)
	pb := &st.sc.bounds
	prune := st.prune()
	lbT := kernel.SqThreshold(met, prune)
	ubT := kernel.SqThreshold(met, st.bound())
	tb.BoundsBatch(codes, t.dim, count, lbT, ubT, pb)
	cand := 0
	for i := 0; i < count; i++ {
		if pb.Pruned[i] {
			continue
		}
		if st.pushUB(pb.Ub[i]) {
			prune = st.prune()
		}
		if pb.Lb[i] < prune {
			cand++
			st.wSum[entry] += pb.Ub[i] - pb.Lb[i]
			st.wCnt[entry]++
			st.pushItem(pqItem{dist: pb.Lb[i], entry: int32(entry), pt: int32(i)})
		}
	}
	st.tr.AddCandidates(cand)
}

// refine resolves one point approximation against the exact geometry: the
// first refinement from a partition loads that partition's variable-size
// exact page (one level-3 access); further candidates from the same
// partition are served from the per-query cache.
func (st *nnSearch) refine(it pqItem) {
	t := st.t
	ep, err := st.loadExact(it.entry)
	if err != nil {
		st.err = err
		return
	}
	p, id := ep.pts[it.pt], ep.ids[it.pt]
	st.s.ChargeDistCPU(t.eFile, t.dim, 1)
	st.addResult(Neighbor{ID: id, Dist: t.opt.Metric.Dist(st.q, p), Point: p})
}

// loadExact returns (loading and caching on first use) the decoded
// exact page of a directory entry.
func (st *nnSearch) loadExact(entry int32) (exactPage, error) {
	if ep, ok := st.exactCache[entry]; ok {
		return ep, nil
	}
	t := st.t
	e := st.sn.entries[entry]
	entrySize := page.ExactEntrySize(t.dim)
	raw, rel, err := st.s.ReadRange(t.eFile, int(e.EPos)*t.sto.Config().BlockSize, int(e.Count)*entrySize)
	if err != nil {
		return exactPage{}, err
	}
	st.tr.AddRefinement(int(e.Count))
	pts, ids := st.sc.pts.DecodeExact(raw[rel:], int(e.Count), t.dim)
	ep := exactPage{pts: pts, ids: ids}
	if st.exactCache == nil {
		st.exactCache = make(map[int32]exactPage)
	}
	st.exactCache[entry] = ep
	return ep, nil
}

func (st *nnSearch) addResult(nb Neighbor) {
	if nb.Dist >= st.nnDist() {
		return
	}
	st.res.push(nb)
	if len(st.res) > st.k {
		st.res.pop()
	}
}

// results pops the result heap into a fresh, caller-owned slice. The
// result points may alias the scratch point arena, so they are cloned.
func (st *nnSearch) results() []Neighbor {
	out := make([]Neighbor, len(st.res))
	for i := len(out) - 1; i >= 0; i-- {
		nb := st.res.pop()
		nb.Point = nb.Point.Clone()
		out[i] = nb
	}
	return out
}

// resultsInto pops the result heap into dst, reusing its backing array
// and, where capacities allow, the per-neighbor Point backing arrays.
func (st *nnSearch) resultsInto(dst []Neighbor) []Neighbor {
	n := len(st.res)
	if cap(dst) < n {
		grown := make([]Neighbor, n)
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:n]
	for i := n - 1; i >= 0; i-- {
		nb := st.res.pop()
		p := dst[i].Point
		if cap(p) < len(nb.Point) {
			p = make(vec.Point, len(nb.Point))
		}
		p = p[:len(nb.Point)]
		copy(p, nb.Point)
		nb.Point = p
		dst[i] = nb
	}
	return dst
}

// pushUB records a candidate upper bound in the k-smallest-UB max-heap,
// reporting whether the heap changed (i.e. whether the kth-smallest
// upper bound may have moved).
func (st *nnSearch) pushUB(ub float64) bool {
	if len(st.ub) == st.k {
		if ub >= st.ub[0] {
			return false
		}
		st.ub[0] = ub
		siftDownF(st.ub, 0)
		return true
	}
	st.ub = append(st.ub, ub)
	siftUpF(st.ub, len(st.ub)-1)
	return true
}

// --- small specialized heaps (avoid container/heap interface boxing in
// the inner search loop) ---

func (st *nnSearch) pushItem(it pqItem) {
	st.heap = append(st.heap, it)
	i := len(st.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if st.heap[p].dist <= st.heap[i].dist {
			break
		}
		st.heap[p], st.heap[i] = st.heap[i], st.heap[p]
		i = p
	}
}

func (st *nnSearch) popItem() pqItem {
	h := st.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	st.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && st.heap[l].dist < st.heap[m].dist {
			m = l
		}
		if r < last && st.heap[r].dist < st.heap[m].dist {
			m = r
		}
		if m == i {
			break
		}
		st.heap[i], st.heap[m] = st.heap[m], st.heap[i]
		i = m
	}
	return top
}

// resHeap is a max-heap of neighbors by distance.
type resHeap []Neighbor

func (h *resHeap) push(nb Neighbor) {
	*h = append(*h, nb)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist >= a[i].Dist {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *resHeap) pop() Neighbor {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	a = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].Dist > a[m].Dist {
			m = l
		}
		if r < len(a) && a[r].Dist > a[m].Dist {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// float max-heap helpers for the upper-bound heap.
func siftUpF(a []float64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if a[p] >= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func siftDownF(a []float64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l] > a[m] {
			m = l
		}
		if r < len(a) && a[r] > a[m] {
			m = r
		}
		if m == i {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}
