package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/store"
	"repro/internal/vec"
)

// Kill-and-recover suite for the WAL-mode tree. The simulated crash is a
// process death with all flushed blocks intact: the Store wrapper (and
// every in-memory structure) is abandoned and the tree is reopened from
// the raw backend, exactly as a restarted process would. Each test
// compares the recovered tree against a "twin" — a second tree on its
// own store that executed only the acknowledged operations and never
// crashed. Because replay pushes the logged operations through the same
// apply path in the same order, the comparison is bit-identical file
// contents, not merely equal query answers.

func walTestOptions() Options {
	opt := DefaultOptions()
	opt.WAL = true
	return opt
}

// buildWALTree builds a WAL-mode tree on a fresh simulated backend.
func buildWALTree(t *testing.T, pts []vec.Point, opt Options) *Tree {
	t.Helper()
	sto := store.NewSim(store.DefaultConfig())
	tr, err := Build(sto, pts, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

// crashRecover reopens the tree from the raw backend as a fresh process
// would, abandoning the old wrapper and all in-memory state.
func crashRecover(t *testing.T, tr *Tree) *Tree {
	t.Helper()
	rec, err := Open(store.Wrap(tr.sto.Backend()))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("recovered tree invariants: %v", err)
	}
	return rec
}

func sameNeighbor(a, b Neighbor) bool {
	return a.ID == b.ID && a.Dist == b.Dist && a.Point.Equal(b.Point)
}

// assertTreesEqual compares got against want through all four access
// methods (KNN, range search, the incremental NN iterator, and the full
// scan) and then byte-for-byte on the live generation's data files.
func assertTreesEqual(t *testing.T, got, want *Tree, queries []vec.Point) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len %d, want %d", got.Len(), want.Len())
	}
	if got.NumPages() != want.NumPages() {
		t.Fatalf("NumPages %d, want %d", got.NumPages(), want.NumPages())
	}
	gs, ws := got.Stats(), want.Stats()
	for bits, n := range ws.BitsHistogram {
		if gs.BitsHistogram[bits] != n {
			t.Fatalf("bits=%d pages %d, want %d", bits, gs.BitsHistogram[bits], n)
		}
	}
	for qi, q := range queries {
		a := mustKNN(t, got, q, 5)
		b := mustKNN(t, want, q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %d: KNN %d results, want %d", qi, len(a), len(b))
		}
		for i := range a {
			if !sameNeighbor(a[i], b[i]) {
				t.Fatalf("query %d KNN[%d]: %+v, want %+v", qi, i, a[i], b[i])
			}
		}
		ra := mustRange(t, got, q, 0.3)
		rb := mustRange(t, want, q, 0.3)
		if len(ra) != len(rb) {
			t.Fatalf("query %d: range %d results, want %d", qi, len(ra), len(rb))
		}
		for i := range ra {
			if !sameNeighbor(ra[i], rb[i]) {
				t.Fatalf("query %d range[%d]: %+v, want %+v", qi, i, ra[i], rb[i])
			}
		}
		ia := got.NewNNIterator(got.sto.NewSession(), q)
		ib := want.NewNNIterator(want.sto.NewSession(), q)
		for i := 0; i < 8; i++ {
			na, oka := ia.Next()
			nb, okb := ib.Next()
			if oka != okb || (oka && !sameNeighbor(na, nb)) {
				t.Fatalf("query %d iterator[%d]: %+v/%v, want %+v/%v", qi, i, na, oka, nb, okb)
			}
		}
		if ia.Err() != nil || ib.Err() != nil {
			t.Fatalf("query %d iterator errs: %v / %v", qi, ia.Err(), ib.Err())
		}
	}
	assertSamePoints(t, got, want)
	for _, base := range []string{QFileName, EFileName} {
		a := rawFileBytes(t, got, genName(base, got.gen))
		b := rawFileBytes(t, want, genName(base, want.gen))
		if len(a) != len(b) {
			t.Fatalf("%s: %d bytes, want %d", base, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: byte %d differs (%#x vs %#x)", base, i, a[i], b[i])
			}
		}
	}
}

// assertSamePoints compares the full (id, point) content of both trees.
func assertSamePoints(t *testing.T, got, want *Tree) {
	t.Helper()
	gp, gi, err := got.AllPoints()
	if err != nil {
		t.Fatal(err)
	}
	wp, wi, err := want.AllPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(gp) != len(wp) {
		t.Fatalf("AllPoints %d, want %d", len(gp), len(wp))
	}
	type rec struct {
		id uint32
		p  string
	}
	key := func(pts []vec.Point, ids []uint32) []rec {
		out := make([]rec, len(ids))
		for i := range ids {
			out[i] = rec{ids[i], fmt.Sprintf("%v", pts[i])}
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].id != out[b].id {
				return out[a].id < out[b].id
			}
			return out[a].p < out[b].p
		})
		return out
	}
	g, w := key(gp, gi), key(wp, wi)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("AllPoints[%d]: id %d, want id %d", i, g[i].id, w[i].id)
		}
	}
}

func rawFileBytes(t *testing.T, tr *Tree, name string) []byte {
	t.Helper()
	f := tr.sto.File(name)
	if f == nil {
		t.Fatalf("missing file %s", name)
	}
	if f.Blocks() == 0 {
		return nil
	}
	raw, err := f.ReadRaw(0, f.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), raw...)
}

// applyInsertDeleteMix runs the same deterministic mutation stream
// against every tree in trs: batches, single inserts, and deletes of
// base points.
func applyInsertDeleteMix(t *testing.T, trs []*Tree, base []vec.Point, extra []vec.Point) {
	t.Helper()
	for _, tr := range trs {
		s := tr.sto.NewSession()
		half := len(extra) / 2
		ids := make([]uint32, half)
		for i := range ids {
			ids[i] = uint32(100000 + i)
		}
		if err := tr.InsertBatch(s, extra[:half], ids); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		for i, p := range extra[half:] {
			if err := tr.Insert(s, p, uint32(200000+i)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		for i := 0; i < len(base); i += 7 {
			if ok, err := tr.Delete(s, base[i], uint32(i)); err != nil {
				t.Fatalf("Delete %d: %v", i, err)
			} else if !ok {
				t.Fatalf("Delete %d: not found", i)
			}
		}
	}
}

// TestKillAndRecoverInsertHeavy crashes after a stream of acknowledged
// batch inserts, single inserts, and deletes; the recovered tree must be
// bit-identical to a twin that executed the same stream and never died.
func TestKillAndRecoverInsertHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	base := randPoints(r, 1500, 6)
	extra := randPoints(r, 300, 6)
	live := buildWALTree(t, base, walTestOptions())
	twin := buildWALTree(t, base, walTestOptions())
	applyInsertDeleteMix(t, []*Tree{live, twin}, base, extra)
	rec := crashRecover(t, live)
	assertTreesEqual(t, rec, twin, randPoints(r, 8, 6))

	// The recovered tree keeps accepting durable writes.
	p := randPoints(r, 1, 6)[0]
	for _, tr := range []*Tree{rec, twin} {
		if err := tr.Insert(tr.sto.NewSession(), p, 999999); err != nil {
			t.Fatalf("post-recovery insert: %v", err)
		}
	}
	assertTreesEqual(t, crashRecover(t, rec), twin, randPoints(r, 4, 6))
}

// TestKillAndRecoverDeleteHeavy drives the delete-heavy maintenance
// paths — merges ("undo the split"), a fully emptied tree, and its
// revival by later inserts — then crashes mid-stream. Replay must
// restore exactly the acknowledged prefix, bit-identical to the twin.
func TestKillAndRecoverDeleteHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	base := randPoints(r, 2500, 4)
	revived := randPoints(r, 400, 4)
	live := buildWALTree(t, base, walTestOptions())
	twin := buildWALTree(t, base, walTestOptions())
	mergedPages := 0
	for _, tr := range []*Tree{live, twin} {
		s := tr.sto.NewSession()
		before := tr.NumPages()
		// Delete 90% — triggers merges — then the rest: empty tree.
		for pass := 0; pass < 2; pass++ {
			for i := range base {
				if (i%10 == 0) != (pass == 1) {
					continue
				}
				if ok, err := tr.Delete(s, base[i], uint32(i)); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				} else if !ok {
					t.Fatalf("delete %d: not found", i)
				}
			}
			if pass == 0 {
				if after := tr.NumPages(); after >= before {
					t.Fatalf("no merges: %d -> %d pages", before, after)
				}
				mergedPages = tr.NumPages()
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("tree not empty: %d", tr.Len())
		}
		// Revive the emptied tree.
		ids := make([]uint32, len(revived))
		for i := range ids {
			ids[i] = uint32(500000 + i)
		}
		if err := tr.InsertBatch(s, revived, ids); err != nil {
			t.Fatalf("revival insert: %v", err)
		}
	}
	_ = mergedPages
	rec := crashRecover(t, live)
	assertTreesEqual(t, rec, twin, randPoints(r, 8, 4))
	for qi, q := range randPoints(r, 6, 4) {
		got := mustKNN(t, rec, q, 3)
		want := bruteKNN(revived, q, 3, vec.Euclidean)
		for i := range got {
			if diff := got[i].Dist - want[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("query %d: %f vs %f", qi, got[i].Dist, want[i])
			}
		}
	}
}

// TestKillAndRecoverTornTail simulates a crash mid-group-commit: the
// final WAL record's flush never completed, so its bytes are damaged on
// disk and its writer never got an acknowledgement. Recovery must
// truncate the torn tail — never replay it — and land on the state of
// the acknowledged prefix.
func TestKillAndRecoverTornTail(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	base := randPoints(r, 1200, 6)
	extra := randPoints(r, 120, 6)
	live := buildWALTree(t, base, walTestOptions())
	twin := buildWALTree(t, base, walTestOptions())
	applyInsertDeleteMix(t, []*Tree{live, twin}, base, extra)

	// One more insert on the live tree only; then damage its record. Each
	// commit batch starts on a fresh block, so the damage is confined to
	// this record.
	torn := randPoints(r, 1, 6)[0]
	if err := live.Insert(live.sto.NewSession(), torn, 777777); err != nil {
		t.Fatal(err)
	}
	backend := live.sto.Backend()
	bf := backend.Lookup(WALFileName)
	if bf == nil {
		t.Fatal("no WAL file")
	}
	bs := backend.Config().BlockSize
	last := bf.Blocks() - 1
	raw, err := bf.ReadBlocks(last, 1)
	if err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, bs)
	copy(blk, raw)
	blk[9] ^= 0xff // inside the CRC-covered region of the final record
	if err := bf.WriteBlocks(last, blk); err != nil {
		t.Fatal(err)
	}
	info, _, err := store.InspectWAL(backend, WALFileName)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn {
		t.Fatal("damaged tail not reported as torn")
	}

	rec := crashRecover(t, live)
	assertTreesEqual(t, rec, twin, randPoints(r, 8, 6))
	// The torn insert must be gone.
	got := mustKNN(t, rec, torn, 1)
	if len(got) == 1 && got[0].Dist == 0 && got[0].ID == 777777 {
		t.Fatal("torn (unacknowledged) insert was replayed")
	}
}

// TestKillAndRecoverAcrossCheckpoints forces frequent automatic
// checkpoints mid-stream, so recovery starts from a non-initial
// checkpoint and replays only the records past its watermark.
func TestKillAndRecoverAcrossCheckpoints(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	base := randPoints(r, 1000, 5)
	extra := randPoints(r, 260, 5)
	opt := walTestOptions()
	opt.WALCheckpointBlocks = 8 // tiny: checkpoint every few commits
	live := buildWALTree(t, base, opt)
	twin := buildWALTree(t, base, opt)
	applyInsertDeleteMix(t, []*Tree{live, twin}, base, extra)
	if live.wal.DurableLSN() == 0 {
		t.Fatal("expected a live WAL")
	}
	rec := crashRecover(t, live)
	assertTreesEqual(t, rec, twin, randPoints(r, 8, 5))
}

// TestKillAndRecoverDuringIncrementalReoptimize crashes between steps of
// an unfinished incremental reoptimization: the next generation's files
// exist but its checkpoint was never committed. Recovery must serve the
// old generation plus the WAL and delete the orphaned files.
func TestKillAndRecoverDuringIncrementalReoptimize(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	base := randPoints(r, 1500, 6)
	extra := randPoints(r, 200, 6)
	live := buildWALTree(t, base, walTestOptions())
	twin := buildWALTree(t, base, walTestOptions())
	applyInsertDeleteMix(t, []*Tree{live, twin}, base, extra)

	s := live.sto.NewSession()
	for i := 0; i < 4; i++ { // begin + three page writes, no swap
		if done, err := live.ReoptimizeStep(s); err != nil {
			t.Fatalf("step %d: %v", i, err)
		} else if done {
			t.Fatalf("step %d: finished too early", i)
		}
	}
	if !live.ReoptimizeRunning() {
		t.Fatal("reoptimize not in flight")
	}
	rec := crashRecover(t, live)
	assertTreesEqual(t, rec, twin, randPoints(r, 8, 6))
	if rec.gen != 0 {
		t.Fatalf("recovered generation %d, want 0", rec.gen)
	}
	for _, name := range rec.sto.Backend().Names() {
		if strings.Contains(name, ".g1") {
			t.Fatalf("orphaned next-generation file survived recovery: %s", name)
		}
	}
}

// TestKillAndRecoverAfterIncrementalReoptimize crashes after a completed
// incremental reoptimization plus further writes: the generation-1
// checkpoint is the recovery base, and the old generation's files are
// gone.
func TestKillAndRecoverAfterIncrementalReoptimize(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	base := randPoints(r, 1500, 6)
	extra := randPoints(r, 200, 6)
	live := buildWALTree(t, base, walTestOptions())
	twin := buildWALTree(t, base, walTestOptions())
	applyInsertDeleteMix(t, []*Tree{live, twin}, base, extra)
	for _, tr := range []*Tree{live, twin} {
		if err := tr.Reoptimize(); err != nil {
			t.Fatal(err)
		}
	}
	// Post-reoptimize writes land in generation 1 and in the fresh WAL.
	post := randPoints(r, 60, 6)
	for _, tr := range []*Tree{live, twin} {
		s := tr.sto.NewSession()
		for i, p := range post {
			if err := tr.Insert(s, p, uint32(300000+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	rec := crashRecover(t, live)
	if rec.gen != 1 {
		t.Fatalf("recovered generation %d, want 1", rec.gen)
	}
	assertTreesEqual(t, rec, twin, randPoints(r, 8, 6))
	for _, name := range rec.sto.Backend().Names() {
		if name == QFileName || name == EFileName {
			t.Fatalf("old generation file survived: %s", name)
		}
	}
}

// TestIncrementalReoptimizeConvergesToBatch: stepping with exact KNN
// queries running concurrently must land on the same page count,
// quantization levels, and answers as the batch path on an identical
// twin.
func TestIncrementalReoptimizeConvergesToBatch(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	base := randPoints(r, 2000, 8)
	extra := randPoints(r, 250, 8)
	batch := buildWALTree(t, base, walTestOptions())
	incr := buildWALTree(t, base, walTestOptions())
	applyInsertDeleteMix(t, []*Tree{batch, incr}, base, extra)

	if err := batch.Reoptimize(); err != nil {
		t.Fatal(err)
	}

	// Brute-force reference for the live content.
	var flat []vec.Point
	for i, p := range base {
		if i%7 != 0 {
			flat = append(flat, p)
		}
	}
	flat = append(flat, extra...)
	queries := randPoints(r, 5, 8)

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			for _, q := range queries {
				got, err := incr.KNN(incr.sto.NewSession(), q, 3)
				if err != nil {
					done <- err
					return
				}
				want := bruteKNN(flat, q, 3, vec.Euclidean)
				for i := range got {
					if diff := got[i].Dist - want[i]; diff > 1e-5 || diff < -1e-5 {
						done <- errors.New("concurrent query diverged from brute force")
						return
					}
				}
			}
		}
	}()
	s := incr.sto.NewSession()
	steps := 0
	for {
		fin, err := incr.ReoptimizeStep(s)
		if err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		steps++
		if fin {
			break
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("concurrent query during reoptimize: %v", err)
	}
	if steps < 3 {
		t.Fatalf("suspiciously few steps: %d", steps)
	}
	assertTreesEqual(t, incr, batch, queries)
}

// TestIncrementalReoptimizeWithConcurrentWrites interleaves inserts and
// deletes between reoptimize steps: the captured deltas must be
// re-applied at the swap, survive a crash through the WAL, and leave the
// tree exact.
func TestIncrementalReoptimizeWithConcurrentWrites(t *testing.T) {
	r := rand.New(rand.NewSource(68))
	base := randPoints(r, 1800, 6)
	mid := randPoints(r, 90, 6)
	live := buildWALTree(t, base, walTestOptions())
	s := live.sto.NewSession()

	content := map[uint32]vec.Point{}
	for i, p := range base {
		content[uint32(i)] = p
	}
	i := 0
	for {
		fin, err := live.ReoptimizeStep(s)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if fin {
			break
		}
		if i < len(mid) {
			if err := live.Insert(s, mid[i], uint32(400000+i)); err != nil {
				t.Fatal(err)
			}
			content[uint32(400000+i)] = mid[i]
		}
		if i%3 == 0 && i/3 < len(base)/2 {
			id := uint32(i / 3)
			if ok, err := live.Delete(s, base[id], id); err != nil {
				t.Fatal(err)
			} else if !ok {
				t.Fatalf("delete %d: not found", id)
			}
			delete(content, id)
		}
		i++
	}
	if err := live.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var flat []vec.Point
	for _, p := range content {
		flat = append(flat, p)
	}
	check := func(tr *Tree) {
		t.Helper()
		if tr.Len() != len(content) {
			t.Fatalf("Len %d, want %d", tr.Len(), len(content))
		}
		for qi, q := range randPoints(r, 6, 6) {
			got := mustKNN(t, tr, q, 3)
			want := bruteKNN(flat, q, 3, vec.Euclidean)
			for j := range got {
				if diff := got[j].Dist - want[j]; diff > 1e-5 || diff < -1e-5 {
					t.Fatalf("query %d: %f vs %f", qi, got[j].Dist, want[j])
				}
			}
		}
	}
	check(live)
	check(crashRecover(t, live))
}

// TestSharedScanStraddlesReoptimizeStep: a scan-sharing round in flight
// across the reoptimizer's swap step must surface index.ErrStaleScan and
// finish correctly after a bounded restart — never return a wrong
// answer. (Regression test for the generation guard under the
// incremental stepper.)
func TestSharedScanStraddlesReoptimizeStep(t *testing.T) {
	r := rand.New(rand.NewSource(69))
	pts := randPoints(r, 1600, 4)
	tr := buildWALTree(t, pts, walTestOptions())

	// Deterministic straddle: step a cursor mid-flight, run the stepper to
	// completion, and check the stale signal on the next step.
	scan := tr.NewSharedScan()
	cur := scan.KNN(tr.sto.NewSession(), pts[3], 3)
	if done, err := cur.Step(); done || err != nil {
		t.Fatalf("first step: done=%v err=%v", done, err)
	}
	s := tr.sto.NewSession()
	for {
		fin, err := tr.ReoptimizeStep(s)
		if err != nil {
			t.Fatal(err)
		}
		if fin {
			break
		}
	}
	if _, err := cur.Step(); !errors.Is(err, index.ErrStaleScan) {
		t.Fatalf("cursor step after swap: %v, want ErrStaleScan", err)
	}
	cur.Close()

	// Probabilistic straddle under race coverage: a full coordinator run
	// (driveShared restarts stale cursors, bounded at 100) races a second
	// incremental reoptimization.
	stepErr := make(chan error, 1)
	go func() {
		s := tr.sto.NewSession()
		for {
			fin, err := tr.ReoptimizeStep(s)
			if err != nil || fin {
				stepErr <- err
				return
			}
		}
	}()
	queries := randPoints(r, 6, 4)
	sessions := make([]*store.Session, len(queries))
	for i := range sessions {
		sessions[i] = tr.sto.NewSession()
	}
	results, errs := driveShared(t, tr, sessions,
		func(scan index.SharedScan, i int, s *store.Session) index.Cursor {
			return scan.KNN(s, queries[i], 3)
		})
	if err := <-stepErr; err != nil {
		t.Fatalf("reoptimize during shared scan: %v", err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("shared query %d: %v", i, errs[i])
		}
		want := bruteKNN(pts, queries[i], 3, vec.Euclidean)
		for j := range results[i] {
			if diff := results[i][j].Dist - want[j]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("shared query %d result %d: %f vs %f", i, j, results[i][j].Dist, want[j])
			}
		}
	}
}
