package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/store"
	"repro/internal/vec"
)

// TestQuickNNCorrectness drives the whole stack with testing/quick:
// random point sets of random shapes, random queries, NN must equal
// brute force.
func TestQuickNNCorrectness(t *testing.T) {
	f := func(seed int64, nSeed uint16, dSeed, kSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + int(nSeed)%2000
		d := 1 + int(dSeed)%12
		k := 1 + int(kSeed)%8
		pts := randPoints(r, n, d)
		sto := store.NewSim(store.DefaultConfig())
		tr, err := Build(sto, pts, DefaultOptions())
		if err != nil {
			return false
		}
		q := randPoints(r, 1, d)[0]
		got, err := tr.KNN(sto.NewSession(), q, k)
		if err != nil {
			return false
		}
		want := bruteKNN(pts, q, k, vec.Euclidean)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVariantEquivalence: for random workloads, every IQ-tree build
// variant must return the same k-NN distance multiset.
func TestQuickVariantEquivalence(t *testing.T) {
	f := func(seed int64, dSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + int(dSeed)%8
		pts := randPoints(r, 1200, d)
		queries := randPoints(r, 4, d)

		variants := []Options{
			DefaultOptions(),
			{Metric: vec.Euclidean, QPageBlocks: 1, Quantize: true, OptimizedIO: false},
			{Metric: vec.Euclidean, QPageBlocks: 1, Quantize: false, OptimizedIO: true},
			{Metric: vec.Euclidean, QPageBlocks: 2, Quantize: true, OptimizedIO: true},
			{Metric: vec.Euclidean, QPageBlocks: 1, Quantize: true, OptimizedIO: true, FixedBits: 4},
			{Metric: vec.Euclidean, QPageBlocks: 1, Quantize: true, OptimizedIO: true, UniformModel: true},
		}
		var ref [][]float64
		for vi, opt := range variants {
			sto := store.NewSim(store.DefaultConfig())
			tr, err := Build(sto, pts, opt)
			if err != nil {
				return false
			}
			for qi, q := range queries {
				res, err := tr.KNN(sto.NewSession(), q, 3)
				if err != nil {
					return false
				}
				ds := make([]float64, len(res))
				for i, nb := range res {
					ds[i] = nb.Dist
				}
				if vi == 0 {
					ref = append(ref, ds)
					continue
				}
				if len(ds) != len(ref[qi]) {
					return false
				}
				for i := range ds {
					if math.Abs(ds[i]-ref[qi][i]) > 1e-6 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeConsistency: range results must equal the k-NN prefix
// property — every point returned by KNN(k) within eps must also be in
// RangeSearch(eps), and counts must match brute force.
func TestQuickRangeConsistency(t *testing.T) {
	f := func(seed int64, epsSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randPoints(r, 800, 5)
		eps := 0.1 + float64(epsSeed)/256.0*0.5
		sto := store.NewSim(store.DefaultConfig())
		tr, err := Build(sto, pts, DefaultOptions())
		if err != nil {
			return false
		}
		q := randPoints(r, 1, 5)[0]
		in, err := tr.RangeSearch(sto.NewSession(), q, eps)
		if err != nil {
			return false
		}
		want := 0
		for _, p := range pts {
			if vec.Euclidean.Dist(q, p) <= eps {
				want++
			}
		}
		if len(in) != want {
			return false
		}
		seen := map[uint32]bool{}
		for _, nb := range in {
			seen[nb.ID] = true
		}
		knn, err := tr.KNN(sto.NewSession(), q, 10)
		if err != nil {
			return false
		}
		for _, nb := range knn {
			if nb.Dist <= eps-1e-9 && !seen[nb.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
