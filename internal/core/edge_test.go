package core

import (
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// TestHeavyDuplicates: many identical points must quantize, search and
// refine correctly (cells collapse to a single value; MBRs degenerate).
func TestHeavyDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var pts []vec.Point
	proto := vec.Point{0.25, 0.5, 0.75, 0.1}
	for i := 0; i < 2000; i++ {
		if i%4 == 0 {
			pts = append(pts, proto.Clone())
		} else {
			pts = append(pts, randPoints(r, 1, 4)[0])
		}
	}
	tr := buildTree(t, pts, DefaultOptions())
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := mustKNN(t, tr, proto, 10)
	if len(res) != 10 {
		t.Fatalf("%d results", len(res))
	}
	for i := 0; i < 10; i++ {
		if res[i].Dist != 0 {
			t.Fatalf("result %d at dist %f, want 0 (500 duplicates exist)", i, res[i].Dist)
		}
	}
}

// TestAllIdenticalPoints: the degenerate extreme — every point the same.
func TestAllIdenticalPoints(t *testing.T) {
	pts := make([]vec.Point, 500)
	for i := range pts {
		pts[i] = vec.Point{1, 2, 3}
	}
	tr := buildTree(t, pts, DefaultOptions())
	res := mustKNN(t, tr, vec.Point{1, 2, 3}, 5)
	if len(res) != 5 || res[4].Dist != 0 {
		t.Fatalf("results: %+v", res)
	}
	got := mustRange(t, tr, vec.Point{0, 0, 0}, 10)
	if len(got) != 500 {
		t.Fatalf("range found %d", len(got))
	}
}

// TestConstantDimension: one coordinate constant across the database
// (degenerate MBR side at every level).
func TestConstantDimension(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 3000, 5)
	for i := range pts {
		pts[i][2] = 0.5
	}
	tr := buildTree(t, pts, DefaultOptions())
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkKNN(t, tr, pts, randPoints(r, 8, 5), 3, vec.Euclidean)
}

// TestSinglePointTree and tiny trees.
func TestTinyTrees(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		pts := make([]vec.Point, n)
		for i := range pts {
			pts[i] = vec.Point{float32(i), float32(i * 2)}
		}
		tr := buildTree(t, pts, DefaultOptions())
		if tr.Len() != n {
			t.Fatalf("n=%d: Len %d", n, tr.Len())
		}
		res := mustKNN(t, tr, vec.Point{0, 0}, n)
		if len(res) != n {
			t.Fatalf("n=%d: %d results", n, len(res))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestQueryOutsideDataSpace: queries far from every point.
func TestQueryOutsideDataSpace(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 2000, 6)
	tr := buildTree(t, pts, DefaultOptions())
	q := vec.Point{100, 100, 100, 100, 100, 100}
	got := mustKNN(t, tr, q, 3)
	want := bruteKNN(pts, q, 3, vec.Euclidean)
	for i := range got {
		if diff := got[i].Dist - want[i]; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("far query: %f vs %f", got[i].Dist, want[i])
		}
	}
	if res := mustRange(t, tr, q, 1); len(res) != 0 {
		t.Fatalf("far range query found %d", len(res))
	}
}

// TestLargePageBlocks: multi-block quantized pages.
func TestLargePageBlocks(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 4000, 8)
	opt := DefaultOptions()
	opt.QPageBlocks = 4
	tr := buildTree(t, pts, opt)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkKNN(t, tr, pts, randPoints(r, 6, 8), 3, vec.Euclidean)
	// Larger pages hold more points: fewer pages than with 1-block pages.
	small := buildTree(t, pts, DefaultOptions())
	if tr.NumPages() >= small.NumPages() {
		t.Fatalf("4-block pages (%d) should be fewer than 1-block pages (%d)",
			tr.NumPages(), small.NumPages())
	}
}

// TestManhattanMetricEndToEnd exercises the third supported metric.
func TestManhattanMetricEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 1500, 6)
	opt := DefaultOptions()
	opt.Metric = vec.Manhattan
	tr := buildTree(t, pts, opt)
	checkKNN(t, tr, pts, randPoints(r, 6, 6), 3, vec.Manhattan)
}

// TestHighDimensionalBuild sanity-checks a dimensionality above the
// paper's range.
func TestHighDimensionalBuild(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 1500, 40)
	tr := buildTree(t, pts, DefaultOptions())
	checkKNN(t, tr, pts, randPoints(r, 4, 40), 2, vec.Euclidean)
}

// TestDeleteNonexistent covers the negative paths of Delete.
func TestDeleteNonexistent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 500, 3)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()
	if ok, err := tr.Delete(s, vec.Point{5, 5, 5}, 0); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("deleted a point outside every MBR")
	}
	if ok, err := tr.Delete(s, pts[0], 99999); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("deleted with a wrong id")
	}
	if ok, err := tr.Delete(s, vec.Point{1, 2}, 0); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("deleted with a wrong dimension")
	}
	if tr.Len() != 500 {
		t.Fatal("failed deletes changed Len")
	}
}

// TestSessionIsolation: concurrent sessions on one disk do not interfere
// with each other's accounting.
func TestSessionIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 2000, 8)
	tr := buildTree(t, pts, DefaultOptions())
	q := randPoints(r, 1, 8)[0]

	s1 := tr.sto.NewSession()
	if _, err := tr.KNN(s1, q, 1); err != nil {
		t.Fatal(err)
	}
	first := s1.Stats

	// Run the same query on many parallel sessions.
	done := make(chan store.Stats, 8)
	for i := 0; i < 8; i++ {
		go func() {
			s := tr.sto.NewSession()
			if _, err := tr.KNN(s, q, 1); err != nil {
				t.Error(err)
			}
			done <- s.Stats
		}()
	}
	for i := 0; i < 8; i++ {
		st := <-done
		if st != first {
			t.Fatalf("session stats diverged: %+v vs %+v", st, first)
		}
	}
}

// TestFixedBitsAblation: the fixed-level variant must stay exact and use
// exactly one quantization level.
func TestFixedBitsAblation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 3000, 8)
	for _, bits := range []int{1, 2, 4, 8} {
		opt := DefaultOptions()
		opt.FixedBits = bits
		tr := buildTree(t, pts, opt)
		st := tr.Stats()
		if len(st.BitsHistogram) != 1 || st.BitsHistogram[bits] == 0 {
			t.Fatalf("bits=%d: histogram %v", bits, st.BitsHistogram)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		checkKNN(t, tr, pts, randPoints(r, 4, 8), 2, vec.Euclidean)
	}
}

// TestBufferLimitedRangeSearch: a capped read buffer must not change
// results, only the fetch schedule.
func TestBufferLimitedRangeSearch(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	pts := randPoints(r, 3000, 5)
	opt := DefaultOptions()
	opt.MaxBufferBlocks = 2
	capped := buildTree(t, pts, opt)
	free := buildTree(t, pts, DefaultOptions())
	q := randPoints(r, 1, 5)[0]
	eps := 0.4

	sCap := capped.sto.NewSession()
	gotCap, err := capped.RangeSearch(sCap, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	sFree := free.sto.NewSession()
	gotFree, err := free.RangeSearch(sFree, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCap) != len(gotFree) {
		t.Fatalf("capped %d results vs %d", len(gotCap), len(gotFree))
	}
	// The capped variant cannot read longer runs than its buffer; with
	// many candidate pages it needs at least as many read operations.
	if sCap.Stats.Reads < sFree.Stats.Reads {
		t.Fatalf("capped reads %d < uncapped %d", sCap.Stats.Reads, sFree.Stats.Reads)
	}
}

func TestDescribePages(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 3000, 6)
	tr := buildTree(t, pts, DefaultOptions())
	rows := tr.DescribePages()
	if len(rows) != tr.NumPages() {
		t.Fatalf("%d rows, %d pages", len(rows), tr.NumPages())
	}
	total := 0
	for _, row := range rows {
		total += row.Count
		if row.Bits < 1 || row.Bits > 32 || row.Volume < 0 {
			t.Fatalf("bad row: %+v", row)
		}
	}
	if total != tr.Len() {
		t.Fatalf("row counts sum to %d, want %d", total, tr.Len())
	}
}

// TestMergeOnDelete: heavy deletion should trigger the paper's
// "undo the split" maintenance, shrinking the live page count.
func TestMergeOnDelete(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts := randPoints(r, 4000, 4)
	tr := buildTree(t, pts, DefaultOptions())
	before := tr.NumPages()
	s := tr.sto.NewSession()
	var remaining []vec.Point
	for i, p := range pts {
		if i%10 != 0 {
			if ok, err := tr.Delete(s, p, uint32(i)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			} else if !ok {
				t.Fatalf("delete %d failed", i)
			}
		} else {
			remaining = append(remaining, p)
		}
	}
	after := tr.NumPages()
	if after >= before {
		t.Fatalf("pages did not shrink after 90%% deletion: %d -> %d", before, after)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range randPoints(r, 6, 4) {
		got := mustKNN(t, tr, q, 3)
		want := bruteKNN(remaining, q, 3, vec.Euclidean)
		for i := range got {
			if diff := got[i].Dist - want[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("query %d: %f vs %f", qi, got[i].Dist, want[i])
			}
		}
	}
}

// TestCostDecomposition: the per-file session stats decompose an IQ-tree
// query into the paper's three cost components.
func TestCostDecomposition(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := randPoints(r, 5000, 12)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()
	if _, err := tr.KNN(s, randPoints(r, 1, 12)[0], 1); err != nil {
		t.Fatal(err)
	}

	t1 := s.FileStats(DirFileName)
	t2 := s.FileStats(QFileName)
	t3 := s.FileStats(EFileName)
	if t1.BlocksRead == 0 || t1.Seeks != 1 {
		t.Fatalf("T1st: %+v", t1)
	}
	if t2.BlocksRead == 0 {
		t.Fatalf("T2nd: %+v", t2)
	}
	sum := t1.Seeks + t2.Seeks + t3.Seeks
	if sum != s.Stats.Seeks {
		t.Fatalf("per-file seeks %d != total %d", sum, s.Stats.Seeks)
	}
	blocks := t1.BlocksRead + t2.BlocksRead + t3.BlocksRead
	if blocks != s.Stats.BlocksRead {
		t.Fatalf("per-file blocks %d != total %d", blocks, s.Stats.BlocksRead)
	}
	if s.FileStats("nonexistent").Reads != 0 {
		t.Fatal("untouched file should have zero stats")
	}
}
