package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// Incremental reoptimization (DESIGN.md §13). The stop-the-world rebuild
// is decomposed into steps that overlap with queries and updates:
//
//	begin:  pin the current snapshot and start capturing logical deltas
//	        (under t.mu, so the pin and the capture marker are atomic
//	        with respect to writers), then plan the new layout lock-free
//	        from the pinned snapshot and create generation gen+1 files.
//	middle: write one planned page into the new generation's files —
//	        invisible to queries, which keep serving the old generation —
//	        and repair at most one quarantined live page.
//	final:  under world.Lock (the only excluding step), swap the file
//	        pointers to the new generation, re-apply the captured deltas
//	        through the normal apply path, publish, and (in WAL mode)
//	        checkpoint so the swap is the durable commit point. Old
//	        generation files are removed afterwards.
//
// Snapshot correctness: queries pin epochs of the old generation and
// hold world.RLock for their whole duration, so the final swap cannot
// run under them; once it has run, reoptGen invalidates outstanding
// iterators/scans (ErrStaleIterator / index.ErrStaleScan) instead of
// letting them read repositioned pages.

var (
	metricReoptSteps = obs.Default().Counter("reopt.steps")
	metricReoptPages = obs.Default().Counter("reopt.pages_requantized")
)

// reoptState is one in-flight incremental reoptimization. The stepper
// (serialized by t.reoptMu) owns every field except deltas, which
// writers append to under t.mu.
type reoptState struct {
	plan    []planPage
	next    int             // next plan index to write
	entries []page.DirEntry // written pages, new-generation positions
	grids   []quantize.Grid
	deltas  []mutOp // mutations since the pin; guarded by t.mu

	gen          uint32 // the generation being built
	qFile, eFile *store.File

	n         int
	dataSpace vec.MBR
	model     costmodel.Model
}

// ReoptimizeRunning reports whether an incremental reoptimization is in
// flight (begun but not yet finished or aborted).
func (t *Tree) ReoptimizeRunning() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reopt != nil
}

// ReoptimizeStep advances the incremental reoptimization by one bounded
// unit of work and reports whether the run completed. The first call
// begins a run (pin + plan); each following call re-quantizes one
// partition into the next generation's files and drains at most one
// quarantined page; the call after the last partition performs the swap.
// I/O is charged to s. Steps may interleave freely with queries and
// updates; concurrent callers serialize on an internal mutex.
func (t *Tree) ReoptimizeStep(s *store.Session) (done bool, err error) {
	t.reoptMu.Lock()
	defer t.reoptMu.Unlock()
	metricReoptSteps.Inc()
	if t.reopt == nil {
		return false, t.reoptBegin()
	}
	if _, err := t.repairOne(s); err != nil {
		return false, err
	}
	r := t.reopt
	if r.next < len(r.plan) {
		pp := r.plan[r.next]
		e, g := t.writePlanPage(r.qFile, r.eFile, pp)
		if err := t.sto.Err(); err != nil {
			t.reoptAbort()
			return false, err
		}
		r.entries = append(r.entries, e)
		r.grids = append(r.grids, g)
		r.next++
		metricReoptPages.Inc()
		return false, nil
	}
	if err := t.reoptFinish(s); err != nil {
		return false, err
	}
	return true, nil
}

// reoptBegin pins the current state and computes the new layout. Caller
// holds t.reoptMu.
func (t *Tree) reoptBegin() error {
	t.world.RLock()
	defer t.world.RUnlock()
	// Pin and arm delta capture atomically with respect to writers.
	t.mu.Lock()
	pinned := t.load()
	r := &reoptState{gen: t.gen + 1}
	t.reopt = r
	t.mu.Unlock()
	// Plan lock-free against the pinned snapshot: copy-on-write keeps
	// its pages readable while writers publish newer epochs (those
	// mutations arrive as deltas).
	pts, ids, err := t.allPoints(pinned)
	if err != nil {
		t.reoptAbort()
		return err
	}
	if len(pts) == 0 {
		t.reoptAbort()
		return ErrEmptyTree
	}
	msn := &snapshot{n: len(pts), dataSpace: vec.MBROf(pts), model: pinned.model}
	// The pinned data space may exceed the union of live MBRs (it never
	// shrinks); keep it so replanned decisions match the live model's.
	msn.dataSpace.ExtendMBR(pinned.dataSpace)
	msn.model.N = len(pts)
	msn.model.DataSpace = msn.dataSpace
	b := newBuilder(t, msn, pts)
	b.ids = ids
	r.plan = b.plan(b.frontier())
	r.n = len(pts)
	r.dataSpace = msn.dataSpace
	r.model = msn.model
	if r.qFile, err = t.sto.NewFile(genName(QFileName, r.gen)); err != nil {
		t.reoptAbort()
		return err
	}
	if r.eFile, err = t.sto.NewFile(genName(EFileName, r.gen)); err != nil {
		t.reoptAbort()
		return err
	}
	return nil
}

// reoptAbort tears down an in-flight run: capture stops, partially
// written next-generation files are removed. Caller holds t.reoptMu.
func (t *Tree) reoptAbort() {
	t.mu.Lock()
	r := t.reopt
	t.reopt = nil
	t.mu.Unlock()
	if r == nil {
		return
	}
	if r.qFile != nil {
		t.sto.Remove(r.qFile.Name())
	}
	if r.eFile != nil {
		t.sto.Remove(r.eFile.Name())
	}
}

// reoptFinish swaps the tree to the freshly built generation. The only
// step that excludes queries and writers; in WAL mode the generation's
// first checkpoint record is the durable commit point of the swap (a
// crash before it recovers the old generation plus the WAL, a crash
// after it the new one).
func (t *Tree) reoptFinish(s *store.Session) error {
	t.world.Lock()
	defer t.world.Unlock()
	r := t.reopt
	cur := t.load()

	sn := &snapshot{
		epoch:     cur.epoch + 1,
		n:         r.n,
		dataSpace: r.dataSpace.Clone(),
		model:     r.model,
	}
	sn.model.DataSpace = sn.dataSpace
	for i, e := range r.entries {
		idx := sn.appendEntry()
		sn.entries[idx] = e
		sn.grids[idx] = r.grids[i]
		sn.setOwner(int(e.QPos), idx)
	}

	// Swap the file pointers first: delta re-application and every later
	// write lands in the new generation. Writers are excluded (they need
	// world.RLock), so the swap is race-free.
	oldQ, oldE, oldGen := t.qFile, t.eFile, t.gen
	oldCkpt := t.ckptLog
	t.qFile, t.eFile, t.gen = r.qFile, r.eFile, r.gen
	t.mu.Lock()
	t.reopt = nil // stop delta capture; r.deltas is complete
	t.mu.Unlock()
	rollback := func() {
		t.qFile, t.eFile, t.gen = oldQ, oldE, oldGen
		t.ckptLog = oldCkpt
		t.sto.Remove(r.qFile.Name())
		t.sto.Remove(r.eFile.Name())
	}

	for _, op := range r.deltas {
		if err := t.applyMutOp(s, sn, op); err != nil {
			rollback()
			return fmt.Errorf("core: reoptimize delta replay: %w", err)
		}
	}
	if err := t.rewriteDirectory(sn); err != nil {
		rollback()
		return err
	}
	if err := t.sto.Err(); err != nil {
		rollback()
		return err
	}
	if t.wal != nil {
		nl, err := store.CreateWAL(t.sto.Backend(), ckptLogName(t.gen))
		if err != nil {
			rollback()
			return err
		}
		t.ckptLog = nl
		if err := t.checkpointCommit(sn); err != nil {
			// The new checkpoint log never became authoritative; removing
			// it makes the old generation's log the newest again.
			t.sto.Remove(nl.Name())
			rollback()
			return err
		}
	}
	// Quarantined positions referred to the old generation's file.
	t.clearQuarantine()
	t.publish(sn)
	t.reoptGen.Add(1)
	// The old generation is garbage now. In WAL mode the new checkpoint
	// is durable, so recovery no longer needs these files.
	t.sto.Remove(oldQ.Name())
	t.sto.Remove(oldE.Name())
	if oldCkpt != nil && t.wal != nil {
		t.sto.Remove(oldCkpt.Name())
	}
	if t.wal != nil {
		// Best-effort: reset the mutation log tail (checkpointCommit
		// already covered every buffered record).
		if err := t.wal.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// repairOne rewrites one quarantined live page from its exact shadow —
// the incremental counterpart of Repair, giving every reoptimize step a
// bounded amount of quarantine draining. Returns whether a page was
// repaired.
func (t *Tree) repairOne(s *store.Session) (bool, error) {
	if len(t.QuarantinedPages()) == 0 {
		return false, nil
	}
	t.world.RLock()
	defer t.world.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	sn := t.load().clone()
	for i := range sn.entries {
		if sn.free[i] || !t.isQuarantined(int(sn.entries[i].QPos)) {
			continue
		}
		e := sn.entries[i]
		if int(e.Bits) == quantize.ExactBits {
			return false, unrecoverablePage(int(e.QPos), i, nil)
		}
		pts, ids, err := t.readPagePoints(s, sn, i)
		if err != nil {
			return false, err
		}
		t.rewritePage(s, sn, i, pts, ids, int(e.Bits))
		if err := t.rewriteDirectory(sn); err != nil {
			return false, err
		}
		if err := t.sto.Err(); err != nil {
			return false, err
		}
		t.publish(sn)
		metricRepairedPages.Inc()
		return true, nil
	}
	return false, nil
}

// Checkpoint makes the current state durable and restarts the mutation
// log: data files are fsynced, a checkpoint record (embedding the
// directory and data-file extents) is appended to the checkpoint log and
// fsynced, and the WAL restarts empty. A no-op without WAL mode.
func (t *Tree) Checkpoint() error {
	if t.wal == nil {
		return nil
	}
	t.world.RLock()
	defer t.world.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpoint(t.load())
}

// checkpoint persists sn as the recovery base and resets the WAL.
// Callers hold t.mu (or otherwise exclude writers), so the (snapshot,
// extents, LSN watermark) triple is consistent.
func (t *Tree) checkpoint(sn *snapshot) error {
	if err := t.checkpointCommit(sn); err != nil {
		return err
	}
	return t.wal.Reset()
}

// checkpointCommit writes and fsyncs the checkpoint record without
// resetting the WAL — the durable commit point. Split from checkpoint so
// the reoptimize swap can roll back cleanly on failure: until the record
// is durable nothing irreversible has happened, and the WAL reset
// afterwards is safe in any outcome (replay filters LSNs the checkpoint
// covers).
func (t *Tree) checkpointCommit(sn *snapshot) error {
	if err := t.sto.Backend().Sync(); err != nil {
		return fmt.Errorf("core: checkpoint sync: %w", err)
	}
	rec := checkpointRecord{
		gen:       t.gen,
		lsn:       t.wal.AppendedLSN(),
		n:         sn.n,
		qBlocks:   t.qFile.Blocks(),
		eBlocks:   t.eFile.Blocks(),
		dataSpace: sn.dataSpace,
		entries:   sn.entries,
	}
	lsn := t.ckptLog.Append(0, encodeCheckpoint(rec, t.dim))
	if err := t.ckptLog.Commit(lsn); err != nil {
		return fmt.Errorf("core: checkpoint commit: %w", err)
	}
	return nil
}
