package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

func bruteKNN(pts []vec.Point, q vec.Point, k int, met vec.Metric) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = met.Dist(q, p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func buildTree(t *testing.T, pts []vec.Point, opt Options) *Tree {
	t.Helper()
	sto := store.NewSim(store.DefaultConfig())
	tr, err := Build(sto, pts, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

// mustKNN runs a KNN query on a fresh session and fails the test on error.
func mustKNN(t *testing.T, tr *Tree, q vec.Point, k int) []vec.Neighbor {
	t.Helper()
	res, err := tr.KNN(tr.sto.NewSession(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustRange runs a range query on a fresh session and fails the test on error.
func mustRange(t *testing.T, tr *Tree, q vec.Point, eps float64) []vec.Neighbor {
	t.Helper()
	res, err := tr.RangeSearch(tr.sto.NewSession(), q, eps)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkKNN(t *testing.T, tr *Tree, pts []vec.Point, queries []vec.Point, k int, met vec.Metric) {
	t.Helper()
	for qi, q := range queries {
		s := tr.sto.NewSession()
		got, err := tr.KNN(s, q, k)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := bruteKNN(pts, q, k, met)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-5 {
				t.Fatalf("query %d result %d: dist %.8f, want %.8f", qi, i, got[i].Dist, want[i])
			}
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Dist < got[b].Dist }) {
			t.Fatalf("query %d: results not sorted", qi)
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum} {
		for _, d := range []int{2, 8, 16} {
			r := rand.New(rand.NewSource(42))
			pts := randPoints(r, 3000, d)
			opt := DefaultOptions()
			opt.Metric = met
			tr := buildTree(t, pts, opt)
			checkKNN(t, tr, pts, randPoints(r, 15, d), 5, met)
		}
	}
}

func TestKNNAblationVariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 2500, 8)
	queries := randPoints(r, 10, 8)
	for _, quant := range []bool{true, false} {
		for _, optIO := range []bool{true, false} {
			opt := DefaultOptions()
			opt.Quantize = quant
			opt.OptimizedIO = optIO
			tr := buildTree(t, pts, opt)
			checkKNN(t, tr, pts, queries, 3, vec.Euclidean)
		}
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 2000, 6)
	tr := buildTree(t, pts, DefaultOptions())
	for qi, q := range randPoints(r, 10, 6) {
		eps := 0.3
		s := tr.sto.NewSession()
		got, err := tr.RangeSearch(s, q, eps)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		var want int
		for _, p := range pts {
			if vec.Euclidean.Dist(q, p) <= eps {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), want)
		}
		for _, nb := range got {
			if nb.Dist > eps {
				t.Fatalf("query %d: result at dist %f > eps", qi, nb.Dist)
			}
			if !pts[nb.ID].Equal(nb.Point) {
				t.Fatalf("query %d: id %d coordinates mismatch", qi, nb.ID)
			}
		}
	}
}

func TestInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 1000, 4)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()

	extra := randPoints(r, 200, 4)
	all := append(append([]vec.Point{}, pts...), extra...)
	for i, p := range extra {
		if err := tr.Insert(s, p, uint32(len(pts)+i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != len(all) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(all))
	}
	checkKNN(t, tr, all, randPoints(r, 10, 4), 4, vec.Euclidean)

	// Delete every third point and re-verify.
	var remaining []vec.Point
	for i, p := range all {
		if i%3 == 0 {
			found, err := tr.Delete(s, p, uint32(i))
			if err != nil {
				t.Fatalf("Delete %d: %v", i, err)
			}
			if !found {
				t.Fatalf("Delete %d failed", i)
			}
		} else {
			remaining = append(remaining, p)
		}
	}
	if tr.Len() != len(remaining) {
		t.Fatalf("Len after delete = %d, want %d", tr.Len(), len(remaining))
	}
	for qi, q := range randPoints(r, 10, 4) {
		s := tr.sto.NewSession()
		got, err := tr.KNN(s, q, 3)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := bruteKNN(remaining, q, 3, vec.Euclidean)
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-5 {
				t.Fatalf("query %d after delete: dist %.8f, want %.8f", qi, got[i].Dist, want[i])
			}
		}
	}
}

func TestAllPointsRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 1500, 10)
	tr := buildTree(t, pts, DefaultOptions())
	got, ids, err := tr.AllPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("AllPoints returned %d points, want %d", len(got), len(pts))
	}
	seen := make(map[uint32]bool)
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if !pts[id].Equal(got[i]) {
			t.Fatalf("id %d: coordinates mismatch", id)
		}
	}
}

func TestStats(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 5000, 16)
	tr := buildTree(t, pts, DefaultOptions())
	st := tr.Stats()
	if st.Points != 5000 {
		t.Fatalf("Points = %d", st.Points)
	}
	if st.Pages == 0 || st.QuantizedBytes == 0 || st.DirectoryBytes == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	var total int
	for _, c := range st.BitsHistogram {
		total += c
	}
	if total != st.Pages {
		t.Fatalf("bits histogram sums to %d, want %d pages", total, st.Pages)
	}
	if st.PredictedCost <= 0 {
		t.Fatalf("predicted cost %f", st.PredictedCost)
	}
}
