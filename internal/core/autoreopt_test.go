package core

import (
	"math/rand"
	"testing"
)

// TestAutoReoptimizeGarbageTrigger: with the garbage trigger armed, a
// long insert stream must (a) start at least one automatic run, (b)
// actually complete a compaction — observable as the garbage ratio
// falling back near zero after a trigger — and (c) leave the tree's
// contents identical to a twin that ran without the policy.
func TestAutoReoptimizeGarbageTrigger(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := randPoints(r, 500, 6)
	extra := randPoints(r, 600, 6)

	opt := DefaultOptions()
	opt.AutoReoptimize = AutoReoptPolicy{GarbageRatio: 0.4}
	auto := buildTree(t, base, opt)
	twin := buildTree(t, base, DefaultOptions())

	before := metricAutoReoptTriggers.Value()
	for i, p := range extra {
		for _, tr := range []*Tree{auto, twin} {
			if err := tr.Insert(tr.sto.NewSession(), p, uint32(100000+i)); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
	}
	if metricAutoReoptTriggers.Value() == before {
		t.Fatalf("garbage trigger never fired (final ratio %v)", auto.GarbageRatio())
	}
	// reoptGen counts completed swaps: at least one automatic run must
	// have finished. (The ratio itself never reaches zero under a write
	// stream — the delta re-apply at every swap immediately creates new
	// garbage — so bounded-versus-unbounded is the observable difference.)
	if auto.reoptGen.Load() == 0 {
		t.Fatalf("no automatic run completed (final ratio %v, running %v)",
			auto.GarbageRatio(), auto.ReoptimizeRunning())
	}
	if ag, tg := auto.GarbageRatio(), twin.GarbageRatio(); ag >= tg {
		t.Fatalf("policy did not bound garbage: auto %v, policy-free twin %v", ag, tg)
	}

	// Same logical contents as the policy-free twin.
	assertSamePoints(t, auto, twin)
	for _, q := range randPoints(r, 10, 6) {
		a, b := mustKNN(t, auto, q, 5), mustKNN(t, twin, q, 5)
		if len(a) != len(b) {
			t.Fatalf("KNN %d results, twin %d", len(a), len(b))
		}
		for i := range a {
			if !sameNeighbor(a[i], b[i]) {
				t.Fatalf("KNN[%d]: %+v, twin %+v", i, a[i], b[i])
			}
		}
	}
}

// TestAutoReoptimizeQuarantineTrigger: quarantine pressure alone (no
// garbage threshold) must start a run, and driving the stepper through
// further writes must eventually rewrite the damaged page and clear the
// quarantine set — the self-healing single-replica loop.
func TestAutoReoptimizeQuarantineTrigger(t *testing.T) {
	opt := DefaultOptions()
	opt.AutoReoptimize = AutoReoptPolicy{QuarantineMax: 1}
	sto, tr, _ := buildCheckedTree(t, 3, 2000, 8, opt)
	r := rand.New(rand.NewSource(4))

	comp := compressedPages(tr)
	if len(comp) == 0 {
		t.Fatal("no compressed pages to corrupt")
	}
	flipQPageBit(t, sto, comp[0], tr.Options().QPageBlocks)
	// Queries detect the corruption and quarantine the page.
	for _, q := range randPoints(r, 30, 8) {
		if _, err := tr.KNN(sto.NewSession(), q, 5); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.QuarantinedPages()) == 0 {
		t.Fatal("corruption did not quarantine any page")
	}

	// Each write advances the policy's run by one step; enough of them
	// must complete the rebuild and clear the quarantine.
	extra := randPoints(r, 300, 8)
	cleared := false
	for i, p := range extra {
		if err := tr.Insert(sto.NewSession(), p, uint32(500000+i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if len(tr.QuarantinedPages()) == 0 && !tr.ReoptimizeRunning() {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatalf("quarantine never cleared: %d pages still quarantined, running=%v",
			len(tr.QuarantinedPages()), tr.ReoptimizeRunning())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoReoptimizeDisabledByDefault: the zero policy must never step.
func TestAutoReoptimizeDisabledByDefault(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	base := randPoints(r, 300, 4)
	tr := buildTree(t, base, DefaultOptions())
	for i, p := range randPoints(r, 200, 4) {
		if err := tr.Insert(tr.sto.NewSession(), p, uint32(700000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.ReoptimizeRunning() {
		t.Fatal("zero policy started a reoptimization")
	}
	if g := tr.GarbageRatio(); g <= 0 {
		t.Fatalf("insert stream produced no garbage (ratio %v) — the trigger tests assume it does", g)
	}
}
