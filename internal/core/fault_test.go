package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// buildCheckedTree builds a tree on a checksummed sim store (no cache,
// so every read verifies against the backend).
func buildCheckedTree(t *testing.T, seed int64, n, dim int, opt Options) (*store.Store, *Tree, []vec.Point) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := randPoints(r, n, dim)
	sto := store.NewSim(store.DefaultConfig())
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	tr, err := Build(sto, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	return sto, tr, pts
}

// flipQPageBit flips one bit of the quantized file's page at physical
// position qpos, directly on the backend — at-rest corruption beneath
// the checksum layer.
func flipQPageBit(t *testing.T, sto *store.Store, qpos, blocksPerPage int) {
	t.Helper()
	bf := sto.Backend().Lookup(QFileName)
	if bf == nil {
		t.Fatal("no quantized file")
	}
	pos := qpos * blocksPerPage
	data, err := bf.ReadBlocks(pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x10
	if err := bf.WriteBlocks(pos, mut); err != nil {
		t.Fatal(err)
	}
}

// compressedPages returns the physical positions of live pages that
// have an exact (level-3) shadow, i.e. are not stored at 32 bits.
func compressedPages(tr *Tree) []int {
	var out []int
	for _, row := range tr.DescribePages() {
		if row.Bits != quantize.ExactBits {
			out = append(out, row.QPos)
		}
	}
	return out
}

// TestQuarantineFallbackKNN is the tentpole contract: after at-rest
// corruption of compressed quantized pages, KNN results are
// bit-identical to the clean run — the damaged pages are quarantined
// and answered from their exact shadow — and the degradation shows up
// in the trace and metrics.
func TestQuarantineFallbackKNN(t *testing.T) {
	sto, tr, _ := buildCheckedTree(t, 1, 2500, 8, DefaultOptions())
	r := rand.New(rand.NewSource(2))
	queries := randPoints(r, 20, 8)

	type answer struct {
		ids   []uint32
		dists []float64
	}
	clean := make([]answer, len(queries))
	for i, q := range queries {
		res, err := tr.KNN(sto.NewSession(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range res {
			clean[i].ids = append(clean[i].ids, nb.ID)
			clean[i].dists = append(clean[i].dists, nb.Dist)
		}
	}

	comp := compressedPages(tr)
	if len(comp) < 3 {
		t.Fatalf("only %d compressed pages; test needs at least 3", len(comp))
	}
	for _, qpos := range comp[:3] {
		flipQPageBit(t, sto, qpos, tr.Options().QPageBlocks)
	}

	degradedTotal := 0
	for i, q := range queries {
		trace := obs.NewQueryTrace("")
		res, err := tr.KNNTrace(sto.NewSession(), q, 5, trace)
		if err != nil {
			t.Fatalf("query %d after corruption: %v", i, err)
		}
		if len(res) != len(clean[i].ids) {
			t.Fatalf("query %d: %d results, clean run had %d", i, len(res), len(clean[i].ids))
		}
		for j, nb := range res {
			if nb.ID != clean[i].ids[j] || nb.Dist != clean[i].dists[j] {
				t.Fatalf("query %d rank %d: got (%d, %v), clean run (%d, %v) — degraded read was not exact",
					i, j, nb.ID, nb.Dist, clean[i].ids[j], clean[i].dists[j])
			}
		}
		degradedTotal += trace.DegradedReads
	}
	if degradedTotal == 0 {
		t.Fatal("no query paid a degraded read; corruption was not exercised")
	}
	if len(tr.QuarantinedPages()) == 0 {
		t.Fatal("corrupt pages were not quarantined")
	}
	if len(tr.DegradedEntries()) == 0 {
		t.Fatal("no live entries report as degraded")
	}
}

// TestQuarantineFallbackRangeWindow: the range and window scans take
// the same exact fallback.
func TestQuarantineFallbackRangeWindow(t *testing.T) {
	sto, tr, _ := buildCheckedTree(t, 3, 1800, 6, DefaultOptions())
	r := rand.New(rand.NewSource(4))
	queries := randPoints(r, 10, 6)
	const eps = 0.5
	w := vec.MBR{
		Lo: vec.Point{0.2, 0.2, 0.2, 0.2, 0.2, 0.2},
		Hi: vec.Point{0.7, 0.7, 0.7, 0.7, 0.7, 0.7},
	}

	cleanRange := make([][]vec.Neighbor, len(queries))
	for i, q := range queries {
		res, err := tr.RangeSearch(sto.NewSession(), q, eps)
		if err != nil {
			t.Fatal(err)
		}
		cleanRange[i] = res
	}
	cleanWin, err := tr.WindowQuery(sto.NewSession(), w)
	if err != nil {
		t.Fatal(err)
	}

	comp := compressedPages(tr)
	if len(comp) < 2 {
		t.Fatalf("only %d compressed pages", len(comp))
	}
	flipQPageBit(t, sto, comp[0], tr.Options().QPageBlocks)
	flipQPageBit(t, sto, comp[len(comp)/2], tr.Options().QPageBlocks)

	sameSet := func(a, b []vec.Neighbor) bool {
		if len(a) != len(b) {
			return false
		}
		seen := make(map[uint32]float64, len(a))
		for _, nb := range a {
			seen[nb.ID] = nb.Dist
		}
		for _, nb := range b {
			d, ok := seen[nb.ID]
			if !ok || d != nb.Dist {
				return false
			}
		}
		return true
	}

	for i, q := range queries {
		res, err := tr.RangeSearch(sto.NewSession(), q, eps)
		if err != nil {
			t.Fatalf("range %d after corruption: %v", i, err)
		}
		if !sameSet(cleanRange[i], res) {
			t.Fatalf("range %d: degraded result set differs from clean run", i)
		}
	}
	win, err := tr.WindowQuery(sto.NewSession(), w)
	if err != nil {
		t.Fatalf("window after corruption: %v", err)
	}
	if !sameSet(cleanWin, win) {
		t.Fatal("window: degraded result set differs from clean run")
	}
	if len(tr.QuarantinedPages()) == 0 {
		t.Fatal("range scans did not quarantine the damaged pages")
	}
}

// TestExactPageCorruptionIsTyped: a corrupt 32-bit (exact-mode) page
// has no level-3 shadow; queries touching it must fail with a typed
// error wrapping ErrUnrecoverable — never return silently wrong
// results.
func TestExactPageCorruptionIsTyped(t *testing.T) {
	opt := DefaultOptions()
	opt.Quantize = false // every page stores exact 32-bit data
	sto, tr, _ := buildCheckedTree(t, 5, 600, 4, opt)

	rows := tr.DescribePages()
	if rows[0].Bits != quantize.ExactBits {
		t.Fatalf("expected exact-mode pages, got %d bits", rows[0].Bits)
	}
	for _, row := range rows {
		flipQPageBit(t, sto, row.QPos, tr.Options().QPageBlocks)
	}
	r := rand.New(rand.NewSource(6))
	sawUnrecoverable := false
	for _, q := range randPoints(r, 10, 4) {
		_, err := tr.KNN(sto.NewSession(), q, 3)
		if err == nil {
			t.Fatal("KNN over fully corrupt exact-mode pages must fail")
		}
		if errors.Is(err, ErrUnrecoverable) {
			sawUnrecoverable = true
		}
	}
	if !sawUnrecoverable {
		t.Fatal("no query surfaced ErrUnrecoverable")
	}
	if _, err := tr.RangeSearch(sto.NewSession(), randPoints(r, 1, 4)[0], 0.8); err == nil {
		t.Fatal("range over corrupt exact-mode pages must fail")
	}
}

// TestRepairRewritesQuarantinedPages: Repair re-quantizes every
// quarantined page from its exact shadow; afterwards queries take the
// normal path again (no degraded reads) and results stay exact.
func TestRepairRewritesQuarantinedPages(t *testing.T) {
	sto, tr, pts := buildCheckedTree(t, 7, 2000, 6, DefaultOptions())
	r := rand.New(rand.NewSource(8))
	queries := randPoints(r, 10, 6)

	comp := compressedPages(tr)
	if len(comp) < 2 {
		t.Fatalf("only %d compressed pages", len(comp))
	}
	flipQPageBit(t, sto, comp[0], tr.Options().QPageBlocks)
	flipQPageBit(t, sto, comp[1], tr.Options().QPageBlocks)

	// Queries discover and quarantine the damage.
	checkKNN(t, tr, pts, queries, 4, vec.Euclidean)
	quarantined := len(tr.QuarantinedPages())
	if quarantined == 0 {
		t.Fatal("no pages quarantined")
	}

	repaired, err := tr.Repair(sto.NewSession())
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if repaired == 0 {
		t.Fatal("repair fixed nothing")
	}
	if got := tr.DegradedEntries(); len(got) != 0 {
		t.Fatalf("entries still degraded after repair: %v", got)
	}
	// Repaired pages serve without degraded reads.
	for i, q := range queries {
		trace := obs.NewQueryTrace("")
		if _, err := tr.KNNTrace(sto.NewSession(), q, 4, trace); err != nil {
			t.Fatalf("query %d after repair: %v", i, err)
		}
		if trace.DegradedReads != 0 {
			t.Fatalf("query %d still pays degraded reads after repair", i)
		}
	}
	checkKNN(t, tr, pts, queries, 4, vec.Euclidean)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Repair is idempotent over the healed tree.
	if n, err := tr.Repair(sto.NewSession()); err != nil || n != 0 {
		t.Fatalf("second repair: n=%d err=%v", n, err)
	}
}

// TestReoptimizeClearsQuarantine: compaction rewrites the files from
// scratch, so stale quarantine positions must not damn fresh pages.
func TestReoptimizeClearsQuarantine(t *testing.T) {
	opt := DefaultOptions()
	opt.FixedBits = 8 // force compressed pages regardless of the optimizer
	sto, tr, pts := buildCheckedTree(t, 9, 1200, 4, opt)
	comp := compressedPages(tr)
	if len(comp) == 0 {
		t.Fatal("no compressed pages despite FixedBits")
	}
	flipQPageBit(t, sto, comp[0], tr.Options().QPageBlocks)
	r := rand.New(rand.NewSource(10))
	queries := randPoints(r, 6, 4)
	checkKNN(t, tr, pts, queries, 3, vec.Euclidean) // quarantines
	if len(tr.QuarantinedPages()) == 0 {
		t.Fatal("no pages quarantined before reoptimize")
	}
	if err := tr.Reoptimize(); err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if len(tr.QuarantinedPages()) != 0 {
		t.Fatal("reoptimize left stale quarantine entries")
	}
	for i, q := range queries {
		trace := obs.NewQueryTrace("")
		if _, err := tr.KNNTrace(sto.NewSession(), q, 3, trace); err != nil {
			t.Fatalf("query %d after reoptimize: %v", i, err)
		}
		if trace.DegradedReads != 0 {
			t.Fatalf("query %d degraded on a freshly compacted tree", i)
		}
	}
	checkKNN(t, tr, pts, queries, 3, vec.Euclidean)
}

// FuzzBitFlipKNN is the no-silent-corruption contract under fuzzing: a
// single bit flip anywhere in the on-disk files must never change a
// KNN answer. Either the damage is invisible to the query (unused
// block, in-memory state), absorbed exactly by the quarantine
// fallback, or the query fails with a typed corruption error.
func FuzzBitFlipKNN(f *testing.F) {
	files := []string{MetaFileName, DirFileName, QFileName, EFileName}
	f.Add(uint8(0), uint16(0), uint8(0))   // meta, first block, first bit
	f.Add(uint8(1), uint16(1), uint8(7))   // directory
	f.Add(uint8(2), uint16(0), uint8(3))   // quantized page
	f.Add(uint8(2), uint16(5), uint8(200)) // deeper quantized page
	f.Add(uint8(3), uint16(2), uint8(64))  // exact page
	f.Add(uint8(3), uint16(9), uint8(255)) // exact page, high bit index
	f.Fuzz(func(t *testing.T, fileSel uint8, block uint16, bit uint8) {
		opt := DefaultOptions()
		opt.FractalDim = 4 // skip estimation: keep per-case builds cheap
		opt.FixedBits = 8  // compressed pages + exact shadows: both files populated
		r := rand.New(rand.NewSource(21))
		pts := randPoints(r, 300, 4)
		sto := store.NewSim(store.DefaultConfig())
		if err := sto.EnableChecksums(); err != nil {
			t.Fatal(err)
		}
		tr, err := Build(sto, pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		queries := randPoints(r, 4, 4)
		type answer struct {
			ids   []uint32
			dists []float64
		}
		clean := make([]answer, len(queries))
		for i, q := range queries {
			res, err := tr.KNN(sto.NewSession(), q, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, nb := range res {
				clean[i].ids = append(clean[i].ids, nb.ID)
				clean[i].dists = append(clean[i].dists, nb.Dist)
			}
		}

		bf := sto.Backend().Lookup(files[int(fileSel)%len(files)])
		if bf == nil || bf.Blocks() == 0 {
			t.Skip("file empty at this configuration")
		}
		pos := int(block) % bf.Blocks()
		data, err := bf.ReadBlocks(pos, 1)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), data...)
		b := int(bit) % (len(mut) * 8)
		mut[b/8] ^= 1 << (b % 8)
		if err := bf.WriteBlocks(pos, mut); err != nil {
			t.Fatal(err)
		}

		for i, q := range queries {
			res, err := tr.KNN(sto.NewSession(), q, 3)
			if err != nil {
				var cbe *store.CorruptBlockError
				if !errors.As(err, &cbe) && !errors.Is(err, ErrUnrecoverable) {
					t.Fatalf("query %d: untyped failure after bit flip: %v", i, err)
				}
				continue
			}
			if len(res) != len(clean[i].ids) {
				t.Fatalf("query %d: %d results after flip, clean run had %d", i, len(res), len(clean[i].ids))
			}
			for j, nb := range res {
				if nb.ID != clean[i].ids[j] || nb.Dist != clean[i].dists[j] {
					t.Fatalf("query %d rank %d: (%d, %v) after flip, clean (%d, %v) — silent corruption",
						i, j, nb.ID, nb.Dist, clean[i].ids[j], clean[i].dists[j])
				}
			}
		}

		// The approximate path owes the same contract. ε = 0 (MinRecall 1)
		// must stay bit-identical to the clean exact run or fail typed;
		// ε > 0 may substitute neighbors but must only ever surface genuine
		// points at true distances — or fail typed — never corrupt data.
		met := tr.Options().Metric
		for i, q := range queries {
			res, err := tr.KNNApprox(sto.NewSession(), q, 3, index.Approx{MinRecall: 1})
			if err != nil {
				var cbe *store.CorruptBlockError
				if !errors.As(err, &cbe) && !errors.Is(err, ErrUnrecoverable) {
					t.Fatalf("approx ε=0 query %d: untyped failure after bit flip: %v", i, err)
				}
				continue
			}
			if len(res) != len(clean[i].ids) {
				t.Fatalf("approx ε=0 query %d: %d results after flip, clean run had %d", i, len(res), len(clean[i].ids))
			}
			for j, nb := range res {
				if nb.ID != clean[i].ids[j] || nb.Dist != clean[i].dists[j] {
					t.Fatalf("approx ε=0 query %d rank %d: (%d, %v) after flip, clean (%d, %v) — silent corruption",
						i, j, nb.ID, nb.Dist, clean[i].ids[j], clean[i].dists[j])
				}
			}
		}
		for i, q := range queries {
			res, err := tr.KNNApprox(sto.NewSession(), q, 3, index.Approx{MinRecall: 0.8})
			if err != nil {
				var cbe *store.CorruptBlockError
				if !errors.As(err, &cbe) && !errors.Is(err, ErrUnrecoverable) {
					t.Fatalf("approx ε>0 query %d: untyped failure after bit flip: %v", i, err)
				}
				continue
			}
			for j, nb := range res {
				if int(nb.ID) >= len(pts) {
					t.Fatalf("approx ε>0 query %d rank %d: fabricated ID %d", i, j, nb.ID)
				}
				if td := met.Dist(q, pts[nb.ID]); math.Abs(nb.Dist-td) > 1e-5 {
					t.Fatalf("approx ε>0 query %d rank %d: ID %d at %v, true distance %v — corrupt data surfaced",
						i, j, nb.ID, nb.Dist, td)
				}
			}
		}

		// The scan-sharing pipeline owes the same contract: running all
		// four queries concurrently through shared cursors over the
		// damaged store must, per query, either fail typed or answer
		// bit-identically to the clean run.
		sessions := make([]*store.Session, len(queries))
		for i := range sessions {
			sessions[i] = sto.NewSession()
		}
		shRes, shErrs := driveShared(t, tr, sessions,
			func(scan index.SharedScan, i int, s *store.Session) index.Cursor {
				return scan.KNN(s, queries[i], 3)
			})
		for i := range queries {
			if err := shErrs[i]; err != nil {
				var cbe *store.CorruptBlockError
				if !errors.As(err, &cbe) && !errors.Is(err, ErrUnrecoverable) {
					t.Fatalf("shared query %d: untyped failure after bit flip: %v", i, err)
				}
				continue
			}
			res := shRes[i]
			if len(res) != len(clean[i].ids) {
				t.Fatalf("shared query %d: %d results after flip, clean run had %d", i, len(res), len(clean[i].ids))
			}
			for j, nb := range res {
				if nb.ID != clean[i].ids[j] || nb.Dist != clean[i].dists[j] {
					t.Fatalf("shared query %d rank %d: (%d, %v) after flip, clean (%d, %v) — silent corruption",
						i, j, nb.ID, nb.Dist, clean[i].ids[j], clean[i].dists[j])
				}
			}
		}
	})
}

// TestTornWriteCrashRecovery extends the durability round-trip with a
// simulated crash: a FaultStore tears a page rewrite mid-insert, the
// process "dies" (the poisoned store is abandoned without a clean
// shutdown), and a fresh process reopens the directory. The checksum
// scrub must localize the damage and queries must still answer exactly
// (the torn blocks are beyond the last published directory, with live
// damage absorbed by the quarantine fallback).
func TestTornWriteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := store.DefaultConfig()
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 1500, 6)

	// Phase 1: build a checksummed store on real files, through a
	// FaultStore that is quiet during the build.
	inner, err := store.OpenFileBackend(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faults := store.NewFaultStore(inner, store.FaultConfig{})
	sto := store.Wrap(faults)
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	tr, err := Build(sto, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: tear the multi-block writes of the next insert (the
	// exact-page rewrite, the directory rewrite, or a sidecar persist)
	// and crash. Single-block writes pass through intact, so this
	// models a power cut that lands mid-way through a page rewrite.
	sched := make(map[int]store.FaultKind)
	for op := faults.Ops(); op < faults.Ops()+64; op++ {
		sched[op] = store.FaultTorn
	}
	faults.SetConfig(store.FaultConfig{Schedule: sched})
	ins := randPoints(r, 1, 6)[0]
	insertErr := tr.Insert(sto.NewSession(), ins, 99999)
	if insertErr == nil && sto.Err() == nil {
		t.Fatal("scheduled torn writes never fired")
	}
	faults.SetConfig(store.FaultConfig{})
	if err := inner.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the store without Close.

	// Phase 3: a fresh process reopens the directory.
	sto2, err := store.OpenFileStore(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sto2.Close()
	if err := sto2.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	rep, err := sto2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	// The scrub localizes whatever the torn write left behind; the
	// damage must not have spread to the whole store.
	if len(rep.Corrupt) >= rep.BlocksChecked/2 {
		t.Fatalf("scrub reports %d of %d blocks corrupt — damage not localized",
			len(rep.Corrupt), rep.BlocksChecked)
	}

	tr2, err := Open(sto2)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	// Crash semantics: the torn insert is either fully invisible or —
	// if the directory rewrite landed before the tear — visible. Both
	// are consistent states; anything else is corruption.
	expected := pts
	switch tr2.Len() {
	case len(pts):
	case len(pts) + 1:
		expected = append(append([]vec.Point(nil), pts...), ins)
	default:
		t.Fatalf("reopened Len %d, want %d or %d", tr2.Len(), len(pts), len(pts)+1)
	}

	// Every query either answers exactly (intact pages directly,
	// damaged quantized pages via the quarantine fallback) or fails
	// with a typed corruption error — never silently wrong.
	succeeded := 0
	for i, q := range randPoints(r, 10, 6) {
		res, err := tr2.KNN(sto2.NewSession(), q, 4)
		if err != nil {
			var cbe *store.CorruptBlockError
			if !errors.As(err, &cbe) && !errors.Is(err, ErrUnrecoverable) {
				t.Fatalf("query %d: untyped failure after crash: %v", i, err)
			}
			continue
		}
		want := bruteKNN(expected, q, 4, vec.Euclidean)
		for j, nb := range res {
			if nb.Dist != want[j] {
				t.Fatalf("query %d rank %d: dist %v, brute force %v — silent corruption", i, j, nb.Dist, want[j])
			}
		}
		succeeded++
	}
	if succeeded == 0 {
		t.Fatal("every query failed; the damage was not localized")
	}
}
