package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// checkGenuine verifies the structural contract of an approximate
// answer: exactly k distinct database points, each reported at its true
// distance, in non-decreasing distance order. Approximate termination
// may substitute farther points for near ones but must never fabricate.
func checkGenuine(t *testing.T, pts []vec.Point, q vec.Point, res []Neighbor, k int, met vec.Metric) {
	t.Helper()
	if len(res) != k {
		t.Fatalf("got %d results, want %d", len(res), k)
	}
	seen := make(map[uint32]bool, k)
	prev := math.Inf(-1)
	for i, nb := range res {
		if seen[nb.ID] {
			t.Fatalf("rank %d: duplicate ID %d", i, nb.ID)
		}
		seen[nb.ID] = true
		if nb.Dist < prev {
			t.Fatalf("rank %d: distances out of order: %v after %v", i, nb.Dist, prev)
		}
		prev = nb.Dist
		if int(nb.ID) >= len(pts) {
			t.Fatalf("rank %d: fabricated ID %d", i, nb.ID)
		}
		if td := met.Dist(q, pts[nb.ID]); math.Abs(nb.Dist-td) > 1e-5 {
			t.Fatalf("rank %d: ID %d reported at %v, true distance %v", i, nb.ID, nb.Dist, td)
		}
	}
}

// recallOf returns |approx ∩ exact| / |exact| by ID.
func recallOf(exact, approx []Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	ids := make(map[uint32]bool, len(exact))
	for _, nb := range exact {
		ids[nb.ID] = true
	}
	hit := 0
	for _, nb := range approx {
		if ids[nb.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// TestKNNApproxFullRecallBitIdentical: MinRecall = 1 arms the
// approximate machinery (ε = 0) but must be bit-for-bit identical to
// exact execution — same neighbors, same distances, and the same
// simulated charges down to the session Stats.
func TestKNNApproxFullRecallBitIdentical(t *testing.T) {
	for _, opt := range []Options{DefaultOptions(), func() Options {
		o := DefaultOptions()
		o.OptimizedIO = false
		return o
	}()} {
		r := rand.New(rand.NewSource(1))
		pts := randPoints(r, 3000, 8)
		tr := buildTree(t, pts, opt)
		queries := randPoints(r, 25, 8)
		for qi, q := range queries {
			se := tr.sto.NewSession()
			exact, err := tr.KNN(se, q, 10)
			if err != nil {
				t.Fatal(err)
			}
			sa := tr.sto.NewSession()
			approx, err := tr.KNNApprox(sa, q, 10, index.Approx{MinRecall: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(exact) != len(approx) {
				t.Fatalf("query %d: %d vs %d results", qi, len(exact), len(approx))
			}
			for i := range exact {
				if exact[i].ID != approx[i].ID || exact[i].Dist != approx[i].Dist {
					t.Fatalf("query %d rank %d: exact (%d, %v), approx (%d, %v)",
						qi, i, exact[i].ID, exact[i].Dist, approx[i].ID, approx[i].Dist)
				}
			}
			if se.Stats != sa.Stats {
				t.Fatalf("query %d: exact stats %+v, approx stats %+v — MinRecall=1 must not change the physical plan",
					qi, se.Stats, sa.Stats)
			}
		}
	}
}

// TestKNNApproxSubsetWithSubstitutions: ε > 0 answers are structurally
// sound (genuine points at true distances), never beat the exact kth
// distance, and hit the recall target on average across a workload.
func TestKNNApproxSubsetWithSubstitutions(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 4000, 8)
	tr := buildTree(t, pts, DefaultOptions())
	queries := randPoints(r, 40, 8)
	met := tr.Options().Metric
	const k = 10

	for _, minRecall := range []float64{0.95, 0.8, 0.5} {
		sumRecall := 0.0
		for _, q := range queries {
			exact, err := tr.KNN(tr.sto.NewSession(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := tr.KNNApprox(tr.sto.NewSession(), q, k, index.Approx{MinRecall: minRecall})
			if err != nil {
				t.Fatal(err)
			}
			checkGenuine(t, pts, q, approx, k, met)
			if approx[k-1].Dist < exact[k-1].Dist-1e-9 {
				t.Fatalf("approximate kth distance %v beats exact %v", approx[k-1].Dist, exact[k-1].Dist)
			}
			sumRecall += recallOf(exact, approx)
		}
		mean := sumRecall / float64(len(queries))
		// The estimator targets expected recall; allow modeling slack but
		// catch gross misbehavior.
		if mean < minRecall-0.15 {
			t.Fatalf("MinRecall %v: mean measured recall %v", minRecall, mean)
		}
	}
}

// TestKNNApproxMaxCostBudget: the page budget bounds the quantized
// pages transferred. With OptimizedIO off every fetch is a single page,
// so the bound is tight; the trace records the termination.
func TestKNNApproxMaxCostBudget(t *testing.T) {
	opt := DefaultOptions()
	opt.OptimizedIO = false
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 4000, 8)
	tr := buildTree(t, pts, opt)
	queries := randPoints(r, 20, 8)
	met := tr.Options().Metric
	const budget = 3

	terminated := 0
	for _, q := range queries {
		trace := obs.NewQueryTrace("")
		s := tr.sto.NewSession()
		s.SetObserver(trace)
		res, err := tr.KNNApprox(s, q, 5, index.Approx{MaxCost: budget})
		if err != nil {
			t.Fatal(err)
		}
		checkGenuine(t, pts, q, res, 5, met)
		if trace.PagesRead > budget {
			t.Fatalf("budget %d, but %d pages transferred", budget, trace.PagesRead)
		}
		if trace.Terminated {
			terminated++
			if trace.SkippedPages == 0 {
				t.Fatal("terminated without skipping any page")
			}
		}
	}
	if terminated == 0 {
		t.Fatal("budget of 3 pages never terminated a query; budget not exercised")
	}
}

// TestSharedApproxFullRecallBitIdentical: the scan-sharing cursor path
// under MinRecall = 1 returns exactly the share-nothing exact answers.
func TestSharedApproxFullRecallBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 3000, 8)
	tr := buildTree(t, pts, DefaultOptions())
	queries := randPoints(r, 12, 8)

	sessions := make([]*store.Session, len(queries))
	for i := range sessions {
		sessions[i] = tr.sto.NewSession()
	}
	results, errs := driveShared(t, tr, sessions, func(scan index.SharedScan, i int, s *store.Session) index.Cursor {
		return scan.(index.ApproxSharedScan).KNNApprox(s, queries[i], 10, index.Approx{MinRecall: 1})
	})
	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("cursor %d: %v", i, errs[i])
		}
		exact, err := tr.KNN(tr.sto.NewSession(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) != len(results[i]) {
			t.Fatalf("cursor %d: %d vs %d results", i, len(results[i]), len(exact))
		}
		for j := range exact {
			if exact[j].ID != results[i][j].ID || exact[j].Dist != results[i][j].Dist {
				t.Fatalf("cursor %d rank %d: shared (%d, %v), exact (%d, %v)",
					i, j, results[i][j].ID, results[i][j].Dist, exact[j].ID, exact[j].Dist)
			}
		}
	}
}

// TestSharedApproxSubset: ε > 0 cursors under the shared-scan round
// protocol complete and return genuine answers.
func TestSharedApproxSubset(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 3000, 8)
	tr := buildTree(t, pts, DefaultOptions())
	queries := randPoints(r, 12, 8)
	met := tr.Options().Metric

	sessions := make([]*store.Session, len(queries))
	for i := range sessions {
		sessions[i] = tr.sto.NewSession()
	}
	results, errs := driveShared(t, tr, sessions, func(scan index.SharedScan, i int, s *store.Session) index.Cursor {
		return scan.(index.ApproxSharedScan).KNNApprox(s, queries[i], 10, index.Approx{MinRecall: 0.8})
	})
	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("cursor %d: %v", i, errs[i])
		}
		checkGenuine(t, pts, q, results[i], 10, met)
	}
}

// TestKNNApproxQuarantineInterplay: approximate execution composes with
// the fault layer — after at-rest corruption, approximate queries still
// answer from genuine points (degraded reads through the exact shadow)
// and never surface corrupt data.
func TestKNNApproxQuarantineInterplay(t *testing.T) {
	sto, tr, pts := buildCheckedTree(t, 6, 2500, 8, DefaultOptions())
	comp := compressedPages(tr)
	if len(comp) < 3 {
		t.Fatalf("only %d compressed pages", len(comp))
	}
	for _, qpos := range comp[:3] {
		flipQPageBit(t, sto, qpos, tr.Options().QPageBlocks)
	}
	r := rand.New(rand.NewSource(7))
	queries := randPoints(r, 20, 8)
	met := tr.Options().Metric
	degraded := 0
	for _, q := range queries {
		trace := obs.NewQueryTrace("")
		s := sto.NewSession()
		s.SetObserver(trace)
		res, err := tr.KNNApprox(s, q, 5, index.Approx{MinRecall: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		checkGenuine(t, pts, q, res, 5, met)
		degraded += trace.DegradedReads
	}
	if degraded == 0 {
		t.Fatal("no approximate query paid a degraded read; corruption was not exercised")
	}
}
