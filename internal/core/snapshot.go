package core

import (
	"repro/internal/costmodel"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/vec"
)

// snapshot is one immutable epoch of the tree's directory: the decoded
// level-1 entries, their quantization grids, the free map, and the
// position→entry index of the quantized file. Queries pin a snapshot at
// entry (an atomic pointer load) and run entirely against it, so they
// never observe a half-applied update; writers clone the current
// snapshot, mutate the clone, write new page versions out of place
// (every page rewrite appends — old positions are never overwritten, so
// pinned snapshots keep reading consistent bytes), and publish the clone
// atomically as the next epoch.
type snapshot struct {
	epoch     uint64
	n         int             // live points
	entries   []page.DirEntry // decoded directory
	grids     []quantize.Grid // per-entry quantization grid
	free      []bool          // entries logically deleted
	entryAt   []int32         // quantized page position → owning entry (-1 = stale)
	dirBlocks int             // directory extent in blocks at publish time
	dataSpace vec.MBR
	model     costmodel.Model
}

// clone returns a deep copy of the snapshot at the next epoch. Slices
// and the data-space MBR are copied so the writer can mutate freely;
// DirEntry MBRs are replaced (never extended in place) by the update
// paths, so sharing them with the previous epoch is safe.
func (sn *snapshot) clone() *snapshot {
	c := &snapshot{
		epoch:     sn.epoch + 1,
		n:         sn.n,
		entries:   append([]page.DirEntry(nil), sn.entries...),
		grids:     append([]quantize.Grid(nil), sn.grids...),
		free:      append([]bool(nil), sn.free...),
		entryAt:   append([]int32(nil), sn.entryAt...),
		dirBlocks: sn.dirBlocks,
		dataSpace: sn.dataSpace.Clone(),
		model:     sn.model,
	}
	c.model.DataSpace = c.dataSpace
	return c
}

// entryIndex maps a quantized page position to the entry owning it in
// this epoch, or -1 when the position is out of range or holds a stale
// page version.
func (sn *snapshot) entryIndex(pos int) int {
	if pos < 0 || pos >= len(sn.entryAt) {
		return -1
	}
	return int(sn.entryAt[pos])
}

// setOwner records entry as the owner of page position pos, growing the
// position index as the quantized file grows.
func (sn *snapshot) setOwner(pos, entry int) {
	for len(sn.entryAt) <= pos {
		sn.entryAt = append(sn.entryAt, -1)
	}
	sn.entryAt[pos] = int32(entry)
}

// clearOwner marks the page position stale, but only if entry still owns
// it (a freshly created entry carries a zero QPos it never owned).
func (sn *snapshot) clearOwner(pos, entry int) {
	if pos >= 0 && pos < len(sn.entryAt) && sn.entryAt[pos] == int32(entry) {
		sn.entryAt[pos] = -1
	}
}

// livePages counts the non-free entries.
func (sn *snapshot) livePages() int {
	n := 0
	for i := range sn.entries {
		if !sn.free[i] {
			n++
		}
	}
	return n
}

// appendEntry reserves a new directory entry with no physical page yet;
// the caller's rewritePage assigns its first quantized page position.
func (sn *snapshot) appendEntry() int {
	sn.entries = append(sn.entries, page.DirEntry{})
	sn.grids = append(sn.grids, quantize.Grid{})
	sn.free = append(sn.free, false)
	return len(sn.entries) - 1
}

// reviveFreeEntry returns a free page slot to service, empty, to be
// filled by the caller's rewrite — used when an insert finds no live
// page because deletes emptied the whole tree. Returns -1 when no free
// slot exists either.
func (sn *snapshot) reviveFreeEntry() int {
	for i := range sn.free {
		if sn.free[i] {
			sn.free[i] = false
			sn.entries[i].Count = 0
			return i
		}
	}
	return -1
}

// pageInfos snapshots the live pages for cost-model evaluation.
func (sn *snapshot) pageInfos() []costmodel.PageInfo {
	infos := make([]costmodel.PageInfo, 0, len(sn.entries))
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		infos = append(infos, costmodel.PageInfo{MBR: e.MBR, Count: int(e.Count), Bits: int(e.Bits)})
	}
	return infos
}
