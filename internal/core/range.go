package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/pagesched"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// RangeSearch returns all points within distance eps of q (under the
// tree's metric), ordered by increasing distance. Because the affected
// pages are known in advance from the directory, the second level is
// fetched with the optimal known-set schedule of paper Section 2 (Fig. 1).
// When the session's observer is a *Trace, plan events are recorded into
// it (see KNN).
func (t *Tree) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]Neighbor, error) {
	return t.RangeSearchTrace(s, q, eps, obs.TraceFrom(s.Observer()))
}

// RangeSearchTrace is RangeSearch with an optional physical-work trace
// (see KNNTrace for the attachment semantics).
func (t *Tree) RangeSearchTrace(s *store.Session, q vec.Point, eps float64, tr *Trace) ([]Neighbor, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	sn := t.load()
	label := ""
	if tr != nil {
		label = fmt.Sprintf("range eps=%g", eps)
	}
	detach := attachTrace(s, tr, t.sto.Config(), label)
	defer detach()
	sc := scratchFor(s)
	sc.eps = epsFilter{q: q, eps: eps, met: t.opt.Metric}
	res, err := t.scanCandidates(s, sn, tr, sc, &sc.eps)
	if err != nil {
		return nil, err
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Dist < res[j].Dist })
	return res, nil
}

// WindowQuery returns all points inside the query window w. Dist fields of
// the results are 0.
func (t *Tree) WindowQuery(s *store.Session, w vec.MBR) ([]Neighbor, error) {
	return t.WindowQueryTrace(s, w, obs.TraceFrom(s.Observer()))
}

// WindowQueryTrace is WindowQuery with an optional physical-work trace
// (see KNNTrace for the attachment semantics).
func (t *Tree) WindowQueryTrace(s *store.Session, w vec.MBR, tr *Trace) ([]Neighbor, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	sn := t.load()
	detach := attachTrace(s, tr, t.sto.Config(), "window")
	defer detach()
	sc := scratchFor(s)
	sc.win = windowFilter{w: w}
	return t.scanCandidates(s, sn, tr, sc, &sc.win)
}

// scanFilter is the query-specific part of a range-style scan. The two
// implementations live in the session scratch so a scan allocates no
// filter state.
type scanFilter interface {
	// pageHit selects directory entries whose page may hold results.
	pageHit(mbr vec.MBR) bool
	// preparePage builds the kernel tables for one compressed page.
	preparePage(sc *queryScratch, g quantize.Grid, count int)
	// pageHits classifies a whole prepared page's approximations in one
	// kernel batch call; hits[i] is true when point i needs its exact
	// geometry (for the id, and possibly the decision). The returned
	// slice is scratch, valid until the next call.
	pageHits(sc *queryScratch, codes []uint32, dim, count int) []bool
	// exactHit decides on the exact point, returning the result distance.
	exactHit(p vec.Point) (float64, bool)
}

// epsFilter implements the distance-range predicate via the kernel's
// table lookups with exact early-abandon: a point is discarded only when
// its accumulated lower bound provably exceeds eps (the threshold is the
// next float64 above eps, making prune ⇔ MINDIST > eps bit-exact).
type epsFilter struct {
	q   vec.Point
	eps float64
	met vec.Metric
	tb  *kernel.Tables
	lbT float64
}

func (f *epsFilter) pageHit(mbr vec.MBR) bool { return mbr.MinDist(f.q, f.met) <= f.eps }

func (f *epsFilter) preparePage(sc *queryScratch, g quantize.Grid, count int) {
	f.tb = sc.arena.Tables(g, f.q, f.met, count)
	f.lbT = kernel.SqThreshold(f.met, math.Nextafter(f.eps, math.Inf(1)))
}

func (f *epsFilter) pageHits(sc *queryScratch, codes []uint32, dim, count int) []bool {
	pb := &sc.bounds
	f.tb.MinDistBatch(codes, dim, count, f.lbT, pb)
	hits := growHits(&sc.hits, count)
	for i := 0; i < count; i++ {
		hits[i] = !pb.Pruned[i] && pb.Lb[i] <= f.eps
	}
	return hits
}

func (f *epsFilter) exactHit(p vec.Point) (float64, bool) {
	d := f.met.Dist(f.q, p)
	return d, d <= f.eps
}

// windowFilter implements the window predicate via the kernel's
// per-dimension intersection table.
type windowFilter struct {
	w  vec.MBR
	wt *kernel.WindowTable
}

func (f *windowFilter) pageHit(mbr vec.MBR) bool { return mbr.Intersects(f.w) }

func (f *windowFilter) preparePage(sc *queryScratch, g quantize.Grid, count int) {
	f.wt = sc.arena.Window(g, f.w, count)
}

func (f *windowFilter) pageHits(sc *queryScratch, codes []uint32, dim, count int) []bool {
	sc.hits = f.wt.HitsBatch(codes, dim, count, sc.hits)
	return sc.hits
}

func (f *windowFilter) exactHit(p vec.Point) (float64, bool) { return 0, f.w.Contains(p) }

// growHits resizes the scratch hit buffer, keeping its high-water
// capacity across pages.
func growHits(hits *[]bool, n int) []bool {
	if cap(*hits) < n {
		*hits = make([]bool, n)
	}
	*hits = (*hits)[:n]
	return *hits
}

// beginScan runs the level-1 directory scan of a range-style query
// against the pinned snapshot: it selects the candidate pages via the
// filter's pageHit, returning their sorted quantized-page positions
// (aliasing sc.positions; sc.posEntry maps position → entry) and the
// entries whose page is already quarantined and must be served from the
// exact shadow. Shared between the share-nothing scan and the
// scan-sharing cursor so both select identical page sets.
func (t *Tree) beginScan(s *store.Session, sn *snapshot, sc *queryScratch, f scanFilter) (positions, degraded []int, err error) {
	if sn.dirBlocks > 0 {
		if _, err := s.Read(t.dirFile, 0, sn.dirBlocks); err != nil {
			return nil, nil, err
		}
	}
	s.ChargeApproxCPU(t.dirFile, t.dim, len(sn.entries))

	sc.pts.Reset()
	positions = sc.positions[:0]
	clear(sc.posEntry)
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		if !f.pageHit(e.MBR) {
			continue
		}
		if t.isQuarantined(int(e.QPos)) {
			degraded = append(degraded, i)
			continue
		}
		positions = append(positions, int(e.QPos))
		sc.posEntry[int(e.QPos)] = i
	}
	sc.positions = positions
	sort.Ints(positions)
	return positions, degraded, nil
}

// scanCandidates drives both range-style queries against the pinned
// snapshot sn: select pages via the filter's pageHit, classify
// approximations via pageHits, and refine candidates via exactHit (which
// returns the result distance and whether the exact point qualifies).
// Every qualifying point must be refined regardless of certainty, because
// point ids live in the exact pages.
func (t *Tree) scanCandidates(s *store.Session, sn *snapshot, tr *Trace, sc *queryScratch, f scanFilter) ([]Neighbor, error) {
	positions, degraded, err := t.beginScan(s, sn, sc, f)
	if err != nil {
		return nil, err
	}
	posEntry := sc.posEntry
	if len(positions) == 0 && len(degraded) == 0 {
		return nil, nil
	}

	// Level 2: optimal known-set fetch (Fig. 1), optionally buffer-capped.
	runs := pagesched.PlanKnownSet(positions, t.opt.QPageBlocks, t.sto.Config(), t.opt.MaxBufferBlocks)
	pageBytes := t.qPageBytes()
	var out []Neighbor
	for _, run := range runs {
		firstPage := run.Pos
		nPages := run.Blocks / t.opt.QPageBlocks
		buf, err := s.Read(t.qFile, run.Pos*t.opt.QPageBlocks, run.Blocks)
		if err != nil {
			if !t.corruptQPage(err) {
				return nil, err
			}
			// Fresh corruption somewhere in the run: retry page by page
			// so only the damaged pages pay the degraded path.
			s.Recover()
			out, err = t.rangeRunDegraded(s, sn, tr, sc, f, firstPage, nPages, out)
			if err != nil {
				return nil, err
			}
			continue
		}
		tr.AddPages(nPages)
		pending := 0
		for j := 0; j < nPages; j++ {
			pos := firstPage + j
			entry, wanted := posEntry[pos]
			if !wanted {
				tr.AddPruned(1) // gap page over-read because it was cheaper than a seek
				continue
			}
			pending++
			res, err := t.rangePage(s, sn, tr, sc, f, entry, buf[j*pageBytes:(j+1)*pageBytes], out)
			if err != nil {
				return nil, err
			}
			out = res
		}
		tr.AddBatch(obs.BatchDecision{
			Pivot:   -1, // known-set run: no pivot
			First:   firstPage,
			Last:    firstPage + nPages - 1,
			Pending: pending,
		})
	}
	for _, entry := range degraded {
		var err error
		out, err = t.rangeDegraded(s, sn, tr, sc, f, entry, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rangeRunDegraded replays one known-set run page by page after a bulk
// read hit corruption: undamaged pages take the normal path, freshly
// corrupt compressed pages are quarantined and answered from their
// exact shadow, and a corrupt exact-mode page fails typed.
func (t *Tree) rangeRunDegraded(s *store.Session, sn *snapshot, tr *Trace, sc *queryScratch, f scanFilter,
	firstPage, nPages int, out []Neighbor) ([]Neighbor, error) {
	pageBytes := t.qPageBytes()
	for j := 0; j < nPages; j++ {
		pos := firstPage + j
		entry, wanted := sc.posEntry[pos]
		if !wanted {
			continue
		}
		buf, err := s.Read(t.qFile, pos*t.opt.QPageBlocks, t.opt.QPageBlocks)
		if err != nil {
			if !t.corruptQPage(err) {
				return nil, err
			}
			s.Recover()
			if int(sn.entries[entry].Bits) != quantize.ExactBits {
				t.quarantinePage(pos)
			}
			out, err = t.rangeDegraded(s, sn, tr, sc, f, entry, out)
			if err != nil {
				return nil, err
			}
			continue
		}
		tr.AddPages(1)
		out, err = t.rangePage(s, sn, tr, sc, f, entry, buf[:pageBytes], out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rangeDegraded answers one page of a range-style query entirely from
// its exact (level-3) shadow — every point of the page is decided on
// exact geometry, so results match a clean run bit for bit; only the
// cost degrades. A quarantined exact-mode page has no shadow and fails
// with ErrUnrecoverable.
func (t *Tree) rangeDegraded(s *store.Session, sn *snapshot, tr *Trace, sc *queryScratch, f scanFilter,
	entry int, out []Neighbor) ([]Neighbor, error) {
	e := sn.entries[entry]
	if int(e.Bits) == quantize.ExactBits {
		return nil, unrecoverablePage(int(e.QPos), entry, nil)
	}
	entrySize := page.ExactEntrySize(t.dim)
	raw, rel, err := s.ReadRange(t.eFile, int(e.EPos)*t.sto.Config().BlockSize, int(e.Count)*entrySize)
	if err != nil {
		return nil, err
	}
	metricDegradedReads.Inc()
	tr.AddDegraded(1)
	tr.AddRefinement(int(e.Count))
	s.ChargeDistCPU(t.eFile, t.dim, int(e.Count))
	pts, ids := sc.pts.DecodeExact(raw[rel:], int(e.Count), t.dim)
	for i, p := range pts {
		if d, ok := f.exactHit(p); ok {
			out = append(out, Neighbor{ID: ids[i], Dist: d, Point: p.Clone()})
		}
	}
	return out, nil
}

// rangePage processes one candidate page of a range-style query,
// appending qualifying neighbors to out. Result points are copied out of
// the scratch arenas before they escape.
func (t *Tree) rangePage(s *store.Session, sn *snapshot, tr *Trace, sc *queryScratch, f scanFilter,
	entry int, buf []byte, out []Neighbor) ([]Neighbor, error) {
	qp := page.UnmarshalQPage(buf)
	if qp.Bits == quantize.ExactBits {
		return t.rangeExactQPage(s, sc, f, qp.Payload, qp.Count, out)
	}
	codes := sc.arena.Unpack(qp.Payload, qp.Count*t.dim, qp.Bits)
	return t.rangePageCodes(s, sn, tr, sc, f, entry, qp.Count, codes, out)
}

// rangeExactQPage decides an exact-mode (32-bit) quantized page: every
// point carries its full coordinates, so the filter's exact predicate
// applies directly.
func (t *Tree) rangeExactQPage(s *store.Session, sc *queryScratch, f scanFilter,
	payload []byte, count int, out []Neighbor) ([]Neighbor, error) {
	pts, ids := sc.pts.DecodeQPage(payload, count, t.dim)
	s.ChargeDistCPU(t.qFile, t.dim, len(pts))
	for i, p := range pts {
		if d, ok := f.exactHit(p); ok {
			out = append(out, Neighbor{ID: ids[i], Dist: d, Point: p.Clone()})
		}
	}
	return out, nil
}

// rangePageCodes filters one compressed page's bulk-unpacked codes and
// refines the surviving candidates against the exact level. Split from
// rangePage so the scan-sharing path can feed it codes decoded once per
// shared page.
func (t *Tree) rangePageCodes(s *store.Session, sn *snapshot, tr *Trace, sc *queryScratch, f scanFilter,
	entry, count int, codes []uint32, out []Neighbor) ([]Neighbor, error) {
	f.preparePage(sc, sn.grids[entry], count)
	s.ChargeApproxCPU(t.qFile, t.dim, count)
	hits := f.pageHits(sc, codes, t.dim, count)
	need := sc.need[:0]
	for i := 0; i < count; i++ {
		if hits[i] {
			need = append(need, i)
		}
	}
	sc.need = need
	tr.AddCandidates(len(need))
	if len(need) == 0 {
		return out, nil
	}
	// Level 3: candidates of one page are contiguous in the exact file;
	// read the covering range in a single operation and bulk-decode the
	// covered span into the point arena.
	e := sn.entries[entry]
	entrySize := page.ExactEntrySize(t.dim)
	base := int(e.EPos) * t.sto.Config().BlockSize
	lo := base + need[0]*entrySize
	hi := base + (need[len(need)-1]+1)*entrySize
	raw, rel, err := s.ReadRange(t.eFile, lo, hi-lo)
	if err != nil {
		return nil, err
	}
	tr.AddRefinement(len(need))
	s.ChargeDistCPU(t.eFile, t.dim, len(need))
	span := need[len(need)-1] - need[0] + 1
	pts, ids := sc.pts.DecodeExact(raw[rel:], span, t.dim)
	for _, i := range need {
		j := i - need[0]
		if d, ok := f.exactHit(pts[j]); ok {
			out = append(out, Neighbor{ID: ids[j], Dist: d, Point: pts[j].Clone()})
		}
	}
	return out, nil
}
