package core

import (
	"sort"

	"repro/internal/page"
	"repro/internal/pagesched"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// RangeSearch returns all points within distance eps of q (under the
// tree's metric), ordered by increasing distance. Because the affected
// pages are known in advance from the directory, the second level is
// fetched with the optimal known-set schedule of paper Section 2 (Fig. 1).
func (t *Tree) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]Neighbor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	met := t.opt.Metric
	res, err := t.scanCandidates(s,
		func(mbr vec.MBR) bool { return mbr.MinDist(q, met) <= eps },
		func(g quantize.Grid, cells []uint32) candState {
			if g.MinDist(q, cells, met) > eps {
				return candOut
			}
			return candCheck
		},
		func(p vec.Point) (float64, bool) {
			d := met.Dist(q, p)
			return d, d <= eps
		},
	)
	if err != nil {
		return nil, err
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Dist < res[j].Dist })
	return res, nil
}

// WindowQuery returns all points inside the query window w. Dist fields of
// the results are 0.
func (t *Tree) WindowQuery(s *store.Session, w vec.MBR) ([]Neighbor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scanCandidates(s,
		func(mbr vec.MBR) bool { return mbr.Intersects(w) },
		func(g quantize.Grid, cells []uint32) candState {
			box := g.CellBox(cells)
			if !w.Intersects(box) {
				return candOut
			}
			return candCheck
		},
		func(p vec.Point) (float64, bool) { return 0, w.Contains(p) },
	)
}

// candState classifies a point approximation during a range/window scan.
type candState uint8

const (
	candOut   candState = iota // certainly not a result
	candCheck                  // needs the exact point (for the id, and possibly the decision)
)

// scanCandidates drives both range-style queries: select pages via
// pageHit, classify approximations via approxHit, and refine candidates
// via exactHit (which returns the result distance and whether the exact
// point qualifies). Every qualifying point must be refined regardless of
// certainty, because point ids live in the exact pages.
func (t *Tree) scanCandidates(s *store.Session,
	pageHit func(vec.MBR) bool,
	approxHit func(quantize.Grid, []uint32) candState,
	exactHit func(vec.Point) (float64, bool),
) ([]Neighbor, error) {
	// Level 1: directory scan.
	if t.dirFile.Blocks() > 0 {
		if _, err := s.Read(t.dirFile, 0, t.dirFile.Blocks()); err != nil {
			return nil, err
		}
	}
	s.ChargeApproxCPU(t.dim, len(t.entries))

	var positions []int
	for i, e := range t.entries {
		if t.free[i] {
			continue
		}
		if pageHit(e.MBR) {
			positions = append(positions, int(e.QPos))
		}
	}
	if len(positions) == 0 {
		return nil, nil
	}
	sort.Ints(positions)

	// Level 2: optimal known-set fetch (Fig. 1), optionally buffer-capped.
	runs := pagesched.PlanKnownSet(positions, t.opt.QPageBlocks, t.sto.Config(), t.opt.MaxBufferBlocks)
	hit := make(map[int]bool, len(positions))
	for _, p := range positions {
		hit[p] = true
	}
	pageBytes := t.qPageBytes()
	var out []Neighbor
	for _, run := range runs {
		buf, err := s.Read(t.qFile, run.Pos*t.opt.QPageBlocks, run.Blocks)
		if err != nil {
			return nil, err
		}
		firstPage := run.Pos
		nPages := run.Blocks / t.opt.QPageBlocks
		for j := 0; j < nPages; j++ {
			pos := firstPage + j
			if !hit[pos] {
				continue
			}
			res, err := t.rangePage(s, pos, buf[j*pageBytes:(j+1)*pageBytes], approxHit, exactHit)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
	}
	return out, nil
}

// rangePage processes one candidate page of a range-style query.
func (t *Tree) rangePage(s *store.Session, entry int, buf []byte,
	approxHit func(quantize.Grid, []uint32) candState,
	exactHit func(vec.Point) (float64, bool),
) ([]Neighbor, error) {
	qp := page.UnmarshalQPage(buf)
	var out []Neighbor
	if qp.Bits == quantize.ExactBits {
		pts, ids := qp.ExactPoints(t.dim)
		s.ChargeDistCPU(t.dim, len(pts))
		for i, p := range pts {
			if d, ok := exactHit(p); ok {
				out = append(out, Neighbor{ID: ids[i], Dist: d, Point: p})
			}
		}
		return out, nil
	}
	grid := t.grids[entry]
	cells := qp.Cells(grid)
	s.ChargeApproxCPU(t.dim, qp.Count)
	var need []int
	for i := 0; i < qp.Count; i++ {
		if approxHit(grid, cells[i*t.dim:(i+1)*t.dim]) == candCheck {
			need = append(need, i)
		}
	}
	if len(need) == 0 {
		return nil, nil
	}
	// Level 3: candidates of one page are contiguous in the exact file;
	// read the covering range in a single operation.
	e := t.entries[entry]
	entrySize := page.ExactEntrySize(t.dim)
	base := int(e.EPos) * t.sto.Config().BlockSize
	lo := base + need[0]*entrySize
	hi := base + (need[len(need)-1]+1)*entrySize
	raw, rel, err := s.ReadRange(t.eFile, lo, hi-lo)
	if err != nil {
		return nil, err
	}
	s.ChargeDistCPU(t.dim, len(need))
	for _, i := range need {
		off := rel + (i-need[0])*entrySize
		p, id := page.UnmarshalExactEntry(raw[off:], t.dim)
		if d, ok := exactHit(p); ok {
			out = append(out, Neighbor{ID: id, Dist: d, Point: p})
		}
	}
	return out, nil
}
