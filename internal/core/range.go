package core

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/pagesched"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// RangeSearch returns all points within distance eps of q (under the
// tree's metric), ordered by increasing distance. Because the affected
// pages are known in advance from the directory, the second level is
// fetched with the optimal known-set schedule of paper Section 2 (Fig. 1).
// When the session's observer is a *Trace, plan events are recorded into
// it (see KNN).
func (t *Tree) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]Neighbor, error) {
	return t.RangeSearchTrace(s, q, eps, obs.TraceFrom(s.Observer()))
}

// RangeSearchTrace is RangeSearch with an optional physical-work trace
// (see KNNTrace for the attachment semantics).
func (t *Tree) RangeSearchTrace(s *store.Session, q vec.Point, eps float64, tr *Trace) ([]Neighbor, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	sn := t.load()
	detach := attachTrace(s, tr, t.sto.Config(), fmt.Sprintf("range eps=%g", eps))
	defer detach()
	met := t.opt.Metric
	res, err := t.scanCandidates(s, sn, tr,
		func(mbr vec.MBR) bool { return mbr.MinDist(q, met) <= eps },
		func(g quantize.Grid, cells []uint32) candState {
			if g.MinDist(q, cells, met) > eps {
				return candOut
			}
			return candCheck
		},
		func(p vec.Point) (float64, bool) {
			d := met.Dist(q, p)
			return d, d <= eps
		},
	)
	if err != nil {
		return nil, err
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Dist < res[j].Dist })
	return res, nil
}

// WindowQuery returns all points inside the query window w. Dist fields of
// the results are 0.
func (t *Tree) WindowQuery(s *store.Session, w vec.MBR) ([]Neighbor, error) {
	return t.WindowQueryTrace(s, w, obs.TraceFrom(s.Observer()))
}

// WindowQueryTrace is WindowQuery with an optional physical-work trace
// (see KNNTrace for the attachment semantics).
func (t *Tree) WindowQueryTrace(s *store.Session, w vec.MBR, tr *Trace) ([]Neighbor, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	sn := t.load()
	detach := attachTrace(s, tr, t.sto.Config(), "window")
	defer detach()
	return t.scanCandidates(s, sn, tr,
		func(mbr vec.MBR) bool { return mbr.Intersects(w) },
		func(g quantize.Grid, cells []uint32) candState {
			box := g.CellBox(cells)
			if !w.Intersects(box) {
				return candOut
			}
			return candCheck
		},
		func(p vec.Point) (float64, bool) { return 0, w.Contains(p) },
	)
}

// candState classifies a point approximation during a range/window scan.
type candState uint8

const (
	candOut   candState = iota // certainly not a result
	candCheck                  // needs the exact point (for the id, and possibly the decision)
)

// scanCandidates drives both range-style queries against the pinned
// snapshot sn: select pages via pageHit, classify approximations via
// approxHit, and refine candidates via exactHit (which returns the result
// distance and whether the exact point qualifies). Every qualifying point
// must be refined regardless of certainty, because point ids live in the
// exact pages.
func (t *Tree) scanCandidates(s *store.Session, sn *snapshot, tr *Trace,
	pageHit func(vec.MBR) bool,
	approxHit func(quantize.Grid, []uint32) candState,
	exactHit func(vec.Point) (float64, bool),
) ([]Neighbor, error) {
	// Level 1: directory scan.
	if sn.dirBlocks > 0 {
		if _, err := s.Read(t.dirFile, 0, sn.dirBlocks); err != nil {
			return nil, err
		}
	}
	s.ChargeApproxCPU(t.dirFile, t.dim, len(sn.entries))

	var positions []int
	posEntry := make(map[int]int)
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		if pageHit(e.MBR) {
			positions = append(positions, int(e.QPos))
			posEntry[int(e.QPos)] = i
		}
	}
	if len(positions) == 0 {
		return nil, nil
	}
	sort.Ints(positions)

	// Level 2: optimal known-set fetch (Fig. 1), optionally buffer-capped.
	runs := pagesched.PlanKnownSet(positions, t.opt.QPageBlocks, t.sto.Config(), t.opt.MaxBufferBlocks)
	pageBytes := t.qPageBytes()
	var out []Neighbor
	for _, run := range runs {
		buf, err := s.Read(t.qFile, run.Pos*t.opt.QPageBlocks, run.Blocks)
		if err != nil {
			return nil, err
		}
		firstPage := run.Pos
		nPages := run.Blocks / t.opt.QPageBlocks
		tr.AddPages(nPages)
		pending := 0
		for j := 0; j < nPages; j++ {
			pos := firstPage + j
			entry, wanted := posEntry[pos]
			if !wanted {
				tr.AddPruned(1) // gap page over-read because it was cheaper than a seek
				continue
			}
			pending++
			res, err := t.rangePage(s, sn, tr, entry, buf[j*pageBytes:(j+1)*pageBytes], approxHit, exactHit)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
		tr.AddBatch(obs.BatchDecision{
			Pivot:   -1, // known-set run: no pivot
			First:   firstPage,
			Last:    firstPage + nPages - 1,
			Pending: pending,
		})
	}
	return out, nil
}

// rangePage processes one candidate page of a range-style query.
func (t *Tree) rangePage(s *store.Session, sn *snapshot, tr *Trace, entry int, buf []byte,
	approxHit func(quantize.Grid, []uint32) candState,
	exactHit func(vec.Point) (float64, bool),
) ([]Neighbor, error) {
	qp := page.UnmarshalQPage(buf)
	var out []Neighbor
	if qp.Bits == quantize.ExactBits {
		pts, ids := qp.ExactPoints(t.dim)
		s.ChargeDistCPU(t.qFile, t.dim, len(pts))
		for i, p := range pts {
			if d, ok := exactHit(p); ok {
				out = append(out, Neighbor{ID: ids[i], Dist: d, Point: p})
			}
		}
		return out, nil
	}
	grid := sn.grids[entry]
	cells := qp.Cells(grid)
	s.ChargeApproxCPU(t.qFile, t.dim, qp.Count)
	var need []int
	for i := 0; i < qp.Count; i++ {
		if approxHit(grid, cells[i*t.dim:(i+1)*t.dim]) == candCheck {
			need = append(need, i)
		}
	}
	tr.AddCandidates(len(need))
	if len(need) == 0 {
		return nil, nil
	}
	// Level 3: candidates of one page are contiguous in the exact file;
	// read the covering range in a single operation.
	e := sn.entries[entry]
	entrySize := page.ExactEntrySize(t.dim)
	base := int(e.EPos) * t.sto.Config().BlockSize
	lo := base + need[0]*entrySize
	hi := base + (need[len(need)-1]+1)*entrySize
	raw, rel, err := s.ReadRange(t.eFile, lo, hi-lo)
	if err != nil {
		return nil, err
	}
	tr.AddRefinement(len(need))
	s.ChargeDistCPU(t.eFile, t.dim, len(need))
	for _, i := range need {
		off := rel + (i-need[0])*entrySize
		p, id := page.UnmarshalExactEntry(raw[off:], t.dim)
		if d, ok := exactHit(p); ok {
			out = append(out, Neighbor{ID: id, Dist: d, Point: p})
		}
	}
	return out, nil
}
