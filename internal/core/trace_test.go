package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// traceMatchesSession asserts the acceptance criterion of the
// observability layer: the per-level counters of a query trace sum to
// the session's aggregate Stats exactly, and each level matches the
// session's per-file decomposition.
func traceMatchesSession(t *testing.T, tr *Trace, s *store.Session) {
	t.Helper()
	seeks, blocks, reads, cpu := tr.Totals()
	if seeks != s.Stats.Seeks || blocks != s.Stats.BlocksRead || reads != s.Stats.Reads {
		t.Fatalf("trace totals (%d seeks %d blocks %d reads) != session stats %v",
			seeks, blocks, reads, s.Stats)
	}
	if math.Abs(cpu-s.Stats.CPUSeconds) > 1e-12 {
		t.Fatalf("trace cpu %g != session cpu %g", cpu, s.Stats.CPUSeconds)
	}
	for _, l := range tr.Levels {
		if l.File == "" {
			continue // unattributed charges have no per-file counterpart
		}
		fs := s.FileStats(l.File)
		if l.Seeks != fs.Seeks || l.Blocks != fs.BlocksRead || l.CPUSeconds != fs.CPUSeconds {
			t.Fatalf("level %s (%d seeks %d blocks %g cpu) != FileStats %v",
				l.File, l.Seeks, l.Blocks, l.CPUSeconds, fs)
		}
	}
}

func TestTraceSumsToSessionStats(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 4000, 8)
	q := randPoints(r, 1, 8)[0]

	sto, err := store.OpenFileStore(t.TempDir(), store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sto.Close()
	tree, err := Build(sto, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("knn", func(t *testing.T) {
		s := sto.NewSession()
		var tr Trace
		if _, err := tree.KNNTrace(s, q, 10, &tr); err != nil {
			t.Fatal(err)
		}
		traceMatchesSession(t, &tr, s)
		if tr.PagesRead == 0 || len(tr.Batches) == 0 {
			t.Fatalf("no pages/batches recorded: %d / %d", tr.PagesRead, len(tr.Batches))
		}
		if tr.Label != "knn k=10" {
			t.Fatalf("label %q", tr.Label)
		}
		out := tr.Format()
		for _, want := range []string{DirFileName, QFileName, EFileName} {
			if !strings.Contains(out, want) {
				t.Fatalf("Format missing level %q:\n%s", want, out)
			}
		}
	})

	t.Run("range", func(t *testing.T) {
		s := sto.NewSession()
		var tr Trace
		if _, err := tree.RangeSearchTrace(s, q, 0.4, &tr); err != nil {
			t.Fatal(err)
		}
		traceMatchesSession(t, &tr, s)
	})

	t.Run("window", func(t *testing.T) {
		s := sto.NewSession()
		w := vec.MBR{Lo: make(vec.Point, 8), Hi: make(vec.Point, 8)}
		for i := range w.Lo {
			w.Lo[i], w.Hi[i] = 0.2, 0.6
		}
		var tr Trace
		if _, err := tree.WindowQueryTrace(s, w, &tr); err != nil {
			t.Fatal(err)
		}
		traceMatchesSession(t, &tr, s)
	})
}

// TestTraceWithBufferPool checks that pool hits appear as CachedBlocks
// (outside the charged totals) so the trace still sums to the session's
// Stats exactly when a cache serves part of the query.
func TestTraceWithBufferPool(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 3000, 6)
	q := randPoints(r, 1, 6)[0]

	sto := store.NewSim(store.DefaultConfig())
	sto.SetCache(1 << 20)
	tree, err := Build(sto, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Warm the pool with one query, then trace a second one.
	if _, err := tree.KNN(sto.NewSession(), q, 5); err != nil {
		t.Fatal(err)
	}
	s := sto.NewSession()
	var tr Trace
	if _, err := tree.KNNTrace(s, q, 5, &tr); err != nil {
		t.Fatal(err)
	}
	traceMatchesSession(t, &tr, s)
	if tr.CachedBlocks() == 0 {
		t.Fatal("expected pool hits in the warmed trace")
	}
}

// TestTraceObserverRestored checks the attach/restore semantics: a
// pre-attached observer is displaced during a traced query and restored
// afterwards.
func TestTraceObserverRestored(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 500, 4)
	tree := buildTree(t, pts, DefaultOptions())
	s := tree.sto.NewSession()

	outer := obs.NewQueryTrace("outer")
	s.SetObserver(outer)
	var tr Trace
	if _, err := tree.KNNTrace(s, randPoints(r, 1, 4)[0], 3, &tr); err != nil {
		t.Fatal(err)
	}
	if s.Observer() != obs.Observer(outer) {
		t.Fatal("previous observer not restored after traced query")
	}
	if len(outer.Levels) != 0 {
		t.Fatal("displaced observer still received events")
	}
	if len(tr.Levels) == 0 {
		t.Fatal("trace received no events")
	}
}
