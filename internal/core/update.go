package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// Updates are copy-on-write: a writer clones the current snapshot,
// mutates the clone, appends new page versions to the data files (old
// positions are never overwritten, so concurrently pinned snapshots keep
// reading consistent bytes), and publishes the clone as the next epoch
// only when everything succeeded. A failed update publishes nothing; the
// blocks it appended become unreferenced garbage, reclaimed by the next
// Reoptimize like any other stale page version.
//
// In WAL mode (Options.WAL) each mutation additionally buffers its
// logical record inside the same t.mu critical section that applies it —
// so LSN order equals apply order and replay is deterministic — and the
// entry point acknowledges only after a group commit made the record
// durable (see wal.go and DESIGN.md §13).

// Insert adds one point to the tree (paper Section 6 / end of 3.6): the
// point goes to the page needing least MBR enlargement; on page overflow
// the cost model decides between splitting the page and re-quantizing it
// at a coarser level. I/O performed by the maintenance operation is
// charged to s.
func (t *Tree) Insert(s *store.Session, p vec.Point, id uint32) error {
	if len(p) != t.dim {
		return fmt.Errorf("core: insert dimension %d, want %d", len(p), t.dim)
	}
	op := mutOp{kind: walKindInsert, pts: []vec.Point{p.Clone()}, ids: []uint32{id}}
	lsn, err := t.runMutation(s, op)
	if err != nil {
		return err
	}
	if err := t.commitDurable(lsn); err != nil {
		return err
	}
	return t.autoReoptimize(s)
}

// InsertBatch adds many points at once, grouping them by target page so
// that each affected page is read, re-quantized and rewritten exactly
// once, the directory is rewritten once at the end, and (in WAL mode)
// one log record covers the whole batch.
func (t *Tree) InsertBatch(s *store.Session, pts []vec.Point, ids []uint32) error {
	if len(pts) != len(ids) {
		return fmt.Errorf("core: %d points but %d ids", len(pts), len(ids))
	}
	for i, p := range pts {
		if len(p) != t.dim {
			return fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), t.dim)
		}
	}
	if len(pts) == 0 {
		return nil
	}
	cl := make([]vec.Point, len(pts))
	for i, p := range pts {
		cl[i] = p.Clone()
	}
	op := mutOp{kind: walKindInsertBatch, pts: cl, ids: append([]uint32(nil), ids...)}
	lsn, err := t.runMutation(s, op)
	if err != nil {
		return err
	}
	if err := t.commitDurable(lsn); err != nil {
		return err
	}
	return t.autoReoptimize(s)
}

// runMutation applies one logical mutation under the writer locks and
// returns the WAL LSN to commit (0 when logging is off or nothing
// changed). The caller must not acknowledge the mutation before
// commitDurable(lsn) returns.
func (t *Tree) runMutation(s *store.Session, op mutOp) (uint64, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	sn := t.load().clone()
	switch op.kind {
	case walKindInsert:
		if err := t.applyInsert(s, sn, op.pts[0], op.ids[0]); err != nil {
			return 0, err
		}
	case walKindInsertBatch:
		if err := t.applyInsertBatch(s, sn, op.pts, op.ids); err != nil {
			return 0, err
		}
	default:
		panic("core: runMutation on non-insert op")
	}
	return t.finishMutation(sn, op)
}

// applyInsert mutates sn in place: one point into the page needing least
// enlargement. Caller holds t.mu (and world.RLock) and owns p.
func (t *Tree) applyInsert(s *store.Session, sn *snapshot, p vec.Point, id uint32) error {
	target := sn.chooseEntry(p)
	if target < 0 {
		// Every page is free (the tree was emptied by deletes): revive a
		// slot instead of failing the insert.
		target = sn.reviveFreeEntry()
	}
	if target < 0 {
		return fmt.Errorf("core: no page available for insert")
	}
	pts, ids, err := t.readPagePoints(s, sn, target)
	if err != nil {
		return err
	}
	pts = append(pts, p)
	ids = append(ids, id)

	sn.n++
	sn.model.N = sn.n
	sn.dataSpace.Extend(p)
	sn.model.DataSpace = sn.dataSpace

	t.storeGroup(s, sn, target, pts, ids, int(sn.entries[target].Bits))
	return nil
}

// applyInsertBatch mutates sn in place: many points, grouped by target
// page. Caller holds t.mu (and world.RLock) and owns pts.
func (t *Tree) applyInsertBatch(s *store.Session, sn *snapshot, pts []vec.Point, ids []uint32) error {
	groups := make(map[int][]int)
	for i, p := range pts {
		target := sn.chooseEntry(p)
		if target < 0 {
			target = sn.reviveFreeEntry()
		}
		if target < 0 {
			return fmt.Errorf("core: no page available for insert")
		}
		groups[target] = append(groups[target], i)
		sn.dataSpace.Extend(p)
	}
	sn.n += len(pts)
	sn.model.N = sn.n
	sn.model.DataSpace = sn.dataSpace

	// Deterministic processing order (map iteration is randomized, and the
	// order determines the disk layout of appended pages).
	targets := make([]int, 0, len(groups))
	for target := range groups {
		targets = append(targets, target)
	}
	sort.Ints(targets)
	for _, target := range targets {
		members := groups[target]
		oldBits := int(sn.entries[target].Bits)
		pagePts, pageIDs, err := t.readPagePoints(s, sn, target)
		if err != nil {
			return err
		}
		for _, i := range members {
			pagePts = append(pagePts, pts[i])
			pageIDs = append(pageIDs, ids[i])
		}
		t.storeGroup(s, sn, target, pagePts, pageIDs, oldBits)
	}
	return nil
}

// finishMutation completes an applied mutation under t.mu: rewrite the
// directory, verify no write failed, buffer the WAL record, capture the
// delta for an in-flight incremental reoptimization, and publish the
// epoch. Nothing fallible sits between the WAL append and the publish,
// so a buffered record always corresponds to a published epoch.
func (t *Tree) finishMutation(sn *snapshot, op mutOp) (uint64, error) {
	if err := t.rewriteDirectory(sn); err != nil {
		return 0, err
	}
	if err := t.sto.Err(); err != nil {
		return 0, err
	}
	var lsn uint64
	if t.wal != nil {
		lsn = t.wal.Append(op.kind, encodeMutOp(op, t.dim))
	}
	if t.reopt != nil {
		t.reopt.deltas = append(t.reopt.deltas, op)
	}
	t.publish(sn)
	return lsn, nil
}

// commitDurable group-commits the mutation's WAL record (no-op when
// logging is off) and runs an automatic checkpoint when the log has
// outgrown its threshold. Called after the writer locks are released, so
// concurrent writers' records share one fsync.
func (t *Tree) commitDurable(lsn uint64) error {
	if t.wal == nil || lsn == 0 {
		return nil
	}
	if err := t.wal.Commit(lsn); err != nil {
		return err
	}
	if n := t.opt.WALCheckpointBlocks; n > 0 && t.wal.Blocks() >= n {
		return t.Checkpoint()
	}
	return nil
}

// storeGroup writes a grown point group back to the page at `entry`: keep
// the page (possibly at a coarser level) or split it — recursively if the
// batch overflowed more than one level — with the cost model arbitrating
// between coarsening and splitting (Section 6).
func (t *Tree) storeGroup(s *store.Session, sn *snapshot, entry int, pts []vec.Point, ids []uint32, oldBits int) {
	newBits := t.fitBits(len(pts))
	if newBits > 0 {
		if newBits < oldBits && len(pts) >= 2 && t.splitIsCheaper(sn, entry, pts, newBits) {
			t.splitGroup(s, sn, entry, pts, ids)
		} else {
			t.rewritePage(s, sn, entry, pts, ids, newBits)
		}
		return
	}
	t.splitGroup(s, sn, entry, pts, ids)
}

// splitGroup median-splits a point group: the left half replaces the page
// at `entry`, the right half goes to a freshly appended entry; halves
// that still do not fit any level split further.
func (t *Tree) splitGroup(s *store.Session, sn *snapshot, entry int, pts []vec.Point, ids []uint32) {
	left, right := splitPoints(pts, ids)
	if bits := t.fitBits(len(left.pts)); bits > 0 {
		t.rewritePage(s, sn, entry, left.pts, left.ids, bits)
	} else {
		t.splitGroup(s, sn, entry, left.pts, left.ids)
	}
	sibling := sn.appendEntry()
	if bits := t.fitBits(len(right.pts)); bits > 0 {
		t.rewritePage(s, sn, sibling, right.pts, right.ids, bits)
	} else {
		t.splitGroup(s, sn, sibling, right.pts, right.ids)
	}
}

// Delete removes the point with the given coordinates and id. It returns
// found=false if no such point exists. A miss logs nothing; only a found
// delete produces a WAL record and a new epoch.
func (t *Tree) Delete(s *store.Session, p vec.Point, id uint32) (found bool, err error) {
	if len(p) != t.dim {
		return false, nil
	}
	op := mutOp{kind: walKindDelete, pts: []vec.Point{p.Clone()}, ids: []uint32{id}}
	var lsn uint64
	found, lsn, err = func() (bool, uint64, error) {
		t.world.RLock()
		defer t.world.RUnlock()
		t.mu.Lock()
		defer t.mu.Unlock()
		sn := t.load().clone()
		found, err := t.applyDelete(s, sn, op.pts[0], op.ids[0])
		if err != nil || !found {
			return found, 0, err
		}
		lsn, err := t.finishMutation(sn, op)
		return true, lsn, err
	}()
	if err != nil || !found {
		return found, err
	}
	if err := t.commitDurable(lsn); err != nil {
		return true, err
	}
	return true, t.autoReoptimize(s)
}

// applyDelete mutates sn in place: remove the first (id, coordinates)
// match, shrinking/merging/freeing its page. Caller holds t.mu (and
// world.RLock).
func (t *Tree) applyDelete(s *store.Session, sn *snapshot, p vec.Point, id uint32) (bool, error) {
	for i, e := range sn.entries {
		if sn.free[i] || !e.MBR.Contains(p) {
			continue
		}
		pts, ids, err := t.readPagePoints(s, sn, i)
		if err != nil {
			return false, err
		}
		for j := range ids {
			if ids[j] == id && pts[j].Equal(p) {
				pts = append(pts[:j], pts[j+1:]...)
				ids = append(ids[:j], ids[j+1:]...)
				sn.n--
				sn.model.N = sn.n
				if len(pts) == 0 {
					sn.free[i] = true
					sn.entries[i].Count = 0
					sn.clearOwner(int(sn.entries[i].QPos), i)
				} else {
					t.rewritePage(s, sn, i, pts, ids, t.fitBits(len(pts)))
					if err := t.tryMerge(s, sn, i); err != nil {
						return false, err
					}
				}
				return true, nil
			}
		}
	}
	return false, nil
}

// applyMutOp dispatches a decoded WAL record (or a captured reopt delta)
// through the same apply path the live mutation took, keeping replay
// bit-identical. Caller holds t.mu (and the world lock in some mode).
func (t *Tree) applyMutOp(s *store.Session, sn *snapshot, op mutOp) error {
	switch op.kind {
	case walKindInsert:
		return t.applyInsert(s, sn, op.pts[0], op.ids[0])
	case walKindInsertBatch:
		return t.applyInsertBatch(s, sn, op.pts, op.ids)
	case walKindDelete:
		_, err := t.applyDelete(s, sn, op.pts[0], op.ids[0])
		return err
	default:
		return fmt.Errorf("core: unknown WAL record kind %d", op.kind)
	}
}

// tryMerge implements the paper's "undo the split" maintenance (Section 6
// and end of 3.6): when a page has shrunk enough, look for a merge
// partner such that the combined page — stored at its affordable level —
// is predicted cheaper by the cost model than keeping the two pages (one
// fewer directory entry and second-level page). The partner with the
// smallest union volume is considered.
func (t *Tree) tryMerge(s *store.Session, sn *snapshot, entry int) error {
	e := sn.entries[entry]
	if int(e.Count) > t.pageCapacity(quantize.ExactBits)/2 {
		return nil // not small enough to bother
	}
	best, bestVol := -1, math.Inf(1)
	for j := range sn.entries {
		if j == entry || sn.free[j] {
			continue
		}
		if t.fitBits(int(e.Count)+int(sn.entries[j].Count)) == 0 {
			continue // combined page would not fit any level
		}
		u := e.MBR.Clone()
		u.ExtendMBR(sn.entries[j].MBR)
		if v := u.Volume(); v < bestVol {
			bestVol = v
			best = j
		}
	}
	if best < 0 {
		return nil
	}
	o := sn.entries[best]
	union := e.MBR.Clone()
	union.ExtendMBR(o.MBR)
	mergedCount := int(e.Count) + int(o.Count)
	mergedBits := t.fitBits(mergedCount)
	mergedVar := sn.model.RefinementCost(union, mergedCount, mergedBits)
	separateVar := sn.model.RefinementCost(e.MBR, int(e.Count), int(e.Bits)) +
		sn.model.RefinementCost(o.MBR, int(o.Count), int(o.Bits))
	n := sn.livePages()
	constNow := sn.model.DirectoryCost(n) + sn.model.SecondLevelCost(n)
	constMerged := sn.model.DirectoryCost(n-1) + sn.model.SecondLevelCost(n-1)
	if constMerged+mergedVar >= constNow+separateVar {
		return nil // keeping the split is predicted cheaper
	}
	pts, ids, err := t.readPagePoints(s, sn, entry)
	if err != nil {
		return err
	}
	pts2, ids2, err := t.readPagePoints(s, sn, best)
	if err != nil {
		return err
	}
	pts = append(pts, pts2...)
	ids = append(ids, ids2...)
	t.rewritePage(s, sn, entry, pts, ids, mergedBits)
	sn.free[best] = true
	sn.entries[best].Count = 0
	sn.clearOwner(int(sn.entries[best].QPos), best)
	return nil
}

// chooseEntry picks the page for an insert: the containing page with the
// smallest volume, else the page with the least volume enlargement
// (the classic R-tree ChooseLeaf on a flat directory).
func (sn *snapshot) chooseEntry(p vec.Point) int {
	best := -1
	bestVol := math.Inf(1)
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		if e.MBR.Contains(p) {
			if v := e.MBR.Volume(); v < bestVol {
				bestVol = v
				best = i
			}
		}
	}
	if best >= 0 {
		return best
	}
	bestEnl := math.Inf(1)
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		ext := e.MBR.Clone()
		ext.Extend(p)
		enl := ext.Volume() - e.MBR.Volume()
		if enl < bestEnl || (enl == bestEnl && best >= 0 && ext.Volume() < bestVol) {
			bestEnl = enl
			bestVol = ext.Volume()
			best = i
		}
	}
	return best
}

// readPagePoints loads the exact points and ids of a page, charging s.
func (t *Tree) readPagePoints(s *store.Session, sn *snapshot, entry int) ([]vec.Point, []uint32, error) {
	e := sn.entries[entry]
	if e.Count == 0 {
		return nil, nil, nil // empty (e.g. just-revived or appended) page: nothing to read
	}
	if e.Bits == quantize.ExactBits {
		buf, err := s.Read(t.qFile, int(e.QPos)*t.opt.QPageBlocks, t.opt.QPageBlocks)
		if err != nil {
			return nil, nil, err
		}
		qp := page.UnmarshalQPage(buf)
		pts, ids := qp.ExactPoints(t.dim)
		return pts, ids, nil
	}
	entrySize := page.ExactEntrySize(t.dim)
	raw, rel, err := s.ReadRange(t.eFile, int(e.EPos)*t.sto.Config().BlockSize, int(e.Count)*entrySize)
	if err != nil {
		return nil, nil, err
	}
	pts := make([]vec.Point, e.Count)
	ids := make([]uint32, e.Count)
	for i := 0; i < int(e.Count); i++ {
		pts[i], ids[i] = page.UnmarshalExactEntry(raw[rel+i*entrySize:], t.dim)
	}
	return pts, ids, nil
}

// splitIsCheaper compares, under the cost model, coarsening the page to
// newBits against splitting it into two pages (each at its own affordable
// level). It returns true when the split is predicted cheaper.
func (t *Tree) splitIsCheaper(sn *snapshot, entry int, pts []vec.Point, newBits int) bool {
	mbr := vec.MBROf(pts)
	coarsenVar := sn.model.RefinementCost(mbr, len(pts), newBits)

	lpts, rpts := splitPoints(pts, nil)
	lm, rm := vec.MBROf(lpts.pts), vec.MBROf(rpts.pts)
	splitVar := sn.model.RefinementCost(lm, len(lpts.pts), t.fitBits(len(lpts.pts))) +
		sn.model.RefinementCost(rm, len(rpts.pts), t.fitBits(len(rpts.pts)))

	nLive := sn.livePages()
	constNow := sn.model.DirectoryCost(nLive) + sn.model.SecondLevelCost(nLive)
	constSplit := sn.model.DirectoryCost(nLive+1) + sn.model.SecondLevelCost(nLive+1)
	return constSplit+splitVar < constNow+coarsenVar
}

// half carries one side of a point split.
type half struct {
	pts []vec.Point
	ids []uint32
}

// splitPoints splits a point set at the median of its MBR's longest
// dimension (the builder's split heuristic). ids may be nil.
func splitPoints(pts []vec.Point, ids []uint32) (left, right half) {
	mbr := vec.MBROf(pts)
	dim, _ := mbr.MaxSide()
	ord := make([]int, len(pts))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return pts[ord[a]][dim] < pts[ord[b]][dim] })
	mid := len(pts) / 2
	for i, o := range ord {
		h := &left
		if i >= mid {
			h = &right
		}
		h.pts = append(h.pts, pts[o])
		if ids != nil {
			h.ids = append(h.ids, ids[o])
		}
	}
	return left, right
}

// rewritePage re-quantizes a page out of place: new MBR, new level, a
// freshly appended second-level page version, and (for compressed levels)
// a fresh exact page. The old regions become garbage — they stay readable
// for snapshots pinned before this update and are reclaimed by the next
// Reoptimize.
func (t *Tree) rewritePage(s *store.Session, sn *snapshot, entry int, pts []vec.Point, ids []uint32, bits int) {
	if bits <= 0 {
		panic("core: rewritePage with non-fitting bits")
	}
	mbr := vec.MBROf(pts)
	grid := quantize.NewGrid(mbr, bits)
	e := &sn.entries[entry]
	sn.clearOwner(int(e.QPos), entry)
	e.Count = uint32(len(pts))
	e.Bits = uint8(bits)
	e.MBR = mbr
	// Write failures are recorded as the store's sticky error; the public
	// update entry points check Store.Err before publishing the epoch.
	var qbuf []byte
	if bits < quantize.ExactBits {
		epos, eblocks, err := t.eFile.Append(page.MarshalExact(pts, ids))
		if err == nil {
			e.EPos = uint32(epos)
			e.EBlocks = uint32(eblocks)
		}
		qbuf = page.MarshalQPage(grid, pts, nil, t.qPageBytes())
	} else {
		e.EPos, e.EBlocks = 0, 0
		qbuf = page.MarshalQPage(grid, pts, ids, t.qPageBytes())
	}
	if bpos, _, err := t.qFile.Append(qbuf); err == nil {
		e.QPos = uint32(bpos / t.opt.QPageBlocks)
		sn.setOwner(int(e.QPos), entry)
	}
	sn.grids[entry] = grid
	// Write cost: one seek plus the page transfer(s), attributed to the
	// quantized file (the exact-page rewrite rides on the same pass).
	s.ChargeWrite(t.qFile, 1, t.opt.QPageBlocks)
}

// rewriteDirectory re-serializes the whole first-level directory (it is
// small and scanned linearly anyway). The directory file only grows
// between compactions, so snapshots pinned with a shorter extent keep
// reading valid blocks.
func (t *Tree) rewriteDirectory(sn *snapshot) error {
	dirBuf := make([]byte, 0, len(sn.entries)*page.DirEntrySize(t.dim))
	entryBuf := make([]byte, page.DirEntrySize(t.dim))
	for i := range sn.entries {
		sn.entries[i].Marshal(entryBuf, t.dim)
		dirBuf = append(dirBuf, entryBuf...)
	}
	if err := t.dirFile.SetContents(dirBuf); err != nil {
		return err
	}
	sn.dirBlocks = t.dirFile.Blocks()
	return t.writeMeta(sn)
}

// ErrEmptyTree reports a maintenance operation that needs at least one
// live point — reoptimization rebuilds the physical structure from the
// data, and an emptied tree has none to rebuild from.
var ErrEmptyTree = errors.New("core: cannot reoptimize an empty tree")

// Reoptimize rebuilds the tree's physical structure from scratch over its
// current contents: fresh packed partitions, a fresh optimal quantization,
// and compacted files (garbage page versions from past updates are
// dropped). The paper notes that updates require "careful book-keeping"
// to maintain optimality; this batch variant simply drives the
// incremental stepper (reopt.go) to completion, so queries and updates
// keep running throughout — only the final swap step briefly excludes
// them.
func (t *Tree) Reoptimize() error {
	for {
		done, err := t.ReoptimizeStep(t.sto.NewSession())
		if err != nil || done {
			return err
		}
	}
}

// AllPoints returns every live (point, id) pair by reading the data files
// without charging any session (a maintenance/verification helper).
func (t *Tree) AllPoints() ([]vec.Point, []uint32, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	return t.allPoints(t.load())
}

func (t *Tree) allPoints(sn *snapshot) ([]vec.Point, []uint32, error) {
	free := t.sto.NewSession()
	var pts []vec.Point
	var ids []uint32
	for i := range sn.entries {
		if sn.free[i] {
			continue
		}
		p, id, err := t.readPagePoints(free, sn, i)
		if err != nil {
			return nil, nil, err
		}
		pts = append(pts, p...)
		ids = append(ids, id...)
	}
	return pts, ids, nil
}
