package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// Insert adds one point to the tree (paper Section 6 / end of 3.6): the
// point goes to the page needing least MBR enlargement; on page overflow
// the cost model decides between splitting the page and re-quantizing it
// at a coarser level. I/O performed by the maintenance operation is
// charged to s.
func (t *Tree) Insert(s *store.Session, p vec.Point, id uint32) error {
	if len(p) != t.dim {
		return fmt.Errorf("core: insert dimension %d, want %d", len(p), t.dim)
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	target := t.chooseEntry(p)
	if target < 0 {
		// Every page is free (the tree was emptied by deletes): revive a
		// slot instead of failing the insert.
		target = t.reviveFreeEntry()
	}
	if target < 0 {
		return fmt.Errorf("core: no page available for insert")
	}
	pts, ids, err := t.readPagePoints(s, target)
	if err != nil {
		return err
	}
	pts = append(pts, p.Clone())
	ids = append(ids, id)

	t.n++
	t.model.N = t.n
	t.dataSpace.Extend(p)
	t.model.DataSpace = t.dataSpace

	t.storeGroup(s, target, pts, ids, int(t.entries[target].Bits))
	if err := t.rewriteDirectory(); err != nil {
		return err
	}
	return t.sto.Err()
}

// InsertBatch adds many points at once, grouping them by target page so
// that each affected page is read, re-quantized and rewritten exactly
// once, and the directory is rewritten once at the end.
func (t *Tree) InsertBatch(s *store.Session, pts []vec.Point, ids []uint32) error {
	if len(pts) != len(ids) {
		return fmt.Errorf("core: %d points but %d ids", len(pts), len(ids))
	}
	for i, p := range pts {
		if len(p) != t.dim {
			return fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), t.dim)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	groups := make(map[int][]int)
	for i, p := range pts {
		target := t.chooseEntry(p)
		if target < 0 {
			target = t.reviveFreeEntry()
		}
		if target < 0 {
			return fmt.Errorf("core: no page available for insert")
		}
		groups[target] = append(groups[target], i)
		t.dataSpace.Extend(p)
	}
	t.n += len(pts)
	t.model.N = t.n
	t.model.DataSpace = t.dataSpace

	// Deterministic processing order (map iteration is randomized, and the
	// order determines the disk layout of appended pages).
	targets := make([]int, 0, len(groups))
	for target := range groups {
		targets = append(targets, target)
	}
	sort.Ints(targets)
	for _, target := range targets {
		members := groups[target]
		oldBits := int(t.entries[target].Bits)
		pagePts, pageIDs, err := t.readPagePoints(s, target)
		if err != nil {
			return err
		}
		for _, i := range members {
			pagePts = append(pagePts, pts[i].Clone())
			pageIDs = append(pageIDs, ids[i])
		}
		t.storeGroup(s, target, pagePts, pageIDs, oldBits)
	}
	if err := t.rewriteDirectory(); err != nil {
		return err
	}
	return t.sto.Err()
}

// storeGroup writes a grown point group back to the page at `entry`: keep
// the page (possibly at a coarser level) or split it — recursively if the
// batch overflowed more than one level — with the cost model arbitrating
// between coarsening and splitting (Section 6).
func (t *Tree) storeGroup(s *store.Session, entry int, pts []vec.Point, ids []uint32, oldBits int) {
	newBits := t.fitBits(len(pts))
	if newBits > 0 {
		if newBits < oldBits && len(pts) >= 2 && t.splitIsCheaper(entry, pts, newBits) {
			t.splitGroup(s, entry, pts, ids)
		} else {
			t.rewritePage(s, entry, pts, ids, newBits)
		}
		return
	}
	t.splitGroup(s, entry, pts, ids)
}

// splitGroup median-splits a point group: the left half replaces the page
// at `entry`, the right half goes to a freshly appended page; halves that
// still do not fit any level split further.
func (t *Tree) splitGroup(s *store.Session, entry int, pts []vec.Point, ids []uint32) {
	left, right := splitPoints(pts, ids)
	if bits := t.fitBits(len(left.pts)); bits > 0 {
		t.rewritePage(s, entry, left.pts, left.ids, bits)
	} else {
		t.splitGroup(s, entry, left.pts, left.ids)
	}
	sibling := t.appendEmptyPage()
	if bits := t.fitBits(len(right.pts)); bits > 0 {
		t.rewritePage(s, sibling, right.pts, right.ids, bits)
	} else {
		t.splitGroup(s, sibling, right.pts, right.ids)
	}
}

// appendEmptyPage reserves a new quantized page slot and directory entry,
// preserving the entry-index == page-position invariant.
func (t *Tree) appendEmptyPage() int {
	t.entries = append(t.entries, page.DirEntry{QPos: uint32(len(t.entries))})
	t.grids = append(t.grids, quantize.Grid{})
	t.free = append(t.free, false)
	t.qFile.Append(make([]byte, t.qPageBytes()))
	return len(t.entries) - 1
}

// Delete removes the point with the given coordinates and id. It returns
// found=false if no such point exists.
func (t *Tree) Delete(s *store.Session, p vec.Point, id uint32) (found bool, err error) {
	if len(p) != t.dim {
		return false, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range t.entries {
		if t.free[i] || !e.MBR.Contains(p) {
			continue
		}
		pts, ids, err := t.readPagePoints(s, i)
		if err != nil {
			return false, err
		}
		for j := range ids {
			if ids[j] == id && pts[j].Equal(p) {
				pts = append(pts[:j], pts[j+1:]...)
				ids = append(ids[:j], ids[j+1:]...)
				t.n--
				t.model.N = t.n
				if len(pts) == 0 {
					t.free[i] = true
					t.entries[i].Count = 0
				} else {
					t.rewritePage(s, i, pts, ids, t.fitBits(len(pts)))
					if err := t.tryMerge(s, i); err != nil {
						return false, err
					}
				}
				if err := t.rewriteDirectory(); err != nil {
					return false, err
				}
				return true, t.sto.Err()
			}
		}
	}
	return false, nil
}

// tryMerge implements the paper's "undo the split" maintenance (Section 6
// and end of 3.6): when a page has shrunk enough, look for a merge
// partner such that the combined page — stored at its affordable level —
// is predicted cheaper by the cost model than keeping the two pages (one
// fewer directory entry and second-level page). The partner with the
// smallest union volume is considered.
func (t *Tree) tryMerge(s *store.Session, entry int) error {
	e := t.entries[entry]
	if int(e.Count) > t.pageCapacity(quantize.ExactBits)/2 {
		return nil // not small enough to bother
	}
	best, bestVol := -1, math.Inf(1)
	for j := range t.entries {
		if j == entry || t.free[j] {
			continue
		}
		if t.fitBits(int(e.Count)+int(t.entries[j].Count)) == 0 {
			continue // combined page would not fit any level
		}
		u := e.MBR.Clone()
		u.ExtendMBR(t.entries[j].MBR)
		if v := u.Volume(); v < bestVol {
			bestVol = v
			best = j
		}
	}
	if best < 0 {
		return nil
	}
	o := t.entries[best]
	union := e.MBR.Clone()
	union.ExtendMBR(o.MBR)
	mergedCount := int(e.Count) + int(o.Count)
	mergedBits := t.fitBits(mergedCount)
	mergedVar := t.model.RefinementCost(union, mergedCount, mergedBits)
	separateVar := t.model.RefinementCost(e.MBR, int(e.Count), int(e.Bits)) +
		t.model.RefinementCost(o.MBR, int(o.Count), int(o.Bits))
	n := t.livePages()
	constNow := t.model.DirectoryCost(n) + t.model.SecondLevelCost(n)
	constMerged := t.model.DirectoryCost(n-1) + t.model.SecondLevelCost(n-1)
	if constMerged+mergedVar >= constNow+separateVar {
		return nil // keeping the split is predicted cheaper
	}
	pts, ids, err := t.readPagePoints(s, entry)
	if err != nil {
		return err
	}
	pts2, ids2, err := t.readPagePoints(s, best)
	if err != nil {
		return err
	}
	pts = append(pts, pts2...)
	ids = append(ids, ids2...)
	t.rewritePage(s, entry, pts, ids, mergedBits)
	t.free[best] = true
	t.entries[best].Count = 0
	return nil
}

// chooseEntry picks the page for an insert: the containing page with the
// smallest volume, else the page with the least volume enlargement
// (the classic R-tree ChooseLeaf on a flat directory).
func (t *Tree) chooseEntry(p vec.Point) int {
	best := -1
	bestVol := math.Inf(1)
	for i, e := range t.entries {
		if t.free[i] {
			continue
		}
		if e.MBR.Contains(p) {
			if v := e.MBR.Volume(); v < bestVol {
				bestVol = v
				best = i
			}
		}
	}
	if best >= 0 {
		return best
	}
	bestEnl := math.Inf(1)
	for i, e := range t.entries {
		if t.free[i] {
			continue
		}
		ext := e.MBR.Clone()
		ext.Extend(p)
		enl := ext.Volume() - e.MBR.Volume()
		if enl < bestEnl || (enl == bestEnl && best >= 0 && ext.Volume() < bestVol) {
			bestEnl = enl
			bestVol = ext.Volume()
			best = i
		}
	}
	return best
}

// reviveFreeEntry returns a free page slot to service, empty, to be
// filled by the caller's rewrite — used when an insert finds no live
// page because deletes emptied the whole tree. Returns -1 when no free
// slot exists either.
func (t *Tree) reviveFreeEntry() int {
	for i := range t.free {
		if t.free[i] {
			t.free[i] = false
			t.entries[i].Count = 0
			return i
		}
	}
	return -1
}

// readPagePoints loads the exact points and ids of a page, charging s.
func (t *Tree) readPagePoints(s *store.Session, entry int) ([]vec.Point, []uint32, error) {
	e := t.entries[entry]
	if e.Count == 0 {
		return nil, nil, nil // empty (e.g. just-revived) page: nothing to read
	}
	if e.Bits == quantize.ExactBits {
		buf, err := s.Read(t.qFile, int(e.QPos)*t.opt.QPageBlocks, t.opt.QPageBlocks)
		if err != nil {
			return nil, nil, err
		}
		qp := page.UnmarshalQPage(buf)
		pts, ids := qp.ExactPoints(t.dim)
		return pts, ids, nil
	}
	entrySize := page.ExactEntrySize(t.dim)
	raw, rel, err := s.ReadRange(t.eFile, int(e.EPos)*t.sto.Config().BlockSize, int(e.Count)*entrySize)
	if err != nil {
		return nil, nil, err
	}
	pts := make([]vec.Point, e.Count)
	ids := make([]uint32, e.Count)
	for i := 0; i < int(e.Count); i++ {
		pts[i], ids[i] = page.UnmarshalExactEntry(raw[rel+i*entrySize:], t.dim)
	}
	return pts, ids, nil
}

// splitIsCheaper compares, under the cost model, coarsening the page to
// newBits against splitting it into two pages (each at its own affordable
// level). It returns true when the split is predicted cheaper.
func (t *Tree) splitIsCheaper(entry int, pts []vec.Point, newBits int) bool {
	mbr := vec.MBROf(pts)
	coarsenVar := t.model.RefinementCost(mbr, len(pts), newBits)

	lpts, rpts := splitPoints(pts, nil)
	lm, rm := vec.MBROf(lpts.pts), vec.MBROf(rpts.pts)
	splitVar := t.model.RefinementCost(lm, len(lpts.pts), t.fitBits(len(lpts.pts))) +
		t.model.RefinementCost(rm, len(rpts.pts), t.fitBits(len(rpts.pts)))

	nLive := t.livePages()
	constNow := t.model.DirectoryCost(nLive) + t.model.SecondLevelCost(nLive)
	constSplit := t.model.DirectoryCost(nLive+1) + t.model.SecondLevelCost(nLive+1)
	return constSplit+splitVar < constNow+coarsenVar
}

func (t *Tree) livePages() int {
	n := 0
	for i := range t.entries {
		if !t.free[i] {
			n++
		}
	}
	return n
}

// half carries one side of a point split.
type half struct {
	pts []vec.Point
	ids []uint32
}

// splitPoints splits a point set at the median of its MBR's longest
// dimension (the builder's split heuristic). ids may be nil.
func splitPoints(pts []vec.Point, ids []uint32) (left, right half) {
	mbr := vec.MBROf(pts)
	dim, _ := mbr.MaxSide()
	ord := make([]int, len(pts))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return pts[ord[a]][dim] < pts[ord[b]][dim] })
	mid := len(pts) / 2
	for i, o := range ord {
		h := &left
		if i >= mid {
			h = &right
		}
		h.pts = append(h.pts, pts[o])
		if ids != nil {
			h.ids = append(h.ids, ids[o])
		}
	}
	return left, right
}

// rewritePage re-quantizes a page in place: new MBR, new level, new
// second-level page, and (for compressed levels) a fresh exact page. The
// old exact region becomes garbage, as in any out-of-place update scheme.
func (t *Tree) rewritePage(s *store.Session, entry int, pts []vec.Point, ids []uint32, bits int) {
	if bits <= 0 {
		panic("core: rewritePage with non-fitting bits")
	}
	mbr := vec.MBROf(pts)
	grid := quantize.NewGrid(mbr, bits)
	e := &t.entries[entry]
	e.Count = uint32(len(pts))
	e.Bits = uint8(bits)
	e.MBR = mbr
	// Write failures are recorded as the store's sticky error; the public
	// update entry points return Store.Err after the last write.
	if bits < quantize.ExactBits {
		exact := page.MarshalExact(pts, ids)
		blocks := t.sto.Config().Blocks(len(exact))
		if e.EBlocks >= uint32(blocks) && e.EBlocks > 0 {
			// Fits in the old region: rewrite in place.
			padded := make([]byte, int(e.EBlocks)*t.sto.Config().BlockSize)
			copy(padded, exact)
			t.eFile.WriteBlocks(int(e.EPos), padded)
		} else {
			epos, eblocks, err := t.eFile.Append(exact)
			if err == nil {
				e.EPos = uint32(epos)
				e.EBlocks = uint32(eblocks)
			}
		}
		t.qFile.WriteBlocks(int(e.QPos)*t.opt.QPageBlocks, page.MarshalQPage(grid, pts, nil, t.qPageBytes()))
	} else {
		e.EPos, e.EBlocks = 0, 0
		t.qFile.WriteBlocks(int(e.QPos)*t.opt.QPageBlocks, page.MarshalQPage(grid, pts, ids, t.qPageBytes()))
	}
	t.grids[entry] = grid
	// Write cost: one seek plus the page transfer(s), attributed to the
	// quantized file (the exact-page rewrite rides on the same pass).
	s.ChargeWrite(t.qFile, 1, t.opt.QPageBlocks)
}

// rewriteDirectory re-serializes the whole first-level directory (it is
// small and scanned linearly anyway).
func (t *Tree) rewriteDirectory() error {
	dirBuf := make([]byte, 0, len(t.entries)*page.DirEntrySize(t.dim))
	entryBuf := make([]byte, page.DirEntrySize(t.dim))
	for i := range t.entries {
		t.entries[i].Marshal(entryBuf, t.dim)
		dirBuf = append(dirBuf, entryBuf...)
	}
	if err := t.dirFile.SetContents(dirBuf); err != nil {
		return err
	}
	return t.writeMeta()
}

// Reoptimize rebuilds the tree's physical structure from scratch over its
// current contents: fresh packed partitions, a fresh optimal quantization,
// and compacted files (garbage exact regions from past updates are
// dropped). The paper notes that updates require "careful book-keeping"
// to maintain optimality; this is the batch variant — run it after heavy
// update traffic, guided by CostEstimate.
func (t *Tree) Reoptimize() error {
	pts, ids, err := t.AllPoints()
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(pts) == 0 {
		return fmt.Errorf("core: cannot reoptimize an empty tree")
	}
	if err := t.qFile.SetContents(nil); err != nil {
		return err
	}
	if err := t.eFile.SetContents(nil); err != nil {
		return err
	}
	t.entries = t.entries[:0]
	t.grids = t.grids[:0]
	t.free = t.free[:0]
	t.n = len(pts)
	t.model.N = t.n
	t.dataSpace = vec.MBROf(pts)
	t.model.DataSpace = t.dataSpace

	b := newBuilder(t, pts)
	b.ids = ids
	b.run()
	if err := t.writeMeta(); err != nil {
		return err
	}
	return t.sto.Err()
}

// AllPoints returns every live (point, id) pair by reading the data files
// without charging any session (a maintenance/verification helper).
func (t *Tree) AllPoints() ([]vec.Point, []uint32, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	free := t.sto.NewSession()
	var pts []vec.Point
	var ids []uint32
	for i := range t.entries {
		if t.free[i] {
			continue
		}
		p, id, err := t.readPagePoints(free, i)
		if err != nil {
			return nil, nil, err
		}
		pts = append(pts, p...)
		ids = append(ids, id...)
	}
	return pts, ids, nil
}
