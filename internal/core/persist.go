package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// File names of the IQ-tree's on-disk structure. The three data files
// correspond to the three levels of paper Fig. 3; the meta file is a
// superblock holding what a reopening process cannot recover from the
// levels themselves. The quantized and exact files carry a generation
// suffix after the first incremental reoptimization (see genName).
const (
	MetaFileName = "iq.meta"
	DirFileName  = "iq.dir"
	QFileName    = "iq.quant"
	EFileName    = "iq.exact"
)

// metaMagic identifies the superblock format.
const metaMagic = 0x49515452 // "IQTR"

// metaVersion 2 added the WAL flag, the data-file generation and the
// auto-checkpoint threshold; version-1 superblocks are rejected.
const metaVersion = 2

// writeMeta serializes the superblock for the given epoch. Layout
// (little-endian):
//
//	magic u32 | version u32 | dim u32 | entries u32 | live points u64 |
//	metric u8 | quantize u8 | optimizedIO u8 | wal u8 | qpageBlocks u32 |
//	fractalDim f64 | refineFactor f64 | gen u32 | ckptBlocks u32
//
// In WAL mode the dynamic fields (entries, live points, gen) are only
// trustworthy at checkpoints — the meta file is rewritten per update but
// fsynced only by checkpoints, and recovery takes them from the newest
// checkpoint record instead.
func (t *Tree) writeMeta(sn *snapshot) error {
	buf := make([]byte, 56)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], metaMagic)
	le.PutUint32(buf[4:], metaVersion)
	le.PutUint32(buf[8:], uint32(t.dim))
	le.PutUint32(buf[12:], uint32(len(sn.entries)))
	le.PutUint64(buf[16:], uint64(sn.n))
	buf[24] = uint8(t.opt.Metric)
	buf[25] = b2u(t.opt.Quantize)
	buf[26] = b2u(t.opt.OptimizedIO)
	buf[27] = b2u(t.opt.WAL)
	le.PutUint32(buf[28:], uint32(t.opt.QPageBlocks))
	le.PutUint64(buf[32:], math.Float64bits(t.fractalDim))
	le.PutUint64(buf[40:], math.Float64bits(sn.model.RefineFactor))
	le.PutUint32(buf[48:], t.gen)
	le.PutUint32(buf[52:], uint32(t.opt.WALCheckpointBlocks))
	return t.metaFile.SetContents(buf)
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Open reconstructs an IQ-tree from the files a previous Build (plus any
// later maintenance) left on the store — the same in-memory store, or a
// file-backed store reopened by another process. The returned tree
// answers queries and accepts updates exactly like the original.
//
// For a WAL-mode tree this is the recovery path: the newest valid
// checkpoint record provides the base state, the data files are trimmed
// back to its extents (discarding physical writes of mutations that will
// be replayed, or that were never acknowledged), the surviving WAL
// records are replayed through the normal apply path, and a fresh
// checkpoint makes the recovered state durable. Torn tails of either log
// are truncated, never replayed.
func Open(sto *store.Store) (*Tree, error) {
	meta := sto.File(MetaFileName)
	if meta == nil {
		return nil, errors.New("core: no IQ-tree on this store")
	}
	if meta.Blocks() == 0 {
		return nil, errors.New("core: empty meta file")
	}
	buf, err := meta.ReadRaw(0, 1)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != metaMagic {
		return nil, errors.New("core: bad meta magic")
	}
	if v := le.Uint32(buf[4:]); v != metaVersion {
		return nil, fmt.Errorf("core: unsupported meta version %d", v)
	}
	t := &Tree{
		sto:      sto,
		metaFile: meta,
		dim:      int(le.Uint32(buf[8:])),
	}
	t.opt = Options{
		Metric:              vec.Metric(buf[24]),
		Quantize:            buf[25] == 1,
		OptimizedIO:         buf[26] == 1,
		WAL:                 buf[27] == 1,
		QPageBlocks:         int(le.Uint32(buf[28:])),
		WALCheckpointBlocks: int(le.Uint32(buf[52:])),
	}
	t.fractalDim = math.Float64frombits(le.Uint64(buf[32:]))
	refineFactor := math.Float64frombits(le.Uint64(buf[40:]))
	if t.dirFile = sto.File(DirFileName); t.dirFile == nil {
		return nil, errors.New("core: missing directory file")
	}
	if t.opt.WAL {
		return t.recover(refineFactor)
	}

	t.gen = le.Uint32(buf[48:])
	if t.qFile = sto.File(genName(QFileName, t.gen)); t.qFile == nil {
		return nil, fmt.Errorf("core: missing quantized file (generation %d)", t.gen)
	}
	if t.eFile = sto.File(genName(EFileName, t.gen)); t.eFile == nil {
		return nil, fmt.Errorf("core: missing exact file (generation %d)", t.gen)
	}
	nEntries := int(le.Uint32(buf[12:]))

	// Rebuild the in-memory directory from level 1.
	entrySize := page.DirEntrySize(t.dim)
	if t.dirFile.Bytes() < nEntries*entrySize {
		return nil, fmt.Errorf("core: directory file too small for %d entries", nEntries)
	}
	var raw []byte
	if t.dirFile.Blocks() > 0 {
		if raw, err = t.dirFile.ReadRaw(0, t.dirFile.Blocks()); err != nil {
			return nil, err
		}
	}
	entries := make([]page.DirEntry, nEntries)
	for i := 0; i < nEntries; i++ {
		entries[i] = page.UnmarshalDirEntry(raw[i*entrySize:], t.dim)
	}
	sn := t.rebuildSnapshot(entries, int(le.Uint64(buf[16:])), nil, refineFactor)
	t.publish(sn)
	return t, nil
}

// rebuildSnapshot reconstructs a snapshot from serialized directory
// entries. dataSpace nil means "union of the live MBRs" (the legacy
// reconstruction); checkpoints supply the exact live value.
func (t *Tree) rebuildSnapshot(entries []page.DirEntry, n int, dataSpace *vec.MBR, refineFactor float64) *snapshot {
	sn := &snapshot{
		n:         n,
		dirBlocks: t.dirFile.Blocks(),
	}
	sn.dataSpace = vec.NewMBR(t.dim)
	// The quantized file may extend past the last live page (stale
	// versions from out-of-place updates); size the position index by the
	// file so batch scans can classify every position.
	if qpages := t.qFile.Blocks() / t.opt.QPageBlocks; qpages > 0 {
		sn.entryAt = make([]int32, qpages)
		for i := range sn.entryAt {
			sn.entryAt[i] = -1
		}
	}
	for i, e := range entries {
		sn.entries = append(sn.entries, e)
		bits := int(e.Bits)
		if bits < 1 || bits > quantize.ExactBits {
			bits = 1 // freed placeholder entries may carry stale levels
		}
		sn.grids = append(sn.grids, quantize.NewGrid(e.MBR, bits))
		free := e.Count == 0
		sn.free = append(sn.free, free)
		if !free {
			sn.dataSpace.ExtendMBR(e.MBR)
			sn.setOwner(int(e.QPos), i)
		}
	}
	if dataSpace != nil {
		sn.dataSpace = dataSpace.Clone()
	}
	sn.model = costmodel.Model{
		Disk:          t.sto.Config(),
		Metric:        t.opt.Metric,
		Dim:           t.dim,
		N:             sn.n,
		FractalDim:    t.fractalDim,
		DataSpace:     sn.dataSpace,
		DirEntryBytes: page.DirEntrySize(t.dim),
		QPageBlocks:   t.opt.QPageBlocks,
		ExactBlocks:   1,
		RefineFactor:  refineFactor,
	}
	return sn
}

// recover rebuilds a WAL-mode tree: newest checkpoint + log replay.
func (t *Tree) recover(refineFactor float64) (*Tree, error) {
	backend := t.sto.Backend()
	// Find the newest generation with a valid checkpoint record. A crash
	// mid-swap can leave two checkpoint logs; the newer one is only
	// authoritative if it holds a valid record.
	var (
		best    checkpointRecord
		bestLog string
		found   bool
	)
	for _, name := range backend.Names() {
		if !store.IsWALFile(name) {
			continue
		}
		gen, ok := genOfName(CkptBaseName, name[:len(name)-len(store.WALSuffix)])
		if !ok {
			continue
		}
		_, recs, err := store.InspectWAL(backend, name)
		if err != nil {
			return nil, err
		}
		// Last valid record wins within a log; iterate from the end.
		for i := len(recs) - 1; i >= 0; i-- {
			c, err := decodeCheckpoint(recs[i].Payload, t.dim)
			if err != nil || c.gen != gen {
				continue
			}
			if !found || c.gen > best.gen {
				best = c
				bestLog = name
				found = true
			}
			break
		}
	}
	if !found {
		return nil, errors.New("core: WAL-mode tree has no valid checkpoint")
	}
	t.gen = best.gen
	if t.qFile = t.sto.File(genName(QFileName, t.gen)); t.qFile == nil {
		return nil, fmt.Errorf("core: missing quantized file (generation %d)", t.gen)
	}
	if t.eFile = t.sto.File(genName(EFileName, t.gen)); t.eFile == nil {
		return nil, fmt.Errorf("core: missing exact file (generation %d)", t.gen)
	}
	// Trim physical writes past the checkpoint: they belong to mutations
	// that replay re-applies (identically, LSN order = apply order) or
	// that never got acknowledged.
	if err := t.qFile.Truncate(best.qBlocks); err != nil {
		return nil, err
	}
	if err := t.eFile.Truncate(best.eBlocks); err != nil {
		return nil, err
	}
	sn := t.rebuildSnapshot(best.entries, best.n, &best.dataSpace, refineFactor)

	ckptLog, _, _, err := store.OpenWAL(backend, bestLog)
	if err != nil {
		return nil, err
	}
	t.ckptLog = ckptLog
	wal, recs, _, err := store.OpenWAL(backend, WALFileName)
	if err != nil {
		return nil, err
	}
	t.wal = wal
	free := t.sto.NewSession()
	replayed := 0
	for _, r := range recs {
		if r.LSN <= best.lsn {
			continue // already reflected in the checkpoint's state
		}
		op, err := decodeMutOp(r.Kind, r.Payload, t.dim)
		if err != nil {
			return nil, fmt.Errorf("core: WAL replay LSN %d: %w", r.LSN, err)
		}
		if err := t.applyMutOp(free, sn, op); err != nil {
			return nil, fmt.Errorf("core: WAL replay LSN %d: %w", r.LSN, err)
		}
		replayed++
	}
	if err := t.rewriteDirectory(sn); err != nil {
		return nil, err
	}
	if err := t.sto.Err(); err != nil {
		return nil, err
	}
	// The recovered state becomes the new durable base; the WAL restarts
	// empty so a second recovery does not replay twice.
	if err := t.checkpoint(sn); err != nil {
		return nil, err
	}
	// Drop files of other generations: leftovers of a crashed swap (never
	// committed) or of a committed swap whose cleanup was interrupted.
	for _, name := range backend.Names() {
		stale := false
		if g, ok := genOfName(QFileName, name); ok && g != t.gen {
			stale = true
		}
		if g, ok := genOfName(EFileName, name); ok && g != t.gen {
			stale = true
		}
		if store.IsWALFile(name) {
			if g, ok := genOfName(CkptBaseName, name[:len(name)-len(store.WALSuffix)]); ok && g != t.gen {
				stale = true
			}
		}
		if stale {
			if err := t.sto.Remove(name); err != nil {
				return nil, err
			}
		}
	}
	t.publish(sn)
	return t, nil
}
