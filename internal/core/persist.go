package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// File names of the IQ-tree's on-disk structure. The three data files
// correspond to the three levels of paper Fig. 3; the meta file is a
// superblock holding what a reopening process cannot recover from the
// levels themselves.
const (
	MetaFileName = "iq.meta"
	DirFileName  = "iq.dir"
	QFileName    = "iq.quant"
	EFileName    = "iq.exact"
)

// metaMagic identifies the superblock format.
const metaMagic = 0x49515452 // "IQTR"

const metaVersion = 1

// writeMeta serializes the superblock for the given epoch. Layout
// (little-endian):
//
//	magic u32 | version u32 | dim u32 | entries u32 | live points u64 |
//	metric u8 | quantize u8 | optimizedIO u8 | pad | qpageBlocks u32 |
//	fractalDim f64 | refineFactor f64
func (t *Tree) writeMeta(sn *snapshot) error {
	buf := make([]byte, 48)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], metaMagic)
	le.PutUint32(buf[4:], metaVersion)
	le.PutUint32(buf[8:], uint32(t.dim))
	le.PutUint32(buf[12:], uint32(len(sn.entries)))
	le.PutUint64(buf[16:], uint64(sn.n))
	buf[24] = uint8(t.opt.Metric)
	buf[25] = b2u(t.opt.Quantize)
	buf[26] = b2u(t.opt.OptimizedIO)
	le.PutUint32(buf[28:], uint32(t.opt.QPageBlocks))
	le.PutUint64(buf[32:], math.Float64bits(t.fractalDim))
	le.PutUint64(buf[40:], math.Float64bits(sn.model.RefineFactor))
	return t.metaFile.SetContents(buf)
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Open reconstructs an IQ-tree from the files a previous Build (plus any
// later maintenance) left on the store — the same in-memory store, or a
// file-backed store reopened by another process. The returned tree
// answers queries and accepts updates exactly like the original.
func Open(sto *store.Store) (*Tree, error) {
	meta := sto.File(MetaFileName)
	dir := sto.File(DirFileName)
	qf := sto.File(QFileName)
	ef := sto.File(EFileName)
	if meta == nil || dir == nil || qf == nil || ef == nil {
		return nil, errors.New("core: no IQ-tree on this store")
	}
	if meta.Blocks() == 0 {
		return nil, errors.New("core: empty meta file")
	}
	buf, err := meta.ReadRaw(0, 1)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != metaMagic {
		return nil, errors.New("core: bad meta magic")
	}
	if v := le.Uint32(buf[4:]); v != metaVersion {
		return nil, fmt.Errorf("core: unsupported meta version %d", v)
	}
	t := &Tree{
		sto:      sto,
		metaFile: meta,
		dirFile:  dir,
		qFile:    qf,
		eFile:    ef,
		dim:      int(le.Uint32(buf[8:])),
	}
	nEntries := int(le.Uint32(buf[12:]))
	t.opt = Options{
		Metric:      vec.Metric(buf[24]),
		Quantize:    buf[25] == 1,
		OptimizedIO: buf[26] == 1,
		QPageBlocks: int(le.Uint32(buf[28:])),
	}
	t.fractalDim = math.Float64frombits(le.Uint64(buf[32:]))
	sn := &snapshot{
		n:         int(le.Uint64(buf[16:])),
		dirBlocks: dir.Blocks(),
	}

	// Rebuild the in-memory directory from level 1.
	entrySize := page.DirEntrySize(t.dim)
	if dir.Bytes() < nEntries*entrySize {
		return nil, fmt.Errorf("core: directory file too small for %d entries", nEntries)
	}
	var raw []byte
	if dir.Blocks() > 0 {
		if raw, err = dir.ReadRaw(0, dir.Blocks()); err != nil {
			return nil, err
		}
	}
	sn.dataSpace = vec.NewMBR(t.dim)
	// The quantized file may extend past the last live page (stale
	// versions from out-of-place updates); size the position index by the
	// file so batch scans can classify every position.
	if qpages := qf.Blocks() / t.opt.QPageBlocks; qpages > 0 {
		sn.entryAt = make([]int32, qpages)
		for i := range sn.entryAt {
			sn.entryAt[i] = -1
		}
	}
	for i := 0; i < nEntries; i++ {
		e := page.UnmarshalDirEntry(raw[i*entrySize:], t.dim)
		sn.entries = append(sn.entries, e)
		bits := int(e.Bits)
		if bits < 1 || bits > quantize.ExactBits {
			bits = 1 // freed placeholder entries may carry stale levels
		}
		sn.grids = append(sn.grids, quantize.NewGrid(e.MBR, bits))
		free := e.Count == 0
		sn.free = append(sn.free, free)
		if !free {
			sn.dataSpace.ExtendMBR(e.MBR)
			sn.setOwner(int(e.QPos), i)
		}
	}
	sn.model = costmodel.Model{
		Disk:          sto.Config(),
		Metric:        t.opt.Metric,
		Dim:           t.dim,
		N:             sn.n,
		FractalDim:    t.fractalDim,
		DataSpace:     sn.dataSpace,
		DirEntryBytes: entrySize,
		QPageBlocks:   t.opt.QPageBlocks,
		ExactBlocks:   1,
		RefineFactor:  math.Float64frombits(le.Uint64(buf[40:])),
	}
	t.publish(sn)
	return t, nil
}
