package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// File names of the IQ-tree's on-disk structure. The three data files
// correspond to the three levels of paper Fig. 3; the meta file is a
// superblock holding what a reopening process cannot recover from the
// levels themselves.
const (
	MetaFileName = "iq.meta"
	DirFileName  = "iq.dir"
	QFileName    = "iq.quant"
	EFileName    = "iq.exact"
)

// metaMagic identifies the superblock format.
const metaMagic = 0x49515452 // "IQTR"

const metaVersion = 1

// writeMeta serializes the superblock. Layout (little-endian):
//
//	magic u32 | version u32 | dim u32 | entries u32 | live points u64 |
//	metric u8 | quantize u8 | optimizedIO u8 | pad | qpageBlocks u32 |
//	fractalDim f64 | refineFactor f64
func (t *Tree) writeMeta() error {
	buf := make([]byte, 48)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], metaMagic)
	le.PutUint32(buf[4:], metaVersion)
	le.PutUint32(buf[8:], uint32(t.dim))
	le.PutUint32(buf[12:], uint32(len(t.entries)))
	le.PutUint64(buf[16:], uint64(t.n))
	buf[24] = uint8(t.opt.Metric)
	buf[25] = b2u(t.opt.Quantize)
	buf[26] = b2u(t.opt.OptimizedIO)
	le.PutUint32(buf[28:], uint32(t.opt.QPageBlocks))
	le.PutUint64(buf[32:], math.Float64bits(t.fractalDim))
	le.PutUint64(buf[40:], math.Float64bits(t.model.RefineFactor))
	return t.metaFile.SetContents(buf)
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Open reconstructs an IQ-tree from the files a previous Build (plus any
// later maintenance) left on the store — the same in-memory store, or a
// file-backed store reopened by another process. The returned tree
// answers queries and accepts updates exactly like the original.
func Open(sto *store.Store) (*Tree, error) {
	meta := sto.File(MetaFileName)
	dir := sto.File(DirFileName)
	qf := sto.File(QFileName)
	ef := sto.File(EFileName)
	if meta == nil || dir == nil || qf == nil || ef == nil {
		return nil, errors.New("core: no IQ-tree on this store")
	}
	if meta.Blocks() == 0 {
		return nil, errors.New("core: empty meta file")
	}
	buf, err := meta.ReadRaw(0, 1)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != metaMagic {
		return nil, errors.New("core: bad meta magic")
	}
	if v := le.Uint32(buf[4:]); v != metaVersion {
		return nil, fmt.Errorf("core: unsupported meta version %d", v)
	}
	t := &Tree{
		sto:      sto,
		metaFile: meta,
		dirFile:  dir,
		qFile:    qf,
		eFile:    ef,
		dim:      int(le.Uint32(buf[8:])),
		n:        int(le.Uint64(buf[16:])),
	}
	nEntries := int(le.Uint32(buf[12:]))
	t.opt = Options{
		Metric:      vec.Metric(buf[24]),
		Quantize:    buf[25] == 1,
		OptimizedIO: buf[26] == 1,
		QPageBlocks: int(le.Uint32(buf[28:])),
	}
	t.fractalDim = math.Float64frombits(le.Uint64(buf[32:]))

	// Rebuild the in-memory directory from level 1.
	entrySize := page.DirEntrySize(t.dim)
	if dir.Bytes() < nEntries*entrySize {
		return nil, fmt.Errorf("core: directory file too small for %d entries", nEntries)
	}
	var raw []byte
	if dir.Blocks() > 0 {
		if raw, err = dir.ReadRaw(0, dir.Blocks()); err != nil {
			return nil, err
		}
	}
	t.dataSpace = vec.NewMBR(t.dim)
	for i := 0; i < nEntries; i++ {
		e := page.UnmarshalDirEntry(raw[i*entrySize:], t.dim)
		t.entries = append(t.entries, e)
		bits := int(e.Bits)
		if bits < 1 || bits > quantize.ExactBits {
			bits = 1 // freed placeholder entries may carry stale levels
		}
		t.grids = append(t.grids, quantize.NewGrid(e.MBR, bits))
		free := e.Count == 0
		t.free = append(t.free, free)
		if !free {
			t.dataSpace.ExtendMBR(e.MBR)
		}
	}
	t.model = costmodel.Model{
		Disk:          sto.Config(),
		Metric:        t.opt.Metric,
		Dim:           t.dim,
		N:             t.n,
		FractalDim:    t.fractalDim,
		DataSpace:     t.dataSpace,
		DirEntryBytes: entrySize,
		QPageBlocks:   t.opt.QPageBlocks,
		ExactBlocks:   1,
		RefineFactor:  math.Float64frombits(le.Uint64(buf[40:])),
	}
	return t, nil
}
