package core

import (
	"encoding/binary"
	"errors"

	"repro/internal/store"
)

// Replica-shipping support (DESIGN.md §15): the LSN accessors the shard
// repairer uses to measure a replica's catch-up lag, and the watermark
// of a shipped-but-not-yet-opened directory.

// WALEnabled reports whether the tree logs its mutations (Options.WAL) —
// the precondition for WAL-shipping replica catch-up.
func (t *Tree) WALEnabled() bool { return t.wal != nil }

// AppliedLSN returns the LSN of the newest applied mutation (appends
// happen inside the same critical section as the apply, so appended ==
// applied), or 0 without WAL mode. This is the watermark a catching-up
// replica must reach.
func (t *Tree) AppliedLSN() uint64 {
	if t.wal == nil {
		return 0
	}
	return t.wal.AppendedLSN()
}

// DurableLSN returns the highest mutation LSN known durable, or 0
// without WAL mode.
func (t *Tree) DurableLSN() uint64 {
	if t.wal == nil {
		return 0
	}
	return t.wal.DurableLSN()
}

// RecoveredLSN reports the highest mutation LSN a WAL-mode tree
// directory covers — the newest checkpoint watermark or the last
// mutation-log record, whichever is higher — without opening the tree.
// After a ShipAll this is the resume point for tail shipping; after the
// tail catches up it is the LSN core.Open will recover to.
func RecoveredLSN(sto *store.Store) (uint64, error) {
	meta := sto.File(MetaFileName)
	if meta == nil || meta.Blocks() == 0 {
		return 0, errors.New("core: no IQ-tree meta on this store")
	}
	buf, err := meta.ReadRaw(0, 1)
	if err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return 0, errors.New("core: bad meta magic")
	}
	dim := int(binary.LittleEndian.Uint32(buf[8:]))
	backend := sto.Backend()
	var max uint64
	for _, name := range backend.Names() {
		if !store.IsWALFile(name) {
			continue
		}
		if _, ok := genOfName(CkptBaseName, name[:len(name)-len(store.WALSuffix)]); !ok {
			continue
		}
		_, recs, err := store.InspectWAL(backend, name)
		if err != nil {
			return 0, err
		}
		for i := len(recs) - 1; i >= 0; i-- {
			c, err := decodeCheckpoint(recs[i].Payload, dim)
			if err != nil {
				continue
			}
			if c.lsn > max {
				max = c.lsn
			}
			break
		}
	}
	info, _, err := store.InspectWAL(backend, WALFileName)
	if err != nil {
		return 0, err
	}
	if info.LastLSN > max {
		max = info.LastLSN
	}
	return max, nil
}
