// Package core implements the IQ-tree, the paper's primary contribution:
// a three-level compressed index for exact nearest-neighbor, k-nearest-
// neighbor and range search in high-dimensional point databases.
//
// Level 1 is a flat directory of exact MBRs, scanned sequentially per
// query. Level 2 holds fixed-size quantized data pages whose per-page
// quantization level g ∈ {1,2,4,8,16,32} is chosen by the cost-model
// optimization of Section 3.5. Level 3 holds exact coordinates, consulted
// only when a query cannot be decided on the approximation; 32-bit pages
// store exact data at level 2 and have no level-3 page.
//
// Queries run against a pluggable block store (package store) and report
// their cost in simulated seconds, reproducing the paper's time-based
// evaluation. On the simulator backend the accounting reproduces the
// paper's testbed; on the file-backed backend the same tree persists to a
// directory and can be reopened by another process.
//
// Concurrency: the tree is multi-version. Every query pins an immutable
// directory snapshot with one atomic load and runs lock-free against it;
// Insert, InsertBatch and Delete serialize on a writer mutex, write new
// page versions out of place and publish the next snapshot atomically,
// so readers and writers overlap freely (see DESIGN.md §8). Only
// Reoptimize — which compacts the data files in place — excludes
// queries, via a readers-writer lock that every entry point takes in
// read mode.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/costmodel"
	"repro/internal/fractal"
	"repro/internal/index"
	"repro/internal/page"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// Options configures construction of an IQ-tree.
type Options struct {
	// Metric is the query metric. Default Euclidean.
	Metric vec.Metric
	// QPageBlocks is the fixed size of a quantized data page in disk
	// blocks. Default 1.
	QPageBlocks int
	// Quantize enables independent quantization. When false, every page
	// stores exact 32-bit coordinates (the "no quantization" ablation of
	// paper Fig. 7: a plain bulk-loaded flat index).
	Quantize bool
	// OptimizedIO enables the time-optimized page access strategy of
	// Section 2.1. When false, the search loads one page per random
	// access, like a conventional index (the "standard NN-search"
	// ablation of Fig. 7).
	OptimizedIO bool
	// FractalDim is the fractal dimension D_F used by the cost model;
	// 0 means "estimate from the data" (correlation dimension).
	FractalDim float64
	// UniformModel forces the uniformity/independence cost model
	// (D_F = d) regardless of FractalDim; an ablation knob.
	UniformModel bool
	// RefineCostFactor scales the cost model's refinement (third-level)
	// cost during optimization. 1 uses the paper's model as-is; 0 means
	// "calibrate empirically from sampled self-queries" (the default).
	RefineCostFactor float64
	// KNNTarget is the neighbor count the cost model optimizes for
	// (paper footnote: the k-NN extension of Eq. 7/14/17). Default 1.
	// Queries with any k remain exact regardless of this knob.
	KNNTarget int
	// FixedBits, when non-zero, disables the optimal quantization and
	// stores every page at this level (must be one of 1,2,4,8,16,32) —
	// the "VA-file inside a tree" ablation against which the independent
	// (per-page) quantization is compared.
	FixedBits int
	// MaxBufferBlocks caps the length of one contiguous read during
	// range-query page fetching (the buffer-limited variant of Seeger et
	// al. [19]). 0 means unlimited.
	MaxBufferBlocks int
	// WAL enables write-ahead logging: Insert/InsertBatch/Delete are
	// acknowledged only once their logical record is durable in the log
	// (group commit amortizes the fsync), and Open replays the log after
	// a crash, restoring exactly the acknowledged state. See DESIGN.md
	// §13.
	WAL bool
	// WALCheckpointBlocks triggers an automatic checkpoint once the log
	// grows past this many blocks (0 = only explicit/maintenance
	// checkpoints). Only meaningful with WAL.
	WALCheckpointBlocks int
	// AutoReoptimize drives incremental reoptimization from the write
	// path: when a trigger fires (garbage ratio or quarantine pressure),
	// each acknowledged mutation also advances the rebuild by one
	// bounded step. The zero value disables it. A runtime knob — not
	// persisted in the meta file. See autoreopt.go.
	AutoReoptimize AutoReoptPolicy
}

// DefaultOptions returns the paper's full IQ-tree configuration.
func DefaultOptions() Options {
	return Options{
		Metric:      vec.Euclidean,
		QPageBlocks: 1,
		Quantize:    true,
		OptimizedIO: true,
	}
}

// Tree is a multi-version IQ-tree: searches pin an immutable snapshot
// and run lock-free; Insert and Delete serialize on the writer mutex and
// publish copy-on-write snapshots, so concurrent searches and updates
// are safe. Reoptimize is the only stop-the-world operation.
type Tree struct {
	// world excludes Reoptimize (write side) from everything else (read
	// side): queries and incremental updates hold it shared, so they
	// overlap freely; compaction rewrites the files in place and must
	// drain them first.
	world sync.RWMutex
	mu    sync.Mutex // serializes writers (Insert/InsertBatch/Delete)
	snap  atomic.Pointer[snapshot]
	// reoptGen counts Reoptimize runs; an NNIterator records it at
	// creation and refuses to continue across a compaction (its pinned
	// snapshot would point into rewritten file regions).
	reoptGen atomic.Uint64

	// quar tracks quarantined physical positions of the quantized file:
	// pages whose blocks failed checksum verification and are being
	// answered from their exact (level-3) shadow (see quarantine.go).
	quarMu sync.Mutex
	quar   map[int]struct{}

	opt Options
	sto *store.Store

	metaFile *store.File // superblock (see persist.go)
	dirFile  *store.File // level 1: directory entries
	qFile    *store.File // level 2: fixed-size quantized pages
	eFile    *store.File // level 3: exact pages (variable size)

	// gen numbers the live data-file generation: qFile/eFile are the
	// genName-suffixed files of this generation, and incremental
	// reoptimization builds generation gen+1 beside them. Only the final
	// reoptimize step (under world.Lock) changes gen or the file
	// pointers, so holders of world.RLock read them race-free.
	gen uint32

	// wal is the mutation log and ckptLog the checkpoint log; both nil
	// unless Options.WAL. Appends happen under t.mu (so LSN order equals
	// apply order); commits happen after t.mu is released.
	wal     *store.WAL
	ckptLog *store.WAL

	// reoptMu serializes incremental reoptimization steps; reopt holds
	// the in-flight run's state (guarded by t.mu for the fields writers
	// touch — see reopt.go).
	reoptMu sync.Mutex
	reopt   *reoptState

	dim        int
	fractalDim float64
}

// load pins the current snapshot (one atomic load).
func (t *Tree) load() *snapshot { return t.snap.Load() }

// publish installs sn as the current snapshot.
func (t *Tree) publish(sn *snapshot) { t.snap.Store(sn) }

// Epoch returns the epoch counter of the current snapshot; it increases
// by one per published update (tests use it to reason about snapshot
// isolation).
func (t *Tree) Epoch() uint64 { return t.load().epoch }

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of live points.
func (t *Tree) Len() int { return t.load().n }

// NumPages returns the number of live quantized data pages.
func (t *Tree) NumPages() int { return t.load().livePages() }

// Options returns the tree's construction options.
func (t *Tree) Options() Options { return t.opt }

// FractalDim returns the fractal dimension used by the cost model.
func (t *Tree) FractalDim() float64 { return t.fractalDim }

// Model returns a copy of the tree's cost model.
func (t *Tree) Model() costmodel.Model { return t.load().model }

// qPageBytes returns the byte size of one quantized page.
func (t *Tree) qPageBytes() int { return t.opt.QPageBlocks * t.sto.Config().BlockSize }

// qPayloadBytes returns the payload capacity of one quantized page.
func (t *Tree) qPayloadBytes() int { return t.qPageBytes() - page.QHeaderSize }

// pageCapacity returns the number of points a quantized page holds at the
// given level. Capacities follow the exact halving ladder of the split
// tree — cap(g) = cap(32)·32/g — so that splitting a full page always
// yields two full pages at the doubled level (the physical bit capacity
// is slightly larger for g < 32; the difference is the id overhead of the
// exact level, ~d/(d+1)).
func (t *Tree) pageCapacity(bits int) int {
	cap32 := page.QPageCapacity(t.qPayloadBytes(), t.dim, quantize.ExactBits)
	return cap32 * quantize.ExactBits / bits
}

// fitBits returns the largest quantization level whose page capacity
// accommodates count points, or 0 if count does not even fit at 1 bit.
func (t *Tree) fitBits(count int) int {
	best := 0
	for _, b := range quantize.Levels {
		if t.pageCapacity(b) >= count {
			best = b
		}
	}
	return best
}

// Build constructs an IQ-tree over pts on the given store. Point i is
// assigned id i. The point slice is not retained.
func Build(sto *store.Store, pts []vec.Point, opt Options) (*Tree, error) {
	if len(pts) == 0 {
		return nil, errors.New("core: cannot build over an empty point set")
	}
	dim := len(pts[0])
	if dim == 0 {
		return nil, errors.New("core: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if opt.QPageBlocks <= 0 {
		opt.QPageBlocks = 1
	}
	t := &Tree{
		opt: opt,
		sto: sto,
		dim: dim,
	}
	var err error
	if t.metaFile, err = sto.NewFile(MetaFileName); err != nil {
		return nil, err
	}
	if t.dirFile, err = sto.NewFile(DirFileName); err != nil {
		return nil, err
	}
	if t.qFile, err = sto.NewFile(QFileName); err != nil {
		return nil, err
	}
	if t.eFile, err = sto.NewFile(EFileName); err != nil {
		return nil, err
	}
	sn := &snapshot{n: len(pts), dataSpace: vec.MBROf(pts)}

	df := opt.FractalDim
	if opt.UniformModel {
		df = float64(dim)
	} else if df <= 0 {
		df = fractal.Estimate(pts, opt.Metric)
	}
	t.fractalDim = df
	sn.model = costmodel.Model{
		Disk:          sto.Config(),
		Metric:        opt.Metric,
		Dim:           dim,
		N:             len(pts),
		FractalDim:    df,
		DataSpace:     sn.dataSpace,
		DirEntryBytes: page.DirEntrySize(dim),
		QPageBlocks:   opt.QPageBlocks,
		ExactBlocks:   1,
		RefineFactor:  opt.RefineCostFactor,
		K:             opt.KNNTarget,
	}

	if page.QPageCapacity(t.qPayloadBytes(), dim, quantize.ExactBits) < 1 {
		return nil, fmt.Errorf("core: quantized page too small for even one %d-dimensional point", dim)
	}

	b := newBuilder(t, sn, pts)
	b.run()
	if err := t.writeMeta(sn); err != nil {
		return nil, err
	}
	if err := sto.Err(); err != nil {
		return nil, fmt.Errorf("core: build: %w", err)
	}
	if opt.WAL {
		if t.wal, err = store.CreateWAL(sto.Backend(), WALFileName); err != nil {
			return nil, err
		}
		if t.ckptLog, err = store.CreateWAL(sto.Backend(), ckptLogName(0)); err != nil {
			return nil, err
		}
		// The initial checkpoint makes the fresh build durable and gives
		// recovery its base state.
		if err := t.checkpoint(sn); err != nil {
			return nil, err
		}
	}
	t.publish(sn)
	return t, nil
}

// Store returns the block store the tree lives on.
func (t *Tree) Store() *store.Store { return t.sto }

// CostEstimate returns the cost model's predicted time per nearest-
// neighbor query for the current page configuration (Eq. 23).
func (t *Tree) CostEstimate() float64 {
	sn := t.load()
	return sn.model.Total(sn.pageInfos())
}

// Stats summarizes the physical structure of the tree.
type Stats struct {
	Points         int
	Pages          int
	BitsHistogram  map[int]int // quantization level → page count
	DirectoryBytes int
	QuantizedBytes int
	ExactBytes     int
	FractalDim     float64
	PredictedCost  float64 // model-estimated seconds per NN query
}

// Stats returns structural statistics of the tree.
func (t *Tree) Stats() Stats {
	sn := t.load()
	st := Stats{
		Points:         sn.n,
		BitsHistogram:  make(map[int]int),
		DirectoryBytes: t.dirFile.Bytes(),
		QuantizedBytes: t.qFile.Bytes(),
		ExactBytes:     t.eFile.Bytes(),
		FractalDim:     t.fractalDim,
	}
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		st.Pages++
		st.BitsHistogram[int(e.Bits)]++
	}
	st.PredictedCost = sn.model.Total(sn.pageInfos())
	return st
}

// IndexStats implements index.Index with the common cross-method shape
// summary.
func (t *Tree) IndexStats() index.Stats {
	sn := t.load()
	return index.Stats{
		Method: "IQ-tree",
		Points: sn.n,
		Dim:    t.dim,
		Pages:  sn.livePages(),
		Bytes:  t.dirFile.Bytes() + t.qFile.Bytes() + t.eFile.Bytes(),
	}
}

// PageInfoRow describes one live quantized page for introspection.
type PageInfoRow struct {
	QPos   int
	Count  int
	Bits   int
	Volume float64
	MBR    vec.MBR
}

// DescribePages returns one row per live page, in directory order — the
// raw material behind Stats' bits histogram, used by cmd/iqtool and
// tests.
func (t *Tree) DescribePages() []PageInfoRow {
	sn := t.load()
	rows := make([]PageInfoRow, 0, len(sn.entries))
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		rows = append(rows, PageInfoRow{
			QPos:   int(e.QPos),
			Count:  int(e.Count),
			Bits:   int(e.Bits),
			Volume: e.MBR.Volume(),
			MBR:    e.MBR.Clone(),
		})
	}
	return rows
}
