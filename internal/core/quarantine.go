package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/quantize"
	"repro/internal/store"
)

// Quarantine: when a read of the quantized file fails checksum
// verification (*store.CorruptBlockError), the damaged physical page
// position is quarantined on the tree. Searches skip quarantined pages'
// quantized representation and answer from the corresponding exact
// (level-3) page instead — the IQ-tree's own structure makes the
// degradation exact, because every compressed page's exact page holds
// strictly more information than its quantized approximation. Results
// stay bit-identical to a clean run; only the cost degrades (an exact
// page read replaces the filter step).
//
// The quarantine is keyed by physical page position, so an update that
// rewrites the page out of place (new position) heals the entry
// automatically; Repair does exactly that for every quarantined live
// page, and Reoptimize — which truncates the data files — clears the
// set wholesale.
//
// 32-bit (exact-mode) level-2 pages store the only copy of their points
// and have no level-3 shadow: corruption there is unrecoverable and
// surfaces as a typed error wrapping ErrUnrecoverable (never a silently
// wrong result).

// ErrUnrecoverable marks corruption with no redundant copy to recover
// from: a corrupt exact-mode (32-bit) level-2 page.
var ErrUnrecoverable = errors.New("core: page unrecoverable")

var (
	metricQuarantines   = obs.Default().Counter("core.quarantines")
	metricDegradedReads = obs.Default().Counter("core.degraded_reads")
	metricRepairedPages = obs.Default().Counter("core.repaired_pages")
)

// corruptQPage reports whether err is a checksum failure in the current
// generation's quantized file — the only file with a level-3 fallback.
// Callers hold world.RLock, under which the file pointer is stable.
func (t *Tree) corruptQPage(err error) bool {
	var cbe *store.CorruptBlockError
	return errors.As(err, &cbe) && cbe.File == t.qFile.Name()
}

// unrecoverablePage builds the typed error for a corrupt exact-mode page.
func unrecoverablePage(pos, entry int, cause error) error {
	if cause == nil {
		return fmt.Errorf("core: quantized page %d (entry %d) stores exact data with no level-3 shadow: %w",
			pos, entry, ErrUnrecoverable)
	}
	return fmt.Errorf("core: quantized page %d (entry %d) stores exact data with no level-3 shadow: %w: %w",
		pos, entry, ErrUnrecoverable, cause)
}

// quarantinePage marks the physical page position as damaged.
func (t *Tree) quarantinePage(pos int) {
	t.quarMu.Lock()
	defer t.quarMu.Unlock()
	if t.quar == nil {
		t.quar = make(map[int]struct{})
	}
	if _, ok := t.quar[pos]; ok {
		return
	}
	t.quar[pos] = struct{}{}
	metricQuarantines.Inc()
}

// isQuarantined reports whether the physical page position is damaged.
func (t *Tree) isQuarantined(pos int) bool {
	t.quarMu.Lock()
	defer t.quarMu.Unlock()
	_, ok := t.quar[pos]
	return ok
}

// anyQuarantinedIn reports whether any position in [first, last] is
// quarantined (used to keep batch reads from spanning known damage).
func (t *Tree) anyQuarantinedIn(first, last int) bool {
	t.quarMu.Lock()
	defer t.quarMu.Unlock()
	if len(t.quar) == 0 {
		return false
	}
	if len(t.quar) < last-first+1 {
		for pos := range t.quar {
			if pos >= first && pos <= last {
				return true
			}
		}
		return false
	}
	for pos := first; pos <= last; pos++ {
		if _, ok := t.quar[pos]; ok {
			return true
		}
	}
	return false
}

// clearQuarantine empties the quarantine set (Reoptimize rebuilt and
// compacted the data files, so old positions are meaningless).
func (t *Tree) clearQuarantine() {
	t.quarMu.Lock()
	defer t.quarMu.Unlock()
	t.quar = nil
}

// QuarantinedPages returns the quarantined physical page positions in
// sorted order. Positions may outlive the entries that were damaged
// (a rewrite moves the entry to a fresh position but the old blocks
// stay damaged at rest until Reoptimize compacts them away).
func (t *Tree) QuarantinedPages() []int {
	t.quarMu.Lock()
	defer t.quarMu.Unlock()
	out := make([]int, 0, len(t.quar))
	for pos := range t.quar {
		out = append(out, pos)
	}
	sort.Ints(out)
	return out
}

// DegradedEntries returns the directory indices of live pages currently
// served from their exact shadow because their quantized page is
// quarantined. Empty after a successful Repair.
func (t *Tree) DegradedEntries() []int {
	sn := t.load()
	var out []int
	for i, e := range sn.entries {
		if sn.free[i] {
			continue
		}
		if t.isQuarantined(int(e.QPos)) {
			out = append(out, i)
		}
	}
	return out
}

// Repair rewrites every quarantined live page from its exact (level-3)
// page: the points are re-read from the undamaged exact copy,
// re-quantized at the page's level, and appended out of place like any
// update, so the repaired entry points at fresh, checksummed blocks and
// queries stop paying the degraded-read cost. It returns the number of
// pages repaired. Repair cannot fix a corrupt exact-mode (32-bit) page —
// that has no redundant copy — and reports it via ErrUnrecoverable;
// Reoptimize (over the surviving points) or a restore is needed then.
func (t *Tree) Repair(s *store.Session) (int, error) {
	t.world.RLock()
	defer t.world.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	sn := t.load().clone()
	repaired := 0
	for i := range sn.entries {
		if sn.free[i] || !t.isQuarantined(int(sn.entries[i].QPos)) {
			continue
		}
		e := sn.entries[i]
		if int(e.Bits) == quantize.ExactBits {
			return repaired, unrecoverablePage(int(e.QPos), i, nil)
		}
		pts, ids, err := t.readPagePoints(s, sn, i)
		if err != nil {
			return repaired, err
		}
		t.rewritePage(s, sn, i, pts, ids, int(e.Bits))
		repaired++
	}
	if repaired == 0 {
		return 0, nil
	}
	if err := t.rewriteDirectory(sn); err != nil {
		return repaired, err
	}
	if err := t.sto.Err(); err != nil {
		return repaired, err
	}
	t.publish(sn)
	metricRepairedPages.Add(int64(repaired))
	return repaired, nil
}
