package core

import (
	"math/rand"
	"testing"

	"repro/internal/store"
)

// Shipping tests at the tree level: a Shipper copy of a live WAL-mode
// tree's directory, opened through the normal recovery path, must
// reproduce the source bit-identically — the same contract as
// kill-and-recover, with the "crash image" transported to another
// backend instead of reopened in place.

// shipTree runs a full ShipAll from the tree's backend onto a fresh sim
// backend and returns the destination backend with the report.
func shipTree(t *testing.T, tr *Tree) (store.BlockStore, store.ShipReport) {
	t.Helper()
	dst := store.NewSimStore(store.DefaultConfig())
	sh := &store.Shipper{Src: tr.sto.Backend(), Dst: dst, TailWAL: WALFileName}
	rep, err := sh.ShipAll()
	if err != nil {
		t.Fatalf("ShipAll: %v", err)
	}
	return dst, rep
}

// TestShipCheckpointOnlyFreshReplica: a freshly checkpointed source has
// an empty mutation log, so the ship is checkpoint-only — zero records —
// and the destination still opens to an identical tree (the shipped
// checkpoint is the whole state).
func TestShipCheckpointOnlyFreshReplica(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	base := randPoints(r, 400, 8)
	extra := randPoints(r, 120, 8)
	live := buildWALTree(t, base, walTestOptions())
	twin := buildWALTree(t, base, walTestOptions())
	applyInsertDeleteMix(t, []*Tree{live, twin}, base, extra)
	if err := live.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	dst, rep := shipTree(t, live)
	// Records counts checkpoint-log frames too; LastLSN is reported for
	// the mutation log only, and a freshly checkpointed source has none.
	if rep.LastLSN != 0 {
		t.Fatalf("checkpoint-only ship carried mutation records to LSN %d", rep.LastLSN)
	}
	dstStore := store.Wrap(dst)
	lsn, err := RecoveredLSN(dstStore)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != live.AppliedLSN() {
		t.Fatalf("shipped watermark %d, source applied %d", lsn, live.AppliedLSN())
	}

	rec, err := Open(dstStore)
	if err != nil {
		t.Fatalf("open shipped replica: %v", err)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	assertTreesEqual(t, rec, twin, randPoints(r, 10, 8))
}

// TestShipAcrossGenerationSwap: the source reoptimizes (generation 0 →
// 1, fresh checkpoint log, mutation log reset) and keeps mutating; a
// full ship plus a tail ship must land the destination on the same
// generation and the same bytes as a never-shipped twin.
func TestShipAcrossGenerationSwap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	base := randPoints(r, 400, 8)
	extra := randPoints(r, 120, 8)
	live := buildWALTree(t, base, walTestOptions())
	twin := buildWALTree(t, base, walTestOptions())
	applyInsertDeleteMix(t, []*Tree{live, twin}, base, extra)
	for _, tr := range []*Tree{live, twin} {
		if err := tr.Reoptimize(); err != nil {
			t.Fatal(err)
		}
		if tr.gen != 1 {
			t.Fatalf("expected generation 1 after reoptimize, got %d", tr.gen)
		}
	}
	// Post-swap mutations land in the fresh (generation 1) WAL.
	tail1 := randPoints(r, 40, 8)
	for _, tr := range []*Tree{live, twin} {
		s := tr.sto.NewSession()
		for i, p := range tail1 {
			if err := tr.Insert(s, p, uint32(300000+i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	dst, _ := shipTree(t, live)
	dstStore := store.Wrap(dst)
	baseLSN, err := RecoveredLSN(dstStore)
	if err != nil {
		t.Fatal(err)
	}

	// The source keeps moving after the full copy; the destination
	// catches up by tail alone.
	tail2 := randPoints(r, 40, 8)
	for _, tr := range []*Tree{live, twin} {
		s := tr.sto.NewSession()
		for i, p := range tail2 {
			if err := tr.Insert(s, p, uint32(400000+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sh := &store.Shipper{Src: live.sto.Backend(), Dst: dst, TailWAL: WALFileName}
	rep, err := sh.ShipTail(WALFileName, baseLSN)
	if err != nil {
		t.Fatalf("ShipTail: %v", err)
	}
	if rep.LastLSN != live.AppliedLSN() {
		t.Fatalf("tail shipped to LSN %d, source applied %d", rep.LastLSN, live.AppliedLSN())
	}

	rec, err := Open(store.Wrap(dst))
	if err != nil {
		t.Fatalf("open shipped replica: %v", err)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rec.gen != 1 {
		t.Fatalf("shipped replica recovered generation %d, want 1", rec.gen)
	}
	assertTreesEqual(t, rec, twin, randPoints(r, 10, 8))
}
