package core

import (
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/vec"
)

func TestOpenReconstructsTree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 3000, 8)
	dsk := disk.New(disk.DefaultConfig())
	orig, err := Build(dsk, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dsk)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != orig.Len() || reopened.Dim() != orig.Dim() {
		t.Fatalf("metadata mismatch: %d/%d vs %d/%d",
			reopened.Len(), reopened.Dim(), orig.Len(), orig.Dim())
	}
	if reopened.NumPages() != orig.NumPages() {
		t.Fatalf("pages %d vs %d", reopened.NumPages(), orig.NumPages())
	}
	if reopened.FractalDim() != orig.FractalDim() {
		t.Fatalf("fractal dim %f vs %f", reopened.FractalDim(), orig.FractalDim())
	}

	queries := randPoints(r, 15, 8)
	for qi, q := range queries {
		a := orig.KNN(dsk.NewSession(), q, 5)
		b := reopened.KNN(dsk.NewSession(), q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %d: result counts differ", qi)
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("query %d: %f vs %f", qi, a[i].Dist, b[i].Dist)
			}
		}
	}
}

func TestOpenedTreeAcceptsUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 1000, 4)
	dsk := disk.New(disk.DefaultConfig())
	if _, err := Build(dsk, pts, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	tr, err := Open(dsk)
	if err != nil {
		t.Fatal(err)
	}
	s := dsk.NewSession()
	extra := randPoints(r, 300, 4)
	all := append(append([]vec.Point{}, pts...), extra...)
	for i, p := range extra {
		if err := tr.Insert(s, p, uint32(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	checkKNN(t, tr, all, randPoints(r, 8, 4), 3, vec.Euclidean)

	// Reopen once more after the updates and verify again.
	tr2, err := Open(dsk)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != len(all) {
		t.Fatalf("post-update reopen Len = %d, want %d", tr2.Len(), len(all))
	}
	checkKNN(t, tr2, all, randPoints(r, 8, 4), 3, vec.Euclidean)
}

func TestOpenWithDeletedPages(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 800, 3)
	dsk := disk.New(disk.DefaultConfig())
	tr, err := Build(dsk, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := dsk.NewSession()
	var remaining []vec.Point
	for i, p := range pts {
		if i < 400 {
			if !tr.Delete(s, p, uint32(i)) {
				t.Fatalf("delete %d failed", i)
			}
		} else {
			remaining = append(remaining, p)
		}
	}
	tr2, err := Open(dsk)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != len(remaining) {
		t.Fatalf("Len %d, want %d", tr2.Len(), len(remaining))
	}
	for qi, q := range randPoints(r, 6, 3) {
		got := tr2.KNN(dsk.NewSession(), q, 2)
		want := bruteKNN(remaining, q, 2, vec.Euclidean)
		for i := range got {
			if diff := got[i].Dist - want[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("query %d: %f vs %f", qi, got[i].Dist, want[i])
			}
		}
	}
}

func TestOpenErrors(t *testing.T) {
	dsk := disk.New(disk.DefaultConfig())
	if _, err := Open(dsk); err == nil {
		t.Fatal("open on an empty disk should fail")
	}
	// Corrupt the magic.
	r := rand.New(rand.NewSource(4))
	tr, err := Build(dsk, randPoints(r, 100, 2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	meta := dsk.File(MetaFileName)
	blk := make([]byte, dsk.Config().BlockSize)
	meta.WriteBlocks(0, blk)
	if _, err := Open(dsk); err == nil {
		t.Fatal("corrupt magic should fail")
	}
}
