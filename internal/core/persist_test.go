package core

import (
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

func TestOpenReconstructsTree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 3000, 8)
	sto := store.NewSim(store.DefaultConfig())
	orig, err := Build(sto, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(sto)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != orig.Len() || reopened.Dim() != orig.Dim() {
		t.Fatalf("metadata mismatch: %d/%d vs %d/%d",
			reopened.Len(), reopened.Dim(), orig.Len(), orig.Dim())
	}
	if reopened.NumPages() != orig.NumPages() {
		t.Fatalf("pages %d vs %d", reopened.NumPages(), orig.NumPages())
	}
	if reopened.FractalDim() != orig.FractalDim() {
		t.Fatalf("fractal dim %f vs %f", reopened.FractalDim(), orig.FractalDim())
	}

	queries := randPoints(r, 15, 8)
	for qi, q := range queries {
		a, err := orig.KNN(sto.NewSession(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reopened.KNN(sto.NewSession(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: result counts differ", qi)
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("query %d: %f vs %f", qi, a[i].Dist, b[i].Dist)
			}
		}
	}
}

func TestOpenedTreeAcceptsUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 1000, 4)
	sto := store.NewSim(store.DefaultConfig())
	if _, err := Build(sto, pts, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	tr, err := Open(sto)
	if err != nil {
		t.Fatal(err)
	}
	s := sto.NewSession()
	extra := randPoints(r, 300, 4)
	all := append(append([]vec.Point{}, pts...), extra...)
	for i, p := range extra {
		if err := tr.Insert(s, p, uint32(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	checkKNN(t, tr, all, randPoints(r, 8, 4), 3, vec.Euclidean)

	// Reopen once more after the updates and verify again.
	tr2, err := Open(sto)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != len(all) {
		t.Fatalf("post-update reopen Len = %d, want %d", tr2.Len(), len(all))
	}
	checkKNN(t, tr2, all, randPoints(r, 8, 4), 3, vec.Euclidean)
}

func TestOpenWithDeletedPages(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 800, 3)
	sto := store.NewSim(store.DefaultConfig())
	tr, err := Build(sto, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := sto.NewSession()
	var remaining []vec.Point
	for i, p := range pts {
		if i < 400 {
			if ok, err := tr.Delete(s, p, uint32(i)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			} else if !ok {
				t.Fatalf("delete %d failed", i)
			}
		} else {
			remaining = append(remaining, p)
		}
	}
	tr2, err := Open(sto)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != len(remaining) {
		t.Fatalf("Len %d, want %d", tr2.Len(), len(remaining))
	}
	for qi, q := range randPoints(r, 6, 3) {
		got, err := tr2.KNN(sto.NewSession(), q, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(remaining, q, 2, vec.Euclidean)
		for i := range got {
			if diff := got[i].Dist - want[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("query %d: %f vs %f", qi, got[i].Dist, want[i])
			}
		}
	}
}

// TestFileStoreMutateAfterReopen is the durability round-trip of the
// bugfix sweep: build → close → reopen → insert → close → reopen →
// query, on real files, with a buffer pool attached in every phase so a
// stale cache or an unsynced write surfaces as a wrong query result.
func TestFileStoreMutateAfterReopen(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 1200, 6)
	extra := randPoints(r, 150, 6)
	all := append(append([]vec.Point{}, pts...), extra...)

	// Phase 1: build and close.
	sto, err := store.OpenFileStore(dir, store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sto.SetCache(1 << 20)
	if _, err := Build(sto, pts, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if err := sto.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: reopen, insert, close.
	sto, err = store.OpenFileStore(dir, store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sto.SetCache(1 << 20)
	tr, err := Open(sto)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("reopened Len %d, want %d", tr.Len(), len(pts))
	}
	s := sto.NewSession()
	for i, p := range extra {
		if err := tr.Insert(s, p, uint32(len(pts)+i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := sto.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 3: reopen and query; results must reflect the inserts.
	sto, err = store.OpenFileStore(dir, store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sto.Close()
	sto.SetCache(1 << 20)
	tr, err = Open(sto)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(all) {
		t.Fatalf("final Len %d, want %d", tr.Len(), len(all))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range randPoints(r, 10, 6) {
		got, err := tr.KNN(sto.NewSession(), q, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(all, q, 3, vec.Euclidean)
		for i := range got {
			if diff := got[i].Dist - want[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("query %d rank %d: %f vs %f", qi, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestOpenErrors(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	if _, err := Open(sto); err == nil {
		t.Fatal("open on an empty disk should fail")
	}
	// Corrupt the magic.
	r := rand.New(rand.NewSource(4))
	tr, err := Build(sto, randPoints(r, 100, 2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	meta := sto.File(MetaFileName)
	blk := make([]byte, sto.Config().BlockSize)
	if err := meta.WriteBlocks(0, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(sto); err == nil {
		t.Fatal("corrupt magic should fail")
	}
}
