package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vec"
)

func TestIteratorFullRanking(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 1200, 6)
	tr := buildTree(t, pts, DefaultOptions())
	q := randPoints(r, 1, 6)[0]

	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = vec.Euclidean.Dist(q, p)
	}
	sort.Float64s(want)

	it := tr.NewNNIterator(tr.sto.NewSession(), q)
	for i := 0; i < len(pts); i++ {
		nb, ok := it.Next()
		if !ok {
			t.Fatalf("iterator exhausted after %d of %d: %v", i, len(pts), it.Err())
		}
		if math.Abs(nb.Dist-want[i]) > 1e-5 {
			t.Fatalf("rank %d: dist %.7f, want %.7f", i, nb.Dist, want[i])
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator returned more points than the database holds")
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorPrefixMatchesKNN(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 3000, 10)
	tr := buildTree(t, pts, DefaultOptions())
	for qi, q := range randPoints(r, 5, 10) {
		knn := mustKNN(t, tr, q, 12)
		it := tr.NewNNIterator(tr.sto.NewSession(), q)
		for i := 0; i < 12; i++ {
			nb, ok := it.Next()
			if !ok {
				t.Fatalf("query %d: iterator dry at %d", qi, i)
			}
			if math.Abs(nb.Dist-knn[i].Dist) > 1e-6 {
				t.Fatalf("query %d rank %d: %.7f vs KNN %.7f", qi, i, nb.Dist, knn[i].Dist)
			}
		}
	}
}

func TestIteratorCostGrowsWithPulls(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 5000, 8)
	tr := buildTree(t, pts, DefaultOptions())
	q := randPoints(r, 1, 8)[0]

	s := tr.sto.NewSession()
	it := tr.NewNNIterator(s, q)
	it.Next()
	after1 := s.Time()
	for i := 0; i < 500; i++ {
		it.Next()
	}
	after500 := s.Time()
	if after500 <= after1 {
		t.Fatalf("pulling 500 more neighbors cost nothing: %f vs %f", after500, after1)
	}
	// The first pull must not have paid for the whole database.
	sFull := tr.sto.NewSession()
	full := tr.NewNNIterator(sFull, q)
	for {
		if _, ok := full.Next(); !ok {
			break
		}
	}
	if after1 >= sFull.Time() {
		t.Fatalf("first pull cost the full enumeration: %f vs %f", after1, sFull.Time())
	}
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorVariants(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 1000, 5)
	for _, opt := range []Options{
		DefaultOptions(),
		{Metric: vec.Maximum, QPageBlocks: 1, Quantize: true, OptimizedIO: true},
		{Metric: vec.Euclidean, QPageBlocks: 1, Quantize: false, OptimizedIO: false},
	} {
		tr := buildTree(t, pts, opt)
		q := randPoints(r, 1, 5)[0]
		want := make([]float64, len(pts))
		for i, p := range pts {
			want[i] = opt.Metric.Dist(q, p)
		}
		sort.Float64s(want)
		it := tr.NewNNIterator(tr.sto.NewSession(), q)
		for i := 0; i < 50; i++ {
			nb, ok := it.Next()
			if !ok || math.Abs(nb.Dist-want[i]) > 1e-5 {
				t.Fatalf("opt %+v rank %d: %+v want %.7f", opt, i, nb, want[i])
			}
		}
	}
}
