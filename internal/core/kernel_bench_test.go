package core

import (
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// benchTree builds a moderately sized IQ-tree on the simulator backend
// for hot-path benchmarking: clustered data keeps a healthy mix of
// quantization levels so the filter kernels see realistic pages.
func benchTree(b *testing.B, n, dim int) (*Tree, []vec.Point) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	pts := make([]vec.Point, n)
	centers := make([]vec.Point, 16)
	for i := range centers {
		c := make(vec.Point, dim)
		for j := range c {
			c[j] = rng.Float32()
		}
		centers[i] = c
	}
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = c[j] + 0.05*(rng.Float32()-0.5)
		}
		pts[i] = p
	}
	sto := store.NewSim(store.DefaultConfig())
	t, err := Build(sto, pts, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]vec.Point, 64)
	for i := range queries {
		queries[i] = pts[rng.Intn(len(pts))].Clone()
	}
	return t, queries
}

// BenchmarkKNNHotPath measures the end-to-end CPU cost of one k-NN query
// on the simulator backend (no I/O latency, pure compute): the quantized
// filter step dominates. The session is Reset between queries, the
// steady-state pattern of the engine's pooled workers.
func BenchmarkKNNHotPath(b *testing.B) {
	tr, queries := benchTree(b, 20000, 16)
	s := tr.Store().NewSession()
	b.Run("KNN", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Reset()
			if _, err := tr.KNN(s, queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KNNInto", func(b *testing.B) {
		b.ReportAllocs()
		var dst []Neighbor
		// Warm the session scratch and result buffer on every query shape
		// so the measured loop reports the steady state (the ci.sh alloc
		// gate asserts 0 allocs/op here).
		for _, q := range queries {
			s.Reset()
			var err error
			if dst, err = tr.KNNInto(s, q, 10, dst); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			var err error
			if dst, err = tr.KNNInto(s, queries[i%len(queries)], 10, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestKNNSteadyStateAllocs pins the zero-allocation guarantee of the
// warmed KNN hot path: a pooled session plus a reused result buffer must
// run whole queries without a single heap allocation.
func TestKNNSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]vec.Point, 4000)
	for i := range pts {
		p := make(vec.Point, 12)
		for j := range p {
			p[j] = rng.Float32()
		}
		pts[i] = p
	}
	sto := store.NewSim(store.DefaultConfig())
	tree, err := Build(sto, pts, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]vec.Point, 16)
	for i := range queries {
		queries[i] = pts[rng.Intn(len(pts))].Clone()
	}
	s := sto.NewSession()
	var dst []Neighbor
	// Warm the scratch arenas and the result buffer.
	for _, q := range queries {
		s.Reset()
		if dst, err = tree.KNNInto(s, q, 10, dst); err != nil {
			t.Fatal(err)
		}
	}
	qi := 0
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		var err error
		dst, err = tree.KNNInto(s, queries[qi%len(queries)], 10, dst)
		if err != nil {
			t.Fatal(err)
		}
		qi++
	})
	if allocs != 0 {
		t.Fatalf("steady-state KNN allocated %v times per query, want 0", allocs)
	}
}
