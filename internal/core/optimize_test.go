package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// smallConfig shrinks blocks so split trees stay shallow enough for
// exhaustive enumeration.
func smallConfig() store.Config {
	cfg := store.DefaultConfig()
	cfg.BlockSize = 512
	return cfg
}

// enumerateFrontiers returns every valid solution (Definition 1 of the
// paper) of the split tree rooted at n.
func enumerateFrontiers(n *bnode) [][]*bnode {
	out := [][]*bnode{{n}}
	if n.left == nil {
		return out
	}
	for _, lf := range enumerateFrontiers(n.left) {
		for _, rf := range enumerateFrontiers(n.right) {
			comb := make([]*bnode, 0, len(lf)+len(rf))
			comb = append(comb, lf...)
			comb = append(comb, rf...)
			out = append(out, comb)
		}
	}
	return out
}

// TestOptimizerMatchesExhaustiveSearch verifies Section 3.6: the greedy
// optimizer's chosen configuration has the minimal model cost among all
// split-tree solutions (on uniform data, where the model's monotonicity
// assumptions hold).
func TestOptimizerMatchesExhaustiveSearch(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		r := rand.New(rand.NewSource(seed))
		pts := randPoints(r, 300+r.Intn(200), 4)

		sto := store.NewSim(smallConfig())
		opt := DefaultOptions()
		opt.RefineCostFactor = 1 // keep the model deterministic (no calibration)
		tr, err := Build(sto, pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		greedyCost := tr.CostEstimate()

		// Rebuild the split tree exactly as the builder saw it.
		b := newBuilder(tr, tr.load(), pts)
		ranges := b.initialRanges()
		roots := make([]*bnode, len(ranges))
		for i, rg := range ranges {
			roots[i] = b.newNode(rg.lo, rg.hi, rg.mbr)
		}

		// Cross product of per-root solutions, pruned by running minimum.
		frontiers := [][]*bnode{nil}
		for _, root := range roots {
			opts := enumerateFrontiers(root)
			var next [][]*bnode
			for _, f := range frontiers {
				for _, o := range opts {
					comb := make([]*bnode, 0, len(f)+len(o))
					comb = append(comb, f...)
					comb = append(comb, o...)
					next = append(next, comb)
				}
			}
			frontiers = next
			if len(frontiers) > 2_000_000 {
				t.Fatalf("enumeration blew up (%d)", len(frontiers))
			}
		}
		model := tr.Model()
		best := greedyCost
		bestIsExhaustive := false
		for _, f := range frontiers {
			infos := make([]costmodel.PageInfo, len(f))
			for i, n := range f {
				infos[i] = costmodel.PageInfo{MBR: n.mbr, Count: n.count(), Bits: n.bits}
			}
			if c := model.Total(infos); c < best-1e-12 {
				best = c
				bestIsExhaustive = true
			}
		}
		if bestIsExhaustive && (greedyCost-best) > 1e-9+0.001*best {
			t.Fatalf("seed %d: greedy cost %.9f exceeds exhaustive optimum %.9f", seed, greedyCost, best)
		}
	}
}

// TestOptimizerAdaptsToDensity checks the heart of "independent
// quantization": dense regions must receive finer quantization than
// sparse regions of the same tree.
func TestOptimizerAdaptsToDensity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Half the points in a tiny dense cluster, half spread uniformly.
	var pts []vec.Point
	for i := 0; i < 4000; i++ {
		p := make(vec.Point, 8)
		if i%2 == 0 {
			for j := range p {
				p[j] = 0.45 + r.Float32()*0.02 // dense cluster
			}
		} else {
			for j := range p {
				p[j] = r.Float32()
			}
		}
		pts = append(pts, p)
	}
	tr := buildTree(t, pts, DefaultOptions())
	st := tr.Stats()
	if len(st.BitsHistogram) < 2 {
		t.Skipf("optimizer chose a single level (%v); density contrast too weak to assert", st.BitsHistogram)
	}
	// There must be at least two distinct levels — the whole point of
	// per-page (independent) quantization.
	if st.Pages < 2 {
		t.Fatalf("too few pages: %+v", st)
	}
}

func TestConcurrentSearches(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 4000, 8)
	tr := buildTree(t, pts, DefaultOptions())
	queries := randPoints(r, 40, 8)
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = bruteKNN(pts, q, 1, vec.Euclidean)[0]
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q vec.Point) {
			defer wg.Done()
			s := tr.sto.NewSession()
			nn, ok, err := tr.NearestNeighbor(s, q)
			if err != nil || !ok || nn.Dist > want[i]+1e-6 {
				errs <- "wrong concurrent result"
			}
		}(i, q)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestKNNEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 500, 4)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()
	if got, err := tr.KNN(s, pts[0], 0); err != nil {
		t.Fatal(err)
	} else if got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := mustKNN(t, tr, pts[0], 1000); len(got) != 500 {
		t.Fatalf("k > n returned %d results", len(got))
	}
	nn, ok, err := tr.NearestNeighbor(tr.sto.NewSession(), pts[33])
	if err != nil {
		t.Fatal(err)
	}
	if !ok || nn.Dist != 0 {
		t.Fatalf("self query: %+v", nn)
	}
}

func TestBuildValidation(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	if _, err := Build(sto, nil, DefaultOptions()); err == nil {
		t.Fatal("empty build should error")
	}
	if _, err := Build(sto, []vec.Point{{1, 2}, {1}}, DefaultOptions()); err == nil {
		t.Fatal("ragged dimensions should error")
	}
	if _, err := Build(sto, []vec.Point{{}}, DefaultOptions()); err == nil {
		t.Fatal("zero-dimensional points should error")
	}
}

func TestWindowQuery(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 2000, 5)
	tr := buildTree(t, pts, DefaultOptions())
	w := vec.MBR{
		Lo: vec.Point{0.2, 0.2, 0.2, 0.2, 0.2},
		Hi: vec.Point{0.6, 0.6, 0.6, 0.6, 0.6},
	}
	got, err := tr.WindowQuery(tr.sto.NewSession(), w)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, p := range pts {
		if w.Contains(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("window query got %d, want %d", len(got), want)
	}
	for _, nb := range got {
		if !w.Contains(nb.Point) || !pts[nb.ID].Equal(nb.Point) {
			t.Fatalf("bad result %+v", nb)
		}
	}
}

func TestMaximumMetricEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 2500, 12)
	opt := DefaultOptions()
	opt.Metric = vec.Maximum
	tr := buildTree(t, pts, opt)
	checkKNN(t, tr, pts, randPoints(r, 10, 12), 4, vec.Maximum)
	// Range search under the maximum metric.
	q := randPoints(r, 1, 12)[0]
	eps := 0.3
	got := mustRange(t, tr, q, eps)
	var want int
	for _, p := range pts {
		if vec.Maximum.Dist(q, p) <= eps {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range got %d, want %d", len(got), want)
	}
}

func TestTraceCountsWork(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 3000, 10)
	tr := buildTree(t, pts, DefaultOptions())
	var trace Trace
	if _, err := tr.KNNTrace(tr.sto.NewSession(), randPoints(r, 1, 10)[0], 1, &trace); err != nil {
		t.Fatal(err)
	}
	if trace.PagesRead == 0 || len(trace.Batches) == 0 {
		t.Fatalf("empty trace: %+v", trace)
	}
	if trace.PagesRead < len(trace.Batches) {
		t.Fatalf("more batches than pages: %+v", trace)
	}
}

func TestLadderCapacityHalves(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	tr, err := Build(sto, randPoints(rand.New(rand.NewSource(10)), 100, 16), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(quantize.Levels); i++ {
		a := tr.pageCapacity(quantize.Levels[i])
		b := tr.pageCapacity(quantize.Levels[i+1])
		if a != 2*b {
			t.Fatalf("capacity ladder broken: cap(%d)=%d, cap(%d)=%d",
				quantize.Levels[i], a, quantize.Levels[i+1], b)
		}
	}
}

func TestUniformModelAblation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 2000, 8)
	opt := DefaultOptions()
	opt.UniformModel = true
	tr := buildTree(t, pts, opt)
	if tr.FractalDim() != 8 {
		t.Fatalf("uniform model D_F = %f, want 8", tr.FractalDim())
	}
	checkKNN(t, tr, pts, randPoints(r, 5, 8), 2, vec.Euclidean)
}

func TestFixedFractalDimOption(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts := randPoints(r, 1500, 6)
	opt := DefaultOptions()
	opt.FractalDim = 3.5
	tr := buildTree(t, pts, opt)
	if tr.FractalDim() != 3.5 {
		t.Fatalf("D_F = %f, want 3.5", tr.FractalDim())
	}
}
