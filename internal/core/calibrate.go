package core

import (
	"math"

	"repro/internal/kernel"
	"repro/internal/mathx"
	"repro/internal/quantize"
	"repro/internal/vec"
)

// calibrationQueries is the number of self-queries sampled from the data
// to calibrate the refinement cost model.
const calibrationQueries = 16

// calibrateRefinement measures how far the closed-form refinement
// probability of the cost model (Eq. 15) is off on the actual data and
// returns a multiplicative correction.
//
// The paper's model keeps the right *shape* across quantization levels
// (its monotonicity is what the optimality proof rests on), but its
// absolute scale can be off by a sizable factor on strongly non-uniform
// data — e.g. on histogram data whose page MBRs overestimate the occupied
// volume. A wrong scale shifts the split/quantize trade-off against the
// constant (per-page) cost, so we pin it empirically: sample a few query
// points from the data (queries follow the data distribution), find their
// true nearest-neighbor distances by brute force, count how many point
// approximations of the initial 1-bit configuration would need
// refinement, and compare with the model's prediction for the same
// configuration.
func (b *builder) calibrateRefinement(ranges []partRange) float64 {
	t := b.t
	queries := b.sampleQueries()
	if len(queries) == 0 {
		return 1
	}
	radii := b.nnRadii(queries)

	var predicted float64
	for _, r := range ranges {
		bits := t.fitBits(r.hi - r.lo)
		if bits >= quantize.ExactBits {
			continue
		}
		predicted += float64(r.hi-r.lo) * b.sn.model.RefinementProbability(r.mbr, r.hi-r.lo, bits)
	}
	predicted *= float64(len(queries))

	var observed float64
	var arena kernel.Arena
	cells := make([]uint32, t.dim)
	for qi, q := range queries {
		rq := radii[qi]
		lbT := kernel.SqThreshold(t.opt.Metric, rq)
		for _, r := range ranges {
			bits := t.fitBits(r.hi - r.lo)
			if bits >= quantize.ExactBits {
				continue
			}
			if r.mbr.MinDist(q, t.opt.Metric) >= rq {
				continue // no cell of this page can undercut the NN distance
			}
			grid := quantize.NewGrid(r.mbr, bits)
			tb := arena.Tables(grid, q, t.opt.Metric, r.hi-r.lo)
			for i := r.lo; i < r.hi; i++ {
				p := b.pts[b.perm[i]]
				cells = grid.Encode(p, cells)
				if lb, pruned := tb.MinDistPruned(cells, lbT); !pruned && lb < rq {
					observed++
				}
			}
		}
	}
	if predicted <= 0 || observed <= 0 {
		return 1
	}
	return mathx.Clamp(observed/predicted, 0.25, 32)
}

// sampleQueries picks calibration queries from the data with a fixed
// stride (queries are assumed to follow the data distribution, as in the
// paper's model).
func (b *builder) sampleQueries() []vec.Point {
	n := len(b.pts)
	if n < 2 {
		return nil
	}
	count := calibrationQueries
	if count > n {
		count = n
	}
	stride := n / count
	if stride == 0 {
		stride = 1
	}
	out := make([]vec.Point, 0, count)
	for i := 0; i < n && len(out) < count; i += stride {
		out = append(out, b.pts[i])
	}
	return out
}

// nnRadii computes, by brute force, the nearest-neighbor distance of each
// query over the whole database, excluding the query point itself.
func (b *builder) nnRadii(queries []vec.Point) []float64 {
	met := b.t.opt.Metric
	radii := make([]float64, len(queries))
	for qi, q := range queries {
		best := math.Inf(1)
		for _, p := range b.pts {
			d := met.Dist(q, p)
			if d > 0 && d < best {
				best = d
			}
		}
		radii[qi] = best
	}
	return radii
}
