package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/vec"
)

// TestConcurrentQueriesAndUpdates is the snapshot-isolation stress test:
// query goroutines run KNN and range searches while updater goroutines
// insert and delete concurrently and a background goroutine reoptimizes.
// Every point ever inserted comes from a fixed pool with ID == pool
// index and per-ID geometry never changes, so any result a query can
// legitimately see — on whichever published snapshot it pinned — must
// satisfy: the ID is below the published insert watermark, the returned
// geometry matches the pool exactly (no torn page reads), and distances
// are exact and sorted. Run under -race this also exercises every lock
// in the stack.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	const (
		initial  = 1500
		poolSize = 3000
		dim      = 6
		queriers = 4
		updaters = 2
		rounds   = 120 // per updater
	)
	r := rand.New(rand.NewSource(42))
	pool := randPoints(r, poolSize, dim)
	tr := buildTree(t, pool[:initial], DefaultOptions())
	queries := randPoints(r, 32, dim)

	// next is the insert watermark: a slot is reserved (watermark
	// advanced) before its insert runs, so every ID visible in any
	// snapshot is below the watermark a querier reads afterwards.
	var next atomic.Int64
	next.Store(initial)
	stop := make(chan struct{})
	var qWg, uWg sync.WaitGroup

	for w := 0; w < queriers; w++ {
		qWg.Add(1)
		go func(seed int64) {
			defer qWg.Done()
			qr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[qr.Intn(len(queries))]
				s := tr.sto.NewSession()
				var nbs []Neighbor
				var err error
				if qr.Intn(2) == 0 {
					nbs, err = tr.KNN(s, q, 5)
				} else {
					nbs, err = tr.RangeSearch(s, q, 0.6)
				}
				if err != nil {
					t.Errorf("query error: %v", err)
					return
				}
				hi := int(next.Load())
				prev := -1.0
				for _, nb := range nbs {
					if int(nb.ID) >= hi {
						t.Errorf("result ID %d beyond insert watermark %d", nb.ID, hi)
						return
					}
					if !pool[nb.ID].Equal(nb.Point) {
						t.Errorf("torn read: ID %d geometry does not match the pool", nb.ID)
						return
					}
					if d := vec.Euclidean.Dist(q, nb.Point); d != nb.Dist {
						t.Errorf("ID %d reported dist %v, exact %v", nb.ID, nb.Dist, d)
						return
					}
					if nb.Dist < prev {
						t.Errorf("results out of order")
						return
					}
					prev = nb.Dist
				}
			}
		}(int64(100 + w))
	}

	for w := 0; w < updaters; w++ {
		uWg.Add(1)
		go func(seed int64) {
			defer uWg.Done()
			ur := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				s := tr.sto.NewSession()
				if ur.Intn(4) == 0 {
					// Delete from the initial block; racing deletes of the
					// same ID are fine (found == false for the loser).
					id := uint32(ur.Intn(initial))
					if _, err := tr.Delete(s, pool[id], id); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				} else {
					id := int(next.Add(1)) - 1
					if id >= poolSize {
						continue
					}
					if err := tr.Insert(s, pool[id], uint32(id)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
			}
		}(int64(200 + w))
	}

	// Background reoptimizer: stop-the-world compaction racing the
	// readers and writers above.
	uWg.Add(1)
	go func() {
		defer uWg.Done()
		for i := 0; i < 3; i++ {
			if err := tr.Reoptimize(); err != nil {
				t.Errorf("reoptimize: %v", err)
				return
			}
		}
	}()

	uWg.Wait()
	close(stop)
	qWg.Wait()

	if t.Failed() {
		return
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stress: %v", err)
	}
}
