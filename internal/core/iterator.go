package core

import (
	"errors"
	"sort"

	"repro/internal/kernel"
	"repro/internal/page"
	"repro/internal/pagesched"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// ErrStaleIterator is reported by an NNIterator whose pinned snapshot was
// invalidated by a Reoptimize: compaction rewrites the data files in
// place, so the iterator's page positions no longer mean anything.
var ErrStaleIterator = errors.New("core: iterator invalidated by Reoptimize")

// NNIterator enumerates the neighbors of a query point in increasing
// distance order, on demand — the incremental ranking of Hjaltason and
// Samet (the paper's reference [13]), running over the IQ-tree's three
// levels. Unlike KNN it needs no a-priori k: callers pull neighbors until
// satisfied (e.g. distance browsing, joins).
//
// The iterator pins the directory snapshot current at creation, so it is
// safe to interleave Next calls with concurrent inserts and deletes —
// the iteration keeps enumerating the pinned epoch. Only Reoptimize
// invalidates it (see ErrStaleIterator). The iterator itself is not safe
// for concurrent use from multiple goroutines.
type NNIterator struct {
	t   *Tree
	sn  *snapshot
	gen uint64 // reoptGen at creation
	s   *store.Session
	q   vec.Point

	minD      []float64
	processed []bool
	sorted    []int32
	heap      []pqItem // min-heap on lower-bound distance

	// confirmed holds refined (exact) neighbors not yet emitted, as a
	// min-heap on distance.
	confirmed  []Neighbor
	exactCache map[int32]exactPage
	regionBuf  []pagesched.Region
	arena      kernel.Arena // iterator-owned: Next may interleave with other queries on the session
	started    bool
	err        error // first read failure; ends the iteration
}

// NewNNIterator starts an incremental nearest-neighbor ranking for q over
// the tree's current snapshot. All simulated I/O and CPU is charged to s.
func (t *Tree) NewNNIterator(s *store.Session, q vec.Point) *NNIterator {
	return &NNIterator{t: t, sn: t.load(), gen: t.reoptGen.Load(), s: s, q: q}
}

// Err returns the first read failure encountered by the iterator, or nil.
// After Next returns ok=false, callers distinguishing exhaustion from
// failure must check it (the bufio.Scanner protocol).
func (it *NNIterator) Err() error { return it.err }

// Next returns the next neighbor in increasing distance order, or
// ok=false when the database is exhausted or a read failed (see Err).
func (it *NNIterator) Next() (Neighbor, bool) {
	it.t.world.RLock()
	defer it.t.world.RUnlock()
	if it.err != nil {
		return Neighbor{}, false
	}
	if it.t.reoptGen.Load() != it.gen {
		it.err = ErrStaleIterator
		return Neighbor{}, false
	}
	if !it.started {
		it.start()
	}
	for it.err == nil {
		// Emit a confirmed neighbor as soon as nothing in the priority
		// list could still be closer.
		if len(it.confirmed) > 0 && (len(it.heap) == 0 || it.confirmed[0].Dist <= it.heap[0].dist) {
			return it.popConfirmed(), true
		}
		if len(it.heap) == 0 {
			return Neighbor{}, false
		}
		item := it.popItem()
		if item.pt >= 0 {
			it.refine(item)
			continue
		}
		if it.processed[item.entry] {
			continue
		}
		it.processPage(int(item.entry))
	}
	return Neighbor{}, false
}

func (it *NNIterator) start() {
	it.started = true
	t := it.t
	sn := it.sn
	met := t.opt.Metric
	if sn.dirBlocks > 0 {
		if _, err := it.s.Read(t.dirFile, 0, sn.dirBlocks); err != nil {
			it.err = err
			return
		}
	}
	it.s.ChargeApproxCPU(t.dirFile, t.dim, len(sn.entries))
	it.minD = make([]float64, len(sn.entries))
	it.processed = make([]bool, len(sn.entries))
	for i, e := range sn.entries {
		if sn.free[i] {
			it.processed[i] = true
			continue
		}
		it.minD[i] = e.MBR.MinDist(it.q, met)
		it.pushItem(pqItem{dist: it.minD[i], entry: int32(i), pt: -1})
		it.sorted = append(it.sorted, int32(i))
	}
	sort.Slice(it.sorted, func(a, b int) bool { return it.minD[it.sorted[a]] < it.minD[it.sorted[b]] })
}

// processPage loads (batched, if enabled) and decodes quantized pages,
// feeding point approximations into the priority list. Unlike the
// k-bounded search, nothing can be pruned: every point will eventually be
// emitted.
func (it *NNIterator) processPage(entry int) {
	t := it.t
	sn := it.sn
	pivot := int(sn.entries[entry].QPos)
	first, last := pivot, pivot
	if t.opt.OptimizedIO {
		sched := &pagesched.Scheduler{
			Cfg:        t.sto.Config(),
			PageBlocks: t.opt.QPageBlocks,
			NumPages:   len(sn.entryAt),
			Prob:       it.accessProb,
		}
		first, last = sched.Batch(pivot)
	}
	buf, err := it.s.Read(t.qFile, first*t.opt.QPageBlocks, (last-first+1)*t.opt.QPageBlocks)
	if err != nil {
		it.err = err
		return
	}
	pageBytes := t.qPageBytes()
	met := t.opt.Metric
	for pos := first; pos <= last; pos++ {
		e := sn.entryIndex(pos)
		if e < 0 || it.processed[e] || sn.free[e] {
			continue
		}
		it.processed[e] = true
		qp := page.UnmarshalQPage(buf[(pos-first)*pageBytes : (pos-first+1)*pageBytes])
		if qp.Bits == quantize.ExactBits {
			pts, ids := qp.ExactPoints(t.dim)
			it.s.ChargeDistCPU(t.qFile, t.dim, len(pts))
			for i, p := range pts {
				it.pushConfirmed(Neighbor{ID: ids[i], Dist: met.Dist(it.q, p), Point: p})
			}
			continue
		}
		grid := sn.grids[e]
		codes := it.arena.Unpack(qp.Payload, qp.Count*t.dim, qp.Bits)
		tb := it.arena.Tables(grid, it.q, met, qp.Count)
		it.s.ChargeApproxCPU(t.qFile, t.dim, qp.Count)
		for i := 0; i < qp.Count; i++ {
			lb := tb.MinDist(codes[i*t.dim : (i+1)*t.dim])
			it.pushItem(pqItem{dist: lb, entry: int32(e), pt: int32(i)})
		}
	}
}

func (it *NNIterator) accessProb(pos int) float64 {
	sn := it.sn
	entry := sn.entryIndex(pos)
	if entry < 0 || it.processed[entry] || sn.free[entry] {
		return 0
	}
	r := it.minD[entry]
	it.regionBuf = it.regionBuf[:0]
	for _, e := range it.sorted {
		if it.minD[e] >= r {
			break
		}
		if it.processed[e] || int(e) == entry {
			continue
		}
		it.regionBuf = append(it.regionBuf, pagesched.Region{
			MBR:     sn.entries[e].MBR,
			Count:   int(sn.entries[e].Count),
			MinDist: it.minD[e],
		})
	}
	return pagesched.AccessProbability(it.q, it.t.opt.Metric, r, it.regionBuf)
}

func (it *NNIterator) refine(item pqItem) {
	t := it.t
	ep, ok := it.exactCache[item.entry]
	if !ok {
		e := it.sn.entries[item.entry]
		entrySize := page.ExactEntrySize(t.dim)
		raw, rel, err := it.s.ReadRange(t.eFile, int(e.EPos)*t.sto.Config().BlockSize, int(e.Count)*entrySize)
		if err != nil {
			it.err = err
			return
		}
		ep = exactPage{pts: make([]vec.Point, e.Count), ids: make([]uint32, e.Count)}
		for i := 0; i < int(e.Count); i++ {
			ep.pts[i], ep.ids[i] = page.UnmarshalExactEntry(raw[rel+i*entrySize:], t.dim)
		}
		if it.exactCache == nil {
			it.exactCache = make(map[int32]exactPage)
		}
		it.exactCache[item.entry] = ep
	}
	it.s.ChargeDistCPU(t.eFile, t.dim, 1)
	it.pushConfirmed(Neighbor{
		ID:    ep.ids[item.pt],
		Dist:  t.opt.Metric.Dist(it.q, ep.pts[item.pt]),
		Point: ep.pts[item.pt],
	})
}

// --- heaps ---

func (it *NNIterator) pushItem(item pqItem) {
	it.heap = append(it.heap, item)
	a := it.heap
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].dist <= a[i].dist {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (it *NNIterator) popItem() pqItem {
	a := it.heap
	top := a[0]
	a[0] = a[len(a)-1]
	it.heap = a[:len(a)-1]
	a = it.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].dist < a[m].dist {
			m = l
		}
		if r < len(a) && a[r].dist < a[m].dist {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

func (it *NNIterator) pushConfirmed(nb Neighbor) {
	it.confirmed = append(it.confirmed, nb)
	a := it.confirmed
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist <= a[i].Dist {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (it *NNIterator) popConfirmed() Neighbor {
	a := it.confirmed
	top := a[0]
	a[0] = a[len(a)-1]
	it.confirmed = a[:len(a)-1]
	a = it.confirmed
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].Dist < a[m].Dist {
			m = l
		}
		if r < len(a) && a[r].Dist < a[m].Dist {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}
