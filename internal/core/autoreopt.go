package core

import (
	"repro/internal/obs"
	"repro/internal/store"
)

// Automatic reoptimization (the PR-8 follow-up): instead of an operator
// deciding when to call Reoptimize, a policy watches the two pressures
// updates create — garbage blocks in the quantized file (every rewrite
// appends a new page version and strands the old one) and quarantined
// pages (checksum failures answered from the exact shadow until a
// rebuild relocates them) — and drives the incremental stepper one
// bounded unit per acknowledged mutation while either persists. Because
// steps interleave with queries and updates, the policy adds no pause:
// the cost is one extra page re-quantization per write while a run is
// active.

// AutoReoptPolicy configures Options.AutoReoptimize. The zero value
// disables automatic reoptimization.
type AutoReoptPolicy struct {
	// GarbageRatio starts an incremental reoptimization once the
	// fraction of dead blocks in the quantized file reaches this value
	// (0 disables the garbage trigger). Sensible values sit in (0,1);
	// e.g. 0.5 rebuilds when half the file is stale page versions.
	GarbageRatio float64
	// QuarantineMax starts a run once at least this many pages are
	// quarantined (0 disables the quarantine trigger). Each step drains
	// at most one quarantined page, so pressure falls as the run
	// progresses.
	QuarantineMax int
}

// enabled reports whether any trigger is configured.
func (p AutoReoptPolicy) enabled() bool {
	return p.GarbageRatio > 0 || p.QuarantineMax > 0
}

var metricAutoReoptTriggers = obs.Default().Counter("reopt.auto_triggers")

// GarbageRatio returns the fraction of the quantized file occupied by
// dead page versions: blocks beyond the live pages' footprint,
// accumulated by out-of-place rewrites since the last compaction.
func (t *Tree) GarbageRatio() float64 {
	t.world.RLock()
	defer t.world.RUnlock()
	total := t.qFile.Blocks()
	if total <= 0 {
		return 0
	}
	live := t.load().livePages() * t.opt.QPageBlocks
	g := float64(total-live) / float64(total)
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// autoReoptimize runs the Options.AutoReoptimize policy after an
// acknowledged mutation: begin a run when a trigger fires, and advance
// an in-flight run by one step either way. I/O is charged to s. The
// mutation that called it is already durable, so a maintenance error
// surfaces to the caller without undoing anything.
func (t *Tree) autoReoptimize(s *store.Session) error {
	p := t.opt.AutoReoptimize
	if !p.enabled() || t.Len() == 0 {
		return nil
	}
	if !t.ReoptimizeRunning() {
		trigger := p.GarbageRatio > 0 && t.GarbageRatio() >= p.GarbageRatio
		if !trigger && p.QuarantineMax > 0 {
			trigger = len(t.QuarantinedPages()) >= p.QuarantineMax
		}
		if !trigger {
			return nil
		}
		metricAutoReoptTriggers.Inc()
	}
	_, err := t.ReoptimizeStep(s)
	return err
}
