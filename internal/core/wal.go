package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/page"
	"repro/internal/store"
	"repro/internal/vec"
)

// Logical write-ahead logging for the IQ-tree (DESIGN.md §13). In WAL
// mode every mutation is acked only after its logical record — not the
// physical page writes it caused — is durable in the log. Because
// writers serialize on t.mu and LSN assignment happens inside the same
// critical section as the snapshot mutation, LSN order equals apply
// order, and replaying the records through the normal apply path
// reproduces the exact same sequence of file appends: recovery is
// bit-identical, not merely logically equivalent.
//
// A checkpoint makes the physical files authoritative up to an LSN
// watermark: data files are fsynced, then a checkpoint record (embedding
// the serialized directory and the data-file extents) is appended to a
// separate checkpoint log and fsynced, then the WAL restarts empty.
// Recovery trusts the newest valid checkpoint, truncates the data files
// back to its extents (discarding physical writes of unacked or
// to-be-replayed mutations), rebuilds the directory from the embedded
// copy, and replays WAL records with LSN > watermark.

// WAL record kinds (the store layer treats them as opaque).
const (
	walKindInsert      = 1 // id u32 | dim × f32
	walKindDelete      = 2 // id u32 | dim × f32
	walKindInsertBatch = 3 // count u32 | count × (id u32 | dim × f32)
)

// WALFileName is the mutation log; CkptBaseName names the checkpoint
// log of generation 0 (see genName for later generations). Both carry
// the store's WAL suffix so checksum sidecars skip them — their records
// are self-checksummed.
const (
	WALFileName  = "iq.wal"
	CkptBaseName = "iq.ckpt"

	ckptMagic = 0x4951434b // "IQCK"
)

// genName returns the generation-suffixed variant of a base file name:
// the base itself for generation 0, base+".gN" otherwise. Incremental
// reoptimization builds generation N+1 files beside the live generation
// N files and swaps atomically at the end.
func genName(base string, gen uint32) string {
	if gen == 0 {
		return base
	}
	return base + ".g" + strconv.FormatUint(uint64(gen), 10)
}

// ckptLogName returns the checkpoint log name for a generation.
func ckptLogName(gen uint32) string {
	return genName(CkptBaseName, gen) + store.WALSuffix
}

// genOfName parses the generation out of a file name produced by
// genName(base, ·), returning ok=false when name does not derive from
// base.
func genOfName(base, name string) (uint32, bool) {
	if name == base {
		return 0, true
	}
	if !strings.HasPrefix(name, base+".g") {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(base)+2:], 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(g), true
}

// mutOp is one logical mutation: the unit the WAL logs and the
// incremental reoptimizer captures as a delta. kind is a walKind*.
type mutOp struct {
	kind uint8
	pts  []vec.Point
	ids  []uint32
}

// encodeMutOp serializes op as a WAL record payload.
func encodeMutOp(op mutOp, dim int) []byte {
	le := binary.LittleEndian
	pointBytes := 4 + 4*dim
	var buf []byte
	switch op.kind {
	case walKindInsert, walKindDelete:
		buf = make([]byte, 0, pointBytes)
	case walKindInsertBatch:
		buf = make([]byte, 0, 4+len(op.pts)*pointBytes)
		buf = le.AppendUint32(buf, uint32(len(op.pts)))
	default:
		panic("core: unknown mutation kind")
	}
	for i, p := range op.pts {
		buf = le.AppendUint32(buf, op.ids[i])
		for _, c := range p {
			buf = le.AppendUint32(buf, math.Float32bits(c))
		}
	}
	return buf
}

// decodeMutOp parses a WAL record back into the logical mutation.
func decodeMutOp(kind uint8, payload []byte, dim int) (mutOp, error) {
	le := binary.LittleEndian
	pointBytes := 4 + 4*dim
	op := mutOp{kind: kind}
	count := 1
	off := 0
	if kind == walKindInsertBatch {
		if len(payload) < 4 {
			return op, fmt.Errorf("core: truncated batch WAL record")
		}
		count = int(le.Uint32(payload))
		off = 4
	} else if kind != walKindInsert && kind != walKindDelete {
		return op, fmt.Errorf("core: unknown WAL record kind %d", kind)
	}
	if len(payload)-off != count*pointBytes {
		return op, fmt.Errorf("core: WAL record payload %d bytes, want %d points of %d",
			len(payload)-off, count, pointBytes)
	}
	op.pts = make([]vec.Point, count)
	op.ids = make([]uint32, count)
	for i := 0; i < count; i++ {
		op.ids[i] = le.Uint32(payload[off:])
		off += 4
		p := make(vec.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = math.Float32frombits(le.Uint32(payload[off:]))
			off += 4
		}
		op.pts[i] = p
	}
	return op, nil
}

// checkpointRecord is the decoded payload of one checkpoint-log record:
// everything recovery needs to reconstruct the directory and trim the
// data files without trusting iq.dir or iq.meta (which are rewritten
// per-update but only fsynced at checkpoints).
type checkpointRecord struct {
	gen       uint32
	lsn       uint64 // mutations with LSN ≤ lsn are reflected in the files
	n         int
	qBlocks   int
	eBlocks   int
	dataSpace vec.MBR // the live data space (it never shrinks, so it can exceed the union of page MBRs)
	entries   []page.DirEntry
}

const ckptHeaderSize = 40

// encodeCheckpoint serializes a checkpoint record payload: a fixed
// header, the data-space MBR (2·dim f32), then the serialized directory.
func encodeCheckpoint(c checkpointRecord, dim int) []byte {
	le := binary.LittleEndian
	entrySize := page.DirEntrySize(dim)
	buf := make([]byte, ckptHeaderSize, ckptHeaderSize+8*dim+len(c.entries)*entrySize)
	le.PutUint32(buf[0:], ckptMagic)
	le.PutUint32(buf[4:], c.gen)
	le.PutUint64(buf[8:], c.lsn)
	le.PutUint32(buf[16:], uint32(dim))
	le.PutUint64(buf[20:], uint64(c.n))
	le.PutUint32(buf[28:], uint32(c.qBlocks))
	le.PutUint32(buf[32:], uint32(c.eBlocks))
	le.PutUint32(buf[36:], uint32(len(c.entries)))
	for i := 0; i < dim; i++ {
		buf = le.AppendUint32(buf, math.Float32bits(c.dataSpace.Lo[i]))
	}
	for i := 0; i < dim; i++ {
		buf = le.AppendUint32(buf, math.Float32bits(c.dataSpace.Hi[i]))
	}
	tmp := make([]byte, entrySize)
	for i := range c.entries {
		c.entries[i].Marshal(tmp, dim)
		buf = append(buf, tmp...)
	}
	return buf
}

// decodeCheckpoint parses a checkpoint record payload, validating it
// against the tree's dimensionality.
func decodeCheckpoint(payload []byte, dim int) (checkpointRecord, error) {
	le := binary.LittleEndian
	var c checkpointRecord
	if len(payload) < ckptHeaderSize+8*dim {
		return c, fmt.Errorf("core: checkpoint record %d bytes, want ≥%d", len(payload), ckptHeaderSize+8*dim)
	}
	if le.Uint32(payload[0:]) != ckptMagic {
		return c, fmt.Errorf("core: bad checkpoint magic")
	}
	if d := int(le.Uint32(payload[16:])); d != dim {
		return c, fmt.Errorf("core: checkpoint dimensionality %d, tree has %d", d, dim)
	}
	c.gen = le.Uint32(payload[4:])
	c.lsn = le.Uint64(payload[8:])
	c.n = int(le.Uint64(payload[20:]))
	c.qBlocks = int(le.Uint32(payload[28:]))
	c.eBlocks = int(le.Uint32(payload[32:]))
	nEntries := int(le.Uint32(payload[36:]))
	c.dataSpace = vec.MBR{Lo: make(vec.Point, dim), Hi: make(vec.Point, dim)}
	off := ckptHeaderSize
	for i := 0; i < dim; i++ {
		c.dataSpace.Lo[i] = math.Float32frombits(le.Uint32(payload[off:]))
		off += 4
	}
	for i := 0; i < dim; i++ {
		c.dataSpace.Hi[i] = math.Float32frombits(le.Uint32(payload[off:]))
		off += 4
	}
	entrySize := page.DirEntrySize(dim)
	if len(payload)-off != nEntries*entrySize {
		return c, fmt.Errorf("core: checkpoint holds %d bytes of entries, want %d×%d",
			len(payload)-off, nEntries, entrySize)
	}
	c.entries = make([]page.DirEntry, nEntries)
	for i := 0; i < nEntries; i++ {
		c.entries[i] = page.UnmarshalDirEntry(payload[off+i*entrySize:], dim)
	}
	return c, nil
}
