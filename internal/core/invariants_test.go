package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

func TestInvariantsAfterBuild(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 8, 16} {
		for _, quant := range []bool{true, false} {
			opt := DefaultOptions()
			opt.Quantize = quant
			tr := buildTree(t, randPoints(r, 3000, d), opt)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("d=%d quantize=%v: %v", d, quant, err)
			}
		}
	}
}

func TestInvariantsAfterHeavyUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 2000, 6)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()

	nextID := uint32(len(pts))
	live := map[uint32]vec.Point{}
	for i, p := range pts {
		live[uint32(i)] = p
	}
	// Interleave inserts and deletes for several rounds.
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			p := randPoints(r, 1, 6)[0]
			if err := tr.Insert(s, p, nextID); err != nil {
				t.Fatal(err)
			}
			live[nextID] = p
			nextID++
		}
		removed := 0
		for id, p := range live {
			if removed >= 150 {
				break
			}
			if ok, err := tr.Delete(s, p, id); err != nil {
				t.Fatalf("round %d: delete id %d: %v", round, id, err)
			} else if !ok {
				t.Fatalf("round %d: delete id %d failed", round, id)
			}
			delete(live, id)
			removed++
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len %d, want %d", tr.Len(), len(live))
	}
}

func TestReoptimizeCompactsAndPreservesContents(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 3000, 8)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()

	// Heavy churn: inserts grow the exact file with garbage regions.
	all := map[uint32]vec.Point{}
	for i, p := range pts {
		all[uint32(i)] = p
	}
	for i := 0; i < 1500; i++ {
		p := randPoints(r, 1, 8)[0]
		id := uint32(len(pts) + i)
		if err := tr.Insert(s, p, id); err != nil {
			t.Fatal(err)
		}
		all[id] = p
	}
	exactBefore := tr.eFile.Bytes()
	costBefore := tr.CostEstimate()

	if err := tr.Reoptimize(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after reoptimize: %v", err)
	}
	if tr.Len() != len(all) {
		t.Fatalf("Len %d, want %d", tr.Len(), len(all))
	}
	if tr.eFile.Bytes() > exactBefore {
		t.Fatalf("reoptimize did not compact: %d -> %d bytes", exactBefore, tr.eFile.Bytes())
	}
	if cost := tr.CostEstimate(); cost > costBefore*1.05 {
		t.Fatalf("reoptimize increased predicted cost: %f -> %f", costBefore, cost)
	}

	// Contents identical: ids and coordinates survive.
	gotPts, gotIDs, err := tr.AllPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPts) != len(all) {
		t.Fatalf("AllPoints %d, want %d", len(gotPts), len(all))
	}
	for i, id := range gotIDs {
		want, ok := all[id]
		if !ok || !want.Equal(gotPts[i]) {
			t.Fatalf("id %d: content mismatch after reoptimize", id)
		}
	}

	// Queries still exact.
	var flat []vec.Point
	idByPos := map[int]uint32{}
	for id, p := range all {
		idByPos[len(flat)] = id
		flat = append(flat, p)
	}
	for qi, q := range randPoints(r, 10, 8) {
		got := mustKNN(t, tr, q, 3)
		want := bruteKNN(flat, q, 3, vec.Euclidean)
		for i := range got {
			if diff := got[i].Dist - want[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("query %d: %f vs %f", qi, got[i].Dist, want[i])
			}
		}
	}
}

func TestReoptimizeOnFreshTreeIsStable(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 2000, 10)
	tr := buildTree(t, pts, DefaultOptions())
	pagesBefore := tr.NumPages()
	if err := tr.Reoptimize(); err != nil {
		t.Fatal(err)
	}
	// A fresh tree re-optimized should land on a similar configuration.
	if after := tr.NumPages(); after < pagesBefore/2 || after > pagesBefore*2 {
		t.Fatalf("reoptimize changed pages wildly: %d -> %d", pagesBefore, after)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReoptimizeEmptyTreeTypedError: reoptimizing a tree whose points
// have all been deleted reports the typed ErrEmptyTree (there is nothing
// to re-quantize), leaves the tree usable, and a later insert revives it.
func TestReoptimizeEmptyTreeTypedError(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	pts := randPoints(r, 500, 4)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()
	for i, p := range pts {
		if ok, err := tr.Delete(s, p, uint32(i)); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := tr.Reoptimize(); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("Reoptimize on emptied tree: %v, want ErrEmptyTree", err)
	}
	if tr.ReoptimizeRunning() {
		t.Fatal("aborted reoptimize left state behind")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(s, pts[0], 1); err != nil {
		t.Fatalf("insert after empty-tree reoptimize: %v", err)
	}
	if err := tr.Reoptimize(); err != nil {
		t.Fatalf("reoptimize after revival: %v", err)
	}
}

func TestInvariantsDetectCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := buildTree(t, randPoints(r, 1000, 4), DefaultOptions())
	// Corrupt one quantized page header in place.
	bs := tr.sto.Config().BlockSize
	raw, err := tr.qFile.ReadRaw(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, bs)
	copy(blk, raw)
	blk[0] ^= 0xff // clobber the count
	if err := tr.qFile.WriteBlocks(0, blk); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestOpenedTreePassesInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	sto := store.NewSim(store.DefaultConfig())
	if _, err := Build(sto, randPoints(r, 1500, 6), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	tr, err := Open(sto)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 2000, 6)
	tr := buildTree(t, pts, DefaultOptions())
	s := tr.sto.NewSession()

	// A batch large enough to overflow pages across multiple levels.
	extra := randPoints(r, 5000, 6)
	ids := make([]uint32, len(extra))
	for i := range ids {
		ids[i] = uint32(len(pts) + i)
	}
	if err := tr.InsertBatch(s, extra, ids); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(pts)+len(extra) {
		t.Fatalf("Len %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	all := append(append([]vec.Point{}, pts...), extra...)
	checkKNN(t, tr, all, randPoints(r, 8, 6), 4, vec.Euclidean)
}

func TestInsertBatchValidation(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := buildTree(t, randPoints(r, 500, 3), DefaultOptions())
	s := tr.sto.NewSession()
	if err := tr.InsertBatch(s, randPoints(r, 2, 3), []uint32{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := tr.InsertBatch(s, []vec.Point{{1, 2}}, []uint32{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}
