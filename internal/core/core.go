package core
