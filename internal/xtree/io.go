package xtree

import (
	"encoding/binary"
	"math"

	"repro/internal/index"
	"repro/internal/page"
	"repro/internal/vec"
)

// Finalize lays the tree out on the store in level order (the natural
// result of the X-tree's page allocation) and serializes every node. It
// must be called after dynamic inserts and before queries; Build calls it
// automatically.
func (t *Tree) Finalize() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finalized {
		return nil
	}
	if err := t.file.SetContents(nil); err != nil {
		return err
	}
	// Level-order enumeration.
	queue := []*node{t.root}
	var order []*node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		queue = append(queue, n.children...)
	}
	// Assign positions first (children positions appear in parent pages).
	pos := 0
	for _, n := range order {
		n.pos = pos
		n.blocks = n.units * t.opt.NodeBlocks
		if n.leaf {
			// A leaf needs enough blocks for its points (it can briefly
			// exceed one unit between overflow and split at capacity+1).
			need := t.sto.Config().Blocks(8 + len(n.pts)*page.ExactEntrySize(t.dim))
			if need > n.blocks {
				n.blocks = need
			}
		} else {
			// Defensive: a directory node must always fit its entries.
			need := t.sto.Config().Blocks(8 + len(n.children)*(8+8*t.dim))
			if need > n.blocks {
				n.blocks = need
			}
		}
		pos += n.blocks
	}
	for _, n := range order {
		if _, _, err := t.file.Append(t.marshalNode(n)); err != nil {
			return err
		}
	}
	t.finalized = true
	return nil
}

// marshalNode serializes a node, padded to its block allocation.
func (t *Tree) marshalNode(n *node) []byte {
	bs := t.sto.Config().BlockSize
	buf := make([]byte, n.blocks*bs)
	le := binary.LittleEndian
	if n.leaf {
		le.PutUint32(buf[0:], uint32(len(n.pts)))
		buf[4] = 1
		copy(buf[8:], page.MarshalExact(n.pts, n.ids))
		return buf
	}
	le.PutUint32(buf[0:], uint32(len(n.children)))
	buf[4] = 0
	off := 8
	for _, c := range n.children {
		le.PutUint32(buf[off:], uint32(c.pos))
		le.PutUint32(buf[off+4:], uint32(c.blocks))
		off += 8
		for i := 0; i < t.dim; i++ {
			le.PutUint32(buf[off:], math.Float32bits(c.mbr.Lo[i]))
			off += 4
		}
		for i := 0; i < t.dim; i++ {
			le.PutUint32(buf[off:], math.Float32bits(c.mbr.Hi[i]))
			off += 4
		}
	}
	return buf
}

// decodeLeaf extracts the points of a serialized leaf node.
func (t *Tree) decodeLeaf(buf []byte) ([]vec.Point, []uint32) {
	le := binary.LittleEndian
	count := int(le.Uint32(buf[0:]))
	entrySize := page.ExactEntrySize(t.dim)
	pts := make([]vec.Point, count)
	ids := make([]uint32, count)
	for i := 0; i < count; i++ {
		pts[i], ids[i] = page.UnmarshalExactEntry(buf[8+i*entrySize:], t.dim)
	}
	return pts, ids
}

// TreeStats summarizes the physical structure of an X-tree.
type TreeStats struct {
	Points     int
	Height     int
	DirNodes   int
	Supernodes int
	Leaves     int
	TotalBytes int
}

// Stats returns structural statistics.
func (t *Tree) Stats() TreeStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TreeStats{Points: t.n, Height: t.height, TotalBytes: t.file.Bytes()}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			st.Leaves++
			return
		}
		st.DirNodes++
		if n.units > 1 {
			st.Supernodes++
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return st
}

// IndexStats implements index.Index with the common cross-method shape
// summary.
func (t *Tree) IndexStats() index.Stats {
	st := t.Stats()
	return index.Stats{
		Method: "X-tree",
		Points: st.Points,
		Dim:    t.dim,
		Pages:  st.Leaves,
		Bytes:  st.TotalBytes,
	}
}
