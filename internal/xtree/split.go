package xtree

import (
	"math"
	"sort"

	"repro/internal/vec"
)

// splitLeaf performs the R*-tree topological split on an overfull leaf and
// returns the new sibling (leaves never become supernodes).
func (t *Tree) splitLeaf(n *node) *node {
	axis, idx := chooseLeafSplit(n.pts, t.leafCap)
	ord := sortedOrder(len(n.pts), func(a, b int) bool { return n.pts[a][axis] < n.pts[b][axis] })

	var lp, rp []vec.Point
	var li, ri []uint32
	for i, o := range ord {
		if i < idx {
			lp = append(lp, n.pts[o])
			li = append(li, n.ids[o])
		} else {
			rp = append(rp, n.pts[o])
			ri = append(ri, n.ids[o])
		}
	}
	sib := &node{leaf: true, pts: rp, ids: ri, mbr: vec.MBROf(rp), splitDim: axis, historyDim: -1, units: 1}
	n.pts, n.ids = lp, li
	n.mbr = vec.MBROf(lp)
	n.splitDim = axis
	return sib
}

// chooseLeafSplit selects the split axis minimizing the margin sum and the
// split index minimizing overlap (then volume) among the R*-tree's
// candidate distributions.
func chooseLeafSplit(pts []vec.Point, capacity int) (axis, index int) {
	d := len(pts[0])
	m := len(pts)
	minEntries := maxInt(1, (m*35)/100)
	bestMargin := math.Inf(1)
	axis = 0
	for dim := 0; dim < d; dim++ {
		ord := sortedOrder(m, func(a, b int) bool { return pts[a][dim] < pts[b][dim] })
		ps := buildPrefixSuffix(ord, func(i int) vec.MBR { return pointMBR(pts[i]) })
		margin := 0.0
		forEachDistribution(m, minEntries, func(k int) {
			lm, rm := ps.groups(k)
			margin += lm.Margin() + rm.Margin()
		})
		if margin < bestMargin {
			bestMargin = margin
			axis = dim
		}
	}
	ord := sortedOrder(m, func(a, b int) bool { return pts[a][axis] < pts[b][axis] })
	ps := buildPrefixSuffix(ord, func(i int) vec.MBR { return pointMBR(pts[i]) })
	bestOverlap, bestVol := math.Inf(1), math.Inf(1)
	index = m / 2
	forEachDistribution(m, minEntries, func(k int) {
		lm, rm := ps.groups(k)
		ov := lm.OverlapVolume(rm)
		vol := lm.Volume() + rm.Volume()
		if ov < bestOverlap || (ov == bestOverlap && vol < bestVol) {
			bestOverlap, bestVol = ov, vol
			index = k
		}
	})
	return axis, index
}

// splitDir splits an overfull directory node following the X-tree
// algorithm: try the topological (R*) split; if its overlap exceeds
// MaxOverlap, try an overlap-minimal split derived from the split history;
// if that would be unbalanced, create a supernode instead (returning nil).
func (t *Tree) splitDir(n *node) *node {
	children := n.children
	m := len(children)
	minEntries := maxInt(2, int(float64(m)*t.opt.MinFanoutRatio))

	axis, idx, overlapRatio := chooseDirSplit(children)
	if overlapRatio <= t.opt.MaxOverlap {
		return t.applyDirSplit(n, axis, idx)
	}

	// Overlap-minimal split guided by the split history (X-tree paper,
	// Sec. 4.2): only the root dimension of the node's split history is
	// guaranteed to admit an overlap-free partition of the children.
	if n.historyDim >= 0 {
		if k, ok := overlapFreeSplitAlong(children, n.historyDim, minEntries); ok {
			return t.applyDirSplit(n, n.historyDim, k)
		}
	}

	// No balanced overlap-free split: enlarge into a supernode.
	n.units++
	return nil
}

// applyDirSplit splits directory node n at index idx of the ordering along
// axis, returning the new sibling.
func (t *Tree) applyDirSplit(n *node, axis, idx int) *node {
	children := n.children
	ord := sortedOrder(len(children), func(a, b int) bool {
		if children[a].mbr.Lo[axis] != children[b].mbr.Lo[axis] {
			return children[a].mbr.Lo[axis] < children[b].mbr.Lo[axis]
		}
		return children[a].mbr.Hi[axis] < children[b].mbr.Hi[axis]
	})
	var left, right []*node
	for i, o := range ord {
		if i < idx {
			left = append(left, children[o])
		} else {
			right = append(right, children[o])
		}
	}
	sib := &node{leaf: false, children: right, mbr: mbrOfNodes(right), splitDim: axis, historyDim: n.historyDim, units: t.unitsFor(len(right))}
	n.children = left
	n.mbr = mbrOfNodes(left)
	n.splitDim = axis
	// A successful split shrinks a supernode back to the smallest unit
	// count that still holds its group (usually 1).
	n.units = t.unitsFor(len(left))
	return sib
}

// unitsFor returns the number of node units needed for `entries` children.
func (t *Tree) unitsFor(entries int) int {
	u := (entries + t.dirCap - 1) / t.dirCap
	if u < 1 {
		u = 1
	}
	return u
}

// chooseDirSplit runs the R*-style topological split over child MBRs and
// returns the chosen axis, split index, and the overlap ratio (overlap
// volume divided by the volume of the smaller group, the X-tree's
// criterion; 0 when volumes degenerate).
func chooseDirSplit(children []*node) (axis, index int, overlapRatio float64) {
	m := len(children)
	minEntries := maxInt(2, (m*35)/100)
	bestMargin := math.Inf(1)
	for dim := 0; dim < children[0].mbr.Dim(); dim++ {
		ord := sortedOrder(m, func(a, b int) bool { return children[a].mbr.Lo[dim] < children[b].mbr.Lo[dim] })
		ps := buildPrefixSuffix(ord, func(i int) vec.MBR { return children[i].mbr })
		margin := 0.0
		forEachDistribution(m, minEntries, func(k int) {
			lm, rm := ps.groups(k)
			margin += lm.Margin() + rm.Margin()
		})
		if margin < bestMargin {
			bestMargin = margin
			axis = dim
		}
	}
	ord := sortedOrder(m, func(a, b int) bool { return children[a].mbr.Lo[axis] < children[b].mbr.Lo[axis] })
	ps := buildPrefixSuffix(ord, func(i int) vec.MBR { return children[i].mbr })
	bestOverlap, bestVol := math.Inf(1), math.Inf(1)
	index = m / 2
	var bestRatio float64
	forEachDistribution(m, minEntries, func(k int) {
		lm, rm := ps.groups(k)
		ov := lm.OverlapVolume(rm)
		vol := lm.Volume() + rm.Volume()
		if ov < bestOverlap || (ov == bestOverlap && vol < bestVol) {
			bestOverlap, bestVol = ov, vol
			index = k
			if small := math.Min(lm.Volume(), rm.Volume()); small > 0 {
				bestRatio = ov / small
			} else if ov > 0 {
				bestRatio = 1
			} else {
				bestRatio = 0
			}
		}
	})
	return axis, index, bestRatio
}

// overlapFreeSplitAlong looks for a split index along the given dimension
// yielding two groups whose MBRs do not overlap in that dimension, with
// both groups holding at least minEntries children. The X-tree's split
// history guarantees such a partition exists along the subtree's root
// split dimension (though possibly an unbalanced one, which is rejected
// here in favor of a supernode).
func overlapFreeSplitAlong(children []*node, dim, minEntries int) (index int, ok bool) {
	m := len(children)
	ord := sortedOrder(m, func(a, b int) bool { return children[a].mbr.Lo[dim] < children[b].mbr.Lo[dim] })
	maxHi := math.Inf(-1)
	for i := 0; i < m-1; i++ {
		maxHi = math.Max(maxHi, float64(children[ord[i]].mbr.Hi[dim]))
		k := i + 1
		if k < minEntries || m-k < minEntries {
			continue
		}
		if maxHi <= float64(children[ord[k]].mbr.Lo[dim]) {
			return k, true
		}
	}
	return 0, false
}

// --- helpers ---

// forEachDistribution calls fn with every admissible split index k
// (left group = first k elements) per the R*-tree distribution rule.
func forEachDistribution(m, minEntries int, fn func(k int)) {
	for k := minEntries; k <= m-minEntries; k++ {
		fn(k)
	}
}

// prefixSuffix caches cumulative MBRs of an ordering so every candidate
// distribution's group MBRs are available in O(1).
type prefixSuffix struct {
	pre []vec.MBR // pre[i] = MBR of ord[0..i]
	suf []vec.MBR // suf[i] = MBR of ord[i..]
}

func buildPrefixSuffix(ord []int, mbrOf func(int) vec.MBR) prefixSuffix {
	m := len(ord)
	ps := prefixSuffix{pre: make([]vec.MBR, m), suf: make([]vec.MBR, m)}
	acc := mbrOf(ord[0]).Clone()
	ps.pre[0] = acc
	for i := 1; i < m; i++ {
		acc = acc.Clone()
		acc.ExtendMBR(mbrOf(ord[i]))
		ps.pre[i] = acc
	}
	acc = mbrOf(ord[m-1]).Clone()
	ps.suf[m-1] = acc
	for i := m - 2; i >= 0; i-- {
		acc = acc.Clone()
		acc.ExtendMBR(mbrOf(ord[i]))
		ps.suf[i] = acc
	}
	return ps
}

// groups returns the MBRs of the first k elements and the rest.
func (ps prefixSuffix) groups(k int) (vec.MBR, vec.MBR) {
	return ps.pre[k-1], ps.suf[k]
}

func pointMBR(p vec.Point) vec.MBR {
	return vec.MBR{Lo: p, Hi: p}
}

func mbrOfNodes(ns []*node) vec.MBR {
	m := ns[0].mbr.Clone()
	for _, n := range ns[1:] {
		m.ExtendMBR(n.mbr)
	}
	return m
}

func sortedOrder(n int, less func(a, b int) bool) []int {
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return less(ord[a], ord[b]) })
	return ord
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
