package xtree

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

func mkNode(lo, hi vec.Point) *node {
	return &node{leaf: true, mbr: vec.MBR{Lo: lo, Hi: hi}, units: 1}
}

func TestOverlapFreeSplitFindsSeparableDimension(t *testing.T) {
	// Children separable along dim 1 (lows 0,1,2,3 with hi = lo+0.5), and
	// heavily overlapping along dim 0.
	var children []*node
	for i := 0; i < 4; i++ {
		children = append(children, mkNode(
			vec.Point{0, float32(i)},
			vec.Point{1, float32(i) + 0.5},
		))
	}
	k, ok := overlapFreeSplitAlong(children, 1, 2)
	if !ok || k != 2 {
		t.Fatalf("overlapFreeSplitAlong = (%d, %v), want (2, true)", k, ok)
	}
	// The heavily overlapping dimension admits no overlap-free split.
	if _, ok := overlapFreeSplitAlong(children, 0, 2); ok {
		t.Fatal("dim 0 should not split overlap-free")
	}
}

func TestOverlapFreeSplitRespectsBalance(t *testing.T) {
	// Separable only as 1 vs 3, but minEntries 2 forbids that.
	children := []*node{
		mkNode(vec.Point{0}, vec.Point{1}),
		mkNode(vec.Point{5}, vec.Point{6}),
		mkNode(vec.Point{5.2}, vec.Point{6.2}),
		mkNode(vec.Point{5.4}, vec.Point{6.4}),
	}
	if _, ok := overlapFreeSplitAlong(children, 0, 2); ok {
		t.Fatal("unbalanced split should be rejected")
	}
	if k, ok := overlapFreeSplitAlong(children, 0, 1); !ok || k != 1 {
		t.Fatalf("with minEntries 1: (%d, %v)", k, ok)
	}
}

func TestOverlapFreeSplitNoneExists(t *testing.T) {
	// All boxes identical: no overlap-free partition in any dimension.
	var children []*node
	for i := 0; i < 5; i++ {
		children = append(children, mkNode(vec.Point{0, 0}, vec.Point{1, 1}))
	}
	for dim := 0; dim < 2; dim++ {
		if _, ok := overlapFreeSplitAlong(children, dim, 2); ok {
			t.Fatal("identical boxes cannot split overlap-free")
		}
	}
}

func TestPrefixSuffixGroups(t *testing.T) {
	boxes := []*node{
		mkNode(vec.Point{0}, vec.Point{1}),
		mkNode(vec.Point{2}, vec.Point{3}),
		mkNode(vec.Point{4}, vec.Point{5}),
	}
	ord := []int{0, 1, 2}
	ps := buildPrefixSuffix(ord, func(i int) vec.MBR { return boxes[i].mbr })
	lm, rm := ps.groups(1)
	if lm.Hi[0] != 1 || rm.Lo[0] != 2 || rm.Hi[0] != 5 {
		t.Fatalf("groups(1): %v | %v", lm, rm)
	}
	lm, rm = ps.groups(2)
	if lm.Hi[0] != 3 || rm.Lo[0] != 4 {
		t.Fatalf("groups(2): %v | %v", lm, rm)
	}
}

func TestUnitsFor(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	tr, err := New(sto, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.unitsFor(1) != 1 || tr.unitsFor(tr.dirCap) != 1 {
		t.Fatal("single unit cases wrong")
	}
	if tr.unitsFor(tr.dirCap+1) != 2 {
		t.Fatal("overflow should need two units")
	}
}

func TestSupernodeCreationOnIdenticalBoxes(t *testing.T) {
	// Many points at identical locations force totally overlapping
	// subtrees; the X-tree must fall back to supernodes rather than
	// producing degenerate splits.
	r := rand.New(rand.NewSource(1))
	var pts []vec.Point
	for i := 0; i < 20000; i++ {
		base := float32(r.Intn(3))
		p := make(vec.Point, 8)
		for j := range p {
			p[j] = base + float32(r.NormFloat64())*1e-4
		}
		pts = append(pts, p)
	}
	sto := store.NewSim(store.DefaultConfig())
	tr := mustBuild(t, sto, pts, DefaultOptions())
	if tr.Len() != len(pts) {
		t.Fatalf("Len %d", tr.Len())
	}
	// Queries remain exact even with supernodes.
	q := pts[0]
	res := mustKNN(t, sto, tr, q, 3)
	if len(res) != 3 || res[0].Dist != 0 {
		t.Fatalf("query on degenerate data: %+v", res)
	}
}

func TestLeafSplitReducesOverlap(t *testing.T) {
	// Two well-separated clusters along dim 2: the topological split must
	// separate them (zero overlap).
	r := rand.New(rand.NewSource(2))
	var pts []vec.Point
	for i := 0; i < 40; i++ {
		p := vec.Point{r.Float32(), r.Float32(), float32(i % 2 * 10)}
		pts = append(pts, p)
	}
	axis, idx := chooseLeafSplit(pts, 40)
	if axis != 2 {
		t.Fatalf("split axis %d, want 2", axis)
	}
	if idx != 20 {
		t.Fatalf("split index %d, want 20", idx)
	}
}

func TestFinalizeIdempotentAndReFinalize(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := make([]vec.Point, 2000)
	for i := range pts {
		pts[i] = vec.Point{r.Float32(), r.Float32(), r.Float32(), r.Float32()}
	}
	sto := store.NewSim(store.DefaultConfig())
	tr := mustBuild(t, sto, pts, DefaultOptions())
	size := tr.file.Bytes()
	if err := tr.Finalize(); err != nil { // no-op
		t.Fatal(err)
	}
	if tr.file.Bytes() != size {
		t.Fatal("idempotent finalize changed the file")
	}
	tr.Insert(vec.Point{0.5, 0.5, 0.5, 0.5}, 9999)
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := mustKNN(t, sto, tr, vec.Point{0.5, 0.5, 0.5, 0.5}, 1)
	if res[0].ID != 9999 || res[0].Dist != 0 {
		t.Fatalf("re-finalized query: %+v", res[0])
	}
}

func TestQueryBeforeFinalizeErrors(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	tr, err := New(sto, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(vec.Point{1, 2}, 0)
	if _, err := tr.KNN(sto.NewSession(), vec.Point{1, 2}, 1); !errors.Is(err, errNotFinalized) {
		t.Fatalf("KNN before Finalize: err = %v, want errNotFinalized", err)
	}
	if _, err := tr.RangeSearch(sto.NewSession(), vec.Point{1, 2}, 1); !errors.Is(err, errNotFinalized) {
		t.Fatalf("RangeSearch before Finalize: err = %v, want errNotFinalized", err)
	}
}
