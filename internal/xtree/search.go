package xtree

import (
	"errors"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// errNotFinalized reports a query against a tree with pending inserts.
var errNotFinalized = errors.New("xtree: query before Finalize")

// KNN returns the k nearest neighbors of q using the Hjaltason/Samet
// best-first algorithm. Every visited node costs one random read of the
// node's blocks — the access pattern of a conventional index structure,
// which is exactly what the paper's comparison penalizes in high
// dimensions.
func (t *Tree) KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.finalized {
		return nil, errNotFinalized
	}
	if k <= 0 || t.n == 0 {
		return nil, nil
	}
	if k > t.n {
		k = t.n
	}
	met := t.opt.Metric
	tr := obs.TraceFrom(s.Observer())
	var pq nodeHeap
	pq.push(nodeItem{dist: t.root.mbr.MinDist(q, met), n: t.root})
	var res resHeap
	prune := func() float64 {
		if len(res) < k {
			return math.Inf(1)
		}
		return res[0].Dist
	}
	for len(pq.items) > 0 {
		it := pq.pop()
		if it.dist >= prune() {
			break
		}
		buf, err := s.Read(t.file, it.n.pos, it.n.blocks)
		if err != nil {
			return nil, err
		}
		tr.AddPages(1)
		if it.n.leaf {
			pts, ids := t.decodeLeaf(buf)
			tr.AddCandidates(len(pts))
			s.ChargeDistCPU(t.file, t.dim, len(pts))
			for i, p := range pts {
				d := met.Dist(q, p)
				if len(res) < k {
					res.push(vec.Neighbor{ID: ids[i], Dist: d, Point: p})
				} else if d < res[0].Dist {
					res[0] = vec.Neighbor{ID: ids[i], Dist: d, Point: p}
					res.fix()
				}
			}
			continue
		}
		s.ChargeApproxCPU(t.file, t.dim, len(it.n.children))
		for _, c := range it.n.children {
			if d := c.mbr.MinDist(q, met); d < prune() {
				pq.push(nodeItem{dist: d, n: c})
			}
		}
	}
	out := make([]vec.Neighbor, len(res))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = res.pop()
	}
	return out, nil
}

// NearestNeighbor returns the single nearest neighbor of q.
func (t *Tree) NearestNeighbor(s *store.Session, q vec.Point) (vec.Neighbor, bool, error) {
	r, err := t.KNN(s, q, 1)
	if err != nil || len(r) == 0 {
		return vec.Neighbor{}, false, err
	}
	return r[0], true, nil
}

// RangeSearch returns all points within eps of q, ordered by distance.
func (t *Tree) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.finalized {
		return nil, errNotFinalized
	}
	met := t.opt.Metric
	var out []vec.Neighbor
	var walk func(n *node) error
	walk = func(n *node) error {
		buf, err := s.Read(t.file, n.pos, n.blocks)
		if err != nil {
			return err
		}
		if n.leaf {
			pts, ids := t.decodeLeaf(buf)
			s.ChargeDistCPU(t.file, t.dim, len(pts))
			for i, p := range pts {
				if d := met.Dist(q, p); d <= eps {
					out = append(out, vec.Neighbor{ID: ids[i], Dist: d, Point: p})
				}
			}
			return nil
		}
		s.ChargeApproxCPU(t.file, t.dim, len(n.children))
		for _, c := range n.children {
			if c.mbr.MinDist(q, met) <= eps {
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if t.root.mbr.MinDist(q, met) <= eps {
		if err := walk(t.root); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out, nil
}

// --- heaps ---

type nodeItem struct {
	dist float64
	n    *node
}

type nodeHeap struct{ items []nodeItem }

func (h *nodeHeap) push(it nodeItem) {
	h.items = append(h.items, it)
	a := h.items
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].dist <= a[i].dist {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *nodeHeap) pop() nodeItem {
	a := h.items
	top := a[0]
	a[0] = a[len(a)-1]
	h.items = a[:len(a)-1]
	a = h.items
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].dist < a[m].dist {
			m = l
		}
		if r < len(a) && a[r].dist < a[m].dist {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

type resHeap []vec.Neighbor

func (h *resHeap) push(nb vec.Neighbor) {
	*h = append(*h, nb)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist >= a[i].Dist {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *resHeap) fix() {
	a := *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].Dist > a[m].Dist {
			m = l
		}
		if r < len(a) && a[r].Dist > a[m].Dist {
			m = r
		}
		if m == i {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

func (h *resHeap) pop() vec.Neighbor {
	a := *h
	top := a[0]
	a[0] = a[len(a)-1]
	*h = a[:len(a)-1]
	h.fix()
	return top
}

// WindowQuery returns all points inside the query window w.
func (t *Tree) WindowQuery(s *store.Session, w vec.MBR) ([]vec.Neighbor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.finalized {
		return nil, errNotFinalized
	}
	var out []vec.Neighbor
	var walk func(n *node) error
	walk = func(n *node) error {
		buf, err := s.Read(t.file, n.pos, n.blocks)
		if err != nil {
			return err
		}
		if n.leaf {
			pts, ids := t.decodeLeaf(buf)
			s.ChargeDistCPU(t.file, t.dim, len(pts))
			for i, p := range pts {
				if w.Contains(p) {
					out = append(out, vec.Neighbor{ID: ids[i], Point: p})
				}
			}
			return nil
		}
		s.ChargeApproxCPU(t.file, t.dim, len(n.children))
		for _, c := range n.children {
			if c.mbr.Intersects(w) {
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if t.root.mbr.Intersects(w) {
		if err := walk(t.root); err != nil {
			return nil, err
		}
	}
	return out, nil
}
