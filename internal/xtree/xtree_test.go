package xtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

func clusteredPoints(r *rand.Rand, n, d, clusters int) []vec.Point {
	centers := randPoints(r, clusters, d)
	pts := make([]vec.Point, n)
	for i := range pts {
		c := centers[r.Intn(clusters)]
		p := make(vec.Point, d)
		for j := range p {
			p[j] = c[j] + float32(r.NormFloat64()*0.03)
		}
		pts[i] = p
	}
	return pts
}

// mustBuild builds a finalized tree or fails the test.
func mustBuild(t *testing.T, sto *store.Store, pts []vec.Point, opt Options) *Tree {
	t.Helper()
	tr, err := Build(sto, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// mustKNN runs a KNN query on a fresh session or fails the test.
func mustKNN(t *testing.T, sto *store.Store, tr *Tree, q vec.Point, k int) []vec.Neighbor {
	t.Helper()
	res, err := tr.KNN(sto.NewSession(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func bruteKNN(pts []vec.Point, q vec.Point, k int, met vec.Metric) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = met.Dist(q, p)
	}
	sort.Float64s(ds)
	return ds[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum} {
		for _, d := range []int{2, 8, 16} {
			r := rand.New(rand.NewSource(1))
			pts := randPoints(r, 3000, d)
			sto := store.NewSim(store.DefaultConfig())
			opt := DefaultOptions()
			opt.Metric = met
			tr := mustBuild(t, sto, pts, opt)
			if tr.Len() != len(pts) {
				t.Fatalf("Len = %d", tr.Len())
			}
			for qi, q := range randPoints(r, 10, d) {
				got := mustKNN(t, sto, tr, q, 5)
				want := bruteKNN(pts, q, 5, met)
				for i := range got {
					if math.Abs(got[i].Dist-want[i]) > 1e-5 {
						t.Fatalf("met=%v d=%d query %d result %d: %.8f want %.8f", met, d, qi, i, got[i].Dist, want[i])
					}
				}
			}
		}
	}
}

func TestClusteredDataAndSupernodes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := clusteredPoints(r, 5000, 12, 8)
	sto := store.NewSim(store.DefaultConfig())
	tr := mustBuild(t, sto, pts, DefaultOptions())
	st := tr.Stats()
	if st.Leaves == 0 || st.Points != 5000 {
		t.Fatalf("stats: %+v", st)
	}
	for qi, q := range clusteredPoints(r, 10, 12, 8) {
		got := mustKNN(t, sto, tr, q, 3)
		want := bruteKNN(pts, q, 3, vec.Euclidean)
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-5 {
				t.Fatalf("query %d result %d: %.8f want %.8f", qi, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestRangeSearch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 2000, 4)
	sto := store.NewSim(store.DefaultConfig())
	tr := mustBuild(t, sto, pts, DefaultOptions())
	for _, q := range randPoints(r, 10, 4) {
		eps := 0.25
		got, err := tr.RangeSearch(sto.NewSession(), q, eps)
		if err != nil {
			t.Fatal(err)
		}
		var want int
		for _, p := range pts {
			if vec.Euclidean.Dist(q, p) <= eps {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("got %d results, want %d", len(got), want)
		}
	}
}

func TestDynamicInsertAfterBuild(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 1000, 6)
	sto := store.NewSim(store.DefaultConfig())
	tr := mustBuild(t, sto, pts, DefaultOptions())
	extra := randPoints(r, 500, 6)
	for i, p := range extra {
		tr.Insert(p, uint32(1000+i))
	}
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	all := append(append([]vec.Point{}, pts...), extra...)
	for _, q := range randPoints(r, 10, 6) {
		got := mustKNN(t, sto, tr, q, 4)
		want := bruteKNN(all, q, 4, vec.Euclidean)
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-5 {
				t.Fatalf("dist %.8f want %.8f", got[i].Dist, want[i])
			}
		}
	}
}

func TestRandomIOCostGrowsWithDimension(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cost := func(d int) float64 {
		pts := randPoints(r, 4000, d)
		sto := store.NewSim(store.DefaultConfig())
		tr := mustBuild(t, sto, pts, DefaultOptions())
		var total float64
		for _, q := range randPoints(r, 5, d) {
			s := sto.NewSession()
			if _, err := tr.KNN(s, q, 1); err != nil {
				t.Fatal(err)
			}
			total += s.Time()
		}
		return total
	}
	if lo, hi := cost(2), cost(16); hi <= lo {
		t.Fatalf("expected cost to grow with dimension: d=2 %.4f, d=16 %.4f", lo, hi)
	}
}
