// Package xtree implements the X-tree (Berchtold, Keim, Kriegel, VLDB
// 1996), the hierarchical-index comparator of the paper's evaluation.
//
// The X-tree extends the R*-tree with two mechanisms for high-dimensional
// data: an overlap-minimal split that falls back to the nodes' split
// history, and *supernodes* — directory nodes enlarged to a multiple of
// the block size whenever no balanced overlap-free split exists, so that
// a degenerating directory turns into (cheap) larger sequential reads
// instead of exponentially overlapping subtrees.
//
// Construction is dynamic (one insert per point, R*-style choose-subtree).
// Queries charge their page accesses to a simulated disk session; every
// node access is a random read of the node's blocks, which is how
// conventional index structures behave (paper Section 2).
package xtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/page"
	"repro/internal/store"
	"repro/internal/vec"
)

// Options configures an X-tree.
type Options struct {
	// Metric is the query metric. Default Euclidean.
	Metric vec.Metric
	// MaxOverlap is the overlap ratio above which a topological split is
	// rejected in favor of an overlap-minimal split or a supernode.
	// Default 0.2 (the X-tree paper's MAX_OVERLAP).
	MaxOverlap float64
	// MinFanoutRatio is the minimum fraction of entries each side of an
	// overlap-minimal split must receive; below it the split is considered
	// unbalanced and a supernode is created. Default 0.35.
	MinFanoutRatio float64
	// NodeBlocks is the base size of a node in blocks. Default 1.
	NodeBlocks int
}

// DefaultOptions returns the X-tree paper's parameters.
func DefaultOptions() Options {
	return Options{Metric: vec.Euclidean, MaxOverlap: 0.2, MinFanoutRatio: 0.35, NodeBlocks: 1}
}

// node is an X-tree node. Directory nodes hold child references; leaves
// hold points. Supernodes span multiple block units.
type node struct {
	leaf     bool
	mbr      vec.MBR
	children []*node     // directory node payload
	pts      []vec.Point // leaf payload
	ids      []uint32
	units    int // size in node units (≥ 2 means supernode)
	splitDim int // dimension of the split that created this node (-1 for root)
	// historyDim is the root dimension of this node's split history: the
	// dimension of the first split among its children. The X-tree's
	// overlap-minimal split is only guaranteed (and only attempted) along
	// this dimension.
	historyDim int
	pos        int // block position after finalize
	blocks     int // size in blocks after finalize
}

// Tree is an X-tree over a block store.
type Tree struct {
	mu        sync.RWMutex
	sto       *store.Store
	file      *store.File
	opt       Options
	dim       int
	n         int
	root      *node
	dirCap    int // directory entries per node unit
	leafCap   int // points per leaf
	height    int
	finalized bool
}

// New creates an empty X-tree for points of dimensionality dim.
func New(sto *store.Store, dim int, opt Options) (*Tree, error) {
	if opt.NodeBlocks <= 0 {
		opt.NodeBlocks = 1
	}
	if opt.MaxOverlap <= 0 {
		opt.MaxOverlap = 0.2
	}
	if opt.MinFanoutRatio <= 0 {
		opt.MinFanoutRatio = 0.35
	}
	nodeBytes := opt.NodeBlocks * sto.Config().BlockSize
	file, err := sto.NewFile("x.tree")
	if err != nil {
		return nil, err
	}
	t := &Tree{
		sto:  sto,
		file: file,
		opt:  opt,
		dim:  dim,
		// Node payload = node bytes minus the 8-byte header.
		// Directory entry: child MBR + pointer + size.
		dirCap:  (nodeBytes - 8) / (8*dim + 8),
		leafCap: (nodeBytes - 8) / page.ExactEntrySize(dim),
		root:    &node{leaf: true, mbr: vec.NewMBR(dim), splitDim: -1, historyDim: -1, units: 1},
		height:  1,
	}
	if t.dirCap < 4 || t.leafCap < 2 {
		return nil, fmt.Errorf("xtree: node size too small for dimension %d", dim)
	}
	return t, nil
}

// Build constructs an X-tree by inserting pts one by one (ids are point
// indices) and finalizing the disk layout.
func Build(sto *store.Store, pts []vec.Point, opt Options) (*Tree, error) {
	if len(pts) == 0 {
		return nil, errors.New("xtree: empty point set")
	}
	t, err := New(sto, len(pts[0]), opt)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		t.insert(p, uint32(i))
	}
	if err := t.Finalize(); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of stored points.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// Dim returns the dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Height returns the height of the tree (1 = a single leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Insert adds a point dynamically. The tree must be re-finalized before
// further queries.
func (t *Tree) Insert(p vec.Point, id uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.insert(p, id)
	t.finalized = false
}

func (t *Tree) insert(p vec.Point, id uint32) {
	if len(p) != t.dim {
		panic(fmt.Sprintf("xtree: insert dimension %d, want %d", len(p), t.dim))
	}
	t.n++
	split := t.insertInto(t.root, p, id)
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node{
			leaf:       false,
			mbr:        unionMBR(old.mbr, split.mbr),
			children:   []*node{old, split},
			splitDim:   -1,
			historyDim: split.splitDim,
			units:      1,
		}
		t.height++
	}
}

// insertInto descends into n; it returns a new sibling if n was split.
func (t *Tree) insertInto(n *node, p vec.Point, id uint32) *node {
	n.mbr.Extend(p)
	if n.leaf {
		n.pts = append(n.pts, p.Clone())
		n.ids = append(n.ids, id)
		if len(n.pts) > t.leafCap {
			return t.splitLeaf(n)
		}
		return nil
	}
	var child *node
	if n.children[0].leaf {
		child = chooseLeafSubtree(n.children, p)
	} else {
		child = chooseSubtree(n.children, p)
	}
	split := t.insertInto(child, p, id)
	if split != nil {
		if n.historyDim < 0 {
			n.historyDim = split.splitDim
		}
		n.children = append(n.children, split)
		if len(n.children) > t.dirCap*n.units {
			return t.splitDir(n)
		}
	}
	return nil
}

// chooseLeafSubtree implements the R*-tree rule for the level above the
// leaves: among the candidates with least volume enlargement, pick the
// one whose enlargement increases the overlap with its siblings least.
// Following the standard R*-tree optimization, only the best few
// candidates by volume enlargement are examined.
func chooseLeafSubtree(children []*node, p vec.Point) *node {
	const maxCandidates = 8
	type cand struct {
		n   *node
		enl float64
	}
	cands := make([]cand, 0, len(children))
	for _, c := range children {
		var enl float64
		if !c.mbr.Contains(p) {
			ext := c.mbr.Clone()
			ext.Extend(p)
			enl = ext.Volume() - c.mbr.Volume()
		}
		cands = append(cands, cand{n: c, enl: enl})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].enl < cands[b].enl })
	if len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	best := cands[0].n
	bestOv := math.Inf(1)
	for _, c := range cands {
		ext := c.n.mbr.Clone()
		ext.Extend(p)
		var dOv float64
		for _, o := range children {
			if o == c.n {
				continue
			}
			dOv += ext.OverlapVolume(o.mbr) - c.n.mbr.OverlapVolume(o.mbr)
		}
		if dOv < bestOv || (dOv == bestOv && c.enl < math.Inf(1) && c.n.mbr.Volume() < best.mbr.Volume()) {
			bestOv = dOv
			best = c.n
		}
	}
	return best
}

// chooseSubtree picks the child needing least volume enlargement
// (ties: least volume).
func chooseSubtree(children []*node, p vec.Point) *node {
	best := children[0]
	bestEnl, bestVol := math.Inf(1), math.Inf(1)
	for _, c := range children {
		vol := c.mbr.Volume()
		var enl float64
		if c.mbr.Contains(p) {
			enl = 0
		} else {
			ext := c.mbr.Clone()
			ext.Extend(p)
			enl = ext.Volume() - vol
		}
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			bestEnl, bestVol = enl, vol
			best = c
		}
	}
	return best
}

func unionMBR(a, b vec.MBR) vec.MBR {
	u := a.Clone()
	u.ExtendMBR(b)
	return u
}
