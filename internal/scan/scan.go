// Package scan implements the sequential-scan reference technique of the
// paper's evaluation: all points stored back to back in one file, every
// query reads the entire file once (benefiting from sequential rather
// than random I/O) and computes exact distances.
package scan

import (
	"errors"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/store"
	"repro/internal/vec"
)

// Scan is the flat-file access method.
type Scan struct {
	sto    *store.Store
	file   *store.File
	dim    int
	n      int
	metric vec.Metric
}

// Build stores pts (with ids equal to their indices) in a flat file.
func Build(sto *store.Store, pts []vec.Point, met vec.Metric) (*Scan, error) {
	if len(pts) == 0 {
		return nil, errors.New("scan: empty point set")
	}
	file, err := sto.NewFile("scan.data")
	if err != nil {
		return nil, err
	}
	sc := &Scan{
		sto:    sto,
		file:   file,
		dim:    len(pts[0]),
		n:      len(pts),
		metric: met,
	}
	ids := make([]uint32, len(pts))
	for i := range ids {
		ids[i] = uint32(i)
	}
	if _, _, err := sc.file.Append(page.MarshalExact(pts, ids)); err != nil {
		return nil, err
	}
	return sc, nil
}

// Len returns the number of stored points.
func (sc *Scan) Len() int { return sc.n }

// Dim returns the dimensionality.
func (sc *Scan) Dim() int { return sc.dim }

// IndexStats implements index.Index with the common cross-method shape
// summary.
func (sc *Scan) IndexStats() index.Stats {
	return index.Stats{
		Method: "Scan",
		Points: sc.n,
		Dim:    sc.dim,
		Pages:  sc.file.Blocks(),
		Bytes:  sc.file.Bytes(),
	}
}

// KNN returns the k nearest neighbors of q by scanning the whole file.
func (sc *Scan) KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	if k > sc.n {
		k = sc.n
	}
	var res resHeap
	if err := sc.scanAll(s, func(p vec.Point, id uint32) {
		d := sc.metric.Dist(q, p)
		if len(res) < k {
			res.push(vec.Neighbor{ID: id, Dist: d, Point: p})
		} else if d < res[0].Dist {
			res[0] = vec.Neighbor{ID: id, Dist: d, Point: p}
			res.fix()
		}
	}); err != nil {
		return nil, err
	}
	out := make([]vec.Neighbor, len(res))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = res.pop()
	}
	return out, nil
}

// NearestNeighbor returns the single nearest neighbor of q.
func (sc *Scan) NearestNeighbor(s *store.Session, q vec.Point) (vec.Neighbor, bool, error) {
	r, err := sc.KNN(s, q, 1)
	if err != nil || len(r) == 0 {
		return vec.Neighbor{}, false, err
	}
	return r[0], true, nil
}

// RangeSearch returns all points within eps of q, in file order.
func (sc *Scan) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error) {
	var out []vec.Neighbor
	if err := sc.scanAll(s, func(p vec.Point, id uint32) {
		if d := sc.metric.Dist(q, p); d <= eps {
			out = append(out, vec.Neighbor{ID: id, Dist: d, Point: p})
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// scanAll reads the file once sequentially and invokes fn per point.
func (sc *Scan) scanAll(s *store.Session, fn func(vec.Point, uint32)) error {
	buf, err := s.Read(sc.file, 0, sc.file.Blocks())
	if err != nil {
		return err
	}
	tr := obs.TraceFrom(s.Observer())
	tr.AddPages(sc.file.Blocks())
	tr.AddCandidates(sc.n) // every point is distance-checked
	s.ChargeDistCPU(sc.file, sc.dim, sc.n)
	entrySize := page.ExactEntrySize(sc.dim)
	for i := 0; i < sc.n; i++ {
		p, id := page.UnmarshalExactEntry(buf[i*entrySize:], sc.dim)
		fn(p, id)
	}
	return nil
}

// resHeap is a max-heap of neighbors by distance.
type resHeap []vec.Neighbor

func (h *resHeap) push(nb vec.Neighbor) {
	*h = append(*h, nb)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist >= a[i].Dist {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *resHeap) fix() {
	a := *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l].Dist > a[m].Dist {
			m = l
		}
		if r < len(a) && a[r].Dist > a[m].Dist {
			m = r
		}
		if m == i {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

func (h *resHeap) pop() vec.Neighbor {
	a := *h
	top := a[0]
	a[0] = a[len(a)-1]
	*h = a[:len(a)-1]
	h.fix()
	return top
}

// WindowQuery returns all points inside the query window w, in file
// order. Dist fields of the results are 0.
func (sc *Scan) WindowQuery(s *store.Session, w vec.MBR) ([]vec.Neighbor, error) {
	var out []vec.Neighbor
	if err := sc.scanAll(s, func(p vec.Point, id uint32) {
		if w.Contains(p) {
			out = append(out, vec.Neighbor{ID: id, Point: p})
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}
