package scan

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

func bruteKNN(pts []vec.Point, q vec.Point, k int, met vec.Metric) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = met.Dist(q, p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

// mustBuild builds a scan or fails the test.
func mustBuild(t *testing.T, sto *store.Store, pts []vec.Point, met vec.Metric) *Scan {
	t.Helper()
	sc, err := Build(sto, pts, met)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// mustKNN runs a KNN query on a fresh session or fails the test.
func mustKNN(t *testing.T, sto *store.Store, sc *Scan, q vec.Point, k int) []vec.Neighbor {
	t.Helper()
	res, err := sc.KNN(sto.NewSession(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestKNNMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum, vec.Manhattan} {
		pts := randPoints(r, 1000, 6)
		sto := store.NewSim(store.DefaultConfig())
		sc := mustBuild(t, sto, pts, met)
		if sc.Len() != 1000 || sc.Dim() != 6 {
			t.Fatal("metadata wrong")
		}
		for _, q := range randPoints(r, 10, 6) {
			got := mustKNN(t, sto, sc, q, 7)
			want := bruteKNN(pts, q, 7, met)
			for i := range want {
				if math.Abs(got[i].Dist-want[i]) > 1e-6 {
					t.Fatalf("%v: dist %f, want %f", met, got[i].Dist, want[i])
				}
			}
			// Results carry correct ids and coordinates.
			for _, nb := range got {
				if !pts[nb.ID].Equal(nb.Point) {
					t.Fatalf("id/point mismatch for %d", nb.ID)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 50, 3)
	sto := store.NewSim(store.DefaultConfig())
	sc := mustBuild(t, sto, pts, vec.Euclidean)
	if got := mustKNN(t, sto, sc, pts[0], 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := mustKNN(t, sto, sc, pts[0], 500); len(got) != 50 {
		t.Fatalf("k>n returned %d", len(got))
	}
	nn, ok, err := sc.NearestNeighbor(sto.NewSession(), pts[7])
	if err != nil {
		t.Fatal(err)
	}
	if !ok || nn.Dist != 0 || nn.ID != 7 {
		t.Fatalf("self-NN: %+v", nn)
	}
}

func TestRangeSearch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 800, 4)
	sto := store.NewSim(store.DefaultConfig())
	sc := mustBuild(t, sto, pts, vec.Euclidean)
	q := randPoints(r, 1, 4)[0]
	eps := 0.4
	got, err := sc.RangeSearch(sto.NewSession(), q, eps)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, p := range pts {
		if vec.Euclidean.Dist(q, p) <= eps {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("got %d, want %d", len(got), want)
	}
}

func TestScanCostIsOneSequentialPass(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 5000, 16)
	sto := store.NewSim(store.DefaultConfig())
	sc := mustBuild(t, sto, pts, vec.Euclidean)
	s := sto.NewSession()
	if _, err := sc.KNN(s, pts[0], 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Seeks != 1 {
		t.Fatalf("scan used %d seeks, want 1", s.Stats.Seeks)
	}
	wantBlocks := sto.Config().Blocks(5000 * (16*4 + 4))
	if s.Stats.BlocksRead != wantBlocks {
		t.Fatalf("blocks %d, want %d", s.Stats.BlocksRead, wantBlocks)
	}
	// Cost grows linearly with N: build a double-size scan.
	sto2 := store.NewSim(store.DefaultConfig())
	sc2 := mustBuild(t, sto2, randPoints(r, 10000, 16), vec.Euclidean)
	s2 := sto2.NewSession()
	if _, err := sc2.KNN(s2, pts[0], 1); err != nil {
		t.Fatal(err)
	}
	// Linear after subtracting the single fixed seek.
	seek := sto.Config().Seek
	if ratio := (s2.Time() - seek) / (s.Time() - seek); math.Abs(ratio-2) > 0.1 {
		t.Fatalf("cost ratio %f, want ~2", ratio)
	}
}
