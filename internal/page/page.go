// Package page defines the on-disk formats of the three IQ-tree levels
// (paper Fig. 3): first-level directory entries with exact MBRs,
// fixed-size quantized data pages, and variable-size exact data pages.
// All encodings are little-endian via encoding/binary.
//
// Layouts (d = dimensionality):
//
//	directory entry  (24 + 8d bytes):
//	    count u32 | bits u8 | pad[3] | qpos u32 | epos u32 |
//	    eblocks u32 | base u32 | mbr lo[d]f32 hi[d]f32
//	quantized page   (fixed size, QHeaderSize = 8):
//	    count u32 | bits u8 | pad[3] | payload
//	    payload, bits < 32 : bit-packed cell indices (count·d·bits bits)
//	    payload, bits = 32 : count·d f32 coords, then count u32 ids
//	exact entry      (4d + 4 bytes): d f32 coords | id u32
package page

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/quantize"
	"repro/internal/vec"
)

// QHeaderSize is the byte size of the quantized-page header.
const QHeaderSize = 8

// DirEntry is one first-level directory entry: the exact MBR of a
// partition plus the locations of its second- and third-level pages.
type DirEntry struct {
	Count   uint32 // points in the partition
	Bits    uint8  // quantization level g
	QPos    uint32 // index of the quantized page in the second-level file
	EPos    uint32 // starting block of the exact page in the third-level file
	EBlocks uint32 // size of the exact page in blocks (0 for g = 32)
	Base    uint32 // sequence index of the partition's first point
	MBR     vec.MBR
}

// DirEntrySize returns the encoded size of a directory entry in d
// dimensions.
func DirEntrySize(d int) int { return 24 + 8*d }

// Marshal encodes e into buf, which must be at least DirEntrySize(d) long.
func (e *DirEntry) Marshal(buf []byte, d int) {
	if len(buf) < DirEntrySize(d) {
		panic("page: directory entry buffer too small")
	}
	le := binary.LittleEndian
	le.PutUint32(buf[0:], e.Count)
	buf[4] = e.Bits
	buf[5], buf[6], buf[7] = 0, 0, 0
	le.PutUint32(buf[8:], e.QPos)
	le.PutUint32(buf[12:], e.EPos)
	le.PutUint32(buf[16:], e.EBlocks)
	le.PutUint32(buf[20:], e.Base)
	off := 24
	for i := 0; i < d; i++ {
		le.PutUint32(buf[off:], math.Float32bits(e.MBR.Lo[i]))
		off += 4
	}
	for i := 0; i < d; i++ {
		le.PutUint32(buf[off:], math.Float32bits(e.MBR.Hi[i]))
		off += 4
	}
}

// UnmarshalDirEntry decodes a directory entry of dimensionality d.
func UnmarshalDirEntry(buf []byte, d int) DirEntry {
	if len(buf) < DirEntrySize(d) {
		panic("page: directory entry buffer too small")
	}
	le := binary.LittleEndian
	e := DirEntry{
		Count:   le.Uint32(buf[0:]),
		Bits:    buf[4],
		QPos:    le.Uint32(buf[8:]),
		EPos:    le.Uint32(buf[12:]),
		EBlocks: le.Uint32(buf[16:]),
		Base:    le.Uint32(buf[20:]),
		MBR:     vec.MBR{Lo: make(vec.Point, d), Hi: make(vec.Point, d)},
	}
	off := 24
	for i := 0; i < d; i++ {
		e.MBR.Lo[i] = math.Float32frombits(le.Uint32(buf[off:]))
		off += 4
	}
	for i := 0; i < d; i++ {
		e.MBR.Hi[i] = math.Float32frombits(le.Uint32(buf[off:]))
		off += 4
	}
	return e
}

// QPageCapacity returns the maximum number of points a quantized page with
// payloadBytes of payload can hold at the given quantization level. Exact
// (32-bit) pages store coordinates plus point ids and need no third-level
// page; compressed pages store only bit-packed cell indices.
func QPageCapacity(payloadBytes, d, bits int) int {
	if bits >= quantize.ExactBits {
		return payloadBytes / (4*d + 4)
	}
	return payloadBytes * 8 / (d * bits)
}

// MarshalQPage encodes a quantized data page of exactly pageBytes bytes.
// For bits < 32 the points are grid-quantized relative to grid.MBR; for
// bits = 32 exact coordinates and ids are stored. ids is required only for
// 32-bit pages.
func MarshalQPage(grid quantize.Grid, pts []vec.Point, ids []uint32, pageBytes int) []byte {
	d := grid.Dim()
	if QPageCapacity(pageBytes-QHeaderSize, d, grid.Bits) < len(pts) {
		panic(fmt.Sprintf("page: %d points exceed quantized page capacity at %d bits", len(pts), grid.Bits))
	}
	buf := make([]byte, pageBytes)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(len(pts)))
	buf[4] = uint8(grid.Bits)
	if grid.Exact() {
		if len(ids) != len(pts) {
			panic("page: exact quantized page requires ids")
		}
		off := QHeaderSize
		for _, p := range pts {
			for _, v := range p {
				le.PutUint32(buf[off:], math.Float32bits(v))
				off += 4
			}
		}
		for _, id := range ids {
			le.PutUint32(buf[off:], id)
			off += 4
		}
		return buf
	}
	packed := quantize.Pack(grid, pts)
	copy(buf[QHeaderSize:], packed)
	return buf
}

// QPage is a decoded quantized data page header plus raw payload.
type QPage struct {
	Count   int
	Bits    int
	Payload []byte
}

// UnmarshalQPage decodes the header of a quantized page.
func UnmarshalQPage(buf []byte) QPage {
	le := binary.LittleEndian
	return QPage{
		Count:   int(le.Uint32(buf[0:])),
		Bits:    int(buf[4]),
		Payload: buf[QHeaderSize:],
	}
}

// Cells returns the flat cell-index array (point-major, Count·d entries)
// of a compressed page under grid g.
func (p QPage) Cells(g quantize.Grid) []uint32 {
	return quantize.Unpack(g, p.Payload, p.Count)
}

// ExactPoints decodes the coordinates and ids of a 32-bit page.
func (p QPage) ExactPoints(d int) ([]vec.Point, []uint32) {
	if p.Bits != quantize.ExactBits {
		panic("page: ExactPoints on a compressed page")
	}
	le := binary.LittleEndian
	pts := make([]vec.Point, p.Count)
	off := 0
	for i := range pts {
		pt := make(vec.Point, d)
		for j := 0; j < d; j++ {
			pt[j] = math.Float32frombits(le.Uint32(p.Payload[off:]))
			off += 4
		}
		pts[i] = pt
	}
	ids := make([]uint32, p.Count)
	for i := range ids {
		ids[i] = le.Uint32(p.Payload[off:])
		off += 4
	}
	return pts, ids
}

// ExactEntrySize returns the encoded size of one exact-point entry.
func ExactEntrySize(d int) int { return 4*d + 4 }

// MarshalExact encodes the third-level exact page: one entry per point,
// coordinates followed by the point id.
func MarshalExact(pts []vec.Point, ids []uint32) []byte {
	if len(pts) != len(ids) {
		panic("page: points/ids length mismatch")
	}
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	buf := make([]byte, len(pts)*ExactEntrySize(d))
	le := binary.LittleEndian
	off := 0
	for i, p := range pts {
		for _, v := range p {
			le.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
		le.PutUint32(buf[off:], ids[i])
		off += 4
	}
	return buf
}

// UnmarshalExactEntry decodes one exact-point entry of dimensionality d.
func UnmarshalExactEntry(buf []byte, d int) (vec.Point, uint32) {
	le := binary.LittleEndian
	p := make(vec.Point, d)
	off := 0
	for j := 0; j < d; j++ {
		p[j] = math.Float32frombits(le.Uint32(buf[off:]))
		off += 4
	}
	return p, le.Uint32(buf[off:])
}
