package page

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/quantize"
	"repro/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = float32(r.NormFloat64())
		}
		pts[i] = p
	}
	return pts
}

func TestDirEntryRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		d := 1 + r.Intn(20)
		e := DirEntry{
			Count:   r.Uint32(),
			Bits:    uint8(r.Intn(33)),
			QPos:    r.Uint32(),
			EPos:    r.Uint32(),
			EBlocks: r.Uint32(),
			Base:    r.Uint32(),
			MBR:     vec.MBROf(randPoints(r, 3, d)),
		}
		buf := make([]byte, DirEntrySize(d))
		e.Marshal(buf, d)
		got := UnmarshalDirEntry(buf, d)
		if got.Count != e.Count || got.Bits != e.Bits || got.QPos != e.QPos ||
			got.EPos != e.EPos || got.EBlocks != e.EBlocks || got.Base != e.Base {
			t.Fatalf("header mismatch: %+v vs %+v", got, e)
		}
		if !got.MBR.Lo.Equal(e.MBR.Lo) || !got.MBR.Hi.Equal(e.MBR.Hi) {
			t.Fatal("MBR mismatch")
		}
	}
}

func TestDirEntryBufferTooSmallPanics(t *testing.T) {
	e := DirEntry{MBR: vec.MBR{Lo: vec.Point{0}, Hi: vec.Point{1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Marshal(make([]byte, 4), 1)
}

func TestQPageCapacity(t *testing.T) {
	// 4088-byte payload, d=16: 2044 points at 1 bit, 60 exact points.
	if got := QPageCapacity(4088, 16, 1); got != 2044 {
		t.Fatalf("cap(1) = %d", got)
	}
	if got := QPageCapacity(4088, 16, 32); got != 60 {
		t.Fatalf("cap(32) = %d", got)
	}
	if got := QPageCapacity(4088, 16, 8); got != 255 {
		t.Fatalf("cap(8) = %d", got)
	}
}

func TestQPageRoundtripCompressed(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, bits := range []int{1, 2, 4, 8, 16} {
		d := 1 + r.Intn(12)
		pts := randPoints(r, 50, d)
		grid := quantize.NewGrid(vec.MBROf(pts), bits)
		pageBytes := QHeaderSize + QPageCapacity(1<<14, d, bits) // roomy
		_ = pageBytes
		buf := MarshalQPage(grid, pts, nil, 1<<14)
		qp := UnmarshalQPage(buf)
		if qp.Count != 50 || qp.Bits != bits {
			t.Fatalf("header: %+v", qp)
		}
		cells := qp.Cells(grid)
		for i, p := range pts {
			want := grid.Encode(p, nil)
			for j := 0; j < d; j++ {
				if cells[i*d+j] != want[j] {
					t.Fatalf("bits=%d cell mismatch at point %d dim %d", bits, i, j)
				}
			}
		}
	}
}

func TestQPageRoundtripExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := 7
	pts := randPoints(r, 20, d)
	ids := make([]uint32, 20)
	for i := range ids {
		ids[i] = uint32(1000 + i)
	}
	grid := quantize.NewGrid(vec.MBROf(pts), quantize.ExactBits)
	buf := MarshalQPage(grid, pts, ids, 4096)
	qp := UnmarshalQPage(buf)
	gotPts, gotIDs := qp.ExactPoints(d)
	for i := range pts {
		if !gotPts[i].Equal(pts[i]) || gotIDs[i] != ids[i] {
			t.Fatalf("exact roundtrip mismatch at %d", i)
		}
	}
}

func TestQPageOverflowPanics(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 100, 16)
	grid := quantize.NewGrid(vec.MBROf(pts), quantize.ExactBits)
	defer func() {
		if recover() == nil {
			t.Fatal("expected capacity panic")
		}
	}()
	MarshalQPage(grid, pts, make([]uint32, 100), 512) // far too small
}

func TestExactPointsOnCompressedPagePanics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 5, 4)
	grid := quantize.NewGrid(vec.MBROf(pts), 4)
	qp := UnmarshalQPage(MarshalQPage(grid, pts, nil, 4096))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	qp.ExactPoints(4)
}

// Property: exact entries roundtrip coordinates and ids for arbitrary
// float32 values (including NaN-free specials).
func TestExactEntryRoundtripQuick(t *testing.T) {
	f := func(xs []float32, id uint32) bool {
		if len(xs) == 0 {
			return true
		}
		p := vec.Point(xs)
		buf := MarshalExact([]vec.Point{p}, []uint32{id})
		if len(buf) != ExactEntrySize(len(xs)) {
			return false
		}
		got, gotID := UnmarshalExactEntry(buf, len(xs))
		if gotID != id {
			return false
		}
		for i := range xs {
			// Compare bit patterns so NaNs roundtrip too.
			if got[i] != xs[i] && !(got[i] != got[i] && xs[i] != xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalExactValidations(t *testing.T) {
	if MarshalExact(nil, nil) != nil {
		t.Fatal("empty exact page should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected mismatch panic")
		}
	}()
	MarshalExact([]vec.Point{{1}}, []uint32{1, 2})
}
