package index_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/vec"
)

// TestApproxCrossIndexFullRecall extends the equivalence contract
// through the approximate knob at its exact-degenerate setting: an
// engine query with MinRecall = 1 (ε = 0) must answer bit-identically
// to the plain exact query on every access method — the IQ-tree arms
// the probability-bounded stopping rule but the rule never fires, and
// the other methods serve the query through the exact fallback.
func TestApproxCrossIndexFullRecall(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const n, dim, k = 2000, 8, 10
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	methods := buildAll(t, pts)

	queries := make([]vec.Point, 10)
	for i := range queries {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		queries[i] = p
	}

	for _, m := range methods {
		e := engine.New(m.sto, m.idx, 2)
		for qi, q := range queries {
			exact := e.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k})
			approx := e.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k, MinRecall: 1})
			if exact.Err != nil || approx.Err != nil {
				t.Fatalf("%s query %d: exact %v, approx %v", m.name, qi, exact.Err, approx.Err)
			}
			if len(exact.Neighbors) != len(approx.Neighbors) {
				t.Fatalf("%s query %d: %d vs %d results", m.name, qi, len(exact.Neighbors), len(approx.Neighbors))
			}
			for i := range exact.Neighbors {
				if exact.Neighbors[i].ID != approx.Neighbors[i].ID ||
					exact.Neighbors[i].Dist != approx.Neighbors[i].Dist {
					t.Fatalf("%s query %d rank %d: exact (%d, %v), MinRecall=1 (%d, %v)",
						m.name, qi, i, exact.Neighbors[i].ID, exact.Neighbors[i].Dist,
						approx.Neighbors[i].ID, approx.Neighbors[i].Dist)
				}
			}
		}
		e.Close()
	}
}

// TestApproxShardedEquivalence runs the approximate knob through the
// scatter-gather coordinator: MinRecall = 1 must match the plain
// sharded answer bit-for-bit, and relaxed settings (ε > 0 or a page
// budget) must still return k genuine indexed points at their true
// distances — the merge protocol is unchanged, so approximation can
// substitute neighbors but never fabricate them.
func TestApproxShardedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	const n, dim, k = 2000, 8, 10
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	c, err := shard.New(shard.Config{Shards: 4, Replicas: 2}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for qi := 0; qi < 10; qi++ {
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = r.Float32()
		}
		exact := c.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k})
		full := c.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k, MinRecall: 1})
		if exact.Err != nil || full.Err != nil {
			t.Fatalf("query %d: exact %v, MinRecall=1 %v", qi, exact.Err, full.Err)
		}
		if len(exact.Neighbors) != len(full.Neighbors) {
			t.Fatalf("query %d: %d vs %d results", qi, len(exact.Neighbors), len(full.Neighbors))
		}
		for i := range exact.Neighbors {
			if exact.Neighbors[i].ID != full.Neighbors[i].ID ||
				exact.Neighbors[i].Dist != full.Neighbors[i].Dist {
				t.Fatalf("query %d rank %d: exact (%d, %v), MinRecall=1 (%d, %v)",
					qi, i, exact.Neighbors[i].ID, exact.Neighbors[i].Dist,
					full.Neighbors[i].ID, full.Neighbors[i].Dist)
			}
		}

		for _, rq := range []engine.Query{
			{Kind: engine.KNN, Point: q, K: k, MinRecall: 0.8},
			{Kind: engine.KNN, Point: q, K: k, MaxCost: 3},
		} {
			res := c.Submit(rq)
			if res.Err != nil {
				t.Fatalf("query %d relaxed: %v", qi, res.Err)
			}
			if len(res.Neighbors) != k {
				t.Fatalf("query %d relaxed: %d results, want %d", qi, len(res.Neighbors), k)
			}
			seen := make(map[uint32]bool, k)
			prev := math.Inf(-1)
			for i, nb := range res.Neighbors {
				if int(nb.ID) >= len(pts) {
					t.Fatalf("query %d relaxed rank %d: fabricated ID %d", qi, i, nb.ID)
				}
				if seen[nb.ID] {
					t.Fatalf("query %d relaxed rank %d: duplicate ID %d", qi, i, nb.ID)
				}
				seen[nb.ID] = true
				if nb.Dist < prev {
					t.Fatalf("query %d relaxed rank %d: out of order", qi, i)
				}
				prev = nb.Dist
				if td := vec.Euclidean.Dist(q, pts[nb.ID]); math.Abs(nb.Dist-td) > 1e-5 {
					t.Fatalf("query %d relaxed rank %d: ID %d at %v, true %v", qi, i, nb.ID, nb.Dist, td)
				}
			}
			// The relaxed kth distance can never beat the exact kth.
			if res.Neighbors[k-1].Dist < exact.Neighbors[k-1].Dist-1e-9 {
				t.Fatalf("query %d relaxed: kth %v beats exact %v", qi, res.Neighbors[k-1].Dist, exact.Neighbors[k-1].Dist)
			}
		}
	}
}
