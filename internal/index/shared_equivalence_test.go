package index_test

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/vec"
)

// TestSharedEngineCrossIndexEquivalence is the serving-layer side of the
// cross-method contract: for every access method, an engine with scan
// sharing enabled returns bit-identical results to the share-nothing
// engine for all three query kinds. The IQ-tree actually exercises the
// shared pipeline (it implements SharedScanner); the other methods must
// degrade to the worker pool without observable difference.
func TestSharedEngineCrossIndexEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const n, dim = 2500, 8
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	methods := buildAll(t, pts)

	batch := make([]engine.Query, 0, 36)
	for i := 0; i < 36; i++ {
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = r.Float32()
		}
		switch i % 3 {
		case 0:
			batch = append(batch, engine.Query{Kind: engine.KNN, Point: q, K: 1 + r.Intn(8)})
		case 1:
			batch = append(batch, engine.Query{Kind: engine.Range, Point: q, Eps: 0.3 + r.Float64()*0.3})
		default:
			lo := make(vec.Point, dim)
			hi := make(vec.Point, dim)
			for j := range lo {
				a := r.Float32() * 0.6
				lo[j], hi[j] = a, a+0.3+r.Float32()*0.3
			}
			batch = append(batch, engine.Query{Kind: engine.Window, Window: vec.MBR{Lo: lo, Hi: hi}})
		}
	}

	for _, m := range methods {
		m := m
		t.Run(m.name, func(t *testing.T) {
			shared := engine.New(m.sto, m.idx, 4, engine.WithScanSharing())
			defer shared.Close()
			plain := engine.New(m.sto, m.idx, 4)
			defer plain.Close()
			_, sharable := m.idx.(index.SharedScanner)
			if shared.Sharing() != sharable {
				t.Fatalf("Sharing() = %v, index implements SharedScanner = %v", shared.Sharing(), sharable)
			}
			got := shared.SubmitBatch(batch)
			want := plain.SubmitBatch(batch)
			for i := range batch {
				if got[i].Err != nil || want[i].Err != nil {
					t.Fatalf("query %d: shared err %v, plain err %v", i, got[i].Err, want[i].Err)
				}
				if len(got[i].Neighbors) != len(want[i].Neighbors) {
					t.Fatalf("query %d (%v): shared %d results, plain %d",
						i, batch[i].Kind, len(got[i].Neighbors), len(want[i].Neighbors))
				}
				for j := range want[i].Neighbors {
					g, w := got[i].Neighbors[j], want[i].Neighbors[j]
					if g.ID != w.ID || g.Dist != w.Dist {
						t.Fatalf("%s query %d result %d: shared (%d,%v), plain (%d,%v)",
							m.name, i, j, g.ID, g.Dist, w.ID, w.Dist)
					}
				}
			}
		})
	}
}
