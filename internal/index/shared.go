package index

import (
	"errors"

	"repro/internal/store"
	"repro/internal/vec"
)

// ErrStaleScan is reported by a shared-scan cursor (or FetchRun) whose
// pinned state was invalidated by an index reorganization that rewrites
// file regions in place. The coordinator recovers by restarting the
// affected queries on a fresh cursor; results stay exact, only the cost
// of the aborted attempt is kept.
var ErrStaleScan = errors.New("index: shared scan invalidated by reorganization")

// SharedLayout describes the physical layout of the level a shared scan
// fetches: fixed-size pages laid out consecutively in one file (page i
// starts at block i·PageBlocks).
type SharedLayout struct {
	PageBlocks int // blocks per page
	NumPages   int // page positions in the file right now (may grow)
}

// SharedPage is one fetched page offered to every cursor attached to a
// scan-sharing round. Codes bulk-decodes the page's cell codes on first
// use and caches them for every later caller in the round, so a page
// shared by many queries is decoded once; it is nil for pages whose
// payload stores exact coordinates (Bits == 32), which each cursor
// decodes into its own point arena from Payload. Neither Payload nor
// the Codes result may be retained past the delivery callback.
type SharedPage struct {
	Pos     int    // page position in the shared file
	Count   int    // points in the page
	Bits    int    // quantization level; 32 = exact payload
	Payload []byte // page payload (header stripped)
	Codes   func() []uint32
}

// Cursor is one query suspended at its page-fetch boundary: a resumable
// state machine the scan-sharing coordinator drives. A cursor belongs to
// one coordinator goroutine; none of its methods are safe for concurrent
// use. The driving protocol per round is: Step every cursor, gather
// Wants, plan, fetch each planned run once, Deliver the pages to every
// live cursor, repeat. Deliver and DeliverDegraded are invoked from
// inside FetchRun's delivery window (the scan holds its consistency lock
// there), so they must not re-enter the scan.
type Cursor interface {
	// Step advances the query until it either needs pages (done=false;
	// report them via Wants) or completed (done=true; Results is valid).
	// A non-nil error ends the query, except ErrStaleScan, which asks
	// the coordinator to restart it on a fresh cursor.
	Step() (done bool, err error)
	// Wants appends the page positions the cursor needs next to buf and
	// returns it. Positions re-appear in later rounds until delivered.
	Wants(buf []int) []int
	// AccessProb estimates the probability that the page at pos will be
	// needed by this query later in its run (0 for pages it has already
	// consumed, pruned, or will never touch). Pure in-memory state; the
	// coordinator calls it while planning, outside any fetch.
	AccessProb(pos int) float64
	// Deliver offers one fetched page. shared marks a page another
	// query's session paid for (this query records it as a zero-cost
	// shared read); the leader of the fetch gets shared=false and
	// accounts the transfer. Returns whether the cursor consumed the
	// page (irrelevant or already-processed pages are declined).
	Deliver(pg *SharedPage, shared bool) bool
	// DeliverDegraded reports that the page at pos is unreadable
	// (quarantined or corrupt). The cursor recovers through whatever
	// redundant path its index has, or records a typed error surfaced by
	// the next Step. Returns whether the cursor acted on the report.
	DeliverDegraded(pos int) bool
	// Results returns the query's final answer; valid only after Step
	// reported done.
	Results() ([]vec.Neighbor, error)
	// Close releases any cursor-held resources. Must be called once the
	// cursor is abandoned or finished.
	Close()
}

// SharedScan is a per-coordinator handle for scan-sharing query
// execution over one index: it creates cursors, reports the fetch
// layout, and performs the deduplicated page fetches of each round. The
// handle owns round-scoped decode scratch, so it must be confined to one
// coordinator goroutine; cursors from different handles over the same
// index are still isolated.
type SharedScan interface {
	// Layout returns the current physical layout of the shared level.
	Layout() SharedLayout
	// Gen returns the index's reorganization generation. FetchRun
	// validates it under the scan's consistency lock, so a plan computed
	// at one generation never reads regions rewritten by the next.
	Gen() uint64
	// KNN, Range and Window begin one resumable query charged to s.
	KNN(s *store.Session, q vec.Point, k int) Cursor
	Range(s *store.Session, q vec.Point, eps float64) Cursor
	Window(s *store.Session, w vec.MBR) Cursor
	// FetchRun reads pages [first, last] of the shared level through s
	// (the leader's session — it is charged for the whole run), invoking
	// page for each verified page and degraded for each quarantined or
	// corrupt one. When known or discovered damage forces page-granular
	// reads, only positions with wanted(pos)==true are fetched (matching
	// the share-nothing degraded paths, which never pay for pages no
	// query needs). Returns ErrStaleScan when gen no longer matches.
	FetchRun(s *store.Session, gen uint64, first, last int, wanted func(pos int) bool,
		page func(pg *SharedPage), degraded func(pos int)) error
}

// SharedScanner is implemented by indexes that support scan-sharing
// execution. Indexes without it are served share-nothing by the engine
// regardless of its sharing mode.
type SharedScanner interface {
	Index
	NewSharedScan() SharedScan
}

// ApproxSharedScan is implemented by shared scans whose KNN cursors can
// execute under an Approx knob: the cursor stops wanting pages once the
// knob's termination rule fires, exactly like the share-nothing
// KNNApprox path. Coordinators fall back to the exact KNN cursor for
// scans without it.
type ApproxSharedScan interface {
	SharedScan
	// KNNApprox begins one resumable approximate k-NN query charged to
	// s. A zero (or MinRecall = 1) knob is bit-identical to KNN.
	KNNApprox(s *store.Session, q vec.Point, k int, ap Approx) Cursor
}
