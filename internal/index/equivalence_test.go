package index_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/scan"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

// methodUnderTest pairs an access method with the store it was built on
// (sessions must come from the same store). The scan entry is first: it
// is the ground truth the others are compared against.
type methodUnderTest struct {
	name string
	idx  index.Index
	sto  *store.Store
}

// buildAll constructs every access method over the same point set, each
// on its own fresh simulated disk.
func buildAll(t *testing.T, pts []vec.Point) []methodUnderTest {
	t.Helper()
	var out []methodUnderTest

	sto := store.NewSim(store.DefaultConfig())
	sc, err := scan.Build(sto, pts, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, methodUnderTest{"Scan", sc, sto})

	sto = store.NewSim(store.DefaultConfig())
	iq, err := core.Build(sto, pts, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, methodUnderTest{"IQ-tree", iq, sto})

	sto = store.NewSim(store.DefaultConfig())
	xt, err := xtree.Build(sto, pts, xtree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, methodUnderTest{"X-tree", xt, sto})

	sto = store.NewSim(store.DefaultConfig())
	va, err := vafile.Build(sto, pts, vafile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, methodUnderTest{"VA-file", va, sto})
	return out
}

// TestCrossIndexEquivalence is the contract test behind the Index
// interface: all four access methods must answer exact similarity
// queries identically (modulo ordering among distance ties) because they
// index the same points under the same metric. The sequential scan is
// the ground truth.
func TestCrossIndexEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	const n, dim, k, eps = 2000, 8, 10, 0.55
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	methods := buildAll(t, pts)

	queries := make([]vec.Point, 15)
	for i := range queries {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		queries[i] = p
	}
	w := vec.MBR{Lo: make(vec.Point, dim), Hi: make(vec.Point, dim)}
	for j := 0; j < dim; j++ {
		w.Lo[j], w.Hi[j] = 0.25, 0.75
	}

	for qi, q := range queries {
		var wantKNN []vec.Neighbor
		var wantRange, wantWindow map[uint32]bool
		for _, m := range methods {
			knn, err := m.idx.KNN(m.sto.NewSession(), q, k)
			if err != nil {
				t.Fatalf("%s KNN: %v", m.name, err)
			}
			if len(knn) != k {
				t.Fatalf("%s query %d: %d KNN results, want %d", m.name, qi, len(knn), k)
			}
			rng, err := m.idx.RangeSearch(m.sto.NewSession(), q, eps)
			if err != nil {
				t.Fatalf("%s RangeSearch: %v", m.name, err)
			}
			win, err := m.idx.WindowQuery(m.sto.NewSession(), w)
			if err != nil {
				t.Fatalf("%s WindowQuery: %v", m.name, err)
			}

			// Every result must carry exact geometry and distance.
			for _, nb := range knn {
				if !pts[nb.ID].Equal(nb.Point) {
					t.Fatalf("%s query %d: ID %d geometry mismatch", m.name, qi, nb.ID)
				}
				if got := vec.Euclidean.Dist(q, nb.Point); got != nb.Dist {
					t.Fatalf("%s query %d: ID %d dist %v, exact %v", m.name, qi, nb.ID, nb.Dist, got)
				}
			}

			if m.name == "Scan" {
				wantKNN = knn
				wantRange = idSet(rng)
				wantWindow = idSet(win)
				continue
			}
			// KNN: identical sorted distance sequences (tie-tolerant — the
			// IDs at tied ranks may differ between methods).
			for i := range knn {
				if math.Abs(knn[i].Dist-wantKNN[i].Dist) > 1e-9 {
					t.Fatalf("%s query %d: KNN dist[%d]=%v, scan %v", m.name, qi, i, knn[i].Dist, wantKNN[i].Dist)
				}
			}
			// Untied ranks must agree on the ID, not just the distance.
			for i := range knn {
				tied := (i > 0 && knn[i-1].Dist == knn[i].Dist) ||
					(i+1 < len(knn) && knn[i+1].Dist == knn[i].Dist)
				if !tied && knn[i].ID != wantKNN[i].ID {
					t.Fatalf("%s query %d: KNN[%d] ID %d, scan %d", m.name, qi, i, knn[i].ID, wantKNN[i].ID)
				}
			}
			if got := idSet(rng); !sameSet(got, wantRange) {
				t.Fatalf("%s query %d: range IDs %v, scan %v", m.name, qi, sorted(got), sorted(wantRange))
			}
			if got := idSet(win); !sameSet(got, wantWindow) {
				t.Fatalf("%s query %d: window IDs %v, scan %v", m.name, qi, sorted(got), sorted(wantWindow))
			}
		}
	}

	// The shared stats surface must agree on the logical shape.
	for _, m := range methods {
		st := m.idx.IndexStats()
		if st.Points != n || m.idx.Len() != n || m.idx.Dim() != dim {
			t.Fatalf("%s stats: %+v, Len=%d, Dim=%d", m.name, st, m.idx.Len(), m.idx.Dim())
		}
		if st.Method == "" || st.Bytes <= 0 || st.Pages <= 0 {
			t.Fatalf("%s stats incomplete: %+v", m.name, st)
		}
	}
}

// TestShardedCrossIndexEquivalence extends the equivalence contract
// through the scatter-gather coordinator: partitioned serving over the
// IQ-tree must answer exactly like every unsharded access method —
// identical KNN distance sequences (IDs exact at untied ranks) and
// identical range/window ID sets — because sharding changes the
// physical layout, never the answer.
func TestShardedCrossIndexEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	const n, dim, k, eps = 2000, 8, 10, 0.55
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	methods := buildAll(t, pts)

	c, err := shard.New(shard.Config{Shards: 4, Replicas: 2}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := make([]vec.Point, 12)
	for i := range queries {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		queries[i] = p
	}
	w := vec.MBR{Lo: make(vec.Point, dim), Hi: make(vec.Point, dim)}
	for j := 0; j < dim; j++ {
		w.Lo[j], w.Hi[j] = 0.25, 0.75
	}

	for qi, q := range queries {
		sknn := c.Submit(engine.Query{Kind: engine.KNN, Point: q, K: k})
		srng := c.Submit(engine.Query{Kind: engine.Range, Point: q, Eps: eps})
		swin := c.Submit(engine.Query{Kind: engine.Window, Window: w})
		if sknn.Err != nil || srng.Err != nil || swin.Err != nil {
			t.Fatalf("sharded query %d: knn %v, range %v, window %v", qi, sknn.Err, srng.Err, swin.Err)
		}
		if len(sknn.Neighbors) != k {
			t.Fatalf("sharded query %d: %d KNN results, want %d", qi, len(sknn.Neighbors), k)
		}
		for _, nb := range sknn.Neighbors {
			if !pts[nb.ID].Equal(nb.Point) {
				t.Fatalf("sharded query %d: ID %d geometry mismatch", qi, nb.ID)
			}
			if got := vec.Euclidean.Dist(q, nb.Point); got != nb.Dist {
				t.Fatalf("sharded query %d: ID %d dist %v, exact %v", qi, nb.ID, nb.Dist, got)
			}
		}
		for _, m := range methods {
			knn, err := m.idx.KNN(m.sto.NewSession(), q, k)
			if err != nil {
				t.Fatalf("%s KNN: %v", m.name, err)
			}
			for i := range knn {
				if sknn.Neighbors[i].Dist != knn[i].Dist {
					t.Fatalf("sharded vs %s query %d: KNN dist[%d]=%v, want %v",
						m.name, qi, i, sknn.Neighbors[i].Dist, knn[i].Dist)
				}
				tied := (i > 0 && knn[i-1].Dist == knn[i].Dist) ||
					(i+1 < len(knn) && knn[i+1].Dist == knn[i].Dist)
				if !tied && sknn.Neighbors[i].ID != knn[i].ID {
					t.Fatalf("sharded vs %s query %d: KNN[%d] ID %d, want %d",
						m.name, qi, i, sknn.Neighbors[i].ID, knn[i].ID)
				}
			}
			rng, err := m.idx.RangeSearch(m.sto.NewSession(), q, eps)
			if err != nil {
				t.Fatalf("%s RangeSearch: %v", m.name, err)
			}
			if got := idSet(srng.Neighbors); !sameSet(got, idSet(rng)) {
				t.Fatalf("sharded vs %s query %d: range IDs differ", m.name, qi)
			}
			win, err := m.idx.WindowQuery(m.sto.NewSession(), w)
			if err != nil {
				t.Fatalf("%s WindowQuery: %v", m.name, err)
			}
			if got := idSet(swin.Neighbors); !sameSet(got, idSet(win)) {
				t.Fatalf("sharded vs %s query %d: window IDs differ", m.name, qi)
			}
		}
	}
}

func idSet(nbs []vec.Neighbor) map[uint32]bool {
	m := make(map[uint32]bool, len(nbs))
	for _, nb := range nbs {
		m[nb.ID] = true
	}
	return m
}

func sameSet(a, b map[uint32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func sorted(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
