// Package index defines the common contract of the repository's access
// methods. The IQ-tree (internal/core), X-tree (internal/xtree), VA-file
// (internal/vafile) and sequential scan (internal/scan) all answer the
// same exact similarity queries over the same block store; this package
// names that shared surface so serving layers (internal/engine) and
// harnesses (internal/experiments) can drive any of them through one
// interface instead of four concrete types.
//
// The package depends only on store and vec — it sits below every access
// method, so all of them can implement it without import cycles.
package index

import (
	"repro/internal/store"
	"repro/internal/vec"
)

// Index is an exact similarity-search access method over a block store.
// All query methods charge their simulated I/O and CPU to the given
// session and are safe for concurrent use with one session per goroutine
// (sessions themselves are single-goroutine).
type Index interface {
	// KNN returns the k nearest neighbors of q ordered by increasing
	// distance. On a read failure it returns the session's sticky error;
	// a partial result must not be trusted.
	KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error)
	// RangeSearch returns all points within distance eps of q, ordered
	// by increasing distance.
	RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error)
	// WindowQuery returns all points inside the window w (Dist fields
	// are 0; result order is method-defined).
	WindowQuery(s *store.Session, w vec.MBR) ([]vec.Neighbor, error)
	// Len returns the number of indexed points.
	Len() int
	// Dim returns the dimensionality of the indexed points.
	Dim() int
	// IndexStats summarizes the physical shape of the index.
	IndexStats() Stats
}

// Stats is the cross-method physical summary every Index reports; the
// concrete methods expose richer method-specific statistics alongside.
type Stats struct {
	Method string // human-readable method name
	Points int    // indexed points
	Dim    int    // dimensionality
	Pages  int    // method's unit of storage: data pages, leaves, ...
	Bytes  int    // total bytes across the method's files
}
