// Package index defines the common contract of the repository's access
// methods. The IQ-tree (internal/core), X-tree (internal/xtree), VA-file
// (internal/vafile) and sequential scan (internal/scan) all answer the
// same exact similarity queries over the same block store; this package
// names that shared surface so serving layers (internal/engine) and
// harnesses (internal/experiments) can drive any of them through one
// interface instead of four concrete types.
//
// The package depends only on store and vec — it sits below every access
// method, so all of them can implement it without import cycles.
package index

import (
	"repro/internal/store"
	"repro/internal/vec"
)

// Index is an exact similarity-search access method over a block store.
// All query methods charge their simulated I/O and CPU to the given
// session and are safe for concurrent use with one session per goroutine
// (sessions themselves are single-goroutine).
type Index interface {
	// KNN returns the k nearest neighbors of q ordered by increasing
	// distance. On a read failure it returns the session's sticky error;
	// a partial result must not be trusted.
	KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error)
	// RangeSearch returns all points within distance eps of q, ordered
	// by increasing distance.
	RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error)
	// WindowQuery returns all points inside the window w (Dist fields
	// are 0; result order is method-defined).
	WindowQuery(s *store.Session, w vec.MBR) ([]vec.Neighbor, error)
	// Len returns the number of indexed points.
	Len() int
	// Dim returns the dimensionality of the indexed points.
	Dim() int
	// IndexStats summarizes the physical shape of the index.
	IndexStats() Stats
}

// Approx configures probability-bounded approximate KNN execution. The
// zero value means exact execution; at most one of the two knobs may be
// set on a query (serving layers validate this at submission).
//
// MinRecall is the target recall in (0, 1]: the search may stop fetching
// pages once the estimated probability that any still-unfetched page
// improves the current top-k drops below ε = 1 − MinRecall (the paper's
// access-probability model, Eq. 1–5, turned from a fetch *ordering* into
// a fetch *stopping* rule). MinRecall = 1 (ε = 0) never triggers the
// stopping rule and is bit-identical to exact execution; MinRecall = 0
// means the knob is unset. ε at or below pagesched.ProbFloor is
// indistinguishable from exact execution — that floor is the resolution
// limit of the dial.
//
// MaxCost caps the number of data pages the search may fetch (its
// filter-level page-fetch budget, over-read pages included); 0 means
// unlimited. The budget is checked at fetch boundaries, so a batched
// fetch may overshoot it by the tail of one read sequence.
type Approx struct {
	MinRecall float64
	MaxCost   int
}

// Enabled reports whether either knob requests approximate execution.
// MinRecall = 1 still counts as enabled: the termination rule is armed,
// it just never fires (ε = 0).
func (a Approx) Enabled() bool { return a.MinRecall > 0 || a.MaxCost > 0 }

// Epsilon returns the termination threshold ε = 1 − MinRecall, or 0 when
// the recall knob is unset.
func (a Approx) Epsilon() float64 {
	if a.MinRecall <= 0 {
		return 0
	}
	return 1 - a.MinRecall
}

// ApproxSearcher is implemented by access methods whose KNN search can
// execute under an Approx knob. Methods without it are always exact —
// serving layers fall back to KNN, which trivially satisfies any
// MinRecall (recall 1) at the cost of ignoring MaxCost.
type ApproxSearcher interface {
	Index
	// KNNApprox is KNN under the given approximation knob. A zero (or
	// MinRecall = 1) knob is bit-identical to KNN. With the knob active
	// the result is always well-formed — min(k, Len()) genuine indexed
	// points with exact distances, ordered by increasing distance — but
	// up to an ε-probability (or budget-forced) fraction of the exact
	// top-k may be substituted by farther neighbors.
	KNNApprox(s *store.Session, q vec.Point, k int, ap Approx) ([]vec.Neighbor, error)
}

// Stats is the cross-method physical summary every Index reports; the
// concrete methods expose richer method-specific statistics alongside.
type Stats struct {
	Method string // human-readable method name
	Points int    // indexed points
	Dim    int    // dimensionality
	Pages  int    // method's unit of storage: data pages, leaves, ...
	Bytes  int    // total bytes across the method's files
}
