package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
)

// Checksum frames. When checksums are enabled (Store.EnableChecksums),
// every data file gains a sidecar block file "<name>.crc" on the same
// backend holding one CRC32C per data block:
//
//	header (16 bytes, little-endian):
//	  [0:4)   magic  "IQCS" (0x49514353)
//	  [4:8)   format version (currently 1)
//	  [8:12)  block size the sums were computed over
//	  [12:16) number of recorded block sums
//	  then 4 bytes of CRC32C per data block, padded to a block boundary.
//
// The data files themselves are unchanged — this is the "new store
// format version": a checksummed store is a plain store plus sidecars,
// so old stores open fine (sums are computed on adoption) and old
// readers can ignore the sidecars entirely. The sidecar is rewritten
// after the data mutation it covers; a crash between the two leaves a
// tail of data blocks without recorded sums, which read back as
// Unverifiable CorruptBlockErrors — the cautious direction.
const (
	// ChecksumSuffix names checksum sidecar files.
	ChecksumSuffix = ".crc"

	sumMagic      = 0x49514353 // "IQCS"
	sumVersion    = 1
	sumHeaderSize = 16
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsChecksumFile reports whether name is a checksum sidecar.
func IsChecksumFile(name string) bool { return strings.HasSuffix(name, ChecksumSuffix) }

// sumTable is the in-memory mirror of one data file's checksum sidecar.
// The File wrapper updates it write-through on every mutation; sessions
// verify uncached reads against it under the read lock.
type sumTable struct {
	mu   sync.RWMutex
	bf   BlockFile // the sidecar file
	bs   int
	sums []uint32 // one CRC32C per data block
}

// blockSums appends the per-block CRC32C of p (interpreted as nblocks
// zero-padded blocks of size bs) to dst.
func blockSums(dst []uint32, p []byte, nblocks, bs int) []uint32 {
	var pad []byte
	for b := 0; b < nblocks; b++ {
		lo := b * bs
		hi := lo + bs
		if hi <= len(p) {
			dst = append(dst, crc32.Checksum(p[lo:hi], castagnoli))
			continue
		}
		// Final partial block: checksum the content plus its zero padding,
		// matching the padded bytes the backend stores.
		c := uint32(0)
		if lo < len(p) {
			c = crc32.Update(0, castagnoli, p[lo:])
		}
		if pad == nil {
			pad = make([]byte, bs)
		}
		short := hi - len(p)
		if short > bs {
			short = bs
		}
		dst = append(dst, crc32.Update(c, castagnoli, pad[:short]))
	}
	return dst
}

// loadSumTable attaches (loading or initializing) the sidecar bf as the
// sum table of a data file with dataBlocks blocks.
func loadSumTable(bf BlockFile, bs int) (*sumTable, error) {
	t := &sumTable{bf: bf, bs: bs}
	if bf.Blocks() == 0 {
		return t, nil
	}
	raw, err := bf.ReadBlocks(0, bf.Blocks())
	if err != nil {
		return nil, fmt.Errorf("store: read checksum sidecar %s: %w", bf.Name(), err)
	}
	le := binary.LittleEndian
	if len(raw) < sumHeaderSize || le.Uint32(raw[0:]) != sumMagic {
		return nil, fmt.Errorf("store: %s is not a checksum sidecar (bad magic)", bf.Name())
	}
	if v := le.Uint32(raw[4:]); v != sumVersion {
		return nil, fmt.Errorf("store: checksum sidecar %s has format version %d, want %d", bf.Name(), v, sumVersion)
	}
	if got := int(le.Uint32(raw[8:])); got != bs {
		return nil, fmt.Errorf("store: checksum sidecar %s covers %d-byte blocks, store uses %d", bf.Name(), got, bs)
	}
	n := int(le.Uint32(raw[12:]))
	if sumHeaderSize+4*n > len(raw) {
		return nil, fmt.Errorf("store: checksum sidecar %s truncated: %d sums recorded, %d bytes present", bf.Name(), n, len(raw))
	}
	t.sums = make([]uint32, n)
	for i := range t.sums {
		t.sums[i] = le.Uint32(raw[sumHeaderSize+4*i:])
	}
	return t, nil
}

// persistLocked rewrites the sidecar from the in-memory mirror. Callers
// hold t.mu.
func (t *sumTable) persistLocked() error {
	buf := make([]byte, sumHeaderSize+4*len(t.sums))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], sumMagic)
	le.PutUint32(buf[4:], sumVersion)
	le.PutUint32(buf[8:], uint32(t.bs))
	le.PutUint32(buf[12:], uint32(len(t.sums)))
	for i, s := range t.sums {
		le.PutUint32(buf[sumHeaderSize+4*i:], s)
	}
	if err := t.bf.SetContents(buf); err != nil {
		return fmt.Errorf("store: persist checksum sidecar %s: %w", t.bf.Name(), err)
	}
	return nil
}

// recordAppend records the sums of an append of p at block pos and
// persists the sidecar.
func (t *sumTable) recordAppend(pos int, p []byte, nblocks int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pos != len(t.sums) {
		// The file grew past our mirror (or shrank behind our back);
		// resize so the recorded count matches the append position. Gaps
		// read back as mismatches, which is the safe direction.
		if pos < len(t.sums) {
			t.sums = t.sums[:pos]
		} else {
			for len(t.sums) < pos {
				t.sums = append(t.sums, 0)
			}
		}
	}
	t.sums = blockSums(t.sums, p, nblocks, t.bs)
	return t.persistLocked()
}

// recordWrite re-records the sums of an in-place overwrite of
// block-aligned data at block pos and persists the sidecar.
func (t *sumTable) recordWrite(pos int, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(data) / t.bs
	for len(t.sums) < pos+n {
		t.sums = append(t.sums, 0)
	}
	fresh := blockSums(nil, data, n, t.bs)
	copy(t.sums[pos:], fresh)
	return t.persistLocked()
}

// recordContents replaces the whole table with the sums of p and
// persists the sidecar.
func (t *sumTable) recordContents(p []byte, nblocks int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sums = blockSums(t.sums[:0], p, nblocks, t.bs)
	return t.persistLocked()
}

// truncateTo drops the recorded sums past nblocks and persists the
// sidecar (a no-op when nothing is recorded past it).
func (t *sumTable) truncateTo(nblocks int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if nblocks < 0 || nblocks >= len(t.sums) {
		return nil
	}
	t.sums = t.sums[:nblocks]
	return t.persistLocked()
}

// verify checks nblocks blocks of data read from block pos of the named
// file against the recorded sums. It returns a *CorruptBlockError for
// the first mismatching or unrecorded block.
func (t *sumTable) verify(name string, pos int, data []byte, nblocks int) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for b := 0; b < nblocks; b++ {
		if pos+b >= len(t.sums) {
			metricChecksumFailures.Inc()
			return &CorruptBlockError{File: name, Block: pos + b, Unverifiable: true}
		}
		got := crc32.Checksum(data[b*t.bs:(b+1)*t.bs], castagnoli)
		if want := t.sums[pos+b]; got != want {
			metricChecksumFailures.Inc()
			return &CorruptBlockError{File: name, Block: pos + b, Want: want, Got: got}
		}
	}
	return nil
}

// recorded returns the number of blocks with recorded sums.
func (t *sumTable) recorded() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.sums)
}

// EnableChecksums switches the store to checksummed operation: every
// data file (present or created later) gets a CRC32C sum per block,
// mirrored in memory and persisted to a "<name>.crc" sidecar on the
// backend. Files that already have a sidecar load it; files without one
// (legacy stores) have their sums computed from the current content.
// Uncached session reads and File.ReadRaw verify against the sums and
// surface mismatches as *CorruptBlockError.
//
// Enable checksums before serving: toggling while sessions are reading
// concurrently is not synchronized.
func (s *Store) EnableChecksums() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checked = true
	for _, name := range s.backend.Names() {
		if IsChecksumFile(name) || IsWALFile(name) {
			// WAL records carry their own per-record CRC32C, and the log is
			// appended beneath the File wrapper (group commit must not pay a
			// sidecar rewrite per batch), so it keeps no sidecar.
			continue
		}
		f := s.files[name]
		if f == nil {
			bf := s.backend.Lookup(name)
			if bf == nil {
				continue
			}
			f = &File{st: s, bf: bf}
			s.files[name] = f
		}
		if err := s.attachSumsLocked(f, false); err != nil {
			return err
		}
	}
	return nil
}

// Checked reports whether checksums are enabled on the store.
func (s *Store) Checked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checked
}

// attachSumsLocked gives f a sum table: loading its sidecar if one
// exists, computing sums from current content otherwise. truncate
// forces a fresh empty table (used by NewFile, which truncates data).
func (s *Store) attachSumsLocked(f *File, truncate bool) error {
	if f.sums != nil || IsChecksumFile(f.Name()) || IsWALFile(f.Name()) {
		return nil
	}
	side := f.Name() + ChecksumSuffix
	bf := s.backend.Lookup(side)
	created := false
	if bf == nil || truncate {
		var err error
		if bf, err = s.backend.Create(side); err != nil {
			return s.failLocked(fmt.Errorf("store: create checksum sidecar %s: %w", side, err))
		}
		created = true
	}
	t, err := loadSumTable(bf, s.Config().BlockSize)
	if err != nil {
		return s.failLocked(err)
	}
	if created && f.Blocks() > 0 {
		// Adopting a legacy file: trust and record its current content.
		data, err := f.bf.ReadBlocks(0, f.Blocks())
		if err != nil {
			return s.failLocked(fmt.Errorf("store: adopt %s for checksums: %w", f.Name(), err))
		}
		t.sums = blockSums(t.sums[:0], data, f.Blocks(), t.bs)
		t.mu.Lock()
		err = t.persistLocked()
		t.mu.Unlock()
		if err != nil {
			return s.failLocked(err)
		}
	}
	f.sums = t
	return nil
}

// CorruptBlock identifies one block that failed the checksum scrub.
type CorruptBlock struct {
	File  string `json:"file"`
	Block int    `json:"block"`
}

// ScrubReport is the result of a full-store checksum scrub.
type ScrubReport struct {
	BlocksChecked int            `json:"blocks_checked"`
	Corrupt       []CorruptBlock `json:"corrupt,omitempty"`
}

// Scrub verifies every block of every checksummed data file against its
// recorded sums and returns the damaged blocks (mismatching content,
// missing sums, or blocks recorded but missing from the file). It reads
// the backend directly — no cache, no cost accounting — so it sees what
// is actually at rest. The error return reports scrub infrastructure
// failures only; corruption is reported in the ScrubReport.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	s.mu.Lock()
	if !s.checked {
		s.mu.Unlock()
		return rep, fmt.Errorf("store: scrub requires checksums (EnableChecksums)")
	}
	files := make([]*File, 0, len(s.files))
	for _, f := range s.files {
		if f.sums != nil {
			files = append(files, f)
		}
	}
	s.mu.Unlock()
	sort.Slice(files, func(i, j int) bool { return files[i].Name() < files[j].Name() })

	for _, f := range files {
		blocks := f.Blocks()
		recorded := f.sums.recorded()
		for pos := 0; pos < blocks; pos++ {
			data, err := f.bf.ReadBlocks(pos, 1)
			if err != nil {
				return rep, fmt.Errorf("store: scrub read %s[%d]: %w", f.Name(), pos, err)
			}
			rep.BlocksChecked++
			if verr := f.sums.verify(f.Name(), pos, data, 1); verr != nil {
				rep.Corrupt = append(rep.Corrupt, CorruptBlock{File: f.Name(), Block: pos})
			}
		}
		// Sums recorded for blocks the file no longer has: the data went
		// missing (torn truncate); report them so damage is localized.
		for pos := blocks; pos < recorded; pos++ {
			rep.Corrupt = append(rep.Corrupt, CorruptBlock{File: f.Name(), Block: pos})
		}
	}
	return rep, nil
}
