package store

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Seeks: 1, BlocksRead: 2, Reads: 3, CPUSeconds: 0.5}
	b := Stats{Seeks: 10, BlocksRead: 20, Reads: 30, CPUSeconds: 1.5}
	a.Add(b)
	if a.Seeks != 11 || a.BlocksRead != 22 || a.Reads != 33 || a.CPUSeconds != 2 {
		t.Fatalf("add wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty string form")
	}
}

// Property: Stats.Time is linear in its counters.
func TestStatsTimeLinearity(t *testing.T) {
	cfg := testConfig()
	f := func(s1, b1, s2, b2 uint8) bool {
		a := Stats{Seeks: int(s1), BlocksRead: int(b1)}
		b := Stats{Seeks: int(s2), BlocksRead: int(b2)}
		sum := a
		sum.Add(b)
		return math.Abs(sum.Time(cfg)-(a.Time(cfg)+b.Time(cfg))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverreadHorizonAndBlocks(t *testing.T) {
	cfg := testConfig()
	if v := cfg.OverreadHorizon(); v != 10 {
		t.Fatalf("horizon %d, want 10", v)
	}
	if cfg.Blocks(0) != 0 || cfg.Blocks(1) != 1 || cfg.Blocks(64) != 1 || cfg.Blocks(65) != 2 {
		t.Fatal("Blocks rounding wrong")
	}
	if (Config{}).OverreadHorizon() != 0 {
		t.Fatal("zero config horizon should be 0")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BlockSize <= 0 || cfg.Seek <= cfg.Xfer || cfg.Xfer <= 0 {
		t.Fatalf("implausible default config: %+v", cfg)
	}
	if h := cfg.OverreadHorizon(); h < 2 {
		t.Fatalf("default horizon %d too small for the paper's trade-off", h)
	}
}

func TestNewFileTwiceTruncates(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		mustAppend(t, f, make([]byte, 128))
		f2 := mustFile(t, sto, "t")
		if f2.Blocks() != 0 {
			t.Fatalf("re-created file has %d blocks, want 0", f2.Blocks())
		}
		// The wrapper stays canonical across re-creation.
		if sto.File("t") != f2 {
			t.Fatal("File wrapper not canonical after re-create")
		}
	})
}

func TestSessionReadNilFile(t *testing.T) {
	sto := NewSim(testConfig())
	s := sto.NewSession()
	if _, err := s.Read(nil, 0, 1); err == nil {
		t.Fatal("nil file read should fail")
	}
}

func TestReadRawUncharged(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		mustAppend(t, f, []byte{1, 2, 3})
		got, err := f.ReadRaw(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 1 || got[2] != 3 {
			t.Fatal("ReadRaw wrong bytes")
		}
		if _, err := f.ReadRaw(1, 1); err == nil {
			t.Fatal("ReadRaw past end should fail")
		}
	})
}
