package store

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestSessionResetClearsLeakedState reproduces the reuse bug the query
// engine's session pooling would otherwise hit: a session poisoned by a
// failed read (or carrying another query's charges) must come back clean
// after Reset.
func TestSessionResetClearsLeakedState(t *testing.T) {
	sto := NewSim(testConfig())
	f := mustFile(t, sto, "t")
	mustAppend(t, f, make([]byte, 128))

	s := sto.NewSession()
	s.SetObserver(obs.NewQueryTrace("q1"))
	if _, err := s.Read(f, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(f, 99, 1); err == nil {
		t.Fatal("expected read past end to fail")
	}
	// The session is now poisoned: even a valid read returns the error.
	if _, err := s.Read(f, 0, 1); err == nil {
		t.Fatal("sticky error should poison later reads")
	}
	if s.Stats.Reads == 0 || s.FileStats("t").Reads == 0 {
		t.Fatal("expected charges before reset")
	}

	s.Reset()
	if s.Err() != nil {
		t.Fatalf("Err after Reset: %v", s.Err())
	}
	if s.Observer() != nil {
		t.Fatal("observer leaked through Reset")
	}
	if s.Stats != (Stats{}) {
		t.Fatalf("stats leaked through Reset: %+v", s.Stats)
	}
	if s.FileStats("t") != (Stats{}) {
		t.Fatalf("per-file stats leaked through Reset: %+v", s.FileStats("t"))
	}
	// A fresh read must charge exactly like a brand-new session (one
	// seek: the head position must not leak either).
	if _, err := s.Read(f, 1, 1); err != nil {
		t.Fatal(err)
	}
	fresh := sto.NewSession()
	if _, err := fresh.Read(f, 1, 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats != fresh.Stats {
		t.Fatalf("reset session charged %+v, fresh session %+v", s.Stats, fresh.Stats)
	}
}

// TestSessionResetRecapturesPool checks that Reset picks up a buffer
// pool attached to the store after the session was created.
func TestSessionResetRecapturesPool(t *testing.T) {
	sto := NewSim(testConfig())
	f := mustFile(t, sto, "t")
	mustAppend(t, f, make([]byte, 64))

	s := sto.NewSession() // created before the pool exists
	sto.SetCache(16 * 1024)
	s.Reset()
	if _, err := s.Read(f, 0, 1); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if _, err := s.Read(f, 0, 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats.BlocksRead != 0 {
		t.Fatalf("second read should hit the pool, charged %+v", s.Stats)
	}
}

// TestSimFileConcurrentReadersDuringRewrite verifies the copy-on-write
// contract the snapshot layers depend on: a slice returned by ReadBlocks
// keeps its bytes even while another goroutine truncates and rewrites
// the file.
func TestSimFileConcurrentReadersDuringRewrite(t *testing.T) {
	sto := NewSim(testConfig())
	f := mustFile(t, sto, "t")
	bs := testConfig().BlockSize
	content := func(b byte) []byte {
		p := make([]byte, 4*bs)
		for i := range p {
			p[i] = b
		}
		return p
	}
	mustAppend(t, f, content(1))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := sto.NewSession()
				n := f.Blocks()
				if n == 0 {
					continue
				}
				buf, err := s.Read(f, 0, n)
				if err != nil {
					continue // racing a truncate; the error path is fine
				}
				// Each version of the file is a constant byte; a mixed
				// buffer means a reader observed a torn rewrite.
				for _, b := range buf {
					if b != buf[0] {
						errs <- "torn read: mixed file versions in one buffer"
						return
					}
				}
				// The alias must stay stable after the read returns.
				head := buf[0]
				if !bytes.Equal(buf, bytes.Repeat([]byte{head}, len(buf))) {
					errs <- "alias mutated after read"
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := f.SetContents(content(byte(i%250) + 1)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
