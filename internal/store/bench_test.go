package store

import (
	"fmt"
	"testing"
)

// BenchmarkBufferPool measures the buffer pool on a skewed re-read
// workload: cold (every read misses, budget 0 means no pool) versus warm
// (the working set fits and repeat reads hit). It reports the pool's hit
// rate alongside ns/op; the warm configuration's wall-clock win is the
// cache's CPU-side benefit, and its zero simulated cost is asserted by
// the unit tests.
func BenchmarkBufferPool(b *testing.B) {
	const (
		fileBlocks = 512
		readRun    = 8
	)
	build := func(budget int64) (*Store, *File) {
		sto := NewSim(DefaultConfig())
		if budget > 0 {
			sto.SetCache(budget)
		}
		f, err := sto.NewFile("bench")
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, fileBlocks*sto.Config().BlockSize)
		for i := range data {
			data[i] = byte(i)
		}
		if _, _, err := f.Append(data); err != nil {
			b.Fatal(err)
		}
		return sto, f
	}
	for _, bc := range []struct {
		name   string
		budget int64
	}{
		{"cold-no-pool", 0},
		{"warm-fits", int64(fileBlocks) * int64(DefaultConfig().BlockSize)},
		{"warm-half", int64(fileBlocks) / 2 * int64(DefaultConfig().BlockSize)},
	} {
		b.Run(fmt.Sprintf("%s/blocks=%d", bc.name, fileBlocks), func(b *testing.B) {
			sto, f := build(bc.budget)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := sto.NewSession()
				pos := (i * readRun) % (fileBlocks - readRun)
				if _, err := s.Read(f, pos, readRun); err != nil {
					b.Fatal(err)
				}
			}
			if p := sto.Pool(); p != nil {
				b.ReportMetric(p.Stats().HitRate(), "hit-rate")
			} else {
				b.ReportMetric(0, "hit-rate")
			}
		})
	}
}
