package store

import (
	"bytes"
	"testing"
)

// poolFixture builds a sim-backed store with a cache of budget bytes and
// one file of nblocks distinct blocks.
func poolFixture(t *testing.T, budget int64, nblocks int) (*Store, *File) {
	t.Helper()
	sto := NewSim(testConfig())
	sto.SetCache(budget)
	f := mustFile(t, sto, "t")
	data := make([]byte, nblocks*64)
	for i := range data {
		data[i] = byte(i / 64)
	}
	mustAppend(t, f, data)
	return sto, f
}

func TestPoolBudgetEviction(t *testing.T) {
	// Budget of 4 blocks; touching 8 distinct blocks must evict 4.
	sto, f := poolFixture(t, 4*64, 8)
	s := sto.NewSession()
	for i := 0; i < 8; i++ {
		if _, err := s.Read(f, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	ps := sto.Pool().Stats()
	if ps.Frames != 4 || ps.BytesUsed != 4*64 {
		t.Fatalf("pool over budget: %+v", ps)
	}
	if ps.Evictions != 4 {
		t.Fatalf("evictions %d, want 4", ps.Evictions)
	}
	// LRU: the oldest blocks (0..3) are gone, the newest (4..7) resident.
	s2 := sto.NewSession()
	if _, err := s2.Read(f, 4, 4); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 0 {
		t.Fatalf("newest blocks should be resident, charged %d", s2.Stats.BlocksRead)
	}
	if _, err := s2.Read(f, 0, 1); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 1 {
		t.Fatal("oldest block should have been evicted")
	}
}

func TestPoolLRUTouchOnHit(t *testing.T) {
	// Budget 2 blocks. Read 0, 1, re-read 0 (making 1 the LRU), then read
	// 2: block 1 must be evicted, block 0 must survive.
	sto, f := poolFixture(t, 2*64, 3)
	s := sto.NewSession()
	for _, pos := range []int{0, 1, 0, 2} {
		if _, err := s.Read(f, pos, 1); err != nil {
			t.Fatal(err)
		}
	}
	s2 := sto.NewSession()
	if _, err := s2.Read(f, 0, 1); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 0 {
		t.Fatal("block 0 was re-touched and must survive eviction")
	}
	if _, err := s2.Read(f, 1, 1); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 1 {
		t.Fatal("block 1 was the LRU victim and must be gone")
	}
}

func TestPoolPinning(t *testing.T) {
	// Pin the file, then stream far more data than the budget: pinned
	// frames must not be evicted.
	sto, f := poolFixture(t, 4*64, 4)
	sto.PinFile("t")
	g := mustFile(t, sto, "g")
	mustAppend(t, g, make([]byte, 16*64))

	s := sto.NewSession()
	if _, err := s.Read(f, 0, 4); err != nil { // fills the budget with pinned frames
		t.Fatal(err)
	}
	if _, err := s.Read(g, 0, 16); err != nil { // pressure from another file
		t.Fatal(err)
	}
	s2 := sto.NewSession()
	if _, err := s2.Read(f, 0, 4); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 0 {
		t.Fatalf("pinned blocks were evicted (charged %d)", s2.Stats.BlocksRead)
	}
}

func TestPoolUnpin(t *testing.T) {
	sto, f := poolFixture(t, 2*64, 2)
	sto.PinFile("t")
	s := sto.NewSession()
	if _, err := s.Read(f, 0, 2); err != nil {
		t.Fatal(err)
	}
	sto.Pool().UnpinFile("t")
	g := mustFile(t, sto, "g")
	mustAppend(t, g, make([]byte, 2*64))
	if _, err := s.Read(g, 0, 2); err != nil {
		t.Fatal(err)
	}
	s2 := sto.NewSession()
	if _, err := s2.Read(f, 0, 2); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 2 {
		t.Fatal("unpinned blocks should have been evicted under pressure")
	}
}

func TestPoolInvalidateRange(t *testing.T) {
	sto, f := poolFixture(t, 8*64, 4)
	s := sto.NewSession()
	if _, err := s.Read(f, 0, 4); err != nil {
		t.Fatal(err)
	}
	sto.Pool().Invalidate("t", 1, 2)
	ps := sto.Pool().Stats()
	if ps.Frames != 2 {
		t.Fatalf("frames after invalidate %d, want 2", ps.Frames)
	}
	s2 := sto.NewSession()
	if _, err := s2.Read(f, 0, 4); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 2 {
		t.Fatalf("charged %d blocks, want the 2 invalidated", s2.Stats.BlocksRead)
	}
}

func TestPoolDetach(t *testing.T) {
	sto, f := poolFixture(t, 8*64, 2)
	s := sto.NewSession()
	if _, err := s.Read(f, 0, 2); err != nil {
		t.Fatal(err)
	}
	sto.SetCache(0) // detach
	if sto.Pool() != nil {
		t.Fatal("SetCache(0) should detach the pool")
	}
	s2 := sto.NewSession()
	if _, err := s2.Read(f, 0, 2); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 2 {
		t.Fatal("detached store must charge full cost again")
	}
}

func TestPoolCopiesData(t *testing.T) {
	// Mutating a buffer returned by a pooled read must not corrupt the
	// cache (and vice versa).
	sto, f := poolFixture(t, 8*64, 2)
	s := sto.NewSession()
	buf, err := s.Read(f, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 0xFF
	buf2, err := sto.NewSession().Read(f, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if buf2[0] == 0xFF {
		t.Fatal("cache aliased a caller's buffer")
	}
}

func TestPoolStatsString(t *testing.T) {
	sto, f := poolFixture(t, 8*64, 2)
	s := sto.NewSession()
	if _, err := s.Read(f, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(f, 0, 2); err != nil {
		t.Fatal(err)
	}
	ps := sto.Pool().Stats()
	if ps.HitRate() != 0.5 {
		t.Fatalf("hit rate %f, want 0.5", ps.HitRate())
	}
	if ps.String() == "" {
		t.Fatal("empty pool stats string")
	}
}

func TestNewBufferPoolPanicsOnZeroBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBufferPool(0)
}

func TestPoolAppendDoesNotInvalidate(t *testing.T) {
	// Appends only add blocks past the cached extent, so cached frames
	// stay valid and keep serving hits.
	sto, f := poolFixture(t, 8*64, 2)
	s := sto.NewSession()
	want, err := s.Read(f, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantCopy := bytes.Clone(want)
	mustAppend(t, f, []byte{42})
	s2 := sto.NewSession()
	got, err := s2.Read(f, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats.BlocksRead != 0 {
		t.Fatal("append must not invalidate existing frames")
	}
	if !bytes.Equal(got, wantCopy) {
		t.Fatal("cached frames corrupted by append")
	}
}
