// Package store is the storage layer of the reproduction: it separates
// the *cost accounting* of the paper's evaluation (seeks, transferred
// blocks, CPU charges — package-level Session) from the *byte storage*
// underneath (the BlockStore/BlockFile backend contract).
//
// Two backends are provided:
//
//   - SimStore: the in-memory simulator of the paper's testbed hardware
//     (HP 9000/780; see DefaultConfig). This is the backend every figure
//     experiment runs on; with the cache disabled its accounting is
//     bit-identical to the original disk simulator.
//   - FileStore: a real os.File-backed store that persists the pages of
//     an index to a directory with block-aligned I/O, so a tree built in
//     one process can be reopened and queried in another.
//
// Between sessions and the backend sits an optional shared BufferPool
// (an LRU block cache with a configurable byte budget): concurrent
// queries share hot directory and quantized pages, and cache hits charge
// zero seek/transfer time, which makes the paper's cost model cache-aware.
//
// Files are append-only sequences of block-aligned pages. A Session is a
// single query's view of the store: it tracks the head position, so that
// a read adjacent to the previous one costs only transfer time while any
// other read costs an additional seek. Sessions carry a sticky error
// instead of panicking on I/O failure: the first failed operation poisons
// the session, every later operation returns that error, and Err exposes
// it for boundary checks.
package store

import (
	"fmt"
	"sync"
	"time"
)

// Config holds the hardware parameters of the (simulated or modeled)
// machine. All time quantities are in seconds. For the file-backed store
// the time parameters still drive the cost model and page scheduling;
// the accounting then describes the modeled device, not the host disk.
type Config struct {
	// BlockSize is the disk block size in bytes. Pages are block-aligned.
	BlockSize int
	// Seek is the cost of one random seek, in seconds.
	Seek float64
	// Xfer is the cost of transferring one block, in seconds.
	Xfer float64
	// DistCPU is the CPU cost, per dimension, of one exact distance
	// computation, in seconds.
	DistCPU float64
	// ApproxCPU is the CPU cost, per dimension, of decoding and bounding
	// one quantized approximation, in seconds.
	ApproxCPU float64
}

// DefaultConfig returns parameters calibrated to the paper's late-1990s
// testbed (HP 9000/780): 4 KiB blocks, 10 ms average seek, ~3.4 MB/s
// effective sequential transfer, and per-dimension CPU costs of a
// ~180 MHz PA-RISC workstation. The transfer rate is backed out of the
// paper's own measurements (a 32 MB sequential scan takes ~13 s in
// Fig. 8/9), giving a seek:transfer ratio of ~8:1, which is what the
// paper's seek-vs-over-read trade-off (Section 2) is calibrated against.
func DefaultConfig() Config {
	return Config{
		BlockSize: 4096,
		Seek:      10e-3,
		Xfer:      1.2e-3,
		DistCPU:   100e-9,
		ApproxCPU: 120e-9,
	}
}

// OverreadHorizon returns v = Seek/Xfer, the maximum number of blocks worth
// over-reading instead of seeking (Section 2 of the paper).
func (c Config) OverreadHorizon() int {
	if c.Xfer <= 0 {
		return 0
	}
	return int(c.Seek / c.Xfer)
}

// Blocks returns the number of blocks needed to store n bytes.
func (c Config) Blocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + c.BlockSize - 1) / c.BlockSize
}

// Stats accumulates the simulated cost of one or more operations.
type Stats struct {
	// Seeks counts random seeks.
	Seeks int
	// BlocksRead counts transferred blocks.
	BlocksRead int
	// Reads counts read operations (contiguous runs).
	Reads int
	// CPUSeconds accumulates charged CPU time.
	CPUSeconds float64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Seeks += o.Seeks
	s.BlocksRead += o.BlocksRead
	s.Reads += o.Reads
	s.CPUSeconds += o.CPUSeconds
}

// Time returns the total simulated time in seconds under cfg.
func (s Stats) Time(cfg Config) float64 {
	return float64(s.Seeks)*cfg.Seek + float64(s.BlocksRead)*cfg.Xfer + s.CPUSeconds
}

// String formats the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("seeks=%d blocks=%d reads=%d cpu=%.6fs", s.Seeks, s.BlocksRead, s.Reads, s.CPUSeconds)
}

// BlockFile is the backend contract for one append-only, block-aligned
// file. Implementations provide raw byte storage only; head tracking,
// cost charging, caching and error stickiness all live in the
// Store/Session layer above, so a backend never needs to know how its
// bytes are being billed.
type BlockFile interface {
	// Name returns the file name (unique within its store).
	Name() string
	// Blocks returns the current length of the file in blocks.
	Blocks() int
	// Bytes returns the size of the file in bytes (always block-aligned).
	Bytes() int
	// ReadBlocks returns the raw content of nblocks blocks starting at
	// block pos. The returned slice may alias internal storage; callers
	// must not mutate it.
	ReadBlocks(pos, nblocks int) ([]byte, error)
	// Append writes p at the end of the file, padded to a block boundary,
	// and returns the starting block position and the number of blocks
	// written. Even an empty p occupies one block.
	Append(p []byte) (pos, nblocks int, err error)
	// WriteBlocks overwrites existing blocks starting at pos with data,
	// which must be block-aligned in length and fit within the current
	// file extent.
	WriteBlocks(pos int, data []byte) error
	// SetContents replaces the whole file with p, padded to a block
	// boundary. An empty p truncates the file to zero blocks.
	SetContents(p []byte) error
	// Truncate discards blocks from the tail, shrinking the file to
	// nblocks blocks. Truncating at or past the current length is a
	// no-op; negative counts are rejected.
	Truncate(nblocks int) error
}

// BlockStore is the backend contract for a set of named block files.
type BlockStore interface {
	// Config returns the store's hardware parameters.
	Config() Config
	// Create creates (or truncates) the named file.
	Create(name string) (BlockFile, error)
	// Lookup returns the named file, or nil if none exists.
	Lookup(name string) BlockFile
	// Names returns the file names in deterministic order.
	Names() []string
	// Remove deletes the named file. Removing a missing file is a no-op.
	Remove(name string) error
	// Sync flushes durable backends; it is a no-op for the simulator.
	Sync() error
	// Close releases backend resources. The store must not be used after.
	Close() error
}

// Store mediates all access to a backend: it hands out canonical *File
// wrappers (which route writes through the cache-invalidation path) and
// per-query Sessions (which route reads through the shared buffer pool,
// when one is attached). A Store carries a sticky write error: the first
// failed mutation poisons it, so construction code can write freely and
// check Err once at the end.
type Store struct {
	backend BlockStore
	pool    *BufferPool

	mu      sync.Mutex
	files   map[string]*File
	err     error
	checked bool        // checksums enabled (see checksum.go)
	retry   RetryPolicy // bounded backoff for transient backend failures
}

// Wrap layers Store/Session mediation over any backend.
func Wrap(backend BlockStore) *Store {
	if backend.Config().BlockSize <= 0 {
		panic("store: BlockSize must be positive")
	}
	return &Store{backend: backend, files: make(map[string]*File), retry: DefaultRetryPolicy()}
}

// NewSim creates a store over a fresh in-memory simulator backend — the
// configuration every figure experiment runs on.
func NewSim(cfg Config) *Store {
	return Wrap(NewSimStore(cfg))
}

// OpenFileStore creates a store over the os.File-backed backend rooted
// at dir (created if absent; existing block files are reopened).
func OpenFileStore(dir string, cfg Config) (*Store, error) {
	b, err := OpenFileBackend(dir, cfg)
	if err != nil {
		return nil, err
	}
	return Wrap(b), nil
}

// Config returns the store's hardware parameters.
func (s *Store) Config() Config { return s.backend.Config() }

// Backend returns the underlying block store.
func (s *Store) Backend() BlockStore { return s.backend }

// SetCache attaches a shared LRU buffer pool with the given byte budget
// to the store (budget <= 0 detaches any pool). All sessions created
// afterwards read through it; cache hits charge zero seek/transfer.
func (s *Store) SetCache(budgetBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if budgetBytes <= 0 {
		s.pool = nil
		return
	}
	s.pool = NewBufferPool(budgetBytes)
}

// Pool returns the attached buffer pool, or nil if caching is disabled.
func (s *Store) Pool() *BufferPool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool
}

// PinFile marks the named file's blocks as non-evictable in the buffer
// pool (a no-op without a pool). Typical use: pin the directory file so
// every query's level-1 scan is served from memory.
func (s *Store) PinFile(name string) {
	if p := s.Pool(); p != nil {
		p.PinFile(name)
	}
}

// NewFile creates (or truncates) a file on the backend.
func (s *Store) NewFile(name string) (*File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bf, err := s.backend.Create(name)
	if err != nil {
		return nil, s.failLocked(err)
	}
	if s.pool != nil {
		s.pool.InvalidateFile(name)
	}
	f := &File{st: s, bf: bf}
	s.files[name] = f
	if s.checked {
		if err := s.attachSumsLocked(f, true); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// File returns the named file, or nil if none exists. The wrapper is
// canonical: repeated calls return the same *File.
func (s *Store) File(name string) *File {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f
	}
	bf := s.backend.Lookup(name)
	if bf == nil {
		return nil
	}
	f := &File{st: s, bf: bf}
	s.files[name] = f
	if s.checked {
		if err := s.attachSumsLocked(f, false); err != nil {
			return nil
		}
	}
	return f
}

// TotalBlocks returns the number of data blocks across all files
// (checksum sidecars excluded, so enabling checksums does not change
// the reported index size).
func (s *Store) TotalBlocks() int {
	var n int
	for _, name := range s.backend.Names() {
		if IsChecksumFile(name) {
			continue
		}
		if bf := s.backend.Lookup(name); bf != nil {
			n += bf.Blocks()
		}
	}
	return n
}

// Remove deletes the named file (and its checksum sidecar, when one
// exists) from the backend, dropping the canonical wrapper and any
// cached frames. Removing a missing file is a no-op. Stale *File
// wrappers held by callers become invalid; removal is a maintenance
// operation for files no snapshot references anymore (old generations
// after a compaction swap).
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pool != nil {
		s.pool.InvalidateFile(name)
	}
	delete(s.files, name)
	if err := s.backend.Remove(name); err != nil {
		return s.failLocked(fmt.Errorf("store: remove %s: %w", name, err))
	}
	if !IsChecksumFile(name) {
		side := name + ChecksumSuffix
		delete(s.files, side)
		if err := s.backend.Remove(side); err != nil {
			return s.failLocked(fmt.Errorf("store: remove %s: %w", side, err))
		}
	}
	return nil
}

// SetRetryPolicy replaces the bounded-backoff policy applied to
// transient backend failures. Sessions capture the policy at creation
// (and Reset), so set it before serving.
func (s *Store) SetRetryPolicy(p RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retry = p
}

// retryPolicy returns the current retry policy.
func (s *Store) retryPolicy() RetryPolicy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retry
}

// NewSession starts a fresh session with the head in an undefined
// position (the first read always seeks).
func (s *Store) NewSession() *Session {
	return &Session{st: s, pool: s.Pool(), retry: s.retryPolicy()}
}

// Err returns the store's sticky write error: the first mutation that
// failed, or nil. Construction code writes freely and checks once here.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// fail records err as the store's sticky error (first one wins) and
// returns it.
func (s *Store) fail(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failLocked(err)
}

func (s *Store) failLocked(err error) error {
	if s.err == nil {
		s.err = err
	}
	return err
}

// Sync flushes durable backends.
func (s *Store) Sync() error { return s.backend.Sync() }

// Close flushes and releases the backend. The store must not be used
// afterwards.
func (s *Store) Close() error { return s.backend.Close() }

// File is the mediated view of one backend file. All mutations pass
// through it so the shared buffer pool can invalidate stale frames and
// the checksum sidecar (when enabled) stays write-through consistent;
// transient backend failures are retried under the store's RetryPolicy,
// and mutation failures are additionally recorded as the store's sticky
// error, so bulk writers may check once instead of at every call.
type File struct {
	st   *Store
	bf   BlockFile
	sums *sumTable // per-block CRC32C mirror; nil when checksums are off
}

// mutate runs op with bounded retries on transient failures. Transient
// errors promise that nothing was applied, so re-running op is safe;
// permanent errors (including torn writes) return immediately.
func (f *File) mutate(op func() error) error {
	pol := f.st.retryPolicy()
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= pol.MaxRetries {
			if IsTransient(err) {
				metricRetriesExhausted.Inc()
			}
			return err
		}
		metricWriteRetries.Inc()
		if d := pol.delay(attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// verifyBlocks checks data read from [pos, pos+nblocks) against the
// file's checksum sidecar; a no-op when checksums are off.
func (f *File) verifyBlocks(pos int, data []byte, nblocks int) error {
	if f.sums == nil {
		return nil
	}
	return f.sums.verify(f.Name(), pos, data, nblocks)
}

// Name returns the file name.
func (f *File) Name() string { return f.bf.Name() }

// Blocks returns the current length of the file in blocks.
func (f *File) Blocks() int { return f.bf.Blocks() }

// Bytes returns the size of the file in bytes (always block-aligned).
func (f *File) Bytes() int { return f.bf.Bytes() }

// Append writes p at the end of the file, padded to a block boundary, and
// returns the starting block position and the number of blocks written.
// Appends never touch previously readable blocks, so no cache
// invalidation is needed.
func (f *File) Append(p []byte) (pos, nblocks int, err error) {
	err = f.mutate(func() error {
		pos, nblocks, err = f.bf.Append(p)
		return err
	})
	if err != nil {
		return 0, 0, f.st.fail(fmt.Errorf("store: append to %s: %w", f.Name(), err))
	}
	if f.sums != nil {
		if serr := f.sums.recordAppend(pos, p, nblocks); serr != nil {
			return 0, 0, f.st.fail(serr)
		}
	}
	return pos, nblocks, nil
}

// WriteBlocks overwrites existing blocks starting at pos with data, which
// must be block-aligned in length and fit within the current file extent.
// Writes are construction/maintenance operations; their cost, where it
// matters, is charged explicitly by the caller.
func (f *File) WriteBlocks(pos int, data []byte) error {
	if err := f.mutate(func() error { return f.bf.WriteBlocks(pos, data) }); err != nil {
		return f.st.fail(fmt.Errorf("store: write to %s: %w", f.Name(), err))
	}
	if f.sums != nil {
		if serr := f.sums.recordWrite(pos, data); serr != nil {
			return f.st.fail(serr)
		}
	}
	if p := f.st.Pool(); p != nil {
		p.Invalidate(f.Name(), pos, len(data)/f.st.Config().BlockSize)
	}
	return nil
}

// SetContents replaces the whole file with p, padded to a block boundary.
// An empty p truncates the file to zero blocks.
func (f *File) SetContents(p []byte) error {
	if err := f.mutate(func() error { return f.bf.SetContents(p) }); err != nil {
		return f.st.fail(fmt.Errorf("store: rewrite of %s: %w", f.Name(), err))
	}
	if f.sums != nil {
		if serr := f.sums.recordContents(p, f.Blocks()); serr != nil {
			return f.st.fail(serr)
		}
	}
	if pl := f.st.Pool(); pl != nil {
		pl.InvalidateFile(f.Name())
	}
	return nil
}

// Truncate shrinks the file to nblocks blocks, dropping the recorded
// checksums of the discarded tail and invalidating any cached frames.
// Used by generation-swap compaction and WAL tail recovery; truncating
// at or past the current length is a no-op.
func (f *File) Truncate(nblocks int) error {
	if err := f.mutate(func() error { return f.bf.Truncate(nblocks) }); err != nil {
		return f.st.fail(fmt.Errorf("store: truncate %s: %w", f.Name(), err))
	}
	if f.sums != nil {
		if serr := f.sums.truncateTo(nblocks); serr != nil {
			return f.st.fail(serr)
		}
	}
	if pl := f.st.Pool(); pl != nil {
		pl.InvalidateFile(f.Name())
	}
	return nil
}

// ReadRaw returns the raw content of nblocks blocks at pos without
// charging any cost and without touching the cache, verified against
// the checksum sidecar when checksums are enabled. It is intended for
// superblock reads, invariant checks, tests and debugging; query code
// must go through a Session.
func (f *File) ReadRaw(pos, nblocks int) ([]byte, error) {
	if pos < 0 || nblocks <= 0 || pos+nblocks > f.Blocks() {
		return nil, fmt.Errorf("store: raw read past end of %s: pos=%d n=%d blocks=%d",
			f.Name(), pos, nblocks, f.Blocks())
	}
	data, err := f.bf.ReadBlocks(pos, nblocks)
	if err != nil {
		return nil, err
	}
	if verr := f.verifyBlocks(pos, data, nblocks); verr != nil {
		return nil, verr
	}
	return data, nil
}
