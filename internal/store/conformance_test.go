package store

import (
	"bytes"
	"math"
	"testing"
)

func testConfig() Config {
	return Config{BlockSize: 64, Seek: 0.01, Xfer: 0.001, DistCPU: 1e-7, ApproxCPU: 1e-7}
}

// forEachBackend runs the same subtest against every backend: the
// simulator, the os.File-backed store, the simulator with checksums
// enabled (verification must be invisible to correct code), and the
// simulator under a zero-probability FaultStore wrapper (the fault
// layer must be a perfect pass-through when idle). All must satisfy
// the exact same block semantics and cost accounting.
func forEachBackend(t *testing.T, fn func(t *testing.T, sto *Store)) {
	t.Helper()
	t.Run("sim", func(t *testing.T) {
		fn(t, NewSim(testConfig()))
	})
	t.Run("file", func(t *testing.T) {
		sto, err := OpenFileStore(t.TempDir(), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer sto.Close()
		fn(t, sto)
	})
	t.Run("sim-checked", func(t *testing.T) {
		sto := NewSim(testConfig())
		if err := sto.EnableChecksums(); err != nil {
			t.Fatal(err)
		}
		fn(t, sto)
	})
	t.Run("sim-faultwrap", func(t *testing.T) {
		fn(t, Wrap(NewFaultStore(NewSimStore(testConfig()), FaultConfig{Seed: 1})))
	})
}

// dataNames returns the backend's file names with checksum sidecars
// filtered out, so name-sensitive tests hold on checked stores too.
func dataNames(sto *Store) []string {
	var out []string
	for _, n := range sto.Backend().Names() {
		if !IsChecksumFile(n) {
			out = append(out, n)
		}
	}
	return out
}

func mustFile(t *testing.T, sto *Store, name string) *File {
	t.Helper()
	f, err := sto.NewFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustAppend(t *testing.T, f *File, p []byte) (int, int) {
	t.Helper()
	pos, n, err := f.Append(p)
	if err != nil {
		t.Fatal(err)
	}
	return pos, n
}

func TestAppendAlignsToBlocks(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		pos, n := mustAppend(t, f, make([]byte, 100))
		if pos != 0 || n != 2 {
			t.Fatalf("first append pos=%d n=%d", pos, n)
		}
		pos, n = mustAppend(t, f, make([]byte, 1))
		if pos != 2 || n != 1 {
			t.Fatalf("second append pos=%d n=%d", pos, n)
		}
		pos, n = mustAppend(t, f, nil)
		if pos != 3 || n != 1 {
			t.Fatalf("empty append pos=%d n=%d (should reserve one block)", pos, n)
		}
		if f.Blocks() != 4 || f.Bytes() != 256 {
			t.Fatalf("blocks=%d bytes=%d", f.Blocks(), f.Bytes())
		}
	})
}

func TestReadRoundtripAndCost(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		payload := []byte("hello, block world")
		mustAppend(t, f, payload)
		mustAppend(t, f, bytes.Repeat([]byte{7}, 64))

		s := sto.NewSession()
		got, err := s.Read(f, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(payload)], payload) {
			t.Fatal("read returned wrong bytes")
		}
		if s.Stats.Seeks != 1 || s.Stats.BlocksRead != 1 {
			t.Fatalf("first read stats: %+v", s.Stats)
		}
		// Sequential continuation: no extra seek.
		if _, err := s.Read(f, 1, 1); err != nil {
			t.Fatal(err)
		}
		if s.Stats.Seeks != 1 || s.Stats.BlocksRead != 2 {
			t.Fatalf("sequential read stats: %+v", s.Stats)
		}
		// Going backwards costs a seek.
		if _, err := s.Read(f, 0, 1); err != nil {
			t.Fatal(err)
		}
		if s.Stats.Seeks != 2 {
			t.Fatalf("backward read stats: %+v", s.Stats)
		}
		wantTime := 2*0.01 + 3*0.001
		if math.Abs(s.Time()-wantTime) > 1e-12 {
			t.Fatalf("time %f, want %f", s.Time(), wantTime)
		}
	})
}

func TestCrossFileSeek(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		a := mustFile(t, sto, "a")
		b := mustFile(t, sto, "b")
		mustAppend(t, a, make([]byte, 64))
		mustAppend(t, b, make([]byte, 64))
		s := sto.NewSession()
		if _, err := s.Read(a, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Read(b, 0, 1); err != nil { // different file: must seek
			t.Fatal(err)
		}
		if s.Stats.Seeks != 2 {
			t.Fatalf("cross-file seeks = %d, want 2", s.Stats.Seeks)
		}
	})
}

func TestReadRange(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		data := make([]byte, 300)
		for i := range data {
			data[i] = byte(i)
		}
		mustAppend(t, f, data)
		s := sto.NewSession()
		// Bytes 100..149 span blocks 1..2.
		buf, rel, err := s.ReadRange(f, 100, 50)
		if err != nil {
			t.Fatal(err)
		}
		if s.Stats.BlocksRead != 2 {
			t.Fatalf("blocks read %d, want 2", s.Stats.BlocksRead)
		}
		for i := 0; i < 50; i++ {
			if buf[rel+i] != byte(100+i) {
				t.Fatalf("byte %d = %d, want %d", i, buf[rel+i], 100+i)
			}
		}
	})
}

func TestWriteBlocksAndSetContents(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		mustAppend(t, f, make([]byte, 128))
		repl := bytes.Repeat([]byte{9}, 64)
		if err := f.WriteBlocks(1, repl); err != nil {
			t.Fatal(err)
		}
		got, err := f.ReadRaw(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, repl) {
			t.Fatal("WriteBlocks did not replace the block")
		}
		if err := f.SetContents([]byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		got, err = f.ReadRaw(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Blocks() != 1 || got[0] != 1 {
			t.Fatal("SetContents wrong")
		}
		if err := f.SetContents(nil); err != nil {
			t.Fatal(err)
		}
		if f.Blocks() != 0 {
			t.Fatal("SetContents(nil) should truncate")
		}
	})
}

func TestWriteBlocksErrors(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		mustAppend(t, f, make([]byte, 64))
		if err := f.WriteBlocks(0, make([]byte, 10)); err == nil {
			t.Fatal("unaligned WriteBlocks should fail")
		}
		// The write error is sticky on the store.
		if sto.Err() == nil {
			t.Fatal("store should carry the sticky write error")
		}
	})
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		mustAppend(t, f, make([]byte, 64))
		if err := f.WriteBlocks(1, make([]byte, 64)); err == nil {
			t.Fatal("WriteBlocks past end should fail")
		}
	})
}

func TestReadPastEndFails(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		mustAppend(t, f, make([]byte, 64))
		s := sto.NewSession()
		if _, err := s.Read(f, 0, 2); err == nil {
			t.Fatal("expected error reading past end")
		}
		if s.Err() == nil {
			t.Fatal("session should carry the sticky read error")
		}
		// The sticky error short-circuits later reads.
		if _, err := s.Read(f, 0, 1); err == nil {
			t.Fatal("sticky session error should fail subsequent reads")
		}
		// A fresh session is unaffected.
		s2 := sto.NewSession()
		if _, err := s2.Read(f, 0, 1); err != nil {
			t.Fatalf("fresh session: %v", err)
		}
	})
}

func TestCPUCharges(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		s := sto.NewSession()
		f := mustFile(t, sto, "cpu")
		s.ChargeDistCPU(f, 16, 10)   // 16e-6
		s.ChargeApproxCPU(f, 8, 100) // 80e-6
		s.ChargeCPU(nil, 1e-3)       // unattributed: aggregate only
		want := 16*10*1e-7 + 8*100*1e-7 + 1e-3
		if math.Abs(s.Stats.CPUSeconds-want) > 1e-15 {
			t.Fatalf("cpu %g, want %g", s.Stats.CPUSeconds, want)
		}
		// Attributed CPU shows up in the file's decomposition; the
		// unattributed charge only in the aggregate.
		perFile := s.FileStats("cpu").CPUSeconds
		if math.Abs(perFile-(16*10*1e-7+8*100*1e-7)) > 1e-15 {
			t.Fatalf("per-file cpu %g", perFile)
		}
	})
}

func TestTotalBlocks(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		mustAppend(t, mustFile(t, sto, "a"), make([]byte, 65))
		mustAppend(t, mustFile(t, sto, "b"), make([]byte, 64))
		if sto.TotalBlocks() != 3 {
			t.Fatalf("total blocks %d", sto.TotalBlocks())
		}
	})
}

func TestLookupAndNames(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		mustFile(t, sto, "b")
		mustFile(t, sto, "a")
		names := dataNames(sto)
		if len(names) != 2 || names[0] != "a" || names[1] != "b" {
			t.Fatalf("names %v", names)
		}
		if sto.File("a") == nil || sto.File("missing") != nil {
			t.Fatal("File lookup wrong")
		}
		// File returns the canonical wrapper: same pointer every time.
		if sto.File("a") != sto.File("a") {
			t.Fatal("File should be canonical")
		}
	})
}

// TestCachedReadsChargeNothing is the core buffer-pool contract: a block
// served from the cache costs no simulated seek or transfer, on either
// backend.
func TestCachedReadsChargeNothing(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		sto.SetCache(1 << 20)
		f := mustFile(t, sto, "t")
		data := make([]byte, 256)
		for i := range data {
			data[i] = byte(i)
		}
		mustAppend(t, f, data)

		cold := sto.NewSession()
		got, err := cold.Read(f, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("cold read wrong bytes")
		}
		if cold.Stats.Seeks != 1 || cold.Stats.BlocksRead != 4 {
			t.Fatalf("cold stats: %+v", cold.Stats)
		}

		warm := sto.NewSession()
		got, err = warm.Read(f, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("warm read wrong bytes")
		}
		if warm.Stats.Seeks != 0 || warm.Stats.BlocksRead != 0 {
			t.Fatalf("warm read should be free, got %+v", warm.Stats)
		}
		ps := sto.Pool().Stats()
		if ps.Hits != 4 || ps.Misses != 4 {
			t.Fatalf("pool stats: %+v", ps)
		}
	})
}

// TestCacheMissRunCharging: a read with a cached hole in the middle pays
// for exactly the missing runs.
func TestCacheMissRuns(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		sto.SetCache(1 << 20)
		f := mustFile(t, sto, "t")
		data := make([]byte, 64*6)
		for i := range data {
			data[i] = byte(i / 64)
		}
		mustAppend(t, f, data)

		s := sto.NewSession()
		if _, err := s.Read(f, 2, 2); err != nil { // cache blocks 2,3
			t.Fatal(err)
		}
		s2 := sto.NewSession()
		got, err := s2.Read(f, 0, 6) // misses 0-1 and 4-5, hits 2-3
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("mixed hit/miss read wrong bytes")
		}
		if s2.Stats.BlocksRead != 4 {
			t.Fatalf("blocks charged %d, want 4 (two miss runs)", s2.Stats.BlocksRead)
		}
		if s2.Stats.Seeks != 2 {
			t.Fatalf("seeks %d, want 2 (one per miss run)", s2.Stats.Seeks)
		}
	})
}

// TestCacheInvalidation: WriteBlocks drops exactly the overwritten
// blocks; SetContents drops the whole file.
func TestCacheInvalidation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		sto.SetCache(1 << 20)
		f := mustFile(t, sto, "t")
		mustAppend(t, f, bytes.Repeat([]byte{1}, 128))
		s := sto.NewSession()
		if _, err := s.Read(f, 0, 2); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteBlocks(1, bytes.Repeat([]byte{2}, 64)); err != nil {
			t.Fatal(err)
		}
		s2 := sto.NewSession()
		got, err := s2.Read(f, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 1 || got[64] != 2 {
			t.Fatalf("stale cache after WriteBlocks: %d %d", got[0], got[64])
		}
		if err := f.SetContents(bytes.Repeat([]byte{3}, 64)); err != nil {
			t.Fatal(err)
		}
		s3 := sto.NewSession()
		got, err = s3.Read(f, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 3 {
			t.Fatalf("stale cache after SetContents: %d", got[0])
		}
	})
}
