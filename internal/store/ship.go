package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL shipping: the replica catch-up path of the shard coordinator
// (DESIGN.md §15). A Shipper copies one replica's directory — data files
// raw, logs frame-by-frame with CRC verification — onto a fresh backend
// (ShipAll), then streams mutation-log tail frames by LSN (ShipTail)
// until the destination has caught up enough to be reopened and
// readmitted. Both directions operate on BlockStore backends directly:
// shipping is replication plumbing, not query work, so it charges no
// session and bypasses any cache.
//
// Consistency against a live source: within one generation, data files
// only grow and committed log blocks are never rewritten, so a copy that
// reads the checkpoint log BEFORE the data files can only observe data
// extents at or beyond the checkpoint's — recovery truncates the excess.
// The one hazard is a checkpoint (or a generation swap) completing
// mid-copy: it may reset the mutation log, leaving the copy's checkpoint
// too old for the records that survive. ShipAll detects this by
// fingerprinting every log before and after the copy and restarts;
// ShipTail surfaces it as ErrShipGap, telling the caller the records it
// needs were consumed by a checkpoint and only a fresh ShipAll can help.

// walReadChunk is how many blocks a WALReader fetches per backend read.
const walReadChunk = 64

// ErrShipGap reports that a WAL tail ship cannot proceed because the
// source log no longer holds the record after the destination's last
// shipped LSN — a checkpoint consumed it. The destination must restart
// from a full ShipAll, whose checkpoint then covers the missing range.
var ErrShipGap = errors.New("store: WAL shipping gap")

// ErrShipUnstable reports that ShipAll kept observing checkpoint or
// generation activity on the source across its bounded restarts.
var ErrShipUnstable = errors.New("store: source checkpointed during every shipping attempt")

// WALReader streams the valid frame prefix of a write-ahead log,
// verifying each frame's CRC32C and LSN monotonicity, and yielding the
// records with LSN strictly greater than a starting watermark. It reads
// the extent snapshotted at creation: frames flushed later are not
// visible, and a frame torn at (or running past) that extent ends the
// stream with Torn reporting true.
type WALReader struct {
	bf   BlockFile
	bs   int
	end  int // extent (in blocks) snapshotted at creation
	from uint64

	buf  []byte
	off  int // parse offset into buf
	base int // absolute byte offset of buf[0]
	pos  int // next block to fetch
	seen uint64
	torn bool
	done bool
}

// NewWALReader opens a streaming reader over the named log on backend,
// yielding records with LSN > from. A missing file is an empty stream.
func NewWALReader(backend BlockStore, name string, from uint64) *WALReader {
	r := &WALReader{bs: backend.Config().BlockSize, from: from}
	if bf := backend.Lookup(name); bf != nil {
		r.bf = bf
		r.end = bf.Blocks()
	}
	return r
}

// fill ensures n unparsed bytes are buffered, fetching more blocks as
// needed. io.EOF means the snapshotted extent cannot supply n bytes.
func (r *WALReader) fill(n int) error {
	if len(r.buf)-r.off >= n {
		return nil
	}
	if k := r.off / r.bs; k > 0 { // drop fully parsed blocks
		r.buf = r.buf[k*r.bs:]
		r.base += k * r.bs
		r.off -= k * r.bs
	}
	for len(r.buf)-r.off < n && r.pos < r.end {
		chunk := r.end - r.pos
		if chunk > walReadChunk {
			chunk = walReadChunk
		}
		data, err := r.bf.ReadBlocks(r.pos, chunk)
		if err != nil {
			return err
		}
		r.buf = append(r.buf, data...)
		r.pos += chunk
	}
	if len(r.buf)-r.off < n {
		return io.EOF
	}
	return nil
}

// Next returns the next record with LSN > from, or io.EOF at the end of
// the valid prefix. A damaged or torn frame ends the stream (Torn then
// reports true); torn frames are never yielded, mirroring recovery.
func (r *WALReader) Next() (WALRecord, error) {
	if r.done || r.bf == nil {
		return WALRecord{}, io.EOF
	}
	le := binary.LittleEndian
	for {
		if err := r.fill(4); err != nil {
			if err == io.EOF {
				return r.finish(r.anyNonZero(len(r.buf) - r.off))
			}
			return WALRecord{}, err
		}
		length := int(le.Uint32(r.buf[r.off:]))
		if length == 0 {
			// Padding: skip to the next block boundary (blocks are buffered
			// whole, so the padding run is fully present).
			pad := r.bs - (r.base+r.off)%r.bs
			if r.anyNonZero(pad) {
				return r.finish(true)
			}
			r.off += pad
			continue
		}
		if length < walHeaderSize {
			return r.finish(true)
		}
		if err := r.fill(length); err != nil {
			if err == io.EOF { // frame runs past the extent: torn tail
				return r.finish(true)
			}
			return WALRecord{}, err
		}
		frame := r.buf[r.off : r.off+length]
		if crc32.Checksum(frame[8:], castagnoli) != le.Uint32(frame[4:]) {
			return r.finish(true)
		}
		lsn := le.Uint64(frame[8:])
		if lsn <= r.seen {
			return r.finish(true)
		}
		r.seen = lsn
		r.off += length
		if lsn <= r.from {
			continue
		}
		return WALRecord{
			LSN:     lsn,
			Kind:    frame[16],
			Payload: append([]byte(nil), frame[walHeaderSize:]...),
		}, nil
	}
}

// anyNonZero reports whether any of the next n buffered bytes (clamped
// to what is buffered) is non-zero.
func (r *WALReader) anyNonZero(n int) bool {
	end := r.off + n
	if end > len(r.buf) {
		end = len(r.buf)
	}
	for i := r.off; i < end; i++ {
		if r.buf[i] != 0 {
			return true
		}
	}
	return false
}

// finish ends the stream.
func (r *WALReader) finish(torn bool) (WALRecord, error) {
	r.done = true
	r.torn = torn
	r.buf = nil
	return WALRecord{}, io.EOF
}

// Torn reports whether the stream ended at a damaged frame rather than
// the clean end of the log. Meaningful once Next returned io.EOF.
func (r *WALReader) Torn() bool { return r.torn }

// LastLSN returns the LSN of the last valid frame scanned (yielded or
// skipped by the watermark).
func (r *WALReader) LastLSN() uint64 { return r.seen }

// Shipper transfers one replica directory's files from a source backend
// to a destination backend.
type Shipper struct {
	Src, Dst BlockStore
	// TailWAL names the mutation log, the one WAL whose growth during a
	// copy is benign (the destination merely lags — no gap). Growth or
	// shrinkage of any other log means a checkpoint or generation swap
	// landed mid-copy and the copy must restart. Empty means every log
	// change forces a restart.
	TailWAL string
	// MaxAttempts bounds ShipAll restarts (default 5). A restart is only
	// needed when the source checkpoints or swaps generations mid-copy,
	// so the bound is about liveness, not correctness.
	MaxAttempts int
	// ChunkBlocks is the raw-copy granularity in blocks (default 256).
	ChunkBlocks int
}

// ShipReport summarizes one shipping operation.
type ShipReport struct {
	Files    int // non-WAL files copied
	Blocks   int // raw blocks copied
	WALFiles int // logs copied (ShipAll) or appended to (ShipTail)
	Records  int // log records shipped
	LastLSN  uint64
	Attempts int  // ShipAll copy passes (1 = no mid-copy checkpoint)
	SrcTorn  bool // a source log ended in a torn frame (discarded)
}

// add folds o into r.
func (r *ShipReport) add(o ShipReport) {
	r.Files += o.Files
	r.Blocks += o.Blocks
	r.WALFiles += o.WALFiles
	r.Records += o.Records
	if o.LastLSN > r.LastLSN {
		r.LastLSN = o.LastLSN
	}
	r.SrcTorn = r.SrcTorn || o.SrcTorn
}

// walPrint fingerprints one log for the stability check.
type walPrint struct {
	records  int
	firstLSN uint64
	lastLSN  uint64
}

// walPrints fingerprints every log on the source.
func (sh *Shipper) walPrints() (map[string]walPrint, error) {
	out := make(map[string]walPrint)
	for _, name := range sh.Src.Names() {
		if !IsWALFile(name) {
			continue
		}
		info, _, err := InspectWAL(sh.Src, name)
		if err != nil {
			return nil, err
		}
		out[name] = walPrint{records: info.Records, firstLSN: info.FirstLSN, lastLSN: info.LastLSN}
	}
	return out, nil
}

// stable reports whether the source's logs moved only in benign ways
// between the pre- and post-copy fingerprints: the tail log may grow
// (same first LSN, no fewer records), every other log must be untouched
// and no log may appear or disappear.
func (sh *Shipper) stable(pre, post map[string]walPrint) bool {
	if len(pre) != len(post) {
		return false
	}
	for name, p := range pre {
		q, ok := post[name]
		if !ok {
			return false
		}
		if name == sh.TailWAL {
			if q.records < p.records {
				return false
			}
			if p.records > 0 && q.firstLSN != p.firstLSN {
				return false
			}
			continue
		}
		if q != p {
			return false
		}
	}
	return true
}

// ShipAll copies the source directory onto the destination: every log
// frame-verified (only the valid prefix survives, re-packed without
// padding), every other file — checksum sidecars included — as raw
// blocks. The destination is wiped first, so a failed or restarted pass
// leaves no half-mixed state. On a live source the copy restarts, up to
// MaxAttempts, whenever the log fingerprints reveal a mid-copy
// checkpoint or generation swap; the returned report's LastLSN is the
// highest mutation-log LSN shipped (the watermark to resume ShipTail
// from — the embedded checkpoint may cover more).
func (sh *Shipper) ShipAll() (ShipReport, error) {
	attempts := sh.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	var rep ShipReport
	var lastErr error
	for a := 0; a < attempts; a++ {
		pre, err := sh.walPrints()
		if err != nil {
			lastErr = err
			continue
		}
		rep = ShipReport{Attempts: a + 1}
		if err := sh.copyAll(&rep); err != nil {
			// A concurrent generation swap removes source files mid-copy;
			// that read error is exactly the restart case.
			lastErr = err
			continue
		}
		post, err := sh.walPrints()
		if err != nil {
			lastErr = err
			continue
		}
		if sh.stable(pre, post) {
			return rep, nil
		}
		lastErr = nil
	}
	if lastErr != nil {
		return rep, fmt.Errorf("store: ship all (after %d attempts): %w", attempts, lastErr)
	}
	return rep, fmt.Errorf("%w (%d attempts)", ErrShipUnstable, attempts)
}

// copyAll performs one full copy pass. Logs are copied before data files
// so the pinned checkpoint's extents can only be met or exceeded by the
// data copied after it.
func (sh *Shipper) copyAll(rep *ShipReport) error {
	for _, name := range sh.Dst.Names() {
		if err := sh.Dst.Remove(name); err != nil {
			return fmt.Errorf("store: ship wipe %s: %w", name, err)
		}
	}
	names := sh.Src.Names()
	for _, name := range names {
		if !IsWALFile(name) {
			continue
		}
		r, err := sh.copyWAL(name)
		if err != nil {
			return err
		}
		rep.add(r)
	}
	for _, name := range names {
		if IsWALFile(name) {
			continue
		}
		r, err := sh.copyRaw(name)
		if err != nil {
			return err
		}
		rep.add(r)
	}
	return nil
}

// copyWAL ships the valid frame prefix of one log. Frames are re-packed
// (source padding dropped, fresh CRCs) with their LSNs preserved, which
// recovery treats identically to the source layout. LastLSN is reported
// only for the tail log — checkpoint logs number their own LSN sequence.
func (sh *Shipper) copyWAL(name string) (ShipReport, error) {
	rep := ShipReport{WALFiles: 1}
	reader := NewWALReader(sh.Src, name, 0)
	w, err := CreateWAL(sh.Dst, name)
	if err != nil {
		return rep, err
	}
	var last uint64
	for {
		rec, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("store: ship %s: %w", name, err)
		}
		if err := w.AppendRecord(rec); err != nil {
			return rep, err
		}
		rep.Records++
		last = rec.LSN
	}
	rep.SrcTorn = reader.Torn()
	if rep.Records > 0 {
		if err := w.Commit(last); err != nil {
			return rep, err
		}
		if name == sh.TailWAL {
			rep.LastLSN = last
		}
	}
	return rep, nil
}

// copyRaw block-copies one non-WAL file.
func (sh *Shipper) copyRaw(name string) (ShipReport, error) {
	rep := ShipReport{Files: 1}
	chunk := sh.ChunkBlocks
	if chunk <= 0 {
		chunk = 256
	}
	src := sh.Src.Lookup(name)
	if src == nil {
		return rep, fmt.Errorf("store: ship %s: source file vanished", name)
	}
	dst, err := sh.Dst.Create(name)
	if err != nil {
		return rep, err
	}
	blocks := src.Blocks()
	for pos := 0; pos < blocks; pos += chunk {
		n := blocks - pos
		if n > chunk {
			n = chunk
		}
		data, err := src.ReadBlocks(pos, n)
		if err != nil {
			return rep, fmt.Errorf("store: ship %s block %d: %w", name, pos, err)
		}
		if _, _, err := dst.Append(data); err != nil {
			return rep, fmt.Errorf("store: ship %s append: %w", name, err)
		}
		rep.Blocks += n
	}
	return rep, nil
}

// ShipTail streams mutation-log records with LSN > from onto the
// destination's same-named log and commits them. The destination may
// already hold records past from (a previous ship that the caller lost
// track of); shipping resumes after whichever watermark is higher. A
// source log whose first needed record is gone returns ErrShipGap;
// Records == 0 with no error means the source simply has nothing newer —
// when the caller knows the source has applied more, that too means the
// records were consumed by a checkpoint (treat as a gap).
func (sh *Shipper) ShipTail(name string, from uint64) (ShipReport, error) {
	rep := ShipReport{WALFiles: 1}
	w, _, info, err := OpenWAL(sh.Dst, name)
	if err != nil {
		return rep, err
	}
	if info.LastLSN > from {
		from = info.LastLSN
	}
	reader := NewWALReader(sh.Src, name, from)
	first := true
	for {
		rec, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("store: ship tail %s: %w", name, err)
		}
		if first && rec.LSN != from+1 {
			return rep, fmt.Errorf("%w: need LSN %d of %s, source starts at %d",
				ErrShipGap, from+1, name, rec.LSN)
		}
		first = false
		if err := w.AppendRecord(rec); err != nil {
			return rep, err
		}
		rep.Records++
		rep.LastLSN = rec.LSN
	}
	rep.SrcTorn = reader.Torn()
	if rep.Records > 0 {
		if err := w.Commit(rep.LastLSN); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
