package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

func TestTruncateConformance(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "t")
		mustAppend(t, f, bytes.Repeat([]byte{1}, 64))
		mustAppend(t, f, bytes.Repeat([]byte{2}, 64))
		mustAppend(t, f, bytes.Repeat([]byte{3}, 64))
		if err := f.Truncate(5); err != nil { // past end: no-op
			t.Fatal(err)
		}
		if f.Blocks() != 3 {
			t.Fatalf("truncate past end changed extent to %d", f.Blocks())
		}
		if err := f.Truncate(1); err != nil {
			t.Fatal(err)
		}
		if f.Blocks() != 1 {
			t.Fatalf("blocks=%d after truncate to 1", f.Blocks())
		}
		got, err := f.ReadRaw(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 1 {
			t.Fatalf("surviving block content %d, want 1", got[0])
		}
		if _, err := f.ReadRaw(1, 1); err == nil {
			t.Fatal("read past truncated extent should fail")
		}
		// Appends resume at the shortened tail.
		pos, _ := mustAppend(t, f, bytes.Repeat([]byte{9}, 64))
		if pos != 1 {
			t.Fatalf("append after truncate at pos %d, want 1", pos)
		}
		if got, err = f.ReadRaw(1, 1); err != nil || got[0] != 9 {
			t.Fatalf("reappended block: %v %v", got, err)
		}
		if err := f.Truncate(-1); err == nil {
			t.Fatal("negative truncate should fail")
		}
	})
}

func TestRemoveConformance(t *testing.T) {
	forEachBackend(t, func(t *testing.T, sto *Store) {
		f := mustFile(t, sto, "gone")
		mustAppend(t, f, []byte("x"))
		mustFile(t, sto, "stays")
		if err := sto.Remove("gone"); err != nil {
			t.Fatal(err)
		}
		if sto.File("gone") != nil {
			t.Fatal("removed file still resolvable")
		}
		for _, n := range dataNames(sto) {
			if n == "gone" {
				t.Fatal("removed file still listed")
			}
		}
		if sto.File("stays") == nil {
			t.Fatal("unrelated file vanished")
		}
		if err := sto.Remove("never-existed"); err != nil {
			t.Fatal("removing a missing file should be a no-op:", err)
		}
		if err := sto.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRemoveSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	sto, err := OpenFileStore(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "doomed")
	mustAppend(t, f, []byte("x"))
	if err := sto.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := sto.Close(); err != nil {
		t.Fatal(err)
	}
	sto2, err := OpenFileStore(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sto2.Close()
	if sto2.File("doomed") != nil {
		t.Fatal("removed file came back after reopen")
	}
}

func TestWALAppendCommitRoundtrip(t *testing.T) {
	backend := NewSimStore(testConfig())
	w, err := CreateWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for i := 0; i < 10; i++ {
		lsns = append(lsns, w.Append(uint8(i%3), []byte(fmt.Sprintf("payload-%d", i))))
	}
	if w.DurableLSN() != 0 {
		t.Fatalf("durable before commit: %d", w.DurableLSN())
	}
	if err := w.Commit(lsns[len(lsns)-1]); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got != lsns[len(lsns)-1] {
		t.Fatalf("durable %d, want %d", got, lsns[len(lsns)-1])
	}

	_, recs, info, err := OpenWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn {
		t.Fatal("clean log reported torn")
	}
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != lsns[i] || r.Kind != uint8(i%3) || string(r.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

func TestWALMultiBatchAndLargeRecords(t *testing.T) {
	backend := NewSimStore(testConfig()) // 64-byte blocks
	w, err := CreateWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	// Several commit batches, including a record spanning many blocks.
	big := bytes.Repeat([]byte{7}, 500)
	var last uint64
	for batch := 0; batch < 5; batch++ {
		w.Append(1, []byte("small"))
		last = w.Append(2, big)
		if err := w.Commit(last); err != nil {
			t.Fatal(err)
		}
	}
	_, recs, info, err := OpenWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn || len(recs) != 10 {
		t.Fatalf("torn=%v records=%d", info.Torn, len(recs))
	}
	for i, r := range recs {
		want := []byte("small")
		if i%2 == 1 {
			want = big
		}
		if !bytes.Equal(r.Payload, want) {
			t.Fatalf("record %d payload mismatch (%d bytes)", i, len(r.Payload))
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	backend := NewSimStore(testConfig())
	w, err := CreateWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, []byte("keep-1"))
	lsn := w.Append(1, []byte("keep-2"))
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	// A second committed batch whose bytes we then damage: flip one bit in
	// the middle of the last batch, modeling a tear at rest.
	lsn = w.Append(1, bytes.Repeat([]byte{5}, 200))
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	bf := backend.Lookup("t.wal")
	blocks := bf.Blocks()
	raw, err := bf.ReadBlocks(blocks-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	dmg := append([]byte(nil), raw...)
	dmg[10] ^= 0x40
	if err := bf.WriteBlocks(blocks-1, dmg); err != nil {
		t.Fatal(err)
	}

	w2, recs, info, err := OpenWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn {
		t.Fatal("damaged tail not reported torn")
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want the 2 before the tear", len(recs))
	}
	if bf.Blocks() >= blocks {
		t.Fatalf("torn tail not truncated: %d blocks, had %d", bf.Blocks(), blocks)
	}
	// The log must keep working after tail surgery: records appended now
	// must survive another recovery alongside the old ones.
	lsn = w2.Append(3, []byte("after-recovery"))
	if err := w2.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	_, recs, info, err = OpenWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn {
		t.Fatal("log torn again after recovery + append")
	}
	if len(recs) != 3 || string(recs[2].Payload) != "after-recovery" {
		t.Fatalf("post-recovery scan: %d records", len(recs))
	}
	if recs[2].LSN <= recs[1].LSN {
		t.Fatalf("LSN not monotonic across recovery: %d then %d", recs[1].LSN, recs[2].LSN)
	}
}

func TestWALTornViaFaultStore(t *testing.T) {
	// Drive the tear through FaultStore like the kill-and-recover suite
	// does: the commit's multi-block append applies only a prefix.
	inner := NewSimStore(testConfig())
	fs := NewFaultStore(inner, FaultConfig{Seed: 42})
	w, err := CreateWAL(fs, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	lsn := w.Append(1, []byte("survives"))
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	fs.SetConfig(FaultConfig{Seed: 42, Schedule: map[int]FaultKind{fs.Ops(): FaultTorn}})
	w.Append(1, bytes.Repeat([]byte{1}, 300))
	lsn = w.Append(1, bytes.Repeat([]byte{2}, 300))
	if err := w.Commit(lsn); err == nil {
		t.Fatal("torn append should fail the commit")
	}
	// Crash here: recovery sees at most a prefix of the torn batch. The
	// acked record must survive; unacked records from the failed commit
	// may or may not (the client never got an ack either way).
	fs.SetEnabled(false)
	_, recs, info, err := OpenWAL(fs, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 1 || string(recs[0].Payload) != "survives" {
		t.Fatalf("acked record lost: recovered %d records", len(recs))
	}
	if !info.Torn {
		t.Fatal("prefix of a torn batch not reported torn")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("LSN order violated at %d", i)
		}
	}
}

func TestWALGroupCommit(t *testing.T) {
	backend := NewSimStore(testConfig())
	w, err := CreateWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	base := metricWALFsyncs.Value()
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn := w.Append(1, binary.LittleEndian.AppendUint32(nil, uint32(g*1000+i)))
				if err := w.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	fsyncs := metricWALFsyncs.Value() - base
	if fsyncs > writers*perWriter {
		t.Fatalf("%d fsyncs for %d commits", fsyncs, writers*perWriter)
	}
	_, recs, _, err := OpenWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(recs), writers*perWriter)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("LSN order violated at %d", i)
		}
	}
}

func TestWALReset(t *testing.T) {
	backend := NewSimStore(testConfig())
	w, err := CreateWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Commit(w.Append(1, []byte("x")))
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Blocks() != 0 {
		t.Fatalf("%d blocks after reset", w.Blocks())
	}
	lsn := w.Append(1, []byte("post"))
	if lsn <= 5 {
		t.Fatalf("LSN %d reused after reset", lsn)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := OpenWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != lsn {
		t.Fatalf("post-reset recovery: %+v", recs)
	}
}

func TestWALFileStoreDurability(t *testing.T) {
	dir := t.TempDir()
	backend, err := OpenFileBackend(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := CreateWAL(backend, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	lsn := w.Append(7, []byte("durable"))
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close — the fsync inside Commit must suffice.
	backend2, err := OpenFileBackend(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer backend2.Close()
	_, recs, _, err := OpenWAL(backend2, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "durable" || recs[0].Kind != 7 {
		t.Fatalf("recovered %+v", recs)
	}
}

func TestWALExemptFromChecksumSidecars(t *testing.T) {
	sto := NewSim(testConfig())
	backend := sto.Backend()
	w, err := CreateWAL(backend, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	w.Commit(w.Append(1, []byte("x")))
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	for _, n := range backend.Names() {
		if n == "iq.wal"+ChecksumSuffix {
			t.Fatal("WAL grew a checksum sidecar")
		}
	}
	// More group commits after enabling; a scrub must stay clean even
	// though the WAL is appended beneath the File wrapper.
	w.Commit(w.Append(1, []byte("y")))
	rep, err := sto.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 0 {
		t.Fatalf("scrub flagged WAL blocks: %+v", rep.Corrupt)
	}
}

func TestWALCommitAfterFailureStaysFailed(t *testing.T) {
	inner := NewSimStore(testConfig())
	fs := NewFaultStore(inner, FaultConfig{Seed: 1})
	w, err := CreateWAL(fs, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	fs.SetConfig(FaultConfig{Seed: 1, Schedule: map[int]FaultKind{fs.Ops(): FaultTorn}})
	lsn := w.Append(1, bytes.Repeat([]byte{1}, 300))
	if err := w.Commit(lsn); err == nil {
		t.Fatal("want commit failure")
	}
	fs.SetEnabled(false)
	// The flush lost buffered bytes; later commits must keep failing
	// instead of reporting durability that cannot exist.
	lsn2 := w.Append(1, []byte("after"))
	if err := w.Commit(lsn2); err == nil {
		t.Fatal("commit after failed flush must fail")
	}
	if err := w.Commit(lsn2); err == nil {
		t.Fatal("sticky error lost on retry")
	}
}
