package store

import (
	"fmt"
	"sync"
)

// BufferPool is a shared LRU cache of single blocks, keyed by (file,
// block position), with a configurable byte budget. It sits between
// sessions and the backend: many concurrent queries share hot directory
// and quantized pages, and a cache hit charges zero seek/transfer time —
// which is also how it plugs into the paper's cost model (a cached block
// has no I/O cost, only the CPU charges remain).
//
// Files can be pinned: their frames still count against the budget but
// are never evicted (pin the directory file to guarantee level-1 scans
// stay memory-resident). All methods are safe for concurrent use.
type BufferPool struct {
	mu     sync.Mutex
	budget int64
	used   int64
	frames map[frameKey]*frame
	head   *frame // most recently used
	tail   *frame // least recently used
	pinned map[string]bool

	hits      uint64
	misses    uint64
	evictions uint64
}

type frameKey struct {
	name string
	pos  int
}

type frame struct {
	key        frameKey
	data       []byte
	prev, next *frame
}

// NewBufferPool creates a pool with the given byte budget (> 0).
func NewBufferPool(budgetBytes int64) *BufferPool {
	if budgetBytes <= 0 {
		panic("store: buffer pool budget must be positive")
	}
	return &BufferPool{
		budget: budgetBytes,
		frames: make(map[frameKey]*frame),
		pinned: make(map[string]bool),
	}
}

// PoolStats is a snapshot of the pool's counters.
type PoolStats struct {
	Hits      uint64 // block lookups served from the pool
	Misses    uint64 // block lookups that went to the backend
	Evictions uint64 // frames evicted to respect the budget
	Frames    int    // resident blocks
	BytesUsed int64  // resident bytes
	Budget    int64  // configured byte budget
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (ps PoolStats) HitRate() float64 {
	total := ps.Hits + ps.Misses
	if total == 0 {
		return 0
	}
	return float64(ps.Hits) / float64(total)
}

// String formats the stats for logs.
func (ps PoolStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d frames=%d bytes=%d/%d (hit rate %.1f%%)",
		ps.Hits, ps.Misses, ps.Evictions, ps.Frames, ps.BytesUsed, ps.Budget, 100*ps.HitRate())
}

// Stats returns a snapshot of the pool's counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
		Frames:    len(p.frames),
		BytesUsed: p.used,
		Budget:    p.budget,
	}
}

// PinFile marks the named file's frames as non-evictable. They still
// count against the budget; if pinned frames alone exceed it, the pool
// runs over budget rather than evicting them.
func (p *BufferPool) PinFile(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pinned[name] = true
}

// UnpinFile makes the named file's frames evictable again.
func (p *BufferPool) UnpinFile(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.pinned, name)
	p.evictOverBudget()
}

// missRun is a maximal contiguous run of blocks absent from the pool.
type missRun struct {
	pos, n int
}

// gather copies every cached block of [pos, pos+nblocks) of the named
// file into its slot of dst (len nblocks*bs) and returns the maximal
// contiguous runs of missing blocks, in order. Hit/miss counters are
// updated here; the caller fetches the runs and hands them to insert.
func (p *BufferPool) gather(name string, pos, nblocks, bs int, dst []byte) []missRun {
	p.mu.Lock()
	defer p.mu.Unlock()
	var misses []missRun
	for i := 0; i < nblocks; i++ {
		fr, ok := p.frames[frameKey{name: name, pos: pos + i}]
		if ok {
			p.hits++
			copy(dst[i*bs:(i+1)*bs], fr.data)
			p.touch(fr)
			continue
		}
		p.misses++
		if len(misses) > 0 && misses[len(misses)-1].pos+misses[len(misses)-1].n == pos+i {
			misses[len(misses)-1].n++
		} else {
			misses = append(misses, missRun{pos: pos + i, n: 1})
		}
	}
	return misses
}

// insert caches the blocks of one fetched run (data holds n*bs bytes
// starting at block pos). Blocks are copied; a block inserted by a racing
// session in the meantime is left as is.
func (p *BufferPool) insert(name string, pos, bs int, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i*bs < len(data); i++ {
		key := frameKey{name: name, pos: pos + i}
		if fr, ok := p.frames[key]; ok {
			p.touch(fr)
			continue
		}
		fr := &frame{key: key, data: append([]byte(nil), data[i*bs:(i+1)*bs]...)}
		p.frames[key] = fr
		p.used += int64(len(fr.data))
		p.pushFront(fr)
	}
	p.evictOverBudget()
}

// Invalidate drops the frames covering [pos, pos+nblocks) of the named
// file (called on block overwrites).
func (p *BufferPool) Invalidate(name string, pos, nblocks int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < nblocks; i++ {
		if fr, ok := p.frames[frameKey{name: name, pos: pos + i}]; ok {
			p.drop(fr)
		}
	}
}

// InvalidateFile drops every frame of the named file (called on file
// truncation/replacement).
func (p *BufferPool) InvalidateFile(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for fr := p.tail; fr != nil; {
		prev := fr.prev
		if fr.key.name == name {
			p.drop(fr)
		}
		fr = prev
	}
}

// evictOverBudget evicts least-recently-used unpinned frames until the
// budget is respected (or only pinned frames remain).
func (p *BufferPool) evictOverBudget() {
	fr := p.tail
	for p.used > p.budget && fr != nil {
		prev := fr.prev
		if !p.pinned[fr.key.name] {
			p.drop(fr)
			p.evictions++
		}
		fr = prev
	}
}

// drop removes a frame from the map, the LRU list and the byte count.
func (p *BufferPool) drop(fr *frame) {
	delete(p.frames, fr.key)
	p.used -= int64(len(fr.data))
	p.unlink(fr)
}

// --- intrusive LRU list (head = most recent) ---

func (p *BufferPool) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = p.head
	if p.head != nil {
		p.head.prev = fr
	}
	p.head = fr
	if p.tail == nil {
		p.tail = fr
	}
}

func (p *BufferPool) unlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		p.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		p.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (p *BufferPool) touch(fr *frame) {
	if p.head == fr {
		return
	}
	p.unlink(fr)
	p.pushFront(fr)
}
