package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Write-ahead log. A WAL is an append-only block file of checksummed,
// length-prefixed records with group commit: any number of writers
// buffer records concurrently, and one fsync makes durable every record
// that arrived while the previous fsync was in flight. Recovery scans
// the log from the front, stops at the first frame that fails its CRC
// (or breaks LSN monotonicity), and truncates that torn tail — torn
// records are never replayed.
//
// Frame layout (little-endian), packed back to back within blocks:
//
//	[0:4)  total frame length (header + payload); 0 = block padding
//	[4:8)  CRC32C over bytes [8:length)
//	[8:16) LSN (strictly increasing from 1)
//	[16]   record kind (opaque to the store layer)
//	[17:)  payload
//
// Frames may span block boundaries within one commit batch, but every
// flushed batch is zero-padded to a whole block, so durable blocks are
// never rewritten by later appends: a torn append can only damage
// frames of the final (uncommitted) batch, which is exactly the tail
// recovery is allowed to discard. A length field of zero marks padding;
// the scanner skips to the next block boundary.
const (
	// WALSuffix names write-ahead-log files. WAL records carry their own
	// CRC32C, so checksum sidecars skip these files (see EnableChecksums).
	WALSuffix = ".wal"

	walHeaderSize = 17
)

// IsWALFile reports whether name is a write-ahead log.
func IsWALFile(name string) bool { return strings.HasSuffix(name, WALSuffix) }

// Process-wide WAL metrics on obs.Default(), so a metrics dump shows
// ingest durability health next to serving metrics.
var (
	metricWALAppends   = obs.Default().Counter("wal.appends")
	metricWALFsyncs    = obs.Default().Counter("wal.fsyncs")
	metricWALGroupSize = obs.Default().Counter("wal.group_size")
	metricWALReplays   = obs.Default().Counter("wal.replays")
	histWALGroupCommit = obs.Default().Histogram("wal.group_commit_batch")
)

// WALRecord is one recovered log record.
type WALRecord struct {
	LSN     uint64
	Kind    uint8
	Payload []byte
}

// WALInfo summarizes a scan of the log.
type WALInfo struct {
	Records  int    `json:"records"`
	FirstLSN uint64 `json:"first_lsn,omitempty"`
	LastLSN  uint64 `json:"last_lsn,omitempty"`
	Blocks   int    `json:"blocks"`
	// Torn reports that the scan stopped at a damaged frame before the
	// end of the file; TornBlocks is the extent of the discarded tail.
	Torn       bool `json:"torn,omitempty"`
	TornBlocks int  `json:"torn_blocks,omitempty"`
}

// WAL is a group-commit write-ahead log over one backend block file.
type WAL struct {
	bf      BlockFile
	bs      int
	backend BlockStore // fsynced on commit

	// syncMu is the group-commit leader lock: the first committer to
	// take it flushes and fsyncs every record buffered so far; commits
	// that queued behind it find their LSN already durable and return
	// without a second fsync.
	syncMu sync.Mutex

	mu       sync.Mutex
	nextLSN  uint64
	appended uint64 // highest LSN buffered (or flushed)
	pending  []byte // frames not yet written to the backend
	pendRecs int    // records currently in pending
	err      error  // sticky: a failed flush loses buffered records

	durable atomic.Uint64 // highest LSN known to be on stable storage
}

// walScan parses the raw log bytes. It returns the valid records, the
// byte offset one past the last valid frame, and whether the remainder
// is a torn tail (any non-padding bytes after that offset).
func walScan(raw []byte, bs int) (recs []WALRecord, goodEnd int, torn bool) {
	le := binary.LittleEndian
	off := 0
	var lastLSN uint64
	for off < len(raw) {
		if len(raw)-off < 4 {
			// Tail shorter than a length field: must be padding.
			for ; off < len(raw); off++ {
				if raw[off] != 0 {
					return recs, goodEnd, true
				}
			}
			goodEnd = off
			break
		}
		length := int(le.Uint32(raw[off:]))
		if length == 0 { // padding: skip to the next block boundary
			pad := bs - off%bs
			for i := 0; i < pad; i++ {
				if raw[off+i] != 0 {
					return recs, goodEnd, true
				}
			}
			off += pad
			goodEnd = off
			continue
		}
		if length < walHeaderSize || off+length > len(raw) {
			return recs, goodEnd, true
		}
		frame := raw[off : off+length]
		if crc32.Checksum(frame[8:], castagnoli) != le.Uint32(frame[4:]) {
			return recs, goodEnd, true
		}
		lsn := le.Uint64(frame[8:])
		if lsn <= lastLSN {
			return recs, goodEnd, true
		}
		lastLSN = lsn
		recs = append(recs, WALRecord{
			LSN:     lsn,
			Kind:    frame[16],
			Payload: append([]byte(nil), frame[walHeaderSize:length]...),
		})
		off += length
		goodEnd = off
	}
	return recs, goodEnd, false
}

// walInfoOf summarizes a scan result.
func walInfoOf(recs []WALRecord, blocks int, torn bool, goodBlocks int) WALInfo {
	info := WALInfo{Records: len(recs), Blocks: blocks, Torn: torn}
	if len(recs) > 0 {
		info.FirstLSN = recs[0].LSN
		info.LastLSN = recs[len(recs)-1].LSN
	}
	if torn {
		info.TornBlocks = blocks - goodBlocks
	}
	return info
}

// InspectWAL scans the named log read-only: no truncation, no replay
// bookkeeping. Missing file means an empty, healthy log.
func InspectWAL(backend BlockStore, name string) (WALInfo, []WALRecord, error) {
	bs := backend.Config().BlockSize
	bf := backend.Lookup(name)
	if bf == nil || bf.Blocks() == 0 {
		return WALInfo{}, nil, nil
	}
	raw, err := bf.ReadBlocks(0, bf.Blocks())
	if err != nil {
		return WALInfo{}, nil, fmt.Errorf("store: read WAL %s: %w", name, err)
	}
	recs, goodEnd, torn := walScan(raw, bs)
	goodBlocks := (goodEnd + bs - 1) / bs
	return walInfoOf(recs, bf.Blocks(), torn, goodBlocks), recs, nil
}

// CreateWAL creates (or truncates) the named log.
func CreateWAL(backend BlockStore, name string) (*WAL, error) {
	bf, err := backend.Create(name)
	if err != nil {
		return nil, fmt.Errorf("store: create WAL %s: %w", name, err)
	}
	return &WAL{bf: bf, bs: backend.Config().BlockSize, backend: backend, nextLSN: 1}, nil
}

// OpenWAL opens the named log (creating it if absent), truncates any
// torn tail, and returns the surviving records for the caller to replay.
// The returned WAL resumes LSN assignment after the last valid record.
func OpenWAL(backend BlockStore, name string) (*WAL, []WALRecord, WALInfo, error) {
	bs := backend.Config().BlockSize
	bf := backend.Lookup(name)
	if bf == nil {
		w, err := CreateWAL(backend, name)
		return w, nil, WALInfo{}, err
	}
	var raw []byte
	if bf.Blocks() > 0 {
		var err error
		if raw, err = bf.ReadBlocks(0, bf.Blocks()); err != nil {
			return nil, nil, WALInfo{}, fmt.Errorf("store: read WAL %s: %w", name, err)
		}
	}
	recs, goodEnd, torn := walScan(raw, bs)
	goodBlocks := (goodEnd + bs - 1) / bs
	info := walInfoOf(recs, bf.Blocks(), torn, goodBlocks)
	if torn {
		if err := bf.Truncate(goodBlocks); err != nil {
			return nil, nil, WALInfo{}, fmt.Errorf("store: truncate torn WAL %s: %w", name, err)
		}
		if tail := goodEnd % bs; tail != 0 {
			// The last kept block carries both the final valid frames and
			// the head of the torn one. Zero everything past the last valid
			// frame so later scans read it as padding instead of stopping
			// there and orphaning records appended after this recovery.
			clean := make([]byte, bs)
			copy(clean, raw[(goodBlocks-1)*bs:(goodBlocks-1)*bs+tail])
			if err := bf.WriteBlocks(goodBlocks-1, clean); err != nil {
				return nil, nil, WALInfo{}, fmt.Errorf("store: scrub torn WAL tail %s: %w", name, err)
			}
		}
	}
	var last uint64
	if len(recs) > 0 {
		last = recs[len(recs)-1].LSN
	}
	w := &WAL{bf: bf, bs: bs, backend: backend, nextLSN: last + 1, appended: last}
	w.durable.Store(last)
	metricWALReplays.Add(int64(len(recs)))
	return w, recs, info, nil
}

// encodeWALFrame serializes one record into its on-disk frame.
func encodeWALFrame(lsn uint64, kind uint8, payload []byte) []byte {
	length := walHeaderSize + len(payload)
	frame := make([]byte, length)
	le := binary.LittleEndian
	le.PutUint32(frame[0:], uint32(length))
	le.PutUint64(frame[8:], lsn)
	frame[16] = kind
	copy(frame[walHeaderSize:], payload)
	le.PutUint32(frame[4:], crc32.Checksum(frame[8:], castagnoli))
	return frame
}

// Append buffers one record and returns its LSN. The record is NOT
// durable until a Commit covering the LSN returns; callers must not
// acknowledge the mutation before then. Appends never block on I/O.
func (w *WAL) Append(kind uint8, payload []byte) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.nextLSN
	w.nextLSN++
	w.pending = append(w.pending, encodeWALFrame(lsn, kind, payload)...)
	w.pendRecs++
	w.appended = lsn
	metricWALAppends.Inc()
	return lsn
}

// AppendRecord buffers a record that already carries its LSN — the
// shipping path, which transplants frames from a source log while
// preserving the source's LSN sequence so checkpoint watermarks keep
// lining up on the destination. The LSN must advance past everything
// appended so far; LSN assignment resumes after it. Like Append, the
// record is not durable until a covering Commit returns.
func (w *WAL) AppendRecord(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if rec.LSN <= w.appended {
		return fmt.Errorf("store: shipped LSN %d not after appended %d", rec.LSN, w.appended)
	}
	w.pending = append(w.pending, encodeWALFrame(rec.LSN, rec.Kind, rec.Payload)...)
	w.pendRecs++
	w.appended = rec.LSN
	w.nextLSN = rec.LSN + 1
	metricWALAppends.Inc()
	return nil
}

// ReadFrom returns a streaming reader over the log's flushed extent that
// yields records with LSN strictly greater than lsn. Records still
// buffered (appended but not yet flushed by a Commit) are not visible.
func (w *WAL) ReadFrom(lsn uint64) *WALReader {
	return &WALReader{bf: w.bf, bs: w.bs, end: w.bf.Blocks(), from: lsn}
}

// Commit makes every record up to and including lsn durable, group-wise:
// if the LSN is already durable (a concurrent committer's fsync covered
// it) Commit returns immediately; otherwise the caller becomes the
// leader, flushing and fsyncing everything buffered so far — including
// records appended by writers now queued behind it.
func (w *WAL) Commit(lsn uint64) error {
	if w.durable.Load() >= lsn {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.durable.Load() >= lsn {
		return nil
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	batch := w.pending
	w.pending = nil
	target := w.appended
	n := w.pendRecs
	w.pendRecs = 0
	w.mu.Unlock()
	if len(batch) > 0 {
		// Zero-pad to a whole block so durable blocks are never rewritten:
		// the next batch starts on a fresh block boundary.
		if rem := len(batch) % w.bs; rem != 0 {
			batch = append(batch, make([]byte, w.bs-rem)...)
		}
		if _, _, err := w.bf.Append(batch); err != nil {
			return w.fail(fmt.Errorf("store: WAL append: %w", err))
		}
	}
	if err := w.backend.Sync(); err != nil {
		return w.fail(fmt.Errorf("store: WAL fsync: %w", err))
	}
	metricWALFsyncs.Inc()
	if n > 0 {
		metricWALGroupSize.Add(int64(n))
		histWALGroupCommit.Observe(float64(n))
	}
	w.durable.Store(target)
	return nil
}

// fail poisons the WAL: a failed flush may have lost buffered records,
// so no later commit can be trusted to cover earlier LSNs.
func (w *WAL) fail(err error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Reset truncates the log after a checkpoint: every buffered or logged
// record is considered durable via the checkpoint, so the file restarts
// empty while LSN assignment keeps counting up (recovery relies on
// monotonic LSNs to pair a checkpoint with the records that follow it).
// Callers must have made all state covered by LSNs ≤ the current append
// watermark durable before calling.
func (w *WAL) Reset() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	w.pending = nil
	w.pendRecs = 0
	target := w.appended
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if serr := w.bf.SetContents(nil); serr != nil {
		return w.fail(fmt.Errorf("store: WAL reset: %w", serr))
	}
	w.durable.Store(target)
	return nil
}

// DurableLSN returns the highest LSN known durable.
func (w *WAL) DurableLSN() uint64 { return w.durable.Load() }

// AppendedLSN returns the highest LSN assigned so far.
func (w *WAL) AppendedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Blocks returns the current on-disk extent of the log (buffered records
// not yet flushed are excluded) — the signal auto-checkpoint thresholds
// watch.
func (w *WAL) Blocks() int { return w.bf.Blocks() }

// Name returns the log's file name.
func (w *WAL) Name() string { return w.bf.Name() }
