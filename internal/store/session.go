package store

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Session is one query's view of the store. It tracks the head position
// and accumulates Stats; when the store has a buffer pool attached, reads
// are served from it block by block and only the missing runs are charged
// and fetched from the backend.
//
// A Session is not safe for concurrent use; run one per goroutine (many
// concurrent sessions may share one store and its pool). Instead of
// panicking on I/O failure, a session carries a sticky error: the first
// failed read poisons it, every later read returns the same error, and
// Err exposes it for boundary checks.
type Session struct {
	st      *Store
	pool    *BufferPool // captured at creation; nil = uncached
	cur     *File       // file under the head
	head    int         // next block under the head within cur
	started bool
	Stats   Stats
	perFile map[string]*Stats
	obs     obs.Observer    // nil = no observation (the common case)
	ctx     context.Context // nil = never canceled
	retry   RetryPolicy     // captured from the store at creation/Reset
	err     error

	// scratch is an opaque slot for query-layer scratch state (reusable
	// buffers, arenas) that must follow the session through pooled reuse.
	// It survives Reset: scratch holders are responsible for their own
	// per-query re-initialization.
	scratch any
}

// Scratch returns the session's scratch slot (nil until SetScratch).
func (s *Session) Scratch() any { return s.scratch }

// SetScratch stores an opaque scratch value on the session. The slot
// survives Reset, so query layers can keep warmed buffers across pooled
// queries.
func (s *Session) SetScratch(v any) { s.scratch = v }

// SetObserver attaches an observer that receives every cost event the
// session charges (and the zero-cost buffer-pool hits). Pass nil to
// detach. The typical observer is an *obs.QueryTrace; with none attached
// the charge paths pay a single nil check.
func (s *Session) SetObserver(o obs.Observer) { s.obs = o }

// Observer returns the currently attached observer (nil if none).
func (s *Session) Observer() obs.Observer { return s.obs }

// SetContext attaches a context to the session: every Read checks it
// first and fails with an error wrapping both ErrCanceled and the
// context's cause once it is done. Page fetches are the unit of work of
// a query, so this bounds how long a canceled query keeps running. Pass
// nil to detach.
func (s *Session) SetContext(ctx context.Context) { s.ctx = ctx }

// Context returns the attached context (nil if none).
func (s *Session) Context() context.Context { return s.ctx }

// Err returns the session's sticky error: the first read that failed, or
// nil. Query code that ignores per-read errors must check it before
// trusting the (possibly partial) results.
func (s *Session) Err() error { return s.err }

// Recover clears the session's sticky error so a caller with its own
// recovery path (e.g. the index layer quarantining a corrupt page and
// answering from the exact level) can continue the query. The charges
// accumulated so far are kept — recovery is degraded cost, not free.
func (s *Session) Recover() { s.err = nil }

// Reset returns the session to its freshly created state so it can be
// reused for another query: the sticky error, aggregate and per-file
// stats, head position, and observer are all cleared, and the store's
// current buffer pool is re-captured (a pool attached after the session
// was created becomes visible). The scratch slot and the per-file map's
// backing storage are kept (values are zeroed in place) so pooled reuse
// reaches a zero-allocation steady state. Pooled reuse (e.g. by the
// query engine's workers) must Reset between queries or one query's
// failure and charges leak into the next.
func (s *Session) Reset() {
	s.pool = s.st.Pool()
	s.cur = nil
	s.head = 0
	s.started = false
	s.Stats = Stats{}
	for _, st := range s.perFile {
		*st = Stats{}
	}
	s.obs = nil
	s.ctx = nil
	s.retry = s.st.retryPolicy()
	s.err = nil
}

// fail records err as the session's sticky error (first one wins) and
// returns it.
func (s *Session) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

// FileStats returns the session's charges attributed to the named file,
// including CPU attributed via the Charge*CPU file argument. The zero
// Stats is returned for untouched files. For the IQ-tree this decomposes
// a query into the paper's T1st/T2nd/T3rd components; CPU charged with a
// nil file (unattributed) appears only in the session's aggregate Stats.
func (s *Session) FileStats(name string) Stats {
	if st, ok := s.perFile[name]; ok {
		return *st
	}
	return Stats{}
}

// fileStats returns (creating if needed) the per-file accumulator.
func (s *Session) fileStats(name string) *Stats {
	if s.perFile == nil {
		s.perFile = make(map[string]*Stats, 4)
	}
	st, ok := s.perFile[name]
	if !ok {
		st = &Stats{}
		s.perFile[name] = st
	}
	return st
}

// chargeFile attributes one read to a file.
func (s *Session) chargeFile(name string, seeks, blocks int) {
	st := s.fileStats(name)
	st.Seeks += seeks
	st.BlocksRead += blocks
	st.Reads++
}

// charge bills one contiguous backend read and moves the head: a seek is
// charged unless the head is already at (f, pos). tier tells an attached
// observer whether the read went straight to the backend or filled a
// buffer-pool miss.
func (s *Session) charge(f *File, pos, nblocks int, tier obs.ReadTier) {
	seeks := 0
	if !s.started || s.cur != f || s.head != pos {
		seeks = 1
	}
	s.started = true
	s.Stats.Seeks += seeks
	s.Stats.BlocksRead += nblocks
	s.Stats.Reads++
	s.chargeFile(f.Name(), seeks, nblocks)
	s.cur = f
	s.head = pos + nblocks
	if s.obs != nil {
		s.obs.ObserveRead(f.Name(), seeks, nblocks, tier)
	}
}

// ChargeWrite bills one charged write operation against file f: seeks
// seeks plus blocks transferred, attributed to the file and reported to
// any observer. Maintenance paths (page rewrites) use it so updates show
// up in the same per-file decomposition as reads. The head position is
// left untouched: the simulated cost model bills every write a full
// seek, matching the historical accounting.
func (s *Session) ChargeWrite(f *File, seeks, blocks int) {
	s.Stats.Seeks += seeks
	s.Stats.BlocksRead += blocks
	if f != nil {
		st := s.fileStats(f.Name())
		st.Seeks += seeks
		st.BlocksRead += blocks
	}
	if s.obs != nil {
		name := ""
		if f != nil {
			name = f.Name()
		}
		s.obs.ObserveWrite(name, seeks, blocks)
	}
}

// Read transfers nblocks starting at block pos of file f and returns the
// raw bytes. Without a pool it charges a seek unless the head is already
// at (f, pos); with a pool, cached blocks charge nothing and only the
// missing runs are fetched (and billed) from the backend. The returned
// slice must not be mutated.
func (s *Session) Read(f *File, pos, nblocks int) ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.ctx != nil {
		if cerr := s.ctx.Err(); cerr != nil {
			return nil, s.fail(fmt.Errorf("%w: %w", ErrCanceled, cerr))
		}
	}
	if f == nil {
		return nil, s.fail(errors.New("store: read from nil file"))
	}
	if nblocks <= 0 {
		return nil, s.fail(fmt.Errorf("store: read of %d blocks from %s", nblocks, f.Name()))
	}
	if pos < 0 || pos+nblocks > f.Blocks() {
		return nil, s.fail(fmt.Errorf("store: read past end of %s: pos=%d n=%d blocks=%d",
			f.Name(), pos, nblocks, f.Blocks()))
	}
	if s.pool == nil {
		data, err := s.backendRead(f, pos, nblocks)
		if err != nil {
			return nil, s.fail(fmt.Errorf("store: read %s [%d,+%d): %w", f.Name(), pos, nblocks, err))
		}
		s.charge(f, pos, nblocks, obs.ReadBackend)
		return data, nil
	}
	return s.readPooled(f, pos, nblocks)
}

// backendRead fetches one contiguous run from the backend, retrying
// transient failures under the session's retry policy and verifying the
// result against the checksum sidecar (when enabled) before anyone —
// including the buffer pool — sees the bytes. Checksum failures are
// never retried: the corruption is at rest, and re-reading the same
// damaged block would only mask a latent error as a flaky one.
func (s *Session) backendRead(f *File, pos, nblocks int) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		data, err := f.bf.ReadBlocks(pos, nblocks)
		if err == nil {
			if verr := f.verifyBlocks(pos, data, nblocks); verr != nil {
				return nil, verr
			}
			return data, nil
		}
		if !IsTransient(err) || attempt >= s.retry.MaxRetries {
			if IsTransient(err) {
				metricRetriesExhausted.Inc()
			}
			return nil, err
		}
		metricReadRetries.Inc()
		if d := s.retry.delay(attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// readPooled assembles the requested range from pool frames plus backend
// reads for the missing runs. Each miss run is charged like an uncached
// read (head tracking included); hits charge zero seek/transfer and are
// reported to an attached observer as ReadPoolHit.
func (s *Session) readPooled(f *File, pos, nblocks int) ([]byte, error) {
	bs := s.st.Config().BlockSize
	dst := make([]byte, nblocks*bs)
	misses := s.pool.gather(f.Name(), pos, nblocks, bs, dst)
	missed := 0
	for _, run := range misses {
		data, err := s.backendRead(f, run.pos, run.n)
		if err != nil {
			return nil, s.fail(fmt.Errorf("store: read %s [%d,+%d): %w", f.Name(), run.pos, run.n, err))
		}
		copy(dst[(run.pos-pos)*bs:], data[:run.n*bs])
		s.charge(f, run.pos, run.n, obs.ReadPoolMiss)
		s.pool.insert(f.Name(), run.pos, bs, data[:run.n*bs])
		missed += run.n
	}
	if s.obs != nil && missed < nblocks {
		s.obs.ObserveRead(f.Name(), 0, nblocks-missed, obs.ReadPoolHit)
	}
	return dst, nil
}

// NoteShared reports to the session's observer that nblocks blocks of
// file f were consumed from another session's fetch (scan sharing).
// Nothing is charged — the leader session paid the seek and transfer —
// so aggregate Stats, per-file stats, and the head position are all left
// untouched, and trace totals keep matching Stats exactly.
func (s *Session) NoteShared(f *File, nblocks int) {
	if s.obs != nil && f != nil && nblocks > 0 {
		s.obs.ObserveRead(f.Name(), 0, nblocks, obs.ReadShared)
	}
}

// ReadRange transfers the blocks covering the byte range [off, off+n) of
// file f and returns those blocks plus the offset of the range within the
// returned slice.
func (s *Session) ReadRange(f *File, off, n int) (data []byte, rel int, err error) {
	bs := s.st.Config().BlockSize
	first := off / bs
	last := (off + n - 1) / bs
	blk, err := s.Read(f, first, last-first+1)
	if err != nil {
		return nil, 0, err
	}
	return blk, off - first*bs, nil
}

// chargeCPU adds seconds to the aggregate and, when f is non-nil, to the
// file's decomposition, reporting the charge to any observer.
func (s *Session) chargeCPU(f *File, kind obs.CPUKind, seconds float64) {
	s.Stats.CPUSeconds += seconds
	name := ""
	if f != nil {
		name = f.Name()
		s.fileStats(name).CPUSeconds += seconds
	}
	if s.obs != nil {
		s.obs.ObserveCPU(name, kind, seconds)
	}
}

// ChargeCPU adds raw CPU seconds to the session, attributed to file f
// (nil = aggregate only).
func (s *Session) ChargeCPU(f *File, seconds float64) {
	s.chargeCPU(f, obs.CPUOther, seconds)
}

// ChargeDistCPU charges the CPU cost of n exact distance computations in
// dim dimensions, attributed to file f — conventionally the file whose
// blocks produced the points being compared (nil = aggregate only).
func (s *Session) ChargeDistCPU(f *File, dim, n int) {
	s.chargeCPU(f, obs.CPUDist, s.st.Config().DistCPU*float64(dim)*float64(n))
}

// ChargeApproxCPU charges the CPU cost of decoding and bounding n
// quantized approximations in dim dimensions, attributed to file f
// (nil = aggregate only).
func (s *Session) ChargeApproxCPU(f *File, dim, n int) {
	s.chargeCPU(f, obs.CPUApprox, s.st.Config().ApproxCPU*float64(dim)*float64(n))
}

// Time returns the session's total simulated time so far, in seconds.
func (s *Session) Time() float64 { return s.Stats.Time(s.st.Config()) }
