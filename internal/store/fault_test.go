package store

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=7,read=0.02,write=0.01,flip=0.005,torn=0.001,latency=0.01:200us")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.ReadErr != 0.02 || cfg.WriteErr != 0.01 ||
		cfg.Flip != 0.005 || cfg.Torn != 0.001 || cfg.Latency != 0.01 ||
		cfg.LatencyDur != 200*time.Microsecond {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg, err := ParseFaultSpec(""); err != nil || cfg.ReadErr != 0 || cfg.Seed != 0 {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
	if cfg, err := ParseFaultSpec("latency=0.5"); err != nil || cfg.LatencyDur != time.Millisecond {
		t.Fatalf("default latency duration: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"read", "read=2", "bogus=1", "seed=x", "latency=0.1:xx"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}

// TestFaultDeterminism: the same seed injects the same faults at the
// same operations.
func TestFaultDeterminism(t *testing.T) {
	run := func() (map[FaultKind]int, []error) {
		fs := NewFaultStore(NewSimStore(testConfig()), FaultConfig{Seed: 42, ReadErr: 0.3, Flip: 0.2})
		bf, err := fs.Create("t")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := bf.Append(bytes.Repeat([]byte{9}, 64*8)); err != nil {
			t.Fatal(err)
		}
		var errs []error
		for i := 0; i < 50; i++ {
			_, err := bf.ReadBlocks(i%8, 1)
			errs = append(errs, err)
		}
		return fs.Injected(), errs
	}
	inj1, errs1 := run()
	inj2, errs2 := run()
	if len(inj1) == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
	for k, v := range inj1 {
		if inj2[k] != v {
			t.Fatalf("tallies differ for %s: %d vs %d", k, v, inj2[k])
		}
	}
	for i := range errs1 {
		if (errs1[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("op %d: error presence differs", i)
		}
	}
}

// TestFaultTransientReadRetried: the session retry policy absorbs
// scheduled transient read errors — the caller sees clean data.
func TestFaultTransientReadRetried(t *testing.T) {
	fs := NewFaultStore(NewSimStore(testConfig()), FaultConfig{
		Schedule: map[int]FaultKind{2: FaultReadErr}, // ops 0,1 = append+read? placed below
	})
	sto := Wrap(fs)
	f := mustFile(t, sto, "t")
	payload := bytes.Repeat([]byte{3}, 64)
	mustAppend(t, f, payload) // op 0 (append)
	before := metricReadRetries.Value()

	s := sto.NewSession()
	if _, err := s.Read(f, 0, 1); err != nil { // op 1: clean
		t.Fatal(err)
	}
	got, err := s.Read(f, 0, 1) // op 2: injected transient, op 3: retry succeeds
	if err != nil {
		t.Fatalf("transient fault should be retried away: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("retried read returned wrong bytes")
	}
	if metricReadRetries.Value() <= before {
		t.Fatal("retry metric did not move")
	}
}

// TestFaultTransientWriteRetried: File mutations retry transient write
// faults under the store policy.
func TestFaultTransientWriteRetried(t *testing.T) {
	fs := NewFaultStore(NewSimStore(testConfig()), FaultConfig{
		Schedule: map[int]FaultKind{0: FaultWriteErr},
	})
	sto := Wrap(fs)
	f := mustFile(t, sto, "t")
	if _, _, err := f.Append(bytes.Repeat([]byte{5}, 64)); err != nil { // op 0 fails, op 1 retried
		t.Fatalf("transient append should be retried away: %v", err)
	}
	if got, err := f.ReadRaw(0, 1); err != nil || got[0] != 5 {
		t.Fatalf("after retried append: %v", err)
	}
	if sto.Err() != nil {
		t.Fatalf("store poisoned by a retried fault: %v", sto.Err())
	}
}

// TestFaultRetriesExhausted: a persistently failing operation surfaces
// its error after the bounded retries, and the exhaustion is counted.
func TestFaultRetriesExhausted(t *testing.T) {
	sched := make(map[int]FaultKind)
	for i := 0; i < 32; i++ {
		sched[i] = FaultReadErr
	}
	fs := NewFaultStore(NewSimStore(testConfig()), FaultConfig{Schedule: sched})
	fs.SetEnabled(false)
	sto := Wrap(fs)
	sto.SetRetryPolicy(RetryPolicy{MaxRetries: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	f := mustFile(t, sto, "t")
	mustAppend(t, f, make([]byte, 64))
	fs.SetEnabled(true)

	before := metricRetriesExhausted.Value()
	if _, err := sto.NewSession().Read(f, 0, 1); !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retries should surface the transient error, got %v", err)
	}
	if metricRetriesExhausted.Value() <= before {
		t.Fatal("exhaustion metric did not move")
	}
}

// TestFaultFlipCaughtByChecksums is the tentpole contract: an injected
// at-rest bit flip is caught by the checksum layer and never returned
// as valid data.
func TestFaultFlipCaughtByChecksums(t *testing.T) {
	fs := NewFaultStore(NewSimStore(testConfig()), FaultConfig{})
	sto := Wrap(fs)
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "t")
	mustAppend(t, f, bytes.Repeat([]byte{0xEE}, 64*4))

	fs.SetConfig(FaultConfig{Schedule: map[int]FaultKind{fs.Ops(): FaultFlip}})
	_, err := sto.NewSession().Read(f, 0, 4)
	var cbe *CorruptBlockError
	if !errors.As(err, &cbe) {
		t.Fatalf("flip not caught by checksums: %v", err)
	}
	// The flip persisted at rest: a scrub finds exactly one bad block.
	rep, err := sto.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0].File != "t" || rep.Corrupt[0].Block != cbe.Block {
		t.Fatalf("scrub after flip: %+v (read reported block %d)", rep.Corrupt, cbe.Block)
	}
}

// TestFaultTornWrite: a torn multi-block append applies a prefix and
// fails permanently — no retry masks it — and the checksum layer
// refuses the half-written tail.
func TestFaultTornWrite(t *testing.T) {
	fs := NewFaultStore(NewSimStore(testConfig()), FaultConfig{})
	sto := Wrap(fs)
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "t")
	mustAppend(t, f, bytes.Repeat([]byte{1}, 64)) // block 0: intact

	retriesBefore := metricWriteRetries.Value()
	fs.SetConfig(FaultConfig{Schedule: map[int]FaultKind{fs.Ops(): FaultTorn}})
	_, _, err := f.Append(bytes.Repeat([]byte{2}, 64*4))
	if err == nil {
		t.Fatal("torn append should fail")
	}
	if errors.Is(err, ErrTransient) {
		t.Fatal("torn writes must be permanent, not transient")
	}
	if metricWriteRetries.Value() != retriesBefore {
		t.Fatal("a permanent torn write must not be retried")
	}
	if sto.Err() == nil {
		t.Fatal("torn write should poison the store")
	}
	// The surviving prefix has no recorded sums, so it reads back as
	// corruption, never as trusted data.
	if f.Blocks() > 1 {
		_, rerr := sto.NewSession().Read(f, 1, 1)
		var cbe *CorruptBlockError
		if !errors.As(rerr, &cbe) {
			t.Fatalf("torn tail read should fail checksum, got %v", rerr)
		}
	}
	// Block 0 is still intact and verified.
	if got, err := sto.NewSession().Read(f, 0, 1); err != nil || got[0] != 1 {
		t.Fatalf("intact prefix: %v", err)
	}
}

// TestFaultDisabledIsPassthrough: with injection off the wrapper is
// invisible.
func TestFaultDisabledIsPassthrough(t *testing.T) {
	fs := NewFaultStore(NewSimStore(testConfig()), FaultConfig{Seed: 3, ReadErr: 1})
	fs.SetEnabled(false)
	sto := Wrap(fs)
	f := mustFile(t, sto, "t")
	mustAppend(t, f, bytes.Repeat([]byte{4}, 64))
	if _, err := sto.NewSession().Read(f, 0, 1); err != nil {
		t.Fatalf("disabled faults should pass through: %v", err)
	}
	if fs.InjectedTotal() != 0 {
		t.Fatalf("disabled wrapper injected %d faults", fs.InjectedTotal())
	}
	if fs.Ops() == 0 {
		t.Fatal("op counter should keep running while disabled")
	}
}
