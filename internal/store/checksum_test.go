package store

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// corrupt flips one bit of the named file's block pos directly on the
// backend, below the checksum layer — at-rest damage the sidecar knows
// nothing about.
func corrupt(t *testing.T, sto *Store, name string, pos int, bit int) {
	t.Helper()
	bf := sto.Backend().Lookup(name)
	if bf == nil {
		t.Fatalf("no backend file %s", name)
	}
	data, err := bf.ReadBlocks(pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[bit/8] ^= 1 << (bit % 8)
	if err := bf.WriteBlocks(pos, mut); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumCatchesBitFlip(t *testing.T) {
	sto := NewSim(testConfig())
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "data")
	mustAppend(t, f, bytes.Repeat([]byte{0x5A}, 200))

	// Clean read passes verification.
	if _, err := sto.NewSession().Read(f, 0, 4); err != nil {
		t.Fatal(err)
	}

	corrupt(t, sto, "data", 2, 13)
	_, err := sto.NewSession().Read(f, 0, 4)
	var cbe *CorruptBlockError
	if !errors.As(err, &cbe) {
		t.Fatalf("flipped bit not caught: %v", err)
	}
	if cbe.File != "data" || cbe.Block != 2 || cbe.Unverifiable {
		t.Fatalf("wrong corruption location: %+v", cbe)
	}
	// Undamaged blocks still read fine.
	if _, err := sto.NewSession().Read(f, 0, 2); err != nil {
		t.Fatalf("undamaged blocks should verify: %v", err)
	}
}

// TestChecksumVerifiesBeforeCaching: a corrupt block must never be
// inserted into the buffer pool — a later read may not silently hit a
// poisoned frame.
func TestChecksumVerifiesBeforeCaching(t *testing.T) {
	sto := NewSim(testConfig())
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	sto.SetCache(1 << 20)
	f := mustFile(t, sto, "data")
	mustAppend(t, f, bytes.Repeat([]byte{1}, 64))
	corrupt(t, sto, "data", 0, 0)
	if _, err := sto.NewSession().Read(f, 0, 1); err == nil {
		t.Fatal("corrupt read should fail")
	}
	// The failed read must not have populated the pool: the next read
	// must fail again, not serve stale corrupt bytes as a cache hit.
	s := sto.NewSession()
	if _, err := s.Read(f, 0, 1); err == nil {
		t.Fatal("corrupt block was cached by the failed read")
	}
}

// TestChecksumWriteThrough: every mutation path keeps the sums current.
func TestChecksumWriteThrough(t *testing.T) {
	sto := NewSim(testConfig())
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "data")
	mustAppend(t, f, bytes.Repeat([]byte{1}, 130))
	if err := f.WriteBlocks(1, bytes.Repeat([]byte{2}, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := sto.NewSession().Read(f, 0, 3); err != nil {
		t.Fatalf("after WriteBlocks: %v", err)
	}
	if err := f.SetContents(bytes.Repeat([]byte{3}, 65)); err != nil {
		t.Fatal(err)
	}
	if _, err := sto.NewSession().Read(f, 0, 2); err != nil {
		t.Fatalf("after SetContents: %v", err)
	}
}

// TestChecksumLegacyAdoption: enabling checksums on a store with
// existing un-summed files computes sums from current content, and the
// sidecars persist across a file-backend reopen.
func TestChecksumLegacyAdoption(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	sto, err := OpenFileStore(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCD}, 200)
	mustAppend(t, mustFile(t, sto, "legacy"), payload)
	if err := sto.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the legacy store with checksums: content is adopted as-is.
	sto2, err := OpenFileStore(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sto2.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	f := sto2.File("legacy")
	got, err := sto2.NewSession().Read(f, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:200], payload) {
		t.Fatal("adopted content mismatch")
	}
	if err := sto2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third open: the persisted sidecar is loaded (not recomputed), so
	// damage inflicted while the store was down is caught.
	if sto3, err := OpenFileStore(dir, cfg); err != nil {
		t.Fatal(err)
	} else {
		if err := sto3.EnableChecksums(); err != nil {
			t.Fatal(err)
		}
		corrupt(t, sto3, "legacy", 1, 7)
		_, err := sto3.NewSession().Read(sto3.File("legacy"), 0, 4)
		var cbe *CorruptBlockError
		if !errors.As(err, &cbe) || cbe.Block != 1 {
			t.Fatalf("offline damage not caught from persisted sidecar: %v", err)
		}
		sto3.Close()
	}
}

// TestScrubLocalizesDamage: the scrub reports exactly the damaged
// blocks, file by file.
func TestScrubLocalizesDamage(t *testing.T) {
	sto := NewSim(testConfig())
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	a := mustFile(t, sto, "a")
	b := mustFile(t, sto, "b")
	mustAppend(t, a, bytes.Repeat([]byte{1}, 64*4))
	mustAppend(t, b, bytes.Repeat([]byte{2}, 64*3))

	rep, err := sto.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksChecked != 7 || len(rep.Corrupt) != 0 {
		t.Fatalf("clean scrub: %+v", rep)
	}

	corrupt(t, sto, "a", 3, 100)
	corrupt(t, sto, "b", 0, 5)
	rep, err = sto.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	want := []CorruptBlock{{File: "a", Block: 3}, {File: "b", Block: 0}}
	if len(rep.Corrupt) != 2 || rep.Corrupt[0] != want[0] || rep.Corrupt[1] != want[1] {
		t.Fatalf("scrub localization: got %+v, want %+v", rep.Corrupt, want)
	}
}

// TestChecksumUnverifiableTail: data blocks beyond the recorded sums
// (the crash window between data write and sidecar write) read back as
// Unverifiable, never as trusted.
func TestChecksumUnverifiableTail(t *testing.T) {
	sto := NewSim(testConfig())
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "data")
	mustAppend(t, f, make([]byte, 64))
	// Grow the data file below the File layer: no sums get recorded.
	if _, _, err := sto.Backend().Lookup("data").Append(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, err := sto.NewSession().Read(f, 1, 1)
	var cbe *CorruptBlockError
	if !errors.As(err, &cbe) || !cbe.Unverifiable {
		t.Fatalf("unrecorded tail should be Unverifiable: %v", err)
	}
}

func TestSessionContextCancellation(t *testing.T) {
	sto := NewSim(testConfig())
	f := mustFile(t, sto, "data")
	mustAppend(t, f, make([]byte, 128))
	s := sto.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	s.SetContext(ctx)
	if _, err := s.Read(f, 0, 1); err != nil {
		t.Fatalf("live context should read fine: %v", err)
	}
	cancel()
	_, err := s.Read(f, 1, 1)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled read error %v, want ErrCanceled wrapping context.Canceled", err)
	}
	// Reset clears the context.
	s.Reset()
	if _, err := s.Read(f, 0, 1); err != nil {
		t.Fatalf("reset session should read fine: %v", err)
	}
}

func TestSessionRecover(t *testing.T) {
	sto := NewSim(testConfig())
	if err := sto.EnableChecksums(); err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "data")
	mustAppend(t, f, bytes.Repeat([]byte{7}, 128))
	corrupt(t, sto, "data", 0, 3)
	s := sto.NewSession()
	if _, err := s.Read(f, 0, 1); err == nil {
		t.Fatal("corrupt read should fail")
	}
	before := s.Stats
	s.Recover()
	if s.Err() != nil {
		t.Fatal("Recover should clear the sticky error")
	}
	// The session continues; prior charges are kept.
	if _, err := s.Read(f, 1, 1); err != nil {
		t.Fatalf("recovered session read: %v", err)
	}
	if s.Stats.BlocksRead < before.BlocksRead {
		t.Fatal("Recover must not forget charges")
	}
}
