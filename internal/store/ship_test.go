package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// fillWAL creates (or extends) a log with sequential payloads and
// commits the batch, returning the LSNs.
func fillWAL(t *testing.T, w *WAL, n int, tag string) []uint64 {
	t.Helper()
	var lsns []uint64
	for i := 0; i < n; i++ {
		lsns = append(lsns, w.Append(1, []byte(fmt.Sprintf("%s-%d", tag, i))))
	}
	if err := w.Commit(lsns[len(lsns)-1]); err != nil {
		t.Fatal(err)
	}
	return lsns
}

func TestWALReaderStreamAndWatermark(t *testing.T) {
	backend := NewSimStore(testConfig())
	w, err := CreateWAL(backend, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	lsns := fillWAL(t, w, 10, "rec")

	r := NewWALReader(backend, "t.wal", 0)
	for i := 0; i < 10; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.LSN != lsns[i] || string(rec.Payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last record: %v", err)
	}
	if r.Torn() {
		t.Fatal("clean log reported torn")
	}
	if r.LastLSN() != lsns[9] {
		t.Fatalf("LastLSN %d, want %d", r.LastLSN(), lsns[9])
	}

	// The watermark filters strictly: from = lsns[4] yields records 5..9.
	r = NewWALReader(backend, "t.wal", lsns[4])
	var got int
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN <= lsns[4] {
			t.Fatalf("watermark leaked LSN %d", rec.LSN)
		}
		got++
	}
	if got != 5 {
		t.Fatalf("watermark stream yielded %d records, want 5", got)
	}

	// A missing log is an empty, untorn stream.
	r = NewWALReader(backend, "missing.wal", 0)
	if _, err := r.Next(); err != io.EOF || r.Torn() {
		t.Fatalf("missing log: err=%v torn=%v", err, r.Torn())
	}
}

// TestShipAllTornTail: the source mutation log ends in a damaged frame
// (a tear at rest). The ship must carry exactly the valid prefix, flag
// the tear, and leave the destination log clean — the same contract
// recovery has (torn frames are truncated, never replayed).
func TestShipAllTornTail(t *testing.T) {
	src := NewSimStore(testConfig())
	w, err := CreateWAL(src, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 2, "keep")
	lsn := w.Append(1, bytes.Repeat([]byte{5}, 200))
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	bf := src.Lookup("iq.wal")
	raw, err := bf.ReadBlocks(bf.Blocks()-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	dmg := append([]byte(nil), raw...)
	dmg[10] ^= 0x40
	if err := bf.WriteBlocks(bf.Blocks()-1, dmg); err != nil {
		t.Fatal(err)
	}
	// A raw data file rides along.
	df, err := src.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 3*testConfig().BlockSize)
	if _, _, err := df.Append(payload); err != nil {
		t.Fatal(err)
	}

	dst := NewSimStore(testConfig())
	sh := &Shipper{Src: src, Dst: dst, TailWAL: "iq.wal"}
	rep, err := sh.ShipAll()
	if err != nil {
		t.Fatalf("ShipAll: %v", err)
	}
	if !rep.SrcTorn {
		t.Fatal("torn source tail not reported")
	}
	if rep.Records != 2 {
		t.Fatalf("shipped %d records, want the 2 before the tear", rep.Records)
	}
	if rep.Attempts != 1 {
		t.Fatalf("quiet source took %d attempts", rep.Attempts)
	}

	_, recs, info, err := OpenWAL(dst, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn {
		t.Fatal("destination log torn: the tear must not ship")
	}
	if len(recs) != 2 || string(recs[0].Payload) != "keep-0" || string(recs[1].Payload) != "keep-1" {
		t.Fatalf("destination records: %d", len(recs))
	}
	got, err := dst.Lookup("data").ReadBlocks(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("raw file bytes differ after ship")
	}
}

// TestShipAllEmptyWAL: a source whose mutation log holds no records (a
// freshly checkpointed tree) ships checkpoint-only — zero records, a
// valid empty destination log, LastLSN 0.
func TestShipAllEmptyWAL(t *testing.T) {
	src := NewSimStore(testConfig())
	if _, err := CreateWAL(src, "iq.wal"); err != nil {
		t.Fatal(err)
	}
	df, err := src.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := df.Append([]byte("checkpointed state")); err != nil {
		t.Fatal(err)
	}

	dst := NewSimStore(testConfig())
	sh := &Shipper{Src: src, Dst: dst, TailWAL: "iq.wal"}
	rep, err := sh.ShipAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 0 || rep.LastLSN != 0 {
		t.Fatalf("empty log shipped records=%d lastLSN=%d", rep.Records, rep.LastLSN)
	}
	if _, recs, info, err := OpenWAL(dst, "iq.wal"); err != nil || len(recs) != 0 || info.Torn {
		t.Fatalf("destination log: err=%v records=%d torn=%v", err, len(recs), info.Torn)
	}
	// Tail shipping from the empty watermark is a clean no-op.
	if rep, err := sh.ShipTail("iq.wal", 0); err != nil || rep.Records != 0 {
		t.Fatalf("tail after checkpoint-only ship: %v (%d records)", err, rep.Records)
	}
}

func TestShipTailResumeAndIdempotent(t *testing.T) {
	src := NewSimStore(testConfig())
	w, err := CreateWAL(src, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	lsns := fillWAL(t, w, 10, "rec")

	// The destination already holds the first four records from an
	// earlier ship whose watermark the caller lost.
	dst := NewSimStore(testConfig())
	dw, err := CreateWAL(dst, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	reader := NewWALReader(src, "iq.wal", 0)
	for i := 0; i < 4; i++ {
		rec, err := reader.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := dw.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Commit(lsns[3]); err != nil {
		t.Fatal(err)
	}

	sh := &Shipper{Src: src, Dst: dst, TailWAL: "iq.wal"}
	rep, err := sh.ShipTail("iq.wal", 0) // stale watermark: resume must use the dst log's
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 6 || rep.LastLSN != lsns[9] {
		t.Fatalf("resume shipped %d records to LSN %d, want 6 to %d", rep.Records, rep.LastLSN, lsns[9])
	}
	// Idempotent: nothing newer, nothing shipped, no error.
	rep, err = sh.ShipTail("iq.wal", lsns[9])
	if err != nil || rep.Records != 0 {
		t.Fatalf("re-ship: %v (%d records)", err, rep.Records)
	}

	_, recs, _, err := OpenWAL(dst, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("destination has %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != lsns[i] || string(r.Payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("destination record %d: %+v", i, r)
		}
	}
}

// TestShipTailGapTyped: the source checkpointed (log reset) past the
// destination's watermark, so the needed records no longer exist. The
// tail ship must fail typed with ErrShipGap, not silently skip ahead.
func TestShipTailGapTyped(t *testing.T) {
	src := NewSimStore(testConfig())
	w, err := CreateWAL(src, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	lsns := fillWAL(t, w, 5, "old")
	if err := w.Reset(); err != nil { // the checkpoint consumed LSNs 1..5
		t.Fatal(err)
	}
	fillWAL(t, w, 3, "new") // LSNs 6..8

	dst := NewSimStore(testConfig())
	dw, err := CreateWAL(dst, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.AppendRecord(WALRecord{LSN: lsns[0], Kind: 1, Payload: []byte("old-0")}); err != nil {
		t.Fatal(err)
	}
	if err := dw.AppendRecord(WALRecord{LSN: lsns[1], Kind: 1, Payload: []byte("old-1")}); err != nil {
		t.Fatal(err)
	}
	if err := dw.Commit(lsns[1]); err != nil {
		t.Fatal(err)
	}

	sh := &Shipper{Src: src, Dst: dst, TailWAL: "iq.wal"}
	if _, err := sh.ShipTail("iq.wal", lsns[1]); !errors.Is(err, ErrShipGap) {
		t.Fatalf("gap not typed: %v", err)
	}
}

// hookStore lets a test fire a callback on the first read of one file,
// simulating source activity landing mid-copy.
type hookStore struct {
	BlockStore
	target string
	hook   func()
	fired  bool
}

func (h *hookStore) Lookup(name string) BlockFile {
	bf := h.BlockStore.Lookup(name)
	if bf == nil || name != h.target {
		return bf
	}
	return &hookFile{BlockFile: bf, owner: h}
}

type hookFile struct {
	BlockFile
	owner *hookStore
}

func (f *hookFile) ReadBlocks(pos, nblocks int) ([]byte, error) {
	if !f.owner.fired {
		f.owner.fired = true
		f.owner.hook()
	}
	return f.BlockFile.ReadBlocks(pos, nblocks)
}

// TestShipAllRestartsOnMidCopyCheckpoint: a checkpoint landing while the
// data files are being copied changes a non-tail log, which the
// fingerprint comparison must catch; the copy restarts and the second
// pass succeeds against the now-quiet source.
func TestShipAllRestartsOnMidCopyCheckpoint(t *testing.T) {
	inner := NewSimStore(testConfig())
	w, err := CreateWAL(inner, "iq.wal")
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 4, "mut")
	ck, err := CreateWAL(inner, "iq.ckpt.wal")
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, ck, 1, "ckpt")
	df, err := inner.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := df.Append(bytes.Repeat([]byte{1}, 2*testConfig().BlockSize)); err != nil {
		t.Fatal(err)
	}

	// Mid-copy of the data file, a "checkpoint" appends to the ckpt log
	// and resets the mutation log — exactly the activity that would leave
	// a naïve copy with an old checkpoint and a too-new (reset) WAL.
	src := &hookStore{BlockStore: inner, target: "data", hook: func() {
		fillWAL(t, ck, 1, "ckpt2")
		if err := w.Reset(); err != nil {
			t.Fatal(err)
		}
	}}
	dst := NewSimStore(testConfig())
	sh := &Shipper{Src: src, Dst: dst, TailWAL: "iq.wal"}
	rep, err := sh.ShipAll()
	if err != nil {
		t.Fatalf("ShipAll: %v", err)
	}
	if rep.Attempts < 2 {
		t.Fatalf("mid-copy checkpoint went unnoticed: %d attempts", rep.Attempts)
	}
	// The surviving copy reflects the post-checkpoint source: both ckpt
	// records present, mutation log empty.
	if _, recs, _, err := OpenWAL(dst, "iq.ckpt.wal"); err != nil || len(recs) != 2 {
		t.Fatalf("ckpt log after restart: err=%v records=%d", err, len(recs))
	}
	if _, recs, _, err := OpenWAL(dst, "iq.wal"); err != nil || len(recs) != 0 {
		t.Fatalf("mutation log after restart: err=%v records=%d", err, len(recs))
	}
}
