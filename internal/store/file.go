package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// FileStore is the os.File-backed backend: every logical block file is a
// real file inside one directory, kept block-aligned at all times, so an
// index built in one process can be reopened and queried in another.
// Reads use ReadAt and are safe for concurrent sessions; the Config's
// time parameters keep driving the cost model and page scheduling (the
// accounting then describes the modeled device, not the host disk).
type FileStore struct {
	cfg Config
	dir string

	mu    sync.Mutex
	files map[string]*osFile
}

// OpenFileBackend opens (creating if needed) the directory dir as a
// block store. Existing regular files are adopted as block files; a file
// whose size is not a multiple of the block size is rejected as corrupt.
func OpenFileBackend(dir string, cfg Config) (*FileStore, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("store: BlockSize must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	fsS := &FileStore{cfg: cfg, dir: dir, files: make(map[string]*osFile)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan dir: %w", err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		if _, err := fsS.open(e.Name(), false); err != nil {
			fsS.Close()
			return nil, err
		}
	}
	return fsS, nil
}

// Dir returns the backing directory.
func (d *FileStore) Dir() string { return d.dir }

// Config returns the modeled hardware parameters.
func (d *FileStore) Config() Config { return d.cfg }

// validName rejects names that would escape the store directory.
func validName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || filepath.Base(name) != name {
		return fmt.Errorf("store: invalid file name %q", name)
	}
	return nil
}

// open opens (or creates/truncates) one backing file and registers it.
func (d *FileStore) open(name string, truncate bool) (*osFile, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		if truncate {
			if err := f.truncate(); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	flags := os.O_RDWR | os.O_CREATE
	if truncate {
		flags |= os.O_TRUNC
	}
	h, err := os.OpenFile(filepath.Join(d.dir, name), flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", name, err)
	}
	info, err := h.Stat()
	if err != nil {
		h.Close()
		return nil, fmt.Errorf("store: stat %s: %w", name, err)
	}
	if info.Size()%int64(d.cfg.BlockSize) != 0 {
		h.Close()
		return nil, fmt.Errorf("store: %s is %d bytes, not a multiple of the %d-byte block size (corrupt or wrong -block config?)",
			name, info.Size(), d.cfg.BlockSize)
	}
	f := &osFile{d: d, name: name, h: h, size: info.Size()}
	d.files[name] = f
	return f, nil
}

// Create creates (or truncates) the named file.
func (d *FileStore) Create(name string) (BlockFile, error) {
	f, err := d.open(name, true)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Lookup returns the named file, or nil if none exists.
func (d *FileStore) Lookup(name string) BlockFile {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		return f
	}
	return nil
}

// Names returns the file names in sorted order.
func (d *FileStore) Names() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Remove deletes the named file from the directory (a no-op when it
// does not exist). The removal is made durable by the next Sync's
// directory fsync.
func (d *FileStore) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil
	}
	if err := f.h.Close(); err != nil {
		return fmt.Errorf("store: close %s for removal: %w", name, err)
	}
	if err := os.Remove(filepath.Join(d.dir, name)); err != nil {
		return fmt.Errorf("store: remove %s: %w", name, err)
	}
	delete(d.files, name)
	return nil
}

// Sync flushes every backing file — and the directory itself, so that
// newly created files are durable too — to stable storage. Every file
// is attempted even after a failure, and all failures are reported
// (joined): a partial sync report must name every file whose
// durability is in doubt, not just the first.
func (d *FileStore) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var errs []error
	for _, name := range d.sortedNamesLocked() {
		f := d.files[name]
		if err := f.h.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("store: sync %s: %w", f.name, err))
		}
	}
	if err := d.syncDirLocked(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// sortedNamesLocked returns the file names in sorted order so error
// aggregation is deterministic. Callers hold d.mu.
func (d *FileStore) sortedNamesLocked() []string {
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// syncDirLocked fsyncs the store directory, making file creations and
// renames durable. Filesystems that reject directory fsync (it is
// optional on some platforms) are tolerated.
func (d *FileStore) syncDirLocked() error {
	h, err := os.Open(d.dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer h.Close()
	if err := h.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// Close syncs and closes every backing file (and the directory entry
// metadata), so mutations against a reopened store are durable once
// Close returns.
func (d *FileStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var errs []error
	for _, name := range d.sortedNamesLocked() {
		f := d.files[name]
		if err := f.h.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("store: sync %s: %w", f.name, err))
		}
		if err := f.h.Close(); err != nil {
			errs = append(errs, fmt.Errorf("store: close %s: %w", f.name, err))
		}
	}
	if err := d.syncDirLocked(); err != nil {
		errs = append(errs, err)
	}
	d.files = make(map[string]*osFile)
	return errors.Join(errs...)
}

// osFile is one block-aligned file on the host filesystem. The mutex
// guards the logical size; data access goes through ReadAt/WriteAt,
// which are safe for concurrent use.
type osFile struct {
	d    *FileStore
	name string
	h    *os.File

	mu   sync.Mutex
	size int64 // always a multiple of BlockSize
}

// Name returns the file name.
func (f *osFile) Name() string { return f.name }

// Blocks returns the current length of the file in blocks.
func (f *osFile) Blocks() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.size) / f.d.cfg.BlockSize
}

// Bytes returns the size of the file in bytes (always block-aligned).
func (f *osFile) Bytes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.size)
}

// ReadBlocks reads nblocks blocks at pos into a fresh buffer.
func (f *osFile) ReadBlocks(pos, nblocks int) ([]byte, error) {
	bs := f.d.cfg.BlockSize
	f.mu.Lock()
	size := f.size
	f.mu.Unlock()
	if pos < 0 || nblocks <= 0 || int64(pos+nblocks)*int64(bs) > size {
		return nil, fmt.Errorf("file: read past end of %s: pos=%d n=%d blocks=%d",
			f.name, pos, nblocks, size/int64(bs))
	}
	buf := make([]byte, nblocks*bs)
	if _, err := f.h.ReadAt(buf, int64(pos)*int64(bs)); err != nil {
		return nil, fmt.Errorf("file: read %s: %w", f.name, err)
	}
	return buf, nil
}

// Append writes p at the end of the file, padded to a block boundary.
func (f *osFile) Append(p []byte) (pos, nblocks int, err error) {
	bs := f.d.cfg.BlockSize
	f.mu.Lock()
	defer f.mu.Unlock()
	pos = int(f.size) / bs
	nblocks = (len(p) + bs - 1) / bs
	if nblocks == 0 {
		nblocks = 1 // even an empty page occupies one block
	}
	buf := make([]byte, nblocks*bs)
	copy(buf, p)
	if _, err := f.h.WriteAt(buf, f.size); err != nil {
		return 0, 0, fmt.Errorf("file: append to %s: %w", f.name, err)
	}
	f.size += int64(nblocks) * int64(bs)
	return pos, nblocks, nil
}

// WriteBlocks overwrites existing blocks starting at pos with data.
func (f *osFile) WriteBlocks(pos int, data []byte) error {
	bs := f.d.cfg.BlockSize
	if len(data)%bs != 0 {
		return fmt.Errorf("file: WriteBlocks data not block-aligned (%d bytes)", len(data))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if pos < 0 || int64(pos)*int64(bs)+int64(len(data)) > f.size {
		return fmt.Errorf("file: WriteBlocks past end of %s", f.name)
	}
	if _, err := f.h.WriteAt(data, int64(pos)*int64(bs)); err != nil {
		return fmt.Errorf("file: write %s: %w", f.name, err)
	}
	return nil
}

// Truncate shrinks the file to nblocks blocks; at or past the current
// length it is a no-op.
func (f *osFile) Truncate(nblocks int) error {
	if nblocks < 0 {
		return fmt.Errorf("file: truncate %s to %d blocks", f.name, nblocks)
	}
	bs := f.d.cfg.BlockSize
	f.mu.Lock()
	defer f.mu.Unlock()
	want := int64(nblocks) * int64(bs)
	if want >= f.size {
		return nil
	}
	if err := f.h.Truncate(want); err != nil {
		return fmt.Errorf("file: truncate %s: %w", f.name, err)
	}
	f.size = want
	return nil
}

// truncate resets the file to zero blocks.
func (f *osFile) truncate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.h.Truncate(0); err != nil {
		return fmt.Errorf("file: truncate %s: %w", f.name, err)
	}
	f.size = 0
	return nil
}

// SetContents replaces the whole file with p, padded to a block boundary.
func (f *osFile) SetContents(p []byte) error {
	if err := f.truncate(); err != nil {
		return err
	}
	if len(p) > 0 {
		_, _, err := f.Append(p)
		return err
	}
	return nil
}
