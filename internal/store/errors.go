package store

import (
	"errors"
	"fmt"
	"syscall"
	"time"

	"repro/internal/obs"
)

// ErrTransient marks an I/O failure that is worth retrying: the
// operation failed without applying any state change, so repeating it is
// safe. Fault-injecting backends (FaultStore) and real backends that can
// classify their errors wrap it so the session layer's retry loop can
// recognize them with errors.Is.
var ErrTransient = errors.New("transient I/O error")

// ErrCanceled is returned by session reads once the session's attached
// context is done. It wraps the context's own error, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) /
// context.DeadlineExceeded hold.
var ErrCanceled = errors.New("store: operation canceled")

// CorruptBlockError reports a block whose content failed CRC32C
// verification against the store's checksum sidecar, or that has no
// recorded checksum at all (the signature of a torn append). It is
// never retried — the corruption is at rest — and is the trigger for
// the index layer's quarantine-and-degrade path.
type CorruptBlockError struct {
	File         string
	Block        int
	Want         uint32 // recorded CRC32C (zero when Unverifiable)
	Got          uint32 // CRC32C of the bytes actually read
	Unverifiable bool   // no recorded checksum covers the block
}

func (e *CorruptBlockError) Error() string {
	if e.Unverifiable {
		return fmt.Sprintf("store: corrupt block %s[%d]: no recorded checksum (torn write?)", e.File, e.Block)
	}
	return fmt.Sprintf("store: corrupt block %s[%d]: crc32c %08x, recorded %08x", e.File, e.Block, e.Got, e.Want)
}

// IsTransient reports whether err is a retryable failure: one marked
// ErrTransient, or a syscall-level interruption that promises no state
// change. Checksum failures are deliberately not transient.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}

// RetryPolicy bounds the exponential-backoff retry applied to transient
// backend failures by sessions (reads) and the File mutation wrappers
// (writes). The zero value disables retries.
type RetryPolicy struct {
	// MaxRetries is the number of additional attempts after the first
	// failure.
	MaxRetries int
	// BaseDelay is the sleep before the first retry; it doubles on each
	// subsequent retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
}

// DefaultRetryPolicy returns the store's default bounded backoff: four
// attempts total, backing off 100µs → 200µs → 400µs.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: 5 * time.Millisecond}
}

// delay returns the backoff before retry number attempt (0-based).
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Process-wide fault-tolerance counters. They live on obs.Default() so
// a metrics dump shows storage health next to serving metrics without
// any per-session wiring.
var (
	metricChecksumFailures = obs.Default().Counter("store.checksum_failures")
	metricReadRetries      = obs.Default().Counter("store.read_retries")
	metricWriteRetries     = obs.Default().Counter("store.write_retries")
	metricRetriesExhausted = obs.Default().Counter("store.retries_exhausted")
)
