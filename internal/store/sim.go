package store

import (
	"fmt"
	"sort"
	"sync"
)

// SimStore is the in-memory simulator backend: the storage hardware of
// the paper's testbed, reduced to append-only byte slices. All cost
// accounting happens in the Session layer; with the cache disabled the
// combination Store+Session+SimStore is behavior-identical to the
// original monolithic disk simulator, so every figure experiment and
// cost calibration keeps producing the same simulated-time series.
type SimStore struct {
	cfg   Config
	mu    sync.Mutex
	files map[string]*SimFile
	order []string
}

// NewSimStore creates a simulator backend with the given hardware
// parameters.
func NewSimStore(cfg Config) *SimStore {
	if cfg.BlockSize <= 0 {
		panic("store: BlockSize must be positive")
	}
	return &SimStore{cfg: cfg, files: make(map[string]*SimFile)}
}

// Config returns the simulated hardware parameters.
func (d *SimStore) Config() Config { return d.cfg }

// Create creates (or truncates) a file. Files occupy disjoint regions;
// moving the head between files always costs a seek.
func (d *SimStore) Create(name string) (BlockFile, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		f.mu.Lock()
		f.data = nil // fresh backing array; stale readers keep their view
		f.mu.Unlock()
		return f, nil
	}
	f := &SimFile{d: d, name: name}
	d.files[name] = f
	d.order = append(d.order, name)
	return f, nil
}

// Lookup returns the named file, or nil if none exists.
func (d *SimStore) Lookup(name string) BlockFile {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		return f
	}
	return nil
}

// Names returns the file names in sorted order.
func (d *SimStore) Names() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := append([]string(nil), d.order...)
	sort.Strings(out)
	return out
}

// Remove deletes the named file (a no-op when it does not exist).
// Readers holding aliases into its data keep their bytes.
func (d *SimStore) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return nil
	}
	delete(d.files, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return nil
}

// Sync is a no-op for the simulator.
func (d *SimStore) Sync() error { return nil }

// Close is a no-op for the simulator.
func (d *SimStore) Close() error { return nil }

// SimFile is an append-only, block-aligned in-memory file, safe for
// concurrent readers and writers: a per-file RWMutex guards the slice
// header, and SetContents installs a fresh backing array instead of
// truncating in place, so slices handed out to concurrent readers before
// a rewrite keep their (stale but consistent) bytes — the property the
// copy-on-write index layers rely on.
type SimFile struct {
	d    *SimStore
	name string
	mu   sync.RWMutex
	data []byte
}

// Name returns the file name.
func (f *SimFile) Name() string { return f.name }

// Blocks returns the current length of the file in blocks.
func (f *SimFile) Blocks() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.data) / f.d.cfg.BlockSize
}

// Bytes returns the size of the file in bytes (always block-aligned).
func (f *SimFile) Bytes() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.data)
}

// ReadBlocks returns the raw content of nblocks blocks at pos, aliasing
// the internal storage (zero copy). Appends never move published bytes
// out from under the alias (append copies into a new array when it
// grows), and rewrites install fresh arrays, so the returned slice stays
// consistent even if the file is mutated after the call.
func (f *SimFile) ReadBlocks(pos, nblocks int) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	bs := f.d.cfg.BlockSize
	if pos < 0 || nblocks <= 0 || (pos+nblocks)*bs > len(f.data) {
		return nil, fmt.Errorf("sim: read past end of %s: pos=%d n=%d blocks=%d", f.name, pos, nblocks, len(f.data)/bs)
	}
	return f.data[pos*bs : (pos+nblocks)*bs], nil
}

// Append writes p at the end of the file, padded to a block boundary.
func (f *SimFile) Append(p []byte) (pos, nblocks int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	bs := f.d.cfg.BlockSize
	pos = len(f.data) / bs
	nblocks = (len(p) + bs - 1) / bs
	if nblocks == 0 {
		nblocks = 1 // even an empty page occupies one block
	}
	// Grow into a fresh array so previously returned aliases are never
	// overwritten (cap growth could otherwise reuse the old array's tail).
	grown := make([]byte, len(f.data)+nblocks*bs)
	copy(grown, f.data)
	copy(grown[len(f.data):], p)
	f.data = grown
	return pos, nblocks, nil
}

// WriteBlocks overwrites existing blocks starting at pos with data.
func (f *SimFile) WriteBlocks(pos int, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	bs := f.d.cfg.BlockSize
	if len(data)%bs != 0 {
		return fmt.Errorf("sim: WriteBlocks data not block-aligned (%d bytes)", len(data))
	}
	if pos < 0 || pos*bs+len(data) > len(f.data) {
		return fmt.Errorf("sim: WriteBlocks past end of %s", f.name)
	}
	// Copy-on-write: readers holding aliases into the old array keep
	// seeing the pre-write bytes.
	fresh := append([]byte(nil), f.data...)
	copy(fresh[pos*bs:], data)
	f.data = fresh
	return nil
}

// Truncate shrinks the file to nblocks blocks; at or past the current
// length it is a no-op. The shortened slice keeps its backing array —
// safe, because Append grows into a fresh array and WriteBlocks copies,
// so bytes already handed to readers are never overwritten.
func (f *SimFile) Truncate(nblocks int) error {
	if nblocks < 0 {
		return fmt.Errorf("sim: truncate %s to %d blocks", f.name, nblocks)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	bs := f.d.cfg.BlockSize
	if nblocks*bs >= len(f.data) {
		return nil
	}
	f.data = f.data[:nblocks*bs]
	return nil
}

// SetContents replaces the whole file with p, padded to a block boundary.
func (f *SimFile) SetContents(p []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	bs := f.d.cfg.BlockSize
	if len(p) == 0 {
		f.data = nil
		return nil
	}
	nblocks := (len(p) + bs - 1) / bs
	fresh := make([]byte, nblocks*bs)
	copy(fresh, p)
	f.data = fresh
	return nil
}
