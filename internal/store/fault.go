package store

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultKind classifies one injected fault.
type FaultKind int

const (
	FaultNone FaultKind = iota
	// FaultReadErr fails a read with a transient error (nothing read).
	FaultReadErr
	// FaultWriteErr fails a mutation with a transient error (nothing
	// applied), so a retry is safe and should succeed.
	FaultWriteErr
	// FaultFlip flips one random bit of a read's result AND persists the
	// flip to the backing file, modeling at-rest media corruption. The
	// flip bypasses any checksum maintenance above the backend, so a
	// checksummed store must catch it on read.
	FaultFlip
	// FaultTorn applies only a prefix of a multi-block write and then
	// fails with a permanent error, modeling a crash mid-write.
	FaultTorn
	// FaultLatency delays the operation by the configured duration.
	FaultLatency
)

// String names a fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultReadErr:
		return "read-err"
	case FaultWriteErr:
		return "write-err"
	case FaultFlip:
		return "flip"
	case FaultTorn:
		return "torn"
	case FaultLatency:
		return "latency"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultConfig parameterizes a FaultStore. Probabilities are per
// operation and are evaluated in a fixed order (errors, then flips/torn,
// then latency) against a single deterministic draw, so a given seed
// always injects the same faults at the same operations.
type FaultConfig struct {
	// Seed seeds the deterministic fault RNG.
	Seed int64
	// ReadErr is the probability a read fails transiently.
	ReadErr float64
	// WriteErr is the probability a mutation fails transiently.
	WriteErr float64
	// Flip is the probability a read returns (and persists) a single
	// flipped bit.
	Flip float64
	// Torn is the probability a multi-block mutation is torn: a prefix is
	// applied, then the operation fails permanently.
	Torn float64
	// Latency is the probability an operation sleeps for LatencyDur.
	Latency float64
	// LatencyDur is the injected delay (default 1ms when Latency > 0).
	LatencyDur time.Duration
	// Schedule maps operation numbers (0-based, counted across the whole
	// store) to forced faults, overriding the probabilistic draw. Use it
	// to place a fault deterministically, e.g. a torn write at the known
	// operation index of a page rewrite.
	Schedule map[int]FaultKind
}

// ParseFaultSpec parses a comma-separated fault spec like
//
//	"seed=7,read=0.02,write=0.01,flip=0.005,torn=0.001,latency=0.01:200us"
//
// into a FaultConfig. All keys are optional; latency takes an optional
// ":duration" suffix.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("store: fault spec %q: want key=value", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("store: fault spec seed: %w", err)
			}
			cfg.Seed = n
		case "read", "write", "flip", "torn", "latency":
			if key == "latency" {
				if p, d, ok := strings.Cut(val, ":"); ok {
					dur, err := time.ParseDuration(d)
					if err != nil {
						return cfg, fmt.Errorf("store: fault spec latency duration: %w", err)
					}
					cfg.LatencyDur = dur
					val = p
				}
			}
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("store: fault spec %s: want probability in [0,1], got %q", key, val)
			}
			switch key {
			case "read":
				cfg.ReadErr = p
			case "write":
				cfg.WriteErr = p
			case "flip":
				cfg.Flip = p
			case "torn":
				cfg.Torn = p
			case "latency":
				cfg.Latency = p
			}
		default:
			return cfg, fmt.Errorf("store: fault spec: unknown key %q", key)
		}
	}
	if cfg.Latency > 0 && cfg.LatencyDur == 0 {
		cfg.LatencyDur = time.Millisecond
	}
	return cfg, nil
}

// FaultStore wraps any BlockStore and injects faults into its
// operations: transient read/write errors, persisted bit-flips, torn
// multi-block writes, and latency spikes, chosen deterministically from
// the seed (plus an optional explicit schedule). It implements
// BlockStore, so it slots between the Store layer and a real backend
// and the backend conformance suite runs against it.
type FaultStore struct {
	inner BlockStore

	mu       sync.Mutex
	cfg      FaultConfig
	rng      *rand.Rand
	enabled  bool
	ops      int
	injected map[FaultKind]int
}

// NewFaultStore wraps inner with fault injection enabled under cfg.
func NewFaultStore(inner BlockStore, cfg FaultConfig) *FaultStore {
	if cfg.Latency > 0 && cfg.LatencyDur == 0 {
		cfg.LatencyDur = time.Millisecond
	}
	return &FaultStore{
		inner:    inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		enabled:  true,
		injected: make(map[FaultKind]int),
	}
}

// SetEnabled turns injection on or off (the op counter keeps running, so
// scheduled faults stay aligned with operation numbers).
func (fs *FaultStore) SetEnabled(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.enabled = on
}

// SetConfig replaces the fault configuration and reseeds the RNG; the
// operation counter and injection tallies are preserved.
func (fs *FaultStore) SetConfig(cfg FaultConfig) {
	if cfg.Latency > 0 && cfg.LatencyDur == 0 {
		cfg.LatencyDur = time.Millisecond
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cfg = cfg
	fs.rng = rand.New(rand.NewSource(cfg.Seed))
}

// Ops returns the number of operations seen so far.
func (fs *FaultStore) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Injected returns a copy of the per-kind injection tallies.
func (fs *FaultStore) Injected() map[FaultKind]int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[FaultKind]int, len(fs.injected))
	for k, v := range fs.injected {
		out[k] = v
	}
	return out
}

// InjectedTotal returns the total number of injected faults.
func (fs *FaultStore) InjectedTotal() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for _, v := range fs.injected {
		n += v
	}
	return n
}

// FormatInjected renders the tallies as "kind=count" pairs in a fixed
// order.
func (fs *FaultStore) FormatInjected() string {
	inj := fs.Injected()
	kinds := make([]FaultKind, 0, len(inj))
	for k := range inj {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, inj[k]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// decide advances the operation counter and picks the fault (if any) for
// this operation, together with extra random draws needed to apply it.
func (fs *FaultStore) decide(read bool) (kind FaultKind, a, b int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	op := fs.ops
	fs.ops++
	if !fs.enabled {
		return FaultNone, 0, 0
	}
	if k, ok := fs.cfg.Schedule[op]; ok {
		fs.injected[k]++
		return k, fs.rng.Intn(1 << 20), fs.rng.Intn(1 << 20)
	}
	r := fs.rng.Float64()
	pick := func(k FaultKind, p float64) bool {
		if r < p {
			kind = k
			return true
		}
		r -= p
		return false
	}
	if read {
		_ = pick(FaultReadErr, fs.cfg.ReadErr) ||
			pick(FaultFlip, fs.cfg.Flip) ||
			pick(FaultLatency, fs.cfg.Latency)
	} else {
		_ = pick(FaultWriteErr, fs.cfg.WriteErr) ||
			pick(FaultTorn, fs.cfg.Torn) ||
			pick(FaultLatency, fs.cfg.Latency)
	}
	if kind == FaultNone {
		return FaultNone, 0, 0
	}
	fs.injected[kind]++
	return kind, fs.rng.Intn(1 << 20), fs.rng.Intn(1 << 20)
}

// latency sleeps for the configured injection delay.
func (fs *FaultStore) latency() {
	fs.mu.Lock()
	d := fs.cfg.LatencyDur
	fs.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Config returns the inner store's hardware parameters.
func (fs *FaultStore) Config() Config { return fs.inner.Config() }

// Create creates (or truncates) the named file on the inner store.
func (fs *FaultStore) Create(name string) (BlockFile, error) {
	bf, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, bf: bf}, nil
}

// Lookup returns the named file, or nil if none exists.
func (fs *FaultStore) Lookup(name string) BlockFile {
	bf := fs.inner.Lookup(name)
	if bf == nil {
		return nil
	}
	return &faultFile{fs: fs, bf: bf}
}

// Names returns the inner store's file names.
func (fs *FaultStore) Names() []string { return fs.inner.Names() }

// Remove forwards to the inner store without an injection point:
// removal is a maintenance operation, not part of the faulted I/O path,
// and skipping the draw keeps scheduled fault indices stable.
func (fs *FaultStore) Remove(name string) error { return fs.inner.Remove(name) }

// Sync flushes the inner store.
func (fs *FaultStore) Sync() error { return fs.inner.Sync() }

// Close closes the inner store.
func (fs *FaultStore) Close() error { return fs.inner.Close() }

// faultFile wraps one BlockFile with the store's fault decisions.
type faultFile struct {
	fs *FaultStore
	bf BlockFile
}

// Name returns the file name.
func (f *faultFile) Name() string { return f.bf.Name() }

// Blocks returns the current length of the file in blocks.
func (f *faultFile) Blocks() int { return f.bf.Blocks() }

// Bytes returns the size of the file in bytes.
func (f *faultFile) Bytes() int { return f.bf.Bytes() }

// ReadBlocks reads through to the inner file, possibly failing
// transiently, flipping (and persisting) one bit, or sleeping first.
func (f *faultFile) ReadBlocks(pos, nblocks int) ([]byte, error) {
	kind, a, b := f.fs.decide(true)
	switch kind {
	case FaultReadErr:
		return nil, fmt.Errorf("fault: injected read error on %s[%d,+%d): %w", f.Name(), pos, nblocks, ErrTransient)
	case FaultLatency:
		f.fs.latency()
	}
	data, err := f.bf.ReadBlocks(pos, nblocks)
	if err != nil || kind != FaultFlip || len(data) == 0 {
		return data, err
	}
	bs := f.fs.inner.Config().BlockSize
	blk := a % nblocks
	bit := b % (bs * 8)
	corrupted := append([]byte(nil), data...)
	corrupted[blk*bs+bit/8] ^= 1 << uint(bit%8)
	// Persist the flip so the corruption is at rest: later reads (and a
	// scrub) see the same damaged byte. This goes straight to the inner
	// file, beneath any checksum maintenance in the layers above.
	_ = f.bf.WriteBlocks(pos+blk, corrupted[blk*bs:(blk+1)*bs])
	return corrupted, nil
}

// Append appends through to the inner file. A transient write error
// applies nothing; a torn fault appends only a prefix of the blocks and
// fails permanently.
func (f *faultFile) Append(p []byte) (pos, nblocks int, err error) {
	bs := f.fs.inner.Config().BlockSize
	want := (len(p) + bs - 1) / bs
	if want == 0 {
		want = 1
	}
	kind, a, _ := f.fs.decide(false)
	switch kind {
	case FaultWriteErr:
		return 0, 0, fmt.Errorf("fault: injected append error on %s: %w", f.Name(), ErrTransient)
	case FaultLatency:
		f.fs.latency()
	case FaultTorn:
		if want >= 2 {
			keep := 1 + a%(want-1) // 1..want-1 blocks survive
			buf := make([]byte, keep*bs)
			copy(buf, p)
			if _, _, aerr := f.bf.Append(buf); aerr != nil {
				return 0, 0, aerr
			}
			return 0, 0, fmt.Errorf("fault: torn append on %s: %d of %d blocks written", f.Name(), keep, want)
		}
	}
	return f.bf.Append(p)
}

// WriteBlocks writes through to the inner file; torn faults apply a
// prefix and fail permanently, transient errors apply nothing.
func (f *faultFile) WriteBlocks(pos int, data []byte) error {
	bs := f.fs.inner.Config().BlockSize
	want := len(data) / bs
	kind, a, _ := f.fs.decide(false)
	switch kind {
	case FaultWriteErr:
		return fmt.Errorf("fault: injected write error on %s[%d]: %w", f.Name(), pos, ErrTransient)
	case FaultLatency:
		f.fs.latency()
	case FaultTorn:
		if want >= 2 {
			keep := 1 + a%(want-1)
			if werr := f.bf.WriteBlocks(pos, data[:keep*bs]); werr != nil {
				return werr
			}
			return fmt.Errorf("fault: torn write on %s[%d]: %d of %d blocks written", f.Name(), pos, keep, want)
		}
	}
	return f.bf.WriteBlocks(pos, data)
}

// Truncate forwards to the inner file. A transient write error applies
// nothing; torn faults do not apply (a truncate either moves the size or
// does not — there is no partial prefix to tear).
func (f *faultFile) Truncate(nblocks int) error {
	kind, _, _ := f.fs.decide(false)
	switch kind {
	case FaultWriteErr:
		return fmt.Errorf("fault: injected truncate error on %s: %w", f.Name(), ErrTransient)
	case FaultLatency:
		f.fs.latency()
	}
	return f.bf.Truncate(nblocks)
}

// SetContents rewrites through to the inner file; a torn fault leaves
// only a prefix of the new content, a transient error applies nothing.
func (f *faultFile) SetContents(p []byte) error {
	bs := f.fs.inner.Config().BlockSize
	want := (len(p) + bs - 1) / bs
	kind, a, _ := f.fs.decide(false)
	switch kind {
	case FaultWriteErr:
		return fmt.Errorf("fault: injected rewrite error on %s: %w", f.Name(), ErrTransient)
	case FaultLatency:
		f.fs.latency()
	case FaultTorn:
		if want >= 2 {
			keep := 1 + a%(want-1)
			buf := make([]byte, keep*bs)
			copy(buf, p)
			if serr := f.bf.SetContents(buf); serr != nil {
				return serr
			}
			return fmt.Errorf("fault: torn rewrite of %s: %d of %d blocks written", f.Name(), keep, want)
		}
	}
	return f.bf.SetContents(p)
}
