package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	sto, err := OpenFileStore(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "data")
	payload := bytes.Repeat([]byte{0xAB}, 200)
	mustAppend(t, f, payload)
	if err := sto.Close(); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory adopts the file.
	sto2, err := OpenFileStore(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sto2.Close()
	f2 := sto2.File("data")
	if f2 == nil {
		t.Fatal("reopened store lost the file")
	}
	if f2.Blocks() != 4 {
		t.Fatalf("reopened blocks %d, want 4", f2.Blocks())
	}
	got, err := sto2.NewSession().Read(f2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:200], payload) {
		t.Fatal("reopened store returned wrong bytes")
	}
}

func TestFileStoreRejectsMisalignedFile(t *testing.T) {
	dir := t.TempDir()
	// 100 bytes is not a multiple of the 64-byte block size.
	if err := os.WriteFile(filepath.Join(dir, "bad"), make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(dir, testConfig()); err == nil {
		t.Fatal("misaligned file should be rejected as corrupt")
	}
}

func TestFileStoreRejectsBadNames(t *testing.T) {
	sto, err := OpenFileStore(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sto.Close()
	for _, name := range []string{"", ".", "..", "a/b", "../escape"} {
		if _, err := sto.NewFile(name); err == nil {
			t.Fatalf("name %q should be rejected", name)
		}
	}
}

func TestFileStoreCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "iq")
	sto, err := OpenFileStore(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sto.Close()
	mustAppend(t, mustFile(t, sto, "x"), []byte{1})
	if err := sto.Sync(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 64 {
		t.Fatalf("on-disk size %d, want one 64-byte block", fi.Size())
	}
}

func TestFileStoreIgnoresSubdirs(t *testing.T) {
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	sto, err := OpenFileStore(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sto.Close()
	if names := sto.Backend().Names(); len(names) != 0 {
		t.Fatalf("subdirectory adopted as file: %v", names)
	}
}

// TestSyncReportsEveryFailure: Sync must attempt every file and join
// all failures — a partial sync report that names only the first broken
// file leaves the durability of the rest unknown.
func TestSyncReportsEveryFailure(t *testing.T) {
	sto, err := OpenFileStore(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fb := sto.Backend().(*FileStore)
	for _, name := range []string{"a", "b", "c"} {
		mustAppend(t, mustFile(t, sto, name), []byte{1})
	}
	// Sabotage two of the three handles: Sync on a closed *os.File fails.
	fb.mu.Lock()
	fb.files["a"].h.Close()
	fb.files["c"].h.Close()
	fb.mu.Unlock()

	err = fb.Sync()
	if err == nil {
		t.Fatal("sync over closed handles should fail")
	}
	msg := err.Error()
	for _, name := range []string{"sync a", "sync c"} {
		if !strings.Contains(msg, name) {
			t.Fatalf("joined sync error should name %q, got: %v", name, err)
		}
	}
	if strings.Contains(msg, "sync b") {
		t.Fatalf("healthy file reported as failed: %v", err)
	}
	if !errors.Is(err, os.ErrClosed) {
		t.Fatalf("joined error should preserve the causes via errors.Is: %v", err)
	}

	// Close aggregates too, and still closes/"forgets" every file.
	if err := fb.Close(); err == nil {
		t.Fatal("close over sabotaged handles should report the failures")
	}
	if len(fb.files) != 0 {
		t.Fatal("Close must clear the file table even after errors")
	}
}

func TestSessionErrorOnClosedBackend(t *testing.T) {
	// Reads against a closed file-backed store surface errors through the
	// session instead of panicking.
	sto, err := OpenFileStore(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := mustFile(t, sto, "t")
	mustAppend(t, f, make([]byte, 64))
	if err := sto.Close(); err != nil {
		t.Fatal(err)
	}
	s := sto.NewSession()
	if _, err := s.Read(f, 0, 1); err == nil {
		t.Fatal("read after close should fail")
	}
	if s.Err() == nil {
		t.Fatal("session should record the failure")
	}
}
