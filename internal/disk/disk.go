// Package disk simulates the storage hardware of the paper's testbed.
//
// The paper measures elapsed seconds on HP 9000/780 workstations, and its
// entire contribution hinges on the ratio between random-seek time and
// per-block transfer time (Section 2). We do not have that hardware, so
// this package substitutes a parametric simulator with exactly the cost
// structure of the paper's own model:
//
//	time = seeks·Seek + blocks·Xfer + CPU
//
// Seeks are charged at a constant cost — the paper states that seek
// distance has "only negligible influence" — and transfers per block.
// A small CPU term per distance computation / approximation evaluation
// models the scan-bound CPU work that the VA-file and sequential scan pay.
//
// Files are append-only sequences of block-aligned pages. A Session is a
// single query's view of the disk: it tracks the head position, so that a
// read adjacent to the previous one costs only transfer time while any
// other read costs an additional seek.
package disk

import (
	"fmt"
)

// Config holds the hardware parameters of the simulated machine. All time
// quantities are in seconds.
type Config struct {
	// BlockSize is the disk block size in bytes. Pages are block-aligned.
	BlockSize int
	// Seek is the cost of one random seek, in seconds.
	Seek float64
	// Xfer is the cost of transferring one block, in seconds.
	Xfer float64
	// DistCPU is the CPU cost, per dimension, of one exact distance
	// computation, in seconds.
	DistCPU float64
	// ApproxCPU is the CPU cost, per dimension, of decoding and bounding
	// one quantized approximation, in seconds.
	ApproxCPU float64
}

// DefaultConfig returns parameters calibrated to the paper's late-1990s
// testbed (HP 9000/780): 4 KiB blocks, 10 ms average seek, ~3.4 MB/s
// effective sequential transfer, and per-dimension CPU costs of a
// ~180 MHz PA-RISC workstation. The transfer rate is backed out of the
// paper's own measurements (a 32 MB sequential scan takes ~13 s in
// Fig. 8/9), giving a seek:transfer ratio of ~8:1, which is what the
// paper's seek-vs-over-read trade-off (Section 2) is calibrated against.
func DefaultConfig() Config {
	return Config{
		BlockSize: 4096,
		Seek:      10e-3,
		Xfer:      1.2e-3,
		DistCPU:   100e-9,
		ApproxCPU: 120e-9,
	}
}

// OverreadHorizon returns v = Seek/Xfer, the maximum number of blocks worth
// over-reading instead of seeking (Section 2 of the paper).
func (c Config) OverreadHorizon() int {
	if c.Xfer <= 0 {
		return 0
	}
	return int(c.Seek / c.Xfer)
}

// Blocks returns the number of blocks needed to store n bytes.
func (c Config) Blocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + c.BlockSize - 1) / c.BlockSize
}

// Stats accumulates the simulated cost of one or more operations.
type Stats struct {
	// Seeks counts random seeks.
	Seeks int
	// BlocksRead counts transferred blocks.
	BlocksRead int
	// Reads counts read operations (contiguous runs).
	Reads int
	// CPUSeconds accumulates charged CPU time.
	CPUSeconds float64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Seeks += o.Seeks
	s.BlocksRead += o.BlocksRead
	s.Reads += o.Reads
	s.CPUSeconds += o.CPUSeconds
}

// Time returns the total simulated time in seconds under cfg.
func (s Stats) Time(cfg Config) float64 {
	return float64(s.Seeks)*cfg.Seek + float64(s.BlocksRead)*cfg.Xfer + s.CPUSeconds
}

// String formats the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("seeks=%d blocks=%d reads=%d cpu=%.6fs", s.Seeks, s.BlocksRead, s.Reads, s.CPUSeconds)
}

// Disk is a simulated disk owning a set of files.
type Disk struct {
	cfg   Config
	files []*File
}

// New creates a simulated disk with the given hardware parameters.
func New(cfg Config) *Disk {
	if cfg.BlockSize <= 0 {
		panic("disk: BlockSize must be positive")
	}
	return &Disk{cfg: cfg}
}

// Config returns the disk's hardware parameters.
func (d *Disk) Config() Config { return d.cfg }

// NewFile creates a new empty file on the disk. Files occupy disjoint
// regions; moving the head between files always costs a seek.
func (d *Disk) NewFile(name string) *File {
	f := &File{d: d, name: name}
	d.files = append(d.files, f)
	return f
}

// File returns the file with the given name, or nil if none exists.
func (d *Disk) File(name string) *File {
	for _, f := range d.files {
		if f.name == name {
			return f
		}
	}
	return nil
}

// TotalBlocks returns the number of blocks across all files.
func (d *Disk) TotalBlocks() int {
	var n int
	for _, f := range d.files {
		n += f.Blocks()
	}
	return n
}

// File is an append-only, block-aligned simulated file.
type File struct {
	d    *Disk
	name string
	data []byte
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Blocks returns the current length of the file in blocks.
func (f *File) Blocks() int { return len(f.data) / f.d.cfg.BlockSize }

// Bytes returns the size of the file in bytes (always block-aligned).
func (f *File) Bytes() int { return len(f.data) }

// Append writes p at the end of the file, padded to a block boundary, and
// returns the starting block position and the number of blocks written.
func (f *File) Append(p []byte) (pos, nblocks int) {
	bs := f.d.cfg.BlockSize
	pos = len(f.data) / bs
	nblocks = (len(p) + bs - 1) / bs
	if nblocks == 0 {
		nblocks = 1 // even an empty page occupies one block
	}
	f.data = append(f.data, p...)
	if pad := nblocks*bs - len(p); pad > 0 {
		f.data = append(f.data, make([]byte, pad)...)
	}
	return pos, nblocks
}

// WriteBlocks overwrites existing blocks starting at pos with data, which
// must be block-aligned in length and fit within the current file extent.
// Writes are construction/maintenance operations; their cost, where it
// matters, is charged explicitly by the caller.
func (f *File) WriteBlocks(pos int, data []byte) {
	bs := f.d.cfg.BlockSize
	if len(data)%bs != 0 {
		panic("disk: WriteBlocks data not block-aligned")
	}
	if pos*bs+len(data) > len(f.data) {
		panic("disk: WriteBlocks past end of file")
	}
	copy(f.data[pos*bs:], data)
}

// SetContents replaces the whole file with p, padded to a block boundary.
// An empty p truncates the file to zero blocks.
func (f *File) SetContents(p []byte) {
	f.data = f.data[:0]
	if len(p) > 0 {
		f.Append(p)
	}
}

// BlockAt returns the raw content of block pos without charging any cost.
// It is intended for tests and debugging; query code must go through a
// Session.
func (f *File) BlockAt(pos int) []byte {
	bs := f.d.cfg.BlockSize
	return f.data[pos*bs : (pos+1)*bs]
}

// Session is one query's view of the disk. It tracks the head position and
// accumulates Stats. Sessions are not safe for concurrent use; run one per
// goroutine.
type Session struct {
	d       *Disk
	curFile *File
	head    int // next block under the head within curFile
	started bool
	Stats   Stats
	perFile map[string]*Stats
}

// FileStats returns the session's I/O attributed to the named file (CPU
// charges are global, not per file). The zero Stats is returned for
// untouched files. For the IQ-tree this decomposes a query into the
// paper's T1st/T2nd/T3rd components.
func (s *Session) FileStats(name string) Stats {
	if st, ok := s.perFile[name]; ok {
		return *st
	}
	return Stats{}
}

// chargeFile attributes one read to a file.
func (s *Session) chargeFile(f *File, seeks, blocks int) {
	if s.perFile == nil {
		s.perFile = make(map[string]*Stats, 4)
	}
	st, ok := s.perFile[f.name]
	if !ok {
		st = &Stats{}
		s.perFile[f.name] = st
	}
	st.Seeks += seeks
	st.BlocksRead += blocks
	st.Reads++
}

// NewSession starts a fresh session with the head in an undefined position
// (the first read always seeks).
func (d *Disk) NewSession() *Session {
	return &Session{d: d}
}

// Read transfers nblocks starting at block pos of file f and returns the
// raw bytes. It charges a seek unless the head is already at (f, pos).
func (s *Session) Read(f *File, pos, nblocks int) []byte {
	if nblocks <= 0 {
		panic("disk: Read of zero blocks")
	}
	bs := s.d.cfg.BlockSize
	if (pos+nblocks)*bs > len(f.data) {
		panic(fmt.Sprintf("disk: read past end of %s: pos=%d n=%d blocks=%d", f.name, pos, nblocks, f.Blocks()))
	}
	seeks := 0
	if !s.started || s.curFile != f || s.head != pos {
		seeks = 1
	}
	s.started = true
	s.Stats.Seeks += seeks
	s.Stats.BlocksRead += nblocks
	s.Stats.Reads++
	s.chargeFile(f, seeks, nblocks)
	s.curFile = f
	s.head = pos + nblocks
	return f.data[pos*bs : (pos+nblocks)*bs]
}

// ReadRange transfers the blocks covering the byte range [off, off+n) of
// file f and returns those blocks plus the offset of the range within the
// returned slice.
func (s *Session) ReadRange(f *File, off, n int) (data []byte, rel int) {
	bs := s.d.cfg.BlockSize
	first := off / bs
	last := (off + n - 1) / bs
	blk := s.Read(f, first, last-first+1)
	return blk, off - first*bs
}

// ChargeCPU adds raw CPU seconds to the session.
func (s *Session) ChargeCPU(seconds float64) {
	s.Stats.CPUSeconds += seconds
}

// ChargeDistCPU charges the CPU cost of n exact distance computations in
// dim dimensions.
func (s *Session) ChargeDistCPU(dim, n int) {
	s.Stats.CPUSeconds += s.d.cfg.DistCPU * float64(dim) * float64(n)
}

// ChargeApproxCPU charges the CPU cost of decoding and bounding n quantized
// approximations in dim dimensions.
func (s *Session) ChargeApproxCPU(dim, n int) {
	s.Stats.CPUSeconds += s.d.cfg.ApproxCPU * float64(dim) * float64(n)
}

// Time returns the session's total simulated time so far, in seconds.
func (s *Session) Time() float64 { return s.Stats.Time(s.d.cfg) }
