package disk

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{BlockSize: 64, Seek: 0.01, Xfer: 0.001, DistCPU: 1e-7, ApproxCPU: 1e-7}
}

func TestAppendAlignsToBlocks(t *testing.T) {
	d := New(testConfig())
	f := d.NewFile("t")
	pos, n := f.Append(make([]byte, 100))
	if pos != 0 || n != 2 {
		t.Fatalf("first append pos=%d n=%d", pos, n)
	}
	pos, n = f.Append(make([]byte, 1))
	if pos != 2 || n != 1 {
		t.Fatalf("second append pos=%d n=%d", pos, n)
	}
	pos, n = f.Append(nil)
	if pos != 3 || n != 1 {
		t.Fatalf("empty append pos=%d n=%d (should reserve one block)", pos, n)
	}
	if f.Blocks() != 4 || f.Bytes() != 256 {
		t.Fatalf("blocks=%d bytes=%d", f.Blocks(), f.Bytes())
	}
}

func TestReadRoundtripAndCost(t *testing.T) {
	d := New(testConfig())
	f := d.NewFile("t")
	payload := []byte("hello, block world")
	f.Append(payload)
	f.Append(bytes.Repeat([]byte{7}, 64))

	s := d.NewSession()
	got := s.Read(f, 0, 1)
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatal("read returned wrong bytes")
	}
	if s.Stats.Seeks != 1 || s.Stats.BlocksRead != 1 {
		t.Fatalf("first read stats: %+v", s.Stats)
	}
	// Sequential continuation: no extra seek.
	s.Read(f, 1, 1)
	if s.Stats.Seeks != 1 || s.Stats.BlocksRead != 2 {
		t.Fatalf("sequential read stats: %+v", s.Stats)
	}
	// Going backwards costs a seek.
	s.Read(f, 0, 1)
	if s.Stats.Seeks != 2 {
		t.Fatalf("backward read stats: %+v", s.Stats)
	}
	wantTime := 2*0.01 + 3*0.001
	if math.Abs(s.Time()-wantTime) > 1e-12 {
		t.Fatalf("time %f, want %f", s.Time(), wantTime)
	}
}

func TestCrossFileSeek(t *testing.T) {
	d := New(testConfig())
	a := d.NewFile("a")
	b := d.NewFile("b")
	a.Append(make([]byte, 64))
	b.Append(make([]byte, 64))
	s := d.NewSession()
	s.Read(a, 0, 1)
	s.Read(b, 0, 1) // different file: must seek
	if s.Stats.Seeks != 2 {
		t.Fatalf("cross-file seeks = %d, want 2", s.Stats.Seeks)
	}
}

func TestReadRange(t *testing.T) {
	d := New(testConfig())
	f := d.NewFile("t")
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	f.Append(data)
	s := d.NewSession()
	// Bytes 100..149 span blocks 1..2.
	buf, rel := s.ReadRange(f, 100, 50)
	if s.Stats.BlocksRead != 2 {
		t.Fatalf("blocks read %d, want 2", s.Stats.BlocksRead)
	}
	for i := 0; i < 50; i++ {
		if buf[rel+i] != byte(100+i) {
			t.Fatalf("byte %d = %d, want %d", i, buf[rel+i], 100+i)
		}
	}
}

func TestWriteBlocksAndSetContents(t *testing.T) {
	d := New(testConfig())
	f := d.NewFile("t")
	f.Append(make([]byte, 128))
	repl := bytes.Repeat([]byte{9}, 64)
	f.WriteBlocks(1, repl)
	if !bytes.Equal(f.BlockAt(1), repl) {
		t.Fatal("WriteBlocks did not replace the block")
	}
	f.SetContents([]byte{1, 2, 3})
	if f.Blocks() != 1 || f.BlockAt(0)[0] != 1 {
		t.Fatal("SetContents wrong")
	}
	f.SetContents(nil)
	if f.Blocks() != 0 {
		t.Fatal("SetContents(nil) should truncate")
	}
}

func TestWriteBlocksPanics(t *testing.T) {
	d := New(testConfig())
	f := d.NewFile("t")
	f.Append(make([]byte, 64))
	for _, fn := range []func(){
		func() { f.WriteBlocks(0, make([]byte, 10)) }, // unaligned
		func() { f.WriteBlocks(1, make([]byte, 64)) }, // past end
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestReadPastEndPanics(t *testing.T) {
	d := New(testConfig())
	f := d.NewFile("t")
	f.Append(make([]byte, 64))
	s := d.NewSession()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading past end")
		}
	}()
	s.Read(f, 0, 2)
}

func TestCPUCharges(t *testing.T) {
	d := New(testConfig())
	s := d.NewSession()
	s.ChargeDistCPU(16, 10)   // 16e-6
	s.ChargeApproxCPU(8, 100) // 80e-6
	s.ChargeCPU(1e-3)
	want := 16*10*1e-7 + 8*100*1e-7 + 1e-3
	if math.Abs(s.Stats.CPUSeconds-want) > 1e-15 {
		t.Fatalf("cpu %g, want %g", s.Stats.CPUSeconds, want)
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Seeks: 1, BlocksRead: 2, Reads: 3, CPUSeconds: 0.5}
	b := Stats{Seeks: 10, BlocksRead: 20, Reads: 30, CPUSeconds: 1.5}
	a.Add(b)
	if a.Seeks != 11 || a.BlocksRead != 22 || a.Reads != 33 || a.CPUSeconds != 2 {
		t.Fatalf("add wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty string form")
	}
}

// Property: Stats.Time is linear in its counters.
func TestStatsTimeLinearity(t *testing.T) {
	cfg := testConfig()
	f := func(s1, b1, s2, b2 uint8) bool {
		a := Stats{Seeks: int(s1), BlocksRead: int(b1)}
		b := Stats{Seeks: int(s2), BlocksRead: int(b2)}
		sum := a
		sum.Add(b)
		return math.Abs(sum.Time(cfg)-(a.Time(cfg)+b.Time(cfg))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverreadHorizonAndBlocks(t *testing.T) {
	cfg := testConfig()
	if v := cfg.OverreadHorizon(); v != 10 {
		t.Fatalf("horizon %d, want 10", v)
	}
	if cfg.Blocks(0) != 0 || cfg.Blocks(1) != 1 || cfg.Blocks(64) != 1 || cfg.Blocks(65) != 2 {
		t.Fatal("Blocks rounding wrong")
	}
	if (Config{}).OverreadHorizon() != 0 {
		t.Fatal("zero config horizon should be 0")
	}
}

func TestTotalBlocks(t *testing.T) {
	d := New(testConfig())
	d.NewFile("a").Append(make([]byte, 65))
	d.NewFile("b").Append(make([]byte, 64))
	if d.TotalBlocks() != 3 {
		t.Fatalf("total blocks %d", d.TotalBlocks())
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BlockSize <= 0 || cfg.Seek <= cfg.Xfer || cfg.Xfer <= 0 {
		t.Fatalf("implausible default config: %+v", cfg)
	}
	if h := cfg.OverreadHorizon(); h < 2 {
		t.Fatalf("default horizon %d too small for the paper's trade-off", h)
	}
}
