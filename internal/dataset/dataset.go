// Package dataset generates the evaluation workloads of the paper.
//
// UNIFORM is generated exactly as in the paper. The three real-world data
// sets (CAD, COLOR, WEATHER) are proprietary and unavailable, so this
// package substitutes synthetic equivalents engineered to match the
// properties the paper reports for them:
//
//   - CAD: 16-d Fourier coefficients of CAD-object curvature —
//     "moderately clustered" (the X-tree performs well on it). We draw
//     points from a moderate number of object-family clusters with a
//     1/(k+1) decaying coefficient envelope.
//   - COLOR: 16-d color histograms of pixel images — "only very slightly
//     clustered". We draw normalized histograms (Dirichlet-style) with a
//     weak genre bias.
//   - WEATHER: 9-d weather-station observations — "highly clustered" with
//     a "rather low fractal dimension" (hierarchical indexes win). We map
//     two latent variables (season phase and station climate band) plus
//     altitude through smooth nonlinear responses into 9 features, so the
//     data lies near a low-dimensional manifold.
//
// All generators are deterministic given their seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Name identifies a generator.
type Name string

// The workloads of the paper's evaluation (Section 4).
const (
	Uniform Name = "uniform"
	CAD     Name = "cad"
	Color   Name = "color"
	Weather Name = "weather"
)

// Dim returns the natural dimensionality of a named data set (0 means the
// caller chooses, as for UNIFORM).
func (n Name) Dim() int {
	switch n {
	case CAD, Color:
		return 16
	case Weather:
		return 9
	default:
		return 0
	}
}

// Generate produces n points of the named data set. d is honored only by
// generators with free dimensionality (UNIFORM); the others use their
// natural dimensionality.
func Generate(name Name, seed int64, n, d int) ([]vec.Point, error) {
	switch name {
	case Uniform:
		if d <= 0 {
			return nil, fmt.Errorf("dataset: uniform requires a dimension")
		}
		return GenUniform(seed, n, d), nil
	case CAD:
		return GenCAD(seed, n), nil
	case Color:
		return GenColor(seed, n), nil
	case Weather:
		return GenWeather(seed, n), nil
	default:
		return nil, fmt.Errorf("dataset: unknown data set %q", name)
	}
}

// Split separates a generated set into a database and a query workload:
// the paper separates query points from the database while keeping them
// identically distributed. It returns pts[:n-q] and pts[n-q:].
func Split(pts []vec.Point, queries int) (db, qs []vec.Point) {
	if queries >= len(pts) {
		return nil, pts
	}
	return pts[:len(pts)-queries], pts[len(pts)-queries:]
}

// GenUniform returns n points uniformly distributed in [0,1]^d.
func GenUniform(seed int64, n, d int) []vec.Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

// GenClustered returns n points drawn from `clusters` Gaussian clusters
// with per-coordinate standard deviation sigma, clipped to [0,1]^d.
func GenClustered(seed int64, n, d, clusters int, sigma float64) []vec.Point {
	r := rand.New(rand.NewSource(seed))
	centers := make([]vec.Point, clusters)
	for i := range centers {
		c := make(vec.Point, d)
		for j := range c {
			c[j] = r.Float32()
		}
		centers[i] = c
	}
	pts := make([]vec.Point, n)
	for i := range pts {
		c := centers[r.Intn(clusters)]
		p := make(vec.Point, d)
		for j := range p {
			p[j] = float32(clip01(float64(c[j]) + r.NormFloat64()*sigma))
		}
		pts[i] = p
	}
	return pts
}

// GenCAD returns n 16-dimensional CAD-like points: Fourier coefficients
// of object-contour curvature. Objects belong to moderately many family
// clusters; coefficient magnitudes decay with frequency.
func GenCAD(seed int64, n int) []vec.Point {
	const d = 16
	const families = 24
	r := rand.New(rand.NewSource(seed))
	// Family prototypes with a decaying spectral envelope.
	protos := make([][]float64, families)
	for f := range protos {
		proto := make([]float64, d)
		for k := 0; k < d; k++ {
			envelope := 1 / float64(k+1)
			proto[k] = r.NormFloat64() * envelope
		}
		protos[f] = proto
	}
	pts := make([]vec.Point, n)
	for i := range pts {
		proto := protos[r.Intn(families)]
		p := make(vec.Point, d)
		for k := 0; k < d; k++ {
			envelope := 1 / float64(k+1)
			// Within-family variation is a third of the family spread.
			v := proto[k] + r.NormFloat64()*envelope*0.35
			// Normalize into [0,1] via a squashing map (coefficients are
			// naturally centered at 0 with decaying magnitude).
			p[k] = float32(0.5 + 0.5*math.Tanh(v))
		}
		pts[i] = p
	}
	return pts
}

// GenColor returns n 16-dimensional color-histogram-like points:
// non-negative bin weights summing to 1, with a weak genre bias so the
// data is only very slightly clustered.
func GenColor(seed int64, n int) []vec.Point {
	const d = 16
	const genres = 6
	r := rand.New(rand.NewSource(seed))
	// Genre bias: Dirichlet concentration parameters per genre. Real color
	// histograms are sparse — an image is dominated by a few colors — so
	// most bins get a small concentration and a genre-dependent handful
	// get a larger one.
	alphas := make([][]float64, genres)
	for g := range alphas {
		a := make([]float64, d)
		for k := range a {
			a[k] = 0.06 + 0.1*r.Float64()
		}
		for _, k := range r.Perm(d)[:3] {
			a[k] = 0.8 + 1.5*r.Float64()
		}
		alphas[g] = a
	}
	pts := make([]vec.Point, n)
	for i := range pts {
		a := alphas[r.Intn(genres)]
		p := make(vec.Point, d)
		var sum float64
		raw := make([]float64, d)
		for k := 0; k < d; k++ {
			raw[k] = gammaSample(r, a[k])
			sum += raw[k]
		}
		if sum <= 0 {
			sum = 1
		}
		for k := 0; k < d; k++ {
			p[k] = float32(raw[k] / sum)
		}
		pts[i] = p
	}
	return pts
}

// GenWeather returns n 9-dimensional weather-station-like points. Two
// latent variables (season phase, climate band) and altitude drive nine
// correlated features through smooth responses, yielding highly clustered
// data with a low fractal dimension, like the paper's WEATHER set.
func GenWeather(seed int64, n int) []vec.Point {
	const d = 9
	const stations = 60
	r := rand.New(rand.NewSource(seed))
	type station struct {
		lat, alt, cont float64 // latitude band, altitude, continentality
	}
	sts := make([]station, stations)
	for i := range sts {
		sts[i] = station{lat: r.Float64(), alt: r.Float64() * r.Float64(), cont: r.Float64()}
	}
	pts := make([]vec.Point, n)
	for i := range pts {
		st := sts[r.Intn(stations)]
		season := r.Float64() * 2 * math.Pi
		noise := func(s float64) float64 { return r.NormFloat64() * s * 0.3 }
		temp := 0.7 - 0.5*st.lat - 0.25*st.alt + 0.18*(1-st.lat)*math.Sin(season)*st.cont + noise(0.02)
		humidity := 0.45 + 0.3*math.Cos(season+2*st.lat) - 0.2*st.cont + noise(0.03)
		pressure := 0.6 - 0.35*st.alt + 0.05*math.Sin(season*2) + noise(0.015)
		wind := 0.25 + 0.3*st.lat*math.Abs(math.Sin(season)) + noise(0.04)
		precip := clip01(humidity*0.8 - 0.2*st.cont + 0.1*math.Sin(season+1) + noise(0.05))
		sunshine := clip01(0.5 + 0.4*math.Sin(season)*(1-st.lat) - 0.3*precip + noise(0.03))
		dewpoint := clip01(temp*0.8 + humidity*0.15 + noise(0.02))
		visibility := clip01(0.8 - 0.5*precip + noise(0.04))
		gust := clip01(wind*1.2 + noise(0.05))
		p := vec.Point{
			float32(clip01(temp)), float32(clip01(humidity)), float32(clip01(pressure)),
			float32(clip01(wind)), float32(precip), float32(sunshine),
			float32(dewpoint), float32(visibility), float32(gust),
		}
		if len(p) != d {
			panic("dataset: weather dimension mismatch")
		}
		pts[i] = p
	}
	return pts
}

// gammaSample draws from Gamma(alpha, 1) using Marsaglia–Tsang, with the
// standard boosting trick for alpha < 1.
func gammaSample(r *rand.Rand, alpha float64) float64 {
	if alpha < 1 {
		u := r.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gammaSample(r, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func clip01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
