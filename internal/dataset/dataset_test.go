package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fractal"
	"repro/internal/vec"
)

func TestGenerateDispatch(t *testing.T) {
	cases := []struct {
		name Name
		d    int
		want int
	}{
		{Uniform, 8, 8},
		{CAD, 0, 16},
		{Color, 0, 16},
		{Weather, 0, 9},
	}
	for _, c := range cases {
		pts, err := Generate(c.name, 1, 500, c.d)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(pts) != 500 {
			t.Fatalf("%s: %d points", c.name, len(pts))
		}
		for _, p := range pts {
			if len(p) != c.want {
				t.Fatalf("%s: dimension %d, want %d", c.name, len(p), c.want)
			}
		}
	}
	if _, err := Generate("bogus", 1, 10, 2); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := Generate(Uniform, 1, 10, 0); err == nil {
		t.Fatal("uniform without dimension should error")
	}
}

func TestNameDim(t *testing.T) {
	if Uniform.Dim() != 0 || CAD.Dim() != 16 || Color.Dim() != 16 || Weather.Dim() != 9 {
		t.Fatal("natural dimensions wrong")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []Name{CAD, Color, Weather} {
		a, _ := Generate(name, 42, 200, 0)
		b, _ := Generate(name, 42, 200, 0)
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%s not deterministic at point %d", name, i)
			}
		}
		c, _ := Generate(name, 43, 200, 0)
		same := true
		for i := range a {
			if !a[i].Equal(c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds gave identical data", name)
		}
	}
}

func TestSplit(t *testing.T) {
	pts := GenUniform(1, 100, 2)
	db, qs := Split(pts, 10)
	if len(db) != 90 || len(qs) != 10 {
		t.Fatalf("split sizes %d/%d", len(db), len(qs))
	}
	db2, qs2 := Split(pts, 1000)
	if db2 != nil || len(qs2) != 100 {
		t.Fatal("oversized query split should hand everything to queries")
	}
}

func TestValueRanges(t *testing.T) {
	for _, name := range []Name{CAD, Color, Weather} {
		pts, _ := Generate(name, 5, 2000, 0)
		for _, p := range pts {
			for j, v := range p {
				if v < 0 || v > 1 || math.IsNaN(float64(v)) {
					t.Fatalf("%s: coordinate %d = %f out of [0,1]", name, j, v)
				}
			}
		}
	}
}

func TestColorHistogramsNormalized(t *testing.T) {
	pts := GenColor(2, 1000)
	for i, p := range pts {
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative bin weight at %d", i)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("histogram %d sums to %f", i, sum)
		}
	}
}

// The generators must reproduce the clustering properties the paper
// reports: WEATHER and CAD clearly below the embedding dimension, COLOR
// higher than both, UNIFORM highest among the 16-d sets.
func TestFractalDimensionOrdering(t *testing.T) {
	const n = 8000
	uni, _ := Generate(Uniform, 1, n, 16)
	cad, _ := Generate(CAD, 1, n, 0)
	col, _ := Generate(Color, 1, n, 0)
	wea, _ := Generate(Weather, 1, n, 0)
	dUni := fractal.Estimate(uni, vec.Euclidean)
	dCad := fractal.Estimate(cad, vec.Euclidean)
	dCol := fractal.Estimate(col, vec.Euclidean)
	dWea := fractal.Estimate(wea, vec.Euclidean)

	if dWea > 6 {
		t.Fatalf("WEATHER D2 = %f, want low (highly clustered)", dWea)
	}
	if dCad > 6 {
		t.Fatalf("CAD D2 = %f, want moderate-low", dCad)
	}
	if dCol <= dCad || dCol <= dWea {
		t.Fatalf("COLOR D2 = %f should exceed CAD %f and WEATHER %f", dCol, dCad, dWea)
	}
	if dUni <= dCol {
		t.Fatalf("UNIFORM-16 D2 = %f should exceed COLOR %f", dUni, dCol)
	}
}

func TestGenClustered(t *testing.T) {
	pts := GenClustered(1, 1000, 4, 5, 0.02)
	if len(pts) != 1000 || len(pts[0]) != 4 {
		t.Fatal("wrong shape")
	}
	d := fractal.Estimate(pts, vec.Euclidean)
	uni := fractal.Estimate(GenUniform(1, 1000, 4), vec.Euclidean)
	if d >= uni {
		t.Fatalf("clustered D2 %f should be below uniform %f", d, uni)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	// Gamma(alpha, 1) has mean alpha and variance alpha.
	r := rand.New(rand.NewSource(9))
	for _, alpha := range []float64{0.2, 1, 3} {
		var sum, sumSq float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := gammaSample(r, alpha)
			if v < 0 {
				t.Fatalf("negative gamma sample %f", v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-alpha) > 0.1*alpha+0.02 {
			t.Fatalf("alpha=%f: mean %f", alpha, mean)
		}
		if math.Abs(variance-alpha) > 0.2*alpha+0.05 {
			t.Fatalf("alpha=%f: variance %f", alpha, variance)
		}
	}
}
