package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// publish registers the default registry's snapshot with expvar under
// the key "iq". Done lazily so programs that never start the debug
// server do not touch expvar.
func publish() {
	publishOnce.Do(func() {
		expvar.Publish("iq", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// DebugHandler returns an http.Handler serving the opt-in debug surface:
//
//	/metrics        registry snapshot as indented JSON
//	/debug/vars     expvar (includes the registry under "iq")
//	/debug/pprof/   the standard pprof profiles
func DebugHandler() http.Handler {
	publish()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		Default().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves the debug surface on addr (e.g. "localhost:6060")
// in a background goroutine. It returns the bound address (useful with a
// ":0" port) or an error if the listener cannot be opened. The server
// lives for the remainder of the process.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
