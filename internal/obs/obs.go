// Package obs is the observability layer of the reproduction: a
// zero-dependency (stdlib-only) home for
//
//   - a process-wide metrics Registry (atomic counters, gauges, and
//     bounded latency histograms with p50/p95/p99), published on demand
//     via expvar and a JSON endpoint (see StartDebugServer);
//   - an optional per-query QueryTrace that records, per index level,
//     the simulated seek/transfer/CPU cost, the scheduler's batch
//     decisions, pages scheduled vs. pruned, candidate and refinement
//     counts, and buffer-pool hits — the raw material behind
//     `iqtool -trace` and the paper's T1st/T2nd/T3rd decomposition.
//
// Observation is strictly opt-in: the store session and the access
// methods carry a nil-checked Observer hook, so with no observer
// attached the query path pays one nil check per cost event and nothing
// else (see BenchmarkObserverOverhead and BENCH_obs.json).
package obs

// CPUKind classifies a CPU charge for tracing.
type CPUKind uint8

// The CPU charge kinds mirrored from the store session.
const (
	// CPUOther is an uncategorized CPU charge.
	CPUOther CPUKind = iota
	// CPUDist is the cost of exact distance computations.
	CPUDist
	// CPUApprox is the cost of decoding and bounding approximations.
	CPUApprox
)

// String returns the kind's short label.
func (k CPUKind) String() string {
	switch k {
	case CPUDist:
		return "dist"
	case CPUApprox:
		return "approx"
	default:
		return "other"
	}
}

// ReadTier tells an observer which layer served a read.
type ReadTier uint8

const (
	// ReadBackend is a read charged against the raw backend (no pool).
	ReadBackend ReadTier = iota
	// ReadPoolMiss is a backend read performed because the buffer pool
	// did not hold the blocks (charged like a backend read).
	ReadPoolMiss
	// ReadPoolHit reports blocks served from the buffer pool; hits
	// charge zero simulated seek/transfer time.
	ReadPoolHit
	// ReadShared reports blocks delivered by another query's fetch under
	// scan sharing: the leader query paid the seek and transfer, the
	// observing query consumed the bytes for free. Like pool hits, shared
	// reads charge zero simulated time and are excluded from trace totals.
	ReadShared
)

// Observer receives the cost events of one store session. Implementations
// must be cheap: the hooks run inside the query path. All methods take
// primitive arguments so that observers need no knowledge of the store.
//
// An Observer is attached per session (Session.SetObserver) and is not
// required to be safe for concurrent use unless the session is shared.
type Observer interface {
	// ObserveRead reports one read operation against the named file.
	// For ReadPoolHit events seeks is 0 and blocks counts the cached
	// blocks (which charge no simulated time); for the other tiers the
	// values mirror the session's cost charge exactly.
	ObserveRead(file string, seeks, blocks int, tier ReadTier)
	// ObserveCPU reports one CPU charge, attributed to the named file
	// ("" when unattributed), in seconds.
	ObserveCPU(file string, kind CPUKind, seconds float64)
	// ObserveWrite reports one charged write operation (maintenance
	// path): seeks and blocks mirror the session's charge.
	ObserveWrite(file string, seeks, blocks int)
}

// TraceFrom returns the *QueryTrace behind an Observer, or nil if the
// observer is nil or of another type. Access methods use it to record
// plan-level events (candidates, refinements) on a best-effort basis.
func TraceFrom(o Observer) *QueryTrace {
	if t, ok := o.(*QueryTrace); ok {
		return t
	}
	return nil
}
