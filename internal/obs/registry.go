package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histCap bounds the sample reservoir of a Histogram. Once full, new
// observations overwrite the oldest (a sliding window over the last
// histCap samples) — bounded memory, recent-history quantiles.
const histCap = 1024

// Histogram records float64 observations (typically simulated latencies
// in seconds) in a bounded sliding window and reports count, sum,
// min/max over all observations ever, and p50/p95/p99 over the window.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	next    int // overwrite cursor once the window is full
	count   int64
	sum     float64
	min     float64
	max     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < histCap {
		h.samples = append(h.samples, v)
		return
	}
	h.samples[h.next] = v
	h.next = (h.next + 1) % histCap
}

// HistogramSnapshot is a point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns the histogram's current statistics. Quantiles are
// computed over the bounded sample window (nearest-rank).
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if len(h.samples) == 0 {
		return s
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the nearest-rank q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Registry is a namespace of counters, gauges, and histograms, created
// on first use and safe for concurrent access. The zero value is ready
// to use; most callers share the process-wide Default registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry Registry

// Default returns the process-wide registry.
func Default() *Registry { return &defaultRegistry }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of a whole Registry, JSON-encodable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{name, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{name, g})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.histograms))
	for name, h := range r.histograms {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{name, h})
	}
	r.mu.Unlock()

	var s Snapshot
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for _, e := range counters {
			s.Counters[e.name] = e.c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for _, e := range gauges {
			s.Gauges[e.name] = e.g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for _, e := range hists {
			s.Histograms[e.name] = e.h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Format renders the snapshot as sorted human-readable lines.
func (s Snapshot) Format() string {
	var out string
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out += fmt.Sprintf("%-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out += fmt.Sprintf("%-40s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		out += fmt.Sprintf("%-40s count=%d mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n",
			n, h.Count, h.Mean, h.P50, h.P95, h.P99)
	}
	return out
}
