package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *QueryTrace
	tr.ObserveRead("f", 1, 2, ReadBackend)
	tr.ObserveCPU("f", CPUDist, 0.5)
	tr.ObserveWrite("f", 1, 2)
	tr.AddBatch(BatchDecision{})
	tr.NotePending(3)
	tr.AddPages(1)
	tr.AddPruned(1)
	tr.AddCandidates(1)
	tr.AddRefinement(2)
	tr.SetCosts(1, 2)
	tr.SetLabel("x")
	if got := tr.Time(); got != 0 {
		t.Fatalf("nil trace Time = %v, want 0", got)
	}
	if s, b, r, c := tr.Totals(); s != 0 || b != 0 || r != 0 || c != 0 {
		t.Fatalf("nil trace Totals = %d %d %d %v", s, b, r, c)
	}
	if tr.Format() != "(no trace)" {
		t.Fatalf("nil trace Format = %q", tr.Format())
	}
}

func TestTraceAccumulation(t *testing.T) {
	tr := NewQueryTrace("knn k=3")
	tr.SetCosts(0.01, 0.001)
	tr.ObserveRead("iq.dir", 1, 4, ReadBackend)
	tr.ObserveRead("iq.quant", 1, 8, ReadPoolMiss)
	tr.ObserveRead("iq.quant", 0, 8, ReadPoolHit) // cached: no cost
	tr.ObserveRead("iq.exact", 1, 2, ReadBackend)
	tr.ObserveCPU("iq.quant", CPUApprox, 0.002)
	tr.ObserveCPU("iq.exact", CPUDist, 0.003)
	tr.ObserveCPU("", CPUOther, 0.001)

	seeks, blocks, reads, cpu := tr.Totals()
	if seeks != 3 || blocks != 14 || reads != 3 {
		t.Fatalf("Totals = %d seeks %d blocks %d reads", seeks, blocks, reads)
	}
	if diff := cpu - 0.006; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cpu = %v, want 0.006", cpu)
	}
	want := 3*0.01 + 14*0.001 + 0.006
	if diff := tr.Time() - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Time = %v, want %v", tr.Time(), want)
	}
	if tr.CachedBlocks() != 8 {
		t.Fatalf("CachedBlocks = %d, want 8", tr.CachedBlocks())
	}
	q := tr.Level("iq.quant")
	if q.ApproxCPU != 0.002 || q.CachedBlocks != 8 {
		t.Fatalf("quant level = %+v", q)
	}

	out := tr.Format()
	for _, want := range []string{"knn k=3", "iq.dir", "iq.quant", "iq.exact", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestTraceBatchesAndFunnel(t *testing.T) {
	tr := NewQueryTrace("")
	tr.SetLabel("range r=0.2")
	tr.SetLabel("ignored") // label already set
	if tr.Label != "range r=0.2" {
		t.Fatalf("Label = %q", tr.Label)
	}
	tr.AddBatch(BatchDecision{Pivot: 5, First: 3, Last: 7})
	tr.NotePending(2)
	tr.AddBatch(BatchDecision{Pivot: -1, First: 10, Last: 11, Pending: 2})
	if len(tr.Batches) != 2 {
		t.Fatalf("Batches = %d", len(tr.Batches))
	}
	if b := tr.Batches[0]; b.Pending != 2 || b.Pages() != 5 {
		t.Fatalf("batch 0 = %+v (pages %d)", b, b.Pages())
	}
	tr.AddPages(7)
	tr.AddPruned(3)
	tr.AddCandidates(12)
	tr.AddRefinement(4)
	tr.AddRefinement(1)
	if tr.Refinements != 2 || tr.RefinedPoints != 5 {
		t.Fatalf("refinements = %d/%d", tr.Refinements, tr.RefinedPoints)
	}
	out := tr.Format()
	if !strings.Contains(out, "pivot 5") || !strings.Contains(out, "run: pages 10..11") {
		t.Fatalf("Format batches:\n%s", out)
	}
	if !strings.Contains(out, "7 scheduled, 3 pruned") {
		t.Fatalf("Format funnel:\n%s", out)
	}
}

func TestTraceFrom(t *testing.T) {
	tr := NewQueryTrace("x")
	if TraceFrom(tr) != tr {
		t.Fatal("TraceFrom did not unwrap")
	}
	if TraceFrom(nil) != nil {
		t.Fatal("TraceFrom(nil) != nil")
	}
	// A typed-nil *QueryTrace stays usable: its methods are nil-safe.
	var nilTrace *QueryTrace
	if got := TraceFrom(nilTrace); got != nil {
		got.AddPages(1) // must not panic
	}
}

func TestRegistryCountersGauges(t *testing.T) {
	var r Registry
	c := r.Counter("queries")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("queries") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("pool.bytes")
	g.Set(100)
	g.Add(-40)
	if g.Value() != 60 {
		t.Fatalf("gauge = %d", g.Value())
	}
	s := r.Snapshot()
	if s.Counters["queries"] != 5 || s.Gauges["pool.bytes"] != 60 {
		t.Fatalf("snapshot = %+v", s)
	}
	if !strings.Contains(s.Format(), "queries") {
		t.Fatalf("Format:\n%s", s.Format())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("quantiles = %v %v %v", s.P50, s.P95, s.P99)
	}
	if diff := s.Mean - 50.5; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestHistogramWindowBounded(t *testing.T) {
	var h Histogram
	for i := 0; i < histCap; i++ {
		h.Observe(1000) // old regime, will be fully overwritten
	}
	for i := 0; i < histCap; i++ {
		h.Observe(1)
	}
	s := h.Snapshot()
	if s.Count != int64(2*histCap) {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 1000 { // all-time max survives the window
		t.Fatalf("max = %v", s.Max)
	}
	if s.P99 != 1 { // quantiles reflect only the recent window
		t.Fatalf("p99 = %v, want 1", s.P99)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge(fmt.Sprintf("g%d", w%2)).Add(1)
				r.Histogram("h").Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 4000 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 4000 {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	var r Registry
	r.Counter("a").Add(2)
	r.Histogram("lat").Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if s.Counters["a"] != 2 || s.Histograms["lat"].Count != 1 {
		t.Fatalf("round-trip = %+v", s)
	}
}

func TestDebugServer(t *testing.T) {
	Default().Counter("debugtest.hits").Add(7)
	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["debugtest.hits"] < 7 {
		t.Fatalf("metrics endpoint snapshot = %+v", s)
	}
}
