package obs

import (
	"fmt"
	"sort"
	"strings"
)

// LevelTrace accumulates the charged cost of one file (= one level of the
// IQ-tree: directory, quantized, exact) during a traced query. The
// counter fields mirror the session's Stats exactly: pool hits are kept
// separate (CachedBlocks) because they charge no simulated time.
type LevelTrace struct {
	File         string
	Seeks        int
	Blocks       int
	Reads        int
	Writes       int
	CachedBlocks int     // blocks served by the buffer pool (zero cost)
	SharedBlocks int     // blocks delivered by another query's fetch (zero cost)
	CPUSeconds   float64 // CPU attributed to this level
	DistCPU      float64 // … of which exact distance computations
	ApproxCPU    float64 // … of which approximation decode/bound work
}

// Time returns the level's simulated time under the given per-seek and
// per-block costs.
func (l *LevelTrace) Time(seek, xfer float64) float64 {
	return float64(l.Seeks)*seek + float64(l.Blocks)*xfer + l.CPUSeconds
}

// BatchDecision records one scheduler decision: the contiguous page run
// [First, Last] loaded around Pivot (Pivot < 0 for known-set runs of
// range-style queries, where no pivot exists). Pending counts the pages
// of the run that were still needed when it was scheduled; the rest were
// over-read because transferring them was cheaper than seeking past.
type BatchDecision struct {
	Pivot   int
	First   int
	Last    int
	Pending int
}

// Pages returns the number of pages transferred by the batch.
func (b BatchDecision) Pages() int { return b.Last - b.First + 1 }

// QueryTrace records the physical work of one query: per-level cost, the
// page scheduler's batch decisions, and the funnel from scheduled pages
// through candidates to exact-geometry refinements. It implements
// Observer, so attaching it to a session (or passing it to the *Trace
// query variants, which attach it for you) captures every cost charge.
//
// All recording methods are nil-safe: calling them on a nil *QueryTrace
// is a no-op, so query code traces unconditionally and pays only a nil
// check when tracing is off.
type QueryTrace struct {
	// Label names the query (e.g. "knn k=10"); set by the traced query
	// entry points when empty.
	Label string

	// Levels holds per-file cost in first-touch order.
	Levels []*LevelTrace

	// Batches lists the scheduler's read-batch decisions in order.
	Batches []BatchDecision

	// PagesRead counts quantized pages transferred (including over-read).
	PagesRead int
	// PagesPruned counts transferred pages that contributed nothing
	// (already processed, logically deleted, or pruned by the current
	// search bound before decoding).
	PagesPruned int
	// Candidates counts point approximations that entered the candidate
	// set (could not be decided on the quantized representation alone).
	Candidates int
	// Refinements counts third-level exact-page accesses.
	Refinements int
	// RefinedPoints counts individual points resolved against exact
	// geometry (several per exact-page access when candidates share a
	// partition).
	RefinedPoints int
	// DegradedReads counts pages answered from their exact (level-3)
	// shadow because the quantized page was quarantined after a checksum
	// failure. Results stay exact; only the cost degrades.
	DegradedReads int
	// SharedPages counts quantized pages this query consumed from another
	// query's fetch under scan sharing. The leader query's trace carries
	// the transfer (PagesRead); shared pages charge nothing here, so they
	// are excluded from Totals — keeping trace totals equal to the
	// session's Stats in shared mode too.
	SharedPages int
	// SkippedPages counts pending pages the approximate execution mode
	// left unfetched after its stopping rule fired (0 for exact queries).
	// Skipped pages charge nothing — they are exactly the reads that were
	// not performed — so they are excluded from Totals and trace totals
	// still equal the session's Stats.
	SkippedPages int
	// TermProb is the estimated probability, recorded when the
	// approximate stopping rule fired, that some skipped page could still
	// have improved the result: the value that dropped below ε, or the
	// remaining-improvement estimate at a budget stop. Meaningful only
	// when Terminated is set (a probability of 0 is legitimate).
	TermProb float64
	// Terminated reports that the approximate stopping rule fired.
	Terminated bool

	// SeekCost and XferCost are the per-seek and per-block simulated
	// costs used to render counter sums as seconds (set by SetCosts).
	SeekCost float64
	XferCost float64

	// last caches the most recently touched level: traces see at most a
	// handful of files (one per tree level) but thousands of events, and
	// consecutive events usually hit the same file.
	last *LevelTrace
}

// NewQueryTrace returns an empty trace with the given label.
func NewQueryTrace(label string) *QueryTrace { return &QueryTrace{Label: label} }

// SetCosts records the per-seek and per-block simulated costs so the
// trace can render times. Nil-safe.
func (t *QueryTrace) SetCosts(seek, xfer float64) {
	if t == nil {
		return
	}
	t.SeekCost, t.XferCost = seek, xfer
}

// SetLabel sets the label unless one is already present. Nil-safe.
func (t *QueryTrace) SetLabel(label string) {
	if t == nil || t.Label != "" {
		return
	}
	t.Label = label
}

// Level returns (creating if needed) the per-level accumulator for file.
// A linear scan beats a map here: a query touches at most a few files.
func (t *QueryTrace) Level(file string) *LevelTrace {
	if t.last != nil && t.last.File == file {
		return t.last
	}
	for _, l := range t.Levels {
		if l.File == file {
			t.last = l
			return l
		}
	}
	l := &LevelTrace{File: file}
	t.Levels = append(t.Levels, l)
	t.last = l
	return l
}

// ObserveRead implements Observer.
func (t *QueryTrace) ObserveRead(file string, seeks, blocks int, tier ReadTier) {
	if t == nil {
		return
	}
	l := t.Level(file)
	if tier == ReadPoolHit {
		l.CachedBlocks += blocks
		return
	}
	if tier == ReadShared {
		l.SharedBlocks += blocks
		return
	}
	l.Seeks += seeks
	l.Blocks += blocks
	l.Reads++
}

// ObserveCPU implements Observer.
func (t *QueryTrace) ObserveCPU(file string, kind CPUKind, seconds float64) {
	if t == nil {
		return
	}
	l := t.Level(file)
	l.CPUSeconds += seconds
	switch kind {
	case CPUDist:
		l.DistCPU += seconds
	case CPUApprox:
		l.ApproxCPU += seconds
	}
}

// ObserveWrite implements Observer.
func (t *QueryTrace) ObserveWrite(file string, seeks, blocks int) {
	if t == nil {
		return
	}
	l := t.Level(file)
	l.Seeks += seeks
	l.Blocks += blocks
	l.Writes++
}

// AddBatch appends one scheduler decision. Nil-safe.
func (t *QueryTrace) AddBatch(b BatchDecision) {
	if t == nil {
		return
	}
	t.Batches = append(t.Batches, b)
}

// NotePending sets the Pending count of the most recent batch (the
// scheduler records the extent, the search knows how many pages of it
// were still needed). Nil-safe; a no-op when no batch was recorded.
func (t *QueryTrace) NotePending(pending int) {
	if t == nil || len(t.Batches) == 0 {
		return
	}
	t.Batches[len(t.Batches)-1].Pending = pending
}

// AddPages counts n quantized pages as transferred. Nil-safe.
func (t *QueryTrace) AddPages(n int) {
	if t == nil {
		return
	}
	t.PagesRead += n
}

// AddPruned counts n transferred pages as contributing nothing. Nil-safe.
func (t *QueryTrace) AddPruned(n int) {
	if t == nil {
		return
	}
	t.PagesPruned += n
}

// AddCandidates counts n point approximations entering the candidate
// set. Nil-safe.
func (t *QueryTrace) AddCandidates(n int) {
	if t == nil {
		return
	}
	t.Candidates += n
}

// AddDegraded counts n pages served from their exact shadow instead of
// their (quarantined) quantized representation. Nil-safe.
func (t *QueryTrace) AddDegraded(n int) {
	if t == nil {
		return
	}
	t.DegradedReads += n
}

// AddShared counts n quantized pages consumed from another query's
// fetch (scan sharing; zero cost for this query). Nil-safe.
func (t *QueryTrace) AddShared(n int) {
	if t == nil {
		return
	}
	t.SharedPages += n
}

// AddSkipped counts n pending pages left unfetched by the approximate
// stopping rule. Nil-safe.
func (t *QueryTrace) AddSkipped(n int) {
	if t == nil {
		return
	}
	t.SkippedPages += n
}

// NoteTermination records that the approximate stopping rule fired, with
// the remaining-improvement probability it observed. Nil-safe.
func (t *QueryTrace) NoteTermination(prob float64) {
	if t == nil {
		return
	}
	t.Terminated = true
	t.TermProb = prob
}

// Degraded reports whether the traced query paid any degraded reads.
func (t *QueryTrace) Degraded() bool { return t != nil && t.DegradedReads > 0 }

// AddRefinement counts one exact-page access resolving points exact
// points. Nil-safe.
func (t *QueryTrace) AddRefinement(points int) {
	if t == nil {
		return
	}
	t.Refinements++
	t.RefinedPoints += points
}

// Totals sums the charged counters across all levels. The result matches
// the session's aggregate Stats exactly (pool hits excluded, as they
// charge nothing).
func (t *QueryTrace) Totals() (seeks, blocks, reads int, cpuSeconds float64) {
	if t == nil {
		return
	}
	for _, l := range t.Levels {
		seeks += l.Seeks
		blocks += l.Blocks
		reads += l.Reads
		cpuSeconds += l.CPUSeconds
	}
	return
}

// Time returns the total simulated seconds of the traced query.
func (t *QueryTrace) Time() float64 {
	if t == nil {
		return 0
	}
	seeks, blocks, _, cpu := t.Totals()
	return float64(seeks)*t.SeekCost + float64(blocks)*t.XferCost + cpu
}

// CachedBlocks returns the total blocks served by the buffer pool.
func (t *QueryTrace) CachedBlocks() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, l := range t.Levels {
		n += l.CachedBlocks
	}
	return n
}

// SharedBlocks returns the total blocks delivered by other queries'
// fetches under scan sharing (zero cost for this query).
func (t *QueryTrace) SharedBlocks() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, l := range t.Levels {
		n += l.SharedBlocks
	}
	return n
}

// Format renders the trace as a human-readable query plan: a per-level
// cost table followed by the scheduler's decisions and the candidate/
// refinement funnel.
func (t *QueryTrace) Format() string {
	if t == nil {
		return "(no trace)"
	}
	var b strings.Builder
	label := t.Label
	if label == "" {
		label = "query"
	}
	fmt.Fprintf(&b, "trace: %s — %.4fs simulated\n", label, t.Time())
	fmt.Fprintf(&b, "  %-12s %6s %7s %6s %7s %9s %9s %9s %10s\n",
		"level", "seeks", "blocks", "ops", "cached", "seek(s)", "xfer(s)", "cpu(s)", "total(s)")
	var ts, tb, to, tc int
	var tcpu float64
	for _, l := range t.Levels {
		ops := l.Reads + l.Writes
		fmt.Fprintf(&b, "  %-12s %6d %7d %6d %7d %9.4f %9.4f %9.4f %10.4f\n",
			l.File, l.Seeks, l.Blocks, ops, l.CachedBlocks,
			float64(l.Seeks)*t.SeekCost, float64(l.Blocks)*t.XferCost,
			l.CPUSeconds, l.Time(t.SeekCost, t.XferCost))
		ts += l.Seeks
		tb += l.Blocks
		to += ops
		tc += l.CachedBlocks
		tcpu += l.CPUSeconds
	}
	fmt.Fprintf(&b, "  %-12s %6d %7d %6d %7d %9.4f %9.4f %9.4f %10.4f\n",
		"total", ts, tb, to, tc,
		float64(ts)*t.SeekCost, float64(tb)*t.XferCost, tcpu, t.Time())
	if len(t.Batches) > 0 {
		fmt.Fprintf(&b, "  batches: %d —", len(t.Batches))
		max := len(t.Batches)
		const shown = 8
		if max > shown {
			max = shown
		}
		for _, dec := range t.Batches[:max] {
			if dec.Pivot >= 0 {
				fmt.Fprintf(&b, " [pivot %d: pages %d..%d, %d pending]", dec.Pivot, dec.First, dec.Last, dec.Pending)
			} else {
				fmt.Fprintf(&b, " [run: pages %d..%d, %d pending]", dec.First, dec.Last, dec.Pending)
			}
		}
		if len(t.Batches) > shown {
			fmt.Fprintf(&b, " … (%d more)", len(t.Batches)-shown)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  pages: %d scheduled, %d pruned; candidates: %d; refinements: %d accesses / %d points\n",
		t.PagesRead, t.PagesPruned, t.Candidates, t.Refinements, t.RefinedPoints)
	if t.DegradedReads > 0 {
		fmt.Fprintf(&b, "  DEGRADED: %d pages answered from their exact shadow (quantized page quarantined)\n", t.DegradedReads)
	}
	if tc > 0 {
		fmt.Fprintf(&b, "  buffer pool: %d blocks served from cache (zero simulated cost)\n", tc)
	}
	if t.SharedPages > 0 {
		fmt.Fprintf(&b, "  scan sharing: %d pages (%d blocks) delivered by other queries' fetches (zero cost here)\n",
			t.SharedPages, t.SharedBlocks())
	}
	if t.Terminated {
		fmt.Fprintf(&b, "  APPROX: terminated early, %d pages skipped, remaining improvement probability %.2e\n",
			t.SkippedPages, t.TermProb)
	}
	return b.String()
}

// SortedLevels returns the levels sorted by file name (for deterministic
// machine-readable output; Levels itself keeps first-touch order).
func (t *QueryTrace) SortedLevels() []*LevelTrace {
	if t == nil {
		return nil
	}
	out := make([]*LevelTrace, len(t.Levels))
	copy(out, t.Levels)
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}
