// Package fractal estimates the fractal dimension D_F of a point set.
//
// The IQ-tree cost model (paper Section 3.4, Eq. 13–18) replaces the
// uniformity/independence assumption by the fractal dimension: correlated
// data concentrates on a D_F-dimensional subpart of the d-dimensional data
// space, and the number of points enclosed by a growing volume scales with
// exponent D_F/d instead of 1. This package provides the two classic
// estimators the paper's references use: the correlation dimension D2
// (Belussi/Faloutsos) and the box-counting dimension D0.
package fractal

import (
	"math"
	"sort"

	"repro/internal/vec"
)

// MaxSample bounds the number of points the estimators examine; larger
// inputs are subsampled deterministically with a fixed stride.
const MaxSample = 2048

// sample returns a deterministic subsample of at most MaxSample points.
func sample(pts []vec.Point) []vec.Point {
	if len(pts) <= MaxSample {
		return pts
	}
	stride := len(pts) / MaxSample
	out := make([]vec.Point, 0, MaxSample)
	for i := 0; i < len(pts) && len(out) < MaxSample; i += stride {
		out = append(out, pts[i])
	}
	return out
}

// CorrelationDimension estimates the correlation dimension D2 of the point
// set: the slope of log C(r) against log r, where C(r) is the fraction of
// point pairs within distance r. The slope is fit by least squares over
// the small-radius scaling region of the observed pair distances. The
// result is clamped to [0.5, d].
func CorrelationDimension(pts []vec.Point, met vec.Metric) float64 {
	if len(pts) == 0 {
		return 1
	}
	d := float64(len(pts[0]))
	s := sample(pts)
	if len(s) < 8 {
		return d
	}
	// All pairwise distances of the sample.
	dists := make([]float64, 0, len(s)*(len(s)-1)/2)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if dd := met.Dist(s[i], s[j]); dd > 0 {
				dists = append(dists, dd)
			}
		}
	}
	if len(dists) < 16 {
		// Degenerate data (most points identical): dimension ~0.
		return 0.5
	}
	sort.Float64s(dists)
	// Fit over the small-radius scaling region (0.2%–5% quantiles of the
	// pair distances): at larger radii boundary effects flatten log C(r)
	// and the slope systematically underestimates D2. Note the classic
	// finite-sample (Eckmann–Ruelle) bound still caps resolvable D2 at
	// roughly 2·log10(#pairs); high uniform dimensionalities read low.
	lo := dists[len(dists)/500]   // 0.2th percentile
	hi := dists[len(dists)/20]    // 5th percentile
	if lo <= 0 || hi <= lo*1.01 { // no scaling region
		return clamp(d, 0.5, d)
	}
	// Geometric ladder of radii across the scaling region; C(r) by binary
	// search in the sorted distance list.
	const steps = 12
	var xs, ys []float64
	for k := 0; k <= steps; k++ {
		r := lo * math.Pow(hi/lo, float64(k)/steps)
		c := sort.SearchFloat64s(dists, r)
		if c == 0 {
			continue
		}
		xs = append(xs, math.Log(r))
		ys = append(ys, math.Log(float64(c)/float64(len(dists))))
	}
	slope, ok := fitSlope(xs, ys)
	if !ok {
		return clamp(d, 0.5, d)
	}
	return clamp(slope, 0.5, d)
}

// BoxCountingDimension estimates the box-counting dimension D0: the slope
// of log N(s) against log(1/s), where N(s) is the number of grid cells of
// side s (relative to the data MBR) occupied by at least one point. The
// result is clamped to [0.5, d].
func BoxCountingDimension(pts []vec.Point) float64 {
	if len(pts) == 0 {
		return 1
	}
	d := len(pts[0])
	s := sample(pts)
	if len(s) < 8 {
		return float64(d)
	}
	mbr := vec.MBROf(s)
	// Count occupied cells at grid resolutions 2^1 .. 2^J per dimension.
	// The finest useful resolution keeps the expected occupancy well below
	// one point per cell along the fitted range.
	const maxLevel = 6
	var xs, ys []float64
	for level := 1; level <= maxLevel; level++ {
		cells := occupiedCells(s, mbr, level)
		if cells <= 1 {
			continue
		}
		xs = append(xs, float64(level)*math.Ln2) // log(1/s), s = 2^-level
		ys = append(ys, math.Log(float64(cells)))
		if cells >= len(s) { // saturated: every point in its own cell
			break
		}
	}
	slope, ok := fitSlope(xs, ys)
	if !ok {
		return float64(d)
	}
	return clamp(slope, 0.5, float64(d))
}

// occupiedCells counts distinct grid cells of side 2^-level (relative to
// mbr) containing at least one point, via hashing of cell coordinates.
func occupiedCells(pts []vec.Point, mbr vec.MBR, level int) int {
	d := mbr.Dim()
	cellsPerDim := float64(int64(1) << uint(level))
	seen := make(map[uint64]struct{}, len(pts))
	for _, p := range pts {
		var h uint64 = 1469598103934665603 // FNV offset basis
		for i := 0; i < d; i++ {
			lo := float64(mbr.Lo[i])
			side := float64(mbr.Hi[i]) - lo
			var c uint64
			if side > 0 {
				v := math.Floor((float64(p[i]) - lo) / side * cellsPerDim)
				if v >= cellsPerDim {
					v = cellsPerDim - 1
				}
				if v < 0 {
					v = 0
				}
				c = uint64(v)
			}
			h ^= c
			h *= 1099511628211 // FNV prime
		}
		seen[h] = struct{}{}
	}
	return len(seen)
}

// Estimate returns the fractal dimension used by the cost model: the
// correlation dimension, which the paper's cost-model references [2, 3, 8]
// recommend for selectivity estimation.
func Estimate(pts []vec.Point, met vec.Metric) float64 {
	return CorrelationDimension(pts, met)
}

// fitSlope performs an ordinary least-squares fit of ys against xs and
// returns the slope. ok is false when fewer than two distinct x values
// exist.
func fitSlope(xs, ys []float64) (slope float64, ok bool) {
	if len(xs) < 2 {
		return 0, false
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
