package fractal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func uniformPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

// linePoints embeds a 1-dimensional manifold in d dimensions.
func linePoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		tt := r.Float64()
		p := make(vec.Point, d)
		for j := range p {
			p[j] = float32(tt * float64(j+1) / float64(d))
		}
		pts[i] = p
	}
	return pts
}

// planePoints embeds a 2-dimensional manifold in d dimensions.
func planePoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		u, v := r.Float64(), r.Float64()
		p := make(vec.Point, d)
		for j := range p {
			if j%2 == 0 {
				p[j] = float32(u)
			} else {
				p[j] = float32(v * (1 + 0.1*float64(j)))
			}
		}
		pts[i] = p
	}
	return pts
}

func TestCorrelationDimensionLowDimensionalManifolds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	line := CorrelationDimension(linePoints(r, 5000, 8), vec.Euclidean)
	if math.Abs(line-1) > 0.35 {
		t.Fatalf("line D2 = %f, want ~1", line)
	}
	plane := CorrelationDimension(planePoints(r, 5000, 8), vec.Euclidean)
	if math.Abs(plane-2) > 0.6 {
		t.Fatalf("plane D2 = %f, want ~2", plane)
	}
	if line >= plane {
		t.Fatalf("line D2 %f should be below plane D2 %f", line, plane)
	}
}

func TestCorrelationDimensionLowUniformDims(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, d := range []int{2, 3} {
		got := CorrelationDimension(uniformPoints(r, 5000, d), vec.Euclidean)
		if math.Abs(got-float64(d)) > 0.7 {
			t.Fatalf("uniform d=%d: D2 = %f", d, got)
		}
	}
}

func TestCorrelationDimensionOrderingAcrossDims(t *testing.T) {
	// In high dimensions the estimator is biased low (finite-sample
	// bound), but the ordering must be preserved.
	r := rand.New(rand.NewSource(3))
	d4 := CorrelationDimension(uniformPoints(r, 5000, 4), vec.Euclidean)
	d8 := CorrelationDimension(uniformPoints(r, 5000, 8), vec.Euclidean)
	d16 := CorrelationDimension(uniformPoints(r, 5000, 16), vec.Euclidean)
	if !(d4 < d8 && d8 < d16) {
		t.Fatalf("ordering broken: %f %f %f", d4, d8, d16)
	}
}

func TestCorrelationDimensionClamped(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := uniformPoints(r, 1000, 3)
	got := CorrelationDimension(pts, vec.Euclidean)
	if got < 0.5 || got > 3 {
		t.Fatalf("D2 %f outside clamp [0.5, 3]", got)
	}
}

func TestCorrelationDimensionDegenerateInputs(t *testing.T) {
	if got := CorrelationDimension(nil, vec.Euclidean); got != 1 {
		t.Fatalf("empty input: %f", got)
	}
	// All points identical: nearly all pair distances are 0.
	same := make([]vec.Point, 100)
	for i := range same {
		same[i] = vec.Point{1, 2, 3}
	}
	if got := CorrelationDimension(same, vec.Euclidean); got != 0.5 {
		t.Fatalf("identical points: %f, want 0.5 (clamp floor)", got)
	}
	// Too few points: fall back to the embedding dimension.
	few := []vec.Point{{0, 0}, {1, 1}}
	if got := CorrelationDimension(few, vec.Euclidean); got != 2 {
		t.Fatalf("few points: %f, want 2", got)
	}
}

func TestBoxCountingDimension(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	line := BoxCountingDimension(linePoints(r, 4000, 6))
	if math.Abs(line-1) > 0.4 {
		t.Fatalf("line D0 = %f, want ~1", line)
	}
	uni2 := BoxCountingDimension(uniformPoints(r, 4000, 2))
	if math.Abs(uni2-2) > 0.6 {
		t.Fatalf("uniform 2-d D0 = %f, want ~2", uni2)
	}
	if line >= uni2 {
		t.Fatalf("line D0 %f should be below plane D0 %f", line, uni2)
	}
	if got := BoxCountingDimension(nil); got != 1 {
		t.Fatalf("empty input: %f", got)
	}
}

func TestEstimateIsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := uniformPoints(r, 3000, 5)
	a := Estimate(pts, vec.Euclidean)
	b := Estimate(pts, vec.Euclidean)
	if a != b {
		t.Fatalf("estimate not deterministic: %f vs %f", a, b)
	}
}

func TestFitSlope(t *testing.T) {
	// Perfect line y = 3x + 1.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 4, 7, 10}
	slope, ok := fitSlope(xs, ys)
	if !ok || math.Abs(slope-3) > 1e-12 {
		t.Fatalf("slope %f ok=%v", slope, ok)
	}
	if _, ok := fitSlope([]float64{1}, []float64{1}); ok {
		t.Fatal("single point should not fit")
	}
	if _, ok := fitSlope([]float64{2, 2}, []float64{1, 5}); ok {
		t.Fatal("vertical data should not fit")
	}
}

func TestSampleBounds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	big := uniformPoints(r, MaxSample*5, 2)
	s := sample(big)
	if len(s) > MaxSample {
		t.Fatalf("sample too large: %d", len(s))
	}
	small := uniformPoints(r, 10, 2)
	if len(sample(small)) != 10 {
		t.Fatal("small inputs should pass through")
	}
}
