package pagesched

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/store"
	"repro/internal/vec"
)

func testCfg() store.Config {
	// Horizon v = Seek/Xfer = 10 blocks.
	return store.Config{BlockSize: 4096, Seek: 0.01, Xfer: 0.001}
}

func TestPlanKnownSetSinglePage(t *testing.T) {
	runs := PlanKnownSet([]int{5}, 2, testCfg(), 0)
	if len(runs) != 1 || runs[0].Pos != 5 || runs[0].Blocks != 2 {
		t.Fatalf("runs = %+v", runs)
	}
	if PlanKnownSet(nil, 1, testCfg(), 0) != nil {
		t.Fatal("empty input should give no runs")
	}
}

func TestPlanKnownSetOverreadVsSeek(t *testing.T) {
	cfg := testCfg() // over-read gaps < 10 blocks
	// Pages at 0 and 5 (gap 4): read through.
	runs := PlanKnownSet([]int{0, 5}, 1, cfg, 0)
	if len(runs) != 1 || runs[0].Blocks != 6 {
		t.Fatalf("small gap: %+v", runs)
	}
	// Pages at 0 and 50 (gap 49): seek.
	runs = PlanKnownSet([]int{0, 50}, 1, cfg, 0)
	if len(runs) != 2 {
		t.Fatalf("large gap: %+v", runs)
	}
	// Adjacent and duplicate pages collapse.
	runs = PlanKnownSet([]int{0, 0, 1, 2}, 1, cfg, 0)
	if len(runs) != 1 || runs[0].Blocks != 3 {
		t.Fatalf("adjacent: %+v", runs)
	}
}

func TestPlanKnownSetBufferLimit(t *testing.T) {
	cfg := testCfg()
	// Without a limit this would be one run of 8 blocks.
	runs := PlanKnownSet([]int{0, 3, 6}, 2, cfg, 5)
	if len(runs) < 2 {
		t.Fatalf("buffer limit ignored: %+v", runs)
	}
	for _, r := range runs {
		if r.Blocks > 5 {
			t.Fatalf("run exceeds buffer: %+v", r)
		}
	}
}

// Property: the plan covers every requested page, runs are disjoint and
// ordered, and the plan never costs more than either extreme strategy
// (all random seeks, or one full scan from first to last page).
func TestPlanKnownSetOptimalityBounds(t *testing.T) {
	cfg := testCfg()
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(40)
		set := map[int]bool{}
		for len(set) < n {
			set[r.Intn(500)] = true
		}
		positions := make([]int, 0, n)
		for p := range set {
			positions = append(positions, p)
		}
		sort.Ints(positions)
		pageBlocks := 1 + r.Intn(3)
		runs := PlanKnownSet(positions, pageBlocks, cfg, 0)

		// Coverage and ordering.
		covered := func(p int) bool {
			for _, run := range runs {
				if p >= run.Pos && p+pageBlocks <= run.Pos+run.Blocks {
					return true
				}
			}
			return false
		}
		for _, p := range positions {
			if !covered(p) {
				t.Fatalf("page %d not covered by %+v", p, runs)
			}
		}
		for i := 1; i < len(runs); i++ {
			if runs[i].Pos < runs[i-1].Pos+runs[i-1].Blocks {
				t.Fatalf("runs overlap or unordered: %+v", runs)
			}
		}

		cost := PlanCost(runs, cfg)
		allSeeks := float64(n) * (cfg.Seek + float64(pageBlocks)*cfg.Xfer)
		span := positions[len(positions)-1] + pageBlocks - positions[0]
		fullScan := cfg.Seek + float64(span)*cfg.Xfer
		if cost > allSeeks+1e-12 {
			t.Fatalf("plan cost %f worse than all-random %f", cost, allSeeks)
		}
		if cost > fullScan+1e-12 {
			t.Fatalf("plan cost %f worse than full scan %f", cost, fullScan)
		}
	}
}

// Property: the greedy gap rule is optimal for known sets — verify against
// exhaustive search over all seek/over-read choices on small inputs.
func TestPlanKnownSetMatchesExhaustiveOptimum(t *testing.T) {
	cfg := testCfg()
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(7)
		set := map[int]bool{}
		for len(set) < n {
			set[r.Intn(60)] = true
		}
		positions := make([]int, 0, n)
		for p := range set {
			positions = append(positions, p)
		}
		sort.Ints(positions)

		got := PlanCost(PlanKnownSet(positions, 1, cfg, 0), cfg)

		// Exhaustive: each of the n-1 gaps is independently "seek" or
		// "over-read", so the optimum decomposes per gap; still, compute
		// it by brute force over all 2^(n-1) choices.
		best := math.Inf(1)
		for mask := 0; mask < 1<<(n-1); mask++ {
			cost := cfg.Seek + cfg.Xfer // first page
			for i := 1; i < n; i++ {
				gap := positions[i] - positions[i-1] - 1
				if mask&(1<<(i-1)) != 0 {
					cost += cfg.Seek + cfg.Xfer // seek to page i
				} else {
					cost += float64(gap+1) * cfg.Xfer // over-read
				}
			}
			if cost < best {
				best = cost
			}
		}
		if math.Abs(got-best) > 1e-12 {
			t.Fatalf("greedy %f != optimal %f for %v", got, best, positions)
		}
	}
}

func TestAccessProbabilityBasics(t *testing.T) {
	q := vec.Point{0, 0}
	// No higher-priority regions: certain access.
	if p := AccessProbability(q, vec.Maximum, 1, nil); p != 1 {
		t.Fatalf("no competitors: %f", p)
	}
	// Zero radius: pivot page, probability 1.
	if p := AccessProbability(q, vec.Maximum, 0, []Region{{Count: 100}}); p != 1 {
		t.Fatalf("zero radius: %f", p)
	}
	// A region completely covering the b-sphere with many points: ~0.
	huge := Region{
		MBR:     vec.MBR{Lo: vec.Point{-2, -2}, Hi: vec.Point{2, 2}},
		Count:   10000,
		MinDist: 0,
	}
	if p := AccessProbability(q, vec.Maximum, 1, []Region{huge}); p > 1e-4 {
		t.Fatalf("covered sphere should be near 0: %f", p)
	}
	// A region beyond the radius contributes nothing.
	far := Region{
		MBR:     vec.MBR{Lo: vec.Point{5, 5}, Hi: vec.Point{6, 6}},
		Count:   10000,
		MinDist: 5,
	}
	if p := AccessProbability(q, vec.Maximum, 1, []Region{far}); p != 1 {
		t.Fatalf("far region should not reduce probability: %f", p)
	}
}

// Property: access probability lies in [0,1], decreases (weakly) as
// competitor regions are added, and decreases as counts grow.
func TestAccessProbabilityMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(6)
		q := make(vec.Point, d)
		var regions []Region
		for i := 0; i < 1+r.Intn(6); i++ {
			lo := make(vec.Point, d)
			hi := make(vec.Point, d)
			for j := 0; j < d; j++ {
				lo[j] = float32(r.Float64() - 0.5)
				hi[j] = lo[j] + float32(r.Float64()*0.5)
			}
			mbr := vec.MBR{Lo: lo, Hi: hi}
			regions = append(regions, Region{MBR: mbr, Count: 1 + r.Intn(50), MinDist: mbr.MinDist(q, vec.Euclidean)})
		}
		radius := 0.2 + r.Float64()
		prev := 1.0
		for i := 1; i <= len(regions); i++ {
			p := AccessProbability(q, vec.Euclidean, radius, regions[:i])
			if p < 0 || p > 1 {
				t.Fatalf("probability out of range: %f", p)
			}
			if p > prev+1e-9 {
				t.Fatalf("probability increased when adding a competitor: %f > %f", p, prev)
			}
			prev = p
		}
		// Doubling every count cannot increase the probability.
		doubled := make([]Region, len(regions))
		copy(doubled, regions)
		for i := range doubled {
			doubled[i].Count *= 2
		}
		if pd := AccessProbability(q, vec.Euclidean, radius, doubled); pd > prev+1e-9 {
			t.Fatalf("doubling counts increased probability: %f > %f", pd, prev)
		}
	}
}

func TestSchedulerBatchPivotOnly(t *testing.T) {
	s := &Scheduler{
		Cfg:        testCfg(),
		PageBlocks: 1,
		NumPages:   100,
		Prob:       func(pos int) float64 { return 0 }, // nothing else worth reading
	}
	first, last := s.Batch(50)
	if first != 50 || last != 50 {
		t.Fatalf("batch [%d, %d], want pivot only", first, last)
	}
}

func TestSchedulerBatchExtendsTowardProbablePages(t *testing.T) {
	probs := map[int]float64{51: 1, 52: 1, 49: 1}
	s := &Scheduler{
		Cfg:        testCfg(),
		PageBlocks: 1,
		NumPages:   100,
		Prob: func(pos int) float64 {
			return probs[pos]
		},
	}
	first, last := s.Batch(50)
	if first > 49 || last < 52 {
		t.Fatalf("batch [%d, %d] should include certain neighbors", first, last)
	}
}

func TestSchedulerBatchOverreadsCheapGaps(t *testing.T) {
	// A certain page 5 positions away: the 4-block gap costs 4·Xfer,
	// far less than a seek, so it must be included.
	s := &Scheduler{
		Cfg:        testCfg(),
		PageBlocks: 1,
		NumPages:   100,
		Prob: func(pos int) float64 {
			if pos == 55 {
				return 1
			}
			return 0
		},
	}
	_, last := s.Batch(50)
	if last != 55 {
		t.Fatalf("last = %d, want 55 (over-read the cheap gap)", last)
	}
	// The same page beyond the give-up horizon: not worth it.
	s.Prob = func(pos int) float64 {
		if pos == 75 {
			return 1
		}
		return 0
	}
	_, last = s.Batch(50)
	if last != 50 {
		t.Fatalf("last = %d, want 50 (gap exceeds cumulated seek cost)", last)
	}
}

func TestSchedulerBatchStopsAtFileBounds(t *testing.T) {
	s := &Scheduler{
		Cfg:        testCfg(),
		PageBlocks: 1,
		NumPages:   4,
		Prob:       func(pos int) float64 { return 1 },
	}
	first, last := s.Batch(0)
	if first != 0 || last != 3 {
		t.Fatalf("batch [%d, %d], want [0, 3]", first, last)
	}
}

// Property: the batch always contains the pivot and stays within file
// bounds, for arbitrary probability assignments.
func TestSchedulerBatchQuick(t *testing.T) {
	f := func(seed int64, pivotSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(90)
		pivot := int(pivotSeed) % n
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = r.Float64()
		}
		s := &Scheduler{
			Cfg:        testCfg(),
			PageBlocks: 1,
			NumPages:   n,
			Prob:       func(pos int) float64 { return probs[pos] },
		}
		first, last := s.Batch(pivot)
		return first >= 0 && last < n && first <= pivot && pivot <= last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
