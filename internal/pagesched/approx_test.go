package pagesched

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// randRegions generates competitor regions around q with consistent
// MinDist values for the given metric.
func randRegions(r *rand.Rand, q vec.Point, met vec.Metric, n int) []Region {
	d := len(q)
	regions := make([]Region, 0, n)
	for i := 0; i < n; i++ {
		lo := make(vec.Point, d)
		hi := make(vec.Point, d)
		for j := 0; j < d; j++ {
			lo[j] = float32(r.Float64()*2 - 1)
			hi[j] = lo[j] + float32(r.Float64()*0.6)
		}
		mbr := vec.MBR{Lo: lo, Hi: hi}
		regions = append(regions, Region{
			MBR:     mbr,
			Count:   1 + r.Intn(80),
			MinDist: mbr.MinDist(q, met),
		})
	}
	return regions
}

// TestProbFloorResolution pins the exported floor and the saturation
// behavior built on it: AccessProbability cuts to exactly 0 below the
// floor, and ImproveProbability never resolves closer to 1 than
// 1 − ProbFloor — the resolution limit of the approximate-search ε dial.
func TestProbFloorResolution(t *testing.T) {
	if ProbFloor != 1e-6 {
		t.Fatalf("ProbFloor = %v, want 1e-6", ProbFloor)
	}
	q := vec.Point{0, 0}
	// A region covering the whole b-sphere with many points drives the
	// miss product below the floor.
	huge := Region{
		MBR:   vec.MBR{Lo: vec.Point{-2, -2}, Hi: vec.Point{2, 2}},
		Count: 100000,
	}
	if p := AccessProbability(q, vec.Maximum, 1, []Region{huge}); p != 0 {
		t.Fatalf("below-floor access probability should cut to 0, got %v", p)
	}
	var ps ProbScratch
	if p := ps.ImproveProbability(q, vec.Maximum, 1, []Region{huge}, 1, 2); p != 1-ProbFloor {
		t.Fatalf("improvement probability should saturate at 1-ProbFloor, got %v", p)
	}
}

func TestImproveProbabilityBasics(t *testing.T) {
	var ps ProbScratch
	q := vec.Point{0, 0}
	some := []Region{{
		MBR:     vec.MBR{Lo: vec.Point{-1, -1}, Hi: vec.Point{1, 1}},
		Count:   10,
		MinDist: 0,
	}}
	// Non-positive radius or no regions: nothing can improve.
	if p := ps.ImproveProbability(q, vec.Euclidean, 0, some, 1, 2); p != 0 {
		t.Fatalf("zero radius: %v", p)
	}
	if p := ps.ImproveProbability(q, vec.Euclidean, 1, nil, 1, 2); p != 0 {
		t.Fatalf("no regions: %v", p)
	}
	// A region entirely beyond the radius contributes nothing.
	far := []Region{{
		MBR:     vec.MBR{Lo: vec.Point{5, 5}, Hi: vec.Point{6, 6}},
		Count:   10000,
		MinDist: 5,
	}}
	if p := ps.ImproveProbability(q, vec.Euclidean, 1, far, 1, 2); p != 0 {
		t.Fatalf("far region: %v", p)
	}
	// The early-exit variant is an admissible lower bound: once the
	// returned value reaches cut, the full evaluation would too.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		qd := make(vec.Point, 3)
		for j := range qd {
			qd[j] = float32(r.Float64()*2 - 1)
		}
		regions := randRegions(r, qd, vec.Euclidean, 1+r.Intn(8))
		radius := 0.1 + r.Float64()
		cut := r.Float64()
		var a, b ProbScratch
		early := a.ImproveProbability(qd, vec.Euclidean, radius, regions, 1, cut)
		full := b.ImproveProbability(qd, vec.Euclidean, radius, regions, 1, 2)
		if early >= cut && full < cut-1e-12 {
			t.Fatalf("early exit claimed %v >= cut %v but full value is %v", early, cut, full)
		}
		if early < cut && early != full {
			t.Fatalf("no early exit but values differ: %v vs %v", early, full)
		}
	}
}

// Property: both probability estimates are monotone in the radius — the
// access probability is non-increasing in r (a larger b-sphere meets
// more competing mass), the improvement probability is non-decreasing in
// r (a larger prune sphere can only intersect more remaining volume).
func TestProbabilitiesMonotoneInRadius(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum} {
		for trial := 0; trial < 200; trial++ {
			d := 1 + r.Intn(6)
			q := make(vec.Point, d)
			for j := range q {
				q[j] = float32(r.Float64()*2 - 1)
			}
			regions := randRegions(r, q, met, 1+r.Intn(6))
			var ps ProbScratch
			prevAccess, prevImprove := 1.0, 0.0
			for radius := 0.05; radius < 3.0; radius += 0.05 {
				pa := ps.AccessProbability(q, met, radius, regions)
				if pa < 0 || pa > 1 {
					t.Fatalf("access probability out of range: %v", pa)
				}
				if pa > prevAccess+1e-9 {
					t.Fatalf("%v: access probability increased in r: %v > %v at r=%v", met, pa, prevAccess, radius)
				}
				prevAccess = pa
				pi := ps.ImproveProbability(q, met, radius, regions, 1, 2)
				if pi < 0 || pi > 1 {
					t.Fatalf("improvement probability out of range: %v", pi)
				}
				if pi < prevImprove-1e-9 {
					t.Fatalf("%v: improvement probability decreased in r: %v < %v at r=%v", met, pi, prevImprove, radius)
				}
				prevImprove = pi
				// Normalizing over more slots can only shrink the per-slot
				// probability.
				if pk := ps.ImproveProbability(q, met, radius, regions, 10, 2); pk > pi+1e-9 {
					t.Fatalf("%v: per-slot probability %v exceeds any-point probability %v", met, pk, pi)
				}
			}
		}
	}
}
