package pagesched

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/store"
)

// TestBatchAllProperties is the cross-query planner's contract under
// random wants and access probabilities:
//
//   - spans are ascending, disjoint, and non-adjacent (no block is
//     fetched twice within a round, and no seek-free merge is missed),
//   - every wanted page is covered,
//   - every span contains at least one wanted page (no spurious reads),
//   - spans stay inside the file.
func TestBatchAllProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		numPages := 1 + rng.Intn(400)
		probs := make([]float64, numPages)
		for i := range probs {
			switch rng.Intn(3) {
			case 0:
				probs[i] = 0
			case 1:
				probs[i] = rng.Float64()
			default:
				probs[i] = 1
			}
		}
		s := &Scheduler{
			Cfg:        store.Config{BlockSize: 4096, Seek: 0.005 + rng.Float64()*0.02, Xfer: 0.0005 + rng.Float64()*0.002},
			PageBlocks: 1 + rng.Intn(4),
			NumPages:   numPages,
			Prob:       func(pos int) float64 { return probs[pos] },
		}
		nw := 1 + rng.Intn(20)
		wants := make([]int, nw)
		for i := range wants {
			wants[i] = rng.Intn(numPages)
			if i > 0 && rng.Intn(4) == 0 {
				wants[i] = wants[i-1] // duplicates allowed
			}
		}

		spans := s.BatchAll(wants)
		for i, sp := range spans {
			if sp.First < 0 || sp.Last >= numPages || sp.First > sp.Last {
				t.Fatalf("trial %d: span %d out of range: %+v (numPages=%d)", trial, i, sp, numPages)
			}
			if i > 0 && sp.First <= spans[i-1].Last+1 {
				t.Fatalf("trial %d: spans %d and %d overlap or touch: %+v, %+v",
					trial, i-1, i, spans[i-1], sp)
			}
		}
		for _, w := range wants {
			covered := false
			for _, sp := range spans {
				if sp.Contains(w) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: want %d not covered by %+v", trial, w, spans)
			}
		}
		sort.Ints(wants)
		for i, sp := range spans {
			j := sort.SearchInts(wants, sp.First)
			if j >= len(wants) || wants[j] > sp.Last {
				t.Fatalf("trial %d: span %d (%+v) contains no want", trial, i, sp)
			}
		}
	}
}

// TestBatchAllSingleWantDegeneratesToBatch pins the share-nothing
// degeneracy: with exactly one query in flight (one want), the round
// plan is exactly the single-pivot batch of the time-optimized
// nearest-neighbor algorithm — scan sharing never changes a lone
// query's schedule.
func TestBatchAllSingleWantDegeneratesToBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		numPages := 1 + rng.Intn(200)
		probs := make([]float64, numPages)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		s := &Scheduler{
			Cfg:        store.Config{BlockSize: 4096, Seek: 0.01, Xfer: 0.001},
			PageBlocks: 1 + rng.Intn(3),
			NumPages:   numPages,
			Prob:       func(pos int) float64 { return probs[pos] },
		}
		pivot := rng.Intn(numPages)
		first, last := s.Batch(pivot)
		spans := s.BatchAll([]int{pivot})
		if len(spans) != 1 || spans[0].First != first || spans[0].Last != last {
			t.Fatalf("trial %d: BatchAll(%d) = %+v, Batch = [%d,%d]", trial, pivot, spans, first, last)
		}
	}
}
