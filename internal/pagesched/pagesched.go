// Package pagesched implements the time-based page access strategies of
// paper Section 2:
//
//   - PlanKnownSet: the optimal fetch schedule for a page set known in
//     advance (range queries, Fig. 1) — over-read a gap whenever the
//     transfer of the skipped blocks is cheaper than a seek.
//   - Scheduler.Batch: the cumulated-cost-balance batching of the
//     time-optimized nearest-neighbor algorithm (Sec. 2.1) — starting from
//     the pivot page, extend the read sequence forward and backward while
//     the expected savings of over-reading probable pages outweigh the
//     transfer cost.
//   - AccessProbability: the probability that a page must be loaded later
//     in a nearest-neighbor search (Sec. 2.2, Eq. 2–5).
package pagesched

import (
	"math"
	"sort"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// Run is one contiguous read of Blocks blocks starting at block Pos.
type Run struct {
	Pos    int
	Blocks int
}

// PlanKnownSet plans the reads for pages whose starting block positions
// are known in advance and sorted ascending; every page spans pageBlocks
// blocks. Whenever the gap between two consecutive pages costs less to
// transfer than a seek, the gap is read through (paper Section 2). If
// maxBufferBlocks is positive, no run exceeds that many blocks (the
// buffer-limited variant of Seeger et al. [19]).
func PlanKnownSet(positions []int, pageBlocks int, cfg store.Config, maxBufferBlocks int) []Run {
	if len(positions) == 0 {
		return nil
	}
	var runs []Run
	cur := Run{Pos: positions[0], Blocks: pageBlocks}
	for _, p := range positions[1:] {
		gap := p - (cur.Pos + cur.Blocks)
		if gap < 0 {
			gap = 0 // overlapping/duplicate positions collapse
		}
		extended := cur.Blocks + gap + pageBlocks
		fits := maxBufferBlocks <= 0 || extended <= maxBufferBlocks
		if float64(gap)*cfg.Xfer < cfg.Seek && fits {
			if p+pageBlocks > cur.Pos+cur.Blocks {
				cur.Blocks = p + pageBlocks - cur.Pos
			}
		} else {
			runs = append(runs, cur)
			cur = Run{Pos: p, Blocks: pageBlocks}
		}
	}
	return append(runs, cur)
}

// PlanCost returns the simulated time of executing the given runs:
// one seek per run plus the transfer of all blocks.
func PlanCost(runs []Run, cfg store.Config) float64 {
	var t float64
	for _, r := range runs {
		t += cfg.Seek + float64(r.Blocks)*cfg.Xfer
	}
	return t
}

// Region describes a page region competing in a nearest-neighbor priority
// list, for access-probability estimation.
type Region struct {
	MBR     vec.MBR
	Count   int     // number of points in the region
	MinDist float64 // MINDIST from the query point
}

// ProbFloor is the resolution limit of the probability model: products of
// per-region miss probabilities are cut off once they drop below it, so
// no estimate this package produces distinguishes probabilities closer to
// 0 (or, for the complementary improvement estimate, closer to 1) than
// ProbFloor. It is therefore also the resolution limit of the approximate
// search ε dial built on these estimates (see core's probability-bounded
// termination): an ε at or below ProbFloor is indistinguishable from
// exact execution.
const ProbFloor = 1e-6

// AccessProbability returns the probability that a page whose b-sphere has
// radius r (its MINDIST from query q) must be accessed: the probability
// that none of the higher-priority regions contains a point inside the
// b-sphere (Eq. 2–5). `higher` must hold the still-unprocessed regions
// with MinDist < r, closest first. The product is cut off once it drops
// below ProbFloor, and at most maxRegions competitors are examined (the
// closest regions dominate the product; the estimate only steers the I/O
// batching heuristic). For the Euclidean metric the box∩sphere volume
// uses the fast equal-volume-cube surrogate.
func AccessProbability(q vec.Point, met vec.Metric, r float64, higher []Region) float64 {
	var ps ProbScratch
	return ps.AccessProbability(q, met, r, higher)
}

// ProbScratch holds the reusable float64 buffers of the access
// probability computation, so hot query paths can evaluate it without
// allocating. The zero value is ready; not safe for concurrent use.
type ProbScratch struct {
	qf, lo, hi []float64
}

// AccessProbability is the scratch-buffered equivalent of the package
// function of the same name; results are identical.
func (ps *ProbScratch) AccessProbability(q vec.Point, met vec.Metric, r float64, higher []Region) float64 {
	const maxRegions = 128
	if r <= 0 {
		return 1
	}
	if len(higher) > maxRegions {
		higher = higher[:maxRegions]
	}
	eucl := met != vec.Maximum
	d := len(q)
	ps.qf = growF(ps.qf, d)
	ps.lo = growF(ps.lo, d)
	ps.hi = growF(ps.hi, d)
	qf, lo, hi := ps.qf, ps.lo, ps.hi
	for i, v := range q {
		qf[i] = float64(v)
	}
	prob := 1.0
	for _, reg := range higher {
		if reg.MinDist >= r || reg.Count <= 0 {
			continue
		}
		vol := 1.0
		for i := 0; i < d; i++ {
			lo[i] = float64(reg.MBR.Lo[i])
			hi[i] = float64(reg.MBR.Hi[i])
			side := hi[i] - lo[i]
			if side <= 0 {
				side = 1e-12
				hi[i] = lo[i] + side
			}
			vol *= side
		}
		var vint float64
		if eucl {
			vint = mathx.BoxSphereIntersectEuclFast(lo, hi, qf, r)
		} else {
			vint = mathx.BoxSphereIntersectMax(lo, hi, qf, r)
		}
		frac := mathx.Clamp(vint/vol, 0, 1)
		// P(no point of this region in the intersection) = (1-frac)^Count.
		prob *= math.Pow(1-frac, float64(reg.Count))
		if prob < ProbFloor {
			return 0
		}
	}
	return prob
}

// ImproveProbability estimates the probability that fetching the given
// regions would still improve any single slot of a k-nearest-neighbor
// result whose current kth distance is r. Under the paper's
// uniformity-within-MBR model (Eq. 1–5) the joint miss probability —
// no point of any region inside the b-sphere(q, r) — is
//
//	M = Π over regions of (1 − vol(MBR ∩ b-sphere(q,r)) / vol(MBR))^Count
//
// so the expected number of still-improving points is −ln M, and
// distributing those over the result's slots (≥ 1) gives the per-slot
// improvement probability
//
//	1 − M^(1/slots)
//
// which is the calibrated termination quantity of the approximate
// search: stopping once it drops below ε bounds the expected fraction
// of result slots an unfetched page could still change by ε, i.e. the
// expected recall by 1 − ε. slots = 1 degenerates to the plain
// any-point-improves probability 1 − M.
//
// Regions with MinDist ≥ r or Count ≤ 0 cannot contribute and are
// skipped. The scan aborts early once the probability provably reaches
// cut (the caller's decision threshold): the returned value is then ≥ cut
// but not otherwise meaningful, which makes the common "cannot terminate
// yet" case cheap. The miss product saturates at ProbFloor, so returned
// probabilities never resolve closer to 1 than 1−ProbFloor^(1/slots).
//
// Unlike AccessProbability — which only ranks pages to steer the I/O
// batching heuristic and can afford the equal-volume-cube surrogate —
// this estimate gates result quality, so the Euclidean per-region
// fraction comes from the central-limit squared-distance approximation
// (mathx.BoxSphereContainFracEucl): the cube surrogate overestimates
// thin high-dimensional box∩sphere lenses by orders of magnitude
// (pinning the estimate near 1, a dead dial), while sample-based
// integration collapses those same lenses to exactly 0 (premature
// termination on clustered workloads).
func (ps *ProbScratch) ImproveProbability(q vec.Point, met vec.Metric, r float64, regions []Region, slots, cut float64) float64 {
	const maxRegions = 128
	if r <= 0 || len(regions) == 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	// miss <= missCut ⟺ 1 − miss^(1/slots) >= cut: the early-exit test in
	// product space, precomputed once.
	missCut := 0.0
	if cut < 1 {
		missCut = math.Pow(1-cut, slots)
	}
	if len(regions) > maxRegions {
		regions = regions[:maxRegions]
	}
	eucl := met != vec.Maximum
	d := len(q)
	ps.qf = growF(ps.qf, d)
	ps.lo = growF(ps.lo, d)
	ps.hi = growF(ps.hi, d)
	qf, lo, hi := ps.qf, ps.lo, ps.hi
	for i, v := range q {
		qf[i] = float64(v)
	}
	miss := 1.0
	for _, reg := range regions {
		if reg.MinDist >= r || reg.Count <= 0 {
			continue
		}
		vol := 1.0
		for i := 0; i < d; i++ {
			lo[i] = float64(reg.MBR.Lo[i])
			hi[i] = float64(reg.MBR.Hi[i])
			side := hi[i] - lo[i]
			if side <= 0 {
				side = 1e-12
				hi[i] = lo[i] + side
			}
			vol *= side
		}
		var frac float64
		if eucl {
			frac = mathx.Clamp(mathx.BoxSphereContainFracEucl(lo, hi, qf, r), 0, 1)
		} else {
			frac = mathx.Clamp(mathx.BoxSphereIntersectMax(lo, hi, qf, r)/vol, 0, 1)
		}
		miss *= math.Pow(1-frac, float64(reg.Count))
		if miss < ProbFloor {
			miss = ProbFloor
			break
		}
		if miss <= missCut {
			break
		}
	}
	return 1 - math.Pow(miss, 1/slots)
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Scheduler computes the read batch around a pivot page for the
// time-optimized nearest-neighbor algorithm. Pages are fixed-size and laid
// out consecutively: page i starts at block i·PageBlocks.
type Scheduler struct {
	// Cfg holds the disk parameters.
	Cfg store.Config
	// PageBlocks is the size of one page in blocks.
	PageBlocks int
	// NumPages is the number of pages in the file.
	NumPages int
	// Prob returns the access probability of the page at position pos;
	// it must return 0 for pages already processed or pruned.
	Prob func(pos int) float64
	// Trace, when non-nil, records each Batch decision (pivot and
	// committed extent); the caller fills in the pending count once it
	// knows how many pages of the batch were still needed.
	Trace *obs.QueryTrace
}

// Batch returns the page positions [first, last] to load together with the
// pivot page (paper Sec. 2.1). It extends the sequence forward and then
// backward, accumulating the cost balance
//
//	ccb += t_xfer − a·(t_seek + t_xfer)
//
// committing the extension whenever the balance goes negative, and giving
// up in a direction once the balance exceeds the seek cost.
func (s *Scheduler) Batch(pivot int) (first, last int) {
	txfer := float64(s.PageBlocks) * s.Cfg.Xfer
	first, last = pivot, pivot

	ccb := 0.0
	for i := pivot + 1; i < s.NumPages; i++ {
		a := s.Prob(i)
		ccb += txfer - a*(s.Cfg.Seek+txfer)
		if ccb < 0 {
			last = i
			ccb = 0
		}
		if ccb >= s.Cfg.Seek {
			break
		}
	}

	ccb = 0.0
	for i := pivot - 1; i >= 0; i-- {
		a := s.Prob(i)
		ccb += txfer - a*(s.Cfg.Seek+txfer)
		if ccb < 0 {
			first = i
			ccb = 0
		}
		if ccb >= s.Cfg.Seek {
			break
		}
	}
	s.Trace.AddBatch(obs.BatchDecision{Pivot: pivot, First: first, Last: last})
	return first, last
}

// PageSpan is one contiguous page extent [First, Last] of a cross-query
// round plan (page units, inclusive).
type PageSpan struct {
	First, Last int
}

// Pages returns the number of pages the span covers.
func (p PageSpan) Pages() int { return p.Last - p.First + 1 }

// Contains reports whether page position pos lies inside the span.
func (p PageSpan) Contains(pos int) bool { return pos >= p.First && pos <= p.Last }

// BatchAll plans one scan-sharing round: wants holds every page position
// some in-flight query needs next (duplicates allowed, any order), and
// the scheduler's Prob must already combine the access probabilities of
// all those queries (1 − Π(1 − p_q)). Each uncovered want anchors one
// cumulated-cost-balance extension — the same Batch logic that plans one
// query's pivot, stretched across queries — and overlapping or adjacent
// extents are merged, so the returned spans are disjoint, ascending, and
// cover every want: no block is fetched twice within a round. With a
// single want the plan is exactly [Batch(want)], so one query in flight
// degenerates to the share-nothing schedule.
func (s *Scheduler) BatchAll(wants []int) []PageSpan {
	if len(wants) == 0 {
		return nil
	}
	sorted := append([]int(nil), wants...)
	sort.Ints(sorted)
	var exts []PageSpan
	covered := -1 // highest page already covered by an earlier extent
	for i, p := range sorted {
		if p <= covered || (i > 0 && p == sorted[i-1]) {
			continue
		}
		first, last := s.Batch(p)
		exts = append(exts, PageSpan{First: first, Last: last})
		if last > covered {
			covered = last
		}
	}
	// Backward extension can dip below an earlier extent; merge anything
	// overlapping or adjacent (an adjacent merge is cost-neutral — the
	// second read would have continued seek-free from the first).
	sort.Slice(exts, func(i, j int) bool { return exts[i].First < exts[j].First })
	merged := exts[:1]
	for _, e := range exts[1:] {
		top := &merged[len(merged)-1]
		if e.First <= top.Last+1 {
			if e.Last > top.Last {
				top.Last = e.Last
			}
			continue
		}
		merged = append(merged, e)
	}
	return merged
}
