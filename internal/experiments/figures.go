package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Series is one curve of a figure.
type Series struct {
	Label  string
	X      []float64
	Y      []float64 // average simulated seconds per query
	Detail []string
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// RunOpts scales a figure run. Scale multiplies the paper's database
// sizes (1.0 = full paper scale, e.g. 500,000 points).
type RunOpts struct {
	Scale   float64
	Queries int
	Seed    int64
	Config  Config // base overrides (Disk, K, VABits)
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Queries <= 0 {
		o.Queries = 50
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o RunOpts) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1000 {
		v = 1000
	}
	return v
}

// runGrid evaluates methods over a list of configurations (one X per
// configuration) and assembles the per-method series.
func runGrid(id, title, xlabel string, xs []float64, cfgs []Config, methods []Method) (Figure, error) {
	fig := Figure{ID: id, Title: title, XLabel: xlabel}
	series := make(map[Method]*Series, len(methods))
	for _, m := range methods {
		series[m] = &Series{Label: string(m)}
	}
	for i, cfg := range cfgs {
		results, err := Run(cfg, methods)
		if err != nil {
			return Figure{}, err
		}
		for _, r := range results {
			s := series[r.Method]
			s.X = append(s.X, xs[i])
			s.Y = append(s.Y, r.Seconds)
			s.Detail = append(s.Detail, r.Detail)
		}
	}
	for _, m := range methods {
		fig.Series = append(fig.Series, *series[m])
	}
	return fig, nil
}

// Figure7 reproduces paper Fig. 7: the impact of the IQ-tree's two
// concepts (quantization, optimized NN page access) on UNIFORM data of
// varying dimensionality (paper: 500,000 points, d = 4..16).
func Figure7(o RunOpts) (Figure, error) {
	o = o.withDefaults()
	dims := []int{4, 6, 8, 10, 12, 14, 16}
	var cfgs []Config
	var xs []float64
	for _, d := range dims {
		cfg := o.Config
		cfg.Dataset = "uniform"
		cfg.Seed = o.Seed
		cfg.N = o.scaled(500000)
		cfg.Dim = d
		cfg.Queries = o.Queries
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(d))
	}
	return runGrid("fig7", "Impact of the particular concepts (UNIFORM)", "dimension",
		xs, cfgs, []Method{IQTree, IQNoQuant, IQNoOptIO, IQPlain})
}

// Figure8 reproduces paper Fig. 8: IQ-tree vs X-tree, VA-file and
// sequential scan on UNIFORM data of varying dimensionality.
func Figure8(o RunOpts) (Figure, error) {
	o = o.withDefaults()
	dims := []int{4, 6, 8, 10, 12, 14, 16}
	var cfgs []Config
	var xs []float64
	for _, d := range dims {
		cfg := o.Config
		cfg.Dataset = "uniform"
		cfg.Seed = o.Seed
		cfg.N = o.scaled(500000)
		cfg.Dim = d
		cfg.Queries = o.Queries
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(d))
	}
	return runGrid("fig8", "Competitors on UNIFORM, varying dimension", "dimension",
		xs, cfgs, []Method{IQTree, XTree, VAFile, Scan})
}

// sizeFigure is the common shape of Figs. 9–12: fixed data set, varying N.
func sizeFigure(o RunOpts, id, title string, ds string, sizes []int, methods []Method) (Figure, error) {
	o = o.withDefaults()
	var cfgs []Config
	var xs []float64
	for _, n := range sizes {
		cfg := o.Config
		cfg.Dataset = dataset.Name(ds)
		cfg.Seed = o.Seed
		cfg.N = o.scaled(n)
		cfg.Queries = o.Queries
		if ds == "uniform" {
			cfg.Dim = 16
		}
		cfgs = append(cfgs, cfg)
		xs = append(xs, float64(cfg.N))
	}
	return runGrid(id, title, "number of points", xs, cfgs, methods)
}

// Figure9 reproduces paper Fig. 9: UNIFORM, 16 dimensions, varying N
// (paper: 100,000..500,000).
func Figure9(o RunOpts) (Figure, error) {
	return sizeFigure(o, "fig9", "Competitors on UNIFORM d=16, varying N", "uniform",
		[]int{100000, 200000, 300000, 400000, 500000},
		[]Method{IQTree, XTree, VAFile, Scan})
}

// Figure10 reproduces paper Fig. 10: the CAD data set (16-d, moderately
// clustered), varying N. The paper drops the scan ("out of question").
func Figure10(o RunOpts) (Figure, error) {
	return sizeFigure(o, "fig10", "CAD (16-d Fourier coefficients), varying N", "cad",
		[]int{100000, 200000, 300000, 400000, 500000},
		[]Method{IQTree, XTree, VAFile})
}

// Figure11 reproduces paper Fig. 11: the COLOR data set (16-d color
// histograms, only slightly clustered), varying N (paper: 40k..100k).
func Figure11(o RunOpts) (Figure, error) {
	return sizeFigure(o, "fig11", "COLOR (16-d histograms), varying N", "color",
		[]int{40000, 60000, 80000, 100000},
		[]Method{IQTree, XTree, VAFile})
}

// Figure12 reproduces paper Fig. 12: the WEATHER data set (9-d, highly
// clustered, low fractal dimension), varying N.
func Figure12(o RunOpts) (Figure, error) {
	return sizeFigure(o, "fig12", "WEATHER (9-d station data), varying N", "weather",
		[]int{100000, 200000, 300000, 400000, 500000},
		[]Method{IQTree, XTree, VAFile, Scan})
}

// AllFigures runs every reproduced figure.
func AllFigures(o RunOpts) ([]Figure, error) {
	runs := []func(RunOpts) (Figure, error){Figure7, Figure8, Figure9, Figure10, Figure11, Figure12}
	var out []Figure
	for _, run := range runs {
		f, err := run(o)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Format renders the figure as an aligned text table: one row per X value,
// one column per series, in the unit of the paper's figures (seconds).
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	// Collect the union of X values (all series share them in practice).
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.0f", x)
		for _, s := range f.Series {
			y := lookup(s, x)
			if y < 0 {
				fmt.Fprintf(&b, " %22s", "-")
			} else {
				fmt.Fprintf(&b, " %22.4f", y)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the figure as comma-separated rows (x, series, seconds).
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure,x,method,seconds\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%s,%g\n", f.ID, s.X[i], s.Label, s.Y[i])
		}
	}
	return b.String()
}

func lookup(s Series, x float64) float64 {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i]
		}
	}
	return -1
}
