// Package experiments reproduces the paper's evaluation (Section 4,
// Figures 7–12): it builds the competing access methods over the paper's
// workloads, runs nearest-neighbor query batches against the simulated
// disk, and reports the average simulated seconds per query — the same
// metric, series and axes as the paper's figures.
package experiments

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/scan"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

// Method identifies an access method (or IQ-tree ablation variant).
type Method string

// The methods compared in the paper's figures.
const (
	IQTree     Method = "IQ-tree"
	IQNoQuant  Method = "IQ-tree (no quantization)"
	IQNoOptIO  Method = "IQ-tree (standard NN-search)"
	IQPlain    Method = "IQ-tree (no quant, standard NN)"
	XTree      Method = "X-tree"
	VAFile     Method = "VA-file"
	Scan       Method = "Scan"
	IQUniform  Method = "IQ-tree (uniform cost model)"
	VAFileUnif Method = "VA-file (uniform bounds)"
)

// Config describes one experimental cell: a workload plus query batch.
type Config struct {
	Dataset dataset.Name
	Seed    int64
	N       int // database size
	Dim     int // dimensionality (uniform only; fixed for real sets)
	Queries int // number of query points (held out of the database)
	K       int // neighbors per query (the paper uses 1)
	Disk    store.Config
	VABits  []int // candidate VA-file bits per dimension (paper: 2..8)
}

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.Queries <= 0 {
		c.Queries = 50
	}
	if c.K <= 0 {
		c.K = 1
	}
	if c.Disk.BlockSize == 0 {
		c.Disk = store.DefaultConfig()
	}
	if len(c.VABits) == 0 {
		c.VABits = []int{2, 3, 4, 5, 6, 7, 8}
	}
	if d := c.Dataset.Dim(); d != 0 {
		c.Dim = d
	}
	return c
}

// data generates the database and the held-out query workload.
func (c Config) data() (db, queries []vec.Point, err error) {
	pts, err := dataset.Generate(c.Dataset, c.Seed, c.N+c.Queries, c.Dim)
	if err != nil {
		return nil, nil, err
	}
	db, queries = dataset.Split(pts, c.Queries)
	return db, queries, nil
}

// Result is the measured cost of one method on one configuration.
type Result struct {
	Method  Method
	Seconds float64     // average simulated seconds per query
	Stats   store.Stats // aggregate over the whole batch
	Detail  string      // method-specific notes (e.g. chosen VA-file bits)
}

// Run measures the given methods on one configuration. Every method gets
// its own fresh simulated disk; queries run sequentially, each on its own
// session, and the reported time is the per-query average.
func Run(cfg Config, methods []Method) ([]Result, error) {
	cfg = cfg.withDefaults()
	db, queries, err := cfg.data()
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(methods))
	for _, m := range methods {
		res, err := runMethod(cfg, m, db, queries)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

func runMethod(cfg Config, m Method, db, queries []vec.Point) (Result, error) {
	sto := store.NewSim(cfg.Disk)
	var (
		idx    index.Index
		detail string
	)
	switch m {
	case IQTree, IQNoQuant, IQNoOptIO, IQPlain, IQUniform:
		opt := core.DefaultOptions()
		switch m {
		case IQNoQuant:
			opt.Quantize = false
		case IQNoOptIO:
			opt.OptimizedIO = false
		case IQPlain:
			opt.Quantize = false
			opt.OptimizedIO = false
		case IQUniform:
			opt.UniformModel = true
		}
		t, err := core.Build(sto, db, opt)
		if err != nil {
			return Result{}, err
		}
		st := t.Stats()
		detail = fmt.Sprintf("pages=%d D_F=%.1f", st.Pages, st.FractalDim)
		idx = t
	case XTree:
		t, err := xtree.Build(sto, db, xtree.DefaultOptions())
		if err != nil {
			return Result{}, err
		}
		st := t.Stats()
		detail = fmt.Sprintf("leaves=%d supernodes=%d height=%d", st.Leaves, st.Supernodes, st.Height)
		idx = t
	case VAFile, VAFileUnif:
		bits, err := TuneVAFile(cfg, db, queries, m == VAFileUnif)
		if err != nil {
			return Result{}, err
		}
		opt := vafile.DefaultOptions()
		opt.Bits = bits
		opt.Uniform = m == VAFileUnif
		detail = fmt.Sprintf("bits=%d", bits)
		if idx, err = vafile.Build(sto, db, opt); err != nil {
			return Result{}, err
		}
	case Scan:
		var err error
		if idx, err = scan.Build(sto, db, vec.Euclidean); err != nil {
			return Result{}, err
		}
	default:
		return Result{}, fmt.Errorf("experiments: unknown method %q", m)
	}
	secs, stats, err := measure(sto, idx, queries, cfg.K)
	if err != nil {
		return Result{}, err
	}
	obs.Default().Histogram("experiments.method." + string(m) + ".avg_seconds").Observe(secs)
	return Result{Method: m, Seconds: secs, Stats: stats, Detail: detail}, nil
}

// measure runs the query batch through a worker-pool engine and returns
// the per-query average simulated time plus aggregate stats. Each query
// gets its own (pooled, reset) session, and SubmitBatch returns results
// in query order, so the figures are deterministic regardless of
// scheduling.
func measure(sto *store.Store, idx index.Index, queries []vec.Point, k int) (float64, store.Stats, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	e := engine.New(sto, idx, workers, engine.WithRegistry(obs.Default()))
	defer e.Close()
	batch := make([]engine.Query, len(queries))
	for i, q := range queries {
		batch[i] = engine.Query{Kind: engine.KNN, Point: q, K: k}
	}
	results := e.SubmitBatch(batch)
	reg := obs.Default()
	lat := reg.Histogram("experiments.query_seconds")
	var agg store.Stats
	for _, res := range results {
		if res.Err != nil {
			return 0, store.Stats{}, res.Err
		}
		agg.Add(res.Stats)
		lat.Observe(res.SimTime)
	}
	reg.Counter("experiments.queries").Add(int64(len(queries)))
	reg.Counter("experiments.seeks").Add(int64(agg.Seeks))
	reg.Counter("experiments.blocks_read").Add(int64(agg.BlocksRead))
	return agg.Time(sto.Config()) / float64(len(queries)), agg, nil
}

// TuneVAFile replicates the paper's hand-tuning of the VA-file: it tries
// every candidate bits-per-dimension on a small prefix of the query
// workload and returns the cheapest. The paper stresses that the VA-file
// needs this manual step while the IQ-tree adapts automatically.
func TuneVAFile(cfg Config, db, queries []vec.Point, uniform bool) (int, error) {
	cfg = cfg.withDefaults()
	tuneQ := queries
	if len(tuneQ) > 10 {
		tuneQ = tuneQ[:10]
	}
	best, bestT := cfg.VABits[0], math.Inf(1)
	for _, b := range cfg.VABits {
		sto := store.NewSim(cfg.Disk)
		opt := vafile.DefaultOptions()
		opt.Bits = b
		opt.Uniform = uniform
		v, err := vafile.Build(sto, db, opt)
		if err != nil {
			return 0, err
		}
		secs, _, err := measure(sto, v, tuneQ, cfg.K)
		if err != nil {
			return 0, err
		}
		if secs < bestT {
			best, bestT = b, secs
		}
	}
	return best, nil
}
