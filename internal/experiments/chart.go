package experiments

import (
	"fmt"
	"math"
	"strings"
)

// chartWidth and chartHeight are the plot-area dimensions of Chart.
const (
	chartWidth  = 64
	chartHeight = 18
)

// seriesMarks are the per-series plot symbols, assigned in order.
var seriesMarks = []byte{'*', 'x', 'o', '+', '#', '@'}

// Chart renders the figure as an ASCII line chart (linear X, linear or
// log Y), mirroring the paper's figure layout: time on the Y axis, the
// swept parameter on the X axis, one mark per series. It is what
// EXPERIMENTS.md embeds next to the paper's curves.
func (f Figure) Chart(logY bool) string {
	var xs []float64
	var ys []float64
	for _, s := range f.Series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return "(empty figure)\n"
	}
	xMin, xMax := minMax(xs)
	yMin, yMax := minMax(ys)
	if logY {
		if yMin <= 0 {
			logY = false
		} else {
			yMin, yMax = math.Log10(yMin), math.Log10(yMax)
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, chartHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", chartWidth))
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			y := s.Y[i]
			if logY {
				y = math.Log10(y)
			}
			col := int((s.X[i] - xMin) / (xMax - xMin) * float64(chartWidth-1))
			row := chartHeight - 1 - int((y-yMin)/(yMax-yMin)*float64(chartHeight-1))
			if col >= 0 && col < chartWidth && row >= 0 && row < chartHeight {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", f.ID, f.Title)
	if logY {
		b.WriteString("  (log y)")
	}
	b.WriteString("\n")
	yTop, yBot := yMax, yMin
	if logY {
		yTop, yBot = math.Pow(10, yMax), math.Pow(10, yMin)
	}
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%9.4f |%s|\n", yTop, string(row))
		case chartHeight - 1:
			fmt.Fprintf(&b, "%9.4f |%s|\n", yBot, string(row))
		default:
			fmt.Fprintf(&b, "          |%s|\n", string(row))
		}
	}
	fmt.Fprintf(&b, "          %s\n", strings.Repeat("-", chartWidth+2))
	fmt.Fprintf(&b, "          %-10.4g%*s%.4g  (%s)\n", xMin, chartWidth-18, "", xMax, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "          %c %s\n", seriesMarks[si%len(seriesMarks)], s.Label)
	}
	return b.String()
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
