package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
)

// AblationVABits regenerates the paper's manual VA-file tuning (Section
// 4.2: "we first tested the VA-file with different numbers of bits per
// dimension (between 2 and 8) and then selected the compression rate for
// which the VA-file performed best") as a figure: seconds per query as a
// function of the bits per dimension, one series per data set.
func AblationVABits(o RunOpts) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     "ablation-va-bits",
		Title:  "VA-file bits-per-dimension tuning (the step the IQ-tree automates)",
		XLabel: "bits per dimension",
	}
	workloads := []struct {
		ds dataset.Name
		n  int
	}{
		{dataset.Uniform, o.scaled(500000)},
		{dataset.Color, o.scaled(100000)},
		{dataset.Weather, o.scaled(500000)},
	}
	for _, w := range workloads {
		cfg := o.Config
		cfg.Dataset = w.ds
		cfg.Seed = o.Seed
		cfg.N = w.n
		cfg.Dim = 16
		cfg.Queries = o.Queries
		cfg = cfg.withDefaults()
		db, queries, err := cfg.data()
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: fmt.Sprintf("%s (N=%d)", w.ds, cfg.N)}
		for _, bits := range cfg.VABits {
			sto := store.NewSim(cfg.Disk)
			opt := vafile.DefaultOptions()
			opt.Bits = bits
			v, err := vafile.Build(sto, db, opt)
			if err != nil {
				return Figure{}, err
			}
			secs, _, err := measure(sto, v, queries, cfg.K)
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(bits))
			s.Y = append(s.Y, secs)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationCostModel contrasts the fractal cost model against the plain
// uniformity/independence assumption (paper Sec. 3.4) on data of varying
// clusteredness: it reports the measured query time of trees optimized
// under each assumption.
func AblationCostModel(o RunOpts) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     "ablation-cost-model",
		Title:  "Fractal vs uniform cost model (measured query time of the optimized tree)",
		XLabel: "workload (1=uniform16, 2=color, 3=cad, 4=weather)",
	}
	workloads := []struct {
		ds dataset.Name
		n  int
	}{
		{dataset.Uniform, o.scaled(200000)},
		{dataset.Color, o.scaled(100000)},
		{dataset.CAD, o.scaled(200000)},
		{dataset.Weather, o.scaled(200000)},
	}
	fractal := Series{Label: "fractal model (D_F estimated)"}
	uniform := Series{Label: "uniformity assumption (D_F = d)"}
	for wi, w := range workloads {
		cfg := o.Config
		cfg.Dataset = w.ds
		cfg.Seed = o.Seed
		cfg.N = w.n
		cfg.Dim = 16
		cfg.Queries = o.Queries
		cfg = cfg.withDefaults()
		db, queries, err := cfg.data()
		if err != nil {
			return Figure{}, err
		}
		for _, unif := range []bool{false, true} {
			sto := store.NewSim(cfg.Disk)
			opt := core.DefaultOptions()
			opt.UniformModel = unif
			tr, err := core.Build(sto, db, opt)
			if err != nil {
				return Figure{}, err
			}
			secs, _, err := measure(sto, tr, queries, cfg.K)
			if err != nil {
				return Figure{}, err
			}
			st := tr.Stats()
			s := &fractal
			if unif {
				s = &uniform
			}
			s.X = append(s.X, float64(wi+1))
			s.Y = append(s.Y, secs)
			s.Detail = append(s.Detail, fmt.Sprintf("%s pages=%d D_F=%.1f", w.ds, st.Pages, st.FractalDim))
		}
	}
	fig.Series = []Series{fractal, uniform}
	return fig, nil
}

// AblationKNN sweeps the neighbor count k on a fixed workload — an
// extension beyond the paper's k=1 evaluation, exercising the k-NN
// variants of the search algorithm and the cost model.
func AblationKNN(o RunOpts) (Figure, error) {
	o = o.withDefaults()
	cfg := o.Config
	cfg.Dataset = dataset.Uniform
	cfg.Seed = o.Seed
	cfg.N = o.scaled(200000)
	cfg.Dim = 16
	cfg.Queries = o.Queries
	cfg = cfg.withDefaults()
	db, queries, err := cfg.data()
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-knn",
		Title:  fmt.Sprintf("k-NN sweep on UNIFORM d=16, N=%d", cfg.N),
		XLabel: "k",
	}
	ks := []int{1, 2, 5, 10, 20}

	build := func(kTarget int) (*store.Store, *core.Tree, error) {
		sto := store.NewSim(cfg.Disk)
		opt := core.DefaultOptions()
		opt.KNNTarget = kTarget
		tr, err := core.Build(sto, db, opt)
		return sto, tr, err
	}
	baseStore, baseTree, err := build(0)
	if err != nil {
		return Figure{}, err
	}
	vaStore := store.NewSim(cfg.Disk)
	va, err := vafile.Build(vaStore, db, vafile.DefaultOptions())
	if err != nil {
		return Figure{}, err
	}

	base := Series{Label: "IQ-tree (k=1 model)"}
	aware := Series{Label: "IQ-tree (k-aware model)"}
	vaSeries := Series{Label: "VA-file"}
	for _, k := range ks {
		secs, _, err := measureK(baseStore, baseTree, queries, k)
		if err != nil {
			return Figure{}, err
		}
		base.X = append(base.X, float64(k))
		base.Y = append(base.Y, secs)

		kStore, kTree, err := build(k)
		if err != nil {
			return Figure{}, err
		}
		if secs, _, err = measureK(kStore, kTree, queries, k); err != nil {
			return Figure{}, err
		}
		aware.X = append(aware.X, float64(k))
		aware.Y = append(aware.Y, secs)

		if secs, _, err = measureK(vaStore, va, queries, k); err != nil {
			return Figure{}, err
		}
		vaSeries.X = append(vaSeries.X, float64(k))
		vaSeries.Y = append(vaSeries.Y, secs)
	}
	fig.Series = []Series{base, aware, vaSeries}
	return fig, nil
}

// ModelValidation compares the cost model's predicted query time
// (Eq. 23, after calibration) with the measured simulated time across the
// four workloads — a direct check of paper Section 3.4.
func ModelValidation(o RunOpts) (Figure, error) {
	o = o.withDefaults()
	fig := Figure{
		ID:     "model-validation",
		Title:  "Cost model: predicted vs measured NN query time",
		XLabel: "workload (1=uniform16, 2=color, 3=cad, 4=weather)",
	}
	workloads := []struct {
		ds dataset.Name
		n  int
	}{
		{dataset.Uniform, o.scaled(200000)},
		{dataset.Color, o.scaled(100000)},
		{dataset.CAD, o.scaled(200000)},
		{dataset.Weather, o.scaled(200000)},
	}
	predicted := Series{Label: "model prediction"}
	measured := Series{Label: "measured"}
	for wi, w := range workloads {
		cfg := o.Config
		cfg.Dataset = w.ds
		cfg.Seed = o.Seed
		cfg.N = w.n
		cfg.Dim = 16
		cfg.Queries = o.Queries
		cfg = cfg.withDefaults()
		db, queries, err := cfg.data()
		if err != nil {
			return Figure{}, err
		}
		sto := store.NewSim(cfg.Disk)
		tr, err := core.Build(sto, db, core.DefaultOptions())
		if err != nil {
			return Figure{}, err
		}
		secs, _, err := measure(sto, tr, queries, cfg.K)
		if err != nil {
			return Figure{}, err
		}
		predicted.X = append(predicted.X, float64(wi+1))
		predicted.Y = append(predicted.Y, tr.CostEstimate())
		measured.X = append(measured.X, float64(wi+1))
		measured.Y = append(measured.Y, secs)
		measured.Detail = append(measured.Detail, string(w.ds))
	}
	fig.Series = []Series{predicted, measured}
	return fig, nil
}

// measureK is measure with an explicit k.
func measureK(sto *store.Store, idx index.Index, queries []vec.Point, k int) (float64, store.Stats, error) {
	var agg store.Stats
	for _, q := range queries {
		s := sto.NewSession()
		if _, err := idx.KNN(s, q, k); err != nil {
			return 0, store.Stats{}, err
		}
		agg.Add(s.Stats)
	}
	return agg.Time(sto.Config()) / float64(len(queries)), agg, nil
}

// AblationFixedBits compares the IQ-tree's optimal per-page quantization
// against forcing a single fixed level into the same tree structure (the
// "VA-file inside a tree" configuration) — the quantization-level sweep
// of DESIGN.md.
func AblationFixedBits(o RunOpts) (Figure, error) {
	o = o.withDefaults()
	cfg := o.Config
	cfg.Dataset = dataset.Uniform
	cfg.Seed = o.Seed
	cfg.N = o.scaled(200000)
	cfg.Dim = 16
	cfg.Queries = o.Queries
	cfg = cfg.withDefaults()
	db, queries, err := cfg.data()
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-fixed-bits",
		Title:  fmt.Sprintf("Fixed quantization level vs optimized (UNIFORM d=16, N=%d)", cfg.N),
		XLabel: "bits per dimension (0 = optimized per page)",
	}
	fixed := Series{Label: "IQ-tree structure, fixed level"}
	for _, bits := range []int{1, 2, 4, 8, 16} {
		sto := store.NewSim(cfg.Disk)
		opt := core.DefaultOptions()
		opt.FixedBits = bits
		tr, err := core.Build(sto, db, opt)
		if err != nil {
			return Figure{}, err
		}
		secs, _, err := measure(sto, tr, queries, cfg.K)
		if err != nil {
			return Figure{}, err
		}
		fixed.X = append(fixed.X, float64(bits))
		fixed.Y = append(fixed.Y, secs)
	}
	opt := Series{Label: "IQ-tree, optimized per page"}
	sto := store.NewSim(cfg.Disk)
	tr, err := core.Build(sto, db, core.DefaultOptions())
	if err != nil {
		return Figure{}, err
	}
	secs, _, err := measure(sto, tr, queries, cfg.K)
	if err != nil {
		return Figure{}, err
	}
	opt.X = append(opt.X, 0)
	opt.Y = append(opt.Y, secs)
	fig.Series = []Series{fixed, opt}
	return fig, nil
}
